// Command mixednode runs ONE mixed-consistency DSM process over real TCP —
// the paper's deployment shape (Maya ran one memory manager per
// workstation). Start N copies, one per process, each with the same ordered
// peer list and its own -id; they find each other with dial retries, run the
// selected application, verify the result against the sequential reference,
// and exit.
//
// Example, a 3-process barrier solver on loopback (three shells or one with
// &):
//
//	mixednode -id 0 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 &
//	mixednode -id 1 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 &
//	mixednode -id 2 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002
//
// Every process generates the same deterministic problem instance from
// -seed, so each can check its own answer locally; the exit status is
// nonzero if the distributed result disagrees with the sequential one.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"strconv"
	"strings"
	"time"

	"mixedmem/internal/apps"
	"mixedmem/internal/core"
	"mixedmem/internal/dsm"
	"mixedmem/internal/hist"
	"mixedmem/internal/history"
	"mixedmem/internal/obs"
	"mixedmem/internal/syncmgr"
	"mixedmem/internal/transport"
	"mixedmem/internal/transport/tcp"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mixednode:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mixednode", flag.ContinueOnError)
	var (
		id      = fs.Int("id", -1, "this process's node id, 0..N-1")
		peerCSV = fs.String("peers", "", "comma-separated host:port of every node, ordered by id")
		app     = fs.String("app", "solve", "application: solve (E2 barrier solver), cholesky (E5 lock-based factorization), emfield (Figure 4 field computation), or session (S1 session/KV front-end)")
		size    = fs.Int("size", 20, "problem size n; for -app session, measured requests per worker strand")
		labels  = fs.String("labels", "broadcast", "session only: label configuration (broadcast, causal-scoped, or hybrid; same on every node)")
		steps   = fs.Int("steps", 10, "time steps for -app emfield")
		scoped  = fs.Bool("scoped", false, "emfield only: register causal-scoped placement so each boundary update ships to its one reader instead of broadcasting (must be set on every node)")
		seed    = fs.Int64("seed", 7, "deterministic problem seed (same on every node)")
		prop    = fs.String("propagation", "lazy", "critical-section propagation: eager, lazy, or demand")
		manager = fs.Int("manager", 0, "node hosting the lock and barrier managers")
		batch   = fs.Int("batch", 0, "update outbox width: coalesce up to this many writes per frame (0 = off)")
		metrics = fs.Bool("metrics", false, "exchange per-node transport stats through the DSM and print merged fleet-wide totals at exit (must be set on every node)")
		obsAddr = fs.String("obs", "", "serve the unified metrics registry as JSON at http://ADDR/metrics, alongside net/http/pprof")
		traceN  = fs.Int("trace", 0, "event-tracer ring capacity in slots (0 = tracing off; same on every node)")
		traceTo = fs.String("trace-out", "", "drain every node's tracer ring through the DSM at exit and write the merged trace to this file (requires -trace on every node; mixedtrace reads it)")
		verbose = fs.Bool("v", false, "log transport supervisor events")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	peers := strings.Split(*peerCSV, ",")
	if *peerCSV == "" || len(peers) < 2 {
		return fmt.Errorf("-peers must list at least 2 comma-separated addresses")
	}
	if *id < 0 || *id >= len(peers) {
		return fmt.Errorf("-id %d out of range for %d peers", *id, len(peers))
	}
	mode, err := parsePropagation(*prop)
	if err != nil {
		return err
	}
	if *batch < 0 {
		return fmt.Errorf("-batch must be >= 0, got %d", *batch)
	}
	if *scoped && *app != "emfield" {
		return fmt.Errorf("-scoped requires -app emfield")
	}
	sessionMode, err := apps.ParseSessionMode(*labels)
	if err != nil {
		return err
	}
	if *labels != "broadcast" && *app != "session" {
		return fmt.Errorf("-labels requires -app session")
	}
	sessionCfg := apps.SessionConfig{
		Procs: len(peers),
		Ops:   *size, Warmup: *size/5 + 4,
		Seed: *seed,
		Mode: sessionMode,
	}

	cfg := tcp.Config{ID: *id, Peers: peers, Seed: *seed}
	if *verbose {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	tr, err := tcp.New(cfg)
	if err != nil {
		return err
	}
	if *traceTo != "" && *traceN <= 0 {
		return fmt.Errorf("-trace-out needs -trace N (a ring capacity) on every node")
	}
	pcfg := core.PeerConfig{
		ID: *id, Transport: tr, Propagation: mode, ManagerProc: *manager,
		TraceCapacity: *traceN,
	}
	if *batch > 0 {
		pcfg.Batch = dsm.BatchConfig{Enabled: true, MaxUpdates: *batch}
	}
	if *scoped {
		pcfg.Scope = apps.EMFieldScope(*size, len(peers), true)
	}
	if *app == "session" {
		pcfg.Scope = apps.SessionScope(sessionCfg)
	}
	peer, err := core.NewPeer(pcfg)
	if err != nil {
		tr.Close()
		return err
	}
	// Drain the outbound channels before shutdown: the last barrier release
	// or lock grant may still be unacked, and a peer that exits early would
	// otherwise strand the others.
	defer peer.Close()
	defer tr.Flush(5 * time.Second)

	if *obsAddr != "" {
		ln, err := net.Listen("tcp", *obsAddr)
		if err != nil {
			return fmt.Errorf("-obs %s: %w", *obsAddr, err)
		}
		mux := http.NewServeMux()
		mux.Handle("/metrics", peer.Registry())
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		srv := &http.Server{Handler: mux}
		go func() { _ = srv.Serve(ln) }()
		defer srv.Close()
		fmt.Fprintf(out, "node %d: obs endpoint on http://%s (/metrics, /debug/pprof/)\n",
			*id, ln.Addr())
	}

	start := time.Now()
	var verr error
	var sessionRes *apps.SessionProcResult
	switch *app {
	case "solve":
		verr = runSolve(out, peer.Proc(), *size, *seed)
	case "cholesky":
		verr = runCholesky(out, peer.Proc(), *size, *seed)
	case "emfield":
		verr = runEMField(out, peer.Proc(), *size, *steps, *seed, *scoped)
	case "session":
		sessionRes, verr = runSession(out, peer.Proc(), sessionCfg)
	default:
		return fmt.Errorf("unknown app %q (want solve, cholesky, emfield, or session)", *app)
	}
	if verr != nil {
		return verr
	}
	s := peer.NetStats()
	fmt.Fprintf(out, "node %d: done in %v; sent %d msgs / %d bytes\n",
		*id, time.Since(start).Round(time.Millisecond), s.MessagesSent, s.BytesSent)
	if *traceTo != "" {
		snap := peer.Tracer().Snapshot()
		snap.Tag = *app
		if *app == "session" {
			snap.Tag = *app + "/" + sessionMode.String()
		}
		snaps, err := drainFleetTrace(peer.Proc(), snap)
		if err != nil {
			return err
		}
		if err := os.WriteFile(*traceTo, obs.EncodeTrace(snaps), 0o644); err != nil {
			return fmt.Errorf("write fleet trace: %w", err)
		}
		fmt.Fprintf(out, "node %d: fleet trace: %d node snapshots -> %s (read with mixedtrace)\n",
			*id, len(snaps), *traceTo)
	}
	if *metrics {
		hists := map[string]*hist.Histogram{}
		if sessionRes != nil {
			hists["read"] = sessionRes.Read
			hists["write"] = sessionRes.Write
			hists["vis"] = sessionRes.Vis
		}
		if err := printFleetMetrics(out, peer.Proc(), s, peer.Proc().MemStats(), hists); err != nil {
			return err
		}
	}
	return nil
}

// metricKinds is the closed set of protocol frame kinds the node publishes
// when -metrics is set. New kinds still count in the per-node total row even
// before they are added here.
var metricKinds = []string{
	dsm.KindUpdate,
	dsm.KindUpdateBatch,
	syncmgr.KindLockReq,
	syncmgr.KindLockGrant,
	syncmgr.KindLockRel,
	syncmgr.KindFlush,
	syncmgr.KindFlushAck,
	syncmgr.KindBarArrive,
	syncmgr.KindBarRelease,
}

// metricHistNames is the fixed, ordered set of latency histograms a node may
// publish in the -metrics exchange; nodes that ran an app without latency
// measurements publish them empty.
var metricHistNames = []string{"read", "write", "vis"}

// printFleetMetrics merges per-node transport stats, memory-protocol
// counters, and latency histograms through the memory itself: each node
// writes its snapshot (taken before this exchange, so the exchange's own
// traffic is excluded) under metrics/<id>/..., a barrier guarantees every
// pre-arrival update is applied everywhere before release, and then each
// node reads all nodes' rows and prints the fleet-wide sums. Histograms ride
// along as packed bucket cells, so the merged percentiles printed here are
// exactly the percentiles of the pooled per-node samples. Every node must
// run with -metrics or the extra barrier deadlocks the fleet.
func printFleetMetrics(out io.Writer, p core.Process, s transport.Stats, mem dsm.Stats, hists map[string]*hist.Histogram) error {
	me := strconv.Itoa(p.ID())
	p.Write("metrics/"+me+"/msgs/total", int64(s.MessagesSent))
	p.Write("metrics/"+me+"/bytes/total", int64(s.BytesSent))
	for _, k := range metricKinds {
		p.Write("metrics/"+me+"/msgs/"+k, int64(s.PerKind[k]))
		p.Write("metrics/"+me+"/bytes/"+k, int64(s.PerKindBytes[k]))
	}
	p.Write("metrics/"+me+"/mem/malformed", int64(mem.MalformedUpdates))
	for _, name := range metricHistNames {
		publishFleetHist(p, name, hists[name])
	}
	p.Barrier()

	var totalMsgs, totalBytes, malformed int64
	kindMsgs := make([]int64, len(metricKinds))
	kindBytes := make([]int64, len(metricKinds))
	for id := 0; id < p.N(); id++ {
		node := strconv.Itoa(id)
		totalMsgs += p.ReadPRAM("metrics/" + node + "/msgs/total")
		totalBytes += p.ReadPRAM("metrics/" + node + "/bytes/total")
		malformed += p.ReadPRAM("metrics/" + node + "/mem/malformed")
		for i, k := range metricKinds {
			kindMsgs[i] += p.ReadPRAM("metrics/" + node + "/msgs/" + k)
			kindBytes[i] += p.ReadPRAM("metrics/" + node + "/bytes/" + k)
		}
	}
	fmt.Fprintf(out, "node %d: fleet totals: %d msgs / %d bytes\n", p.ID(), totalMsgs, totalBytes)
	for i, k := range metricKinds {
		if kindMsgs[i] == 0 {
			continue
		}
		fmt.Fprintf(out, "node %d: fleet %-12s %6d msgs / %8d bytes\n", p.ID(), k, kindMsgs[i], kindBytes[i])
	}
	fmt.Fprintf(out, "node %d: fleet malformed-updates: %d\n", p.ID(), malformed)
	for _, name := range metricHistNames {
		merged, err := readFleetHist(p, name)
		if err != nil {
			return err
		}
		if merged.Count() == 0 {
			continue
		}
		fmt.Fprintf(out, "node %d: fleet %-5s latency: %s\n", p.ID(), name, merged.Summary())
	}
	return nil
}

// publishFleetHist writes one latency histogram into this node's metrics
// rows as packed bucket cells under metrics/<id>/hist/<name>/. A nil
// histogram publishes a zero cell count. The caller must follow with the
// barrier before any node reads the rows back.
func publishFleetHist(p core.Process, name string, h *hist.Histogram) {
	prefix := "metrics/" + strconv.Itoa(p.ID()) + "/hist/" + name + "/"
	if h == nil {
		p.Write(prefix+"n", 0)
		return
	}
	cells := h.Cells()
	p.Write(prefix+"n", int64(len(cells)))
	for i, c := range cells {
		p.Write(prefix+strconv.Itoa(i), c)
	}
}

// readFleetHist reads every node's published cells for one histogram name
// and returns the fleet-wide merge. Because the bucket cells are exact, the
// merged histogram's quantiles equal the quantiles of all nodes' samples
// pooled together.
func readFleetHist(p core.Process, name string) (*hist.Histogram, error) {
	merged := hist.New()
	for id := 0; id < p.N(); id++ {
		prefix := "metrics/" + strconv.Itoa(id) + "/hist/" + name + "/"
		n := p.ReadPRAM(prefix + "n")
		if n == 0 {
			continue
		}
		cells := make([]int64, n)
		for i := range cells {
			cells[i] = p.ReadPRAM(prefix + strconv.Itoa(i))
		}
		if err := merged.AddCells(cells); err != nil {
			return nil, fmt.Errorf("fleet %s histogram from node %d: %w", name, id, err)
		}
	}
	return merged, nil
}

// drainFleetTrace merges every node's tracer ring through the memory
// itself — the trace analogue of printFleetMetrics: each node snapshots
// its ring before calling this, packs the encoded snapshot into int64
// cells, and writes them under obs/<id>/...; a barrier guarantees every
// cell is applied everywhere before release; then each node reads all
// nodes' cells back and decodes the fleet's snapshots. The drain's own
// writes postdate the snapshots, so the exchange never traces itself.
// Every node must run with -trace-out or the extra barrier deadlocks the
// fleet. A busy ring encodes to tens of thousands of cells, so run the
// fleet with -batch to coalesce the drain's writes into wide frames.
func drainFleetTrace(p core.Process, snap *obs.Snapshot) ([]*obs.Snapshot, error) {
	me := strconv.Itoa(p.ID())
	cells := obs.BytesToCells(obs.AppendSnapshot(nil, snap))
	p.Write("obs/"+me+"/n", int64(len(cells)))
	for i, c := range cells {
		p.Write("obs/"+me+"/"+strconv.Itoa(i), c)
	}
	p.Barrier()

	var snaps []*obs.Snapshot
	for id := 0; id < p.N(); id++ {
		prefix := "obs/" + strconv.Itoa(id) + "/"
		n := p.ReadPRAM(prefix + "n")
		cells := make([]int64, n)
		for i := range cells {
			cells[i] = p.ReadPRAM(prefix + strconv.Itoa(i))
		}
		data, err := obs.CellsToBytes(cells)
		if err != nil {
			return nil, fmt.Errorf("trace cells from node %d: %w", id, err)
		}
		s, _, err := obs.DecodeSnapshot(data)
		if err != nil {
			return nil, fmt.Errorf("trace snapshot from node %d: %w", id, err)
		}
		snaps = append(snaps, s)
	}
	return snaps, nil
}

func parsePropagation(s string) (syncmgr.PropagationMode, error) {
	switch s {
	case "eager":
		return syncmgr.Eager, nil
	case "lazy":
		return syncmgr.Lazy, nil
	case "demand":
		return syncmgr.DemandDriven, nil
	}
	return 0, fmt.Errorf("unknown propagation %q (want eager, lazy, or demand)", s)
}

// runSolve runs the Figure 2 barrier solver and verifies the distributed
// solution against direct Gaussian elimination of the same instance.
func runSolve(out io.Writer, p core.Process, n int, seed int64) error {
	ls := apps.GenDiagDominant(n, seed)
	res := apps.SolveBarrier(p, ls, apps.SolveOptions{Tol: 1e-9})
	if !res.Converged {
		return fmt.Errorf("solver did not converge in %d iterations", res.Iters)
	}
	direct, err := ls.SolveDirect()
	if err != nil {
		return fmt.Errorf("direct reference: %w", err)
	}
	if d := apps.MaxAbsDiff(res.X, direct); d > 1e-7 {
		return fmt.Errorf("distributed solution differs from direct by %v", d)
	}
	fmt.Fprintf(out, "node %d: solve n=%d converged in %d iters, max |x-x*| within 1e-7\n",
		p.ID(), n, res.Iters)
	return nil
}

// runEMField runs the Figure 4 field computation and verifies this node's
// slab against the sequential reference, which must match bit-exactly (the
// distributed program performs the same float operations in the same order).
// With scoped placement each boundary publish travels point to point with
// causal reads; without it, updates broadcast and boundary reads are PRAM.
func runEMField(out io.Writer, p core.Process, size, steps int, seed int64, scoped bool) error {
	prob := apps.GenEMProblem(size, steps, seed)
	opts := apps.SolveOptions{}
	if scoped {
		opts.ReadLabel = history.LabelCausal
	}
	res := apps.SolveEMField(p, prob, opts)
	refE, refH := prob.SolveSequential()
	for i := res.Lo; i < res.Hi; i++ {
		if res.E[i-res.Lo] != refE[i] || res.H[i-res.Lo] != refH[i] {
			return fmt.Errorf("emfield slab [%d,%d) diverged from the sequential reference at %d", res.Lo, res.Hi, i)
		}
	}
	mode := "broadcast"
	if scoped {
		mode = "causal-scoped"
	}
	fmt.Fprintf(out, "node %d: emfield grid=%d steps=%d (%s) matches sequential bit-exactly\n",
		p.ID(), size, steps, mode)
	return nil
}

// runSession runs the S1 session/KV front-end: every node serves its worker
// strands (plus visibility probers for its peers' flagged writes) and then
// verifies the fleet's PRAM aggregate counters against the replay-predicted
// values — every node computes the expected totals locally from the seed, so
// no node needs a referee.
func runSession(out io.Writer, p core.Process, cfg apps.SessionConfig) (*apps.SessionProcResult, error) {
	res := apps.ServeSessions(p, cfg)
	if err := apps.VerifySessionCounters(p, cfg); err != nil {
		return nil, err
	}
	c := cfg.WithDefaults()
	c.Procs = p.N()
	fmt.Fprintf(out, "node %d: session (%s) fp=%016x counters verified; read[%s] write[%s] vis[%s]\n",
		p.ID(), c.Mode, c.WorkloadFingerprint(), res.Read.Summary(), res.Write.Summary(), res.Vis.Summary())
	return res, nil
}

// runCholesky runs the Figure 5 lock-based sparse Cholesky factorization and
// verifies the factor against the sequential algorithm.
func runCholesky(out io.Writer, p core.Process, n int, seed int64) error {
	m := apps.GenSparseSPD(n, 0.3, seed)
	res := apps.CholeskyLocks(p, m, apps.SolveOptions{})
	ref, err := m.CholeskySequential()
	if err != nil {
		return fmt.Errorf("sequential reference: %w", err)
	}
	if d := m.FactorError(res.L, ref); d > 1e-9 {
		return fmt.Errorf("distributed factor differs from sequential by %v", d)
	}
	fmt.Fprintf(out, "node %d: cholesky n=%d factor matches sequential within 1e-9\n", p.ID(), n)
	return nil
}
