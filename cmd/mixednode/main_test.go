package main

import (
	"bytes"
	"fmt"
	"math"
	"net"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"mixedmem/internal/apps"
	"mixedmem/internal/core"
	"mixedmem/internal/hist"
	"mixedmem/internal/network"
	"mixedmem/internal/obs"
)

// freeAddrs reserves n distinct loopback ports and releases them for the
// nodes to rebind. The window between release and rebind is racy in theory;
// in practice the kernel does not reassign just-released listening ports to
// other processes immediately, and the dial supervisors tolerate peers that
// come up late.
func freeAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("reserve port: %v", err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

// launch runs one mixednode process body per node id, as separate OS
// processes would, and returns each node's error and output.
func launch(t *testing.T, addrs []string, extra ...string) []string {
	t.Helper()
	peerList := strings.Join(addrs, ",")
	outs := make([]string, len(addrs))
	errs := make([]error, len(addrs))
	var wg sync.WaitGroup
	for id := range addrs {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			var buf bytes.Buffer
			args := append([]string{
				"-id", fmt.Sprint(id), "-peers", peerList,
			}, extra...)
			errs[id] = run(args, &buf)
			outs[id] = buf.String()
		}(id)
	}
	wg.Wait()
	for id, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v (output %q)", id, err, outs[id])
		}
	}
	return outs
}

func TestMixednodeSolveThreeProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	outs := launch(t, freeAddrs(t, 3), "-app", "solve", "-size", "16", "-seed", "11")
	for id, out := range outs {
		if !strings.Contains(out, "converged") || !strings.Contains(out, "done in") {
			t.Fatalf("node %d output missing verification: %q", id, out)
		}
	}
}

func TestMixednodeCholeskyThreeProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	outs := launch(t, freeAddrs(t, 3), "-app", "cholesky", "-size", "12", "-seed", "3", "-propagation", "eager")
	for id, out := range outs {
		if !strings.Contains(out, "matches sequential") {
			t.Fatalf("node %d output missing verification: %q", id, out)
		}
	}
}

// TestMixednodeEMFieldScopedThreeProcesses runs the Figure 4 field
// computation both broadcast and causal-scoped: the same fleet, the same
// bit-exact verification, but under -scoped each boundary update travels
// point to point with a dependency matrix instead of broadcasting.
func TestMixednodeEMFieldScopedThreeProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	outs := launch(t, freeAddrs(t, 3), "-app", "emfield", "-size", "24", "-steps", "6", "-seed", "5")
	for id, out := range outs {
		if !strings.Contains(out, "(broadcast) matches sequential bit-exactly") {
			t.Fatalf("node %d output missing verification: %q", id, out)
		}
	}
	outs = launch(t, freeAddrs(t, 3), "-app", "emfield", "-size", "24", "-steps", "6", "-seed", "5", "-scoped")
	for id, out := range outs {
		if !strings.Contains(out, "(causal-scoped) matches sequential bit-exactly") {
			t.Fatalf("node %d output missing scoped verification: %q", id, out)
		}
	}
}

// TestMixednodeMetricsMergedSnapshot runs a batched fleet with -metrics on
// every node and checks that (a) each node prints the merged per-kind
// snapshot, (b) all nodes agree on it (the exchange goes through the DSM, so
// any disagreement is a consistency bug), and (c) the batched outbox actually
// ran over TCP — update-batch frames appear in the fleet totals.
func TestMixednodeMetricsMergedSnapshot(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	outs := launch(t, freeAddrs(t, 3), "-app", "solve", "-size", "16", "-seed", "11",
		"-batch", "32", "-metrics")
	var want string
	for id, out := range outs {
		var fleet []string
		prefix := fmt.Sprintf("node %d: fleet", id)
		for _, line := range strings.Split(out, "\n") {
			if strings.HasPrefix(line, prefix) {
				fleet = append(fleet, strings.TrimPrefix(line, prefix))
			}
		}
		if len(fleet) == 0 {
			t.Fatalf("node %d printed no fleet metrics: %q", id, out)
		}
		merged := strings.Join(fleet, "\n")
		if !strings.Contains(merged, "totals:") {
			t.Fatalf("node %d missing totals row: %q", id, merged)
		}
		if !strings.Contains(merged, "update-batch") {
			t.Fatalf("node %d saw no update-batch frames despite -batch 32: %q", id, merged)
		}
		if id == 0 {
			want = merged
		} else if merged != want {
			t.Fatalf("node %d merged snapshot disagrees with node 0:\n%q\nvs\n%q", id, merged, want)
		}
	}
}

// TestMixednodeSessionThreeProcesses runs the S1 session/KV front-end as a
// real three-node TCP fleet with causal-scoped labels and -metrics: every
// node must verify the replay-predicted aggregate counters, and the merged
// fleet snapshot — now including the latency histograms and the
// malformed-update counter — must be identical on every node, because each
// node reconstructs it from the same exact bucket cells.
func TestMixednodeSessionThreeProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	outs := launch(t, freeAddrs(t, 3), "-app", "session", "-size", "30", "-seed", "9",
		"-labels", "causal-scoped", "-metrics")
	var want string
	for id, out := range outs {
		if !strings.Contains(out, "session (causal-scoped)") || !strings.Contains(out, "counters verified") {
			t.Fatalf("node %d output missing session verification: %q", id, out)
		}
		var fleet []string
		prefix := fmt.Sprintf("node %d: fleet", id)
		for _, line := range strings.Split(out, "\n") {
			if strings.HasPrefix(line, prefix) {
				fleet = append(fleet, strings.TrimPrefix(line, prefix))
			}
		}
		merged := strings.Join(fleet, "\n")
		for _, row := range []string{"totals:", "malformed-updates: 0", "read  latency:", "write latency:", "vis   latency:"} {
			if !strings.Contains(merged, row) {
				t.Fatalf("node %d fleet metrics missing %q: %q", id, row, merged)
			}
		}
		if id == 0 {
			want = merged
		} else if merged != want {
			t.Fatalf("node %d merged snapshot disagrees with node 0:\n%q\nvs\n%q", id, merged, want)
		}
	}
}

// TestFleetHistMergeEqualsPooled drives the -metrics histogram exchange
// through a simulated fleet and pins the exactness claim: the percentiles of
// the fleet-merged histogram equal the percentiles of one histogram fed all
// nodes' samples pooled together, and both sit within half a bucket width of
// the true rank percentile of the raw pooled samples.
func TestFleetHistMergeEqualsPooled(t *testing.T) {
	const procs, samples = 4, 800
	sys, err := core.NewSystem(core.Config{
		Procs:   procs,
		Latency: network.LatencyModel{Fixed: 20 * time.Microsecond},
		Seed:    1,
	})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	defer sys.Close()
	perProc := make([]*hist.Histogram, procs)
	raw := make([][]int64, procs)
	merged := make([]*hist.Histogram, procs)
	empty := make([]*hist.Histogram, procs)
	mergeErrs := make([]error, procs)
	sys.Run(func(p *core.Proc) {
		h := hist.New()
		x := uint64(p.ID())*0x9e3779b97f4a7c15 + 0xbf58476d1ce4e5b9
		vals := make([]int64, samples)
		for i := range vals {
			x = x*6364136223846793005 + 1442695040888963407
			v := int64((x >> 16) % 50_000_000)
			vals[i] = v
			h.Record(v)
		}
		raw[p.ID()], perProc[p.ID()] = vals, h
		publishFleetHist(p, "read", h)
		publishFleetHist(p, "vis", nil) // a node that measured nothing
		p.Barrier()
		merged[p.ID()], mergeErrs[p.ID()] = readFleetHist(p, "read")
		empty[p.ID()], _ = readFleetHist(p, "vis")
	})
	pooled := hist.New()
	var all []int64
	for id := range perProc {
		pooled.Merge(perProc[id])
		all = append(all, raw[id]...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	for id := 0; id < procs; id++ {
		if mergeErrs[id] != nil {
			t.Fatalf("node %d: readFleetHist: %v", id, mergeErrs[id])
		}
		if empty[id] == nil || empty[id].Count() != 0 {
			t.Fatalf("node %d: unpublished histogram merged non-empty", id)
		}
		m := merged[id]
		if m.Count() != pooled.Count() || m.Sum() != pooled.Sum() || m.Max() != pooled.Max() {
			t.Fatalf("node %d merged (count %d sum %d) disagrees with pooled (count %d sum %d)",
				id, m.Count(), m.Sum(), pooled.Count(), pooled.Sum())
		}
		for _, q := range []float64{0.5, 0.99, 0.999} {
			got, want := m.Quantile(q), pooled.Quantile(q)
			if got != want {
				t.Errorf("node %d q%v: merged %d != pooled %d", id, q, got, want)
			}
			rank := int(math.Ceil(q * float64(len(all))))
			if rank < 1 {
				rank = 1
			}
			exact := all[rank-1]
			if d := got - exact; d < -(exact>>4+1) || d > exact>>4+1 {
				t.Errorf("node %d q%v: merged %d too far from exact pooled percentile %d", id, q, got, exact)
			}
		}
	}
}

func TestMixednodeFlagValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-peers", "a:1,b:2"}, &buf); err == nil {
		t.Fatal("missing -id accepted")
	}
	if err := run([]string{"-id", "0", "-peers", "only-one:1"}, &buf); err == nil {
		t.Fatal("single-peer list accepted")
	}
	if err := run([]string{"-id", "0", "-peers", "a:1,b:2", "-propagation", "psychic"}, &buf); err == nil {
		t.Fatal("bad propagation accepted")
	}
	if err := run([]string{"-id", "0", "-peers", "127.0.0.1:0,127.0.0.1:0", "-app", "nope"}, &buf); err == nil {
		t.Fatal("bad app accepted")
	}
	if err := run([]string{"-id", "0", "-peers", "a:1,b:2", "-batch", "-3"}, &buf); err == nil {
		t.Fatal("negative batch accepted")
	}
	if err := run([]string{"-id", "0", "-peers", "a:1,b:2", "-app", "solve", "-scoped"}, &buf); err == nil {
		t.Fatal("-scoped without -app emfield accepted")
	}
	if err := run([]string{"-id", "0", "-peers", "a:1,b:2", "-app", "session", "-labels", "psychic"}, &buf); err == nil {
		t.Fatal("bad -labels accepted")
	}
	if err := run([]string{"-id", "0", "-peers", "a:1,b:2", "-app", "solve", "-labels", "hybrid"}, &buf); err == nil {
		t.Fatal("-labels without -app session accepted")
	}
}

// TestMixednodeFleetTraceDrain runs a traced session fleet with -trace-out
// on every node: the rings drain through the DSM itself, every node writes
// an identical merged trace file, and the causal-path explainer attributes
// the write-visibility probes in it at >= 95%.
func TestMixednodeFleetTraceDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	addrs := freeAddrs(t, 3)
	peerList := strings.Join(addrs, ",")
	dir := t.TempDir()
	outs := make([]string, len(addrs))
	errs := make([]error, len(addrs))
	var wg sync.WaitGroup
	for id := range addrs {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			var buf bytes.Buffer
			// -batch matters here: the drain ships ~10k trace cells per
			// node, and the outbox coalesces those writes into wide frames
			// instead of one frame each (66s -> ~6s on loopback).
			errs[id] = run([]string{
				"-id", fmt.Sprint(id), "-peers", peerList,
				"-app", "session", "-labels", "causal-scoped", "-size", "24", "-seed", "9",
				"-batch", "64",
				"-trace", "32768", "-trace-out", filepath.Join(dir, fmt.Sprintf("t%d.mxtr", id)),
				"-obs", "127.0.0.1:0",
			}, &buf)
			outs[id] = buf.String()
		}(id)
	}
	wg.Wait()
	for id, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v (output %q)", id, err, outs[id])
		}
		if !strings.Contains(outs[id], "obs endpoint on http://") {
			t.Errorf("node %d missing obs endpoint line: %q", id, outs[id])
		}
		if !strings.Contains(outs[id], "fleet trace: 3 node snapshots") {
			t.Errorf("node %d missing fleet trace line: %q", id, outs[id])
		}
	}

	// Every node drained the same cells, so the files are byte-identical.
	ref, err := os.ReadFile(filepath.Join(dir, "t0.mxtr"))
	if err != nil {
		t.Fatalf("read merged trace: %v", err)
	}
	for id := 1; id < len(addrs); id++ {
		got, err := os.ReadFile(filepath.Join(dir, fmt.Sprintf("t%d.mxtr", id)))
		if err != nil {
			t.Fatalf("read node %d trace: %v", id, err)
		}
		if !bytes.Equal(ref, got) {
			t.Fatalf("node %d drained a different merged trace (%d vs %d bytes)", id, len(got), len(ref))
		}
	}

	snaps, err := obs.DecodeTrace(ref)
	if err != nil {
		t.Fatalf("decode merged trace: %v", err)
	}
	if len(snaps) != 3 {
		t.Fatalf("got %d snapshots, want 3", len(snaps))
	}
	for _, s := range snaps {
		if s.Tag != "session/causal-scoped" {
			t.Fatalf("snapshot tag %q", s.Tag)
		}
		if len(s.Events) == 0 || s.Dropped != 0 {
			t.Fatalf("node %d snapshot: %d events, %d dropped", s.Node, len(s.Events), s.Dropped)
		}
	}
	ex := obs.Explain(snaps, apps.IsVisFlagLoc)
	if len(ex.Breakdowns) != 1 {
		t.Fatalf("got %d breakdowns, want 1", len(ex.Breakdowns))
	}
	b := ex.Breakdowns[0]
	if b.Samples == 0 || b.Incomplete != 0 || b.MinAttribution < 0.95 {
		t.Fatalf("attribution gate failed over the drained fleet trace: %+v", b)
	}
}
