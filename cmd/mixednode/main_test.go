package main

import (
	"bytes"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
)

// freeAddrs reserves n distinct loopback ports and releases them for the
// nodes to rebind. The window between release and rebind is racy in theory;
// in practice the kernel does not reassign just-released listening ports to
// other processes immediately, and the dial supervisors tolerate peers that
// come up late.
func freeAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("reserve port: %v", err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

// launch runs one mixednode process body per node id, as separate OS
// processes would, and returns each node's error and output.
func launch(t *testing.T, addrs []string, extra ...string) []string {
	t.Helper()
	peerList := strings.Join(addrs, ",")
	outs := make([]string, len(addrs))
	errs := make([]error, len(addrs))
	var wg sync.WaitGroup
	for id := range addrs {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			var buf bytes.Buffer
			args := append([]string{
				"-id", fmt.Sprint(id), "-peers", peerList,
			}, extra...)
			errs[id] = run(args, &buf)
			outs[id] = buf.String()
		}(id)
	}
	wg.Wait()
	for id, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v (output %q)", id, err, outs[id])
		}
	}
	return outs
}

func TestMixednodeSolveThreeProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	outs := launch(t, freeAddrs(t, 3), "-app", "solve", "-size", "16", "-seed", "11")
	for id, out := range outs {
		if !strings.Contains(out, "converged") || !strings.Contains(out, "done in") {
			t.Fatalf("node %d output missing verification: %q", id, out)
		}
	}
}

func TestMixednodeCholeskyThreeProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	outs := launch(t, freeAddrs(t, 3), "-app", "cholesky", "-size", "12", "-seed", "3", "-propagation", "eager")
	for id, out := range outs {
		if !strings.Contains(out, "matches sequential") {
			t.Fatalf("node %d output missing verification: %q", id, out)
		}
	}
}

// TestMixednodeEMFieldScopedThreeProcesses runs the Figure 4 field
// computation both broadcast and causal-scoped: the same fleet, the same
// bit-exact verification, but under -scoped each boundary update travels
// point to point with a dependency matrix instead of broadcasting.
func TestMixednodeEMFieldScopedThreeProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	outs := launch(t, freeAddrs(t, 3), "-app", "emfield", "-size", "24", "-steps", "6", "-seed", "5")
	for id, out := range outs {
		if !strings.Contains(out, "(broadcast) matches sequential bit-exactly") {
			t.Fatalf("node %d output missing verification: %q", id, out)
		}
	}
	outs = launch(t, freeAddrs(t, 3), "-app", "emfield", "-size", "24", "-steps", "6", "-seed", "5", "-scoped")
	for id, out := range outs {
		if !strings.Contains(out, "(causal-scoped) matches sequential bit-exactly") {
			t.Fatalf("node %d output missing scoped verification: %q", id, out)
		}
	}
}

// TestMixednodeMetricsMergedSnapshot runs a batched fleet with -metrics on
// every node and checks that (a) each node prints the merged per-kind
// snapshot, (b) all nodes agree on it (the exchange goes through the DSM, so
// any disagreement is a consistency bug), and (c) the batched outbox actually
// ran over TCP — update-batch frames appear in the fleet totals.
func TestMixednodeMetricsMergedSnapshot(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	outs := launch(t, freeAddrs(t, 3), "-app", "solve", "-size", "16", "-seed", "11",
		"-batch", "32", "-metrics")
	var want string
	for id, out := range outs {
		var fleet []string
		prefix := fmt.Sprintf("node %d: fleet", id)
		for _, line := range strings.Split(out, "\n") {
			if strings.HasPrefix(line, prefix) {
				fleet = append(fleet, strings.TrimPrefix(line, prefix))
			}
		}
		if len(fleet) == 0 {
			t.Fatalf("node %d printed no fleet metrics: %q", id, out)
		}
		merged := strings.Join(fleet, "\n")
		if !strings.Contains(merged, "totals:") {
			t.Fatalf("node %d missing totals row: %q", id, merged)
		}
		if !strings.Contains(merged, "update-batch") {
			t.Fatalf("node %d saw no update-batch frames despite -batch 32: %q", id, merged)
		}
		if id == 0 {
			want = merged
		} else if merged != want {
			t.Fatalf("node %d merged snapshot disagrees with node 0:\n%q\nvs\n%q", id, merged, want)
		}
	}
}

func TestMixednodeFlagValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-peers", "a:1,b:2"}, &buf); err == nil {
		t.Fatal("missing -id accepted")
	}
	if err := run([]string{"-id", "0", "-peers", "only-one:1"}, &buf); err == nil {
		t.Fatal("single-peer list accepted")
	}
	if err := run([]string{"-id", "0", "-peers", "a:1,b:2", "-propagation", "psychic"}, &buf); err == nil {
		t.Fatal("bad propagation accepted")
	}
	if err := run([]string{"-id", "0", "-peers", "127.0.0.1:0,127.0.0.1:0", "-app", "nope"}, &buf); err == nil {
		t.Fatal("bad app accepted")
	}
	if err := run([]string{"-id", "0", "-peers", "a:1,b:2", "-batch", "-3"}, &buf); err == nil {
		t.Fatal("negative batch accepted")
	}
	if err := run([]string{"-id", "0", "-peers", "a:1,b:2", "-app", "solve", "-scoped"}, &buf); err == nil {
		t.Fatal("-scoped without -app emfield accepted")
	}
}
