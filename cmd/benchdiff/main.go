// Command benchdiff compares two perf-trajectory measurements (the JSONL
// emitted by `mixedbench -exp perf -json`, or a JSON object/array holding
// PerfCells) and fails when the current run regresses against the baseline.
//
//	benchdiff [-tol 0.10] [-alloc-tol 0.05] baseline.json current.json [more-current.json ...]
//
// Cells are matched on their grid key (transport/scenario/label/batch/
// writers/readers). Two gates run per matched cell:
//
//   - throughput: current ns/op may exceed baseline ns/op by at most -tol
//     (relative). Wall-clock numbers are noisy — scheduler preemption on a
//     shared box moves single runs by tens of percent — so pass SEVERAL
//     current files (repeated runs) and benchdiff takes the per-cell best
//     before applying the tolerance: the minimum ns/op across runs is the
//     least-disturbed observation and converges on the machine's true
//     floor, while means and single runs do not.
//   - allocations: current allocs/op may exceed the baseline by at most
//     -alloc-tol (absolute). Allocation counts are near-deterministic —
//     they measure code paths, not the scheduler — so the slack is only
//     for process-wide counting jitter (background applier goroutines
//     land in the same counter), and any real regression trips the gate.
//
// Baseline cells missing from the current run fail the diff (a shrunk grid
// silently hides regressions); cells new in the current run are reported
// and pass.
//
// Exit status: 0 clean, 1 regression or shrunk grid, 2 usage/parse error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"mixedmem/internal/bench"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		if err == errRegression {
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
}

var errRegression = fmt.Errorf("regression")

func run(args []string) error {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	tol := fs.Float64("tol", 0.10, "relative ns/op tolerance before a throughput regression fails")
	allocTol := fs.Float64("alloc-tol", 0.05, "absolute allocs/op tolerance before an allocation regression fails")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() < 2 {
		return fmt.Errorf("usage: benchdiff [-tol f] [-alloc-tol f] baseline.json current.json [more-current.json ...]")
	}

	base, err := loadCells(fs.Arg(0))
	if err != nil {
		return fmt.Errorf("baseline %s: %w", fs.Arg(0), err)
	}
	cur := map[string]bench.PerfCell{}
	for _, path := range fs.Args()[1:] {
		cells, err := loadCells(path)
		if err != nil {
			return fmt.Errorf("current %s: %w", path, err)
		}
		// Best-of across runs, per cell and per metric: minimum ns/op and
		// minimum allocs/op independently (noise only ever inflates both).
		for k, c := range cells {
			best, ok := cur[k]
			if !ok {
				cur[k] = c
				continue
			}
			if c.NsPerOp < best.NsPerOp {
				best.NsPerOp = c.NsPerOp
				best.OpsPerSec = c.OpsPerSec
			}
			if c.AllocsPerOp < best.AllocsPerOp {
				best.AllocsPerOp = c.AllocsPerOp
			}
			cur[k] = best
		}
	}

	keys := make([]string, 0, len(base))
	for k := range base {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	failed := false
	fmt.Printf("%-32s %10s %10s %7s  %9s %9s  %s\n",
		"cell", "base ns", "cur ns", "Δns", "base al", "cur al", "verdict")
	for _, k := range keys {
		b := base[k]
		c, ok := cur[k]
		if !ok {
			fmt.Printf("%-32s %10.0f %10s %7s  %9.3f %9s  MISSING\n",
				k, b.NsPerOp, "-", "-", b.AllocsPerOp, "-")
			failed = true
			continue
		}
		dNs := (c.NsPerOp - b.NsPerOp) / b.NsPerOp
		verdict := "ok"
		if c.NsPerOp > b.NsPerOp*(1+*tol) {
			verdict = "NS REGRESSION"
			failed = true
		}
		if c.AllocsPerOp > b.AllocsPerOp+*allocTol {
			if verdict == "ok" {
				verdict = "ALLOC REGRESSION"
			} else {
				verdict += " + ALLOC REGRESSION"
			}
			failed = true
		}
		fmt.Printf("%-32s %10.0f %10.0f %+6.1f%%  %9.3f %9.3f  %s\n",
			k, b.NsPerOp, c.NsPerOp, dNs*100, b.AllocsPerOp, c.AllocsPerOp, verdict)
	}
	for k := range cur {
		if _, ok := base[k]; !ok {
			fmt.Printf("%-32s %10s %10.0f %7s  %9s %9.3f  new cell\n",
				k, "-", cur[k].NsPerOp, "-", "-", cur[k].AllocsPerOp)
		}
	}
	if failed {
		return errRegression
	}
	return nil
}

// loadCells reads one measurement file in any of the shapes the toolchain
// produces: `mixedbench -json` JSONL (rows with type PerfCell), a
// PerfResult object, or a bare array of cells.
func loadCells(path string) (map[string]bench.PerfCell, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	out := map[string]bench.PerfCell{}
	add := func(c bench.PerfCell) {
		// Duplicate keys within one file (repeated runs appended together)
		// merge best-of, exactly like cells across files: noise only ever
		// inflates a measurement, so the minimum is the signal.
		best, ok := out[c.Key()]
		if !ok {
			out[c.Key()] = c
			return
		}
		if c.NsPerOp < best.NsPerOp {
			best.NsPerOp = c.NsPerOp
			best.OpsPerSec = c.OpsPerSec
		}
		if c.AllocsPerOp < best.AllocsPerOp {
			best.AllocsPerOp = c.AllocsPerOp
		}
		out[c.Key()] = best
	}

	trimmed := strings.TrimSpace(string(data))
	if strings.HasPrefix(trimmed, "{") && !strings.Contains(strings.SplitN(trimmed, "\n", 2)[0], `"type"`) {
		// A single JSON object: PerfResult.
		var r bench.PerfResult
		if err := json.Unmarshal(data, &r); err != nil {
			return nil, err
		}
		for _, c := range r.Cells {
			add(c)
		}
		return out, nil
	}
	if strings.HasPrefix(trimmed, "[") {
		var cells []bench.PerfCell
		if err := json.Unmarshal(data, &cells); err != nil {
			return nil, err
		}
		for _, c := range cells {
			add(c)
		}
		return out, nil
	}

	// JSONL from mixedbench -json: skip rows of other experiments.
	for i, line := range strings.Split(trimmed, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		var rec struct {
			Type string          `json:"type"`
			Data json.RawMessage `json:"data"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			return nil, fmt.Errorf("line %d: %w", i+1, err)
		}
		if rec.Type != "PerfCell" {
			continue
		}
		var c bench.PerfCell
		if err := json.Unmarshal(rec.Data, &c); err != nil {
			return nil, fmt.Errorf("line %d: %w", i+1, err)
		}
		add(c)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no PerfCell rows found")
	}
	return out, nil
}
