package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"mixedmem/internal/bench"
)

func writeCells(t *testing.T, dir, name string, cells []bench.PerfCell) string {
	t.Helper()
	path := filepath.Join(dir, name)
	data, err := json.Marshal(bench.PerfResult{Transport: "sim", Procs: 4, Cells: cells})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func cell(ns, allocs float64) bench.PerfCell {
	return bench.PerfCell{
		Transport: "sim", Scenario: "write", Label: "pram", Batch: 64,
		Writers: 1, Ops: 1000, NsPerOp: ns, AllocsPerOp: allocs,
		OpsPerSec: 1e9 / ns,
	}
}

func TestCleanDiffPasses(t *testing.T) {
	dir := t.TempDir()
	base := writeCells(t, dir, "base.json", []bench.PerfCell{cell(100, 1.0)})
	cur := writeCells(t, dir, "cur.json", []bench.PerfCell{cell(105, 1.0)})
	if err := run([]string{base, cur}); err != nil {
		t.Fatalf("5%% slower within 10%% tolerance must pass, got %v", err)
	}
}

func TestThroughputRegressionFails(t *testing.T) {
	dir := t.TempDir()
	base := writeCells(t, dir, "base.json", []bench.PerfCell{cell(100, 1.0)})
	cur := writeCells(t, dir, "cur.json", []bench.PerfCell{cell(125, 1.0)})
	if err := run([]string{base, cur}); err != errRegression {
		t.Fatalf("25%% slower must fail the 10%% gate, got %v", err)
	}
}

func TestAllocRegressionFails(t *testing.T) {
	dir := t.TempDir()
	base := writeCells(t, dir, "base.json", []bench.PerfCell{cell(100, 1.0)})
	cur := writeCells(t, dir, "cur.json", []bench.PerfCell{cell(100, 2.0)})
	if err := run([]string{base, cur}); err != errRegression {
		t.Fatalf("+1 alloc/op must fail, got %v", err)
	}
}

func TestBestOfManyRunsDeNoises(t *testing.T) {
	dir := t.TempDir()
	base := writeCells(t, dir, "base.json", []bench.PerfCell{cell(100, 1.0)})
	// One noisy run and one quiet run: the per-cell best must be compared.
	noisy := writeCells(t, dir, "noisy.json", []bench.PerfCell{cell(180, 1.2)})
	quiet := writeCells(t, dir, "quiet.json", []bench.PerfCell{cell(102, 1.0)})
	if err := run([]string{base, noisy, quiet}); err != nil {
		t.Fatalf("best-of runs must pass, got %v", err)
	}
}

func TestMissingCellFails(t *testing.T) {
	dir := t.TempDir()
	extra := cell(50, 0)
	extra.Scenario = "contended1"
	base := writeCells(t, dir, "base.json", []bench.PerfCell{cell(100, 1.0), extra})
	cur := writeCells(t, dir, "cur.json", []bench.PerfCell{cell(100, 1.0)})
	if err := run([]string{base, cur}); err != errRegression {
		t.Fatalf("shrunk grid must fail, got %v", err)
	}
}

func TestLoadCellsJSONL(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "rows.jsonl")
	c := cell(100, 1.0)
	data, _ := json.Marshal(struct {
		Exp  string         `json:"exp"`
		Type string         `json:"type"`
		Data bench.PerfCell `json:"data"`
	}{"perf", "PerfCell", c})
	other := []byte(`{"exp":"e6","type":"Row","data":{"x":1}}`)
	if err := os.WriteFile(path, append(append(append([]byte{}, other...), '\n'), append(data, '\n')...), 0o644); err != nil {
		t.Fatal(err)
	}
	cells, err := loadCells(path)
	if err != nil {
		t.Fatalf("loadCells: %v", err)
	}
	if len(cells) != 1 {
		t.Fatalf("got %d cells, want 1 (non-PerfCell rows skipped)", len(cells))
	}
	if got := cells[c.Key()]; got.NsPerOp != 100 {
		t.Fatalf("cell round-trip: %+v", got)
	}
}
