// Command mixedvet applies the paper's compiler check (Section 4) to Go
// source written against the mixedmem core API. It runs five analyzers —
// lockdiscipline, labelconsistency, phasediscipline, entrydiscipline, and
// scopeusage — over the named packages and exits nonzero if any reports a
// finding.
//
// Usage:
//
//	mixedvet ./examples/... ./internal/apps/...
//	mixedvet -advise ./examples/jacobi     # weakest safe read label per location
//	mixedvet -c lockdiscipline ./...       # one analyzer only
//	mixedvet -json ./... > mixedvet.json   # machine-readable findings
//
// A finding can be suppressed with a //mixedvet:ignore comment on its line
// or on the line directly above — the annotation for deliberate discipline
// violations such as litmus programs. The exit code still reflects only
// unsuppressed findings.
//
// With -advise it also prints, per constant location, the weakest read
// label the corollaries statically justify (the static counterpart of
// check.Advise), walking the lattice slow < PRAM < causal < SC bottom-up:
// slow when the phase discipline provably holds and barriers are the only
// synchronization, PRAM when the phase discipline provably holds but awaits
// or locks appear, causal when the entry discipline provably holds, and SC
// otherwise — the lattice top needs no program condition.
package main

import (
	"flag"
	"fmt"
	"os"

	"mixedmem/internal/analysis/framework"
	"mixedmem/internal/analysis/mixedvet"
)

func main() {
	code, err := run(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "mixedvet:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

func run(args []string) (int, error) {
	fs := flag.NewFlagSet("mixedvet", flag.ContinueOnError)
	advise := fs.Bool("advise", false, "print the weakest statically-safe read label per location")
	only := fs.String("c", "", "run only the named analyzer")
	asJSON := fs.Bool("json", false, "print the report as JSON instead of text")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: mixedvet [-advise] [-c analyzer] packages...")
		fs.PrintDefaults()
		fmt.Fprintln(fs.Output(), "analyzers:")
		for _, a := range mixedvet.Analyzers {
			fmt.Fprintf(fs.Output(), "  %-17s %s\n", a.Name, a.Doc)
		}
	}
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0, nil
		}
		return 2, err
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	analyzers := mixedvet.Analyzers
	if *only != "" {
		analyzers = nil
		for _, a := range mixedvet.Analyzers {
			if a.Name == *only {
				analyzers = []*framework.Analyzer{a}
			}
		}
		if analyzers == nil {
			return 2, fmt.Errorf("unknown analyzer %q", *only)
		}
	}
	wd, err := os.Getwd()
	if err != nil {
		return 2, err
	}
	rep, err := mixedvet.Run(wd, patterns, analyzers, *advise)
	if err != nil {
		return 2, err
	}
	if *asJSON {
		data, err := rep.JSON()
		if err != nil {
			return 2, err
		}
		fmt.Println(string(data))
		if len(rep.Findings) > 0 {
			return 1, nil
		}
		return 0, nil
	}
	for _, f := range rep.Findings {
		fmt.Println(f)
	}
	if rep.Advice != nil {
		for _, a := range rep.Advice.Advice {
			fmt.Printf("advise: %-12s %-6s  %s\n", a.Loc, a.Label, a.Rationale)
		}
		fmt.Printf("advise: program label: %s\n", rep.Advice.ProgramLabel())
	}
	if len(rep.Findings) > 0 {
		return 1, nil
	}
	return 0, nil
}
