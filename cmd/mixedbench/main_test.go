package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRunQuickSingleExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	// Every experiment must run to completion in quick mode. E2/E5 are the
	// slowest; the rest are cheap even under test.
	for _, exp := range []string{"e1", "e3", "e9", "a1"} {
		exp := exp
		t.Run(exp, func(t *testing.T) {
			if err := run([]string{"-exp", exp, "-quick"}); err != nil {
				t.Fatalf("run(%s): %v", exp, err)
			}
		})
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	err := run([]string{"-exp", "e99"})
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Fatalf("err = %v, want unknown experiment", err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-nonsense"}); err == nil {
		t.Fatal("bad flag must error")
	}
}

func TestRunRejectsDegenerateProcs(t *testing.T) {
	err := run([]string{"-procs", "1", "-exp", "e2", "-quick"})
	if err == nil || !strings.Contains(err.Error(), "at least 2 processes") {
		t.Fatalf("err = %v, want procs guard", err)
	}
}

func TestRunJSONEmitsParsableRows(t *testing.T) {
	var buf bytes.Buffer
	if err := runTo([]string{"-exp", "e1", "-json"}, &buf); err != nil {
		t.Fatalf("runTo: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) == 0 {
		t.Fatal("no JSON rows emitted")
	}
	for _, line := range lines {
		var rec struct {
			Exp       string          `json:"exp"`
			Transport string          `json:"transport"`
			Type      string          `json:"type"`
			Data      json.RawMessage `json:"data"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %q: %v", line, err)
		}
		if rec.Exp != "e1" || rec.Transport != "sim" || rec.Type == "" || len(rec.Data) == 0 {
			t.Fatalf("incomplete record: %q", line)
		}
	}
	if strings.Contains(buf.String(), "claim") {
		t.Fatal("claim prose leaked into -json output")
	}
}

func TestRunTransportValidation(t *testing.T) {
	if err := run([]string{"-transport", "bogus"}); err == nil {
		t.Fatal("bogus transport accepted")
	}
	err := run([]string{"-transport", "tcp", "-exp", "e2"})
	if err == nil || !strings.Contains(err.Error(), "e8") {
		t.Fatalf("err = %v, want e8-only guard", err)
	}
}

func TestRunE8OverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	var buf bytes.Buffer
	if err := runTo([]string{"-exp", "e8", "-transport", "tcp", "-json"}, &buf); err != nil {
		t.Fatalf("runTo: %v", err)
	}
	var rec struct {
		Transport string `json:"transport"`
		Data      struct {
			Write    int64 `json:"Write"`
			PRAMRead int64 `json:"PRAMRead"`
		} `json:"data"`
	}
	if err := json.Unmarshal([]byte(strings.TrimSpace(buf.String())), &rec); err != nil {
		t.Fatalf("parse: %v (output %q)", err, buf.String())
	}
	if rec.Transport != "tcp" || rec.Data.Write <= 0 || rec.Data.PRAMRead <= 0 {
		t.Fatalf("suspicious tcp spectrum: %+v", rec)
	}
}

func TestRunS1QuickJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	var buf bytes.Buffer
	if err := runTo([]string{"-exp", "s1", "-quick", "-json"}, &buf); err != nil {
		t.Fatalf("runTo: %v", err)
	}
	var rec struct {
		Exp  string `json:"exp"`
		Data struct {
			Transport string
			Cells     []struct {
				Mode        string
				Rate        float64
				Read        struct{ Count, P50, P99, P999 int64 }
				Write       struct{ Count, P50, P99, P999 int64 }
				Vis         struct{ Count, P99 int64 }
				Fingerprint uint64
			}
		} `json:"data"`
	}
	if err := json.Unmarshal([]byte(strings.TrimSpace(buf.String())), &rec); err != nil {
		t.Fatalf("parse: %v (output %q)", err, buf.String())
	}
	if rec.Exp != "s1" || rec.Data.Transport != "sim" {
		t.Fatalf("wrong row identity: %+v", rec)
	}
	rates := map[float64]bool{}
	modes := map[string]bool{}
	for _, c := range rec.Data.Cells {
		rates[c.Rate] = true
		modes[c.Mode] = true
		if c.Read.Count == 0 || c.Write.Count == 0 || c.Vis.Count == 0 {
			t.Fatalf("cell %q rate %.0f has empty histograms", c.Mode, c.Rate)
		}
		if c.Fingerprint == 0 {
			t.Fatalf("cell %q rate %.0f missing workload fingerprint", c.Mode, c.Rate)
		}
	}
	if len(rates) < 3 {
		t.Fatalf("only %d offered-load points, want >= 3", len(rates))
	}
	if len(modes) != 3 {
		t.Fatalf("got label configurations %v, want all three", modes)
	}
}

func TestRunS1OverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	var buf bytes.Buffer
	if err := runTo([]string{"-exp", "s1", "-quick", "-json", "-transport", "tcp"}, &buf); err != nil {
		t.Fatalf("runTo: %v", err)
	}
	var rec struct {
		Data struct {
			Transport string
			Cells     []struct{ Fingerprint uint64 }
		} `json:"data"`
	}
	if err := json.Unmarshal([]byte(strings.TrimSpace(buf.String())), &rec); err != nil {
		t.Fatalf("parse: %v (output %q)", err, buf.String())
	}
	if rec.Data.Transport != "tcp" || len(rec.Data.Cells) == 0 {
		t.Fatalf("suspicious tcp serving row: %+v", rec.Data)
	}
}

func TestTCPRegistryListsCapableExperiments(t *testing.T) {
	err := run([]string{"-transport", "tcp", "-exp", "e2"})
	if err == nil {
		t.Fatal("tcp with a sim-only experiment must error")
	}
	for _, id := range []string{"e8", "a3", "s1"} {
		if !strings.Contains(err.Error(), id) {
			t.Fatalf("tcp guard %q does not list capable experiment %s", err, id)
		}
	}
}
