package main

import (
	"strings"
	"testing"
)

func TestRunQuickSingleExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	// Every experiment must run to completion in quick mode. E2/E5 are the
	// slowest; the rest are cheap even under test.
	for _, exp := range []string{"e1", "e3", "e9", "a1"} {
		exp := exp
		t.Run(exp, func(t *testing.T) {
			if err := run([]string{"-exp", exp, "-quick"}); err != nil {
				t.Fatalf("run(%s): %v", exp, err)
			}
		})
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	err := run([]string{"-exp", "e99"})
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Fatalf("err = %v, want unknown experiment", err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-nonsense"}); err == nil {
		t.Fatal("bad flag must error")
	}
}

func TestRunRejectsDegenerateProcs(t *testing.T) {
	err := run([]string{"-procs", "1", "-exp", "e2", "-quick"})
	if err == nil || !strings.Contains(err.Error(), "at least 2 processes") {
		t.Fatalf("err = %v, want procs guard", err)
	}
}
