// Command mixedbench regenerates every experiment of EXPERIMENTS.md (E1–E9):
// the paper's Figures 1–5 and the qualitative claims of Sections 5–7.
//
// Usage:
//
//	mixedbench                 # run every experiment
//	mixedbench -exp e5         # run one experiment
//	mixedbench -quick          # smaller problem sizes, zero network latency
//	mixedbench -procs 8        # override the process count
//	mixedbench -json           # one JSON line per measured row
//	mixedbench -exp e8 -transport tcp   # latency spectrum over real TCP
//	mixedbench -exp e8s                 # per-label cost curve (also tcp)
//	mixedbench -exp a3 -transport tcp   # placement ablation over real TCP
//	mixedbench -exp s1                  # serving tail-latency sweep (also tcp)
//	mixedbench -exp s1 -trace s1.mxtr   # + per-node event traces, for mixedtrace
//
// Output is one section per experiment with the measured rows and the
// paper's corresponding claim, so EXPERIMENTS.md can be checked against a
// fresh run. With -json each measured row becomes one line of the form
// {"exp":..., "transport":..., "type":..., "data":{...}} and the claim prose
// is suppressed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"mixedmem/internal/bench"
	"mixedmem/internal/dsm"
	"mixedmem/internal/network"
	"mixedmem/internal/obs"
	"mixedmem/internal/syncmgr"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mixedbench:", err)
		os.Exit(1)
	}
}

type config struct {
	exp       string
	quick     bool
	sweep     bool
	procs     int
	seed      int64
	jsonOut   bool
	transport string
	batch     int
	trace     string
	traceCap  int
	latency   network.LatencyModel

	out io.Writer
	// cur is the id of the experiment currently running, set by the
	// dispatch loop so emit can label rows.
	cur string
}

// emit reports one measured row: an indented String() line in text mode, a
// self-describing JSON line in -json mode.
func (c *config) emit(row any) error {
	if !c.jsonOut {
		_, err := fmt.Fprintln(c.out, " ", row)
		return err
	}
	rec := struct {
		Exp       string `json:"exp"`
		Transport string `json:"transport"`
		Type      string `json:"type"`
		Data      any    `json:"data"`
	}{
		Exp:       c.cur,
		Transport: c.transport,
		Type:      strings.TrimPrefix(fmt.Sprintf("%T", row), "bench."),
		Data:      row,
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("marshal %s row: %w", c.cur, err)
	}
	_, err = fmt.Fprintln(c.out, string(b))
	return err
}

// claim prints the paper claim the experiment checks; suppressed in -json
// mode, where only machine-readable rows appear.
func (c *config) claim(lines ...string) {
	if c.jsonOut {
		return
	}
	for _, l := range lines {
		fmt.Fprintln(c.out, " ", l)
	}
}

func run(args []string) error { return runTo(args, os.Stdout) }

func runTo(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mixedbench", flag.ContinueOnError)
	cfg := config{out: out}
	fs.StringVar(&cfg.exp, "exp", "all", "experiment to run: e1..e10, a1..a3, s1, or all")
	fs.BoolVar(&cfg.quick, "quick", false, "small sizes and zero latency")
	fs.BoolVar(&cfg.sweep, "sweep", false, "sweep process counts (2, 4, 8) in e2 and e5")
	fs.IntVar(&cfg.procs, "procs", 4, "number of processes")
	fs.Int64Var(&cfg.seed, "seed", 1, "workload seed")
	fs.BoolVar(&cfg.jsonOut, "json", false, "emit one JSON line per measured row")
	fs.StringVar(&cfg.transport, "transport", "sim",
		"message transport: sim (simulated fabric) or tcp (real kernel sockets; e8 and a3 only)")
	fs.IntVar(&cfg.batch, "batch", 32,
		"update-outbox batch size for e6's batched rows (MaxUpdates threshold)")
	fs.StringVar(&cfg.trace, "trace", "",
		"write the s1 sweep's merged event trace to this file (enables per-node tracers; mixedtrace reads it)")
	fs.IntVar(&cfg.traceCap, "trace-cap", 1<<15,
		"per-node tracer ring capacity used with -trace (slots, rounded up to a power of two)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if cfg.trace != "" && cfg.exp != "s1" {
		return fmt.Errorf("-trace is served by the s1 experiment: run with -exp s1")
	}
	if cfg.batch < 1 {
		return fmt.Errorf("-batch %d: batch size must be at least 1", cfg.batch)
	}
	if cfg.procs < 2 {
		return fmt.Errorf("-procs %d: the experiments need at least 2 processes (coordinator + worker)", cfg.procs)
	}
	cfg.latency = bench.DefaultLatency
	if cfg.quick {
		cfg.latency = network.LatencyModel{}
	}

	type experiment struct {
		id, title string
		run       func(*config) error
		// tcp marks experiments with a real-socket runner, selectable with
		// -transport tcp.
		tcp bool
	}
	experiments := []experiment{
		{"e1", "Figure 1: lock and barrier synchronization orders", runE1, false},
		{"e2", "Figure 2 vs Figure 3: barrier solver vs handshake solver", runE2, false},
		{"e3", "Section 5.1: PRAM reads are insufficient for handshaking", runE3, false},
		{"e4", "Figure 4: electromagnetic field computation (PRAM + barriers)", runE4, false},
		{"e5", "Figure 5 / Section 7: Cholesky with locks vs counter objects", runE5, false},
		{"e6", "Section 6: eager vs lazy vs demand-driven propagation", runE6, false},
		{"e7", "Section 7: asynchronous Gauss-Seidel converges under PRAM", runE7, false},
		{"e8", "Sections 1/3.2: access-latency spectrum (PRAM/causal vs SC)", runE8, true},
		{"e8s", "Label lattice: cost-of-consistency curve (slow/PRAM/causal/SC)", runE8S, true},
		{"e9", "Theorem 1 corollaries: random programs are SC", runE9, false},
		{"e10", "Section 2: producer/consumer via awaits vs lock polling", runE10, false},
		{"a1", "Ablation: timestamp elision for PRAM-consistent programs (Section 6)", runA1, false},
		{"a2", "Ablation: where each propagation mode pays (asymmetric links)", runA2, false},
		{"a3", "Ablation: access-pattern placement vs broadcast (Section 6)", runA3, true},
		{"s1", "Serving: session/KV tail latency per label configuration under load", runS1, true},
		{"perf", "Perf trajectory: hot-path ns/op, allocs/op, and contended throughput", runPerf, true},
	}

	want := strings.ToLower(cfg.exp)
	switch cfg.transport {
	case "sim":
	case "tcp":
		capable := false
		var ids []string
		for _, e := range experiments {
			if e.tcp {
				ids = append(ids, e.id)
				capable = capable || want == e.id
			}
		}
		if !capable {
			return fmt.Errorf("-transport tcp needs one tcp-capable experiment: run with -exp %s",
				strings.Join(ids, ", -exp "))
		}
	default:
		return fmt.Errorf("unknown transport %q (want sim or tcp)", cfg.transport)
	}
	matched := false
	for _, e := range experiments {
		if want != "all" && want != e.id {
			continue
		}
		matched = true
		cfg.cur = e.id
		if !cfg.jsonOut {
			fmt.Fprintf(cfg.out, "=== %s: %s ===\n", strings.ToUpper(e.id), e.title)
		}
		if err := e.run(&cfg); err != nil {
			return fmt.Errorf("%s: %w", e.id, err)
		}
		if !cfg.jsonOut {
			fmt.Fprintln(cfg.out)
		}
	}
	if !matched {
		return fmt.Errorf("unknown experiment %q (want e1..e10, a1..a3, s1, or all)", cfg.exp)
	}
	return nil
}

func runE10(cfg *config) error {
	items := 30
	if cfg.quick {
		items = 10
	}
	r, err := bench.RunPipelineComparison(items, cfg.procs, cfg.latency, cfg.seed)
	if err != nil {
		return err
	}
	if err := cfg.emit(r); err != nil {
		return err
	}
	cfg.claim("claim (Section 2): await statements capture the producer/consumer paradigm",
		"in an efficient manner")
	return nil
}

func runA1(cfg *config) error {
	n := 24
	if cfg.quick {
		n = 12
	}
	r, err := bench.RunTimestampAblation(n, cfg.procs, cfg.latency, cfg.seed)
	if err != nil {
		return err
	}
	if err := cfg.emit(r); err != nil {
		return err
	}
	cfg.claim("claim (Section 6): the timestamp overhead can be avoided when all reads",
		"following a write are PRAM operations (the Corollary 2 program class)")
	return nil
}

func runA2(cfg *config) error {
	noise, factor := 10, 100.0
	lat := cfg.latency
	if lat.Fixed == 0 {
		lat = network.LatencyModel{Fixed: 100 * time.Microsecond}
	}
	if cfg.quick {
		noise, factor = 5, 50
	}
	rows, err := bench.RunPropagationCostSweep(noise, factor, lat)
	if err != nil {
		return err
	}
	for _, r := range rows {
		if err := cfg.emit(r); err != nil {
			return err
		}
	}
	cfg.claim("claim (Section 6): eager pays at release, lazy at acquire, demand-driven",
		"only at the first read of invalidated data")
	return nil
}

func runA3(cfg *config) error {
	size, steps := 96, 20
	if cfg.quick {
		size, steps = 32, 8
	}
	var r bench.PlacementAblation
	var err error
	if cfg.transport == "tcp" {
		r, err = bench.RunPlacementAblationTCP(size, steps, cfg.procs, cfg.seed)
	} else {
		r, err = bench.RunPlacementAblation(size, steps, cfg.procs, cfg.latency, cfg.seed)
	}
	if err != nil {
		return err
	}
	if err := cfg.emit(r); err != nil {
		return err
	}
	cfg.claim("claim (Section 6): broadcast overhead can be avoided with optimizations based",
		"on the access patterns of shared variables")
	return nil
}

func runS1(cfg *config) error {
	opt := bench.ServingOptions{
		Procs:   cfg.procs,
		Seed:    cfg.seed,
		Latency: cfg.latency,
	}
	if cfg.trace != "" {
		opt.TraceCapacity = cfg.traceCap
	}
	if cfg.quick {
		opt.Workers = 2
		opt.Ops, opt.Warmup = 60, 12
		opt.Rates = []float64{1000, 4000, 0} // still three load points
		// A small nonzero model: -quick zeroes cfg.latency, but the serving
		// sweep is about queueing, which a zero model would erase entirely.
		opt.Latency = network.LatencyModel{Fixed: 25 * time.Microsecond}
	}
	var r bench.ServingResult
	var err error
	if cfg.transport == "tcp" {
		r, err = bench.RunServingTCP(opt)
	} else {
		r, err = bench.RunServing(opt)
	}
	if err != nil {
		return err
	}
	if err := cfg.emit(r); err != nil {
		return err
	}
	if cfg.trace != "" {
		if err := os.WriteFile(cfg.trace, obs.EncodeTrace(r.Traces), 0o644); err != nil {
			return fmt.Errorf("write trace: %w", err)
		}
		if !cfg.jsonOut {
			fmt.Fprintf(cfg.out, "  trace: %d snapshots -> %s (read with mixedtrace)\n",
				len(r.Traces), cfg.trace)
		}
	}
	cfg.claim("claim (Sections 5-6, serving restatement): labeling session state as causal",
		"scopes (partial replication) and aggregates as PRAM counter objects cuts",
		"update traffic and tail write-visibility latency versus labeling everything",
		"causal-broadcast, without changing any verdict of the checker")
	return nil
}

func runPerf(cfg *config) error {
	opt := bench.PerfOptions{Procs: cfg.procs}
	if cfg.quick {
		opt.Ops = 4000
	}
	var r bench.PerfResult
	var err error
	if cfg.transport == "tcp" {
		r, err = bench.RunPerfTCP(opt)
	} else {
		r, err = bench.RunPerf(opt)
	}
	if err != nil {
		return err
	}
	for _, c := range r.Cells {
		if err := cfg.emit(c); err != nil {
			return err
		}
	}
	cfg.claim("claim (ROADMAP, raw speed): weaker labels must be cheaper in implementation,",
		"not just in protocol; the grid pins ns/op, allocs/op, and contended",
		"throughput so cmd/benchdiff can fail CI when a change regresses them")
	return nil
}

func runE1(cfg *config) error {
	r, err := bench.RunFigure1()
	if err != nil {
		return err
	}
	if err := cfg.emit(r); err != nil {
		return err
	}
	cfg.claim("claim: the derived |->lock order satisfies the three properties of Section 3.1.1")
	return nil
}

func runE2(cfg *config) error {
	sizes := []int{16, 32}
	if cfg.quick {
		sizes = []int{12}
	}
	procCounts := []int{cfg.procs}
	if cfg.sweep {
		procCounts = []int{2, 4, 8}
	}
	for _, procs := range procCounts {
		for _, n := range sizes {
			r, err := bench.RunSolverComparison(n, procs, cfg.latency, cfg.seed)
			if err != nil {
				return err
			}
			if err := cfg.emit(r); err != nil {
				return err
			}
		}
	}
	rb, err := bench.RunRedBlack(16, cfg.procs, cfg.latency, cfg.seed)
	if err != nil {
		return err
	}
	if err := cfg.emit(rb); err != nil {
		return err
	}
	cfg.claim("claim (Section 7): the barrier solver (Fig. 2) outperforms the handshake solver (Fig. 3);",
		"red-black Gauss-Seidel is a second Corollary 2 program with faster convergence")
	return nil
}

func runE3(cfg *config) error {
	r, err := bench.RunPRAMInsufficiency()
	if err != nil {
		return err
	}
	if err := cfg.emit(r); err != nil {
		return err
	}
	cfg.claim("claim (Section 5.1): with PRAM reads, inconsistent (stale) estimate values can be read;",
		"causal reads cannot return them")
	return nil
}

func runE4(cfg *config) error {
	size, steps := 96, 30
	if cfg.quick {
		size, steps = 32, 10
	}
	r, err := bench.RunEMField(size, steps, cfg.procs, cfg.latency, cfg.seed)
	if err != nil {
		return err
	}
	if err := cfg.emit(r); err != nil {
		return err
	}
	n2d := 32
	if cfg.quick {
		n2d = 16
	}
	r2, err := bench.RunEM2DField(n2d, steps/2, cfg.procs, cfg.latency, cfg.seed)
	if err != nil {
		return err
	}
	if err := cfg.emit(r2); err != nil {
		return err
	}
	cfg.claim("claim (Figure 4): PRAM reads with barriers compute the fields exactly; the memory",
		"system provides the ghost copies")
	return nil
}

func runE5(cfg *config) error {
	sizes := []int{24, 40}
	if cfg.quick {
		sizes = []int{16}
	}
	procCounts := []int{cfg.procs}
	if cfg.sweep {
		procCounts = []int{2, 4, 8}
	}
	for _, procs := range procCounts {
		for _, n := range sizes {
			r, err := bench.RunCholeskyComparison(n, procs, 0.3, cfg.latency, cfg.seed)
			if err != nil {
				return err
			}
			if err := cfg.emit(r); err != nil {
				return err
			}
		}
	}
	cfg.claim("claim (Section 7): the counter-object algorithm outperforms the lock-based one significantly")
	return nil
}

func runE6(cfg *config) error {
	w := bench.PropagationWorkload{
		Procs:       cfg.procs,
		Handoffs:    10,
		WritesPerCS: 8,
		ReadBack:    false,
	}
	if cfg.quick {
		w.Handoffs, w.WritesPerCS = 4, 4
	}
	// Before rows: the three modes unbatched, as the experiment always ran.
	rs, err := bench.RunPropagationSweep(w, cfg.latency, cfg.seed)
	if err != nil {
		return err
	}
	for _, r := range rs {
		if err := cfg.emit(r); err != nil {
			return err
		}
	}
	// After rows: the same three modes with the update outbox on at the
	// -batch threshold; update frames collapse by roughly WritesPerCS.
	wb := w
	wb.Batch = dsm.BatchConfig{Enabled: true, MaxUpdates: cfg.batch}
	rsb, err := bench.RunPropagationSweep(wb, cfg.latency, cfg.seed)
	if err != nil {
		return err
	}
	for _, r := range rsb {
		if err := cfg.emit(r); err != nil {
			return err
		}
	}
	// Batch-size sweep on the lazy mode (the default), from off upward.
	sweep, err := bench.RunPropagationBatchSweep(
		syncmgr.Lazy, w, []int{0, 1, 4, 16, 64}, cfg.latency, cfg.seed)
	if err != nil {
		return err
	}
	for _, r := range sweep {
		if err := cfg.emit(r); err != nil {
			return err
		}
	}
	cfg.claim("claim (Section 6): eager pays flush traffic at release; lazy waits at acquire;",
		"demand-driven blocks only reads of invalidated locations; batching updates",
		"between synchronization points collapses per-write messages into one frame",
		"per destination per critical section (Munin's delayed update queue)")
	return nil
}

func runE7(cfg *config) error {
	rounds := []int{5, 20, 80}
	if cfg.quick {
		rounds = []int{5, 40}
	}
	for _, r := range rounds {
		res, err := bench.RunGaussSeidel(16, cfg.procs, r, cfg.seed)
		if err != nil {
			return err
		}
		if err := cfg.emit(res); err != nil {
			return err
		}
	}
	cfg.claim("claim (Section 7): asynchronous relaxation converges even with PRAM")
	return nil
}

func runE8(cfg *config) error {
	ops := 50
	if cfg.transport == "tcp" {
		r, err := bench.RunLatencyMicroTCP(ops)
		if err != nil {
			return err
		}
		if err := cfg.emit(r); err != nil {
			return err
		}
		cfg.claim("claim (Sections 1, 3.2): weak reads/writes stay local even when the update",
			"broadcasts cross the kernel's TCP stack (SC columns are sim-only, reported 0)")
		return nil
	}
	lat := cfg.latency
	if lat.Fixed == 0 {
		lat = bench.DefaultLatency // the spectrum needs a nonzero round trip
	}
	r, err := bench.RunLatencyMicro(ops, lat)
	if err != nil {
		return err
	}
	if err := cfg.emit(r); err != nil {
		return err
	}
	cfg.claim("claim (Sections 1, 3.2): weak reads/writes are local; sequential consistency pays",
		"a round trip per operation")
	return nil
}

func runE8S(cfg *config) error {
	ops := 300
	if cfg.quick {
		ops = 100
	}
	if cfg.transport == "tcp" {
		r, err := bench.RunLatencySpectrumTCP(2, ops)
		if err != nil {
			return err
		}
		if err := cfg.emit(r); err != nil {
			return err
		}
		cfg.claim("claim (lattice): cost is monotone in label strength over real sockets —",
			"weak accesses stay local while the SC point pays a kernel round trip per access")
		return nil
	}
	r, err := bench.RunLatencySpectrum(cfg.procs, ops, cfg.latency)
	if err != nil {
		return err
	}
	if err := cfg.emit(r); err != nil {
		return err
	}
	cfg.claim("claim (lattice): cost is monotone in label strength — the weak labels share the",
		"broadcast path (slow sheds timestamp bytes), and SC pays a round trip per access")
	return nil
}

func runE9(cfg *config) error {
	seeds := 10
	if cfg.quick {
		seeds = 4
	}
	r, err := bench.RunCorollaries(seeds)
	if err != nil {
		return err
	}
	if err := cfg.emit(r); err != nil {
		return err
	}
	cfg.claim("claim (Corollaries 1-2): entry-consistent programs with causal reads and",
		"PRAM-consistent programs with PRAM reads behave sequentially consistently")
	return nil
}
