// Command mixedtrace is the causal-path latency explainer: it reads a
// merged event trace (written by `mixedbench -exp s1 -trace FILE` or any
// caller of obs.EncodeTrace), walks the happens-before chain behind every
// sampled write-visibility probe — write issue, outbox, wire, apply,
// causal dependency wait, wakeup — and prints a per-run table attributing
// the p50/p99 of each end-to-end interval to those segments.
//
// Usage:
//
//	mixedtrace s1.mxtr                    # per-tag attribution table
//	mixedtrace -probe all s1.mxtr         # explain every awaited location
//	mixedtrace -probe sess/ s1.mxtr       # explain awaits under a prefix
//	mixedtrace -chrome out.json s1.mxtr   # also emit a Perfetto-loadable trace
//	mixedtrace -min-attr 0.95 s1.mxtr     # CI gate: fail below 95% attribution
//	mixedtrace -check s1.mxtr             # replay the discipline checker
//
// The -min-attr gate is the acceptance bar CI runs on a seeded S1 trace:
// every complete sample's interval must telescope into named segments
// covering at least the given fraction, and no sample may be incomplete
// (an incomplete sample means the ring wrapped over a chain anchor —
// resize the ring, don't lower the gate).
//
// -check replays the trace through the dynamic discipline checker
// (internal/obs/tracecheck): lock pairing per name, plain writes under
// read locks, barrier-phase write placement for PRAM/Slow locations, and
// awaits that never matched. It prints each violation and fails if there
// are any — the dynamic side of the static/dynamic cross-validation, and
// a standalone mode: no probe or attribution table is required.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"mixedmem/internal/apps"
	"mixedmem/internal/obs"
	"mixedmem/internal/obs/tracecheck"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mixedtrace:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mixedtrace", flag.ContinueOnError)
	probe := fs.String("probe", "",
		"probed locations: empty for the serving write-visibility flags, 'all' for every awaited location, anything else as a location prefix")
	chrome := fs.String("chrome", "",
		"also write the merged trace as Perfetto-loadable Chrome trace-event JSON to this file")
	minAttr := fs.Float64("min-attr", 0,
		"fail unless every run attributes at least this fraction of each sampled interval (0 disables the gate)")
	check := fs.Bool("check", false,
		"replay the trace through the dynamic discipline checker and fail on any violation (skips the attribution table)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("usage: mixedtrace [flags] TRACEFILE...")
	}
	if *minAttr < 0 || *minAttr > 1 {
		return fmt.Errorf("-min-attr %v out of [0,1]", *minAttr)
	}

	var snaps []*obs.Snapshot
	for _, path := range fs.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		s, err := obs.DecodeTrace(data)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		snaps = append(snaps, s...)
	}
	var dropped uint64
	for _, s := range snaps {
		dropped += s.Dropped
	}
	fmt.Fprintf(out, "trace: %d node snapshots, %d events dropped by ring wrap\n",
		len(snaps), dropped)

	if *check {
		res := tracecheck.Check(snaps)
		fmt.Fprintf(out, "check: %d nodes judged, %d skipped (ring wrap), %d writes checked, phase rule %s\n",
			res.NodesChecked, res.NodesSkipped, res.WritesChecked,
			map[bool]string{true: "applied", false: "not applicable (no global barrier)"}[res.PhaseChecked])
		for _, v := range res.Violations {
			fmt.Fprintln(out, " ", v)
		}
		if n := len(res.Violations); n > 0 {
			return fmt.Errorf("%d discipline violations", n)
		}
		fmt.Fprintln(out, "check passed: no discipline violations")
		return nil
	}

	var pred func(string) bool
	switch {
	case *probe == "":
		pred = apps.IsVisFlagLoc
	case *probe == "all":
		pred = nil
	default:
		prefix := *probe
		pred = func(loc string) bool { return strings.HasPrefix(loc, prefix) }
	}
	ex := obs.Explain(snaps, pred)
	if len(ex.SamplesOut) == 0 {
		return fmt.Errorf("no awaited locations matched the probe predicate %q", *probe)
	}
	ex.WriteTable(out)

	if *chrome != "" {
		f, err := os.Create(*chrome)
		if err != nil {
			return err
		}
		if err := obs.WriteChromeTrace(f, snaps); err != nil {
			f.Close()
			return fmt.Errorf("chrome export: %w", err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "chrome trace: %s (load in Perfetto / chrome://tracing)\n", *chrome)
	}

	if *minAttr > 0 {
		for _, b := range ex.Breakdowns {
			if b.Incomplete > 0 {
				return fmt.Errorf("%s: %d of %d samples incomplete (ring wrapped over chain anchors)",
					b.Tag, b.Incomplete, b.Samples)
			}
			if b.MinAttribution < *minAttr {
				return fmt.Errorf("%s: attribution %.3f below the %.3f gate",
					b.Tag, b.MinAttribution, *minAttr)
			}
		}
		fmt.Fprintf(out, "attribution gate passed: every run >= %.1f%%\n", *minAttr*100)
	}
	return nil
}
