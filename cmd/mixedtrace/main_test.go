package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mixedmem/internal/apps"
	"mixedmem/internal/bench"
	"mixedmem/internal/network"
	"mixedmem/internal/obs"
)

// writeTestTrace runs a tiny traced S1 cell and writes its merged trace,
// returning the file path.
func writeTestTrace(t *testing.T) string {
	t.Helper()
	res, err := bench.RunServing(bench.ServingOptions{
		Procs: 2, Workers: 1,
		Ops: 30, Warmup: 6,
		Rates:         []float64{0},
		Modes:         []apps.SessionMode{apps.SessionCausalScoped},
		Latency:       network.LatencyModel{Fixed: 20 * 1000}, // 20µs
		Seed:          5,
		TraceCapacity: 1 << 14,
	})
	if err != nil {
		t.Fatalf("RunServing: %v", err)
	}
	path := filepath.Join(t.TempDir(), "s1.mxtr")
	if err := os.WriteFile(path, obs.EncodeTrace(res.Traces), 0o644); err != nil {
		t.Fatalf("write trace: %v", err)
	}
	return path
}

// TestExplainTraceFile is the CLI round trip: a traced serving run's file
// explains into a table that passes the 95% attribution gate and exports a
// valid Chrome trace document.
func TestExplainTraceFile(t *testing.T) {
	path := writeTestTrace(t)
	chrome := filepath.Join(t.TempDir(), "trace.json")
	var out bytes.Buffer
	if err := run([]string{"-min-attr", "0.95", "-chrome", chrome, path}, &out); err != nil {
		t.Fatalf("mixedtrace: %v\n%s", err, out.String())
	}
	got := out.String()
	if !strings.Contains(got, "sim/causal-scoped@closed") {
		t.Fatalf("table missing the run tag:\n%s", got)
	}
	if !strings.Contains(got, "attribution gate passed") {
		t.Fatalf("gate did not pass:\n%s", got)
	}
	data, err := os.ReadFile(chrome)
	if err != nil {
		t.Fatalf("chrome export: %v", err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("chrome JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("chrome document has no events")
	}
}

// TestCheckMode pins -check: a real traced serving run replays clean, and
// a trace with a seeded lock-pairing breach fails with the violation named.
func TestCheckMode(t *testing.T) {
	path := writeTestTrace(t)
	var out bytes.Buffer
	if err := run([]string{"-check", path}, &out); err != nil {
		t.Fatalf("clean trace failed -check: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "check passed") {
		t.Fatalf("missing pass line:\n%s", out.String())
	}

	bad := &obs.Snapshot{
		Tag: "seeded", Node: 0, Capacity: 64, Recorded: 1,
		Locs: []string{"m"},
		Events: []obs.Event{
			{Index: 0, Type: obs.EvLockRelease, Loc: 0, B: 1},
		},
	}
	badPath := filepath.Join(t.TempDir(), "bad.mxtr")
	if err := os.WriteFile(badPath, obs.EncodeTrace([]*obs.Snapshot{bad}), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	err := run([]string{"-check", badPath}, &out)
	if err == nil || !strings.Contains(err.Error(), "1 discipline violations") {
		t.Fatalf("seeded violation not detected: err=%v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), `lock "m" released in write mode while not held`) {
		t.Fatalf("violation not printed:\n%s", out.String())
	}
}

// TestProbeSelection pins the -probe modes: 'all' accepts more awaits than
// the default vis-flag predicate, and a prefix that matches nothing fails.
func TestProbeSelection(t *testing.T) {
	path := writeTestTrace(t)
	var flagOnly, all bytes.Buffer
	if err := run([]string{path}, &flagOnly); err != nil {
		t.Fatalf("default probe: %v", err)
	}
	if err := run([]string{"-probe", "all", path}, &all); err != nil {
		t.Fatalf("-probe all: %v", err)
	}
	if err := run([]string{"-probe", "nosuch/", path}, new(bytes.Buffer)); err == nil {
		t.Fatal("want error for a probe prefix matching nothing")
	}
	if err := run([]string{}, new(bytes.Buffer)); err == nil {
		t.Fatal("want usage error without a trace file")
	}
	if err := run([]string{"-min-attr", "2", path}, new(bytes.Buffer)); err == nil {
		t.Fatal("want error for -min-attr out of range")
	}
}
