package main

import (
	"strings"
	"testing"

	"mixedmem/internal/check"
	"mixedmem/internal/core"
	"mixedmem/internal/history"
)

func TestRunBothKinds(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	if err := run([]string{"-runs", "3", "-seed", "11"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunEntryOnly(t *testing.T) {
	if err := run([]string{"-runs", "2", "-kind", "entry", "-v"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunPhasedOnly(t *testing.T) {
	if err := run([]string{"-runs", "2", "-kind", "phased"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunUnknownKind(t *testing.T) {
	err := run([]string{"-kind", "bogus"})
	if err == nil || !strings.Contains(err.Error(), "unknown kind") {
		t.Fatalf("err = %v, want unknown kind", err)
	}
}

func TestRunLitmus(t *testing.T) {
	if err := run([]string{"-litmus"}); err != nil {
		t.Fatalf("litmus: %v", err)
	}
}

func TestVerdictDetectsViolation(t *testing.T) {
	// Feed a history that violates mixed consistency (stale FIFO re-read)
	// and check verdict reports it.
	b := history.NewBuilder(2)
	b.Write(0, "x", 1)
	b.Write(0, "x", 2)
	b.Read(1, "x", 2, history.LabelPRAM)
	b.Read(1, "x", 1, history.LabelPRAM)
	ok, detail := verdict(b.History(), check.Mixed)
	if ok {
		t.Fatalf("verdict accepted a PRAM violation: %s", detail)
	}
	if !strings.Contains(detail, "violation") {
		t.Fatalf("detail = %q, want violation report", detail)
	}
}

func TestVerdictAcceptsConsistentRun(t *testing.T) {
	h, _, err := core.RunRandomEntryConsistent(core.RandomEntryConsistentConfig{Seed: 5})
	if err != nil {
		t.Fatalf("RunRandomEntryConsistent: %v", err)
	}
	ok, detail := verdict(h, check.Mixed)
	if !ok {
		t.Fatalf("verdict rejected a consistent run: %s", detail)
	}
}
