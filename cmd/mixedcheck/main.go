// Command mixedcheck stress-tests the runtime against the formal model: it
// runs randomly generated programs on the recording mixed-consistency
// system, replays every recorded history through the Section 3 checker, and
// reports violations of mixed consistency (Definition 4), the program-class
// conditions (Corollaries 1–2), and sequential consistency.
//
// Usage:
//
//	mixedcheck -runs 50 -seed 7
//	mixedcheck -kind entry      # only entry-consistent programs
//	mixedcheck -kind phased     # only PRAM-consistent phased programs
//	mixedcheck -v               # print every run's verdict
//
// A nonzero exit status means the runtime produced a history the model
// forbids.
package main

import (
	"flag"
	"fmt"
	"os"

	"mixedmem/internal/check"
	"mixedmem/internal/core"
	"mixedmem/internal/history"
	"mixedmem/internal/litmus"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mixedcheck:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mixedcheck", flag.ContinueOnError)
	runs := fs.Int("runs", 20, "random programs per kind")
	seed := fs.Int64("seed", 1, "base seed")
	kind := fs.String("kind", "both", "program kind: entry, phased, or both")
	verbose := fs.Bool("v", false, "print every run")
	procs := fs.Int("procs", 3, "processes per program")
	ops := fs.Int("ops", 3, "critical sections per process (entry kind)")
	phases := fs.Int("phases", 2, "phases (phased kind)")
	runLitmus := fs.Bool("litmus", false, "run the litmus suite and print the verdict table")
	advise := fs.Bool("advise", false, "run the compiler label advisor on sample programs")
	dot := fs.Bool("dot", false, "emit a Graphviz causality graph of one sample run to stdout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dot {
		h, _, err := core.RunRandomEntryConsistent(core.RandomEntryConsistentConfig{
			Procs: *procs, OpsPerProc: *ops, Seed: *seed,
		})
		if err != nil {
			return fmt.Errorf("dot sample: %w", err)
		}
		a, err := h.Analyze()
		if err != nil {
			return fmt.Errorf("dot sample: %w", err)
		}
		return a.WriteDOT(os.Stdout)
	}
	if *runLitmus {
		return litmusTable()
	}
	if *advise {
		return adviseSamples(*seed)
	}
	if *kind != "entry" && *kind != "phased" && *kind != "both" {
		return fmt.Errorf("unknown kind %q", *kind)
	}

	failures := 0
	if *kind == "entry" || *kind == "both" {
		for i := 0; i < *runs; i++ {
			s := *seed + int64(i)
			h, locks, err := core.RunRandomEntryConsistent(core.RandomEntryConsistentConfig{
				Procs: *procs, OpsPerProc: *ops, Seed: s,
			})
			if err != nil {
				return fmt.Errorf("entry run %d: %w", i, err)
			}
			ok, detail := verdict(h, func(a *history.Analysis) []check.Violation {
				v := check.Mixed(a)
				v = append(v, check.EntryConsistent(h, locks)...)
				return v
			})
			report(*verbose, &failures, "entry", s, ok, detail)
		}
	}
	if *kind == "phased" || *kind == "both" {
		for i := 0; i < *runs; i++ {
			s := *seed + int64(i)
			h, err := core.RunRandomPhased(core.RandomPhasedConfig{
				Procs: *procs, Phases: *phases, Seed: s,
			})
			if err != nil {
				return fmt.Errorf("phased run %d: %w", i, err)
			}
			ok, detail := verdict(h, func(a *history.Analysis) []check.Violation {
				v := check.Mixed(a)
				v = append(v, check.PRAMConsistent(h)...)
				return v
			})
			report(*verbose, &failures, "phased", s, ok, detail)
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d runs violated the model", failures)
	}
	fmt.Println("all runs consistent: mixed consistency and sequential consistency hold")
	return nil
}

// adviseSamples runs the Section 4 compiler check on one recorded program
// of each class and prints the recommended read labels.
func adviseSamples(seed int64) error {
	h, err := core.RunRandomPhased(core.RandomPhasedConfig{Seed: seed})
	if err != nil {
		return fmt.Errorf("phased sample: %w", err)
	}
	adv := check.Advise(h, nil)
	fmt.Printf("phased program (%d ops): recommend %s reads — %s\n",
		len(h.Ops), adv.Label, adv.Rationale)

	h2, locks, err := core.RunRandomEntryConsistent(core.RandomEntryConsistentConfig{Seed: seed})
	if err != nil {
		return fmt.Errorf("entry sample: %w", err)
	}
	adv2 := check.Advise(h2, locks)
	fmt.Printf("locked program (%d ops): recommend %s reads — %s\n",
		len(h2.Ops), adv2.Label, adv2.Rationale)
	return nil
}

// litmusTable evaluates the full litmus suite at every lattice point and
// prints the verdict table, failing if any observed verdict disagrees with
// the suite's annotation.
func litmusTable() error {
	fmt.Printf("%-18s %-10s %-10s %-10s %-10s  %s\n", "test", "slow", "PRAM", "causal", "SC", "behavior")
	mismatches := 0
	for _, tt := range litmus.Suite() {
		slow, pram, causal, sc, err := tt.Evaluate()
		if err != nil {
			return fmt.Errorf("litmus %s: %w", tt.Name, err)
		}
		marker := ""
		if slow != tt.Slow || pram != tt.PRAM || causal != tt.Causal || sc != tt.SC {
			marker = "  <-- MISMATCH"
			mismatches++
		}
		fmt.Printf("%-18s %-10s %-10s %-10s %-10s  %s%s\n",
			tt.Name, slow, pram, causal, sc, tt.Description, marker)
	}
	if mismatches > 0 {
		return fmt.Errorf("%d litmus verdicts disagree with annotations", mismatches)
	}
	fmt.Println("\nall litmus verdicts match their annotations (SC ⊆ causal ⊆ PRAM ⊆ slow)")
	return nil
}

// verdict analyzes a history, runs the supplied checkers, and verifies
// sequential consistency.
func verdict(h *history.History, checks func(*history.Analysis) []check.Violation) (bool, string) {
	a, err := h.Analyze()
	if err != nil {
		return false, fmt.Sprintf("analyze: %v", err)
	}
	if v := checks(a); len(v) > 0 {
		return false, fmt.Sprintf("%d violations, first: %v", len(v), v[0])
	}
	ok, _, err := check.SequentiallyConsistent(a)
	if err != nil {
		return false, fmt.Sprintf("SC search: %v", err)
	}
	if !ok {
		return false, "history is not sequentially consistent"
	}
	return true, fmt.Sprintf("%d ops, SC", len(h.Ops))
}

func report(verbose bool, failures *int, kind string, seed int64, ok bool, detail string) {
	if !ok {
		*failures++
		fmt.Printf("FAIL %s seed=%d: %s\n", kind, seed, detail)
		return
	}
	if verbose {
		fmt.Printf("ok   %s seed=%d: %s\n", kind, seed, detail)
	}
}
