package seqmem

import (
	"strconv"
	"testing"
	"time"
)

func newSys(t *testing.T, procs int) *System {
	t.Helper()
	sys, err := NewSystem(Config{Procs: procs})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	t.Cleanup(sys.Close)
	return sys
}

func TestNewSystemValidation(t *testing.T) {
	if _, err := NewSystem(Config{Procs: 0}); err == nil {
		t.Error("zero procs must error")
	}
}

func TestWriteIsImmediatelyGloballyVisible(t *testing.T) {
	sys := newSys(t, 2)
	sys.Proc(0).Write("x", 7)
	// Sequential consistency through a central server: once the writer's
	// Write returns, every read anywhere sees it.
	if got := sys.Proc(1).ReadPRAM("x"); got != 7 {
		t.Fatalf("read = %d, want 7", got)
	}
	if got := sys.Proc(1).ReadCausal("x"); got != 7 {
		t.Fatalf("causal-labeled read = %d, want 7", got)
	}
}

func TestUnwrittenLocationReadsZero(t *testing.T) {
	sys := newSys(t, 1)
	if got := sys.Proc(0).ReadPRAM("nothing"); got != 0 {
		t.Fatalf("read = %d, want 0", got)
	}
}

func TestLockMutualExclusionAndCounter(t *testing.T) {
	sys := newSys(t, 3)
	const iters = 20
	sys.Run(func(p *Proc) {
		for i := 0; i < iters; i++ {
			p.WLock("l")
			v := p.ReadPRAM("x")
			p.Write("x", v+1)
			p.WUnlock("l")
		}
	})
	if got := sys.Proc(0).ReadPRAM("x"); got != 3*iters {
		t.Fatalf("counter = %d, want %d", got, 3*iters)
	}
}

func TestReadLocksShared(t *testing.T) {
	sys := newSys(t, 2)
	sys.Proc(0).RLock("l")
	done := make(chan struct{})
	go func() {
		sys.Proc(1).RLock("l")
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("shared read lock blocked")
	}
	sys.Proc(0).RUnlock("l")
	sys.Proc(1).RUnlock("l")
}

func TestWriterWaitsForReaders(t *testing.T) {
	sys := newSys(t, 2)
	sys.Proc(0).RLock("l")
	acquired := make(chan struct{})
	go func() {
		sys.Proc(1).WLock("l")
		close(acquired)
	}()
	select {
	case <-acquired:
		t.Fatal("writer granted while reader holds")
	case <-time.After(30 * time.Millisecond):
	}
	sys.Proc(0).RUnlock("l")
	select {
	case <-acquired:
	case <-time.After(2 * time.Second):
		t.Fatal("writer never granted")
	}
	sys.Proc(1).WUnlock("l")
}

func TestAwait(t *testing.T) {
	sys := newSys(t, 2)
	done := make(chan int64, 1)
	go func() {
		sys.Proc(1).Await("flag", 5)
		done <- sys.Proc(1).ReadPRAM("data")
	}()
	sys.Proc(0).Write("data", 11)
	sys.Proc(0).Write("flag", 5)
	select {
	case got := <-done:
		if got != 11 {
			t.Fatalf("data = %d, want 11", got)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("await never fired")
	}
}

func TestAwaitAlreadyTrue(t *testing.T) {
	sys := newSys(t, 1)
	sys.Proc(0).Write("f", 1)
	sys.Proc(0).Await("f", 1) // must return immediately
}

func TestAwaitFiresOnAdd(t *testing.T) {
	sys := newSys(t, 2)
	done := make(chan struct{})
	go func() {
		sys.Proc(1).Await("count", 0)
		close(done)
	}()
	sys.Proc(0).Write("count", 2)
	sys.Proc(0).Add("count", -1)
	sys.Proc(0).Add("count", -1)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("await on decremented counter never fired")
	}
}

func TestBarrier(t *testing.T) {
	sys := newSys(t, 3)
	sums := make([]int64, 3)
	sys.Run(func(p *Proc) {
		p.Write("w"+strconv.Itoa(p.ID()), int64(p.ID()+1))
		p.Barrier()
		var sum int64
		for q := 0; q < p.N(); q++ {
			sum += p.ReadPRAM("w" + strconv.Itoa(q))
		}
		sums[p.ID()] = sum
	})
	for i, s := range sums {
		if s != 6 {
			t.Errorf("proc %d sum = %d, want 6", i, s)
		}
	}
}

func TestAdd(t *testing.T) {
	sys := newSys(t, 2)
	sys.Run(func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Add("c", 1)
		}
	})
	if got := sys.Proc(0).ReadPRAM("c"); got != 20 {
		t.Fatalf("c = %d, want 20", got)
	}
}

func TestNetStats(t *testing.T) {
	sys := newSys(t, 1)
	sys.Proc(0).Write("x", 1)
	if s := sys.NetStats(); s.MessagesSent < 2 {
		t.Errorf("stats = %+v, want at least request+reply", s)
	}
}
