// Package seqmem is the sequentially consistent baseline memory: a central
// server process serializes every operation, and every read, write, and
// synchronization operation is a blocking round trip to it.
//
// This is the standard software realization of sequential consistency on a
// message-passing system and serves as the strong end of the paper's
// consistency spectrum: the same programs run here and on the
// mixed-consistency system (both implement core.Process), and the latency
// benchmarks of EXPERIMENTS.md E8 quantify the paper's motivation that
// weaker consistency buys lower access latency (Sections 1, 3.2).
package seqmem

import (
	"fmt"
	"math"
	"sync"

	"mixedmem/internal/core"
	"mixedmem/internal/network"
)

// Message kinds of the client/server protocol.
const (
	kindRead     = "sc-read"
	kindWrite    = "sc-write"
	kindAdd      = "sc-add"
	kindAddFloat = "sc-addf"
	kindAwait    = "sc-await"
	kindRLock    = "sc-rlock"
	kindRUnlock  = "sc-runlock"
	kindWLock    = "sc-wlock"
	kindWUnlock  = "sc-wunlock"
	kindBarrier  = "sc-barrier"
	kindReply    = "sc-reply"
)

// request is the payload of every client-to-server message.
type request struct {
	ReqID  uint64
	Client int
	Loc    string
	Value  int64
	K      int
}

// reply is the payload of every server-to-client message.
type reply struct {
	ReqID uint64
	Value int64
}

// Config configures a sequentially consistent System.
type Config struct {
	// Procs is the number of application processes.
	Procs int
	// Latency models message delivery cost.
	Latency network.LatencyModel
	// Seed seeds latency jitter.
	Seed int64
}

// System is a running sequentially consistent memory: Procs clients plus a
// server on fabric node Procs.
type System struct {
	fabric *network.Fabric
	procs  []*Proc
	server *server
}

// NewSystem starts the server and the client receive loops.
func NewSystem(cfg Config) (*System, error) {
	if cfg.Procs <= 0 {
		return nil, fmt.Errorf("seqmem: %d procs", cfg.Procs)
	}
	fabric, err := network.New(network.Config{
		Nodes:   cfg.Procs + 1,
		Latency: cfg.Latency,
		Seed:    cfg.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("seqmem: fabric: %w", err)
	}
	sys := &System{fabric: fabric}
	sys.server = newServer(cfg.Procs, fabric)
	for i := 0; i < cfg.Procs; i++ {
		sys.procs = append(sys.procs, newProc(i, cfg.Procs, fabric))
	}
	return sys, nil
}

// Proc returns the handle for process i.
func (s *System) Proc(i int) *Proc { return s.procs[i] }

// Procs returns the number of client processes.
func (s *System) Procs() int { return len(s.procs) }

// Run executes body once per process concurrently and waits.
func (s *System) Run(body func(p *Proc)) {
	var wg sync.WaitGroup
	for _, p := range s.procs {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			body(p)
		}()
	}
	wg.Wait()
}

// NetStats returns the fabric's message accounting.
func (s *System) NetStats() network.Stats { return s.fabric.Stats() }

// Close shuts down the fabric, the server, and the client loops.
func (s *System) Close() {
	s.fabric.Close()
	s.server.wait()
	for _, p := range s.procs {
		p.wait()
	}
}

// server serializes all operations.
type server struct {
	id     int
	n      int
	fabric *network.Fabric
	done   chan struct{}

	mem map[string]int64
	// locks[name] tracks holders and the wait queue.
	locks map[string]*lockState
	// barriers[k] counts arrivals and keeps the waiting clients.
	barriers map[int]*barrierState
	// awaits[loc] holds requests blocked until the location's value
	// matches.
	awaits map[string][]request
}

type lockState struct {
	writer  int
	readers map[int]bool
	queue   []queuedLock
}

type queuedLock struct {
	req   request
	write bool
}

type barrierState struct {
	waiting []request
}

func newServer(n int, fabric *network.Fabric) *server {
	s := &server{
		id:       n,
		n:        n,
		fabric:   fabric,
		done:     make(chan struct{}),
		mem:      make(map[string]int64),
		locks:    make(map[string]*lockState),
		barriers: make(map[int]*barrierState),
		awaits:   make(map[string][]request),
	}
	go s.loop()
	return s
}

func (s *server) wait() { <-s.done }

func (s *server) loop() {
	defer close(s.done)
	for {
		m, ok := s.fabric.Recv(s.id)
		if !ok {
			return
		}
		req, ok := m.Payload.(request)
		if !ok {
			continue
		}
		switch m.Kind {
		case kindRead:
			s.reply(req, s.mem[req.Loc])
		case kindWrite:
			s.mem[req.Loc] = req.Value
			s.reply(req, 0)
			s.fireAwaits(req.Loc)
		case kindAdd:
			s.mem[req.Loc] += req.Value
			s.reply(req, 0)
			s.fireAwaits(req.Loc)
		case kindAddFloat:
			sum := math.Float64frombits(uint64(s.mem[req.Loc])) +
				math.Float64frombits(uint64(req.Value))
			s.mem[req.Loc] = int64(math.Float64bits(sum))
			s.reply(req, 0)
			s.fireAwaits(req.Loc)
		case kindAwait:
			if s.mem[req.Loc] == req.Value {
				s.reply(req, req.Value)
			} else {
				s.awaits[req.Loc] = append(s.awaits[req.Loc], req)
			}
		case kindRLock:
			st := s.lock(req.Loc)
			st.queue = append(st.queue, queuedLock{req: req, write: false})
			s.admit(st)
		case kindWLock:
			st := s.lock(req.Loc)
			st.queue = append(st.queue, queuedLock{req: req, write: true})
			s.admit(st)
		case kindRUnlock:
			st := s.lock(req.Loc)
			delete(st.readers, req.Client)
			s.reply(req, 0)
			s.admit(st)
		case kindWUnlock:
			st := s.lock(req.Loc)
			if st.writer == req.Client {
				st.writer = -1
			}
			s.reply(req, 0)
			s.admit(st)
		case kindBarrier:
			bs := s.barriers[req.K]
			if bs == nil {
				bs = &barrierState{}
				s.barriers[req.K] = bs
			}
			bs.waiting = append(bs.waiting, req)
			if len(bs.waiting) == s.n {
				for _, w := range bs.waiting {
					s.reply(w, 0)
				}
				delete(s.barriers, req.K)
			}
		}
	}
}

func (s *server) lock(name string) *lockState {
	st, ok := s.locks[name]
	if !ok {
		st = &lockState{writer: -1, readers: make(map[int]bool)}
		s.locks[name] = st
	}
	return st
}

func (s *server) admit(st *lockState) {
	for len(st.queue) > 0 {
		head := st.queue[0]
		if head.write {
			if st.writer >= 0 || len(st.readers) > 0 {
				return
			}
			st.writer = head.req.Client
			s.reply(head.req, 0)
			st.queue = st.queue[1:]
			return
		}
		if st.writer >= 0 {
			return
		}
		st.readers[head.req.Client] = true
		s.reply(head.req, 0)
		st.queue = st.queue[1:]
	}
}

func (s *server) fireAwaits(loc string) {
	pending := s.awaits[loc]
	if len(pending) == 0 {
		return
	}
	var kept []request
	for _, req := range pending {
		if s.mem[loc] == req.Value {
			s.reply(req, req.Value)
		} else {
			kept = append(kept, req)
		}
	}
	if len(kept) == 0 {
		delete(s.awaits, loc)
	} else {
		s.awaits[loc] = kept
	}
}

func (s *server) reply(req request, value int64) {
	_ = s.fabric.Send(network.Message{
		From: s.id, To: req.Client, Kind: kindReply,
		Payload: reply{ReqID: req.ReqID, Value: value},
		Size:    16,
	})
}

// Proc is one client of the sequentially consistent memory.
type Proc struct {
	id     int
	n      int
	server int
	fabric *network.Fabric
	done   chan struct{}

	mu      sync.Mutex
	nextReq uint64
	nextK   int
	waiting map[uint64]chan int64
}

var _ core.Process = (*Proc)(nil)

func newProc(id, n int, fabric *network.Fabric) *Proc {
	p := &Proc{
		id:      id,
		n:       n,
		server:  n,
		fabric:  fabric,
		done:    make(chan struct{}),
		nextK:   1,
		waiting: make(map[uint64]chan int64),
	}
	go p.loop()
	return p
}

func (p *Proc) wait() { <-p.done }

func (p *Proc) loop() {
	defer close(p.done)
	for {
		m, ok := p.fabric.Recv(p.id)
		if !ok {
			return
		}
		rep, ok := m.Payload.(reply)
		if !ok {
			continue
		}
		p.mu.Lock()
		ch := p.waiting[rep.ReqID]
		delete(p.waiting, rep.ReqID)
		p.mu.Unlock()
		if ch != nil {
			ch <- rep.Value
		}
	}
}

// rpc sends one request and blocks for the reply.
func (p *Proc) rpc(kind, loc string, value int64, k int) int64 {
	p.mu.Lock()
	p.nextReq++
	req := request{ReqID: p.nextReq, Client: p.id, Loc: loc, Value: value, K: k}
	ch := make(chan int64, 1)
	p.waiting[req.ReqID] = ch
	p.mu.Unlock()
	_ = p.fabric.Send(network.Message{
		From: p.id, To: p.server, Kind: kind,
		Payload: req, Size: 24 + len(loc),
	})
	return <-ch
}

// ID returns the process identity.
func (p *Proc) ID() int { return p.id }

// N returns the number of client processes.
func (p *Proc) N() int { return p.n }

// Write stores value at loc; it blocks for the server's acknowledgement,
// which is what makes the memory sequentially consistent.
func (p *Proc) Write(loc string, value int64) { p.rpc(kindWrite, loc, value, 0) }

// ReadPRAM reads loc. All reads are server round trips here; the label is
// accepted for interface compatibility.
func (p *Proc) ReadPRAM(loc string) int64 { return p.rpc(kindRead, loc, 0, 0) }

// ReadCausal reads loc (same round trip as ReadPRAM).
func (p *Proc) ReadCausal(loc string) int64 { return p.rpc(kindRead, loc, 0, 0) }

// ReadSlow reads loc. The central server is sequentially consistent, which
// lies above every weaker lattice point: a slow read is trivially served by
// the same round trip.
func (p *Proc) ReadSlow(loc string) int64 { return p.rpc(kindRead, loc, 0, 0) }

// ReadSC reads loc — here the native consistency level of every location.
func (p *Proc) ReadSC(loc string) int64 { return p.rpc(kindRead, loc, 0, 0) }

// Await blocks until loc holds value; the server parks the request.
func (p *Proc) Await(loc string, value int64) { p.rpc(kindAwait, loc, value, 0) }

// AwaitPRAM is identical to Await here: the central server has one view.
func (p *Proc) AwaitPRAM(loc string, value int64) { p.rpc(kindAwait, loc, value, 0) }

// RLock acquires a read lock on name.
func (p *Proc) RLock(name string) { p.rpc(kindRLock, name, 0, 0) }

// RUnlock releases a read lock on name.
func (p *Proc) RUnlock(name string) { p.rpc(kindRUnlock, name, 0, 0) }

// WLock acquires the write lock on name.
func (p *Proc) WLock(name string) { p.rpc(kindWLock, name, 0, 0) }

// WUnlock releases the write lock on name.
func (p *Proc) WUnlock(name string) { p.rpc(kindWUnlock, name, 0, 0) }

// Barrier blocks until all processes arrive at the same barrier index.
func (p *Proc) Barrier() {
	p.mu.Lock()
	k := p.nextK
	p.nextK++
	p.mu.Unlock()
	p.rpc(kindBarrier, "", 0, k)
}

// Add applies an increment to loc at the server.
func (p *Proc) Add(loc string, delta int64) { p.rpc(kindAdd, loc, delta, 0) }

// AddFloat applies a float64 increment to a Float64bits-encoded location.
func (p *Proc) AddFloat(loc string, delta float64) {
	p.rpc(kindAddFloat, loc, int64(math.Float64bits(delta)), 0)
}

// Forall runs body once per index concurrently and waits for all. The
// sequentially consistent memory has no weaker intra-process structure to
// model: every operation is a serialized server round trip, so the bodies
// simply share the client handle.
func (p *Proc) Forall(count int, body func(i int, t core.ThreadOps)) {
	var wg sync.WaitGroup
	for i := 0; i < count; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			body(i, p)
		}()
	}
	wg.Wait()
}
