package litmus

import (
	"testing"
	"time"

	"mixedmem/internal/check"
	"mixedmem/internal/core"
	"mixedmem/internal/dsm"
	"mixedmem/internal/history"
	"mixedmem/internal/transport/tcp"
)

// These tests re-run the litmus shapes (SB, MP, a three-process causal
// chain) under causal-scoped placement: every location registered with
// exactly its readers, all causal. The verdicts must match full broadcast —
// scoping changes who receives an update, never what a read may observe.

// sbScope registers each SB location with its single cross-process reader.
func sbScope() *dsm.ScopeMap {
	return &dsm.ScopeMap{
		Readers:       map[string][]int{"x": {1}, "y": {0}},
		CausalReaders: map[string][]int{"x": {1}, "y": {0}},
	}
}

// mpScope registers message-passing's data and flag with the consumer.
func mpScope() *dsm.ScopeMap {
	return &dsm.ScopeMap{
		Readers:       map[string][]int{"data": {1}, "flag": {1}},
		CausalReaders: map[string][]int{"data": {1}, "flag": {1}},
	}
}

// chainScope registers the three-process causal chain: a is read by 1 and 2,
// b only by 2. Process 2's read of a through b's await is the transitive
// dependency scoped delivery must preserve.
func chainScope() *dsm.ScopeMap {
	return &dsm.ScopeMap{
		Readers:       map[string][]int{"a": {1, 2}, "b": {2}},
		CausalReaders: map[string][]int{"a": {1, 2}, "b": {2}},
	}
}

// analyzeMixed records the run and returns the mixed-consistency violation
// count plus the recorded history.
func analyzeMixed(t *testing.T, sys *core.System) (int, *history.History) {
	t.Helper()
	h := sys.History()
	a, err := h.Analyze()
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	return len(check.Mixed(a)), h
}

// TestScopedLitmusSBWeakOutcomeUnchanged forces the store-buffering weak
// outcome under causal-scoped placement and checks the verdict pair is the
// same as broadcast: mixed-consistent, not sequentially consistent.
func TestScopedLitmusSBWeakOutcomeUnchanged(t *testing.T) {
	for _, scoped := range []bool{false, true} {
		cfg := core.Config{Procs: 2, Record: true}
		if scoped {
			cfg.Placement = sbScope()
		}
		sys, err := core.NewSystem(cfg)
		if err != nil {
			t.Fatalf("NewSystem(scoped=%v): %v", scoped, err)
		}
		_ = sys.Fabric().Hold(0, 1)
		_ = sys.Fabric().Hold(1, 0)
		sys.Run(func(p *core.Proc) {
			if p.ID() == 0 {
				p.Write("x", 1)
				p.ReadPRAM("y")
			} else {
				p.Write("y", 1)
				p.ReadPRAM("x")
			}
		})
		_ = sys.Fabric().Release(0, 1)
		_ = sys.Fabric().Release(1, 0)

		violations, h := analyzeMixed(t, sys)
		if violations != 0 {
			t.Fatalf("scoped=%v: weak SB outcome flagged as inconsistent", scoped)
		}
		zeros := 0
		for _, op := range h.Ops {
			if op.Kind == history.Read && op.Value == 0 {
				zeros++
			}
		}
		if zeros != 2 {
			t.Fatalf("scoped=%v: expected both reads 0, history: %v", scoped, h.Ops)
		}
		a, err := h.Analyze()
		if err != nil {
			t.Fatalf("Analyze: %v", err)
		}
		ok, _, err := check.SequentiallyConsistent(a)
		if err != nil {
			t.Fatalf("SC search: %v", err)
		}
		if ok {
			t.Fatalf("scoped=%v: weak SB outcome should not be SC", scoped)
		}
		sys.Close()
	}
}

// TestScopedLitmusMPVerdictUnchanged runs message passing with causal reads
// under broadcast and under scope: the consumer must read the data after the
// flag in both, and both histories must be mixed-consistent.
func TestScopedLitmusMPVerdictUnchanged(t *testing.T) {
	run := func(scoped, batched bool) int64 {
		cfg := core.Config{Procs: 2, Record: true}
		if scoped {
			cfg.Placement = mpScope()
		}
		if batched {
			cfg.Batch = dsm.BatchConfig{Enabled: true, MaxUpdates: 8}
		}
		sys, err := core.NewSystem(cfg)
		if err != nil {
			t.Fatalf("NewSystem(scoped=%v): %v", scoped, err)
		}
		defer sys.Close()
		var got int64
		sys.Run(func(p *core.Proc) {
			if p.ID() == 0 {
				p.Write("data", 41)
				p.Write("data", 42)
				p.Write("flag", 1)
			} else {
				p.Await("flag", 1)
				got = p.ReadCausal("data")
			}
		})
		if violations, _ := analyzeMixed(t, sys); violations != 0 {
			t.Fatalf("MP(scoped=%v, batched=%v) flagged as inconsistent", scoped, batched)
		}
		return got
	}
	for _, scoped := range []bool{false, true} {
		for _, batched := range []bool{false, true} {
			if got := run(scoped, batched); got != 42 {
				t.Fatalf("MP(scoped=%v, batched=%v) read data=%d, want 42", scoped, batched, got)
			}
		}
	}
}

// TestScopedLitmusCausalChainVerdictUnchanged runs the three-process causal
// chain: 0 writes a, 1 observes a and writes b, 2 observes b and must see a.
// Under scope, process 2 learns about a's copy only transitively through 1's
// dependency matrix.
func TestScopedLitmusCausalChainVerdictUnchanged(t *testing.T) {
	run := func(scoped bool) int64 {
		cfg := core.Config{Procs: 3, Record: true}
		if scoped {
			cfg.Placement = chainScope()
		}
		sys, err := core.NewSystem(cfg)
		if err != nil {
			t.Fatalf("NewSystem(scoped=%v): %v", scoped, err)
		}
		defer sys.Close()
		var got int64
		sys.Run(func(p *core.Proc) {
			switch p.ID() {
			case 0:
				p.Write("a", 1)
			case 1:
				p.Await("a", 1)
				p.Write("b", 1)
			case 2:
				p.Await("b", 1)
				got = p.ReadCausal("a")
			}
		})
		if violations, _ := analyzeMixed(t, sys); violations != 0 {
			t.Fatalf("chain(scoped=%v) flagged as inconsistent", scoped)
		}
		return got
	}
	for _, scoped := range []bool{false, true} {
		if got := run(scoped); got != 1 {
			t.Fatalf("chain(scoped=%v) read a=%d, want 1 (causal chain broken)", scoped, got)
		}
	}
}

// runScopedTCP runs a program on loopback TCP peers with a shared recorded
// history and returns it, closing everything down before analysis.
func runScopedTCP(t *testing.T, procs int, scope *dsm.ScopeMap, body func(p *core.Proc)) *history.History {
	t.Helper()
	trs, err := tcp.NewLoopback(procs, nil)
	if err != nil {
		t.Fatalf("tcp loopback: %v", err)
	}
	trace := history.NewBuilder(procs)
	peers := make([]*core.Peer, procs)
	for i := range peers {
		peers[i], err = core.NewPeer(core.PeerConfig{
			ID: i, Transport: trs[i], Scope: scope, Trace: trace,
		})
		if err != nil {
			t.Fatalf("peer %d: %v", i, err)
		}
	}
	done := make(chan struct{})
	for _, peer := range peers {
		go func(p *core.Proc) {
			body(p)
			done <- struct{}{}
		}(peer.Proc())
	}
	for range peers {
		<-done
	}
	for _, tr := range trs {
		tr.Flush(2 * time.Second)
	}
	for _, peer := range peers {
		peer.Close()
	}
	return trace.History()
}

// TestScopedLitmusTCP reruns MP and the causal chain over real TCP sockets
// with causal-scoped placement: same programs, same verdicts.
func TestScopedLitmusTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("loopback TCP litmus in -short mode")
	}
	var mpGot int64
	h := runScopedTCP(t, 2, mpScope(), func(p *core.Proc) {
		if p.ID() == 0 {
			p.Write("data", 42)
			p.Write("flag", 1)
		} else {
			p.Await("flag", 1)
			mpGot = p.ReadCausal("data")
		}
	})
	a, err := h.Analyze()
	if err != nil {
		t.Fatalf("MP analyze: %v", err)
	}
	if v := check.Mixed(a); len(v) != 0 {
		t.Fatalf("scoped MP over TCP flagged as inconsistent: %v", v)
	}
	if mpGot != 42 {
		t.Fatalf("scoped MP over TCP read data=%d, want 42", mpGot)
	}

	var chainGot int64
	h = runScopedTCP(t, 3, chainScope(), func(p *core.Proc) {
		switch p.ID() {
		case 0:
			p.Write("a", 1)
		case 1:
			p.Await("a", 1)
			p.Write("b", 1)
		case 2:
			p.Await("b", 1)
			chainGot = p.ReadCausal("a")
		}
	})
	a, err = h.Analyze()
	if err != nil {
		t.Fatalf("chain analyze: %v", err)
	}
	if v := check.Mixed(a); len(v) != 0 {
		t.Fatalf("scoped chain over TCP flagged as inconsistent: %v", v)
	}
	if chainGot != 1 {
		t.Fatalf("scoped chain over TCP read a=%d, want 1", chainGot)
	}
}
