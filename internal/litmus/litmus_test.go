package litmus

import (
	"testing"

	"mixedmem/internal/history"
)

// TestSuiteVerdicts evaluates every litmus test under all three conditions
// and compares with its annotation.
func TestSuiteVerdicts(t *testing.T) {
	for _, tt := range Suite() {
		tt := tt
		t.Run(tt.Name, func(t *testing.T) {
			pram, causal, sc, err := tt.Evaluate()
			if err != nil {
				t.Fatalf("Evaluate: %v", err)
			}
			if pram != tt.PRAM {
				t.Errorf("PRAM verdict = %v, want %v (%s)", pram, tt.PRAM, tt.Description)
			}
			if causal != tt.Causal {
				t.Errorf("causal verdict = %v, want %v (%s)", causal, tt.Causal, tt.Description)
			}
			if sc != tt.SC {
				t.Errorf("SC verdict = %v, want %v (%s)", sc, tt.SC, tt.Description)
			}
		})
	}
}

// TestHierarchy checks the inclusion SC ⊆ causal ⊆ PRAM on the annotations
// themselves: anything SC-allowed must be causal-allowed, anything
// causal-allowed must be PRAM-allowed.
func TestHierarchy(t *testing.T) {
	for _, tt := range Suite() {
		if tt.SC == Allowed && tt.Causal == Forbidden {
			t.Errorf("%s: SC-allowed but causal-forbidden breaks the hierarchy", tt.Name)
		}
		if tt.Causal == Allowed && tt.PRAM == Forbidden {
			t.Errorf("%s: causal-allowed but PRAM-forbidden breaks the hierarchy", tt.Name)
		}
	}
}

// TestStrictSeparationWitnesses ensures the suite contains witnesses for
// both strict inclusions: a history causal-forbidden but PRAM-allowed, and
// one SC-forbidden but causal-allowed.
func TestStrictSeparationWitnesses(t *testing.T) {
	var pramOnly, causalOnly bool
	for _, tt := range Suite() {
		if tt.PRAM == Allowed && tt.Causal == Forbidden {
			pramOnly = true
		}
		if tt.Causal == Allowed && tt.SC == Forbidden {
			causalOnly = true
		}
	}
	if !pramOnly {
		t.Error("no witness separating PRAM from causal")
	}
	if !causalOnly {
		t.Error("no witness separating causal from SC")
	}
}

// TestVerdictString covers the String method.
func TestVerdictString(t *testing.T) {
	if Allowed.String() != "allowed" || Forbidden.String() != "forbidden" {
		t.Error("bad verdict strings")
	}
}

// TestSuiteHistoriesWellFormed double-checks every built history analyzes
// cleanly under both labels.
func TestSuiteHistoriesWellFormed(t *testing.T) {
	for _, tt := range Suite() {
		for _, l := range []history.Label{history.LabelPRAM, history.LabelCausal} {
			if _, err := tt.Build(l).Analyze(); err != nil {
				t.Errorf("%s (%v): %v", tt.Name, l, err)
			}
		}
	}
}

// TestSuiteNamesUnique guards against copy-paste duplicates.
func TestSuiteNamesUnique(t *testing.T) {
	seen := make(map[string]bool)
	for _, tt := range Suite() {
		if seen[tt.Name] {
			t.Errorf("duplicate test name %q", tt.Name)
		}
		seen[tt.Name] = true
	}
}
