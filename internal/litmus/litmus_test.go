package litmus

import (
	"os"
	"path/filepath"
	"testing"

	"mixedmem/internal/history"
)

// TestSuiteVerdicts evaluates every litmus test at all four lattice points
// and compares with its annotation.
func TestSuiteVerdicts(t *testing.T) {
	for _, tt := range Suite() {
		tt := tt
		t.Run(tt.Name, func(t *testing.T) {
			slow, pram, causal, sc, err := tt.Evaluate()
			if err != nil {
				t.Fatalf("Evaluate: %v", err)
			}
			if slow != tt.Slow {
				t.Errorf("slow verdict = %v, want %v (%s)", slow, tt.Slow, tt.Description)
			}
			if pram != tt.PRAM {
				t.Errorf("PRAM verdict = %v, want %v (%s)", pram, tt.PRAM, tt.Description)
			}
			if causal != tt.Causal {
				t.Errorf("causal verdict = %v, want %v (%s)", causal, tt.Causal, tt.Description)
			}
			if sc != tt.SC {
				t.Errorf("SC verdict = %v, want %v (%s)", sc, tt.SC, tt.Description)
			}
		})
	}
}

// TestHierarchy checks the inclusion SC ⊆ causal ⊆ PRAM ⊆ slow on the
// annotations themselves: anything admitted by a stronger condition must be
// admitted by every weaker one.
func TestHierarchy(t *testing.T) {
	for _, tt := range Suite() {
		if tt.SC == Allowed && tt.Causal == Forbidden {
			t.Errorf("%s: SC-allowed but causal-forbidden breaks the hierarchy", tt.Name)
		}
		if tt.Causal == Allowed && tt.PRAM == Forbidden {
			t.Errorf("%s: causal-allowed but PRAM-forbidden breaks the hierarchy", tt.Name)
		}
		if tt.PRAM == Allowed && tt.Slow == Forbidden {
			t.Errorf("%s: PRAM-allowed but slow-forbidden breaks the hierarchy", tt.Name)
		}
	}
}

// TestStrictSeparationWitnesses ensures the suite contains witnesses for all
// three strict inclusions: a history PRAM-forbidden but slow-allowed, one
// causal-forbidden but PRAM-allowed, and one SC-forbidden but causal-allowed.
func TestStrictSeparationWitnesses(t *testing.T) {
	var slowOnly, pramOnly, causalOnly bool
	for _, tt := range Suite() {
		if tt.Slow == Allowed && tt.PRAM == Forbidden {
			slowOnly = true
		}
		if tt.PRAM == Allowed && tt.Causal == Forbidden {
			pramOnly = true
		}
		if tt.Causal == Allowed && tt.SC == Forbidden {
			causalOnly = true
		}
	}
	if !slowOnly {
		t.Error("no witness separating slow from PRAM")
	}
	if !pramOnly {
		t.Error("no witness separating PRAM from causal")
	}
	if !causalOnly {
		t.Error("no witness separating causal from SC")
	}
}

// TestSpectrumAnchors pins the acceptance anchors of the verdict matrix by
// name: store buffering is forbidden under SC but allowed under PRAM (and
// everything weaker), and message passing separates slow from PRAM — the
// per-writer cross-location FIFO is exactly what the slow label drops.
func TestSpectrumAnchors(t *testing.T) {
	byName := make(map[string]Test)
	for _, tt := range Suite() {
		byName[tt.Name] = tt
	}
	sb, ok := byName["SB"]
	if !ok {
		t.Fatal("suite lost the SB test")
	}
	if sb.SC != Forbidden || sb.PRAM != Allowed || sb.Slow != Allowed {
		t.Errorf("SB verdicts (slow=%v pram=%v sc=%v) lost the store-buffering anchor",
			sb.Slow, sb.PRAM, sb.SC)
	}
	mp, ok := byName["MP"]
	if !ok {
		t.Fatal("suite lost the MP test")
	}
	if mp.Slow != Allowed || mp.PRAM != Forbidden {
		t.Errorf("MP verdicts (slow=%v pram=%v) lost the slow/PRAM separation anchor",
			mp.Slow, mp.PRAM)
	}
}

// TestVerdictString covers the String method.
func TestVerdictString(t *testing.T) {
	if Allowed.String() != "allowed" || Forbidden.String() != "forbidden" {
		t.Error("bad verdict strings")
	}
}

// TestSuiteHistoriesWellFormed double-checks every built history analyzes
// cleanly at every lattice point.
func TestSuiteHistoriesWellFormed(t *testing.T) {
	for _, tt := range Suite() {
		for _, l := range history.LatticeLabels() {
			if _, err := tt.Build(l).Analyze(); err != nil {
				t.Errorf("%s (%v): %v", tt.Name, l, err)
			}
		}
	}
}

// TestSuiteNamesUnique guards against copy-paste duplicates.
func TestSuiteNamesUnique(t *testing.T) {
	seen := make(map[string]bool)
	for _, tt := range Suite() {
		if seen[tt.Name] {
			t.Errorf("duplicate test name %q", tt.Name)
		}
		seen[tt.Name] = true
	}
}

// TestGoldenVerdictTable pins the rendered verdict matrix byte-for-byte
// against the checked-in golden file — the conformance artifact CI uploads.
// Update the golden with -update when the suite intentionally changes.
var update = os.Getenv("UPDATE_GOLDEN") != ""

func TestGoldenVerdictTable(t *testing.T) {
	got := Table()
	path := filepath.Join("testdata", "verdicts.golden")
	if update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with UPDATE_GOLDEN=1 to regenerate): %v", err)
	}
	if got != string(want) {
		t.Errorf("verdict table drifted from golden %s:\n--- got ---\n%s--- want ---\n%s",
			path, got, want)
	}
}
