package litmus

import (
	"testing"

	"mixedmem/internal/check"
	"mixedmem/internal/core"
	"mixedmem/internal/dsm"
	"mixedmem/internal/history"
	"mixedmem/internal/seqmem"
)

// The litmus suite pins the checker's verdicts; these tests pin the
// *runtimes'* observable behaviors on the store-buffering shape: the mixed
// memory can exhibit the weak outcome (both processes read 0), and the
// sequentially consistent baseline never can.

// runSBMixed runs the SB shape once on the mixed memory with both
// cross-channels held during the reads, forcing the weak outcome.
func runSBMixed(t *testing.T) (r0, r1 int64) {
	t.Helper()
	sys, err := core.NewSystem(core.Config{Procs: 2})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	defer sys.Close()
	// Hold both directions: each process's write cannot reach the other
	// before the other's read — a legal (if extreme) delivery schedule.
	_ = sys.Fabric().Hold(0, 1)
	_ = sys.Fabric().Hold(1, 0)
	sys.Run(func(p *core.Proc) {
		if p.ID() == 0 {
			p.Write("x", 1)
			r0 = p.ReadPRAM("y")
		} else {
			p.Write("y", 1)
			r1 = p.ReadPRAM("x")
		}
	})
	_ = sys.Fabric().Release(0, 1)
	_ = sys.Fabric().Release(1, 0)
	return r0, r1
}

func TestMixedRuntimeExhibitsStoreBuffering(t *testing.T) {
	r0, r1 := runSBMixed(t)
	if r0 != 0 || r1 != 0 {
		t.Fatalf("held channels must force the weak outcome: r0=%d r1=%d", r0, r1)
	}
}

func TestMixedRuntimeSBHistoryIsMixedConsistent(t *testing.T) {
	// The weak outcome is PRAM-legal: record it and let the checker agree.
	sys, err := core.NewSystem(core.Config{Procs: 2, Record: true})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	defer sys.Close()
	_ = sys.Fabric().Hold(0, 1)
	_ = sys.Fabric().Hold(1, 0)
	sys.Run(func(p *core.Proc) {
		if p.ID() == 0 {
			p.Write("x", 1)
			p.ReadPRAM("y")
		} else {
			p.Write("y", 1)
			p.ReadPRAM("x")
		}
	})
	_ = sys.Fabric().Release(0, 1)
	_ = sys.Fabric().Release(1, 0)

	h := sys.History()
	a, err := h.Analyze()
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if v := check.Mixed(a); len(v) != 0 {
		t.Fatalf("weak SB outcome flagged as inconsistent: %v", v)
	}
	// And it must really be the weak outcome: both reads returned 0.
	zeros := 0
	for _, op := range h.Ops {
		if op.Kind == history.Read && op.Value == 0 {
			zeros++
		}
	}
	if zeros != 2 {
		t.Fatalf("expected both reads 0, history: %v", h.Ops)
	}
	// The same history must fail the SC check — the runtime exhibited a
	// behavior only the weak models admit.
	ok, _, err := check.SequentiallyConsistent(a)
	if err != nil {
		t.Fatalf("SC search: %v", err)
	}
	if ok {
		t.Fatal("weak SB outcome should not be sequentially consistent")
	}
}

// TestMixedRuntimeSBBatchedStillMixedConsistent repeats the recorded SB run
// with the update outbox enabled: batching delays and coalesces wire frames
// but must not change the verdict — the weak outcome stays mixed-consistent
// and stays non-SC.
func TestMixedRuntimeSBBatchedStillMixedConsistent(t *testing.T) {
	sys, err := core.NewSystem(core.Config{
		Procs: 2, Record: true,
		Batch: dsm.BatchConfig{Enabled: true, MaxUpdates: 8},
	})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	defer sys.Close()
	_ = sys.Fabric().Hold(0, 1)
	_ = sys.Fabric().Hold(1, 0)
	sys.Run(func(p *core.Proc) {
		if p.ID() == 0 {
			p.Write("x", 1)
			p.ReadPRAM("y")
		} else {
			p.Write("y", 1)
			p.ReadPRAM("x")
		}
	})
	_ = sys.Fabric().Release(0, 1)
	_ = sys.Fabric().Release(1, 0)

	h := sys.History()
	a, err := h.Analyze()
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if v := check.Mixed(a); len(v) != 0 {
		t.Fatalf("batched SB outcome flagged as inconsistent: %v", v)
	}
	zeros := 0
	for _, op := range h.Ops {
		if op.Kind == history.Read && op.Value == 0 {
			zeros++
		}
	}
	if zeros != 2 {
		t.Fatalf("expected both reads 0 under held channels, history: %v", h.Ops)
	}
	ok, _, err := check.SequentiallyConsistent(a)
	if err != nil {
		t.Fatalf("SC search: %v", err)
	}
	if ok {
		t.Fatal("weak SB outcome should not be sequentially consistent")
	}
}

func TestSequentialMemoryNeverStoreBuffers(t *testing.T) {
	// Many trials on the SC baseline: the weak outcome must never appear.
	for trial := 0; trial < 30; trial++ {
		sys, err := seqmem.NewSystem(seqmem.Config{Procs: 2})
		if err != nil {
			t.Fatalf("NewSystem: %v", err)
		}
		var r0, r1 int64
		sys.Run(func(p *seqmem.Proc) {
			if p.ID() == 0 {
				p.Write("x", 1)
				r0 = p.ReadPRAM("y")
			} else {
				p.Write("y", 1)
				r1 = p.ReadPRAM("x")
			}
		})
		sys.Close()
		if r0 == 0 && r1 == 0 {
			t.Fatalf("trial %d: sequentially consistent memory exhibited store buffering", trial)
		}
	}
}
