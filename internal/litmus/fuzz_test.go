package litmus

import (
	"fmt"
	"testing"

	"mixedmem/internal/check"
	"mixedmem/internal/core"
	"mixedmem/internal/dsm"
	"mixedmem/internal/history"
)

// FuzzScopedVerdictMatchesBroadcast fuzzes barrier-phased SPMD programs over
// the weak half of the lattice and checks that scoped placement never
// changes the verdict. The fuzz input picks a read label (slow, PRAM or
// causal) for each of three processes and a round count; every round each
// process writes its own location, crosses a barrier, and reads the other
// two locations at its label. Barrier-phased programs are consistent at
// every lattice point, so on both the broadcast and the scoped run every
// read must observe the value written this round and the recorded history
// must pass the mixed-consistency check — and the two observation vectors
// must be identical.
//
// The broadcast run additionally labels slow processes' own locations Slow
// in Config.Labels, driving their writes down the timestamp-elided path; the
// scoped run registers each location with exactly its two cross-process
// readers, causal-registered only where the reader's label demands it. SC is
// deliberately absent: its central-owner routing is orthogonal to placement
// (the hashed owner need not be a registered reader) and is pinned by the
// runtime matrix tests instead.
func FuzzScopedVerdictMatchesBroadcast(f *testing.F) {
	f.Add([]byte{0, 1, 2, 0}) // one of each weak label, one round
	f.Add([]byte{0, 0, 0, 1}) // all slow, two rounds
	f.Add([]byte{2, 2, 2, 0}) // all causal, one round
	f.Add([]byte{1, 0, 2, 1}) // mixed again, two rounds
	f.Fuzz(func(t *testing.T, data []byte) {
		const procs = 3
		if len(data) < procs+1 {
			t.Skip("need a label byte per process plus a round byte")
		}
		weak := []history.Label{history.LabelSlow, history.LabelPRAM, history.LabelCausal}
		labels := make([]history.Label, procs)
		for i := range labels {
			labels[i] = weak[int(data[i])%len(weak)]
		}
		rounds := 1 + int(data[procs])%2

		locOf := func(i int) string { return fmt.Sprintf("a%d", i) }
		expect := func(r, writer int) int64 { return int64((r+1)*1000 + writer) }

		run := func(scoped bool) []int64 {
			cfg := core.Config{Procs: procs, Record: true}
			if scoped {
				readers := make(map[string][]int)
				causal := make(map[string][]int)
				for i := 0; i < procs; i++ {
					loc := locOf(i)
					for j := 0; j < procs; j++ {
						if j == i {
							continue
						}
						readers[loc] = append(readers[loc], j)
						if labels[j] == history.LabelCausal {
							causal[loc] = append(causal[loc], j)
						}
					}
				}
				cfg.Placement = &dsm.ScopeMap{Readers: readers, CausalReaders: causal}
			} else {
				for i := 0; i < procs; i++ {
					if labels[i] == history.LabelSlow {
						if cfg.Labels == nil {
							cfg.Labels = make(map[string]history.Label)
						}
						cfg.Labels[locOf(i)] = history.LabelSlow
					}
				}
			}
			sys, err := core.NewSystem(cfg)
			if err != nil {
				t.Fatalf("NewSystem(scoped=%v): %v", scoped, err)
			}
			defer sys.Close()
			got := make([]int64, rounds*procs*procs)
			sys.Run(func(p *core.Proc) {
				for r := 0; r < rounds; r++ {
					p.Write(locOf(p.ID()), expect(r, p.ID()))
					p.Barrier()
					for j := 0; j < procs; j++ {
						if j == p.ID() {
							continue
						}
						got[(r*procs+p.ID())*procs+j] = p.Read(locOf(j), labels[p.ID()])
					}
					p.Barrier()
				}
			})
			a, err := sys.History().Analyze()
			if err != nil {
				t.Fatalf("Analyze(scoped=%v): %v", scoped, err)
			}
			if v := check.Mixed(a); len(v) != 0 {
				t.Fatalf("scoped=%v labels=%v rounds=%d: barrier-phased program flagged inconsistent: %v",
					scoped, labels, rounds, v)
			}
			return got
		}

		broadcast := run(false)
		scopedGot := run(true)
		for r := 0; r < rounds; r++ {
			for i := 0; i < procs; i++ {
				for j := 0; j < procs; j++ {
					if j == i {
						continue
					}
					idx := (r*procs+i)*procs + j
					want := expect(r, j)
					if broadcast[idx] != want {
						t.Errorf("broadcast labels=%v round %d: proc %d read %s = %d, want %d",
							labels, r, i, locOf(j), broadcast[idx], want)
					}
					if scopedGot[idx] != broadcast[idx] {
						t.Errorf("labels=%v round %d: scoped proc %d read %s = %d, broadcast saw %d",
							labels, r, i, locOf(j), scopedGot[idx], broadcast[idx])
					}
				}
			}
		}
	})
}
