package litmus

import (
	"testing"
	"time"

	"mixedmem/internal/check"
	"mixedmem/internal/core"
	"mixedmem/internal/history"
	"mixedmem/internal/transport/tcp"
)

// These tests pin the *runtime* verdict matrix: for each litmus shape the
// suite annotates, the live system at each lattice point must exhibit the
// allowed outcomes (under an adversarial delivery schedule where one is
// needed) and must never exhibit the forbidden ones — on the simulated
// fabric and on loopback TCP, with identical verdicts.

// weakLabels are the lattice points realized by the broadcast protocol;
// SC is realized by the owner protocol and tested separately.
var weakLabels = []history.Label{history.LabelSlow, history.LabelPRAM, history.LabelCausal}

// labelsFor labels locs when the lattice point needs a per-location label at
// runtime (Slow and SC); PRAM and Causal reads run on unlabeled locations.
func labelsFor(l history.Label, locs ...string) map[string]history.Label {
	if l != history.LabelSlow && l != history.LabelSC {
		return nil
	}
	m := make(map[string]history.Label, len(locs))
	for _, loc := range locs {
		m[loc] = l
	}
	return m
}

// mixedOK analyzes a recorded history and fails on any mixed-consistency
// violation.
func mixedOK(t *testing.T, h *history.History, what string) *history.Analysis {
	t.Helper()
	a, err := h.Analyze()
	if err != nil {
		t.Fatalf("%s: Analyze: %v", what, err)
	}
	if v := check.Mixed(a); len(v) != 0 {
		t.Fatalf("%s: runtime outcome flagged as inconsistent: %v", what, v)
	}
	return a
}

// TestRuntimeSBMatrixSim forces the store-buffering weak outcome at every
// weak lattice point (held cross-channels) and shows the SC point never
// exhibits it: the suite's SB row, executed.
func TestRuntimeSBMatrixSim(t *testing.T) {
	for _, l := range weakLabels {
		sys, err := core.NewSystem(core.Config{
			Procs: 2, Record: true, Labels: labelsFor(l, "x", "y"),
		})
		if err != nil {
			t.Fatalf("%v: NewSystem: %v", l, err)
		}
		_ = sys.Fabric().Hold(0, 1)
		_ = sys.Fabric().Hold(1, 0)
		var r0, r1 int64
		sys.Run(func(p *core.Proc) {
			if p.ID() == 0 {
				p.Write("x", 1)
				r0 = p.Read("y", l)
			} else {
				p.Write("y", 1)
				r1 = p.Read("x", l)
			}
		})
		_ = sys.Fabric().Release(0, 1)
		_ = sys.Fabric().Release(1, 0)
		if r0 != 0 || r1 != 0 {
			t.Fatalf("%v: held channels must force the weak outcome: r0=%d r1=%d", l, r0, r1)
		}
		a := mixedOK(t, sys.History(), "SB/"+l.String())
		// The same weak outcome must fail the SC condition: the runtime
		// exhibited a behavior only the weak lattice points admit.
		ok, _, err := check.SequentiallyConsistent(a)
		if err != nil {
			t.Fatalf("%v: SC search: %v", l, err)
		}
		if ok {
			t.Fatalf("%v: weak SB outcome should not be sequentially consistent", l)
		}
		sys.Close()
	}

	// SC lattice point: every access is a blocking owner round trip, so the
	// weak outcome is impossible on any schedule the fabric can produce.
	for trial := 0; trial < 20; trial++ {
		sys, err := core.NewSystem(core.Config{
			Procs: 2, Record: trial == 0, Labels: labelsFor(history.LabelSC, "x", "y"),
		})
		if err != nil {
			t.Fatalf("SC: NewSystem: %v", err)
		}
		var r0, r1 int64
		sys.Run(func(p *core.Proc) {
			if p.ID() == 0 {
				p.Write("x", 1)
				r0 = p.ReadSC("y")
			} else {
				p.Write("y", 1)
				r1 = p.ReadSC("x")
			}
		})
		if r0 == 0 && r1 == 0 {
			t.Fatalf("trial %d: SC-labeled locations exhibited store buffering", trial)
		}
		if trial == 0 {
			mixedOK(t, sys.History(), "SB/SC")
		}
		sys.Close()
	}
}

// TestRuntimeWRCSeparationSim executes the suite's WRC row: with the x
// channel to the final reader held, PRAM reads exhibit the weak outcome
// (y seen without x) while causal reads never can — causal delivery holds y
// back until its dependency on x is satisfied.
func TestRuntimeWRCSeparationSim(t *testing.T) {
	// PRAM point: the weak outcome is reachable.
	sys, err := core.NewSystem(core.Config{Procs: 3})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	_ = sys.Fabric().Hold(0, 2)
	var yThenX int64 = -1
	sys.Run(func(p *core.Proc) {
		switch p.ID() {
		case 0:
			p.Write("x", 1)
		case 1:
			p.AwaitPRAM("x", 1)
			p.Write("y", 1)
		case 2:
			for p.ReadPRAM("y") != 1 {
				time.Sleep(time.Millisecond)
			}
			yThenX = p.ReadPRAM("x")
		}
	})
	_ = sys.Fabric().Release(0, 2)
	sys.Close()
	if yThenX != 0 {
		t.Fatalf("PRAM reader saw x=%d after y; the held channel must expose the WRC weak outcome", yThenX)
	}

	// Causal point, same adversarial schedule: once the reader observes y,
	// x's value is guaranteed — the weak outcome must never appear.
	sys, err = core.NewSystem(core.Config{Procs: 3})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	_ = sys.Fabric().Hold(0, 2)
	released := make(chan struct{})
	go func() {
		time.Sleep(20 * time.Millisecond)
		_ = sys.Fabric().Release(0, 2)
		close(released)
	}()
	var causalX int64 = -1
	sys.Run(func(p *core.Proc) {
		switch p.ID() {
		case 0:
			p.Write("x", 1)
		case 1:
			p.Await("x", 1)
			p.Write("y", 1)
		case 2:
			for p.ReadCausal("y") != 1 {
				time.Sleep(time.Millisecond)
			}
			causalX = p.ReadCausal("x")
		}
	})
	<-released
	sys.Close()
	if causalX != 1 {
		t.Fatalf("causal reader saw y=1 but x=%d; causal delivery must forbid the WRC weak outcome", causalX)
	}
}

// TestRuntimeIRIWMatrixSim executes the suite's IRIW row: at every weak
// lattice point the two readers may disagree on the order of independent
// writes (forced by holding one cross-channel per reader); at the SC point
// they never can.
func TestRuntimeIRIWMatrixSim(t *testing.T) {
	spinRead := func(p *core.Proc, loc string, l history.Label) {
		for p.Read(loc, l) != 1 {
			time.Sleep(time.Millisecond)
		}
	}
	for _, l := range weakLabels {
		sys, err := core.NewSystem(core.Config{
			Procs: 4, Record: true, Labels: labelsFor(l, "x", "y"),
		})
		if err != nil {
			t.Fatalf("%v: NewSystem: %v", l, err)
		}
		_ = sys.Fabric().Hold(1, 2) // y's write delayed to reader 2
		_ = sys.Fabric().Hold(0, 3) // x's write delayed to reader 3
		// Keep the writers mutually isolated too: if writer 1 applied x
		// before writing y, y's timestamp would carry a (true, but unwanted)
		// causal dependency on x, and reader 3 could never causally apply y
		// while x is held — the shape needs independent writes.
		_ = sys.Fabric().Hold(0, 1)
		_ = sys.Fabric().Hold(1, 0)
		var r2y, r3x int64 = -1, -1
		sys.Run(func(p *core.Proc) {
			switch p.ID() {
			case 0:
				p.Write("x", 1)
			case 1:
				p.Write("y", 1)
			case 2:
				spinRead(p, "x", l)
				r2y = p.Read("y", l)
			case 3:
				spinRead(p, "y", l)
				r3x = p.Read("x", l)
			}
		})
		_ = sys.Fabric().Release(1, 2)
		_ = sys.Fabric().Release(0, 3)
		_ = sys.Fabric().Release(0, 1)
		_ = sys.Fabric().Release(1, 0)
		if r2y != 0 || r3x != 0 {
			t.Fatalf("%v: held channels must force the IRIW weak outcome: r2y=%d r3x=%d", l, r2y, r3x)
		}
		mixedOK(t, sys.History(), "IRIW/"+l.String())
		sys.Close()
	}

	// SC point: the owner serializes both locations' accesses, so the two
	// readers can never observe the writes in opposite orders.
	for trial := 0; trial < 10; trial++ {
		sys, err := core.NewSystem(core.Config{
			Procs: 4, Labels: labelsFor(history.LabelSC, "x", "y"),
		})
		if err != nil {
			t.Fatalf("SC: NewSystem: %v", err)
		}
		var r2x, r2y, r3y, r3x int64
		sys.Run(func(p *core.Proc) {
			switch p.ID() {
			case 0:
				p.Write("x", 1)
			case 1:
				p.Write("y", 1)
			case 2:
				r2x = p.ReadSC("x")
				r2y = p.ReadSC("y")
			case 3:
				r3y = p.ReadSC("y")
				r3x = p.ReadSC("x")
			}
		})
		sys.Close()
		if r2x == 1 && r2y == 0 && r3y == 1 && r3x == 0 {
			t.Fatalf("trial %d: SC-labeled locations exhibited the IRIW weak outcome", trial)
		}
	}
}

// TestRuntimeBarrierFencesSlowSim executes the suite's Barrier-MP row at the
// weakest lattice point: even slow reads must observe pre-barrier writes —
// the barrier is the one fence the slow label keeps.
func TestRuntimeBarrierFencesSlowSim(t *testing.T) {
	sys, err := core.NewSystem(core.Config{
		Procs: 2, Record: true, Labels: labelsFor(history.LabelSlow, "s"),
	})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	defer sys.Close()
	var got int64 = -1
	sys.Run(func(p *core.Proc) {
		if p.ID() == 0 {
			p.Write("s", 1)
		}
		p.Barrier()
		if p.ID() == 1 {
			got = p.ReadSlow("s")
		}
	})
	if got != 1 {
		t.Fatalf("slow read after barrier = %d, want 1 (Barrier-MP must stay forbidden under slow)", got)
	}
	mixedOK(t, sys.History(), "Barrier-MP/slow")
}

// labeledOutcome is one substrate's observable verdict for the barrier-fenced
// message-passing shape at one lattice point: did the reader observe the
// pre-barrier write?
type labeledOutcome struct {
	label history.Label
	fresh bool
}

// runMPBarrierSim runs barrier-fenced MP at one lattice point on the
// simulated fabric and returns the outcome plus the recorded history.
func runMPBarrierSim(t *testing.T, l history.Label) (labeledOutcome, *history.History) {
	t.Helper()
	sys, err := core.NewSystem(core.Config{
		Procs: 2, Record: true, Labels: labelsFor(l, "data"),
	})
	if err != nil {
		t.Fatalf("%v: NewSystem: %v", l, err)
	}
	defer sys.Close()
	var got int64
	sys.Run(func(p *core.Proc) {
		if p.ID() == 0 {
			p.Write("data", 42)
		}
		p.Barrier()
		if p.ID() == 1 {
			got = p.Read("data", l)
		}
	})
	return labeledOutcome{label: l, fresh: got == 42}, sys.History()
}

// runMPBarrierTCP runs the same program on loopback TCP peers.
func runMPBarrierTCP(t *testing.T, l history.Label) (labeledOutcome, *history.History) {
	t.Helper()
	trs, err := tcp.NewLoopback(2, nil)
	if err != nil {
		t.Fatalf("tcp loopback: %v", err)
	}
	trace := history.NewBuilder(2)
	labels := labelsFor(l, "data")
	peers := make([]*core.Peer, 2)
	for i := range peers {
		peers[i], err = core.NewPeer(core.PeerConfig{
			ID: i, Transport: trs[i], Trace: trace, Labels: labels,
		})
		if err != nil {
			t.Fatalf("peer %d: %v", i, err)
		}
	}
	var got int64
	done := make(chan struct{})
	for _, peer := range peers {
		go func(p *core.Proc) {
			defer func() { done <- struct{}{} }()
			if p.ID() == 0 {
				p.Write("data", 42)
			}
			p.Barrier()
			if p.ID() == 1 {
				got = p.Read("data", l)
			}
		}(peer.Proc())
	}
	for range peers {
		<-done
	}
	for _, tr := range trs {
		tr.Flush(2 * time.Second)
	}
	for _, peer := range peers {
		peer.Close()
	}
	return labeledOutcome{label: l, fresh: got == 42}, trace.History()
}

// TestRuntimeMatrixSimTCPAgree runs barrier-fenced message passing at all
// four lattice points on both substrates: every point must deliver the
// pre-barrier write (the barrier fences the whole lattice), the recorded
// histories must verify, and the sim and TCP verdict vectors must be
// identical.
func TestRuntimeMatrixSimTCPAgree(t *testing.T) {
	if testing.Short() {
		t.Skip("loopback TCP matrix in -short mode")
	}
	var simOut, tcpOut []labeledOutcome
	for _, l := range history.LatticeLabels() {
		out, h := runMPBarrierSim(t, l)
		mixedOK(t, h, "sim MP-barrier/"+l.String())
		simOut = append(simOut, out)

		out, h = runMPBarrierTCP(t, l)
		mixedOK(t, h, "tcp MP-barrier/"+l.String())
		tcpOut = append(tcpOut, out)
	}
	for i := range simOut {
		if !simOut[i].fresh {
			t.Errorf("sim: %v reader missed the pre-barrier write", simOut[i].label)
		}
		if simOut[i] != tcpOut[i] {
			t.Errorf("substrates disagree at %v: sim=%+v tcp=%+v",
				simOut[i].label, simOut[i], tcpOut[i])
		}
	}
}

// TestRuntimeSBSCNeverWeakTCP repeats the SC store-buffering trials over
// real sockets: the owner protocol's verdict must not depend on the
// substrate.
func TestRuntimeSBSCNeverWeakTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("loopback TCP SC trials in -short mode")
	}
	for trial := 0; trial < 3; trial++ {
		trs, err := tcp.NewLoopback(2, nil)
		if err != nil {
			t.Fatalf("tcp loopback: %v", err)
		}
		labels := labelsFor(history.LabelSC, "x", "y")
		peers := make([]*core.Peer, 2)
		for i := range peers {
			peers[i], err = core.NewPeer(core.PeerConfig{
				ID: i, Transport: trs[i], Labels: labels,
			})
			if err != nil {
				t.Fatalf("peer %d: %v", i, err)
			}
		}
		var r0, r1 int64
		done := make(chan struct{})
		for _, peer := range peers {
			go func(p *core.Proc) {
				defer func() { done <- struct{}{} }()
				if p.ID() == 0 {
					p.Write("x", 1)
					r0 = p.ReadSC("y")
				} else {
					p.Write("y", 1)
					r1 = p.ReadSC("x")
				}
			}(peer.Proc())
		}
		for range peers {
			<-done
		}
		for _, peer := range peers {
			peer.Close()
		}
		if r0 == 0 && r1 == 0 {
			t.Fatalf("trial %d: SC over TCP exhibited store buffering", trial)
		}
	}
}
