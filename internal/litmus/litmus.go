// Package litmus is a library of classic shared-memory litmus tests
// expressed as histories of the paper's formal model, each annotated with
// its expected verdict at every point of the consistency lattice: slow
// memory (per-writer per-location FIFO only), PRAM reads (Definition 3),
// causal reads (Definition 2), and sequential consistency (Definition 1).
//
// The suite serves two purposes. It documents, in executable form, exactly
// where the conditions separate — the hierarchy SC ⊂ causal ⊂ PRAM ⊂ slow
// means every SC-allowed history is causal-allowed, every causal-allowed
// history is PRAM-allowed, and every PRAM-allowed history is slow-allowed;
// the suite contains witnesses for all three strict inclusions. And it is a
// regression battery for the checkers in internal/check: each test is
// evaluated at all four lattice points and compared with the annotation.
package litmus

import (
	"fmt"
	"strings"

	"mixedmem/internal/check"
	"mixedmem/internal/history"
)

// Verdict says whether a history is admitted by a consistency condition.
type Verdict bool

// Verdict values.
const (
	Allowed   Verdict = true
	Forbidden Verdict = false
)

// String renders the verdict.
func (v Verdict) String() string {
	if v {
		return "allowed"
	}
	return "forbidden"
}

// Test is one litmus test: a history builder plus expected verdicts.
type Test struct {
	// Name identifies the test in the classic literature naming (MP, SB,
	// IRIW, ...).
	Name string
	// Description says what behavior the history exhibits.
	Description string
	// Build constructs the history. Reads carry the label under test, set
	// by the driver through the label argument.
	Build func(label history.Label) *history.History
	// Slow, PRAM, Causal, SC are the expected verdicts under slow reads,
	// PRAM reads, causal reads, and sequential consistency — the four
	// points of the label lattice, weakest first.
	Slow, PRAM, Causal, SC Verdict
}

// Evaluate runs the test's history through the four checkers and returns
// the observed verdicts, lattice order weakest first.
func (t Test) Evaluate() (slow, pram, causal, sc Verdict, err error) {
	// Slow verdict: label reads slow.
	hs := t.Build(history.LabelSlow)
	as, err := hs.Analyze()
	if err != nil {
		return false, false, false, false, fmt.Errorf("litmus %s: %w", t.Name, err)
	}
	slow = Verdict(len(check.SlowReads(as)) == 0)

	// PRAM verdict: label reads PRAM.
	hp := t.Build(history.LabelPRAM)
	ap, err := hp.Analyze()
	if err != nil {
		return false, false, false, false, fmt.Errorf("litmus %s: %w", t.Name, err)
	}
	pram = Verdict(len(check.PRAMReads(ap)) == 0)

	// Causal verdict: label reads causal.
	hc := t.Build(history.LabelCausal)
	ac, err := hc.Analyze()
	if err != nil {
		return false, false, false, false, fmt.Errorf("litmus %s: %w", t.Name, err)
	}
	causal = Verdict(len(check.CausalReads(ac)) == 0)

	// SC verdict on the same history.
	ok, _, err := check.SequentiallyConsistent(ac)
	if err != nil {
		return false, false, false, false, fmt.Errorf("litmus %s: SC: %w", t.Name, err)
	}
	sc = Verdict(ok)
	return slow, pram, causal, sc, nil
}

// Table renders the suite's verdict matrix as a fixed-width text table, one
// row per litmus test and one column per lattice point, weakest first. The
// annotations it prints are the ones TestSuiteVerdicts checks against the
// checkers, so the rendered table is pinned executable documentation (CI
// publishes it as the conformance artifact).
func Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %-10s %-10s %-10s %-10s\n", "test", "slow", "pram", "causal", "sc")
	for _, t := range Suite() {
		fmt.Fprintf(&b, "%-18s %-10v %-10v %-10v %-10v\n", t.Name, t.Slow, t.PRAM, t.Causal, t.SC)
	}
	return b.String()
}

// Suite returns the full litmus battery.
func Suite() []Test {
	return []Test{
		{
			Name:        "MP",
			Description: "message passing: consumer sees flag but stale data",
			// p0: w(x)1; w(f)1.  p1: r(f)1; r(x)0.
			// FIFO per sender forbids it even under PRAM.
			Build: func(l history.Label) *history.History {
				b := history.NewBuilder(2)
				b.Write(0, "x", 1)
				b.Write(0, "f", 1)
				b.Read(1, "f", 1, l)
				b.Read(1, "x", 0, l)
				return b.History()
			},
			Slow: Allowed, PRAM: Forbidden, Causal: Forbidden, SC: Forbidden,
		},
		{
			Name:        "MP+fresh",
			Description: "message passing done right: consumer sees both writes",
			Build: func(l history.Label) *history.History {
				b := history.NewBuilder(2)
				b.Write(0, "x", 1)
				b.Write(0, "f", 1)
				b.Read(1, "f", 1, l)
				b.Read(1, "x", 1, l)
				return b.History()
			},
			Slow: Allowed, PRAM: Allowed, Causal: Allowed, SC: Allowed,
		},
		{
			Name:        "SB",
			Description: "store buffering: both processes read 0 after writing",
			// p0: w(x)1; r(y)0.  p1: w(y)1; r(x)0.
			// No interleaving admits it, but both weak models do: each
			// process's reads are consistent with its own view.
			Build: func(l history.Label) *history.History {
				b := history.NewBuilder(2)
				b.Write(0, "x", 1)
				b.Read(0, "y", 0, l)
				b.Write(1, "y", 1)
				b.Read(1, "x", 0, l)
				return b.History()
			},
			Slow: Allowed, PRAM: Allowed, Causal: Allowed, SC: Forbidden,
		},
		{
			Name:        "WRC",
			Description: "write-to-read causality: transitive visibility through a middleman",
			// p0: w(x)1.  p1: r(x)1; w(y)1.  p2: r(y)1; r(x)0.
			// The canonical PRAM/causal separation witness.
			Build: func(l history.Label) *history.History {
				b := history.NewBuilder(3)
				b.Write(0, "x", 1)
				b.Read(1, "x", 1, l)
				b.Write(1, "y", 1)
				b.Read(2, "y", 1, l)
				b.Read(2, "x", 0, l)
				return b.History()
			},
			Slow: Allowed, PRAM: Allowed, Causal: Forbidden, SC: Forbidden,
		},
		{
			Name:        "IRIW",
			Description: "independent reads of independent writes in opposite orders",
			// p0: w(x)1.  p1: w(y)1.  p2: r(x)1; r(y)0.  p3: r(y)1; r(x)0.
			// Concurrent writes may be observed in different orders under
			// both weak models; SC forbids it.
			Build: func(l history.Label) *history.History {
				b := history.NewBuilder(4)
				b.Write(0, "x", 1)
				b.Write(1, "y", 1)
				b.Read(2, "x", 1, l)
				b.Read(2, "y", 0, l)
				b.Read(3, "y", 1, l)
				b.Read(3, "x", 0, l)
				return b.History()
			},
			Slow: Allowed, PRAM: Allowed, Causal: Allowed, SC: Forbidden,
		},
		{
			Name:        "CoRR",
			Description: "coherence of read-read: one process sees a single location go backwards",
			// p0: w(x)1; w(x)2.  p1: r(x)2; r(x)1.
			// FIFO per sender forbids re-reading the older value.
			Build: func(l history.Label) *history.History {
				b := history.NewBuilder(2)
				b.Write(0, "x", 1)
				b.Write(0, "x", 2)
				b.Read(1, "x", 2, l)
				b.Read(1, "x", 1, l)
				return b.History()
			},
			Slow: Forbidden, PRAM: Forbidden, Causal: Forbidden, SC: Forbidden,
		},
		{
			Name:        "CoRR-cross",
			Description: "two readers disagree on the order of concurrent writes to one location",
			Build: func(l history.Label) *history.History {
				b := history.NewBuilder(4)
				b.Write(0, "x", 1)
				b.Write(1, "x", 2)
				b.Read(2, "x", 1, l)
				b.Read(2, "x", 2, l)
				b.Read(3, "x", 2, l)
				b.Read(3, "x", 1, l)
				return b.History()
			},
			Slow: Allowed, PRAM: Allowed, Causal: Allowed, SC: Forbidden,
		},
		{
			Name:        "LB-values",
			Description: "reads of never-written values",
			Build: func(l history.Label) *history.History {
				b := history.NewBuilder(2)
				b.Read(0, "x", 7, l)
				b.Write(1, "x", 1)
				return b.History()
			},
			Slow: Forbidden, PRAM: Forbidden, Causal: Forbidden, SC: Forbidden,
		},
		{
			Name:        "Await-MP",
			Description: "producer/consumer through an await statement, stale data",
			// The await's synchronization order makes the stale read
			// illegal even under PRAM (the edge is incident on the reader).
			Build: func(l history.Label) *history.History {
				b := history.NewBuilder(2)
				b.Write(0, "x", 1)
				b.Write(0, "f", 1)
				b.Await(1, "f", 1)
				b.Read(1, "x", 0, l)
				return b.History()
			},
			Slow: Allowed, PRAM: Forbidden, Causal: Forbidden, SC: Forbidden,
		},
		{
			Name:        "Await-WRC",
			Description: "transitive handshake through a third process, stale data",
			// p0: w(x)1; w(f)1.  p1: a(f)1; w(g)1.  p2: a(g)1; r(x)0.
			// The Section 5.1 insufficiency: the await chain passes through
			// p1, so PRAM admits the stale read but causal forbids it.
			Build: func(l history.Label) *history.History {
				b := history.NewBuilder(3)
				b.Write(0, "x", 1)
				b.Write(0, "f", 1)
				b.Await(1, "f", 1)
				b.Write(1, "g", 1)
				b.Await(2, "g", 1)
				b.Read(2, "x", 0, l)
				return b.History()
			},
			Slow: Allowed, PRAM: Allowed, Causal: Forbidden, SC: Forbidden,
		},
		{
			Name:        "Lock-handoff",
			Description: "stale read inside a later critical section",
			Build: func(l history.Label) *history.History {
				b := history.NewBuilder(2)
				e0 := b.WLockEpoch(0, "lk")
				b.Write(0, "x", 1)
				b.WUnlockEpoch(0, "lk", e0)
				e1 := b.WLockEpoch(1, "lk")
				b.Read(1, "x", 0, l)
				b.WUnlockEpoch(1, "lk", e1)
				return b.History()
			},
			Slow: Allowed, PRAM: Forbidden, Causal: Forbidden, SC: Forbidden,
		},
		{
			Name:        "Lock-chain",
			Description: "three-way lock chain; middle holder writes nothing",
			// p0 writes x under the lock; p1 takes and releases the lock;
			// p2 takes the lock and reads x stale. The lock order is
			// transitive through p1's hold, so causal forbids the stale
			// read. Under PRAM only edges incident on p2 survive the
			// transitive reduction — the wu0 -> wl1 edge is dropped — so
			// PRAM admits it (the "immediately preceding process" rule of
			// Section 6).
			Build: func(l history.Label) *history.History {
				b := history.NewBuilder(3)
				e0 := b.WLockEpoch(0, "lk")
				b.Write(0, "x", 1)
				b.WUnlockEpoch(0, "lk", e0)
				e1 := b.WLockEpoch(1, "lk")
				b.WUnlockEpoch(1, "lk", e1)
				e2 := b.WLockEpoch(2, "lk")
				b.Read(2, "x", 0, l)
				b.WUnlockEpoch(2, "lk", e2)
				return b.History()
			},
			Slow: Allowed, PRAM: Allowed, Causal: Forbidden, SC: Forbidden,
		},
		{
			Name:        "Barrier-MP",
			Description: "stale read across a barrier",
			Build: func(l history.Label) *history.History {
				b := history.NewBuilder(2)
				b.Write(0, "x", 1)
				b.Barrier(0, 1)
				b.Barrier(1, 1)
				b.Read(1, "x", 0, l)
				return b.History()
			},
			Slow: Forbidden, PRAM: Forbidden, Causal: Forbidden, SC: Forbidden,
		},
		{
			Name:        "Barrier-fresh",
			Description: "phase exchange across a barrier, all fresh",
			Build: func(l history.Label) *history.History {
				b := history.NewBuilder(2)
				b.Write(0, "x", 1)
				b.Write(1, "y", 2)
				b.Barrier(0, 1)
				b.Barrier(1, 1)
				b.Read(0, "y", 2, l)
				b.Read(1, "x", 1, l)
				return b.History()
			},
			Slow: Allowed, PRAM: Allowed, Causal: Allowed, SC: Allowed,
		},
		{
			Name:        "2P-equivalence",
			Description: "with two processes, PRAM and causal coincide (Section 3.2 remark)",
			// A two-process history that would separate the models if a
			// third process relayed the dependency; with two processes the
			// reads-from edge is always incident on the reader, so both
			// models forbid the stale read.
			Build: func(l history.Label) *history.History {
				b := history.NewBuilder(2)
				b.Write(0, "x", 1)
				b.Read(1, "x", 1, l)
				b.Write(1, "y", 1)
				b.Read(0, "y", 1, l)
				b.Read(0, "z", 0, l) // touch a third location, still fine
				return b.History()
			},
			Slow: Allowed, PRAM: Allowed, Causal: Allowed, SC: Allowed,
		},
		{
			Name:        "SB+barrier",
			Description: "store buffering with a barrier between writes and reads",
			// The barrier forces both writes before both reads, so reading
			// 0 is forbidden under every condition.
			Build: func(l history.Label) *history.History {
				b := history.NewBuilder(2)
				b.Write(0, "x", 1)
				b.Barrier(0, 1)
				b.Read(0, "y", 0, l)
				b.Write(1, "y", 1)
				b.Barrier(1, 1)
				b.Read(1, "x", 0, l)
				return b.History()
			},
			Slow: Forbidden, PRAM: Forbidden, Causal: Forbidden, SC: Forbidden,
		},
		{
			Name:        "SB+barrier-fresh",
			Description: "store buffering resolved by a barrier, both reads fresh",
			Build: func(l history.Label) *history.History {
				b := history.NewBuilder(2)
				b.Write(0, "x", 1)
				b.Barrier(0, 1)
				b.Read(0, "y", 1, l)
				b.Write(1, "y", 1)
				b.Barrier(1, 1)
				b.Read(1, "x", 1, l)
				return b.History()
			},
			Slow: Allowed, PRAM: Allowed, Causal: Allowed, SC: Allowed,
		},
		{
			Name:        "WWC",
			Description: "write-to-write causality: later write observed without its predecessor's context",
			// p0 writes x; p1 reads it and overwrites x; p2 reads p1's
			// value then re-reads p0's older one. The second read is a
			// same-location coherence violation under causal (w0 ~> w1 in
			// p2's view) but PRAM admits it: w0's edge to p1's read is
			// dropped, leaving w0 and w1 unordered for p2.
			Build: func(l history.Label) *history.History {
				b := history.NewBuilder(3)
				b.Write(0, "x", 1)
				b.Read(1, "x", 1, l)
				b.Write(1, "x", 2)
				b.Read(2, "x", 2, l)
				b.Read(2, "x", 1, l)
				return b.History()
			},
			Slow: Allowed, PRAM: Allowed, Causal: Forbidden, SC: Forbidden,
		},
		{
			Name:        "MP-locks-fresh",
			Description: "critical-section handoff with fresh data",
			Build: func(l history.Label) *history.History {
				b := history.NewBuilder(2)
				e0 := b.WLockEpoch(0, "lk")
				b.Write(0, "x", 1)
				b.WUnlockEpoch(0, "lk", e0)
				e1 := b.WLockEpoch(1, "lk")
				b.Read(1, "x", 1, l)
				b.WUnlockEpoch(1, "lk", e1)
				return b.History()
			},
			Slow: Allowed, PRAM: Allowed, Causal: Allowed, SC: Allowed,
		},
		{
			Name:        "2P-stale",
			Description: "two-process staleness forbidden by both weak models",
			// p0: w(x)1.  p1: r(x)1; w(y)1.  p0: r(y)1; then p1: r(x)... no
			// — keep it two-sided: p1 reads x fresh then x stale again.
			Build: func(l history.Label) *history.History {
				b := history.NewBuilder(2)
				b.Write(0, "x", 1)
				b.Read(1, "x", 1, l)
				b.Read(1, "x", 0, l)
				return b.History()
			},
			Slow: Forbidden, PRAM: Forbidden, Causal: Forbidden, SC: Forbidden,
		},
	}
}
