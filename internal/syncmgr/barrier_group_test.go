package syncmgr

import (
	"testing"
	"time"

	"mixedmem/internal/check"
	"mixedmem/internal/history"
)

func TestBarrierGroupExchangesWithinGroup(t *testing.T) {
	tc := newTestCluster(t, 4, Lazy, nil)
	members := []int{1, 2}
	done := make(chan int64, 2)
	for _, id := range members {
		id := id
		go func() {
			tc.nodes[id].Write("g"+string(rune('0'+id)), int64(id*10))
			tc.barriers[id].BarrierGroup("pair", members)
			other := 3 - id // 1 <-> 2
			done <- tc.nodes[id].ReadPRAM("g" + string(rune('0'+other)))
		}()
	}
	want := map[int64]bool{10: false, 20: false}
	for i := 0; i < 2; i++ {
		select {
		case v := <-done:
			want[v] = true
		case <-time.After(2 * time.Second):
			t.Fatal("group barrier never released")
		}
	}
	if !want[10] || !want[20] {
		t.Fatalf("cross reads missing: %v", want)
	}
}

func TestBarrierGroupDoesNotBlockNonMembers(t *testing.T) {
	tc := newTestCluster(t, 3, Lazy, nil)
	released := make(chan struct{})
	go func() {
		tc.barriers[0].BarrierGroup("duo", []int{0, 1})
		close(released)
	}()
	// Non-member 2 never arrives; only member 1 is needed.
	select {
	case <-released:
		t.Fatal("released before the second member arrived")
	case <-time.After(20 * time.Millisecond):
	}
	go tc.barriers[1].BarrierGroup("duo", []int{0, 1})
	select {
	case <-released:
	case <-time.After(2 * time.Second):
		t.Fatal("group barrier never released")
	}
}

func TestBarrierGroupIndependentOfGlobal(t *testing.T) {
	tc := newTestCluster(t, 2, Lazy, nil)
	// Run a group barrier between the two, then a global one; indices must
	// not collide.
	done := make(chan struct{}, 2)
	for id := 0; id < 2; id++ {
		id := id
		go func() {
			tc.barriers[id].BarrierGroup("both", []int{0, 1})
			tc.barriers[id].Barrier()
			done <- struct{}{}
		}()
	}
	for i := 0; i < 2; i++ {
		select {
		case <-done:
		case <-time.After(2 * time.Second):
			t.Fatal("mixed group/global barriers deadlocked")
		}
	}
}

func TestBarrierGroupSequence(t *testing.T) {
	tc := newTestCluster(t, 3, Lazy, nil)
	members := []int{0, 2}
	const rounds = 4
	done := make(chan bool, 2)
	for _, id := range members {
		id := id
		go func() {
			ok := true
			loc := "seq" + string(rune('0'+id))
			other := 2 - id
			for r := 1; r <= rounds; r++ {
				tc.nodes[id].Write(loc, int64(r))
				tc.barriers[id].BarrierGroup("m", members)
				if tc.nodes[id].ReadPRAM("seq"+string(rune('0'+other))) != int64(r) {
					ok = false
				}
				tc.barriers[id].BarrierGroup("m", members)
			}
			done <- ok
		}()
	}
	for i := 0; i < 2; i++ {
		select {
		case ok := <-done:
			if !ok {
				t.Fatal("stale read inside group phase")
			}
		case <-time.After(3 * time.Second):
			t.Fatal("group barrier sequence hung")
		}
	}
}

func TestBarrierGroupTraceOrdersOnlyMembers(t *testing.T) {
	trace := history.NewBuilder(3)
	tc := newTestCluster(t, 3, Lazy, trace)
	members := []int{0, 1}
	doneCh := make(chan struct{}, 2)
	for _, id := range members {
		id := id
		go func() {
			tc.nodes[id].Write("bg"+string(rune('0'+id)), int64(id+1))
			tc.barriers[id].BarrierGroup("g", members)
			tc.nodes[id].ReadPRAM("bg" + string(rune('0'+(1-id))))
			doneCh <- struct{}{}
		}()
	}
	for i := 0; i < 2; i++ {
		<-doneCh
	}
	// The outsider writes concurrently; it must not be ordered by the
	// group's barrier.
	tc.nodes[2].Write("outside", 99)

	h := trace.History()
	a, err := h.Analyze()
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if v := check.Mixed(a); len(v) != 0 {
		t.Fatalf("trace not mixed consistent: %v", v)
	}
	var outside, barrier0 = -1, -1
	for _, op := range h.Ops {
		if op.Loc == "outside" {
			outside = op.ID
		}
		if op.Kind == history.Barrier && op.Proc == 0 {
			barrier0 = op.ID
		}
	}
	if outside < 0 || barrier0 < 0 {
		t.Fatal("ops missing from trace")
	}
	if h.Ops[barrier0].BarrierGroup != "g" {
		t.Fatalf("barrier group not recorded: %+v", h.Ops[barrier0])
	}
	if a.BarrierOrder.Has(outside, barrier0) || a.BarrierOrder.Has(barrier0, outside) {
		t.Fatal("subset barrier must not order non-member operations")
	}
}
