package syncmgr

import (
	"testing"
	"time"

	"mixedmem/internal/network"
)

// managerHarness drives a Manager directly with crafted protocol messages
// and observes the grants it sends over a real fabric. One persistent
// receiver per client feeds a channel, so probing for "no grant yet" does
// not swallow a later grant.
type managerHarness struct {
	t      *testing.T
	fabric *network.Fabric
	mgr    *Manager
	grants []chan lockGrant
}

func newManagerHarness(t *testing.T, nodes int, mode PropagationMode) *managerHarness {
	t.Helper()
	f, err := network.New(network.Config{Nodes: nodes})
	if err != nil {
		t.Fatalf("network.New: %v", err)
	}
	t.Cleanup(f.Close)
	h := &managerHarness{
		t: t, fabric: f, mgr: NewManager(0, f, mode),
		grants: make([]chan lockGrant, nodes),
	}
	for c := 1; c < nodes; c++ {
		c := c
		h.grants[c] = make(chan lockGrant, 16)
		go func() {
			for {
				m, ok := f.Recv(c)
				if !ok {
					return
				}
				if g, ok := m.Payload.(lockGrant); ok {
					h.grants[c] <- g
				}
			}
		}()
	}
	return h
}

func (h *managerHarness) request(client int, lock string, mode LockMode, reqID uint64) {
	h.mgr.onRequest(network.Message{
		From: client, To: 0, Kind: KindLockReq,
		Payload: lockRequest{Lock: lock, Mode: mode, Client: client, ReqID: reqID},
	})
}

func (h *managerHarness) release(client int, lock string, mode LockMode) {
	h.mgr.onRelease(network.Message{
		From: client, To: 0, Kind: KindLockRel,
		Payload: lockRelease{Lock: lock, Mode: mode, Client: client},
	})
}

// grant returns the next grant delivered to client, or times out.
func (h *managerHarness) grant(client int) (lockGrant, bool) {
	h.t.Helper()
	select {
	case g := <-h.grants[client]:
		return g, true
	case <-time.After(time.Second):
		return lockGrant{}, false
	}
}

// noGrant asserts nothing is delivered to client within a short window.
func (h *managerHarness) noGrant(client int) {
	h.t.Helper()
	select {
	case g := <-h.grants[client]:
		h.t.Fatalf("unexpected grant %+v", g)
	case <-time.After(20 * time.Millisecond):
	}
}

func TestManagerGrantsFreeWriteLock(t *testing.T) {
	h := newManagerHarness(t, 3, Lazy)
	h.request(1, "l", WriteMode, 1)
	g, ok := h.grant(1)
	if !ok {
		t.Fatal("no grant")
	}
	if g.Lock != "l" || g.ReqID != 1 || g.Epoch != 0 {
		t.Fatalf("grant = %+v", g)
	}
}

func TestManagerQueuesSecondWriter(t *testing.T) {
	h := newManagerHarness(t, 3, Lazy)
	h.request(1, "l", WriteMode, 1)
	if _, ok := h.grant(1); !ok {
		t.Fatal("first writer not granted")
	}
	h.request(2, "l", WriteMode, 2)
	h.noGrant(2)
	h.release(1, "l", WriteMode)
	g, ok := h.grant(2)
	if !ok {
		t.Fatal("second writer never granted")
	}
	if g.Epoch != 1 {
		t.Fatalf("second write epoch = %d, want 1", g.Epoch)
	}
}

func TestManagerBatchesConsecutiveReaders(t *testing.T) {
	h := newManagerHarness(t, 4, Lazy)
	h.request(1, "l", ReadMode, 1)
	h.request(2, "l", ReadMode, 2)
	h.request(3, "l", ReadMode, 3)
	g1, ok1 := h.grant(1)
	g2, ok2 := h.grant(2)
	g3, ok3 := h.grant(3)
	if !ok1 || !ok2 || !ok3 {
		t.Fatal("readers not all granted")
	}
	if g1.Epoch != g2.Epoch || g2.Epoch != g3.Epoch {
		t.Fatalf("concurrent readers must share an epoch: %d %d %d",
			g1.Epoch, g2.Epoch, g3.Epoch)
	}
}

func TestManagerWriterWaitsBehindReaders(t *testing.T) {
	h := newManagerHarness(t, 4, Lazy)
	h.request(1, "l", ReadMode, 1)
	h.request(2, "l", ReadMode, 2)
	_, _ = h.grant(1)
	_, _ = h.grant(2)
	h.request(3, "l", WriteMode, 3)
	h.noGrant(3)
	h.release(1, "l", ReadMode)
	h.noGrant(3) // one reader still holds
	h.release(2, "l", ReadMode)
	g, ok := h.grant(3)
	if !ok {
		t.Fatal("writer never granted after readers released")
	}
	if g.Epoch != 1 {
		t.Fatalf("write epoch after read epoch 0 = %d, want 1", g.Epoch)
	}
}

func TestManagerFIFOReaderBehindWriterWaits(t *testing.T) {
	// A reader queued behind a waiting writer must not jump the queue
	// (write-preferring FIFO admission).
	h := newManagerHarness(t, 4, Lazy)
	h.request(1, "l", ReadMode, 1)
	_, _ = h.grant(1)
	h.request(2, "l", WriteMode, 2)
	h.request(3, "l", ReadMode, 3)
	h.noGrant(3)
	h.release(1, "l", ReadMode)
	if _, ok := h.grant(2); !ok {
		t.Fatal("writer not granted first")
	}
	h.noGrant(3)
	h.release(2, "l", WriteMode)
	g, ok := h.grant(3)
	if !ok {
		t.Fatal("reader never granted")
	}
	if g.Epoch != 2 {
		t.Fatalf("read epoch after write epoch = %d, want 2", g.Epoch)
	}
}

func TestManagerEpochAlternation(t *testing.T) {
	// Epochs advance: read batch 0, write 1, write 2, read batch 3.
	h := newManagerHarness(t, 3, Lazy)
	h.request(1, "l", ReadMode, 1)
	g, _ := h.grant(1)
	if g.Epoch != 0 {
		t.Fatalf("first read epoch = %d", g.Epoch)
	}
	h.release(1, "l", ReadMode)
	h.request(1, "l", WriteMode, 2)
	g, _ = h.grant(1)
	if g.Epoch != 1 {
		t.Fatalf("write epoch = %d, want 1", g.Epoch)
	}
	h.release(1, "l", WriteMode)
	h.request(2, "l", WriteMode, 3)
	g, _ = h.grant(2)
	if g.Epoch != 2 {
		t.Fatalf("second write epoch = %d, want 2", g.Epoch)
	}
	h.release(2, "l", WriteMode)
	h.request(1, "l", ReadMode, 4)
	g, _ = h.grant(1)
	if g.Epoch != 3 {
		t.Fatalf("read epoch after writes = %d, want 3", g.Epoch)
	}
}

func TestManagerLazyAccumulatesReleaseVector(t *testing.T) {
	h := newManagerHarness(t, 3, Lazy)
	h.request(1, "l", WriteMode, 1)
	if _, ok := h.grant(1); !ok {
		t.Fatal("no grant")
	}
	h.mgr.onRelease(network.Message{
		From: 1, To: 0, Kind: KindLockRel,
		Payload: lockRelease{Lock: "l", Mode: WriteMode, Client: 1, Counts: []uint64{0, 5, 2}},
	})
	h.request(2, "l", WriteMode, 2)
	g, ok := h.grant(2)
	if !ok {
		t.Fatal("no grant")
	}
	if len(g.RelVC) != 3 || g.RelVC[1] != 5 || g.RelVC[2] != 2 {
		t.Fatalf("RelVC = %v, want [0 5 2]", g.RelVC)
	}
	// A second unlock with smaller counts must not regress the vector.
	h.mgr.onRelease(network.Message{
		From: 2, To: 0, Kind: KindLockRel,
		Payload: lockRelease{Lock: "l", Mode: WriteMode, Client: 2, Counts: []uint64{0, 3, 7}},
	})
	h.request(1, "l", WriteMode, 3)
	g, ok = h.grant(1)
	if !ok {
		t.Fatal("no grant")
	}
	if g.RelVC[1] != 5 || g.RelVC[2] != 7 {
		t.Fatalf("RelVC after merge = %v, want max [_,5,7]", g.RelVC)
	}
}

func TestManagerDemandAccumulatesWriteSet(t *testing.T) {
	h := newManagerHarness(t, 3, DemandDriven)
	h.request(1, "l", WriteMode, 1)
	if _, ok := h.grant(1); !ok {
		t.Fatal("no grant")
	}
	h.mgr.onRelease(network.Message{
		From: 1, To: 0, Kind: KindLockRel,
		Payload: lockRelease{
			Lock: "l", Mode: WriteMode, Client: 1,
			WriteSet: map[string]writeStamp{"x": {From: 1, Seq: 4}},
		},
	})
	h.request(2, "l", WriteMode, 2)
	g, ok := h.grant(2)
	if !ok {
		t.Fatal("no grant")
	}
	if got := g.WriteSet["x"]; got.From != 1 || got.Seq != 4 {
		t.Fatalf("WriteSet = %+v", g.WriteSet)
	}
}

func TestManagerIgnoresMalformedPayloads(t *testing.T) {
	h := newManagerHarness(t, 2, Lazy)
	// Must not panic or grant anything.
	h.mgr.onRequest(network.Message{Kind: KindLockReq, Payload: "garbage"})
	h.mgr.onRelease(network.Message{Kind: KindLockRel, Payload: 42})
	h.noGrant(1)
}

func TestManagerReleaseByNonHolderIsSafe(t *testing.T) {
	h := newManagerHarness(t, 3, Lazy)
	h.request(1, "l", WriteMode, 1)
	if _, ok := h.grant(1); !ok {
		t.Fatal("no grant")
	}
	// Client 2 releases a lock it does not hold: the holder must keep it.
	h.release(2, "l", WriteMode)
	h.request(2, "l", WriteMode, 2)
	h.noGrant(2)
	h.release(1, "l", WriteMode)
	if _, ok := h.grant(2); !ok {
		t.Fatal("real release did not admit the waiter")
	}
}
