package syncmgr

import (
	"sync"
	"time"

	"mixedmem/internal/dsm"
	"mixedmem/internal/history"
	"mixedmem/internal/network"
	"mixedmem/internal/obs"
	"mixedmem/internal/transport"
)

// barArrive is the payload a process sends to the barrier manager on
// reaching barrier k: its cumulative per-destination update counts, the
// vector of Section 6's barrier implementation.
type barArrive struct {
	Client int
	K      int
	Sent   []uint64
	// Group names the barrier object; "" is the global barrier over all
	// processes. Members lists the participating processes for subset
	// barriers (ignored for the global barrier).
	Group   string
	Members []int
}

// barRelease is the manager's reply: Expected[j] is the cumulative number of
// updates process j has sent to the recipient, which the recipient must
// receive before proceeding past the barrier.
type barRelease struct {
	K        int
	Expected []uint64
	Group    string
}

// BarrierManager is the barrier-manager state machine of Section 6: each
// process sends its per-destination update-count vector on arrival; when all
// have arrived the manager transposes the vectors and releases every process
// with the counts it must wait for.
type BarrierManager struct {
	self    int
	n       int
	fabric  transport.Transport
	members int

	mu      sync.Mutex
	pending map[barKey]map[int][]uint64 // (group, k) -> client -> sent vector
}

type barKey struct {
	group string
	k     int
}

// NewBarrierManager creates a barrier manager hosted on node self. members
// is the number of processes participating in each barrier (the paper notes
// barriers can also be defined for subsets; participants must agree).
func NewBarrierManager(self int, tr transport.Transport, members int) *BarrierManager {
	return &BarrierManager{
		self:    self,
		n:       tr.Nodes(),
		fabric:  tr,
		members: members,
		pending: make(map[barKey]map[int][]uint64),
	}
}

// Bind registers the manager's handler on a dispatcher.
func (m *BarrierManager) Bind(d *Dispatcher) {
	d.Register(KindBarArrive, m.onArrive)
}

func (m *BarrierManager) onArrive(msg network.Message) {
	arr, ok := msg.Payload.(barArrive)
	if !ok {
		return
	}
	need := m.members
	if arr.Group != "" {
		need = len(arr.Members)
	}
	key := barKey{arr.Group, arr.K}
	m.mu.Lock()
	if m.pending[key] == nil {
		m.pending[key] = make(map[int][]uint64)
	}
	m.pending[key][arr.Client] = arr.Sent
	if len(m.pending[key]) < need {
		m.mu.Unlock()
		return
	}
	vectors := m.pending[key]
	delete(m.pending, key)
	m.mu.Unlock()

	// Transpose: client i must wait for vectors[j][i] updates from each j.
	for client := range vectors {
		expected := make([]uint64, m.n)
		for j, vec := range vectors {
			if client < len(vec) {
				expected[j] = vec[client]
			}
		}
		rel := barRelease{K: arr.K, Group: arr.Group, Expected: expected}
		_ = m.fabric.Send(network.Message{
			From: m.self, To: client, Kind: KindBarRelease,
			Payload: rel, Size: 8 + 8*len(expected),
		})
	}
}

// BarrierStats counts a barrier client's activity.
type BarrierStats struct {
	Barriers uint64
	// Wait is the total time blocked at barriers: waiting for the release
	// message plus waiting for the counted updates to arrive.
	Wait time.Duration
}

// BarrierClient is the per-process side of the barrier protocol.
type BarrierClient struct {
	node    *dsm.Node
	manager int

	mu       sync.Mutex
	nextK    int
	groupK   map[string]int
	releases map[barKey]chan barRelease
	stats    BarrierStats
}

// NewBarrierClient creates the client side for node, pointing at the
// manager process.
func NewBarrierClient(node *dsm.Node, manager int) *BarrierClient {
	return &BarrierClient{
		node:     node,
		manager:  manager,
		nextK:    1,
		groupK:   make(map[string]int),
		releases: make(map[barKey]chan barRelease),
	}
}

// Bind registers the client's handler on a dispatcher.
func (c *BarrierClient) Bind(d *Dispatcher) {
	d.Register(KindBarRelease, c.onRelease)
}

func (c *BarrierClient) onRelease(msg network.Message) {
	rel, ok := msg.Payload.(barRelease)
	if !ok {
		return
	}
	key := barKey{rel.Group, rel.K}
	c.mu.Lock()
	ch := c.releases[key]
	delete(c.releases, key)
	c.mu.Unlock()
	if ch != nil {
		ch <- rel
	}
}

// Barrier blocks until every participating process has arrived at the k-th
// barrier and all updates sent before the barrier have been applied locally
// to both views. Barrier indices are implicit: the i-th call on every
// process is barrier i.
//
// The paper notes writes after a barrier need not block; this implementation
// blocks the whole process at the barrier, which is a stronger (still
// correct) realization and matches how the Figure 2/4 programs use barriers.
func (c *BarrierClient) Barrier() {
	c.mu.Lock()
	k := c.nextK
	c.nextK++
	c.mu.Unlock()
	c.barrier("", k, nil)
}

// BarrierGroup blocks until every process in members arrives at the named
// group's next barrier — the paper's subset barrier ("restricting the range
// of the universal quantification to the subset"). All members must call
// BarrierGroup with the same name and member set; the i-th call on each
// member is the group's i-th barrier. The count-vector exchange covers only
// the members: updates from non-members are not awaited.
func (c *BarrierClient) BarrierGroup(name string, members []int) {
	if name == "" {
		c.Barrier()
		return
	}
	c.mu.Lock()
	c.groupK[name]++
	k := c.groupK[name]
	c.mu.Unlock()
	c.barrier(name, k, members)
}

func (c *BarrierClient) barrier(group string, k int, members []int) {
	key := barKey{group, k}
	ch := make(chan barRelease, 1)
	c.mu.Lock()
	c.releases[key] = ch
	c.mu.Unlock()

	start := time.Now()
	if tr := c.node.Tracer(); tr != nil {
		tr.RecordLoc(obs.EvBarrierEnter, 0, 0, group, uint64(k), 0, 0)
	}
	// Barrier arrival is a synchronization boundary: SentCounts flushes the
	// node's update outbox and snapshots the counts under one lock, so every
	// update the reported vector promises is on the wire before the manager
	// can release anyone against it.
	sent := c.node.SentCounts()
	if group != "" {
		// Subset barrier: only member counts participate.
		masked := make([]uint64, len(sent))
		for _, mbr := range members {
			if mbr >= 0 && mbr < len(sent) {
				masked[mbr] = sent[mbr]
			}
		}
		sent = masked
	}
	_ = c.node.Transport().Send(network.Message{
		From: c.node.ID(), To: c.manager, Kind: KindBarArrive,
		Payload: barArrive{
			Client: c.node.ID(), K: k, Sent: sent,
			Group: group, Members: members,
		},
		Size: 16 + 8*len(sent) + len(group) + 4*len(members),
	})
	rel := <-ch
	// All prior-phase updates must be applied before this phase's reads:
	// wait on the PRAM view, then on the causal view. Once every counted
	// update has been received, the causal view can always drain fully
	// (dependencies of pre-barrier updates are themselves pre-barrier).
	c.node.WaitReceived(rel.Expected)
	c.node.WaitCausalApplied(rel.Expected)

	wait := time.Since(start)
	c.mu.Lock()
	c.stats.Barriers++
	c.stats.Wait += wait
	c.mu.Unlock()
	if tr := c.node.Tracer(); tr != nil {
		tr.RecordLoc(obs.EvBarrierExit, 0, 0, group, uint64(k), uint64(wait), 0)
	}

	if tr := c.node.Trace(); tr != nil {
		tr.AppendOp(history.Op{
			Proc: c.node.ID(), Kind: history.Barrier,
			BarrierID: k, BarrierGroup: group,
		})
	}
}

// Stats returns a snapshot of the client's counters.
func (c *BarrierClient) Stats() BarrierStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}
