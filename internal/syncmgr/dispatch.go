// Package syncmgr implements the synchronization layer of Section 6 of the
// paper: lock and barrier manager processes reachable over the fabric, the
// client sides that processes call, and the three propagation modes for
// critical-section updates — eager, lazy, and demand-driven.
//
// Every lock is mapped to a lock-manager process and every barrier to a
// barrier-manager process, exactly as the paper describes. Managers are
// message-driven state machines running on a node's receive loop; all their
// actions are non-blocking sends, so a manager can share a node with a
// worker process.
package syncmgr

import (
	"sync"

	"mixedmem/internal/network"
)

// Message kinds used by the synchronization protocols.
const (
	KindLockReq    = "lock-req"
	KindLockGrant  = "lock-grant"
	KindLockRel    = "lock-rel"
	KindFlush      = "flush"
	KindFlushAck   = "flush-ack"
	KindBarArrive  = "bar-arrive"
	KindBarRelease = "bar-release"
)

// PropagationMode selects how critical-section updates become visible to the
// next lock holder (Section 6).
type PropagationMode int

// The three propagation modes.
const (
	// Eager: the releasing process broadcasts a flush and collects
	// acknowledgements from every process before the lock is released, so
	// the effects of the critical section are globally visible at unlock.
	Eager PropagationMode = iota + 1
	// Lazy: update-message counts travel with the unlock to the manager;
	// the next holder waits for the counted messages at acquire time.
	Lazy
	// DemandDriven: the write-set of the critical section travels with the
	// unlock; the next holder invalidates its local copies and only reads
	// of invalidated locations block.
	DemandDriven
)

// String names the mode.
func (m PropagationMode) String() string {
	switch m {
	case Eager:
		return "eager"
	case Lazy:
		return "lazy"
	case DemandDriven:
		return "demand-driven"
	default:
		return "mode(?)"
	}
}

// Dispatcher routes protocol messages delivered to one node to the lock and
// barrier components registered on it. It implements the dsm.Handler shape.
type Dispatcher struct {
	mu     sync.RWMutex
	routes map[string]func(network.Message)
}

// NewDispatcher returns an empty dispatcher.
func NewDispatcher() *Dispatcher {
	return &Dispatcher{routes: make(map[string]func(network.Message))}
}

// Register installs fn as the handler for messages of the given kind.
// Later registrations replace earlier ones.
func (d *Dispatcher) Register(kind string, fn func(network.Message)) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.routes[kind] = fn
}

// Handle routes one message; unknown kinds are dropped.
func (d *Dispatcher) Handle(m network.Message) {
	d.mu.RLock()
	fn := d.routes[m.Kind]
	d.mu.RUnlock()
	if fn != nil {
		fn(m)
	}
}
