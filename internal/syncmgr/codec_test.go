package syncmgr

import (
	"reflect"
	"testing"

	"mixedmem/internal/transport"
)

// roundTrip encodes payload under kind and decodes it back.
func roundTrip(t *testing.T, kind string, payload any) any {
	t.Helper()
	enc, err := transport.EncodePayload(nil, kind, payload)
	if err != nil {
		t.Fatalf("encode %s: %v", kind, err)
	}
	dec, err := transport.DecodePayload(kind, enc)
	if err != nil {
		t.Fatalf("decode %s: %v", kind, err)
	}
	return dec
}

func TestLockReqCodecRoundTrip(t *testing.T) {
	r := lockRequest{Lock: "l[7]", Mode: WriteMode, Client: 3, ReqID: 41}
	if got := roundTrip(t, KindLockReq, r); !reflect.DeepEqual(got, r) {
		t.Fatalf("round trip: %+v -> %+v", r, got)
	}
}

func TestLockGrantCodecRoundTrip(t *testing.T) {
	g := lockGrant{
		Lock:  "mat",
		ReqID: 12,
		Epoch: 5,
		RelVC: []uint64{9, 0, 3},
		WriteSet: map[string]writeStamp{
			"x[0]": {From: 1, Seq: 4},
			"x[9]": {From: 2, Seq: 17},
		},
	}
	if got := roundTrip(t, KindLockGrant, g); !reflect.DeepEqual(got, g) {
		t.Fatalf("round trip: %+v -> %+v", g, got)
	}
	// Empty write-set and nil VC must survive as nil, not empty-but-non-nil.
	minimal := lockGrant{Lock: "m"}
	if got := roundTrip(t, KindLockGrant, minimal); !reflect.DeepEqual(got, minimal) {
		t.Fatalf("minimal round trip: %+v -> %+v", minimal, got)
	}
}

func TestLockRelCodecRoundTrip(t *testing.T) {
	r := lockRelease{
		Lock:     "l",
		Mode:     ReadMode,
		Client:   2,
		Counts:   []uint64{1, 2, 3, 4},
		WriteSet: map[string]writeStamp{"y": {From: 0, Seq: 8}},
	}
	if got := roundTrip(t, KindLockRel, r); !reflect.DeepEqual(got, r) {
		t.Fatalf("round trip: %+v -> %+v", r, got)
	}
}

func TestBarArriveCodecRoundTrip(t *testing.T) {
	a := barArrive{
		Client:  1,
		K:       6,
		Sent:    []uint64{10, 0, 2},
		Group:   "phase-a",
		Members: []int{0, 2},
	}
	if got := roundTrip(t, KindBarArrive, a); !reflect.DeepEqual(got, a) {
		t.Fatalf("round trip: %+v -> %+v", a, got)
	}
	minimal := barArrive{Client: 0, K: 1}
	if got := roundTrip(t, KindBarArrive, minimal); !reflect.DeepEqual(got, minimal) {
		t.Fatalf("minimal round trip: %+v -> %+v", minimal, got)
	}
}

func TestBarReleaseCodecRoundTrip(t *testing.T) {
	r := barRelease{K: 3, Expected: []uint64{7, 7, 7}, Group: "g"}
	if got := roundTrip(t, KindBarRelease, r); !reflect.DeepEqual(got, r) {
		t.Fatalf("round trip: %+v -> %+v", r, got)
	}
}

func TestCodecsRejectWrongTypesAndTruncation(t *testing.T) {
	for _, kind := range []string{KindLockReq, KindLockGrant, KindLockRel, KindBarArrive, KindBarRelease} {
		if _, err := transport.EncodePayload(nil, kind, struct{ X int }{1}); err == nil {
			t.Errorf("%s: encoding a foreign payload type succeeded", kind)
		}
		if _, err := transport.DecodePayload(kind, []byte{0xff}); err == nil {
			t.Errorf("%s: decoding a truncated payload succeeded", kind)
		}
	}
}
