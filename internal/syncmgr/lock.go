package syncmgr

import (
	"sync"
	"time"

	"mixedmem/internal/dsm"
	"mixedmem/internal/history"
	"mixedmem/internal/network"
	"mixedmem/internal/obs"
	"mixedmem/internal/transport"
)

// LockMode distinguishes read and write lock requests.
type LockMode int

// Lock request modes.
const (
	ReadMode LockMode = iota + 1
	WriteMode
)

// lockRequest is the payload of a KindLockReq message.
type lockRequest struct {
	Lock   string
	Mode   LockMode
	Client int
	ReqID  uint64
}

// lockGrant is the payload of a KindLockGrant message. Depending on the
// propagation mode it carries the release vector (lazy) or the accumulated
// write-set (demand-driven) the acquirer must honor before reading.
type lockGrant struct {
	Lock  string
	ReqID uint64
	Epoch int
	// RelVC, in lazy mode, is the elementwise maximum of the received
	// counts reported by previous unlockers: the acquirer waits until it
	// has received at least this many updates from each process.
	RelVC []uint64
	// WriteSet, in demand-driven mode, maps locations written in previous
	// critical sections to the update the acquirer must see before reading
	// them.
	WriteSet map[string]writeStamp
}

type writeStamp struct {
	From int
	Seq  uint64
}

// lockRelease is the payload of a KindLockRel message.
type lockRelease struct {
	Lock   string
	Mode   LockMode
	Client int
	// Counts is the unlocker's received-counts vector (lazy mode).
	Counts []uint64
	// WriteSet lists locations written in the critical section
	// (demand-driven mode, write unlocks only).
	WriteSet map[string]writeStamp
}

// grantSize and friends model wire sizes for the latency model and the
// message accounting, so the three modes show their real relative costs.
func (g lockGrant) size() int {
	s := 24 + len(g.Lock) + 8*len(g.RelVC)
	for loc := range g.WriteSet {
		s += len(loc) + 12
	}
	return s
}

func (r lockRelease) size() int {
	s := 16 + len(r.Lock) + 8*len(r.Counts)
	for loc := range r.WriteSet {
		s += len(loc) + 12
	}
	return s
}

// Manager is the lock-manager state machine of Section 6. It runs on the
// node whose dispatcher routes KindLockReq and KindLockRel to it; all its
// work happens in those handlers and consists only of state updates and
// non-blocking sends.
type Manager struct {
	self   int
	fabric transport.Transport
	mode   PropagationMode

	mu    sync.Mutex
	locks map[string]*lockState
}

type lockState struct {
	// epoch is the last assigned epoch; epochIsRead tells whether the
	// current epoch is a shared read epoch.
	epoch       int
	epochIsRead bool
	// started tracks whether any epoch has been assigned yet.
	started bool
	// writer holds the current write holder, or -1.
	writer int
	// readers holds the current read holders.
	readers map[int]bool
	queue   []lockRequest
	// relVC accumulates unlockers' received counts (lazy mode).
	relVC []uint64
	// writeSet accumulates critical-section write-sets (demand mode).
	writeSet map[string]writeStamp
}

// NewManager creates a lock manager hosted on node self.
func NewManager(self int, tr transport.Transport, mode PropagationMode) *Manager {
	return &Manager{
		self:   self,
		fabric: tr,
		mode:   mode,
		locks:  make(map[string]*lockState),
	}
}

// Bind registers the manager's handlers on a dispatcher.
func (m *Manager) Bind(d *Dispatcher) {
	d.Register(KindLockReq, m.onRequest)
	d.Register(KindLockRel, m.onRelease)
}

func (m *Manager) state(name string) *lockState {
	st, ok := m.locks[name]
	if !ok {
		st = &lockState{
			writer:   -1,
			readers:  make(map[int]bool),
			relVC:    make([]uint64, m.fabric.Nodes()),
			writeSet: make(map[string]writeStamp),
		}
		m.locks[name] = st
	}
	return st
}

func (m *Manager) onRequest(msg network.Message) {
	req, ok := msg.Payload.(lockRequest)
	if !ok {
		return
	}
	m.mu.Lock()
	st := m.state(req.Lock)
	st.queue = append(st.queue, req)
	grants := m.admitLocked(st)
	m.mu.Unlock()
	m.sendGrants(grants)
}

func (m *Manager) onRelease(msg network.Message) {
	rel, ok := msg.Payload.(lockRelease)
	if !ok {
		return
	}
	m.mu.Lock()
	st := m.state(rel.Lock)
	switch rel.Mode {
	case WriteMode:
		if st.writer == rel.Client {
			st.writer = -1
		}
	case ReadMode:
		delete(st.readers, rel.Client)
	}
	if m.mode == Lazy {
		for j, c := range rel.Counts {
			if j < len(st.relVC) && c > st.relVC[j] {
				st.relVC[j] = c
			}
		}
	}
	if m.mode == DemandDriven {
		for loc, stamp := range rel.WriteSet {
			if cur, ok := st.writeSet[loc]; !ok || stamp.Seq > cur.Seq || stamp.From != cur.From {
				st.writeSet[loc] = stamp
			}
		}
	}
	grants := m.admitLocked(st)
	m.mu.Unlock()
	m.sendGrants(grants)
}

type pendingGrant struct {
	to    int
	grant lockGrant
}

// admitLocked grants queued requests FIFO: a write needs the lock free; a
// read needs no writer and is granted together with consecutive reads, which
// share one epoch (Section 3.1.1's read epochs).
func (m *Manager) admitLocked(st *lockState) []pendingGrant {
	var out []pendingGrant
	for len(st.queue) > 0 {
		head := st.queue[0]
		switch head.Mode {
		case WriteMode:
			if st.writer >= 0 || len(st.readers) > 0 {
				return out
			}
			st.writer = head.Client
			st.epoch = m.nextEpochLocked(st, false)
			out = append(out, m.buildGrantLocked(st, head))
			st.queue = st.queue[1:]
			return out
		case ReadMode:
			if st.writer >= 0 {
				return out
			}
			if !st.epochIsRead || !st.started {
				st.epoch = m.nextEpochLocked(st, true)
			}
			st.readers[head.Client] = true
			out = append(out, m.buildGrantLocked(st, head))
			st.queue = st.queue[1:]
		default:
			st.queue = st.queue[1:]
		}
	}
	return out
}

func (m *Manager) nextEpochLocked(st *lockState, read bool) int {
	if st.started {
		st.epoch++
	}
	st.started = true
	st.epochIsRead = read
	return st.epoch
}

func (m *Manager) buildGrantLocked(st *lockState, req lockRequest) pendingGrant {
	g := lockGrant{Lock: req.Lock, ReqID: req.ReqID, Epoch: st.epoch}
	switch m.mode {
	case Lazy:
		g.RelVC = make([]uint64, len(st.relVC))
		copy(g.RelVC, st.relVC)
	case DemandDriven:
		g.WriteSet = make(map[string]writeStamp, len(st.writeSet))
		for loc, stamp := range st.writeSet {
			g.WriteSet[loc] = stamp
		}
	}
	return pendingGrant{to: req.Client, grant: g}
}

func (m *Manager) sendGrants(grants []pendingGrant) {
	for _, pg := range grants {
		_ = m.fabric.Send(network.Message{
			From: m.self, To: pg.to, Kind: KindLockGrant,
			Payload: pg.grant, Size: pg.grant.size(),
		})
	}
}

// ClientStats counts a lock client's activity.
type ClientStats struct {
	Acquires uint64
	// AcquireWait is total time blocked waiting for grants plus, in lazy
	// mode, waiting for the release vector's updates.
	AcquireWait time.Duration
	// ReleaseWait is total time blocked in eager flush rounds.
	ReleaseWait time.Duration
}

// Client is the per-process side of the lock protocol. One Client serves all
// locks managed by the manager it points at.
type Client struct {
	node    *dsm.Node
	manager int
	mode    PropagationMode

	mu      sync.Mutex
	nextReq uint64
	grants  map[uint64]chan lockGrant
	// flushWait collects flush acknowledgements for eager unlocks.
	flushAcks chan struct{}
	// marks tracks the write-log position at each write-lock acquire, per
	// lock, to delimit the critical section's write-set.
	marks  map[string]int
	epochs map[string]int
	stats  ClientStats
}

// NewClient creates the client side for node, pointing at the manager
// process. Bind its handlers on the node's dispatcher.
func NewClient(node *dsm.Node, manager int, mode PropagationMode) *Client {
	ackBuf := node.N()
	if ackBuf < 16 {
		ackBuf = 16
	}
	return &Client{
		node:      node,
		manager:   manager,
		mode:      mode,
		grants:    make(map[uint64]chan lockGrant),
		flushAcks: make(chan struct{}, ackBuf),
		marks:     make(map[string]int),
		epochs:    make(map[string]int),
	}
}

// Bind registers the client's handlers on a dispatcher.
func (c *Client) Bind(d *Dispatcher) {
	d.Register(KindLockGrant, c.onGrant)
	d.Register(KindFlush, c.onFlush)
	d.Register(KindFlushAck, c.onFlushAck)
}

func (c *Client) onGrant(msg network.Message) {
	g, ok := msg.Payload.(lockGrant)
	if !ok {
		return
	}
	c.mu.Lock()
	ch := c.grants[g.ReqID]
	delete(c.grants, g.ReqID)
	c.mu.Unlock()
	if ch != nil {
		ch <- g
	}
}

// onFlush acknowledges a flush probe. The fabric's FIFO channels guarantee
// that every update the flusher sent before the probe has already been
// applied here, so the acknowledgement certifies receipt (Section 6's eager
// implementation).
func (c *Client) onFlush(msg network.Message) {
	_ = c.node.Transport().Send(network.Message{
		From: c.node.ID(), To: msg.From, Kind: KindFlushAck, Size: 8,
	})
}

func (c *Client) onFlushAck(network.Message) {
	select {
	case c.flushAcks <- struct{}{}:
	default:
	}
}

// acquire sends a request and blocks until the grant arrives, then applies
// the mode's visibility work.
func (c *Client) acquire(name string, mode LockMode) lockGrant {
	c.mu.Lock()
	c.nextReq++
	req := lockRequest{Lock: name, Mode: mode, Client: c.node.ID(), ReqID: c.nextReq}
	ch := make(chan lockGrant, 1)
	c.grants[req.ReqID] = ch
	c.mu.Unlock()

	start := time.Now()
	_ = c.node.Transport().Send(network.Message{
		From: c.node.ID(), To: c.manager, Kind: KindLockReq,
		Payload: req, Size: 24 + len(name),
	})
	g := <-ch
	switch c.mode {
	case Lazy:
		// Wait for every update counted in the release vector. Once they
		// are received the causal view drains immediately (their
		// dependencies are bounded by the same vector), so waiting on it
		// as well is cheap and lets causal reads proceed safely.
		c.node.WaitReceived(g.RelVC)
		c.node.WaitCausalApplied(g.RelVC)
	case DemandDriven:
		// Invalidate locally; reads of these locations will block until
		// the stamped updates arrive.
		for loc, stamp := range g.WriteSet {
			c.node.Invalidate(loc, stamp.From, stamp.Seq)
		}
	}
	wait := time.Since(start)
	c.mu.Lock()
	c.stats.Acquires++
	c.stats.AcquireWait += wait
	c.epochs[name] = g.Epoch
	c.mu.Unlock()
	if tr := c.node.Tracer(); tr != nil {
		var wmode uint64
		if mode == WriteMode {
			wmode = 1
		}
		tr.RecordLoc(obs.EvLockAcquire, 0, uint16(c.manager), name,
			uint64(g.Epoch), uint64(wait), wmode)
	}
	return g
}

// release performs the mode's unlock work and notifies the manager.
func (c *Client) release(name string, mode LockMode, writeSet map[string]writeStamp) {
	// Lock release is a synchronization boundary: flush the update outbox
	// first, whatever the mode. Eager's flush probe certifies receipt only of
	// updates that FIFO-precede it; Lazy's received counts and DemandDriven's
	// write-set stamps both promise the next holder it can wait for updates
	// that must therefore already be on the wire.
	c.node.FlushUpdates()
	rel := lockRelease{Lock: name, Mode: mode, Client: c.node.ID()}
	switch c.mode {
	case Eager:
		// Broadcast a flush probe and wait for all acknowledgements before
		// releasing: every process has then applied the critical section's
		// updates.
		start := time.Now()
		n := c.node.N()
		_ = c.node.Transport().Broadcast(c.node.ID(), KindFlush, nil, 8)
		for i := 0; i < n-1; i++ {
			<-c.flushAcks
		}
		c.mu.Lock()
		c.stats.ReleaseWait += time.Since(start)
		c.mu.Unlock()
	case Lazy:
		rel.Counts = c.node.ReceivedCounts()
	case DemandDriven:
		rel.WriteSet = writeSet
	}
	_ = c.node.Transport().Send(network.Message{
		From: c.node.ID(), To: c.manager, Kind: KindLockRel,
		Payload: rel, Size: rel.size(),
	})
	if tr := c.node.Tracer(); tr != nil {
		var wmode uint64
		if mode == WriteMode {
			wmode = 1
		}
		tr.RecordLoc(obs.EvLockRelease, 0, uint16(c.manager), name, 0, 0, wmode)
	}
}

// WLock acquires the write lock on name, blocking until granted and until
// the propagation mode's visibility condition holds.
func (c *Client) WLock(name string) {
	g := c.acquire(name, WriteMode)
	c.mu.Lock()
	c.marks[name] = c.node.WriteMark()
	c.mu.Unlock()
	if tr := c.node.Trace(); tr != nil {
		tr.AppendOp(history.Op{
			Proc: c.node.ID(), Kind: history.WLock, Lock: name, LockEpoch: g.Epoch,
		})
	}
}

// WUnlock releases the write lock on name.
func (c *Client) WUnlock(name string) {
	c.mu.Lock()
	mark := c.marks[name]
	epoch := c.epochs[name]
	delete(c.marks, name)
	// Trim the node's write log below the oldest mark any still-held lock
	// needs, bounding its memory.
	oldest := c.node.WriteMark()
	for _, m := range c.marks {
		if m < oldest {
			oldest = m
		}
	}
	c.mu.Unlock()
	var ws map[string]writeStamp
	if c.mode == DemandDriven {
		records := c.node.WritesSince(mark)
		ws = make(map[string]writeStamp, len(records))
		for _, rec := range records {
			ws[rec.Loc] = writeStamp{From: c.node.ID(), Seq: rec.Seq}
		}
	}
	c.node.TrimWriteLog(oldest)
	if tr := c.node.Trace(); tr != nil {
		tr.AppendOp(history.Op{
			Proc: c.node.ID(), Kind: history.WUnlock, Lock: name, LockEpoch: epoch,
		})
	}
	c.release(name, WriteMode, ws)
}

// RLock acquires a read lock on name.
func (c *Client) RLock(name string) {
	g := c.acquire(name, ReadMode)
	if tr := c.node.Trace(); tr != nil {
		tr.AppendOp(history.Op{
			Proc: c.node.ID(), Kind: history.RLock, Lock: name, LockEpoch: g.Epoch,
		})
	}
}

// RUnlock releases a read lock on name.
func (c *Client) RUnlock(name string) {
	c.mu.Lock()
	epoch := c.epochs[name]
	c.mu.Unlock()
	if tr := c.node.Trace(); tr != nil {
		tr.AppendOp(history.Op{
			Proc: c.node.ID(), Kind: history.RUnlock, Lock: name, LockEpoch: epoch,
		})
	}
	c.release(name, ReadMode, nil)
}

// Stats returns a snapshot of the client's counters.
func (c *Client) Stats() ClientStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}
