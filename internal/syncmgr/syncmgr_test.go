package syncmgr

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mixedmem/internal/check"
	"mixedmem/internal/dsm"
	"mixedmem/internal/history"
	"mixedmem/internal/network"
)

// testCluster bundles nodes with their lock/barrier clients; the managers
// are hosted on node 0.
type testCluster struct {
	fabric   *network.Fabric
	nodes    []*dsm.Node
	locks    []*Client
	barriers []*BarrierClient
}

func newTestCluster(t *testing.T, n int, mode PropagationMode, trace *history.Builder) *testCluster {
	t.Helper()
	f, err := network.New(network.Config{Nodes: n})
	if err != nil {
		t.Fatalf("network.New: %v", err)
	}
	tc := &testCluster{fabric: f}
	dispatchers := make([]*Dispatcher, n)
	for i := 0; i < n; i++ {
		d := NewDispatcher()
		dispatchers[i] = d
		node, err := dsm.NewNode(dsm.Config{
			ID: i, N: n, Transport: f, Trace: trace, Handler: d.Handle,
		})
		if err != nil {
			t.Fatalf("NewNode(%d): %v", i, err)
		}
		tc.nodes = append(tc.nodes, node)
	}
	mgr := NewManager(0, f, mode)
	mgr.Bind(dispatchers[0])
	bmgr := NewBarrierManager(0, f, n)
	bmgr.Bind(dispatchers[0])
	for i := 0; i < n; i++ {
		lc := NewClient(tc.nodes[i], 0, mode)
		lc.Bind(dispatchers[i])
		tc.locks = append(tc.locks, lc)
		bc := NewBarrierClient(tc.nodes[i], 0)
		bc.Bind(dispatchers[i])
		tc.barriers = append(tc.barriers, bc)
	}
	t.Cleanup(func() {
		f.Close()
		for _, nd := range tc.nodes {
			nd.Close()
		}
	})
	return tc
}

func TestWriteLockMutualExclusion(t *testing.T) {
	for _, mode := range []PropagationMode{Eager, Lazy, DemandDriven} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			tc := newTestCluster(t, 3, mode, nil)
			var inCS atomic.Int32
			var maxSeen atomic.Int32
			var wg sync.WaitGroup
			for p := 0; p < 3; p++ {
				p := p
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < 10; i++ {
						tc.locks[p].WLock("l")
						cur := inCS.Add(1)
						if cur > maxSeen.Load() {
							maxSeen.Store(cur)
						}
						time.Sleep(100 * time.Microsecond)
						inCS.Add(-1)
						tc.locks[p].WUnlock("l")
					}
				}()
			}
			wg.Wait()
			if maxSeen.Load() != 1 {
				t.Fatalf("max concurrent write holders = %d, want 1", maxSeen.Load())
			}
		})
	}
}

func TestLockProtectedCounterNoLostUpdates(t *testing.T) {
	// Read-modify-write under a write lock must not lose updates in any
	// propagation mode: the mode's visibility rule guarantees the next
	// holder reads the previous holder's value.
	for _, mode := range []PropagationMode{Eager, Lazy, DemandDriven} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			tc := newTestCluster(t, 3, mode, nil)
			const perProc = 15
			var wg sync.WaitGroup
			for p := 0; p < 3; p++ {
				p := p
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < perProc; i++ {
						tc.locks[p].WLock("cnt")
						v := tc.nodes[p].ReadCausal("x")
						tc.nodes[p].Write("x", v+1)
						tc.locks[p].WUnlock("cnt")
					}
				}()
			}
			wg.Wait()
			// Acquire once more to pull the final value locally.
			tc.locks[0].WLock("cnt")
			got := tc.nodes[0].ReadCausal("x")
			tc.locks[0].WUnlock("cnt")
			if got != 3*perProc {
				t.Fatalf("final counter = %d, want %d", got, 3*perProc)
			}
		})
	}
}

func TestReadLocksShared(t *testing.T) {
	tc := newTestCluster(t, 2, Lazy, nil)
	tc.locks[0].RLock("l")
	done := make(chan struct{})
	go func() {
		tc.locks[1].RLock("l")
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("second read lock blocked by first")
	}
	tc.locks[0].RUnlock("l")
	tc.locks[1].RUnlock("l")
}

func TestWriterExcludedByReader(t *testing.T) {
	tc := newTestCluster(t, 2, Lazy, nil)
	tc.locks[0].RLock("l")
	acquired := make(chan struct{})
	go func() {
		tc.locks[1].WLock("l")
		close(acquired)
	}()
	select {
	case <-acquired:
		t.Fatal("write lock granted while read lock held")
	case <-time.After(30 * time.Millisecond):
	}
	tc.locks[0].RUnlock("l")
	select {
	case <-acquired:
	case <-time.After(2 * time.Second):
		t.Fatal("write lock never granted after read unlock")
	}
	tc.locks[1].WUnlock("l")
}

func TestReaderExcludedByWriter(t *testing.T) {
	tc := newTestCluster(t, 2, Lazy, nil)
	tc.locks[0].WLock("l")
	acquired := make(chan struct{})
	go func() {
		tc.locks[1].RLock("l")
		close(acquired)
	}()
	select {
	case <-acquired:
		t.Fatal("read lock granted while write lock held")
	case <-time.After(30 * time.Millisecond):
	}
	tc.locks[0].WUnlock("l")
	select {
	case <-acquired:
	case <-time.After(2 * time.Second):
		t.Fatal("read lock never granted after write unlock")
	}
	tc.locks[1].RUnlock("l")
}

func TestEagerVisibilityAtUnlock(t *testing.T) {
	// Eager mode: when WUnlock returns, every replica has applied the
	// critical section's updates — no acquire needed to observe them.
	tc := newTestCluster(t, 3, Eager, nil)
	tc.locks[0].WLock("l")
	tc.nodes[0].Write("x", 42)
	tc.locks[0].WUnlock("l")
	for i := 1; i < 3; i++ {
		if got := tc.nodes[i].ReadPRAM("x"); got != 42 {
			t.Fatalf("node %d PRAM view = %d immediately after eager unlock", i, got)
		}
		if got := tc.nodes[i].ReadCausal("x"); got != 42 {
			t.Fatalf("node %d causal view = %d immediately after eager unlock", i, got)
		}
	}
}

func TestLazyVisibilityAtAcquire(t *testing.T) {
	tc := newTestCluster(t, 2, Lazy, nil)
	tc.locks[0].WLock("l")
	tc.nodes[0].Write("x", 7)
	tc.locks[0].WUnlock("l")
	tc.locks[1].WLock("l")
	if got := tc.nodes[1].ReadCausal("x"); got != 7 {
		t.Fatalf("causal read after lazy acquire = %d, want 7", got)
	}
	if got := tc.nodes[1].ReadPRAM("x"); got != 7 {
		t.Fatalf("PRAM read after lazy acquire = %d, want 7", got)
	}
	tc.locks[1].WUnlock("l")
}

func TestLazyVisibilityTransitive(t *testing.T) {
	// Lock chain p0 -> p1 -> p2: p2 must see p0's writes even though p1
	// wrote nothing (the release vector accumulates).
	tc := newTestCluster(t, 3, Lazy, nil)
	tc.locks[0].WLock("l")
	tc.nodes[0].Write("x", 5)
	tc.locks[0].WUnlock("l")
	tc.locks[1].WLock("l")
	tc.locks[1].WUnlock("l")
	tc.locks[2].WLock("l")
	if got := tc.nodes[2].ReadCausal("x"); got != 5 {
		t.Fatalf("transitive visibility failed: x = %d", got)
	}
	tc.locks[2].WUnlock("l")
}

func TestDemandDrivenBlocksOnlyInvalidatedReads(t *testing.T) {
	tc := newTestCluster(t, 2, DemandDriven, nil)
	tc.locks[0].WLock("l")
	tc.nodes[0].Write("x", 9)
	tc.locks[0].WUnlock("l")
	tc.locks[1].WLock("l")
	// Read of the written location must return the new value (blocking if
	// the update has not yet arrived).
	if got := tc.nodes[1].ReadCausal("x"); got != 9 {
		t.Fatalf("demand-driven read = %d, want 9", got)
	}
	// A location outside the write-set is readable without any stall.
	_ = tc.nodes[1].ReadPRAM("unrelated")
	tc.locks[1].WUnlock("l")
}

func TestLockTraceIsEntryConsistentAndSC(t *testing.T) {
	// Record an entry-consistent program through the real lock protocol
	// and verify Corollary 1 end to end: mixed consistent, entry
	// consistent, and sequentially consistent.
	trace := history.NewBuilder(2)
	tc := newTestCluster(t, 2, Lazy, trace)
	var wg sync.WaitGroup
	for p := 0; p < 2; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				tc.locks[p].WLock("lx")
				v := tc.nodes[p].ReadCausal("x")
				tc.nodes[p].Write("x", v+int64(1+p*100)) // distinct values
				tc.locks[p].WUnlock("lx")
			}
		}()
	}
	wg.Wait()

	h := trace.History()
	a, err := h.Analyze()
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if v := check.Mixed(a); len(v) != 0 {
		t.Fatalf("trace not mixed consistent: %v", v)
	}
	if v := check.EntryConsistent(h, map[string]string{"x": "lx"}); len(v) != 0 {
		t.Fatalf("trace not entry consistent: %v", v)
	}
	ok, _, err := check.SequentiallyConsistent(a)
	if err != nil {
		t.Fatalf("SC check: %v", err)
	}
	if !ok {
		t.Fatal("Corollary 1 violated: entry-consistent causal execution not SC")
	}
}

func TestBarrierPhaseExchange(t *testing.T) {
	tc := newTestCluster(t, 3, Lazy, nil)
	var wg sync.WaitGroup
	results := make([][]int64, 3)
	for p := 0; p < 3; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			loc := []string{"a", "b", "c"}[p]
			tc.nodes[p].Write(loc, int64(p+1))
			tc.barriers[p].Barrier()
			// After the barrier every pre-barrier write must be visible in
			// both views with plain PRAM reads.
			results[p] = []int64{
				tc.nodes[p].ReadPRAM("a"),
				tc.nodes[p].ReadPRAM("b"),
				tc.nodes[p].ReadPRAM("c"),
				tc.nodes[p].ReadCausal("a"),
			}
		}()
	}
	wg.Wait()
	for p, r := range results {
		if r[0] != 1 || r[1] != 2 || r[2] != 3 || r[3] != 1 {
			t.Errorf("proc %d saw %v after barrier", p, r)
		}
	}
}

func TestBarrierMultiplePhases(t *testing.T) {
	tc := newTestCluster(t, 2, Lazy, nil)
	const phases = 5
	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for p := 0; p < 2; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			loc := []string{"u", "v"}[p]
			other := []string{"v", "u"}[p]
			for ph := 1; ph <= phases; ph++ {
				tc.nodes[p].Write(loc, int64(ph*10+p))
				tc.barriers[p].Barrier()
				if got := tc.nodes[p].ReadPRAM(other); got != int64(ph*10+1-p) {
					errs <- "stale cross read"
				}
				tc.barriers[p].Barrier()
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	if s := tc.barriers[0].Stats(); s.Barriers != 2*phases {
		t.Errorf("barrier count = %d, want %d", s.Barriers, 2*phases)
	}
}

func TestBarrierTraceRecordsBarrierOps(t *testing.T) {
	trace := history.NewBuilder(2)
	tc := newTestCluster(t, 2, Lazy, trace)
	var wg sync.WaitGroup
	for p := 0; p < 2; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			tc.nodes[p].Write([]string{"m", "n"}[p], int64(p+1))
			tc.barriers[p].Barrier()
			tc.nodes[p].ReadPRAM([]string{"n", "m"}[p])
		}()
	}
	wg.Wait()
	h := trace.History()
	a, err := h.Analyze()
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if v := check.Mixed(a); len(v) != 0 {
		t.Fatalf("trace not mixed consistent: %v", v)
	}
	if v := check.PRAMConsistent(h); len(v) != 0 {
		t.Fatalf("trace not PRAM consistent: %v", v)
	}
	ok, _, err := check.SequentiallyConsistent(a)
	if err != nil || !ok {
		t.Fatalf("Corollary 2 violated: ok=%v err=%v", ok, err)
	}
}

func TestClientStats(t *testing.T) {
	tc := newTestCluster(t, 2, Eager, nil)
	tc.locks[0].WLock("l")
	tc.locks[0].WUnlock("l")
	s := tc.locks[0].Stats()
	if s.Acquires != 1 {
		t.Errorf("acquires = %d, want 1", s.Acquires)
	}
}

func TestDispatcherRouting(t *testing.T) {
	d := NewDispatcher()
	var got atomic.Int32
	d.Register("a", func(network.Message) { got.Store(1) })
	d.Register("b", func(network.Message) { got.Store(2) })
	d.Handle(network.Message{Kind: "b"})
	if got.Load() != 2 {
		t.Errorf("routed to %d, want 2", got.Load())
	}
	d.Handle(network.Message{Kind: "unknown"}) // must not panic
}

func TestPropagationModeString(t *testing.T) {
	for m, want := range map[PropagationMode]string{
		Eager: "eager", Lazy: "lazy", DemandDriven: "demand-driven",
	} {
		if got := m.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", m, got, want)
		}
	}
}

func TestWriteLogBoundedAcrossCriticalSections(t *testing.T) {
	// The lock client trims the node's write log after each unlock, so the
	// write-set of an early critical section never lingers: a later unlock
	// carries only its own writes.
	tc := newTestCluster(t, 2, DemandDriven, nil)
	tc.locks[0].WLock("l")
	for i := 0; i < 10; i++ {
		tc.nodes[0].Write("early"+string(rune('0'+i)), int64(i+1))
	}
	tc.locks[0].WUnlock("l")

	tc.locks[0].WLock("l")
	tc.nodes[0].Write("late", 99)
	tc.locks[0].WUnlock("l")

	// The node's log now holds nothing before the current mark.
	if got := tc.nodes[0].WritesSince(0); len(got) != 0 {
		t.Fatalf("write log not trimmed: %d records linger", len(got))
	}
	// And the protocol still works: the next holder sees the late write.
	tc.locks[1].WLock("l")
	if got := tc.nodes[1].ReadCausal("late"); got != 99 {
		t.Fatalf("late = %d, want 99", got)
	}
	tc.locks[1].WUnlock("l")
}
