package syncmgr

import (
	"fmt"

	"mixedmem/internal/transport"
)

// Wire codecs for the synchronization protocol payloads, registered so wire
// transports (internal/transport/tcp) can carry lock and barrier traffic
// between OS processes. Flush probes and acknowledgements carry nil
// payloads and need no codec. All layouts are big-endian with uint32 count
// prefixes (the transport package's wire helpers).

func init() {
	transport.RegisterPayload(KindLockReq, lockReqCodec{})
	transport.RegisterPayload(KindLockGrant, lockGrantCodec{})
	transport.RegisterPayload(KindLockRel, lockRelCodec{})
	transport.RegisterPayload(KindBarArrive, barArriveCodec{})
	transport.RegisterPayload(KindBarRelease, barReleaseCodec{})
}

// appendWriteSet encodes a demand-driven write-set:
// u32 count | count * (str Loc | u32 From | u64 Seq).
func appendWriteSet(dst []byte, ws map[string]writeStamp) []byte {
	dst = transport.AppendUint32(dst, uint32(len(ws)))
	for loc, stamp := range ws {
		dst = transport.AppendString(dst, loc)
		dst = transport.AppendUint32(dst, uint32(stamp.From))
		dst = transport.AppendUint64(dst, stamp.Seq)
	}
	return dst
}

func decodeWriteSet(d *transport.Decoder) map[string]writeStamp {
	n := int(d.Uint32())
	if n == 0 || d.Err() != nil {
		return nil
	}
	ws := make(map[string]writeStamp, n)
	for i := 0; i < n && d.Err() == nil; i++ {
		loc := d.String()
		ws[loc] = writeStamp{From: int(d.Uint32()), Seq: d.Uint64()}
	}
	return ws
}

// lockReqCodec: str Lock | u8 Mode | u32 Client | u64 ReqID.
type lockReqCodec struct{}

func (lockReqCodec) Encode(dst []byte, payload any) ([]byte, error) {
	r, ok := payload.(lockRequest)
	if !ok {
		return dst, fmt.Errorf("syncmgr: lock-req codec: payload is %T", payload)
	}
	dst = transport.AppendString(dst, r.Lock)
	dst = append(dst, byte(r.Mode))
	dst = transport.AppendUint32(dst, uint32(r.Client))
	dst = transport.AppendUint64(dst, r.ReqID)
	return dst, nil
}

func (lockReqCodec) Decode(data []byte) (any, error) {
	d := transport.NewDecoder(data)
	r := lockRequest{
		Lock:   d.String(),
		Mode:   LockMode(d.Byte()),
		Client: int(d.Uint32()),
		ReqID:  d.Uint64(),
	}
	return r, wrapErr("lock-req", d)
}

// lockGrantCodec: str Lock | u64 ReqID | u64 Epoch | u64s RelVC | writeSet.
type lockGrantCodec struct{}

func (lockGrantCodec) Encode(dst []byte, payload any) ([]byte, error) {
	g, ok := payload.(lockGrant)
	if !ok {
		return dst, fmt.Errorf("syncmgr: lock-grant codec: payload is %T", payload)
	}
	dst = transport.AppendString(dst, g.Lock)
	dst = transport.AppendUint64(dst, g.ReqID)
	dst = transport.AppendUint64(dst, uint64(g.Epoch))
	dst = transport.AppendUint64s(dst, g.RelVC)
	dst = appendWriteSet(dst, g.WriteSet)
	return dst, nil
}

func (lockGrantCodec) Decode(data []byte) (any, error) {
	d := transport.NewDecoder(data)
	g := lockGrant{
		Lock:  d.String(),
		ReqID: d.Uint64(),
		Epoch: int(d.Uint64()),
		RelVC: d.Uint64s(),
	}
	g.WriteSet = decodeWriteSet(d)
	return g, wrapErr("lock-grant", d)
}

// lockRelCodec: str Lock | u8 Mode | u32 Client | u64s Counts | writeSet.
type lockRelCodec struct{}

func (lockRelCodec) Encode(dst []byte, payload any) ([]byte, error) {
	r, ok := payload.(lockRelease)
	if !ok {
		return dst, fmt.Errorf("syncmgr: lock-rel codec: payload is %T", payload)
	}
	dst = transport.AppendString(dst, r.Lock)
	dst = append(dst, byte(r.Mode))
	dst = transport.AppendUint32(dst, uint32(r.Client))
	dst = transport.AppendUint64s(dst, r.Counts)
	dst = appendWriteSet(dst, r.WriteSet)
	return dst, nil
}

func (lockRelCodec) Decode(data []byte) (any, error) {
	d := transport.NewDecoder(data)
	r := lockRelease{
		Lock:   d.String(),
		Mode:   LockMode(d.Byte()),
		Client: int(d.Uint32()),
		Counts: d.Uint64s(),
	}
	r.WriteSet = decodeWriteSet(d)
	return r, wrapErr("lock-rel", d)
}

// barArriveCodec: u32 Client | u64 K | u64s Sent | str Group | u32 count |
// count * u32 Members.
type barArriveCodec struct{}

func (barArriveCodec) Encode(dst []byte, payload any) ([]byte, error) {
	a, ok := payload.(barArrive)
	if !ok {
		return dst, fmt.Errorf("syncmgr: bar-arrive codec: payload is %T", payload)
	}
	dst = transport.AppendUint32(dst, uint32(a.Client))
	dst = transport.AppendUint64(dst, uint64(a.K))
	dst = transport.AppendUint64s(dst, a.Sent)
	dst = transport.AppendString(dst, a.Group)
	dst = transport.AppendUint32(dst, uint32(len(a.Members)))
	for _, m := range a.Members {
		dst = transport.AppendUint32(dst, uint32(m))
	}
	return dst, nil
}

func (barArriveCodec) Decode(data []byte) (any, error) {
	d := transport.NewDecoder(data)
	a := barArrive{
		Client: int(d.Uint32()),
		K:      int(d.Uint64()),
		Sent:   d.Uint64s(),
		Group:  d.String(),
	}
	if n := int(d.Uint32()); n > 0 && d.Err() == nil {
		a.Members = make([]int, n)
		for i := range a.Members {
			a.Members[i] = int(d.Uint32())
		}
	}
	return a, wrapErr("bar-arrive", d)
}

// barReleaseCodec: u64 K | u64s Expected | str Group.
type barReleaseCodec struct{}

func (barReleaseCodec) Encode(dst []byte, payload any) ([]byte, error) {
	r, ok := payload.(barRelease)
	if !ok {
		return dst, fmt.Errorf("syncmgr: bar-release codec: payload is %T", payload)
	}
	dst = transport.AppendUint64(dst, uint64(r.K))
	dst = transport.AppendUint64s(dst, r.Expected)
	dst = transport.AppendString(dst, r.Group)
	return dst, nil
}

func (barReleaseCodec) Decode(data []byte) (any, error) {
	d := transport.NewDecoder(data)
	r := barRelease{
		K:        int(d.Uint64()),
		Expected: d.Uint64s(),
		Group:    d.String(),
	}
	return r, wrapErr("bar-release", d)
}

func wrapErr(kind string, d *transport.Decoder) error {
	if err := d.Err(); err != nil {
		return fmt.Errorf("syncmgr: %s codec: %w", kind, err)
	}
	return nil
}
