// Package analysistest runs an analyzer over a fixture package and checks
// its diagnostics against expectations written in the fixture source, in
// the style of golang.org/x/tools/go/analysis/analysistest: a comment
//
//	// want "regexp" "another regexp"
//
// on a line means the analyzer must report diagnostics on that line, one
// matching each regexp; lines without a want comment must stay silent.
package analysistest

import (
	"regexp"
	"strconv"
	"testing"

	"mixedmem/internal/analysis/framework"
)

// Run loads pkgdir as a package, applies the analyzer, and reports every
// mismatch between its diagnostics and the fixture's want comments. It
// returns the analyzer's result value for fact-based tests.
func Run(t *testing.T, a *framework.Analyzer, pkgdir string) any {
	t.Helper()
	pkg, err := framework.LoadDir(pkgdir, pkgdir)
	if err != nil {
		t.Fatalf("loading %s: %v", pkgdir, err)
	}
	got, err := framework.RunAnalyzer(a, pkg)
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, pkgdir, err)
	}
	wants := collectWants(t, pkg)
	for _, d := range got.Diagnostics {
		pos := pkg.Fset.Position(d.Pos)
		key := line{pos.Filename, pos.Line}
		if !wants.claim(key, d.Message) {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for key, res := range wants {
		for _, w := range res {
			if !w.claimed {
				t.Errorf("%s:%d: no diagnostic matching %q", key.file, key.line, w.re)
			}
		}
	}
	return got.Result
}

type line struct {
	file string
	line int
}

type want struct {
	re      *regexp.Regexp
	claimed bool
}

type wantSet map[line][]*want

// claim marks the first unclaimed matching expectation on the line.
func (ws wantSet) claim(key line, msg string) bool {
	for _, w := range ws[key] {
		if !w.claimed && w.re.MatchString(msg) {
			w.claimed = true
			return true
		}
	}
	return false
}

var wantRE = regexp.MustCompile(`^//\s*want\s+(.*)$`)

// quoted matches one expectation pattern: a Go-quoted string or a raw
// backquoted string (which needs no escaping of the regexp).
var quoted = regexp.MustCompile("`[^`]*`" + `|"(?:[^"\\]|\\.)*"`)

func collectWants(t *testing.T, pkg *framework.Package) wantSet {
	t.Helper()
	ws := make(wantSet)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := line{pos.Filename, pos.Line}
				for _, q := range quoted.FindAllString(m[1], -1) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: bad want string %s: %v", pos, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
					}
					ws[key] = append(ws[key], &want{re: re})
				}
			}
		}
	}
	return ws
}
