// Package causalfact is causalprog helper-factored into the region-helper
// idiom: one helper enters the critical section, another leaves it, and the
// counter bump itself sits in a third. The lock effects cross the call
// boundaries only through the summary package, so the entry discipline —
// and with it the causal fallback (Corollary 1) — is invisible to a purely
// intraprocedural engine.
package causalfact

import "mixedmem/internal/core"

// Program increments "tab" under the write lock, all through helpers.
// Values stay distinct because the increments are mutually exclusive.
func Program(p *core.Proc) {
	enter(p)
	bump(p)
	exit(p)
}

func enter(p *core.Proc) { p.WLock("m") }
func exit(p *core.Proc)  { p.WUnlock("m") }

func bump(p *core.Proc) {
	v := p.ReadCausal("tab")
	p.Write("tab", v+1)
}
