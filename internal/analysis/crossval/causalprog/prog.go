// Package causalprog is an entry-disciplined program: a shared counter
// accessed only inside "m" critical sections. The phase discipline fails
// (every process writes in the same phase), but both the static engine and
// the dynamic checker should fall back to causal reads (Corollary 1).
package causalprog

import "mixedmem/internal/core"

// Program increments "tab" under the write lock. Values stay distinct
// because the increments are mutually exclusive.
func Program(p *core.Proc) {
	p.WLock("m")
	v := p.ReadCausal("tab")
	p.Write("tab", v+1)
	p.WUnlock("m")
}
