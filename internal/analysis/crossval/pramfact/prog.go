// Package pramfact is pramprog helper-factored: the phase-disciplined
// await-latched program with its write, await, and read each in its own
// function. The phase discipline still holds through the call boundaries
// (Corollary 2), and the await still leans on the per-sender FIFO slow
// memory drops, so both the static engine and the dynamic checker should
// stop at PRAM reads.
package pramfact

import "mixedmem/internal/core"

// Program is the Figure 2 shape on two locations, helper-factored, with an
// await latch a full phase after the write it matches.
func Program(p *core.Proc) {
	if p.ID() == 0 {
		seedX(p)
	}
	p.Barrier()
	latchX(p)
	p.Barrier()
	if p.ID() == 1 {
		seedY(p)
	}
	p.Barrier()
	_ = readY(p)
	p.Barrier()
}

func seedX(p *core.Proc) { p.Write("x", 41) }
func seedY(p *core.Proc) { p.Write("y", 7) }

func latchX(p *core.Proc) { p.AwaitPRAM("x", 41) }

func readY(p *core.Proc) int64 { return p.ReadPRAM("y") }
