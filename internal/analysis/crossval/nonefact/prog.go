// Package nonefact is noneprog helper-factored: the double write hides in
// two calls of the same helper, so only the interprocedural engine sees
// both writes land in one barrier phase and rejects every weaker label —
// statically and dynamically the advice is the lattice top, SC.
package nonefact

import "mixedmem/internal/core"

// Program double-writes "c" in phase 0 through a helper and reads it after
// the barrier. The two written values differ, as the checker's reads-from
// recovery needs.
func Program(p *core.Proc) {
	if p.ID() == 0 {
		seedC(p, 11)
		seedC(p, 12)
	}
	p.Barrier()
	_ = p.ReadPRAM("c") //mixedvet:ignore — the violation is this fixture's reason to exist
	p.Barrier()
}

func seedC(p *core.Proc, v int64) { p.Write("c", v) }
