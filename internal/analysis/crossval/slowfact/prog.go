// Package slowfact is slowprog with every access factored into a helper:
// the same Figure 2 shape — single role-guarded writers, barrier-separated
// slow reads, no other synchronization — but each write and read lives in
// its own function, so only the interprocedural engine (call-graph effect
// summaries, virtual inlining from the root) can place the accesses in
// their phases and arrive at the same lattice bottom the dynamic checker
// justifies from the recorded execution.
package slowfact

import "mixedmem/internal/core"

// Program is the Figure 2 shape on two locations, helper-factored.
// Recorded executions keep every written value distinct, as the checker's
// reads-from recovery needs.
func Program(p *core.Proc) {
	if p.ID() == 0 {
		seedX(p)
	}
	p.Barrier()
	_ = readX(p)
	p.Barrier()
	if p.ID() == 1 {
		seedY(p)
	}
	p.Barrier()
	_ = readY(p)
	p.Barrier()
}

func seedX(p *core.Proc) { p.Write("x", 41) }
func seedY(p *core.Proc) { p.Write("y", 7) }

func readX(p *core.Proc) int64 { return p.ReadSlow("x") }
func readY(p *core.Proc) int64 { return p.ReadSlow("y") }
