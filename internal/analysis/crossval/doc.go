// Package crossval cross-validates the static advice engine against the
// dynamic checker: the subpackages hold small programs whose source is
// analyzed by internal/analysis/advise and whose executions are recorded
// and judged by internal/check, and the test asserts the two agree — and
// that the static answer is never weaker than the dynamic one.
package crossval
