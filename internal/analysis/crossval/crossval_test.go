package crossval

import (
	"path/filepath"
	"testing"

	"mixedmem/internal/analysis/advise"
	"mixedmem/internal/analysis/crossval/causalfact"
	"mixedmem/internal/analysis/crossval/causalprog"
	"mixedmem/internal/analysis/crossval/nonefact"
	"mixedmem/internal/analysis/crossval/noneprog"
	"mixedmem/internal/analysis/crossval/pramfact"
	"mixedmem/internal/analysis/crossval/pramprog"
	"mixedmem/internal/analysis/crossval/slowfact"
	"mixedmem/internal/analysis/crossval/slowprog"
	"mixedmem/internal/analysis/framework"
	"mixedmem/internal/check"
	"mixedmem/internal/core"
	"mixedmem/internal/history"
	"mixedmem/internal/obs"
	"mixedmem/internal/obs/tracecheck"
)

// staticAdvice runs the advice engine over one program package's source.
func staticAdvice(t *testing.T, dir string) *advise.Result {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := framework.LoadDir(abs, abs)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	return advise.Packages([]*framework.Package{pkg})
}

// dynamicAdvice records one execution of the program and runs the paper's
// compiler check on the history, using the statically derived lock map.
func dynamicAdvice(t *testing.T, prog func(p *core.Proc), locks map[string]string) check.Advice {
	t.Helper()
	sys, err := core.NewSystem(core.Config{Procs: 3, Record: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	sys.Run(prog)
	return check.Advise(sys.History(), locks)
}

// TestStaticMatchesDynamic runs each cross-validation program both ways and
// requires agreement: the same source, judged from its syntax and from a
// recorded execution, gets the same label. The static lock association
// feeds the dynamic entry check, closing the loop mixedvet -advise promises.
func TestStaticMatchesDynamic(t *testing.T) {
	cases := []struct {
		dir  string
		prog func(p *core.Proc)
		want history.Label
	}{
		{"slowprog", slowprog.Program, history.LabelSlow},
		{"pramprog", pramprog.Program, history.LabelPRAM},
		{"causalprog", causalprog.Program, history.LabelCausal},
		{"noneprog", noneprog.Program, history.LabelSC},
		// The helper-factored variants: same programs, every access and
		// lock operation behind a call boundary, so agreement here pins the
		// interprocedural machinery (summaries, entry fixpoints, virtual
		// inlining) at all four lattice points.
		{"slowfact", slowfact.Program, history.LabelSlow},
		{"pramfact", pramfact.Program, history.LabelPRAM},
		{"causalfact", causalfact.Program, history.LabelCausal},
		{"nonefact", nonefact.Program, history.LabelSC},
	}
	for _, tc := range cases {
		t.Run(tc.dir, func(t *testing.T) {
			static := staticAdvice(t, tc.dir)
			if got := static.ProgramLabel(); got != tc.want {
				t.Errorf("static label = %v, want %v\nadvice: %+v", got, tc.want, static.Advice)
			}
			dyn := dynamicAdvice(t, tc.prog, static.LockOf)
			if dyn.Label != tc.want {
				t.Errorf("dynamic label = %v, want %v (rationale: %s)", dyn.Label, tc.want, dyn.Rationale)
			}
			if advise.Rank(static.ProgramLabel()) < advise.Rank(dyn.Label) {
				t.Errorf("static advice %v is weaker than dynamic %v: the static engine is unsound",
					static.ProgramLabel(), dyn.Label)
			}
		})
	}
}

// tracedRun executes prog in a traced system and returns the per-node
// event snapshots, tagged with the given run name.
func tracedRun(t *testing.T, tag string, prog func(p *core.Proc), labels map[string]history.Label) []*obs.Snapshot {
	t.Helper()
	sys, err := core.NewSystem(core.Config{Procs: 3, Labels: labels, TraceCapacity: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	sys.Run(prog)
	var snaps []*obs.Snapshot
	for i := 0; i < sys.Procs(); i++ {
		s := sys.Proc(i).Tracer().Snapshot()
		s.Tag = tag
		snaps = append(snaps, s)
	}
	return snaps
}

// TestTraceCheckAgreesWithStatic closes the third side of the validation
// triangle: programs the static engine certifies as disciplined must also
// replay clean through the dynamic trace checker, and the program the
// static engine rejects (double write in one phase) must be caught in its
// trace once the location is labeled with the level the writes abuse.
func TestTraceCheckAgreesWithStatic(t *testing.T) {
	clean := []struct {
		tag    string
		prog   func(p *core.Proc)
		labels map[string]history.Label
	}{
		{"slowprog", slowprog.Program, map[string]history.Label{"x": history.LabelSlow, "y": history.LabelSlow}},
		{"slowfact", slowfact.Program, map[string]history.Label{"x": history.LabelSlow, "y": history.LabelSlow}},
		{"pramfact", pramfact.Program, map[string]history.Label{"y": history.LabelPRAM}},
		{"causalfact", causalfact.Program, map[string]history.Label{"tab": history.LabelCausal}},
	}
	for _, tc := range clean {
		t.Run(tc.tag, func(t *testing.T) {
			res := tracecheck.Check(tracedRun(t, tc.tag, tc.prog, tc.labels))
			if len(res.Violations) != 0 {
				t.Errorf("disciplined program's trace has violations: %v", res.Violations)
			}
			if res.NodesChecked == 0 || res.WritesChecked == 0 {
				t.Errorf("trace check judged nothing: %+v", res)
			}
		})
	}
	// The undisciplined program: "c" written twice in phase 0. Labeled PRAM
	// — the label its phase placement fails to justify — the checker must
	// report the double write the static engine also rejects.
	t.Run("nonefact", func(t *testing.T) {
		res := tracecheck.Check(tracedRun(t, "nonefact", nonefact.Program,
			map[string]history.Label{"c": history.LabelPRAM}))
		found := false
		for _, v := range res.Violations {
			if v.Kind == tracecheck.KindPhaseDoubleWrite && v.Loc == "c" {
				found = true
			}
		}
		if !found {
			t.Errorf("seeded phase double write not detected: %+v", res.Violations)
		}
	})
}

// TestStaticNeverWeakerOnExamples checks the soundness direction over the
// repo's example programs. All of them write through computed location
// names (per-process slots, matrix rows), which a static engine cannot
// attribute to a location, so the only sound static answer is LabelSC for
// every location — which by construction is never weaker than whatever a
// recorded execution would justify.
func TestStaticNeverWeakerOnExamples(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", "..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"cholesky", "emfield", "gaussasync", "linsolve", "pipeline", "quickstart"} {
		t.Run(name, func(t *testing.T) {
			// The examples delegate their memory accesses to internal/apps,
			// so the program the engine judges is the pair of packages.
			pkgs, err := framework.Load(root, []string{"./examples/" + name, "./internal/apps"})
			if err != nil {
				t.Fatal(err)
			}
			res := advise.Packages(pkgs)
			if len(res.Advice) == 0 {
				t.Fatalf("no locations found in examples/%s", name)
			}
			for _, a := range res.Advice {
				if a.Label != history.LabelSC {
					t.Errorf("static advice for %q in examples/%s = %v; dynamic-location writes make any claim unsound",
						a.Loc, name, a.Label)
				}
			}
		})
	}
}
