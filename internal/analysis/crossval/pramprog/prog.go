// Package pramprog is a phase-disciplined program: single role-guarded
// writers, barrier-separated reads. Both the static engine and the dynamic
// checker should conclude PRAM reads suffice (Corollary 2).
package pramprog

import "mixedmem/internal/core"

// Program is the Figure 2 shape on two locations. Recorded executions keep
// every written value distinct, as the checker's reads-from recovery needs.
func Program(p *core.Proc) {
	if p.ID() == 0 {
		p.Write("x", 41)
	}
	p.Barrier()
	_ = p.ReadPRAM("x")
	p.Barrier()
	if p.ID() == 1 {
		p.Write("y", 7)
	}
	p.Barrier()
	_ = p.ReadPRAM("y")
	p.Barrier()
}
