// Package pramprog is a phase-disciplined program that also uses an await:
// single role-guarded writers, barrier-separated reads, plus an await latch
// on the first phase's value. The phase discipline holds (Corollary 2), but
// the await leans on the per-sender FIFO that slow memory drops, so both the
// static engine and the dynamic checker should stop at PRAM reads rather
// than descending to the lattice bottom.
package pramprog

import "mixedmem/internal/core"

// Program is the Figure 2 shape on two locations. Recorded executions keep
// every written value distinct, as the checker's reads-from recovery needs.
// The await on x sits a full phase after x's write, so it never collides
// with it — it only marks the program as await-synchronized.
func Program(p *core.Proc) {
	if p.ID() == 0 {
		p.Write("x", 41)
	}
	p.Barrier()
	p.AwaitPRAM("x", 41)
	p.Barrier()
	if p.ID() == 1 {
		p.Write("y", 7)
	}
	p.Barrier()
	_ = p.ReadPRAM("y")
	p.Barrier()
}
