// Package noneprog violates both disciplines: a location written twice in
// one barrier phase, with no locks anywhere. Neither corollary applies —
// statically or dynamically — so the advice falls back to the lattice top,
// sequentially consistent reads.
package noneprog

import "mixedmem/internal/core"

// Program double-writes "c" in phase 0 and reads it after the barrier.
func Program(p *core.Proc) {
	if p.ID() == 0 {
		p.Write("c", 11)
		p.Write("c", 12)
	}
	p.Barrier()
	_ = p.ReadPRAM("c") //mixedvet:ignore — the violation is this fixture's reason to exist
	p.Barrier()
}
