// Package slowprog is a phase-disciplined program whose only synchronization
// is the barrier: single role-guarded writers, barrier-separated reads, no
// awaits, no locks. Both the static engine and the dynamic checker should
// conclude slow reads suffice — Corollary 2's proof survives at the lattice
// bottom because the slow-memory relation retains barrier edges.
package slowprog

import "mixedmem/internal/core"

// Program is the Figure 2 shape on two locations, read with slow reads.
// Recorded executions keep every written value distinct, as the checker's
// reads-from recovery needs.
func Program(p *core.Proc) {
	if p.ID() == 0 {
		p.Write("x", 41)
	}
	p.Barrier()
	_ = p.ReadSlow("x")
	p.Barrier()
	if p.ID() == 1 {
		p.Write("y", 7)
	}
	p.Barrier()
	_ = p.ReadSlow("y")
	p.Barrier()
}
