// Package framework is a self-contained reimplementation of the subset of
// golang.org/x/tools/go/analysis that the mixedvet analyzers need: Analyzer,
// Pass, and Diagnostic, plus a package loader built on go/parser and
// go/types. The repo builds hermetically (no module downloads), so the
// x/tools dependency is vendored in spirit rather than in go.mod — the API
// mirrors go/analysis closely enough that the analyzers port to the real
// framework by changing one import.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one static check over a type-checked package, mirroring
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and on the mixedvet
	// command line.
	Name string
	// Doc is the one-paragraph description printed by mixedvet -help.
	Doc string
	// Run applies the analyzer to one package. Diagnostics go through
	// pass.Report; the returned value is the analyzer's package-level fact
	// set, which the driver may aggregate program-wide (labelconsistency
	// and the -advise engine do).
	Run func(pass *Pass) (any, error)
}

// Pass carries one package's syntax and type information to an analyzer,
// mirroring golang.org/x/tools/go/analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Prog is the whole program this package was loaded as part of: every
	// package the loader type-checked from source, including module
	// dependencies the patterns did not name. Interprocedural passes
	// resolve call targets and build effect summaries through it.
	Prog *Program
	// Report records one diagnostic. It may be called multiple times with
	// the same position.
	Report func(Diagnostic)
}

// Reportf is the printf-style convenience wrapper around Report.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// PackageDiagnostics is the outcome of running one analyzer over one package.
type PackageDiagnostics struct {
	Analyzer    *Analyzer
	Package     *Package
	Diagnostics []Diagnostic
	// Result is the value Run returned: the analyzer's package-level facts.
	Result any
}

// RunAnalyzer applies one analyzer to one loaded package, collecting and
// position-sorting its diagnostics.
func RunAnalyzer(a *Analyzer, pkg *Package) (PackageDiagnostics, error) {
	out := PackageDiagnostics{Analyzer: a, Package: pkg}
	pass := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Prog:      pkg.Prog,
		Report: func(d Diagnostic) {
			out.Diagnostics = append(out.Diagnostics, d)
		},
	}
	res, err := a.Run(pass)
	if err != nil {
		return out, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
	}
	out.Result = res
	sort.SliceStable(out.Diagnostics, func(i, j int) bool {
		return out.Diagnostics[i].Pos < out.Diagnostics[j].Pos
	})
	return out, nil
}
