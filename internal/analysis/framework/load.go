package framework

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the package's import path ("mixedmem/internal/apps"), or a
	// synthetic path for directories outside the module tree (fixtures).
	Path string
	// Dir is the directory the sources were read from.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// Prog is the program this package was loaded into: every package the
	// same loader type-checked from source, dependencies included.
	Prog *Program
}

// Program is the set of packages one Load (or LoadDir) type-checked from
// source together — the patterns' packages plus every module dependency
// pulled in by imports. All of them share one FileSet, so positions resolve
// across package boundaries, and interprocedural passes can see callee
// bodies in any of them.
type Program struct {
	fset *token.FileSet
	pkgs map[string]*Package

	mu    sync.Mutex
	facts map[string]any
}

// Fset is the FileSet shared by every package of the program.
func (p *Program) Fset() *token.FileSet { return p.fset }

// Packages returns every package of the program, sorted by path.
func (p *Program) Packages() []*Package {
	out := make([]*Package, 0, len(p.pkgs))
	for _, pkg := range p.pkgs {
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// Package returns the program's package with the given path, or nil.
func (p *Program) Package(path string) *Package { return p.pkgs[path] }

// Fact memoizes a program-wide computation under key: the first call runs
// build and caches its result; later calls (from any analyzer on any
// package of the program) return the cached value. This is how expensive
// shared structures — the call graph, the effect summaries — are computed
// once per program rather than once per (analyzer, package) pair.
func (p *Program) Fact(key string, build func() any) any {
	p.mu.Lock()
	if v, ok := p.facts[key]; ok {
		p.mu.Unlock()
		return v
	}
	p.mu.Unlock()
	// Build outside the lock: fact builders compose (the summary set asks
	// for the call-graph fact), so holding the mutex here would deadlock.
	// Two goroutines may race to build the same fact; the first store wins
	// and the values are equivalent, so the waste is bounded and harmless.
	v := build()
	p.mu.Lock()
	defer p.mu.Unlock()
	if prev, ok := p.facts[key]; ok {
		return prev
	}
	p.facts[key] = v
	return v
}

// Load parses and type-checks the packages matched by patterns, rooted at
// dir (any directory inside the module). Patterns follow the go tool's
// shapes: "./x" for one directory, "./x/..." for a directory tree, or a
// module-relative import path ("mixedmem/internal/apps"). Directories named
// testdata, or starting with "." or "_", are skipped by tree expansion, as
// the go tool does. Test files (_test.go) are not loaded.
//
// Imports within the module are type-checked from source through the same
// loader; standard-library imports go through go/importer's source importer,
// so loading works without compiled export data or network access.
func Load(dir string, patterns []string) ([]*Package, error) {
	root, module, err := moduleRoot(dir)
	if err != nil {
		return nil, err
	}
	ld := newLoader(root, module)
	var dirs []string
	seen := make(map[string]bool)
	addDir := func(d string) {
		d = filepath.Clean(d)
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		rel := pat
		if strings.HasPrefix(pat, module+"/") {
			rel = "./" + strings.TrimPrefix(pat, module+"/")
		} else if pat == module {
			rel = "."
		}
		recursive := false
		if strings.HasSuffix(rel, "/...") {
			recursive = true
			rel = strings.TrimSuffix(rel, "/...")
		}
		base := rel
		if !filepath.IsAbs(base) {
			base = filepath.Join(dir, rel)
		}
		if st, err := os.Stat(base); err != nil || !st.IsDir() {
			return nil, fmt.Errorf("analysis: pattern %q: no directory %s", pat, base)
		}
		if !recursive {
			addDir(base)
			continue
		}
		err := filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(p) {
				addDir(p)
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("analysis: pattern %q: %w", pat, err)
		}
	}
	var pkgs []*Package
	for _, d := range dirs {
		pkg, err := ld.loadDir(d)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// LoadDir loads a single directory as a package, without pattern expansion —
// the analysistest entry point for fixture directories, which live under
// testdata and are not part of the module tree proper. rootHint is any
// directory inside the module whose packages the fixture may import.
func LoadDir(rootHint, pkgdir string) (*Package, error) {
	root, module, err := moduleRoot(rootHint)
	if err != nil {
		return nil, err
	}
	return newLoader(root, module).loadDir(pkgdir)
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") &&
			!strings.HasSuffix(name, "_test.go") && !strings.HasPrefix(name, ".") {
			return true
		}
	}
	return false
}

// moduleRoot walks up from dir to the enclosing go.mod and returns the root
// directory and module path.
func moduleRoot(dir string) (root, module string, err error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: no module line in %s/go.mod", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		d = parent
	}
}

// loader type-checks module packages from source, memoizing by import path,
// and delegates everything else to the standard library's source importer.
type loader struct {
	root   string
	module string
	fset   *token.FileSet
	std    types.Importer
	pkgs   map[string]*Package
	loads  map[string]bool
	prog   *Program
}

func newLoader(root, module string) *loader {
	fset := token.NewFileSet()
	pkgs := make(map[string]*Package)
	return &loader{
		root:   root,
		module: module,
		fset:   fset,
		std:    importer.ForCompiler(fset, "source", nil),
		pkgs:   pkgs,
		loads:  make(map[string]bool),
		prog:   &Program{fset: fset, pkgs: pkgs, facts: make(map[string]any)},
	}
}

// Import implements types.Importer for the type-checker's dependency loads.
func (ld *loader) Import(path string) (*types.Package, error) {
	if path == ld.module || strings.HasPrefix(path, ld.module+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, ld.module), "/")
		pkg, err := ld.loadDir(filepath.Join(ld.root, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return ld.std.Import(path)
}

func (ld *loader) loadDir(dir string) (*Package, error) {
	dir = filepath.Clean(dir)
	path := ld.importPath(dir)
	if pkg, ok := ld.pkgs[path]; ok {
		return pkg, nil
	}
	if ld.loads[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	ld.loads[path] = true
	defer delete(ld.loads, path)

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: ld}
	tpkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	pkg := &Package{
		Path:  path,
		Dir:   dir,
		Fset:  ld.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
		Prog:  ld.prog,
	}
	ld.pkgs[path] = pkg
	return pkg, nil
}

// importPath maps a directory to its module import path, or to a synthetic
// path (its base name) for directories outside the module tree such as
// analysistest fixtures under testdata.
func (ld *loader) importPath(dir string) string {
	rel, err := filepath.Rel(ld.root, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filepath.Base(dir)
	}
	if rel == "." {
		return ld.module
	}
	if strings.Contains(rel, "testdata") {
		return filepath.Base(dir)
	}
	return ld.module + "/" + filepath.ToSlash(rel)
}
