package lockdiscipline_test

import (
	"testing"

	"mixedmem/internal/analysis/analysistest"
	"mixedmem/internal/analysis/lockdiscipline"
)

func TestLockDiscipline(t *testing.T) {
	analysistest.Run(t, lockdiscipline.Analyzer, "../testdata/src/lockdiscipline")
}
