// Package lockdiscipline checks the pairing of the model's read/write lock
// operations (Section 3.1.1) per constant lock name, on the control-flow
// graph of each function: releases must match a held acquire of the same
// mode, acquires must not stack on an already-held lock, no lock may be
// held on a path out of the program, and no ordinary write may execute
// under a read lock (shared access grants no write permission in the entry
// model; commutative counter operations are exempt, Section 5.3).
//
// The analysis is interprocedural: each function is entered with the lock
// state merged over its static call sites (so a helper that releases a lock
// its caller acquired is understood, not flagged), and a call applies the
// callee's net lock effect at the call site (so a caller that acquires via
// a helper and forgets to release is flagged at its own exit). The
// held-on-return diagnostic fires only for root functions — units no one
// calls statically, or that escape as values or goroutines — because a
// helper that intentionally returns holding a lock for its caller is
// checked at the caller's exits instead. States that disagree across
// merging paths or call sites become unknown, which silences diagnostics
// rather than guessing. Dynamic lock names are not tracked.
package lockdiscipline

import (
	"go/ast"
	"go/token"
	"sort"

	"mixedmem/internal/analysis/cfg"
	"mixedmem/internal/analysis/framework"
	"mixedmem/internal/analysis/mixedapi"
	"mixedmem/internal/analysis/summary"
)

// Analyzer is the lockdiscipline pass.
var Analyzer = &framework.Analyzer{
	Name: "lockdiscipline",
	Doc:  "check WLock/WUnlock and RLock/RUnlock pairing per constant lock name on every control-flow path, through helper calls",
	Run:  run,
}

// Mode is a lock's abstract state at a program point (defined in the
// summary package, aliased here for the analyzer's historical API).
type Mode = summary.Mode

// Lock states; the zero value means not held.
const (
	Unlocked  = summary.Unlocked
	ReadHeld  = summary.ReadHeld
	WriteHeld = summary.WriteHeld
	// Unknown means paths disagree; diagnostics are suppressed.
	Unknown = summary.Unknown
)

// State maps constant lock names to modes; absent means Unlocked.
type State = summary.LockState

// Flow is the interprocedural lock-state analysis of one function unit,
// shared with entrydiscipline and the static advice engine: At reports the
// state immediately before each recognized operation.
type Flow struct {
	flow *summary.LockFlow
}

// Analyze returns the unit's lock flow, computed through the program's
// summary set (pass.Prog must be present).
func Analyze(pass *framework.Pass, unit mixedapi.FuncUnit) *Flow {
	return &Flow{flow: summary.Of(pass.Prog).LockFlow(unit.Body)}
}

// At returns the lock state immediately before the given operation site.
func (f *Flow) At(call *ast.CallExpr) State { return f.flow.At(call) }

func run(pass *framework.Pass) (any, error) {
	set := summary.Of(pass.Prog)
	for _, unit := range mixedapi.Units(pass.Files) {
		checkUnit(pass, set, unit)
	}
	return nil, nil
}

func checkUnit(pass *framework.Pass, set *summary.Set, unit mixedapi.FuncUnit) {
	flow := set.LockFlow(unit.Body)
	if flow == nil {
		return
	}
	node := set.Node(unit.Body)
	reported := make(map[token.Pos]bool)
	report := func(pos token.Pos, format string, args ...any) {
		if !reported[pos] {
			reported[pos] = true
			pass.Reportf(pos, format, args...)
		}
	}
	entry := set.LockEntry(unit.Body)
	for _, blk := range flow.Graph.Blocks {
		in, reached := flow.In(blk)
		if !reached {
			continue // unreachable code
		}
		state := in.Clone()
		for _, ev := range flow.Events(blk) {
			if ev.IsOp {
				check(report, state, ev.Op)
			}
			applyEvent(set, state, ev)
		}
		// A path out of the program must hold nothing. Only roots report:
		// a helper that returns holding a lock is serving its caller, and
		// the caller's own exits are where an unreleased lock surfaces.
		// Unknown states are not reported, and neither are locks already
		// held on entry (they are the caller's to release).
		if node != nil && node.IsRoot() && exits(blk, flow.Graph.Exit) {
			pos := unit.Body.Rbrace
			if blk.Return != nil {
				pos = blk.Return.Pos()
			}
			for _, name := range sortedHeld(state) {
				if entry[name] == state[name] {
					continue
				}
				report(pos, "lock %q still held on a return path (acquired mode %s)",
					name, modeName(state[name]))
			}
		}
	}
}

func applyEvent(set *summary.Set, state State, ev summary.Event) {
	if ev.IsOp {
		summary.ApplyLockOp(state, ev.Op)
		return
	}
	if ev.Callee == nil || ev.Spawned {
		return
	}
	if cs := set.Summary(ev.Callee.Body); cs != nil {
		for k, e := range cs.LockExit {
			summary.ApplyEffect(state, k, e)
		}
	}
}

func check(report func(token.Pos, string, ...any), s State, c mixedapi.Call) {
	if c.Op == mixedapi.OpWrite {
		// A write under a read lock and no write lock: the read lock grants
		// shared access only. Counter operations (OpAdd) are exempt.
		var under string
		for _, name := range sortedHeld(s) {
			switch s[name] {
			case WriteHeld:
				return
			case ReadHeld:
				if under == "" {
					under = name
				}
			}
		}
		if under != "" {
			report(c.Pos, "write under read lock %q: a read lock grants shared access only (acquire the write lock, or use a counter object)", under)
		}
		return
	}
	if !c.Const {
		return
	}
	cur := s[c.Name]
	switch c.Op {
	case mixedapi.OpRLock, mixedapi.OpWLock:
		if cur == ReadHeld || cur == WriteHeld {
			report(c.Pos, "lock %q acquired while already held (mode %s)", c.Name, modeName(cur))
		}
	case mixedapi.OpRUnlock:
		switch cur {
		case Unlocked:
			report(c.Pos, "RUnlock of %q without a matching RLock on this path", c.Name)
		case WriteHeld:
			report(c.Pos, "RUnlock of %q releases a write lock (use WUnlock)", c.Name)
		}
	case mixedapi.OpWUnlock:
		switch cur {
		case Unlocked:
			report(c.Pos, "WUnlock of %q without a matching WLock on this path", c.Name)
		case ReadHeld:
			report(c.Pos, "WUnlock of %q releases a read lock (use RUnlock)", c.Name)
		}
	}
}

func exits(blk *cfg.Block, exit *cfg.Block) bool {
	for _, s := range blk.Succs {
		if s == exit {
			return true
		}
	}
	return false
}

func sortedHeld(s State) []string {
	var names []string
	for name, mode := range s {
		if mode == ReadHeld || mode == WriteHeld {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

func modeName(m Mode) string {
	switch m {
	case ReadHeld:
		return "read"
	case WriteHeld:
		return "write"
	case Unknown:
		return "unknown"
	}
	return "unlocked"
}
