// Package lockdiscipline checks the pairing of the model's read/write lock
// operations (Section 3.1.1) per constant lock name, on the control-flow
// graph of each function: releases must match a held acquire of the same
// mode, acquires must not stack on an already-held lock, no lock may be
// held on a path out of the function, and no ordinary write may execute
// under a read lock (shared access grants no write permission in the entry
// model; commutative counter operations are exempt, Section 5.3).
//
// The analysis is intraprocedural and path-insensitive per lock: states
// that disagree across merging paths become unknown, which silences
// diagnostics rather than guessing (a conditional acquire paired with an
// identically-conditioned release is correct code the analysis cannot
// prove). Dynamic lock names are not tracked.
package lockdiscipline

import (
	"go/ast"
	"go/token"
	"sort"

	"mixedmem/internal/analysis/cfg"
	"mixedmem/internal/analysis/framework"
	"mixedmem/internal/analysis/mixedapi"
)

// Analyzer is the lockdiscipline pass.
var Analyzer = &framework.Analyzer{
	Name: "lockdiscipline",
	Doc:  "check WLock/WUnlock and RLock/RUnlock pairing per constant lock name on every control-flow path",
	Run:  run,
}

// Mode is a lock's abstract state at a program point.
type Mode uint8

// Lock states; the zero value means not held.
const (
	Unlocked Mode = iota
	ReadHeld
	WriteHeld
	// Unknown means paths disagree; diagnostics are suppressed.
	Unknown
)

// State maps constant lock names to modes; absent means Unlocked.
type State map[string]Mode

func (s State) clone() State {
	out := make(State, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

func (s State) equal(o State) bool {
	if len(s) != len(o) {
		return false
	}
	for k, v := range s {
		if o[k] != v {
			return false
		}
	}
	return true
}

// merge joins two states: agreeing modes survive, disagreements become
// Unknown.
func merge(a, b State) State {
	out := make(State)
	for k, v := range a {
		if b[k] == v {
			if v != Unlocked {
				out[k] = v
			}
		} else {
			out[k] = Unknown
		}
	}
	for k, v := range b {
		if _, ok := a[k]; !ok && v != Unlocked {
			out[k] = Unknown
		}
	}
	return out
}

// apply is the per-operation transfer function, without reporting.
func apply(s State, c mixedapi.Call) {
	if !c.Const {
		return
	}
	switch c.Op {
	case mixedapi.OpRLock:
		s[c.Name] = ReadHeld
	case mixedapi.OpWLock:
		s[c.Name] = WriteHeld
	case mixedapi.OpRUnlock, mixedapi.OpWUnlock:
		delete(s, c.Name)
	}
}

// Flow is the fixed-point lock-state analysis of one function unit, shared
// with the static advice engine: At reports the state immediately before
// each recognized operation.
type Flow struct {
	graph  *cfg.Graph
	in     map[*cfg.Block]State
	before map[*ast.CallExpr]State
}

// Analyze runs the dataflow over one unit.
func Analyze(pass *framework.Pass, unit mixedapi.FuncUnit) *Flow {
	f := &Flow{
		graph:  cfg.New(unit.Body),
		in:     make(map[*cfg.Block]State),
		before: make(map[*ast.CallExpr]State),
	}
	// A missing in-state means unreached (bottom): the first propagation
	// copies, later ones merge — merging with an implicit "all unlocked"
	// state would wrongly degrade every held lock to Unknown.
	f.in[f.graph.Entry] = State{}
	work := []*cfg.Block{f.graph.Entry}
	for len(work) > 0 {
		blk := work[len(work)-1]
		work = work[:len(work)-1]
		out := f.in[blk].clone()
		for _, node := range blk.Stmts {
			for _, c := range callsIn(pass, node) {
				apply(out, c)
			}
		}
		for _, succ := range blk.Succs {
			cur, reached := f.in[succ]
			next := out.clone()
			if reached {
				next = merge(cur, out)
			}
			if !reached || !next.equal(cur) {
				f.in[succ] = next
				work = append(work, succ)
			}
		}
	}
	// Record the state before every operation for At.
	for _, blk := range f.graph.Blocks {
		s := f.in[blk].clone()
		for _, node := range blk.Stmts {
			for _, c := range callsIn(pass, node) {
				f.before[c.Expr] = s.clone()
				apply(s, c)
			}
		}
	}
	return f
}

// At returns the lock state immediately before the given operation site.
func (f *Flow) At(call *ast.CallExpr) State { return f.before[call] }

func callsIn(pass *framework.Pass, node ast.Node) []mixedapi.Call {
	return mixedapi.CallsIn(pass.TypesInfo, node)
}

func run(pass *framework.Pass) (any, error) {
	for _, unit := range mixedapi.Units(pass.Files) {
		checkUnit(pass, unit)
	}
	return nil, nil
}

func checkUnit(pass *framework.Pass, unit mixedapi.FuncUnit) {
	flow := Analyze(pass, unit)
	reported := make(map[token.Pos]bool)
	report := func(pos token.Pos, format string, args ...any) {
		if !reported[pos] {
			reported[pos] = true
			pass.Reportf(pos, format, args...)
		}
	}
	for _, blk := range flow.graph.Blocks {
		in, reached := flow.in[blk]
		if !reached {
			continue // unreachable code
		}
		state := in.clone()
		for _, node := range blk.Stmts {
			for _, c := range callsIn(pass, node) {
				check(report, state, c)
				apply(state, c)
			}
		}
		// A path out of the function must hold nothing. Unknown states are
		// not reported: the disagreement was already conservative.
		if exits(blk, flow.graph.Exit) {
			pos := unit.Body.Rbrace
			if blk.Return != nil {
				pos = blk.Return.Pos()
			}
			for _, name := range sortedHeld(state) {
				report(pos, "lock %q still held on a return path (acquired mode %s)",
					name, modeName(state[name]))
			}
		}
	}
}

func check(report func(token.Pos, string, ...any), s State, c mixedapi.Call) {
	if c.Op == mixedapi.OpWrite {
		// A write under a read lock and no write lock: the read lock grants
		// shared access only. Counter operations (OpAdd) are exempt.
		var under string
		for _, name := range sortedHeld(s) {
			switch s[name] {
			case WriteHeld:
				return
			case ReadHeld:
				if under == "" {
					under = name
				}
			}
		}
		if under != "" {
			report(c.Pos, "write under read lock %q: a read lock grants shared access only (acquire the write lock, or use a counter object)", under)
		}
		return
	}
	if !c.Const {
		return
	}
	cur := s[c.Name]
	switch c.Op {
	case mixedapi.OpRLock, mixedapi.OpWLock:
		if cur == ReadHeld || cur == WriteHeld {
			report(c.Pos, "lock %q acquired while already held (mode %s)", c.Name, modeName(cur))
		}
	case mixedapi.OpRUnlock:
		switch cur {
		case Unlocked:
			report(c.Pos, "RUnlock of %q without a matching RLock on this path", c.Name)
		case WriteHeld:
			report(c.Pos, "RUnlock of %q releases a write lock (use WUnlock)", c.Name)
		}
	case mixedapi.OpWUnlock:
		switch cur {
		case Unlocked:
			report(c.Pos, "WUnlock of %q without a matching WLock on this path", c.Name)
		case ReadHeld:
			report(c.Pos, "WUnlock of %q releases a read lock (use RUnlock)", c.Name)
		}
	}
}

func exits(blk *cfg.Block, exit *cfg.Block) bool {
	for _, s := range blk.Succs {
		if s == exit {
			return true
		}
	}
	return false
}

func sortedHeld(s State) []string {
	var names []string
	for name, mode := range s {
		if mode == ReadHeld || mode == WriteHeld {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

func modeName(m Mode) string {
	switch m {
	case ReadHeld:
		return "read"
	case WriteHeld:
		return "write"
	case Unknown:
		return "unknown"
	}
	return "unlocked"
}
