// Fixture for the static advice engine: one location per regime.
package advisefix

import "mixedmem/internal/core"

// pramPipeline's "x" satisfies the static phase discipline — a single
// role-guarded write, reads in a different phase, a barrier between every
// access and the function exit — so PRAM reads are justified.
func pramPipeline(p *core.Proc) {
	if p.ID() == 0 {
		p.Write("x", 1)
	}
	p.Barrier()
	_ = p.ReadPRAM("x")
	p.Barrier()
}

// lockTable's "tab" fails the phase discipline (unguarded writes, no
// barriers) but satisfies the entry discipline under lock "m".
func lockTable(p *core.Proc) {
	p.WLock("m")
	p.Write("tab", int64(p.ID()))
	p.WUnlock("m")
	p.RLock("m")
	_ = p.ReadCausal("tab")
	p.RUnlock("m")
}

// collidingPhases writes "y" twice in one phase: neither corollary applies.
func collidingPhases(p *core.Proc) {
	if p.ID() == 0 {
		p.Write("y", 1)
		p.Write("y", 2)
	}
	p.Barrier()
	_ = p.ReadPRAM("y")
	p.Barrier()
}

// readOnly's "ro" is never written, so reads alone cannot violate the
// phase condition.
func readOnly(p *core.Proc) {
	_ = p.ReadPRAM("ro")
}

// counters only ever Adds to "n": counter increments are commutative and
// exempt from the write disciplines, so "n" counts as read-only.
func counters(p *core.Proc) {
	p.Add("n", 1)
	_ = p.ReadPRAM("n")
}

// threadStrand accesses "tv" on Forall thread strands, outside the SPMD
// phase structure, and holds no locks: no claim is possible.
func threadStrand(p *core.Proc) {
	p.Forall(2, func(i int, t core.ThreadOps) {
		t.Write("tv", 1)
		_ = t.ReadPRAM("tv")
	})
}
