// Fixture for the static advice engine's lattice bottom: a phase-disciplined
// program whose only synchronization is the barrier, so slow reads suffice
// for every location (Corollary 2 extends down the lattice — the slow-memory
// relation retains barrier edges).
package adviseslowfix

import "mixedmem/internal/core"

// stencil writes a per-role boundary cell, barriers, and lets every process
// read both cells in the next phase — Figure 2's shape with no awaits and no
// locks anywhere in the package.
func stencil(p *core.Proc) {
	if p.ID() == 0 {
		p.Write("left", 1)
	}
	if p.ID() == 1 {
		p.Write("right", 2)
	}
	p.Barrier()
	_ = p.ReadSlow("left")
	_ = p.ReadSlow("right")
	p.Barrier()
}

// sum only Adds to "acc": commutative increments are exempt from the write
// disciplines, so the accumulator is slow-readable too.
func sum(p *core.Proc) {
	p.Add("acc", 1)
	p.Barrier()
	_ = p.ReadSlow("acc")
	p.Barrier()
}
