// The package builds a ScopeMap the analyzer cannot resolve (programmatic
// construction), so every check is suppressed: the analyzer cannot know the
// final registration, and guessing would flag correct programs.
package scopeunknown

import (
	"fmt"

	"mixedmem/internal/core"
	"mixedmem/internal/dsm"
)

func ComputedPlacement(n int) *dsm.ScopeMap {
	scope := &dsm.ScopeMap{Readers: make(map[string][]int)}
	for i := 0; i < n; i++ {
		scope.Readers[fmt.Sprintf("slot%d", i)] = []int{(i + 1) % n}
	}
	return scope
}

func reader(p *core.Proc) {
	if p.ID() == 7 {
		_ = p.ReadPRAM("slot0") // would be flagged if the scope were a constant literal
	}
}
