// Helper-factored locking: lock effects cross call boundaries through the
// summary package, so a helper may acquire or release on its caller's
// behalf and the pairing is judged at the root.
package lockfix

import "mixedmem/internal/core"

// acquireState grabs the write lock for its caller. Holding at its own
// exit is not a leak — it is not a root, and what matters is whether its
// callers' paths balance the effect.
func acquireState(p *core.Proc) {
	p.WLock("state")
}

func releaseState(p *core.Proc) {
	p.WUnlock("state")
}

// helperBalanced releases the helper-acquired lock before returning: clean.
func helperBalanced(p *core.Proc) {
	acquireState(p)
	p.Write("st", 1)
	releaseState(p)
}

// helperLeaked never releases it: the leak surfaces at the root, where the
// execution actually ends with the lock held.
func helperLeaked(p *core.Proc) {
	acquireState(p)
	p.Write("st", 2)
} // want `lock "state" still held on a return path \(acquired mode write\)`

// The caller's read lock flows into the helper: the write under it is
// reported inside the helper, at the write itself. This pair was invisible
// to the intraprocedural checker.
func readSection(p *core.Proc) {
	p.RLock("rmu")
	writeInReadSection(p)
	p.RUnlock("rmu")
}

func writeInReadSection(p *core.Proc) {
	p.Write("shr", 1) // want `write under read lock "rmu"`
}
