// Clean cases: well-paired locking the analyzer must not flag.
package lockfix

import "mixedmem/internal/core"

func balanced(p *core.Proc) {
	p.WLock("m")
	p.Write("x", 1)
	p.WUnlock("m")
	p.RLock("m")
	_ = p.ReadPRAM("x")
	p.RUnlock("m")
}

func counterUnderReadLock(p *core.Proc) {
	p.RLock("m")
	p.Add("hits", 1) // commutative counter op: not a write under the model
	p.RUnlock("m")
}

func loopBalanced(p *core.Proc) {
	for i := 0; i < 3; i++ {
		p.WLock("m")
		p.Write("x", int64(i))
		p.WUnlock("m")
	}
}

func branchBalanced(p *core.Proc, cond bool) {
	if cond {
		p.WLock("m")
		p.WUnlock("m")
	} else {
		p.RLock("m")
		p.RUnlock("m")
	}
}

// conditionalPair is correct code the analysis cannot prove: the merged
// state is unknown, which suppresses diagnostics rather than guessing.
func conditionalPair(p *core.Proc, cond bool) {
	if cond {
		p.WLock("m")
	}
	if cond {
		p.WUnlock("m")
	}
}

func dynamicNamesSkipped(p *core.Proc, name string) {
	p.WLock(name)
	p.WUnlock(name)
	p.RUnlock(name) // dynamic lock names are not tracked
}
