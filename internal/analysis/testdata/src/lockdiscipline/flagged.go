// Flagged cases for the lockdiscipline analyzer.
package lockfix

import "mixedmem/internal/core"

func unlockWithoutLock(p *core.Proc) {
	p.RUnlock("l") // want `RUnlock of "l" without a matching RLock on this path`
}

func doubleAcquire(p *core.Proc) {
	p.WLock("l")
	p.WLock("l") // want `lock "l" acquired while already held \(mode write\)`
	p.WUnlock("l")
}

func upgradeWithoutRelease(p *core.Proc) {
	p.RLock("l")
	p.WLock("l") // want `lock "l" acquired while already held \(mode read\)`
	p.WUnlock("l")
}

func wrongModeRelease(p *core.Proc) {
	p.RLock("l")
	p.WUnlock("l") // want `WUnlock of "l" releases a read lock \(use RUnlock\)`
}

func leakOnReturnPath(p *core.Proc, cond bool) {
	p.WLock("l")
	if cond {
		return // want `lock "l" still held on a return path \(acquired mode write\)`
	}
	p.WUnlock("l")
}

func leakAtEnd(p *core.Proc) {
	p.RLock("l")
} // want `lock "l" still held on a return path \(acquired mode read\)`

func writeUnderReadLock(p *core.Proc) {
	p.RLock("l")
	p.Write("x", 1) // want `write under read lock "l"`
	p.RUnlock("l")
}
