// Flagged cases for the labelconsistency analyzer.
package labelfix

import "mixedmem/internal/core"

func writerSide(p *core.Proc) {
	p.Write("cfg", 1)
	_ = p.ReadPRAM("cfg") // want `location "cfg" is read with mixed labels: ReadPRAM here is PRAM-labeled`
}

func readerSide(p *core.Proc) {
	_ = p.ReadCausal("cfg") // want `location "cfg" is read with mixed labels: ReadCausal here is causal-labeled`
}

func awaitMix(p *core.Proc) {
	p.AwaitPRAM("gate", 1) // want `location "gate" is read with mixed labels: AwaitPRAM here is PRAM-labeled`
	p.Await("gate", 1)     // want `location "gate" is read with mixed labels: Await here is causal-labeled`
}
