// Clean cases: single-label locations and dynamic reads the analyzer must
// not flag.
package labelfix

import "mixedmem/internal/core"

func pramOnly(p *core.Proc) {
	_ = p.ReadPRAM("a")
	p.AwaitPRAM("a", 1)
	_ = core.ReadPRAMFloat(p, "af")
}

func causalOnly(p *core.Proc) {
	_ = p.ReadCausal("b")
	p.Await("b", 1)
	_ = core.ReadCausalFloat(p, "bf")
}

func dynamicLocationsSkipped(p *core.Proc, loc string) {
	_ = p.ReadPRAM(loc)
	_ = p.ReadCausal(loc)
}
