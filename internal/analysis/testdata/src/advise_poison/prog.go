// Fixture for the advice engine's poison rule: one write through a
// computed location voids every static claim in the program.
package poisonfix

import "mixedmem/internal/core"

// scatter writes through a computed location: statically it could target
// any location in any phase.
func scatter(p *core.Proc, loc string) {
	p.Write(loc, 1)
	p.Barrier()
}

// wouldBePRAM has the exact shape the engine accepts for PRAM, but
// scatter above poisons "z" along with everything else.
func wouldBePRAM(p *core.Proc) {
	if p.ID() == 0 {
		p.Write("z", 1)
	}
	p.Barrier()
	_ = p.ReadPRAM("z")
	p.Barrier()
}
