// The other half of the cross-package mixed-label fixture: see xlabel_a.
package xlabelb

import "mixedmem/internal/core"

func reader(p *core.Proc) {
	_ = p.ReadCausal("shared-cfg")
}
