// Flagged cases for the scopeusage analyzer: the package builds one
// fully-constant ScopeMap, so reads under constant role guards can be
// checked against it.
package scopefix

import (
	"mixedmem/internal/core"
	"mixedmem/internal/dsm"
)

// Placement registers the pipeline's readers: process 1 reads "stage1",
// process 2 reads "stage2" causally, and "stage3" has a PRAM-only reader 1
// beside causal reader 2.
func Placement() *dsm.ScopeMap {
	return &dsm.ScopeMap{
		Readers:       map[string][]int{"stage1": {1}, "stage2": {2}, "stage3": {1, 2}},
		CausalReaders: map[string][]int{"stage2": {2}, "stage3": {2}},
	}
}

func pipeline(p *core.Proc) {
	if p.ID() == 0 {
		p.Write("stage1", 1)
	}
	if p.ID() == 1 {
		_ = p.ReadPRAM("stage1")
		p.Write("stage2", 2)
	}
	if p.ID() == 2 {
		_ = p.ReadCausal("stage2")
	}
	if p.ID() == 3 {
		_ = p.ReadPRAM("stage1") // want `process 3 reads "stage1" but is not in the ScopeMap's Readers`
	}
	if p.ID() == 1 {
		_ = p.ReadCausal("stage3") // want `process 1 reads "stage3" causally but is not in CausalReaders`
	}
}

func switchRoles(p *core.Proc) {
	switch p.ID() {
	case 1:
		_ = p.ReadPRAM("stage1")
	case 2:
		_ = p.ReadPRAM("stage1") // want `process 2 reads "stage1" but is not in the ScopeMap's Readers`
	}
}
