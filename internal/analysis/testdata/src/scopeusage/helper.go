// Helper-factored role guards: a read with no local guard still has a
// known role when every call site of its function is guarded to the same
// constant role (the summary package's role-entry fixpoint).
package scopefix

import "mixedmem/internal/core"

func stageRunner(p *core.Proc) {
	if p.ID() == 2 {
		readStageTwo(p)
	}
	if p.ID() == 3 {
		readStageOne(p)
	}
}

// readStageTwo runs only as process 2 (its sole call site is guarded), and
// 2 is registered for "stage2": clean.
func readStageTwo(p *core.Proc) {
	_ = p.ReadCausal("stage2")
}

// readStageOne runs only as process 3, which is not a registered reader of
// "stage1": flagged inside the helper, where the read is.
func readStageOne(p *core.Proc) {
	_ = p.ReadPRAM("stage1") // want `process 3 reads "stage1" but is not in the ScopeMap's Readers`
}

// readMixed is called under two different roles: the merged entry role is
// unknown, so the analyzer stays silent rather than guess.
func mixedRunner(p *core.Proc) {
	if p.ID() == 1 {
		readMixed(p)
	}
	if p.ID() == 2 {
		readMixed(p)
	}
}

func readMixed(p *core.Proc) {
	_ = p.ReadPRAM("stage1") // no constant role: not checked
}
