// Clean cases: registered readers, broadcast-fallback locations, and reads
// with no statically-known role.
package scopefix

import "mixedmem/internal/core"

func registeredReads(p *core.Proc) {
	if p.ID() == 1 {
		_ = p.ReadPRAM("stage1")
		_ = p.ReadPRAM("stage3") // PRAM read needs Readers membership only
	}
	if p.ID() == 2 {
		_ = p.ReadCausal("stage2")
		_ = p.ReadCausal("stage3")
	}
}

func broadcastFallback(p *core.Proc) {
	if p.ID() == 5 {
		// "free" is not registered: it falls back to full broadcast, so any
		// process may read it.
		_ = p.ReadPRAM("free")
	}
}

func unknownRole(p *core.Proc, role int) {
	if p.ID() == role {
		_ = p.ReadPRAM("stage1") // role is not a constant: nothing to check
	}
	// Unguarded reads run as every process; without a constant role the
	// analyzer has nothing to check (a documented limitation — the dynamic
	// scoped conformance tests cover this case).
	_ = p.ReadPRAM("stage2")
}
