// Flagged cases for the phasediscipline analyzer: phase-condition
// violations poison every PRAM-labeled read of the location in the unit.
package phasefix

import "mixedmem/internal/core"

func doubleWrite(p *core.Proc) {
	p.Write("x", 1)
	p.Write("x", 2)
	p.Barrier()
	_ = p.ReadPRAM("x") // want `PRAM read of "x" is unjustified: "x" is written twice in one barrier phase`
}

func readAndWrite(p *core.Proc) {
	if p.ID() == 0 {
		p.Write("flag", 1)
	}
	_ = p.ReadPRAM("flag") // want `PRAM read of "flag" is unjustified: "flag" is read and written in one barrier phase`
}

func loopWriteNoBarrier(p *core.Proc, n int) {
	for i := 0; i < n; i++ {
		p.Write("acc", int64(i)) // rewritten every iteration, same phase
	}
	p.Barrier()
	_ = p.ReadPRAM("acc") // want `PRAM read of "acc" is unjustified: "acc" is written twice in one barrier phase`
}

func awaitAlsoFlagged(p *core.Proc) {
	p.Write("turn", 1)
	p.Write("turn", 2)
	p.AwaitPRAM("turn", 2) // want `PRAM read of "turn" is unjustified: "turn" is written twice in one barrier phase`
}

// groupBarrierIsNotAPhase: BarrierGroup synchronizes a subset only, so it
// does not end the phase for the full process set.
func groupBarrierIsNotAPhase(p *core.Proc) {
	p.Write("g", 1)
	p.BarrierGroup("halves", []int{0, 1})
	p.Write("g", 2)
	p.Barrier()
	_ = p.ReadPRAM("g") // want `PRAM read of "g" is unjustified: "g" is written twice in one barrier phase`
}
