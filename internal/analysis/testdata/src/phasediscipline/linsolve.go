// linsolve.go is examples/linsolve with a seeded bug: the mutated update
// step writes row "x1" twice between barriers, so the program leaves
// Corollary 2's class and every ReadPRAM of that row must be flagged —
// and only that row.
package phasefix

import "mixedmem/internal/core"

func jacobiMutated(p *core.Proc, iters int) {
	for it := 0; it < iters; it++ {
		switch p.ID() {
		case 0:
			core.WriteFloat(p, "x0", 0.5)
		case 1:
			core.WriteFloat(p, "x1", 0.25)
			core.WriteFloat(p, "x1", 0.125) // seeded bug: double write, no barrier between
		case 2:
			core.WriteFloat(p, "x2", 0.75)
		}
		p.Barrier()
		a := core.ReadPRAMFloat(p, "x0")
		b := core.ReadPRAMFloat(p, "x1") // want `PRAM read of "x1" is unjustified: "x1" is written twice in one barrier phase`
		c := core.ReadPRAMFloat(p, "x2")
		residual := a + b + c
		_ = residual
		p.Barrier()
		// Every PRAM read of the poisoned row in this unit is flagged,
		// not just the first.
		delta := core.ReadPRAMFloat(p, "x1") // want `PRAM read of "x1" is unjustified`
		_ = delta
		p.Barrier()
	}
}

// jacobiReport reads the rows in a separate function: the phase condition
// is checked per function unit, so the violation inside jacobiMutated does
// not poison reads elsewhere (a documented limitation of the intraprocedural
// scope — the dynamic checker covers the whole execution).
func jacobiReport(p *core.Proc) {
	p.Barrier()
	_ = core.ReadPRAMFloat(p, "x0")
	_ = core.ReadPRAMFloat(p, "x1")
	_ = core.ReadPRAMFloat(p, "x2")
}
