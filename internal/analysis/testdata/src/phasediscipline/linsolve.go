// linsolve.go is examples/linsolve with a seeded bug: the mutated update
// step writes row "x1" twice between barriers, so the program leaves
// Corollary 2's class and every ReadPRAM of that row must be flagged —
// and only that row. The second write hides inside a helper, so only the
// interprocedural analysis (callee effect summaries) sees the pair: the
// caller's pending write of "x1" meets the helper's barrier-free entry
// write at the call site. This exact shape was a documented false
// negative of the intraprocedural checker.
package phasefix

import "mixedmem/internal/core"

func jacobiMutated(p *core.Proc, iters int) {
	for it := 0; it < iters; it++ {
		switch p.ID() {
		case 0:
			core.WriteFloat(p, "x0", 0.5)
		case 1:
			core.WriteFloat(p, "x1", 0.25)
			refineRow1(p) // seeded bug: helper writes "x1" again, no barrier between
		case 2:
			core.WriteFloat(p, "x2", 0.75)
		}
		p.Barrier()
		a := core.ReadPRAMFloat(p, "x0")
		b := core.ReadPRAMFloat(p, "x1") // want `PRAM read of "x1" is unjustified: "x1" is written twice in one barrier phase`
		c := core.ReadPRAMFloat(p, "x2")
		residual := a + b + c
		_ = residual
		p.Barrier()
		// Every PRAM read of the poisoned row in this unit is flagged,
		// not just the first.
		delta := core.ReadPRAMFloat(p, "x1") // want `PRAM read of "x1" is unjustified`
		_ = delta
		p.Barrier()
	}
}

// refineRow1 is the helper hiding the second write. Its own phase state is
// also entered with the caller's pending write (the phase-entry fixpoint),
// so a PRAM read here of the conflicting row would be flagged too; it has
// none, so the helper itself stays silent.
func refineRow1(p *core.Proc) {
	core.WriteFloat(p, "x1", 0.125)
}

// jacobiReport reads the rows from a separate root that never sees the
// conflicting phase: evidence is per function unit, entered only with the
// pending accesses of its actual call sites, so the violation inside
// jacobiMutated does not poison reads here.
func jacobiReport(p *core.Proc) {
	p.Barrier()
	_ = core.ReadPRAMFloat(p, "x0")
	_ = core.ReadPRAMFloat(p, "x1")
	_ = core.ReadPRAMFloat(p, "x2")
}
