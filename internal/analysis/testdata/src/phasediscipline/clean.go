// Clean cases: barrier-disciplined programs the analyzer must not flag.
package phasefix

import "mixedmem/internal/core"

func barrierSeparated(p *core.Proc) {
	p.Write("x", 1)
	p.Barrier()
	_ = p.ReadPRAM("x")
	p.Barrier()
	p.Write("x", 2)
}

func loopWithBarriers(p *core.Proc, n int) {
	for i := 0; i < n; i++ {
		p.Write("x", int64(i))
		p.Barrier()
		_ = p.ReadPRAM("x")
		p.Barrier()
	}
}

func counterOpsExempt(p *core.Proc, n int) {
	for i := 0; i < n; i++ {
		p.Add("hits", 1) // commutative: not a write under the phase condition
	}
	p.Barrier()
	_ = p.ReadPRAM("hits")
}

func causalReadsNotFlagged(p *core.Proc) {
	p.Write("y", 1)
	p.Write("y", 2)
	// The phase condition fails for "y", but only PRAM reads lose their
	// justification; this causal read is ordered by Theorem 1 instead.
	_ = p.ReadCausal("y")
}

func dynamicLocationsSkipped(p *core.Proc, loc string) {
	p.Write(loc, 1)
	p.Write(loc, 2)
	_ = p.ReadPRAM(loc)
}
