// One half of the cross-package mixed-label fixture: this package reads
// "shared-cfg" PRAM-labeled, its sibling xlabel_b reads it causally. Each
// package is consistent on its own, so only the driver's program-wide merge
// can see the mix.
package xlabela

import "mixedmem/internal/core"

func reader(p *core.Proc) {
	_ = p.ReadPRAM("shared-cfg")
}
