// Helper-factored entry regions: the lock state at a write now includes
// effects of helper calls on the path and the states of the enclosing
// function's call sites, so entering the critical section in a helper (or
// in the caller, with the write in a helper) satisfies the discipline.
package entryfix

import "mixedmem/internal/core"

// gridReader associates "grid" with "grid-lock" for the whole package.
func gridReader(p *core.Proc) {
	p.RLock("grid-lock")
	_ = p.ReadPRAM("grid")
	p.RUnlock("grid-lock")
}

// enterGrid / exitGrid bracket the entry region on the caller's behalf.
func enterGrid(p *core.Proc) { p.WLock("grid-lock") }
func exitGrid(p *core.Proc)  { p.WUnlock("grid-lock") }

func updateViaRegionHelpers(p *core.Proc) {
	enterGrid(p)
	p.Write("grid", 9) // inside the section: the helper's lock effect reaches here
	exitGrid(p)
}

// gridUpdater holds the lock across the call; the helper's write is inside
// the critical section at every call site, so it is disciplined — formerly
// a false positive of the intraprocedural checker.
func gridUpdater(p *core.Proc) {
	p.WLock("grid-lock")
	writeGrid(p)
	p.WUnlock("grid-lock")
}

func writeGrid(p *core.Proc) {
	p.Write("grid", 7)
}

// sloppyUpdater reaches its helper without the lock: the undisciplined
// write is reported inside the helper, where it happens.
func sloppyUpdater(p *core.Proc) {
	writeGridSloppy(p)
}

func writeGridSloppy(p *core.Proc) {
	p.Write("grid", 8) // want `write to "grid" outside the "grid-lock" write-lock critical section`
}
