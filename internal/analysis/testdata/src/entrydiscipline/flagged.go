// Flagged cases for the entrydiscipline analyzer: "tab" is read under
// "tab-lock" elsewhere in the package, so unprotected writes to it break
// the entry-consistency discipline.
package entryfix

import "mixedmem/internal/core"

func guardedReader(p *core.Proc) {
	p.RLock("tab-lock")
	_ = p.ReadPRAM("tab")
	p.RUnlock("tab-lock")
}

func unguardedWriter(p *core.Proc) {
	p.Write("tab", 1) // want `write to "tab" outside the "tab-lock" write-lock critical section`
}

func readLockedWriter(p *core.Proc) {
	p.RLock("tab-lock")
	p.Write("tab", 2) // want `write to "tab" outside the "tab-lock" write-lock critical section`
	p.RUnlock("tab-lock")
}
