// Clean cases: disciplined or unassociated accesses the analyzer must not
// flag.
package entryfix

import "mixedmem/internal/core"

func disciplinedWriter(p *core.Proc) {
	p.WLock("m")
	p.Write("shared", 2)
	p.WUnlock("m")
}

func disciplinedReader(p *core.Proc) {
	p.RLock("m")
	_ = p.ReadPRAM("shared")
	p.RUnlock("m")
}

func unassociated(p *core.Proc) {
	p.Write("solo", 1) // "solo" is never accessed under a lock: no discipline to enforce
	p.Barrier()
	_ = p.ReadPRAM("solo")
}

func counterWriter(p *core.Proc) {
	p.Add("shared", 1) // counter ops commute: exempt even for lock-associated locations
}

// ambiguous is accessed under two different locks; the association is
// ambiguous, so the analyzer defers to the dynamic checker.
func ambiguousAccess(p *core.Proc) {
	p.RLock("a")
	_ = p.ReadPRAM("amb")
	p.RUnlock("a")
	p.RLock("b")
	_ = p.ReadPRAM("amb")
	p.RUnlock("b")
	p.Write("amb", 1)
}
