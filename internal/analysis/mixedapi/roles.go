package mixedapi

import (
	"go/ast"
	"go/types"
)

// RoleMap assigns each call site — recognized operations and ordinary
// function calls alike — the constant process role it is guarded to
// (`if p.ID() == 2 { ... }`, `switch p.ID() { case 2: ... }`). Ordinary
// calls are included so interprocedural passes can hand the caller's role
// context to a helper's accesses. Sites with no enclosing constant role
// guard are absent.
type RoleMap map[*ast.CallExpr]int

// GuardRole matches the role-guard conditions `p.ID() == K` and
// `K == p.ID()`.
func GuardRole(info *types.Info, cond ast.Expr) (int, bool) {
	be, ok := cond.(*ast.BinaryExpr)
	if !ok || be.Op.String() != "==" {
		return 0, false
	}
	if IsIDCall(info, be.X) {
		return ConstInt(info, be.Y)
	}
	if IsIDCall(info, be.Y) {
		return ConstInt(info, be.X)
	}
	return 0, false
}

// RoleGuards computes the role context of every recognized operation in one
// function body. Nested function literals are separate analysis units and
// inherit no role (the literal may run on another strand entirely).
func RoleGuards(info *types.Info, body *ast.BlockStmt) RoleMap {
	m := make(RoleMap)
	var walk func(n ast.Node, role int, known bool)
	walkChildren := func(n ast.Node, role int, known bool) {
		first := true
		ast.Inspect(n, func(c ast.Node) bool {
			if first {
				first = false
				return true
			}
			if c != nil {
				walk(c, role, known)
			}
			return false
		})
	}
	walk = func(n ast.Node, role int, known bool) {
		switch n := n.(type) {
		case *ast.FuncLit:
			return
		case *ast.IfStmt:
			if n.Init != nil {
				walk(n.Init, role, known)
			}
			walk(n.Cond, role, known)
			if r, ok := GuardRole(info, n.Cond); ok {
				walk(n.Body, r, true)
			} else {
				walk(n.Body, role, known)
			}
			if n.Else != nil {
				walk(n.Else, role, known)
			}
		case *ast.SwitchStmt:
			if n.Init != nil {
				walk(n.Init, role, known)
			}
			if n.Tag != nil && IsIDCall(info, n.Tag) {
				for _, c := range n.Body.List {
					cc := c.(*ast.CaseClause)
					r, guarded := 0, false
					if len(cc.List) == 1 {
						r, guarded = ConstInt(info, cc.List[0])
					}
					for _, s := range cc.Body {
						if guarded {
							walk(s, r, true)
						} else {
							walk(s, role, known)
						}
					}
				}
				return
			}
			if n.Tag != nil {
				walk(n.Tag, role, known)
			}
			walk(n.Body, role, known)
		case *ast.CallExpr:
			if known {
				m[n] = role
			}
			walkChildren(n, role, known)
		default:
			walkChildren(n, role, known)
		}
	}
	walk(body, 0, false)
	return m
}

// ThreadBodies finds the bodies of function literals passed to Forall: their
// operations run on spawned thread strands, where the SPMD phase structure
// of the enclosing process does not apply.
func ThreadBodies(info *types.Info, files []*ast.File) map[*ast.BlockStmt]bool {
	out := make(map[*ast.BlockStmt]bool)
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj, ok := info.Uses[sel.Sel]
			if !ok {
				return true
			}
			fn, ok := obj.(*types.Func)
			if !ok || fn.Name() != "Forall" || fn.Pkg() == nil ||
				!isCorePath(fn.Pkg().Path()) {
				return true
			}
			for _, arg := range call.Args {
				if fl, ok := arg.(*ast.FuncLit); ok {
					out[fl.Body] = true
				}
			}
			return true
		})
	}
	return out
}
