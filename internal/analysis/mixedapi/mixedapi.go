// Package mixedapi recognizes mixed-consistency memory and synchronization
// operations — calls on core.Process / core.Proc / core.ThreadOps and the
// package-level float helpers — in type-checked syntax, for the mixedvet
// analyzers. Recognition is by the method's defining package, so programs
// written against the core.Process interface are recognized no matter which
// implementation they run on.
package mixedapi

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// CorePathSuffix identifies the core package by import-path suffix, so the
// analyzers also work on a fork of the module under another name.
const CorePathSuffix = "internal/core"

func isCorePath(path string) bool { return strings.HasSuffix(path, CorePathSuffix) }

// Op classifies one recognized operation.
type Op int

// Operations of the model, as the analyzers group them.
const (
	OpNone Op = iota
	// OpWrite is Write or core.WriteFloat: an ordinary (OpSet) write.
	OpWrite
	// OpReadPRAM is ReadPRAM or core.ReadPRAMFloat.
	OpReadPRAM
	// OpReadCausal is ReadCausal or core.ReadCausalFloat.
	OpReadCausal
	// OpAwaitCausal is Await (causal view).
	OpAwaitCausal
	// OpAwaitPRAM is AwaitPRAM.
	OpAwaitPRAM
	// OpAdd is Add or AddFloat: a commutative counter-object operation,
	// exempt from the write disciplines (Section 5.3).
	OpAdd
	OpRLock
	OpRUnlock
	OpWLock
	OpWUnlock
	// OpBarrier is the full barrier; OpBarrierGroup the subset barrier,
	// which the phase analysis does not treat as a phase boundary.
	OpBarrier
	OpBarrierGroup
	// OpReadDynamic is core.Process.Read, whose label is chosen at run
	// time; the label analyzers skip it.
	OpReadDynamic
	// OpReadSlow is ReadSlow: the bottom of the label lattice, a read with
	// only per-location FIFO guarantees.
	OpReadSlow
	// OpReadSC is ReadSC: the top of the lattice, a blocking
	// sequentially-consistent read through the location's owner.
	OpReadSC
)

// IsRead reports whether the op observes a location's value (reads and
// awaits).
func (o Op) IsRead() bool {
	switch o {
	case OpReadPRAM, OpReadCausal, OpAwaitCausal, OpAwaitPRAM, OpReadDynamic,
		OpReadSlow, OpReadSC:
		return true
	}
	return false
}

// IsPRAMLabeled reports whether the op carries the PRAM label.
func (o Op) IsPRAMLabeled() bool { return o == OpReadPRAM || o == OpAwaitPRAM }

// IsCausalLabeled reports whether the op carries the causal label.
func (o Op) IsCausalLabeled() bool { return o == OpReadCausal || o == OpAwaitCausal }

// Call is one recognized operation site.
type Call struct {
	Op   Op
	Pos  token.Pos
	Expr *ast.CallExpr
	// Name is the operation's constant location or lock name; Const tells
	// whether it could be resolved statically. Operations without a
	// location/lock argument (Barrier) have Const false and empty Name.
	Name  string
	Const bool
}

// methodOps maps core method names to ops; the location/lock argument is
// always the first.
var methodOps = map[string]Op{
	"Write":      OpWrite,
	"ReadPRAM":   OpReadPRAM,
	"ReadCausal": OpReadCausal,
	"ReadSlow":   OpReadSlow,
	"ReadSC":     OpReadSC,
	"Await":      OpAwaitCausal,
	"AwaitPRAM":  OpAwaitPRAM,
	"Add":        OpAdd,
	"AddFloat":   OpAdd,
	"RLock":      OpRLock,
	"RUnlock":    OpRUnlock,
	"WLock":      OpWLock,
	"WUnlock":    OpWUnlock,
	"Read":       OpReadDynamic,
}

// funcOps maps core package-level helpers to ops; the location argument is
// the second (the first is the process handle).
var funcOps = map[string]Op{
	"WriteFloat":      OpWrite,
	"ReadPRAMFloat":   OpReadPRAM,
	"ReadCausalFloat": OpReadCausal,
}

// Classify inspects one call expression and reports the operation it
// performs, if it is a recognized mixed-consistency operation.
func Classify(info *types.Info, call *ast.CallExpr) (Call, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return Call{}, false
	}
	obj, ok := info.Uses[sel.Sel]
	if !ok {
		return Call{}, false
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || !strings.HasSuffix(fn.Pkg().Path(), CorePathSuffix) {
		return Call{}, false
	}
	name := fn.Name()
	out := Call{Pos: call.Pos(), Expr: call}
	// Package-level helpers: core.WriteFloat(p, loc, v) and friends.
	if fn.Type().(*types.Signature).Recv() == nil {
		op, ok := funcOps[name]
		if !ok {
			return Call{}, false
		}
		out.Op = op
		if len(call.Args) >= 2 {
			out.Name, out.Const = ConstString(info, call.Args[1])
		}
		return out, true
	}
	switch name {
	case "Barrier":
		out.Op = OpBarrier
		return out, true
	case "BarrierGroup":
		out.Op = OpBarrierGroup
		if len(call.Args) >= 1 {
			out.Name, out.Const = ConstString(info, call.Args[0])
		}
		return out, true
	}
	op, ok := methodOps[name]
	if !ok {
		return Call{}, false
	}
	out.Op = op
	if len(call.Args) >= 1 {
		out.Name, out.Const = ConstString(info, call.Args[0])
	}
	return out, true
}

// IsIDCall reports whether e is a call of the core ID() method — the
// process-identity accessor that role guards (`if p.ID() == 0`) test.
func IsIDCall(info *types.Info, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj, ok := info.Uses[sel.Sel]
	if !ok {
		return false
	}
	fn, ok := obj.(*types.Func)
	return ok && fn.Name() == "ID" && fn.Pkg() != nil &&
		strings.HasSuffix(fn.Pkg().Path(), CorePathSuffix)
}

// ConstInt resolves e as a constant int, if it is one.
func ConstInt(info *types.Info, e ast.Expr) (int, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	v, ok := constant.Int64Val(tv.Value)
	return int(v), ok
}

// ConstString resolves e as a constant string, if it is one.
func ConstString(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// TransparentCall reports whether a call expression cannot touch the
// model's memory, locks, or phase structure: a type conversion, a builtin,
// or an unclassified core-package helper (ID, N, Forall, stats accessors).
// Interprocedural passes skip transparent calls instead of treating them as
// opaque.
func TransparentCall(info *types.Info, call *ast.CallExpr) bool {
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return true // conversion
	}
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	default:
		return false
	}
	switch obj := obj.(type) {
	case *types.Builtin:
		return true
	case *types.Func:
		return obj.Pkg() != nil && isCorePath(obj.Pkg().Path())
	}
	return false
}

// CallsIn collects the recognized operations lexically inside node, in
// source order, without descending into nested function literals — those
// are separate analysis units.
func CallsIn(info *types.Info, node ast.Node) []Call {
	var out []Call
	ast.Inspect(node, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if n != node {
				return false
			}
		case *ast.CallExpr:
			if c, ok := Classify(info, n); ok {
				out = append(out, c)
			}
		}
		return true
	})
	return out
}

// FuncUnit is one intraprocedural analysis unit: a function declaration or
// a function literal. Nested literals are their own units.
type FuncUnit struct {
	// Name describes the unit for diagnostics: the declared name, or
	// "func literal" for literals.
	Name string
	Body *ast.BlockStmt
	Pos  token.Pos
}

// Units enumerates the analysis units of a file set: every function
// declaration with a body and every function literal.
func Units(files []*ast.File) []FuncUnit {
	var out []FuncUnit
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					out = append(out, FuncUnit{Name: n.Name.Name, Body: n.Body, Pos: n.Pos()})
				}
			case *ast.FuncLit:
				out = append(out, FuncUnit{Name: "func literal", Body: n.Body, Pos: n.Pos()})
			}
			return true
		})
	}
	return out
}
