package phasediscipline_test

import (
	"testing"

	"mixedmem/internal/analysis/analysistest"
	"mixedmem/internal/analysis/phasediscipline"
)

func TestPhaseDiscipline(t *testing.T) {
	res := analysistest.Run(t, phasediscipline.Analyzer, "../testdata/src/phasediscipline")
	facts, ok := res.(*phasediscipline.Result)
	if !ok {
		t.Fatalf("result type = %T, want *phasediscipline.Result", res)
	}
	// The seeded linsolve bug surfaces as package-level evidence against the
	// mutated row — and only that row of the solver's three.
	ev, ok := facts.Violations["x1"]
	if !ok {
		t.Fatal(`no violation recorded for the double-written row "x1"`)
	}
	if ev.Kind != "written twice" {
		t.Fatalf(`violation kind for "x1" = %q, want "written twice"`, ev.Kind)
	}
	for _, row := range []string{"x0", "x2"} {
		if _, ok := facts.Violations[row]; ok {
			t.Fatalf("clean row %q has a recorded violation", row)
		}
	}
}
