// Package phasediscipline checks Corollary 2's program class on each
// function's control-flow graph: with the computation split into phases by
// barriers, no location may be written twice in one phase, and no location
// may be both read and written in one phase. A violation means the program
// is not PRAM-consistent, so Corollary 2 does not justify PRAM reads of the
// offending location — the diagnostic lands on every PRAM-labeled read of
// it in the same function, which is exactly the set of reads whose results
// the corollary no longer defends.
//
// The analysis is intraprocedural (the static stand-in for the paper's
// per-program condition) and tracks constant location names only. Loops
// count: a write that reaches itself around a loop back edge with no
// intervening Barrier() is a double write in one phase. Subset barriers
// (BarrierGroup) are not phase boundaries — only the full barrier orders
// all processes. Commutative counter operations (Add/AddFloat) are exempt:
// they are operations of an abstract data type, not writes (Section 5.3).
package phasediscipline

import (
	"go/token"

	"mixedmem/internal/analysis/cfg"
	"mixedmem/internal/analysis/framework"
	"mixedmem/internal/analysis/mixedapi"
)

// Analyzer is the phasediscipline pass.
var Analyzer = &framework.Analyzer{
	Name: "phasediscipline",
	Doc:  "flag PRAM reads of locations written twice (or read and written) in one barrier phase on some path (Corollary 2)",
	Run:  run,
}

// Evidence is why a location fails the phase condition in one function.
type Evidence struct {
	Loc string
	// Kind is "written twice" or "read and written".
	Kind string
	// First and Second are the two conflicting sites, in path order.
	First, Second token.Pos
}

// Result is the analyzer's package-level fact set: per function unit, the
// locations with phase violations, for the static advice engine.
type Result struct {
	// Violations maps a location to its first piece of evidence, across
	// all units of the package.
	Violations map[string]Evidence
}

// state tracks, per location, a site since the last barrier on some path.
// The maps are may-information: merged by union, cleared at barriers.
type state struct {
	written map[string]token.Pos
	read    map[string]token.Pos
}

func newState() *state {
	return &state{written: map[string]token.Pos{}, read: map[string]token.Pos{}}
}

func (s *state) clone() *state {
	out := newState()
	for k, v := range s.written {
		out.written[k] = v
	}
	for k, v := range s.read {
		out.read[k] = v
	}
	return out
}

// join unions o into s and reports whether s changed.
func (s *state) join(o *state) bool {
	changed := false
	for k, v := range o.written {
		if _, ok := s.written[k]; !ok {
			s.written[k] = v
			changed = true
		}
	}
	for k, v := range o.read {
		if _, ok := s.read[k]; !ok {
			s.read[k] = v
			changed = true
		}
	}
	return changed
}

func run(pass *framework.Pass) (any, error) {
	res := &Result{Violations: make(map[string]Evidence)}
	for _, unit := range mixedapi.Units(pass.Files) {
		checkUnit(pass, unit, res)
	}
	return res, nil
}

func checkUnit(pass *framework.Pass, unit mixedapi.FuncUnit, res *Result) {
	g := cfg.New(unit.Body)
	in := make(map[*cfg.Block]*state)
	in[g.Entry] = newState()
	work := []*cfg.Block{g.Entry}
	evidence := make(map[string]Evidence)
	record := func(loc, kind string, first, second token.Pos) {
		if _, ok := evidence[loc]; !ok {
			evidence[loc] = Evidence{Loc: loc, Kind: kind, First: first, Second: second}
		}
	}
	transfer := func(s *state, collect bool) func(c mixedapi.Call) {
		return func(c mixedapi.Call) {
			switch {
			case c.Op == mixedapi.OpBarrier:
				s.written = map[string]token.Pos{}
				s.read = map[string]token.Pos{}
			case c.Op == mixedapi.OpWrite && c.Const:
				if collect {
					if first, ok := s.written[c.Name]; ok {
						record(c.Name, "written twice", first, c.Pos)
					}
					if first, ok := s.read[c.Name]; ok {
						record(c.Name, "read and written", first, c.Pos)
					}
				}
				if _, ok := s.written[c.Name]; !ok {
					s.written[c.Name] = c.Pos
				}
			case c.Op.IsRead() && c.Const:
				if collect {
					if first, ok := s.written[c.Name]; ok {
						record(c.Name, "read and written", first, c.Pos)
					}
				}
				if _, ok := s.read[c.Name]; !ok {
					s.read[c.Name] = c.Pos
				}
			}
		}
	}
	for len(work) > 0 {
		blk := work[len(work)-1]
		work = work[:len(work)-1]
		out := in[blk].clone()
		step := transfer(out, false)
		for _, node := range blk.Stmts {
			for _, c := range mixedapi.CallsIn(pass.TypesInfo, node) {
				step(c)
			}
		}
		for _, succ := range blk.Succs {
			cur, reached := in[succ]
			if !reached {
				in[succ] = out.clone()
				work = append(work, succ)
			} else if cur.join(out) {
				work = append(work, succ)
			}
		}
	}
	// Collection pass over the stabilized states.
	for _, blk := range g.Blocks {
		s, reached := in[blk]
		if !reached {
			continue
		}
		s = s.clone()
		step := transfer(s, true)
		for _, node := range blk.Stmts {
			for _, c := range mixedapi.CallsIn(pass.TypesInfo, node) {
				step(c)
			}
		}
	}
	if len(evidence) == 0 {
		return
	}
	for loc, ev := range evidence {
		if _, ok := res.Violations[loc]; !ok {
			res.Violations[loc] = ev
		}
	}
	// Flag every PRAM-labeled read of an offending location in this unit.
	for _, c := range mixedapi.CallsIn(pass.TypesInfo, unit.Body) {
		if !c.Op.IsPRAMLabeled() || !c.Const {
			continue
		}
		ev, ok := evidence[c.Name]
		if !ok {
			continue
		}
		pass.Reportf(c.Pos,
			"PRAM read of %q is unjustified: %q is %s in one barrier phase (%s and %s), so the program is not PRAM-consistent and Corollary 2 does not apply",
			c.Name, c.Name, ev.Kind,
			pass.Fset.Position(ev.First), pass.Fset.Position(ev.Second))
	}
}
