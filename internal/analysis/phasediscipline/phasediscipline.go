// Package phasediscipline checks Corollary 2's program class on each
// function's control-flow graph: with the computation split into phases by
// barriers, no location may be written twice in one phase, and no location
// may be both read and written in one phase. A violation means the program
// is not PRAM-consistent, so Corollary 2 does not justify PRAM reads of the
// offending location — the diagnostic lands on every PRAM-labeled read of
// it in the same function, which is exactly the set of reads whose results
// the corollary no longer defends.
//
// The analysis is interprocedural through the summary package: each
// function is entered with the accesses still pending (no barrier since)
// at its call sites, and a call replays the callee's effect summary — its
// barrier-free entry accesses conflict with the caller's pending state, its
// exit-pending accesses stay pending after the call, and a callee that
// always crosses a barrier clears the phase. So a helper whose write lands
// in the same phase as its caller's write is caught from both sides: the
// caller's PRAM reads are flagged where the helper's write joins the phase,
// and the helper's PRAM reads are flagged where the caller's pending write
// enters. Constant location names only; loops count (a write reaching
// itself around a back edge with no intervening Barrier() is a double write
// in one phase); subset barriers (BarrierGroup) are not phase boundaries;
// commutative counter operations (Add/AddFloat) are exempt (Section 5.3).
package phasediscipline

import (
	"go/token"

	"mixedmem/internal/analysis/framework"
	"mixedmem/internal/analysis/mixedapi"
	"mixedmem/internal/analysis/summary"
)

// Analyzer is the phasediscipline pass.
var Analyzer = &framework.Analyzer{
	Name: "phasediscipline",
	Doc:  "flag PRAM reads of locations written twice (or read and written) in one barrier phase on some path, through helper calls (Corollary 2)",
	Run:  run,
}

// Evidence is why a location fails the phase condition in one function.
type Evidence struct {
	Loc string
	// Kind is "written twice" or "read and written".
	Kind string
	// First and Second are the two conflicting sites, in path order.
	First, Second token.Pos
}

// Result is the analyzer's package-level fact set: per function unit, the
// locations with phase violations, for the static advice engine.
type Result struct {
	// Violations maps a location to its first piece of evidence, across
	// all units of the package.
	Violations map[string]Evidence
}

func run(pass *framework.Pass) (any, error) {
	res := &Result{Violations: make(map[string]Evidence)}
	set := summary.Of(pass.Prog)
	for _, unit := range mixedapi.Units(pass.Files) {
		checkUnit(pass, set, unit, res)
	}
	return res, nil
}

func checkUnit(pass *framework.Pass, set *summary.Set, unit mixedapi.FuncUnit, res *Result) {
	in := set.PhaseFlowIn(unit.Body)
	g := set.UnitGraph(unit.Body)
	if in == nil || g == nil {
		return
	}
	evidence := make(map[string]Evidence)
	record := func(loc, kind string, first, second token.Pos) {
		if _, ok := evidence[loc]; !ok {
			evidence[loc] = Evidence{Loc: loc, Kind: kind, First: first, Second: second}
		}
	}
	// Collection pass over the stabilized states.
	for _, blk := range g.Blocks {
		st, reached := in[blk]
		if !reached {
			continue
		}
		st = st.Clone()
		for _, ev := range set.UnitEvents(unit.Body, blk) {
			set.ApplyPhaseEvent(st, ev, record)
		}
	}
	if len(evidence) == 0 {
		return
	}
	for loc, ev := range evidence {
		if _, ok := res.Violations[loc]; !ok {
			res.Violations[loc] = ev
		}
	}
	// Flag every PRAM-labeled read of an offending location in this unit.
	for _, c := range mixedapi.CallsIn(pass.TypesInfo, unit.Body) {
		if !c.Op.IsPRAMLabeled() || !c.Const {
			continue
		}
		ev, ok := evidence[c.Name]
		if !ok {
			continue
		}
		pass.Reportf(c.Pos,
			"PRAM read of %q is unjustified: %q is %s in one barrier phase (%s and %s), so the program is not PRAM-consistent and Corollary 2 does not apply",
			c.Name, c.Name, ev.Kind,
			pass.Fset.Position(ev.First), pass.Fset.Position(ev.Second))
	}
}
