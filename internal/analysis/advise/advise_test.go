package advise_test

import (
	"testing"

	"mixedmem/internal/analysis/advise"
	"mixedmem/internal/analysis/framework"
	"mixedmem/internal/history"
)

func adviceOf(t *testing.T, dir string) *advise.Result {
	t.Helper()
	pkg, err := framework.LoadDir(dir, dir)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	return advise.Packages([]*framework.Package{pkg})
}

func labels(res *advise.Result) map[string]history.Label {
	out := make(map[string]history.Label)
	for _, a := range res.Advice {
		out[a.Loc] = a.Label
	}
	return out
}

func TestAdviseBasic(t *testing.T) {
	res := adviceOf(t, "../testdata/src/advise")
	got := labels(res)
	want := map[string]history.Label{
		"x":   history.LabelPRAM,   // phase-disciplined pipeline; locks elsewhere reject slow
		"tab": history.LabelCausal, // entry-disciplined under "m"
		"y":   history.LabelSC,     // written twice in one phase
		"ro":  history.LabelPRAM,   // read-only
		"n":   history.LabelPRAM,   // counter increments are not writes
		"tv":  history.LabelSC,     // Forall thread strands
	}
	if len(got) != len(want) {
		t.Errorf("advice covers %d locations, want %d: %v", len(got), len(want), got)
	}
	for loc, lbl := range want {
		if got[loc] != lbl {
			t.Errorf("advice for %q = %v, want %v", loc, got[loc], lbl)
		}
	}
	if res.LockOf["tab"] != "m" {
		t.Errorf("LockOf[tab] = %q, want %q", res.LockOf["tab"], "m")
	}
	if len(res.LockOf) != 1 {
		t.Errorf("LockOf = %v, want only tab", res.LockOf)
	}
	if pl := res.ProgramLabel(); pl != history.LabelSC {
		t.Errorf("ProgramLabel = %v, want LabelSC (strongest requirement wins)", pl)
	}
	for _, a := range res.Advice {
		if a.Rationale == "" {
			t.Errorf("advice for %q has no rationale", a.Loc)
		}
	}
}

func TestAdviseSlow(t *testing.T) {
	res := adviceOf(t, "../testdata/src/advise_slow")
	got := labels(res)
	want := map[string]history.Label{
		"left":  history.LabelSlow,
		"right": history.LabelSlow,
		"acc":   history.LabelSlow,
	}
	if len(got) != len(want) {
		t.Errorf("advice covers %d locations, want %d: %v", len(got), len(want), got)
	}
	for loc, lbl := range want {
		if got[loc] != lbl {
			t.Errorf("advice for %q = %v, want %v", loc, got[loc], lbl)
		}
	}
	if pl := res.ProgramLabel(); pl != history.LabelSlow {
		t.Errorf("ProgramLabel = %v, want LabelSlow (barrier-only phase discipline)", pl)
	}
}

func TestAdvisePoison(t *testing.T) {
	res := adviceOf(t, "../testdata/src/advise_poison")
	for _, a := range res.Advice {
		if a.Label != history.LabelSC {
			t.Errorf("advice for %q = %v, want LabelSC: a dynamic-location write poisons every claim", a.Loc, a.Label)
		}
	}
	got := labels(res)
	if _, ok := got["z"]; !ok {
		t.Fatalf("no advice for z: %v", got)
	}
}

func TestRank(t *testing.T) {
	if !(advise.Rank(history.LabelSlow) < advise.Rank(history.LabelPRAM) &&
		advise.Rank(history.LabelPRAM) < advise.Rank(history.LabelCausal) &&
		advise.Rank(history.LabelCausal) < advise.Rank(history.LabelSC)) {
		t.Errorf("Rank does not order Slow < PRAM < Causal < SC: %d %d %d %d",
			advise.Rank(history.LabelSlow), advise.Rank(history.LabelPRAM),
			advise.Rank(history.LabelCausal), advise.Rank(history.LabelSC))
	}
	if advise.Rank(history.LabelNone) != advise.Rank(history.LabelSC) {
		t.Errorf("legacy LabelNone should share the unconditioned top with LabelSC")
	}
}
