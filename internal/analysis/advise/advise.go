// Package advise is the static counterpart of check.Advise: the paper's
// compiler check (Section 4) run over source instead of a recorded history.
// For each constant location it recommends the weakest read label the
// corollaries justify, walking the lattice bottom-up — LabelSlow when the
// phase discipline provably holds and barriers are the program's only
// synchronization (Corollary 2's proof survives with slow reads because the
// slow-memory relation retains barrier edges), LabelPRAM when the phase
// discipline provably holds but awaits or locks appear (they lean on the
// per-sender FIFO slow memory drops), LabelCausal when the entry discipline
// provably holds (Corollary 1), and LabelSC otherwise — sequentially
// consistent reads are the lattice top and need no program condition.
//
// The engine is interprocedural: it scans only root units — functions
// nothing calls statically, or that escape as values or goroutine bodies —
// and virtually inlines every resolvable callee at its call sites, carrying
// the calling context down (barrier phase base, barrier sealing from the
// call site to the root's exits, loop membership, role guard, concrete lock
// state). A helper's write therefore lands in the root's phase numbering,
// and the old "accesses span multiple functions" rejection applies only to
// genuinely separate roots. Callees it cannot place — recursive cycles,
// over-deep chains — poison exactly the locations they access (their advice
// pins to LabelSC) instead of voiding the whole function.
//
// The engine stays deliberately more conservative than the per-function
// diagnostics of the mixedvet analyzers, because its claims must hold for
// every execution: the dynamic checker sees one history and flags what
// happened, while a static PRAM claim asserts that no history violates the
// phase condition. In particular:
//
//   - One write with a non-constant location anywhere in the scanned
//     program voids every claim (it could target any location); a
//     non-constant read voids claims for every written location.
//   - The phase structure must be statically unambiguous: every root must
//     reach each program point — callee barriers included — having passed
//     one statically-known number of barriers.
//   - A PRAM claim for a location requires all of its accesses under a
//     single root, every write guarded to one constant process role
//     (`if p.ID() == k`), writes out of loops, write/write and read/write
//     pairs in distinct phases, and a barrier between the last access and
//     every root exit (otherwise back-to-back invocations of the root can
//     place the last access and the next invocation's first access in the
//     same phase).
//   - Any call no analysis can see through (function values, interface
//     methods, the standard library, goroutine spawns) makes the enclosing
//     root opaque and voids claims for the locations it accesses.
//
// SPMD branch concurrency is why the engine reasons about phases and roles
// rather than control-flow paths: a write under `case 0:` and a read under
// `case 1:` share no path, yet execute in the same dynamic phase on
// different processes.
package advise

import (
	"fmt"
	"go/ast"
	"sort"

	"mixedmem/internal/analysis/callgraph"
	"mixedmem/internal/analysis/framework"
	"mixedmem/internal/analysis/mixedapi"
	"mixedmem/internal/analysis/summary"
	"mixedmem/internal/history"
)

// LocationAdvice is the static advice for one constant location.
type LocationAdvice struct {
	Loc string
	// Label is the weakest read label justified for every execution:
	// LabelSlow < LabelPRAM < LabelCausal < LabelSC in cost, the reverse
	// in strength.
	Label     history.Label
	Rationale string
}

// Result is the advice for a set of packages analyzed together.
type Result struct {
	// Advice holds one entry per constant location, sorted by location.
	Advice []LocationAdvice
	// LockOf records the lock association behind each LabelCausal entry —
	// the lock map a dynamic check.Advise of the same program would need.
	LockOf map[string]string
}

// Rank orders labels by strength for never-weaker comparisons: a static
// label is sound if its rank is >= the rank of the dynamic advice. The
// unconditioned labels (LabelSC and the legacy LabelNone) share the top.
func Rank(l history.Label) int {
	switch l {
	case history.LabelSlow:
		return 0
	case history.LabelPRAM:
		return 1
	case history.LabelCausal:
		return 2
	}
	return 3
}

// ProgramLabel folds per-location advice into a single program-level label,
// comparable with the program-level check.Advise: the strongest (most
// conservative) requirement of any location.
func (r *Result) ProgramLabel() history.Label {
	out := history.LabelSlow
	for _, a := range r.Advice {
		if Rank(a.Label) > Rank(out) {
			out = a.Label
		}
	}
	return out
}

// maxDepth bounds virtual inlining; chains deeper than this poison the
// callee's locations like a recursive cycle would.
const maxDepth = 32

// site is one constant-location access with its static context, root
// phase numbering and calling context composed in.
type site struct {
	call mixedapi.Call
	unit int // root scan index
	// role the access is guarded to (locally, or inherited from the call
	// chain); roleKnown false means it runs on every process.
	role      int
	roleKnown bool
	// phase is the barrier count at the site counted from the root's
	// entry; phaseOK false means the access is unreachable or the phase
	// structure is ambiguous somewhere on the chain.
	phase   int
	phaseOK bool
	// barrierSealed means every path from the access to the root's exits
	// crosses a full barrier (in the access's unit or after the call
	// returns).
	barrierSealed bool
	// inLoop means the access's block — or any call site on the chain —
	// lies on a control-flow cycle.
	inLoop bool
	// locks is the lock state immediately before the access.
	locks summary.LockState
}

// unitFacts is what the engine knows about one scanned root.
type unitFacts struct {
	thread bool // a Forall thread body
	opaque bool // contains (transitively) a call the engine cannot see through
}

// ctx is the calling context of one virtual-inline frame.
type ctx struct {
	unit        int
	phaseBase   int
	ok          bool // phase numbering valid down the chain
	sealedAfter bool // a barrier separates the call's return from root exit
	inLoop      bool
	role        int
	roleKnown   bool
	locks       summary.LockState
	depth       int
}

// Packages runs the engine over packages loaded together as one program.
// The named packages are the judged program: their root units — and units
// whose only callers live outside the judged set, which the engine must
// treat as entered from unknown contexts — are scanned, and everything
// statically reachable from them (in any package of the load) is inlined.
func Packages(pkgs []*framework.Package) *Result {
	eng := &engine{
		sites:    make(map[string][]site),
		poisoned: make(map[string]string),
		inPkgs:   make(map[*framework.Package]bool),
	}
	if len(pkgs) > 0 {
		eng.set = summary.Of(pkgs[0].Prog)
	}
	for _, pkg := range pkgs {
		eng.inPkgs[pkg] = true
	}
	for _, pkg := range pkgs {
		eng.scanPackage(pkg)
	}
	return eng.decide()
}

type engine struct {
	set            *summary.Set
	inPkgs         map[*framework.Package]bool
	units          []unitFacts
	sites          map[string][]site // constant location -> accesses
	poisoned       map[string]string // location -> why it cannot be placed
	dynamicWrites  bool
	dynamicReads   bool
	syncCalls      bool // an await or lock operation appears somewhere
	phasesCoherent bool // true unless some scanned phase structure is ambiguous
	scanned        bool
}

func (e *engine) scanPackage(pkg *framework.Package) {
	if !e.scanned {
		e.scanned = true
		e.phasesCoherent = true
	}
	threads := mixedapi.ThreadBodies(pkg.Info, pkg.Files)
	for _, unit := range mixedapi.Units(pkg.Files) {
		node := e.set.Node(unit.Body)
		if node != nil && !node.IsRoot() && e.calledFromJudged(node) {
			// Reached through its callers: its accesses are inlined at
			// every call site instead of scanned out of context.
			continue
		}
		sum := e.set.Summary(unit.Body)
		if sum == nil {
			continue
		}
		id := len(e.units)
		e.units = append(e.units, unitFacts{
			thread: threads[unit.Body],
			opaque: sum.Opaque,
		})
		// Program-global properties come from the root's transitive
		// summary: one dynamic-location write anywhere voids every claim.
		e.dynamicWrites = e.dynamicWrites || sum.DynamicWrite
		e.dynamicReads = e.dynamicReads || sum.DynamicRead
		e.syncCalls = e.syncCalls || sum.SyncOps
		e.scanUnit(unit.Body, ctx{
			unit:  id,
			ok:    true,
			locks: e.set.LockEntry(unit.Body),
		})
	}
}

// calledFromJudged reports whether some caller belongs to the judged
// package set. A unit whose callers all live outside it (an apps solver
// invoked only by a bench harness, say) must still be judged, entered from
// an unknown context, or its accesses would silently drop out.
func (e *engine) calledFromJudged(node *callgraph.Node) bool {
	for _, c := range node.Callers {
		if e.inPkgs[c.Pkg] {
			return true
		}
	}
	return false
}

// scanUnit records the unit's access sites under the given context and
// descends into resolvable callees.
func (e *engine) scanUnit(body *ast.BlockStmt, c ctx) {
	sh := e.set.Shape(body)
	if sh == nil {
		return
	}
	if !sh.Coherent {
		e.phasesCoherent = false
	}
	locksAt := func(expr *ast.CallExpr) summary.LockState {
		if c.depth == 0 {
			// Root frame: the memoized concrete flow is the most precise.
			return e.set.LockFlow(body).At(expr)
		}
		st := c.locks.Clone()
		for k, eff := range e.set.TransferBefore(body, expr) {
			summary.ApplyEffect(st, k, eff)
		}
		return st
	}
	for _, blk := range sh.Graph.Blocks {
		phase, reached := sh.Phase[blk], sh.Reached[blk]
		for _, ev := range sh.Events[blk] {
			if ev.IsOp {
				op := ev.Op
				switch {
				case op.Op == mixedapi.OpBarrier:
					phase++
					continue
				case (op.Op == mixedapi.OpWrite || op.Op.IsRead()) && op.Const:
				default:
					continue
				}
				role, roleKnown := sh.Roles[op.Expr]
				if !roleKnown {
					role, roleKnown = c.role, c.roleKnown
				}
				e.sites[op.Name] = append(e.sites[op.Name], site{
					call:          op,
					unit:          c.unit,
					role:          role,
					roleKnown:     roleKnown,
					phase:         c.phaseBase + phase,
					phaseOK:       c.ok && reached && sh.Coherent,
					barrierSealed: sh.Sealed[op.Expr] || c.sealedAfter,
					inLoop:        c.inLoop || sh.Loops[blk],
					locks:         locksAt(op.Expr),
				})
				continue
			}
			if ev.Spawned || ev.Callee == nil {
				// Spawned callees are roots of their own; unresolved calls
				// are already folded into the root's Opaque flag.
				continue
			}
			cs := e.set.Summary(ev.Callee.Body)
			if cs == nil {
				continue
			}
			if ev.Callee.Recursive || c.depth >= maxDepth {
				// The callee's accesses cannot be placed in the root's
				// phase numbering: pin its locations to SC. Its own
				// opacity or dynamic accesses void the whole root.
				if cs.Opaque || cs.DynamicWrite || cs.DynamicRead {
					e.units[c.unit].opaque = true
				}
				why := fmt.Sprintf("accessed in %s, which the engine cannot place statically (recursive or too deep)", ev.Callee.Name())
				for loc := range cs.AllW {
					e.poison(loc, why)
				}
				for loc := range cs.AllR {
					e.poison(loc, why)
				}
			} else {
				role, roleKnown := sh.Roles[ev.Call]
				if !roleKnown {
					role, roleKnown = c.role, c.roleKnown
				}
				e.scanUnit(ev.Callee.Body, ctx{
					unit:        c.unit,
					phaseBase:   c.phaseBase + phase,
					ok:          c.ok && reached && sh.Coherent,
					sealedAfter: sh.Sealed[ev.Call] || c.sealedAfter,
					inLoop:      c.inLoop || sh.Loops[blk],
					role:        role,
					roleKnown:   roleKnown,
					locks:       locksAt(ev.Call),
					depth:       c.depth + 1,
				})
			}
			if cs.DeltaExact {
				phase += cs.Delta
			}
		}
	}
}

func (e *engine) poison(loc, why string) {
	if _, ok := e.poisoned[loc]; !ok {
		e.poisoned[loc] = why
	}
}

func (e *engine) decide() *Result {
	res := &Result{LockOf: make(map[string]string)}
	seen := make(map[string]bool, len(e.sites)+len(e.poisoned))
	locs := make([]string, 0, len(e.sites)+len(e.poisoned))
	for loc := range e.sites {
		if !seen[loc] {
			seen[loc] = true
			locs = append(locs, loc)
		}
	}
	for loc := range e.poisoned {
		if !seen[loc] {
			seen[loc] = true
			locs = append(locs, loc)
		}
	}
	sort.Strings(locs)
	for _, loc := range locs {
		res.Advice = append(res.Advice, e.adviseLoc(loc, res.LockOf))
	}
	return res
}

func (e *engine) adviseLoc(loc string, lockOf map[string]string) LocationAdvice {
	if why, ok := e.poisoned[loc]; ok {
		return LocationAdvice{loc, history.LabelSC, why}
	}
	sites := e.sites[loc]
	var writes, reads []site
	for _, s := range sites {
		if s.call.Op == mixedapi.OpWrite {
			writes = append(writes, s)
		} else {
			reads = append(reads, s)
		}
	}
	if e.dynamicWrites {
		return LocationAdvice{loc, history.LabelSC,
			"a write with a non-constant location elsewhere in the program could target this location in any phase"}
	}
	if reason := e.pramReason(loc, writes, reads); reason == "" {
		if !e.syncCalls {
			return LocationAdvice{loc, history.LabelSlow,
				"phase discipline holds and barriers are the only synchronization: Corollary 2 extends to slow reads"}
		}
		return LocationAdvice{loc, history.LabelPRAM,
			"phase discipline holds on every execution: Corollary 2 permits PRAM reads (awaits or locks elsewhere rely on per-sender FIFO, rejecting slow)"}
	} else if lock, ok := e.entryHolds(writes, reads); ok {
		lockOf[loc] = lock
		return LocationAdvice{loc, history.LabelCausal, fmt.Sprintf(
			"entry discipline holds under lock %q: Corollary 1 permits causal reads (PRAM rejected: %s)",
			lock, reason)}
	} else {
		return LocationAdvice{loc, history.LabelSC, fmt.Sprintf(
			"neither corollary provable, only sequentially consistent reads are unconditional (PRAM rejected: %s)", reason)}
	}
}

// pramReason checks the static phase discipline for one location; it
// returns "" when PRAM reads are justified for every execution.
func (e *engine) pramReason(loc string, writes, reads []site) string {
	if len(writes) == 0 {
		// Never written (counter increments are not writes): reads alone
		// cannot violate the phase condition, but the program's phase
		// structure must still be well defined for Corollary 2 to speak.
		if e.dynamicReads {
			return "" // a dynamic-location read of a never-written location is still just a read
		}
		if !e.phasesCoherent {
			return "the program's barrier structure is statically ambiguous"
		}
		return ""
	}
	if e.dynamicReads {
		return "a read with a non-constant location elsewhere in the program could read this location in a write phase"
	}
	if !e.phasesCoherent {
		return "the program's barrier structure is statically ambiguous"
	}
	unit := writes[0].unit
	all := append(append([]site(nil), writes...), reads...)
	for _, s := range all {
		if s.unit != unit {
			return "accesses span multiple root functions, so their phases cannot be compared"
		}
		if !s.phaseOK {
			return "an access's barrier phase is statically unknown"
		}
		if !s.barrierSealed {
			return "an access can reach a function exit without an intervening barrier, so repeated invocations may share a phase"
		}
	}
	if e.units[unit].thread {
		return "the accesses run on Forall thread strands, outside the barrier phase structure"
	}
	if e.units[unit].opaque {
		return "the function calls code the engine cannot see through"
	}
	for i, w := range writes {
		if !w.roleKnown {
			return fmt.Sprintf("a write of %q is not guarded to a single process role, so every process writes it in that phase", loc)
		}
		if w.inLoop {
			return fmt.Sprintf("a write of %q sits in a loop and can repeat within one phase", loc)
		}
		for _, w2 := range writes[i+1:] {
			if w.phase == w2.phase {
				return fmt.Sprintf("%q is written twice in phase %d", loc, w.phase)
			}
		}
		for _, r := range reads {
			if w.phase == r.phase {
				return fmt.Sprintf("%q is both read and written in phase %d", loc, w.phase)
			}
		}
	}
	return ""
}

// entryHolds checks the static entry discipline: every write under the
// write lock of one common lock, every read under that lock in some mode,
// in roots the engine can fully see.
func (e *engine) entryHolds(writes, reads []site) (string, bool) {
	if len(writes) == 0 && len(reads) == 0 {
		return "", false
	}
	if e.dynamicReads {
		// A dynamic-location read could read this location without its lock.
		return "", false
	}
	var lock string
	for i, w := range writes {
		if e.units[w.unit].opaque {
			return "", false // an unseen callee could release the lock
		}
		held := writeHeldLocks(w.locks)
		if len(held) != 1 {
			return "", false
		}
		if i == 0 {
			lock = held[0]
		} else if held[0] != lock {
			return "", false
		}
	}
	if lock == "" {
		return "", false
	}
	for _, r := range reads {
		if e.units[r.unit].opaque {
			return "", false
		}
		switch r.locks[lock] {
		case summary.ReadHeld, summary.WriteHeld:
		default:
			return "", false
		}
	}
	return lock, true
}

func writeHeldLocks(s summary.LockState) []string {
	var out []string
	for name, mode := range s {
		if mode == summary.WriteHeld {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}
