// Package advise is the static counterpart of check.Advise: the paper's
// compiler check (Section 4) run over source instead of a recorded history.
// For each constant location it recommends the weakest read label the
// corollaries justify, walking the lattice bottom-up — LabelSlow when the
// phase discipline provably holds and barriers are the program's only
// synchronization (Corollary 2's proof survives with slow reads because the
// slow-memory relation retains barrier edges), LabelPRAM when the phase
// discipline provably holds but awaits or locks appear (they lean on the
// per-sender FIFO slow memory drops), LabelCausal when the entry discipline
// provably holds (Corollary 1), and LabelSC otherwise — sequentially
// consistent reads are the lattice top and need no program condition.
//
// The engine is deliberately much more conservative than the per-function
// diagnostics of the mixedvet analyzers, because its claims must hold for
// every execution: the dynamic checker sees one history and flags what
// happened, while a static PRAM claim asserts that no history violates the
// phase condition. In particular:
//
//   - One write with a non-constant location anywhere in the program voids
//     every claim (it could target any location); a non-constant read voids
//     claims for every written location.
//   - The phase structure must be statically unambiguous: every function
//     must reach each program point having passed one statically-known
//     number of barriers (loops containing barriers, or barriers on one arm
//     of a branch, fail this).
//   - A PRAM claim for a location requires all of its accesses in a single
//     function, every write guarded to one constant process role
//     (`if p.ID() == k`), writes out of loops, write/write and read/write
//     pairs in distinct phases, and a barrier between the last access and
//     every function exit (otherwise back-to-back invocations of the
//     function can place the last access and the next invocation's first
//     access in the same phase).
//   - Any call the engine cannot see through (module functions, function
//     values, the standard library) makes the enclosing function opaque and
//     voids claims for the locations it accesses.
//
// SPMD branch concurrency is why the engine reasons about phases and roles
// rather than control-flow paths: a write under `case 0:` and a read under
// `case 1:` share no path, yet execute in the same dynamic phase on
// different processes.
package advise

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"

	"mixedmem/internal/analysis/cfg"
	"mixedmem/internal/analysis/framework"
	"mixedmem/internal/analysis/lockdiscipline"
	"mixedmem/internal/analysis/mixedapi"
	"mixedmem/internal/history"
)

// LocationAdvice is the static advice for one constant location.
type LocationAdvice struct {
	Loc string
	// Label is the weakest read label justified for every execution:
	// LabelSlow < LabelPRAM < LabelCausal < LabelSC in cost, the reverse
	// in strength.
	Label     history.Label
	Rationale string
}

// Result is the advice for a set of packages analyzed together.
type Result struct {
	// Advice holds one entry per constant location, sorted by location.
	Advice []LocationAdvice
	// LockOf records the lock association behind each LabelCausal entry —
	// the lock map a dynamic check.Advise of the same program would need.
	LockOf map[string]string
}

// Rank orders labels by strength for never-weaker comparisons: a static
// label is sound if its rank is >= the rank of the dynamic advice. The
// unconditioned labels (LabelSC and the legacy LabelNone) share the top.
func Rank(l history.Label) int {
	switch l {
	case history.LabelSlow:
		return 0
	case history.LabelPRAM:
		return 1
	case history.LabelCausal:
		return 2
	}
	return 3
}

// ProgramLabel folds per-location advice into a single program-level label,
// comparable with the program-level check.Advise: the strongest (most
// conservative) requirement of any location.
func (r *Result) ProgramLabel() history.Label {
	out := history.LabelSlow
	for _, a := range r.Advice {
		if Rank(a.Label) > Rank(out) {
			out = a.Label
		}
	}
	return out
}

// site is one constant-location access with its static context.
type site struct {
	call mixedapi.Call
	unit int // global unit index
	// role the access is guarded to; roleKnown false means it runs on
	// every process.
	role      int
	roleKnown bool
	// phase is the barrier count at the site; phaseOK false means the
	// access is unreachable or the unit's phase structure is ambiguous.
	phase   int
	phaseOK bool
	// barrierSealed means every path from the access to the unit's exit
	// crosses a full barrier.
	barrierSealed bool
	// inLoop means the access's block lies on a control-flow cycle.
	inLoop bool
	// locks is the lock state immediately before the access.
	locks lockdiscipline.State
}

// unitFacts is what the engine knows about one function unit.
type unitFacts struct {
	thread        bool // a Forall thread body
	opaque        bool // contains a call the engine cannot see through
	phaseCoherent bool
}

// Packages runs the engine over packages loaded together as one program.
func Packages(pkgs []*framework.Package) *Result {
	eng := &engine{
		sites: make(map[string][]site),
	}
	for _, pkg := range pkgs {
		eng.scanPackage(pkg)
	}
	return eng.decide()
}

type engine struct {
	units          []unitFacts
	sites          map[string][]site // constant location -> accesses
	dynamicWrites  bool
	dynamicReads   bool
	syncCalls      bool // an await or lock operation appears somewhere
	phasesCoherent bool // true unless some unit's phase structure is ambiguous
	scanned        bool
}

func (e *engine) scanPackage(pkg *framework.Package) {
	if !e.scanned {
		e.scanned = true
		e.phasesCoherent = true
	}
	pass := &framework.Pass{
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
	}
	threads := mixedapi.ThreadBodies(pkg.Info, pkg.Files)
	for _, unit := range mixedapi.Units(pkg.Files) {
		id := len(e.units)
		facts := unitFacts{
			thread: threads[unit.Body],
			opaque: hasOpaqueCalls(pkg.Info, unit.Body),
		}
		g := cfg.New(unit.Body)
		ph := phasesOf(pkg.Info, g)
		facts.phaseCoherent = ph.coherent
		if !ph.coherent {
			e.phasesCoherent = false
		}
		roles := mixedapi.RoleGuards(pkg.Info, unit.Body)
		flow := lockdiscipline.Analyze(pass, unit)
		sealed := sealedSites(pkg.Info, g)
		loops := cycleBlocks(g)

		for _, blk := range g.Blocks {
			phase, reached := ph.in[blk], ph.reached[blk]
			for _, node := range blk.Stmts {
				for _, c := range mixedapi.CallsIn(pkg.Info, node) {
					switch c.Op {
					case mixedapi.OpAwaitCausal, mixedapi.OpAwaitPRAM,
						mixedapi.OpRLock, mixedapi.OpRUnlock,
						mixedapi.OpWLock, mixedapi.OpWUnlock:
						// Any await or lock op anywhere keeps the advice at
						// PRAM or above, mirroring check.SlowConsistent.
						e.syncCalls = true
					}
					switch {
					case c.Op == mixedapi.OpBarrier:
						phase++
						continue
					case c.Op == mixedapi.OpWrite && !c.Const:
						e.dynamicWrites = true
						continue
					case c.Op.IsRead() && !c.Const:
						e.dynamicReads = true
						continue
					case (c.Op == mixedapi.OpWrite || c.Op.IsRead()) && c.Const:
					default:
						continue
					}
					role, roleKnown := roles[c.Expr]
					e.sites[c.Name] = append(e.sites[c.Name], site{
						call:          c,
						unit:          id,
						role:          role,
						roleKnown:     roleKnown,
						phase:         phase,
						phaseOK:       reached && ph.coherent,
						barrierSealed: sealed[c.Expr],
						inLoop:        loops[blk],
						locks:         flow.At(c.Expr),
					})
				}
			}
		}
		e.units = append(e.units, facts)
	}
}

func (e *engine) decide() *Result {
	res := &Result{LockOf: make(map[string]string)}
	locs := make([]string, 0, len(e.sites))
	for loc := range e.sites {
		locs = append(locs, loc)
	}
	sort.Strings(locs)
	for _, loc := range locs {
		res.Advice = append(res.Advice, e.adviseLoc(loc, res.LockOf))
	}
	return res
}

func (e *engine) adviseLoc(loc string, lockOf map[string]string) LocationAdvice {
	sites := e.sites[loc]
	var writes, reads []site
	for _, s := range sites {
		if s.call.Op == mixedapi.OpWrite {
			writes = append(writes, s)
		} else {
			reads = append(reads, s)
		}
	}
	if e.dynamicWrites {
		return LocationAdvice{loc, history.LabelSC,
			"a write with a non-constant location elsewhere in the program could target this location in any phase"}
	}
	if reason := e.pramReason(loc, writes, reads); reason == "" {
		if !e.syncCalls {
			return LocationAdvice{loc, history.LabelSlow,
				"phase discipline holds and barriers are the only synchronization: Corollary 2 extends to slow reads"}
		}
		return LocationAdvice{loc, history.LabelPRAM,
			"phase discipline holds on every execution: Corollary 2 permits PRAM reads (awaits or locks elsewhere rely on per-sender FIFO, rejecting slow)"}
	} else if lock, ok := e.entryHolds(writes, reads); ok {
		lockOf[loc] = lock
		return LocationAdvice{loc, history.LabelCausal, fmt.Sprintf(
			"entry discipline holds under lock %q: Corollary 1 permits causal reads (PRAM rejected: %s)",
			lock, reason)}
	} else {
		return LocationAdvice{loc, history.LabelSC, fmt.Sprintf(
			"neither corollary provable, only sequentially consistent reads are unconditional (PRAM rejected: %s)", reason)}
	}
}

// pramReason checks the static phase discipline for one location; it
// returns "" when PRAM reads are justified for every execution.
func (e *engine) pramReason(loc string, writes, reads []site) string {
	if len(writes) == 0 {
		// Never written (counter increments are not writes): reads alone
		// cannot violate the phase condition, but the program's phase
		// structure must still be well defined for Corollary 2 to speak.
		if e.dynamicReads {
			return "" // a dynamic-location read of a never-written location is still just a read
		}
		if !e.phasesCoherent {
			return "the program's barrier structure is statically ambiguous"
		}
		return ""
	}
	if e.dynamicReads {
		return "a read with a non-constant location elsewhere in the program could read this location in a write phase"
	}
	if !e.phasesCoherent {
		return "the program's barrier structure is statically ambiguous"
	}
	unit := writes[0].unit
	all := append(append([]site(nil), writes...), reads...)
	for _, s := range all {
		if s.unit != unit {
			return "accesses span multiple functions, so their phases cannot be compared"
		}
		if !s.phaseOK {
			return "an access's barrier phase is statically unknown"
		}
		if !s.barrierSealed {
			return "an access can reach a function exit without an intervening barrier, so repeated invocations may share a phase"
		}
	}
	if e.units[unit].thread {
		return "the accesses run on Forall thread strands, outside the barrier phase structure"
	}
	if e.units[unit].opaque {
		return "the function calls code the engine cannot see through"
	}
	for i, w := range writes {
		if !w.roleKnown {
			return fmt.Sprintf("a write of %q is not guarded to a single process role, so every process writes it in that phase", loc)
		}
		if w.inLoop {
			return fmt.Sprintf("a write of %q sits in a loop and can repeat within one phase", loc)
		}
		for _, w2 := range writes[i+1:] {
			if w.phase == w2.phase {
				return fmt.Sprintf("%q is written twice in phase %d", loc, w.phase)
			}
		}
		for _, r := range reads {
			if w.phase == r.phase {
				return fmt.Sprintf("%q is both read and written in phase %d", loc, w.phase)
			}
		}
	}
	return ""
}

// entryHolds checks the static entry discipline: every write under the
// write lock of one common lock, every read under that lock in some mode,
// in units the engine can fully see.
func (e *engine) entryHolds(writes, reads []site) (string, bool) {
	if len(writes) == 0 && len(reads) == 0 {
		return "", false
	}
	if e.dynamicReads {
		// A dynamic-location read could read this location without its lock.
		return "", false
	}
	var lock string
	for i, w := range writes {
		if e.units[w.unit].opaque {
			return "", false // an unseen callee could release the lock
		}
		held := writeHeldLocks(w.locks)
		if len(held) != 1 {
			return "", false
		}
		if i == 0 {
			lock = held[0]
		} else if held[0] != lock {
			return "", false
		}
	}
	if lock == "" {
		return "", false
	}
	for _, r := range reads {
		if e.units[r.unit].opaque {
			return "", false
		}
		switch r.locks[lock] {
		case lockdiscipline.ReadHeld, lockdiscipline.WriteHeld:
		default:
			return "", false
		}
	}
	return lock, true
}

func writeHeldLocks(s lockdiscipline.State) []string {
	var out []string
	for name, mode := range s {
		if mode == lockdiscipline.WriteHeld {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// phaseFlow is the singleton barrier-count dataflow of one unit.
type phaseFlow struct {
	in       map[*cfg.Block]int
	reached  map[*cfg.Block]bool
	coherent bool
}

func phasesOf(info *types.Info, g *cfg.Graph) *phaseFlow {
	ph := &phaseFlow{
		in:       make(map[*cfg.Block]int),
		reached:  make(map[*cfg.Block]bool),
		coherent: true,
	}
	ph.reached[g.Entry] = true
	work := []*cfg.Block{g.Entry}
	for len(work) > 0 && ph.coherent {
		blk := work[len(work)-1]
		work = work[:len(work)-1]
		out := ph.in[blk] + barrierCount(info, blk)
		for _, succ := range blk.Succs {
			if !ph.reached[succ] {
				ph.reached[succ] = true
				ph.in[succ] = out
				work = append(work, succ)
			} else if ph.in[succ] != out {
				// Two paths disagree on the barrier count: a loop over a
				// barrier, or a barrier on one arm of a branch. The phase
				// structure is then not a static quantity.
				ph.coherent = false
			}
		}
	}
	return ph
}

func barrierCount(info *types.Info, blk *cfg.Block) int {
	n := 0
	for _, node := range blk.Stmts {
		for _, c := range mixedapi.CallsIn(info, node) {
			if c.Op == mixedapi.OpBarrier {
				n++
			}
		}
	}
	return n
}

// sealedSites computes, per recognized operation, whether every path from
// it to the unit exit crosses a full barrier.
func sealedSites(info *types.Info, g *cfg.Graph) map[*ast.CallExpr]bool {
	// escapes[b]: control can get from the start of b to the exit without
	// passing a barrier.
	escapes := make(map[*cfg.Block]bool)
	hasBarrier := make(map[*cfg.Block]bool)
	for _, blk := range g.Blocks {
		hasBarrier[blk] = barrierCount(info, blk) > 0
	}
	escapes[g.Exit] = true
	for changed := true; changed; {
		changed = false
		for _, blk := range g.Blocks {
			if escapes[blk] || hasBarrier[blk] {
				continue
			}
			for _, succ := range blk.Succs {
				if escapes[succ] {
					escapes[blk] = true
					changed = true
					break
				}
			}
		}
	}
	out := make(map[*ast.CallExpr]bool)
	for _, blk := range g.Blocks {
		// Walk the block backwards: a site is sealed if a barrier follows it
		// within the block, or no barrier-free escape exists from here on.
		var calls []mixedapi.Call
		for _, node := range blk.Stmts {
			calls = append(calls, mixedapi.CallsIn(info, node)...)
		}
		suffixEscapes := false
		for _, succ := range blk.Succs {
			if escapes[succ] {
				suffixEscapes = true
				break
			}
		}
		if len(blk.Succs) == 0 && blk != g.Exit {
			// A dead-end block (unreachable continuation): conservatively
			// treat as escaping.
			suffixEscapes = true
		}
		for i := len(calls) - 1; i >= 0; i-- {
			c := calls[i]
			if c.Op == mixedapi.OpBarrier {
				suffixEscapes = false
				continue
			}
			out[c.Expr] = !suffixEscapes
		}
	}
	return out
}

// cycleBlocks marks blocks that lie on a control-flow cycle: b is on a
// cycle iff b is reachable from itself. Plain per-block DFS — memoizing
// reachability across blocks caches partial sets wherever the recursion is
// broken on a back edge, which silently missed blocks on branches nested
// inside loops, and a write wrongly classified as loop-free is an
// unsoundness in the claims this feeds.
func cycleBlocks(g *cfg.Graph) map[*cfg.Block]bool {
	out := make(map[*cfg.Block]bool)
	for _, start := range g.Blocks {
		seen := make(map[*cfg.Block]bool)
		stack := append([]*cfg.Block(nil), start.Succs...)
		for len(stack) > 0 {
			b := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if b == start {
				out[start] = true
				break
			}
			if seen[b] {
				continue
			}
			seen[b] = true
			stack = append(stack, b.Succs...)
		}
	}
	return out
}

// hasOpaqueCalls reports whether the body contains a call the engine cannot
// model: anything but recognized operations, other core-package functions,
// type conversions, and builtins.
func hasOpaqueCalls(info *types.Info, body *ast.BlockStmt) bool {
	opaque := false
	ast.Inspect(body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok && fl.Body != body {
			return false // separate unit
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if _, ok := mixedapi.Classify(info, call); ok {
			return true
		}
		if isTransparentCall(info, call) {
			return true
		}
		opaque = true
		return true
	})
	return opaque
}

func isTransparentCall(info *types.Info, call *ast.CallExpr) bool {
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return true // conversion
	}
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	default:
		return false
	}
	switch obj := obj.(type) {
	case *types.Builtin:
		return true
	case *types.Func:
		// Unclassified core functions (ID, N, Forall, stats accessors) do
		// not touch tracked memory or the phase/lock structure directly.
		return obj.Pkg() != nil && isCore(obj.Pkg().Path())
	}
	return false
}

func isCore(path string) bool {
	return len(path) >= len(mixedapi.CorePathSuffix) &&
		path[len(path)-len(mixedapi.CorePathSuffix):] == mixedapi.CorePathSuffix
}
