package mixedvet_test

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"mixedmem/internal/analysis/mixedvet"
)

var update = flag.Bool("update", false, "rewrite the golden snapshot from current analyzer output")

// TestGoldenSnapshot pins the exact text output of the whole suite — every
// analyzer plus the advice engine — over every fixture directory. Any
// change to a diagnostic message, a position, an advice label, or a
// rationale shows up as a golden diff, reviewed rather than discovered in
// CI of a downstream change. Regenerate deliberately with:
//
//	go test ./internal/analysis/mixedvet -run Golden -update
func TestGoldenSnapshot(t *testing.T) {
	src, err := filepath.Abs("../testdata/src")
	if err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	var dirs []string
	for _, e := range ents {
		if e.IsDir() {
			dirs = append(dirs, e.Name())
		}
	}
	sort.Strings(dirs)

	var buf bytes.Buffer
	for _, d := range dirs {
		rep, err := mixedvet.Run(src, []string{"./" + d}, mixedvet.Analyzers, true)
		if err != nil {
			t.Fatalf("%s: %v", d, err)
		}
		fmt.Fprintf(&buf, "== %s\n", d)
		for _, f := range rep.Findings {
			// Positions are absolute; relativize both the finding's own
			// position and any positions embedded in its message.
			line := fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
			fmt.Fprintln(&buf, strings.ReplaceAll(line, src+string(filepath.Separator), ""))
		}
		if rep.Suppressed > 0 {
			fmt.Fprintf(&buf, "suppressed: %d\n", rep.Suppressed)
		}
		for _, a := range rep.Advice.Advice {
			fmt.Fprintf(&buf, "advise: %-12s %-6s %s\n", a.Loc, a.Label, a.Rationale)
		}
		fmt.Fprintf(&buf, "advise: program label: %s\n", rep.Advice.ProgramLabel())
	}

	golden := filepath.Join("testdata", "golden.txt")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, buf.Len())
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create it): %v", err)
	}
	if !bytes.Equal(want, buf.Bytes()) {
		t.Errorf("analyzer output diverged from the golden snapshot.\n--- got ---\n%s\n--- want ---\n%s\nIf the change is intentional, regenerate with -update.",
			buf.String(), want)
	}
}
