package mixedvet_test

import (
	"path/filepath"
	"strings"
	"testing"

	"mixedmem/internal/analysis/mixedvet"
	"mixedmem/internal/history"
)

// TestCrossPackageLabelMerge checks the driver-level pass no single package
// sees: xlabel_a reads "shared-cfg" PRAM-labeled, xlabel_b causally.
func TestCrossPackageLabelMerge(t *testing.T) {
	dir, err := filepath.Abs("../testdata/src")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := mixedvet.Run(dir, []string{"./xlabel_a", "./xlabel_b"}, mixedvet.Analyzers, false)
	if err != nil {
		t.Fatal(err)
	}
	var merged []string
	for _, f := range rep.Findings {
		if f.Analyzer != "labelconsistency" {
			t.Errorf("unexpected %s finding: %s", f.Analyzer, f)
			continue
		}
		merged = append(merged, f.Message)
	}
	if len(merged) != 1 {
		t.Fatalf("got %d labelconsistency findings, want 1 cross-package merge: %v", len(merged), merged)
	}
	if !strings.Contains(merged[0], `"shared-cfg"`) || !strings.Contains(merged[0], "across packages") {
		t.Errorf("merged finding does not name the cross-package mix: %s", merged[0])
	}
}

// TestSelfApplicationClean is the tentpole acceptance check: the suite runs
// clean over the repo's own example programs and apps.
func TestSelfApplicationClean(t *testing.T) {
	root, err := filepath.Abs("../../..")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := mixedvet.Run(root, []string{"./examples/...", "./internal/apps/..."}, mixedvet.Analyzers, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range rep.Findings {
		t.Errorf("mixedvet finding in repo code: %s", f)
	}
	if rep.Advice == nil {
		t.Fatal("no advice computed")
	}
	// The examples write through computed location names (per-process slots,
	// matrix rows), which statically could target anything — the engine must
	// refuse every claim rather than guess, falling to the lattice top.
	for _, a := range rep.Advice.Advice {
		if a.Label != history.LabelSC {
			t.Errorf("advice for %q = %v; examples have dynamic-location writes, so no static claim is sound", a.Loc, a.Label)
		}
	}
}
