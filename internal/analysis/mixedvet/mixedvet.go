// Package mixedvet drives the analyzer suite over a set of packages and
// aggregates the findings, including the two program-wide passes no single
// package sees: the cross-package label-consistency merge and the static
// advice engine.
package mixedvet

import (
	"fmt"
	"go/token"
	"sort"

	"mixedmem/internal/analysis/advise"
	"mixedmem/internal/analysis/entrydiscipline"
	"mixedmem/internal/analysis/framework"
	"mixedmem/internal/analysis/labelconsistency"
	"mixedmem/internal/analysis/lockdiscipline"
	"mixedmem/internal/analysis/phasediscipline"
	"mixedmem/internal/analysis/scopeusage"
)

// Analyzers is the full mixedvet suite, in reporting order.
var Analyzers = []*framework.Analyzer{
	lockdiscipline.Analyzer,
	labelconsistency.Analyzer,
	phasediscipline.Analyzer,
	entrydiscipline.Analyzer,
	scopeusage.Analyzer,
}

// Finding is one diagnostic, located and attributed.
type Finding struct {
	Analyzer string
	Package  string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// Report is the outcome of one mixedvet run.
type Report struct {
	Findings []Finding
	// Advice is the static advice engine's per-location result; nil unless
	// requested.
	Advice *advise.Result
}

// Run loads the packages matched by patterns (rooted at dir), applies every
// analyzer to each, and merges the program-wide passes. With withAdvise set
// it also runs the static advice engine over all loaded packages together.
func Run(dir string, patterns []string, analyzers []*framework.Analyzer, withAdvise bool) (*Report, error) {
	pkgs, err := framework.Load(dir, patterns)
	if err != nil {
		return nil, err
	}
	if len(pkgs) == 0 {
		return nil, fmt.Errorf("mixedvet: no packages match %v", patterns)
	}
	rep := &Report{}
	// All packages of one Load share a FileSet, so cross-package positions
	// resolve through any of them.
	fset := pkgs[0].Fset

	var allSites []labelconsistency.Site
	intraMixed := make(map[string]bool)
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			got, err := framework.RunAnalyzer(a, pkg)
			if err != nil {
				return nil, fmt.Errorf("mixedvet: %s on %s: %w", a.Name, pkg.Path, err)
			}
			for _, d := range got.Diagnostics {
				rep.Findings = append(rep.Findings, Finding{
					Analyzer: a.Name,
					Package:  pkg.Path,
					Pos:      fset.Position(d.Pos),
					Message:  d.Message,
				})
			}
			if res, ok := got.Result.(*labelconsistency.Result); ok {
				allSites = append(allSites, res.Sites...)
				// Locations already flagged within this package stay flagged
				// there; the merge below only adds mixes no package sees alone.
				for _, pair := range labelconsistency.Mixed(res.Sites) {
					intraMixed[pair[0].Loc] = true
				}
			}
		}
	}
	for _, pair := range labelconsistency.Mixed(allSites) {
		if intraMixed[pair[0].Loc] {
			continue
		}
		rep.Findings = append(rep.Findings, Finding{
			Analyzer: labelconsistency.Analyzer.Name,
			Pos:      fset.Position(pair[0].Pos),
			Message: fmt.Sprintf(
				"location %q is read with mixed labels across packages: %s here is PRAM-labeled, but %s reads it causally — pick one label per location",
				pair[0].Loc, pair[0].Descr, fset.Position(pair[1].Pos)),
		})
	}
	sort.Slice(rep.Findings, func(i, j int) bool {
		a, b := rep.Findings[i].Pos, rep.Findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return rep.Findings[i].Message < rep.Findings[j].Message
	})
	if withAdvise {
		rep.Advice = advise.Packages(pkgs)
	}
	return rep, nil
}
