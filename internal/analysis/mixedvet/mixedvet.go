// Package mixedvet drives the analyzer suite over a set of packages and
// aggregates the findings, including the two program-wide passes no single
// package sees: the cross-package label-consistency merge and the static
// advice engine.
package mixedvet

import (
	"encoding/json"
	"fmt"
	"go/token"
	"sort"
	"strings"

	"mixedmem/internal/analysis/advise"
	"mixedmem/internal/analysis/entrydiscipline"
	"mixedmem/internal/analysis/framework"
	"mixedmem/internal/analysis/labelconsistency"
	"mixedmem/internal/analysis/lockdiscipline"
	"mixedmem/internal/analysis/phasediscipline"
	"mixedmem/internal/analysis/scopeusage"
)

// Analyzers is the full mixedvet suite, in reporting order.
var Analyzers = []*framework.Analyzer{
	lockdiscipline.Analyzer,
	labelconsistency.Analyzer,
	phasediscipline.Analyzer,
	entrydiscipline.Analyzer,
	scopeusage.Analyzer,
}

// Finding is one diagnostic, located and attributed.
type Finding struct {
	Analyzer string
	Package  string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// Report is the outcome of one mixedvet run.
type Report struct {
	Findings []Finding
	// Suppressed counts findings dropped by //mixedvet:ignore comments on
	// or directly above their line — the escape hatch for deliberate
	// discipline violations (litmus programs, seeded-bug fixtures).
	Suppressed int
	// Advice is the static advice engine's per-location result; nil unless
	// requested.
	Advice *advise.Result
}

// jsonReport is the -json wire shape: stable field names, positions as
// file:line:col strings, advice flattened.
type jsonReport struct {
	Findings   []jsonFinding `json:"findings"`
	Suppressed int           `json:"suppressed"`
	Advice     []jsonAdvice  `json:"advice,omitempty"`
	Program    string        `json:"programLabel,omitempty"`
}

type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	Package  string `json:"package,omitempty"`
	Pos      string `json:"pos"`
	Message  string `json:"message"`
}

type jsonAdvice struct {
	Loc       string `json:"loc"`
	Label     string `json:"label"`
	Rationale string `json:"rationale"`
}

// JSON renders the report as the machine-readable document `mixedvet -json`
// prints (and CI archives as an artifact).
func (r *Report) JSON() ([]byte, error) {
	doc := jsonReport{Findings: []jsonFinding{}, Suppressed: r.Suppressed}
	for _, f := range r.Findings {
		doc.Findings = append(doc.Findings, jsonFinding{
			Analyzer: f.Analyzer, Package: f.Package,
			Pos: f.Pos.String(), Message: f.Message,
		})
	}
	if r.Advice != nil {
		doc.Advice = []jsonAdvice{}
		for _, a := range r.Advice.Advice {
			doc.Advice = append(doc.Advice, jsonAdvice{
				Loc: a.Loc, Label: a.Label.String(), Rationale: a.Rationale,
			})
		}
		doc.Program = r.Advice.ProgramLabel().String()
	}
	return json.MarshalIndent(doc, "", "  ")
}

// Run loads the packages matched by patterns (rooted at dir), applies every
// analyzer to each, and merges the program-wide passes. With withAdvise set
// it also runs the static advice engine over all loaded packages together.
func Run(dir string, patterns []string, analyzers []*framework.Analyzer, withAdvise bool) (*Report, error) {
	pkgs, err := framework.Load(dir, patterns)
	if err != nil {
		return nil, err
	}
	if len(pkgs) == 0 {
		return nil, fmt.Errorf("mixedvet: no packages match %v", patterns)
	}
	rep := &Report{}
	// All packages of one Load share a FileSet, so cross-package positions
	// resolve through any of them.
	fset := pkgs[0].Fset

	var allSites []labelconsistency.Site
	intraMixed := make(map[string]bool)
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			got, err := framework.RunAnalyzer(a, pkg)
			if err != nil {
				return nil, fmt.Errorf("mixedvet: %s on %s: %w", a.Name, pkg.Path, err)
			}
			for _, d := range got.Diagnostics {
				rep.Findings = append(rep.Findings, Finding{
					Analyzer: a.Name,
					Package:  pkg.Path,
					Pos:      fset.Position(d.Pos),
					Message:  d.Message,
				})
			}
			if res, ok := got.Result.(*labelconsistency.Result); ok {
				allSites = append(allSites, res.Sites...)
				// Locations already flagged within this package stay flagged
				// there; the merge below only adds mixes no package sees alone.
				for _, pair := range labelconsistency.Mixed(res.Sites) {
					intraMixed[pair[0].Loc] = true
				}
			}
		}
	}
	for _, pair := range labelconsistency.Mixed(allSites) {
		if intraMixed[pair[0].Loc] {
			continue
		}
		rep.Findings = append(rep.Findings, Finding{
			Analyzer: labelconsistency.Analyzer.Name,
			Pos:      fset.Position(pair[0].Pos),
			Message: fmt.Sprintf(
				"location %q is read with mixed labels across packages: %s here is PRAM-labeled, but %s reads it causally — pick one label per location",
				pair[0].Loc, pair[0].Descr, fset.Position(pair[1].Pos)),
		})
	}
	// //mixedvet:ignore on a finding's line, or on the line directly above
	// it, suppresses the finding: deliberate discipline violations (litmus
	// programs, checker fixtures) annotate themselves instead of forcing a
	// package-level exclusion.
	ignore := ignoreLines(pkgs)
	kept := rep.Findings[:0]
	for _, f := range rep.Findings {
		if ignore[lineKey{f.Pos.Filename, f.Pos.Line}] {
			rep.Suppressed++
			continue
		}
		kept = append(kept, f)
	}
	rep.Findings = kept
	sort.Slice(rep.Findings, func(i, j int) bool {
		a, b := rep.Findings[i].Pos, rep.Findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return rep.Findings[i].Message < rep.Findings[j].Message
	})
	if withAdvise {
		rep.Advice = advise.Packages(pkgs)
	}
	return rep, nil
}

type lineKey struct {
	file string
	line int
}

// ignoreLines collects the lines covered by //mixedvet:ignore comments: the
// comment's own line (trailing form) and the line below it (preceding
// form).
func ignoreLines(pkgs []*framework.Package) map[lineKey]bool {
	out := make(map[lineKey]bool)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.Contains(c.Text, "mixedvet:ignore") {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					out[lineKey{pos.Filename, pos.Line}] = true
					out[lineKey{pos.Filename, pos.Line + 1}] = true
				}
			}
		}
	}
	return out
}
