package mixedvet_test

import (
	"encoding/json"
	"path/filepath"
	"testing"

	"mixedmem/internal/analysis/mixedvet"
)

// TestIgnoreSuppression runs the suite over a package whose one deliberate
// violation carries a //mixedvet:ignore annotation: the finding must be
// counted as suppressed, not reported.
func TestIgnoreSuppression(t *testing.T) {
	root, err := filepath.Abs("../../..")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := mixedvet.Run(root, []string{"./internal/analysis/crossval/nonefact"}, mixedvet.Analyzers, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Findings) != 0 {
		t.Errorf("annotated package reported %d findings, want 0: %v", len(rep.Findings), rep.Findings)
	}
	if rep.Suppressed == 0 {
		t.Errorf("annotated package counted 0 suppressed findings, want > 0")
	}
}

// TestJSONReport checks the -json document: valid JSON, findings with
// populated positions, and the advice section with a program label.
func TestJSONReport(t *testing.T) {
	src, err := filepath.Abs("../testdata/src")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := mixedvet.Run(src, []string{"./phasediscipline"}, mixedvet.Analyzers, true)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Findings []struct {
			Pos      string `json:"pos"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		} `json:"findings"`
		Suppressed int `json:"suppressed"`
		Advice     []struct {
			Loc   string `json:"loc"`
			Label string `json:"label"`
		} `json:"advice"`
		ProgramLabel string `json:"programLabel"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, raw)
	}
	if len(doc.Findings) == 0 {
		t.Fatal("phasediscipline fixtures produced no findings in the JSON document")
	}
	for _, f := range doc.Findings {
		if f.Pos == "" || f.Analyzer == "" || f.Message == "" {
			t.Errorf("finding with empty field: %+v", f)
		}
	}
	if doc.ProgramLabel == "" {
		t.Error("programLabel missing from the advice section")
	}
}
