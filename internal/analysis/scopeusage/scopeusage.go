// Package scopeusage cross-checks causal-scoped partial replication against
// the reads the source actually performs. A dsm.ScopeMap registers, per
// location, which processes read it; updates are then sent only to those
// readers, so a read by an unregistered process observes a stale local copy
// forever — a silent correctness bug the runtime cannot flag (Validate only
// checks the map's internal consistency, not the program against it).
//
// The analyzer finds every fully-constant ScopeMap composite literal in the
// package and every labeled read of a constant location performed under a
// constant role guard (`if p.ID() == 2 { ... }` or `switch p.ID() { case 2:
// ... }`), and reports reads whose role is missing from the location's
// registration: for any read, the role must be in Readers[loc]; for a
// causal-labeled read it must also be in CausalReaders[loc]. Locations
// absent from Readers fall back to full broadcast and are always fine. If
// the package builds any scope the analyzer cannot resolve (computed keys,
// programmatic construction), it stays silent — it cannot know the final
// registration.
package scopeusage

import (
	"go/ast"
	"go/types"
	"strings"

	"mixedmem/internal/analysis/framework"
	"mixedmem/internal/analysis/mixedapi"
	"mixedmem/internal/analysis/summary"
)

// Analyzer is the scopeusage pass.
var Analyzer = &framework.Analyzer{
	Name: "scopeusage",
	Doc:  "flag labeled reads by a proc role not registered for the location in the package's ScopeMap",
	Run:  run,
}

// dsmPathSuffix identifies the package defining ScopeMap.
const dsmPathSuffix = "internal/dsm"

// scope is one statically-resolved ScopeMap literal.
type scope struct {
	readers       map[string][]int
	causalReaders map[string][]int
}

func run(pass *framework.Pass) (any, error) {
	scopes, allKnown := collectScopes(pass)
	if len(scopes) == 0 || !allKnown {
		return nil, nil
	}
	for _, unit := range mixedapi.Units(pass.Files) {
		checkUnit(pass, unit, scopes)
	}
	return nil, nil
}

// collectScopes finds the package's ScopeMap composite literals. allKnown is
// false when any of them has a part the analyzer cannot resolve to
// constants.
func collectScopes(pass *framework.Pass) (scopes []*scope, allKnown bool) {
	allKnown = true
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok || !isScopeMapType(pass.TypesInfo, lit) {
				return true
			}
			s, ok := resolveScope(pass, lit)
			if !ok {
				allKnown = false
				return true
			}
			scopes = append(scopes, s)
			return true
		})
	}
	return scopes, allKnown
}

func isScopeMapType(info *types.Info, lit *ast.CompositeLit) bool {
	tv, ok := info.Types[lit]
	if !ok {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "ScopeMap" && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), dsmPathSuffix)
}

func resolveScope(pass *framework.Pass, lit *ast.CompositeLit) (*scope, bool) {
	s := &scope{readers: map[string][]int{}, causalReaders: map[string][]int{}}
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			return nil, false
		}
		field, ok := kv.Key.(*ast.Ident)
		if !ok {
			return nil, false
		}
		var dst map[string][]int
		switch field.Name {
		case "Readers":
			dst = s.readers
		case "CausalReaders":
			dst = s.causalReaders
		default:
			continue
		}
		m, ok := resolveReaderMap(pass, kv.Value)
		if !ok {
			return nil, false
		}
		for loc, ids := range m {
			dst[loc] = ids
		}
	}
	return s, true
}

// resolveReaderMap resolves a map[string][]int literal with constant keys
// and constant elements.
func resolveReaderMap(pass *framework.Pass, e ast.Expr) (map[string][]int, bool) {
	lit, ok := e.(*ast.CompositeLit)
	if !ok {
		return nil, false // make(...), a variable, nil, ...
	}
	out := make(map[string][]int)
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			return nil, false
		}
		loc, ok := mixedapi.ConstString(pass.TypesInfo, kv.Key)
		if !ok {
			return nil, false
		}
		list, ok := kv.Value.(*ast.CompositeLit)
		if !ok {
			return nil, false
		}
		var ids []int
		for _, idExpr := range list.Elts {
			id, ok := mixedapi.ConstInt(pass.TypesInfo, idExpr)
			if !ok {
				return nil, false
			}
			ids = append(ids, id)
		}
		out[loc] = ids
	}
	return out, true
}

// checkUnit checks each labeled read performed under a constant role guard
// against every resolved scope. A read with no local guard still has a
// known role when every call site of the enclosing function is guarded to
// the same role (the summary package's role-entry fixpoint) — the common
// helper-factored shape `if p.ID() == 2 { readResult(p) }`.
func checkUnit(pass *framework.Pass, unit mixedapi.FuncUnit, scopes []*scope) {
	roles := mixedapi.RoleGuards(pass.TypesInfo, unit.Body)
	entryRole, entryKnown := summary.Of(pass.Prog).RoleEntry(unit.Body)
	for _, c := range mixedapi.CallsIn(pass.TypesInfo, unit.Body) {
		role, guarded := roles[c.Expr]
		if !guarded {
			role, guarded = entryRole, entryKnown
		}
		if !guarded {
			continue // no statically-known role: nothing to check
		}
		checkRead(pass, c, role, scopes)
	}
}

func checkRead(pass *framework.Pass, c mixedapi.Call, role int, scopes []*scope) {
	if !c.Op.IsRead() || !c.Const {
		return
	}
	for _, s := range scopes {
		ids, registered := s.readers[c.Name]
		if !registered {
			continue // broadcast fallback: every process receives updates
		}
		if !contains(ids, role) {
			pass.Reportf(c.Pos,
				"process %d reads %q but is not in the ScopeMap's Readers[%q] = %v: scoped replication will never deliver updates to it",
				role, c.Name, c.Name, ids)
			return
		}
		if c.Op.IsCausalLabeled() {
			if cids := s.causalReaders[c.Name]; !contains(cids, role) {
				pass.Reportf(c.Pos,
					"process %d reads %q causally but is not in CausalReaders[%q] = %v: its replica carries no dependency metadata for a causal read",
					role, c.Name, c.Name, cids)
				return
			}
		}
	}
}

func contains(ids []int, id int) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}
