package scopeusage_test

import (
	"testing"

	"mixedmem/internal/analysis/analysistest"
	"mixedmem/internal/analysis/scopeusage"
)

func TestScopeUsage(t *testing.T) {
	analysistest.Run(t, scopeusage.Analyzer, "../testdata/src/scopeusage")
}

func TestScopeUsageUnknownScopeStaysSilent(t *testing.T) {
	analysistest.Run(t, scopeusage.Analyzer, "../testdata/src/scopeusage_unknown")
}
