// Package summary computes interprocedural effect summaries over the call
// graph, and propagates calling context back down it — the machinery that
// lets every mixedvet analyzer see through module-internal calls instead of
// stopping at function boundaries.
//
// Bottom-up (callees before callers, in the call graph's SCC order), each
// function unit gets a FuncSummary: its net effect on every constant-named
// lock (a small transfer lattice: unchanged, leaves read-held, leaves
// write-held, leaves released, unknown), its barrier structure (exact
// barrier count entry→exit when static, whether some path crosses no
// barrier), the accesses reachable from its entry before any barrier (Pre
// sets) and the accesses that can reach its exit with no barrier after them
// (Gen sets), plus transitive flags: dynamic-location accesses, sync
// operations, and opacity (a call the analysis cannot resolve). Recursive
// SCCs are iterated to a fixpoint from bottom and widened to conservative
// values if they fail to stabilize quickly.
//
// Top-down, three fixpoints push call-site context into callees: the
// concrete lock state at each call site becomes the callee's entry lock
// state (disagreeing call sites widen to Unknown, which silences rather
// than guesses), the pending phase accesses at the call become the callee's
// entry phase sets, and the process-role guard enclosing the call becomes
// the callee's role context. Functions whose call sites are not exhaustive
// — exported roots, address-taken functions, goroutine bodies — keep an
// empty entry, exactly the old intraprocedural assumption.
//
// Everything is memoized program-wide via framework.Program.Fact, so the
// whole suite shares one computation per load.
package summary

import (
	"go/ast"
	"go/token"

	"mixedmem/internal/analysis/callgraph"
	"mixedmem/internal/analysis/cfg"
	"mixedmem/internal/analysis/framework"
	"mixedmem/internal/analysis/mixedapi"
)

// Mode is a lock's abstract state at a program point. It lives here (rather
// than in lockdiscipline, which aliases it) so the summary computation does
// not import the analyzers it serves.
type Mode uint8

// Lock states; the zero value means not held.
const (
	Unlocked Mode = iota
	ReadHeld
	WriteHeld
	// Unknown means paths or call sites disagree; diagnostics that would
	// depend on the mode are suppressed.
	Unknown
)

// LockState maps constant lock names to modes; absent means Unlocked.
type LockState map[string]Mode

// Clone copies the state.
func (s LockState) Clone() LockState {
	out := make(LockState, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// Equal reports map equality.
func (s LockState) Equal(o LockState) bool {
	if len(s) != len(o) {
		return false
	}
	for k, v := range s {
		if o[k] != v {
			return false
		}
	}
	return true
}

// MergeLocks joins two states: agreeing modes survive, disagreements become
// Unknown.
func MergeLocks(a, b LockState) LockState {
	out := make(LockState)
	for k, v := range a {
		if b[k] == v {
			if v != Unlocked {
				out[k] = v
			}
		} else {
			out[k] = Unknown
		}
	}
	for k, v := range b {
		if _, ok := a[k]; !ok && v != Unlocked {
			out[k] = Unknown
		}
	}
	return out
}

// ApplyLockOp is the per-operation concrete transfer function.
func ApplyLockOp(s LockState, c mixedapi.Call) {
	if !c.Const {
		return
	}
	switch c.Op {
	case mixedapi.OpRLock:
		s[c.Name] = ReadHeld
	case mixedapi.OpWLock:
		s[c.Name] = WriteHeld
	case mixedapi.OpRUnlock, mixedapi.OpWUnlock:
		delete(s, c.Name)
	}
}

// Effect is a whole call's net effect on one lock — the summary transfer
// lattice.
type Effect uint8

// Lock effects; the zero value means the call leaves the lock as it found
// it.
const (
	EffNone Effect = iota
	// EffRead: the call returns with the lock read-held.
	EffRead
	// EffWrite: the call returns with the lock write-held.
	EffWrite
	// EffUnlock: the call returns with the lock released.
	EffUnlock
	// EffUnknown: the call's paths disagree.
	EffUnknown
)

// ApplyEffect composes one lock effect onto a concrete state.
func ApplyEffect(s LockState, name string, e Effect) {
	switch e {
	case EffRead:
		s[name] = ReadHeld
	case EffWrite:
		s[name] = WriteHeld
	case EffUnlock:
		delete(s, name)
	case EffUnknown:
		s[name] = Unknown
	}
}

// Event is one recognized operation or one ordinary call inside a block, in
// source order — the unified stream the interprocedural dataflows walk.
type Event struct {
	// IsOp distinguishes recognized model operations from ordinary calls.
	IsOp bool
	// Op is the classified operation (valid when IsOp).
	Op mixedapi.Call
	// Call is the call expression (always set).
	Call *ast.CallExpr
	// Callee is the static target (non-IsOp events; nil when unresolved).
	Callee *callgraph.Node
	// Opaque marks an unresolved, non-transparent call: unknown code.
	Opaque bool
	// Spawned marks a `go` call: the callee runs concurrently, so its
	// effects do not apply at this program point.
	Spawned bool
}

// FuncSummary is one function unit's interprocedural effect summary.
type FuncSummary struct {
	// LockExit is the net effect on each constant lock, entry→exit.
	LockExit map[string]Effect
	// PreW and PreR are the constant locations written/read (reads include
	// awaits) on some path from entry before any full barrier, transitively
	// through calls; values are representative sites.
	PreW, PreR map[string]token.Pos
	// GenW and GenR are the constant locations whose write/read can reach
	// the function's exit with no full barrier after it.
	GenW, GenR map[string]token.Pos
	// AllW and AllR are every constant location the function or its
	// (non-spawned and spawned) callees write/read anywhere.
	AllW, AllR map[string]token.Pos
	// BarrierFree: some entry→exit path crosses no full barrier.
	BarrierFree bool
	// Delta is the entry→exit full-barrier count; DeltaExact is false when
	// paths disagree (a barrier in a loop or on one branch arm) or a callee
	// is inexact, making the caller's phase structure ambiguous too.
	Delta      int
	DeltaExact bool
	// ExitReached: some path reaches the function's exit (false only for
	// functions that provably never return).
	ExitReached bool
	// SyncOps: an await or lock operation appears here or in a callee.
	SyncOps bool
	// DynamicWrite / DynamicRead: a write/read with a non-constant
	// location appears here or in a callee.
	DynamicWrite, DynamicRead bool
	// Opaque: the function contains a call no analysis can see through —
	// unresolved targets, goroutine spawns, or over-deep recursion.
	Opaque bool
}

func newSummary() *FuncSummary {
	return &FuncSummary{
		LockExit: map[string]Effect{},
		PreW:     map[string]token.Pos{}, PreR: map[string]token.Pos{},
		GenW: map[string]token.Pos{}, GenR: map[string]token.Pos{},
		AllW: map[string]token.Pos{}, AllR: map[string]token.Pos{},
		DeltaExact: true,
	}
}

func (a *FuncSummary) equal(b *FuncSummary) bool {
	if a.BarrierFree != b.BarrierFree || a.Delta != b.Delta || a.DeltaExact != b.DeltaExact ||
		a.ExitReached != b.ExitReached || a.SyncOps != b.SyncOps ||
		a.DynamicWrite != b.DynamicWrite || a.DynamicRead != b.DynamicRead ||
		a.Opaque != b.Opaque {
		return false
	}
	if len(a.LockExit) != len(b.LockExit) {
		return false
	}
	for k, v := range a.LockExit {
		if b.LockExit[k] != v {
			return false
		}
	}
	for _, pair := range [][2]map[string]token.Pos{
		{a.PreW, b.PreW}, {a.PreR, b.PreR}, {a.GenW, b.GenW},
		{a.GenR, b.GenR}, {a.AllW, b.AllW}, {a.AllR, b.AllR},
	} {
		if len(pair[0]) != len(pair[1]) {
			return false
		}
		for k := range pair[0] {
			if _, ok := pair[1][k]; !ok {
				return false
			}
		}
	}
	return true
}

// PhaseSets is the pending-accesses state of the phase discipline: per
// constant location, a representative site since the last full barrier on
// some path. May-information: union joins, cleared at barriers.
type PhaseSets struct {
	Written, Read map[string]token.Pos
}

// NewPhaseSets returns an empty state.
func NewPhaseSets() *PhaseSets {
	return &PhaseSets{Written: map[string]token.Pos{}, Read: map[string]token.Pos{}}
}

// Clone copies the state.
func (s *PhaseSets) Clone() *PhaseSets {
	out := NewPhaseSets()
	for k, v := range s.Written {
		out.Written[k] = v
	}
	for k, v := range s.Read {
		out.Read[k] = v
	}
	return out
}

// Join unions o into s and reports whether s changed.
func (s *PhaseSets) Join(o *PhaseSets) bool {
	changed := false
	for k, v := range o.Written {
		if _, ok := s.Written[k]; !ok {
			s.Written[k] = v
			changed = true
		}
	}
	for k, v := range o.Read {
		if _, ok := s.Read[k]; !ok {
			s.Read[k] = v
			changed = true
		}
	}
	return changed
}

// Shape is the per-unit static structure the advice engine walks: the CFG
// with its event streams, the barrier-phase numbering (callee deltas
// included), barrier sealing, loop membership, and role guards.
type Shape struct {
	Graph  *cfg.Graph
	Events map[*cfg.Block][]Event
	// Phase is the full-barrier count on entry to each reached block;
	// Coherent is false when paths (or an inexact callee) disagree.
	Phase    map[*cfg.Block]int
	Reached  map[*cfg.Block]bool
	Coherent bool
	// Sealed: every path from the event to the unit's exit crosses a full
	// barrier (a call that always crosses one counts).
	Sealed map[*ast.CallExpr]bool
	// Loops marks blocks on a control-flow cycle.
	Loops map[*cfg.Block]bool
	Roles mixedapi.RoleMap
}

type roleCtx struct {
	role  int
	known bool
	set   bool
}

// Set is the program-wide summary database.
type Set struct {
	Prog  *framework.Program
	Graph *callgraph.Graph

	cores  map[*ast.BlockStmt]*unitCore
	sums   map[*ast.BlockStmt]*FuncSummary
	shapes map[*ast.BlockStmt]*Shape
	flows  map[*ast.BlockStmt]*LockFlow

	lockEntry  map[*ast.BlockStmt]LockState
	phaseEntry map[*ast.BlockStmt]*PhaseSets
	roleEntry  map[*ast.BlockStmt]roleCtx
}

// unitCore is the context-independent structure of one unit.
type unitCore struct {
	node   *callgraph.Node
	graph  *cfg.Graph
	events map[*cfg.Block][]Event
	// transferBefore is the net lock effect entry→(just before event), per
	// event expression — how descended advice contexts compose lock states.
	transferBefore map[*ast.CallExpr]map[string]Effect
}

const factKey = "mixedvet.summary"

// Of returns the program's summary set, computing it on first use.
func Of(prog *framework.Program) *Set {
	return prog.Fact(factKey, func() any { return build(prog) }).(*Set)
}

func build(prog *framework.Program) *Set {
	s := &Set{
		Prog:       prog,
		Graph:      callgraph.Of(prog),
		cores:      map[*ast.BlockStmt]*unitCore{},
		sums:       map[*ast.BlockStmt]*FuncSummary{},
		shapes:     map[*ast.BlockStmt]*Shape{},
		flows:      map[*ast.BlockStmt]*LockFlow{},
		lockEntry:  map[*ast.BlockStmt]LockState{},
		phaseEntry: map[*ast.BlockStmt]*PhaseSets{},
		roleEntry:  map[*ast.BlockStmt]roleCtx{},
	}
	for _, n := range s.Graph.Nodes {
		s.cores[n.Body] = s.buildCore(n)
	}
	// Bottom-up summaries, callee SCCs first; recursive SCCs iterate from
	// bottom and widen if they fail to stabilize.
	const sccCap = 8
	for _, scc := range s.Graph.SCCs {
		if len(scc) == 1 && !scc[0].Recursive {
			s.sums[scc[0].Body] = s.compute(scc[0])
			continue
		}
		stable := false
		for iter := 0; iter < sccCap && !stable; iter++ {
			stable = true
			for _, n := range scc {
				next := s.compute(n)
				if prev := s.sums[n.Body]; prev == nil || !prev.equal(next) {
					stable = false
				}
				s.sums[n.Body] = next
			}
		}
		if !stable {
			for _, n := range scc {
				widen(s.sums[n.Body])
			}
		} else {
			// Even a stabilized recursion keeps a bounded static phase
			// structure only if its barrier delta is zero; anything else
			// repeats per call depth, which is not a static quantity.
			for _, n := range scc {
				sum := s.sums[n.Body]
				if sum.Delta != 0 {
					sum.DeltaExact = false
				}
			}
		}
	}
	s.fixpointLockEntries()
	s.fixpointPhaseEntries()
	s.fixpointRoleEntries()
	return s
}

// widen makes a non-converged recursive summary conservative: its claims
// are voided (Opaque, inexact delta) and its sealing power removed
// (BarrierFree true), while its access sets stay as accumulated — an
// under-approximation that can only miss diagnostics, never fabricate
// claims, because Opaque vetoes every static claim about its locations.
func widen(sum *FuncSummary) {
	sum.Opaque = true
	sum.DeltaExact = false
	sum.BarrierFree = true
	sum.ExitReached = true
	for k := range sum.LockExit {
		sum.LockExit[k] = EffUnknown
	}
}

// Node returns the call-graph node of a unit body, or nil.
func (s *Set) Node(body *ast.BlockStmt) *callgraph.Node {
	if c := s.cores[body]; c != nil {
		return c.node
	}
	return nil
}

// Summary returns a unit's effect summary, or nil for unknown bodies.
func (s *Set) Summary(body *ast.BlockStmt) *FuncSummary { return s.sums[body] }

// LockEntry returns the lock state a unit is entered with, merged over its
// call sites; empty for roots and unknown bodies.
func (s *Set) LockEntry(body *ast.BlockStmt) LockState {
	if st, ok := s.lockEntry[body]; ok {
		return st
	}
	return LockState{}
}

// PhaseEntry returns the pending phase accesses a unit is entered with,
// unioned over its call sites; empty for roots and unknown bodies.
func (s *Set) PhaseEntry(body *ast.BlockStmt) *PhaseSets {
	if st, ok := s.phaseEntry[body]; ok {
		return st
	}
	return NewPhaseSets()
}

// RoleEntry returns the constant process role every call site of the unit
// is guarded to, if they all agree.
func (s *Set) RoleEntry(body *ast.BlockStmt) (int, bool) {
	rc := s.roleEntry[body]
	return rc.role, rc.set && rc.known
}

// buildCore constructs a unit's CFG and per-block event streams.
func (s *Set) buildCore(n *callgraph.Node) *unitCore {
	info := n.Pkg.Info
	core := &unitCore{node: n, graph: cfg.New(n.Body)}
	core.events = make(map[*cfg.Block][]Event)
	// Calls spawned with `go` anywhere in this unit.
	goCalls := map[*ast.CallExpr]bool{}
	ast.Inspect(n.Body, func(c ast.Node) bool {
		if fl, ok := c.(*ast.FuncLit); ok && fl.Body != n.Body {
			return false
		}
		if g, ok := c.(*ast.GoStmt); ok {
			goCalls[g.Call] = true
		}
		return true
	})
	for _, blk := range core.graph.Blocks {
		var evs []Event
		for _, node := range blk.Stmts {
			ast.Inspect(node, func(c ast.Node) bool {
				switch c := c.(type) {
				case *ast.FuncLit:
					return false // separate unit
				case *ast.CallExpr:
					if op, ok := mixedapi.Classify(info, c); ok {
						evs = append(evs, Event{IsOp: true, Op: op, Call: c})
						return true
					}
					if mixedapi.TransparentCall(info, c) {
						return true
					}
					ev := Event{Call: c, Spawned: goCalls[c]}
					ev.Callee = s.Graph.Callee(info, c)
					ev.Opaque = ev.Callee == nil
					evs = append(evs, ev)
				}
				return true
			})
		}
		core.events[blk] = evs
	}
	return core
}

// calleeSummary returns the summary a caller should apply for a call event,
// or nil when none applies at the call site (unresolved, spawned, or not
// yet computed mid-SCC — all treated as no-transfer).
func (s *Set) calleeSummary(ev Event) *FuncSummary {
	if ev.IsOp || ev.Callee == nil || ev.Spawned {
		return nil
	}
	return s.sums[ev.Callee.Body]
}

// compute builds one unit's summary from its events and its callees'
// summaries.
func (s *Set) compute(n *callgraph.Node) *FuncSummary {
	core := s.cores[n.Body]
	sum := newSummary()

	// Linear accumulation: access sets and transitive flags.
	for _, blk := range core.graph.Blocks {
		for _, ev := range core.events[blk] {
			if ev.IsOp {
				c := ev.Op
				switch {
				case c.Op == mixedapi.OpWrite && c.Const:
					addPos(sum.AllW, c.Name, c.Pos)
				case c.Op == mixedapi.OpWrite:
					sum.DynamicWrite = true
				case c.Op.IsRead() && c.Const:
					addPos(sum.AllR, c.Name, c.Pos)
				case c.Op.IsRead():
					sum.DynamicRead = true
				}
				switch c.Op {
				case mixedapi.OpAwaitCausal, mixedapi.OpAwaitPRAM,
					mixedapi.OpRLock, mixedapi.OpRUnlock,
					mixedapi.OpWLock, mixedapi.OpWUnlock:
					sum.SyncOps = true
				}
				continue
			}
			if ev.Opaque {
				sum.Opaque = true
			}
			if ev.Spawned {
				// Concurrent activity launched mid-phase voids the caller's
				// static claims, like an opaque call; the spawned unit is
				// analyzed as a root of its own.
				sum.Opaque = true
			}
			// Spawned callees contribute their program-global flags and
			// access sets (the code does run) but no local transfer; a nil
			// summary is the mid-SCC bottom value, treated as no-effect
			// until the SCC iteration stabilizes.
			var cs *FuncSummary
			if ev.Callee != nil {
				cs = s.sums[ev.Callee.Body]
			}
			if cs == nil {
				continue
			}
			for k, v := range cs.AllW {
				addPos(sum.AllW, k, v)
			}
			for k, v := range cs.AllR {
				addPos(sum.AllR, k, v)
			}
			sum.SyncOps = sum.SyncOps || cs.SyncOps
			sum.DynamicWrite = sum.DynamicWrite || cs.DynamicWrite
			sum.DynamicRead = sum.DynamicRead || cs.DynamicRead
			if !ev.Spawned {
				sum.Opaque = sum.Opaque || cs.Opaque
			}
		}
	}

	// Lock transfer flow: net effect per lock, entry→exit, plus the
	// before-event relative effects for descended advice contexts.
	core.transferBefore = map[*ast.CallExpr]map[string]Effect{}
	tin := map[*cfg.Block]map[string]Effect{core.graph.Entry: {}}
	work := []*cfg.Block{core.graph.Entry}
	for len(work) > 0 {
		blk := work[len(work)-1]
		work = work[:len(work)-1]
		out := cloneEffects(tin[blk])
		for _, ev := range core.events[blk] {
			s.applyLockEvent(out, ev)
		}
		for _, succ := range blk.Succs {
			cur, reached := tin[succ]
			if !reached {
				tin[succ] = cloneEffects(out)
				work = append(work, succ)
			} else if next := mergeEffects(cur, out); !effectsEqual(next, cur) {
				tin[succ] = next
				work = append(work, succ)
			}
		}
	}
	for _, blk := range core.graph.Blocks {
		st, reached := tin[blk]
		if !reached {
			continue
		}
		st = cloneEffects(st)
		for _, ev := range core.events[blk] {
			core.transferBefore[ev.Call] = cloneEffects(st)
			s.applyLockEvent(st, ev)
		}
	}
	if exit, ok := tin[core.graph.Exit]; ok {
		sum.LockExit = exit
	}

	// Phase flow: pending access sets with barrier-free reachability and
	// the entry→exit barrier delta.
	type pstate struct {
		sets  *PhaseSets
		bfree bool
		delta int
	}
	pin := map[*cfg.Block]*pstate{core.graph.Entry: {sets: NewPhaseSets(), bfree: true}}
	coherent := true
	apply := func(st *pstate, ev Event) {
		if ev.IsOp {
			c := ev.Op
			switch {
			case c.Op == mixedapi.OpBarrier:
				st.sets = NewPhaseSets()
				st.bfree = false
				st.delta++
			case c.Op == mixedapi.OpWrite && c.Const:
				if st.bfree {
					addPos(sum.PreW, c.Name, c.Pos)
				}
				addPos(st.sets.Written, c.Name, c.Pos)
			case c.Op.IsRead() && c.Const:
				if st.bfree {
					addPos(sum.PreR, c.Name, c.Pos)
				}
				addPos(st.sets.Read, c.Name, c.Pos)
			}
			return
		}
		cs := s.calleeSummary(ev)
		if cs == nil {
			return
		}
		if st.bfree {
			for k, v := range cs.PreW {
				addPos(sum.PreW, k, v)
			}
			for k, v := range cs.PreR {
				addPos(sum.PreR, k, v)
			}
		}
		if cs.BarrierFree {
			for k, v := range cs.GenW {
				addPos(st.sets.Written, k, v)
			}
			for k, v := range cs.GenR {
				addPos(st.sets.Read, k, v)
			}
		} else {
			next := NewPhaseSets()
			for k, v := range cs.GenW {
				next.Written[k] = v
			}
			for k, v := range cs.GenR {
				next.Read[k] = v
			}
			st.sets = next
		}
		st.bfree = st.bfree && cs.BarrierFree
		if cs.DeltaExact {
			st.delta += cs.Delta
		} else {
			coherent = false
		}
	}
	work = []*cfg.Block{core.graph.Entry}
	for len(work) > 0 {
		blk := work[len(work)-1]
		work = work[:len(work)-1]
		in := pin[blk]
		out := &pstate{sets: in.sets.Clone(), bfree: in.bfree, delta: in.delta}
		for _, ev := range core.events[blk] {
			apply(out, ev)
		}
		for _, succ := range blk.Succs {
			cur, reached := pin[succ]
			if !reached {
				pin[succ] = &pstate{sets: out.sets.Clone(), bfree: out.bfree, delta: out.delta}
				work = append(work, succ)
				continue
			}
			changed := cur.sets.Join(out.sets)
			if out.bfree && !cur.bfree {
				cur.bfree = true
				changed = true
			}
			if cur.delta != out.delta {
				coherent = false
			}
			if changed {
				work = append(work, succ)
			}
		}
	}
	if exit, ok := pin[core.graph.Exit]; ok {
		sum.GenW, sum.GenR = exit.sets.Written, exit.sets.Read
		sum.BarrierFree = exit.bfree
		sum.Delta = exit.delta
		sum.DeltaExact = coherent
		sum.ExitReached = true
	} else {
		// Exit unreachable (the function cannot return): no transfer flows
		// past a call to it, so the neutral summary is accurate for callers.
		sum.DeltaExact = coherent
	}
	return sum
}

func (s *Set) applyLockEvent(st map[string]Effect, ev Event) {
	if ev.IsOp {
		c := ev.Op
		if !c.Const {
			return
		}
		switch c.Op {
		case mixedapi.OpRLock:
			st[c.Name] = EffRead
		case mixedapi.OpWLock:
			st[c.Name] = EffWrite
		case mixedapi.OpRUnlock, mixedapi.OpWUnlock:
			st[c.Name] = EffUnlock
		}
		return
	}
	if cs := s.calleeSummary(ev); cs != nil {
		for k, e := range cs.LockExit {
			if e != EffNone {
				st[k] = e
			}
		}
	}
}

func cloneEffects(m map[string]Effect) map[string]Effect {
	out := make(map[string]Effect, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func effectsEqual(a, b map[string]Effect) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func mergeEffects(a, b map[string]Effect) map[string]Effect {
	out := make(map[string]Effect)
	for k, v := range a {
		if b[k] == v {
			if v != EffNone {
				out[k] = v
			}
		} else {
			out[k] = EffUnknown
		}
	}
	for k, v := range b {
		if _, ok := a[k]; !ok && v != EffNone {
			out[k] = EffUnknown
		}
	}
	return out
}

func addPos(m map[string]token.Pos, k string, pos token.Pos) {
	if _, ok := m[k]; !ok {
		m[k] = pos
	}
}

// UnitGraph returns the unit's control-flow graph, or nil.
func (s *Set) UnitGraph(body *ast.BlockStmt) *cfg.Graph {
	if c := s.cores[body]; c != nil {
		return c.graph
	}
	return nil
}

// UnitEvents returns the unit's event stream for one block.
func (s *Set) UnitEvents(body *ast.BlockStmt, blk *cfg.Block) []Event {
	if c := s.cores[body]; c != nil {
		return c.events[blk]
	}
	return nil
}

// TransferBefore returns the unit's net lock effect from its entry to just
// before the given event expression — how a descended advice context maps
// its caller-side lock state to the site.
func (s *Set) TransferBefore(body *ast.BlockStmt, call *ast.CallExpr) map[string]Effect {
	if c := s.cores[body]; c != nil {
		return c.transferBefore[call]
	}
	return nil
}
