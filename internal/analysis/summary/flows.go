package summary

import (
	"go/ast"
	"go/token"

	"mixedmem/internal/analysis/callgraph"
	"mixedmem/internal/analysis/cfg"
	"mixedmem/internal/analysis/mixedapi"
)

// LockFlow is the concrete lock-state dataflow of one unit, entered with
// the unit's fixpoint entry state and applying callee lock effects at call
// events.
type LockFlow struct {
	Graph  *cfg.Graph
	in     map[*cfg.Block]LockState
	before map[*ast.CallExpr]LockState
	set    *Set
	body   *ast.BlockStmt
}

// LockFlow returns the unit's concrete lock flow, memoized.
func (s *Set) LockFlow(body *ast.BlockStmt) *LockFlow {
	if f, ok := s.flows[body]; ok {
		return f
	}
	core := s.cores[body]
	if core == nil {
		return nil
	}
	in, bef := s.runLockFlow(core, s.LockEntry(body), true)
	f := &LockFlow{Graph: core.graph, in: in, before: bef, set: s, body: body}
	s.flows[body] = f
	return f
}

// At returns the lock state immediately before the given event expression.
func (f *LockFlow) At(call *ast.CallExpr) LockState { return f.before[call] }

// In returns the lock state on entry to a block, and whether the block is
// reached.
func (f *LockFlow) In(blk *cfg.Block) (LockState, bool) {
	st, ok := f.in[blk]
	return st, ok
}

// Events returns the block's event stream.
func (f *LockFlow) Events(blk *cfg.Block) []Event { return f.set.cores[f.body].events[blk] }

// runLockFlow is the concrete fixpoint; recordBefore controls whether the
// (second) collection pass runs.
func (s *Set) runLockFlow(core *unitCore, entry LockState, recordBefore bool) (map[*cfg.Block]LockState, map[*ast.CallExpr]LockState) {
	in := map[*cfg.Block]LockState{core.graph.Entry: entry.Clone()}
	work := []*cfg.Block{core.graph.Entry}
	for len(work) > 0 {
		blk := work[len(work)-1]
		work = work[:len(work)-1]
		out := in[blk].Clone()
		for _, ev := range core.events[blk] {
			s.applyConcreteLockEvent(out, ev)
		}
		for _, succ := range blk.Succs {
			cur, reached := in[succ]
			next := out.Clone()
			if reached {
				next = MergeLocks(cur, out)
			}
			if !reached || !next.Equal(cur) {
				in[succ] = next
				work = append(work, succ)
			}
		}
	}
	var bef map[*ast.CallExpr]LockState
	if recordBefore {
		bef = make(map[*ast.CallExpr]LockState)
		for _, blk := range core.graph.Blocks {
			st, reached := in[blk]
			if !reached {
				continue
			}
			st = st.Clone()
			for _, ev := range core.events[blk] {
				bef[ev.Call] = st.Clone()
				s.applyConcreteLockEvent(st, ev)
			}
		}
	}
	return in, bef
}

func (s *Set) applyConcreteLockEvent(st LockState, ev Event) {
	if ev.IsOp {
		ApplyLockOp(st, ev.Op)
		return
	}
	if cs := s.calleeSummary(ev); cs != nil {
		for k, e := range cs.LockExit {
			ApplyEffect(st, k, e)
		}
	}
}

// fixpointLockEntries propagates concrete call-site lock states into
// callees: first contribution copies, later ones merge (disagreement →
// Unknown). Roots start empty — their call sites are unknown or absent, and
// assuming an unlocked entry is exactly the old intraprocedural reading.
func (s *Set) fixpointLockEntries() {
	work := make([]*callgraph.Node, 0, len(s.Graph.Nodes))
	queued := make(map[*callgraph.Node]bool)
	push := func(n *callgraph.Node) {
		if !queued[n] {
			queued[n] = true
			work = append(work, n)
		}
	}
	for _, n := range s.Graph.Nodes {
		if n.IsRoot() {
			s.lockEntry[n.Body] = LockState{}
		}
		push(n)
	}
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		queued[n] = false
		entry, ok := s.lockEntry[n.Body]
		if !ok {
			continue // not yet reached from any root
		}
		core := s.cores[n.Body]
		_, bef := s.runLockFlow(core, entry, true)
		for _, blk := range core.graph.Blocks {
			for _, ev := range core.events[blk] {
				if ev.IsOp || ev.Callee == nil || ev.Spawned {
					continue
				}
				st, reached := bef[ev.Call]
				if !reached {
					continue
				}
				cur, has := s.lockEntry[ev.Callee.Body]
				var next LockState
				if !has {
					next = st.Clone()
				} else {
					next = MergeLocks(cur, st)
					if next.Equal(cur) {
						continue
					}
				}
				s.lockEntry[ev.Callee.Body] = next
				push(ev.Callee)
			}
		}
	}
}

// PhaseFlowIn returns the unit's stabilized pending-access state on entry
// to each reached block, starting from the unit's fixpoint phase entry.
// Callers re-walk blocks with ApplyPhaseEvent to visit individual sites.
func (s *Set) PhaseFlowIn(body *ast.BlockStmt) map[*cfg.Block]*PhaseSets {
	core := s.cores[body]
	if core == nil {
		return nil
	}
	return s.runPhaseFlow(core, s.PhaseEntry(body))
}

func (s *Set) runPhaseFlow(core *unitCore, entry *PhaseSets) map[*cfg.Block]*PhaseSets {
	in := map[*cfg.Block]*PhaseSets{core.graph.Entry: entry.Clone()}
	work := []*cfg.Block{core.graph.Entry}
	for len(work) > 0 {
		blk := work[len(work)-1]
		work = work[:len(work)-1]
		out := in[blk].Clone()
		for _, ev := range core.events[blk] {
			s.ApplyPhaseEvent(out, ev, nil)
		}
		for _, succ := range blk.Succs {
			cur, reached := in[succ]
			if !reached {
				in[succ] = out.Clone()
				work = append(work, succ)
			} else if cur.Join(out) {
				work = append(work, succ)
			}
		}
	}
	return in
}

// ApplyPhaseEvent is the phase-discipline transfer function over one event.
// record, when non-nil, receives each conflict: a location written while a
// write is pending ("written twice") or accessed against a pending access
// of the other kind ("read and written") with no full barrier between the
// two sites. Call events replay the callee's summary: its barrier-free
// entry accesses (Pre sets) conflict with the caller's pending state, and
// its exit-pending accesses (Gen sets) become pending after the call.
func (s *Set) ApplyPhaseEvent(st *PhaseSets, ev Event, record func(loc, kind string, first, second token.Pos)) {
	if ev.IsOp {
		c := ev.Op
		switch {
		case c.Op == mixedapi.OpBarrier:
			st.Written = map[string]token.Pos{}
			st.Read = map[string]token.Pos{}
		case c.Op == mixedapi.OpWrite && c.Const:
			if record != nil {
				if first, ok := st.Written[c.Name]; ok {
					record(c.Name, "written twice", first, c.Pos)
				}
				if first, ok := st.Read[c.Name]; ok {
					record(c.Name, "read and written", first, c.Pos)
				}
			}
			addPos(st.Written, c.Name, c.Pos)
		case c.Op.IsRead() && c.Const:
			if record != nil {
				if first, ok := st.Written[c.Name]; ok {
					record(c.Name, "read and written", first, c.Pos)
				}
			}
			addPos(st.Read, c.Name, c.Pos)
		}
		return
	}
	cs := s.calleeSummary(ev)
	if cs == nil {
		return
	}
	if record != nil {
		for loc, pos := range cs.PreW {
			if first, ok := st.Written[loc]; ok {
				record(loc, "written twice", first, pos)
			}
			if first, ok := st.Read[loc]; ok {
				record(loc, "read and written", first, pos)
			}
		}
		for loc, pos := range cs.PreR {
			if first, ok := st.Written[loc]; ok {
				record(loc, "read and written", first, pos)
			}
		}
	}
	if cs.BarrierFree {
		for k, v := range cs.GenW {
			addPos(st.Written, k, v)
		}
		for k, v := range cs.GenR {
			addPos(st.Read, k, v)
		}
	} else {
		next := NewPhaseSets()
		for k, v := range cs.GenW {
			next.Written[k] = v
		}
		for k, v := range cs.GenR {
			next.Read[k] = v
		}
		*st = *next
	}
}

// fixpointPhaseEntries pushes pending call-site phase accesses into
// callees; union join, roots start empty.
func (s *Set) fixpointPhaseEntries() {
	work := make([]*callgraph.Node, 0, len(s.Graph.Nodes))
	queued := make(map[*callgraph.Node]bool)
	push := func(n *callgraph.Node) {
		if !queued[n] {
			queued[n] = true
			work = append(work, n)
		}
	}
	for _, n := range s.Graph.Nodes {
		if n.IsRoot() {
			s.phaseEntry[n.Body] = NewPhaseSets()
		}
		push(n)
	}
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		queued[n] = false
		entry, ok := s.phaseEntry[n.Body]
		if !ok {
			continue
		}
		core := s.cores[n.Body]
		in := s.runPhaseFlow(core, entry)
		for _, blk := range core.graph.Blocks {
			st, reached := in[blk]
			if !reached {
				continue
			}
			st = st.Clone()
			for _, ev := range core.events[blk] {
				if !ev.IsOp && ev.Callee != nil && !ev.Spawned {
					cur, has := s.phaseEntry[ev.Callee.Body]
					if !has {
						s.phaseEntry[ev.Callee.Body] = st.Clone()
						push(ev.Callee)
					} else if cur.Join(st) {
						push(ev.Callee)
					}
				}
				s.ApplyPhaseEvent(st, ev, nil)
			}
		}
	}
}

// fixpointRoleEntries pushes the role guard enclosing each call site into
// callees: a unit entered only under `if p.ID() == k` guards inherits role
// k; disagreeing call sites (or a root's unknown context) yield no role.
func (s *Set) fixpointRoleEntries() {
	work := make([]*callgraph.Node, 0, len(s.Graph.Nodes))
	queued := make(map[*callgraph.Node]bool)
	push := func(n *callgraph.Node) {
		if !queued[n] {
			queued[n] = true
			work = append(work, n)
		}
	}
	for _, n := range s.Graph.Nodes {
		if n.IsRoot() {
			s.roleEntry[n.Body] = roleCtx{set: true}
		}
		push(n)
	}
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		queued[n] = false
		entry, ok := s.roleEntry[n.Body]
		if !ok || !entry.set {
			continue
		}
		core := s.cores[n.Body]
		roles := mixedapi.RoleGuards(n.Pkg.Info, n.Body)
		for _, blk := range core.graph.Blocks {
			for _, ev := range core.events[blk] {
				if ev.IsOp || ev.Callee == nil || ev.Spawned {
					continue
				}
				contrib := roleCtx{set: true}
				if r, guarded := roles[ev.Call]; guarded {
					contrib.role, contrib.known = r, true
				} else {
					contrib.role, contrib.known = entry.role, entry.known
				}
				cur := s.roleEntry[ev.Callee.Body]
				next := joinRole(cur, contrib)
				if next != cur {
					s.roleEntry[ev.Callee.Body] = next
					push(ev.Callee)
				}
			}
		}
	}
}

func joinRole(a, b roleCtx) roleCtx {
	if !a.set {
		return b
	}
	if !b.set {
		return a
	}
	if a.known && b.known && a.role == b.role {
		return a
	}
	return roleCtx{set: true}
}

// Shape returns the unit's advice-engine structure, memoized; nil for
// unknown bodies.
func (s *Set) Shape(body *ast.BlockStmt) *Shape {
	if sh, ok := s.shapes[body]; ok {
		return sh
	}
	core := s.cores[body]
	if core == nil {
		return nil
	}
	sh := &Shape{
		Graph:    core.graph,
		Events:   core.events,
		Phase:    make(map[*cfg.Block]int),
		Reached:  make(map[*cfg.Block]bool),
		Coherent: true,
		Sealed:   make(map[*ast.CallExpr]bool),
		Loops:    cycleBlocks(core.graph),
		Roles:    mixedapi.RoleGuards(core.node.Pkg.Info, body),
	}
	// Barrier-phase numbering, callee deltas included.
	sh.Reached[core.graph.Entry] = true
	work := []*cfg.Block{core.graph.Entry}
	for len(work) > 0 && sh.Coherent {
		blk := work[len(work)-1]
		work = work[:len(work)-1]
		out := sh.Phase[blk]
		for _, ev := range core.events[blk] {
			d, exact := s.eventDelta(ev)
			if !exact {
				sh.Coherent = false
			}
			out += d
		}
		for _, succ := range blk.Succs {
			if !sh.Reached[succ] {
				sh.Reached[succ] = true
				sh.Phase[succ] = out
				work = append(work, succ)
			} else if sh.Phase[succ] != out {
				sh.Coherent = false
			}
		}
	}
	// Sealing: escapes[b] — control can reach the exit from the start of b
	// without passing a full barrier (a callee that always crosses one
	// counts as a barrier).
	blocksBarrier := make(map[*cfg.Block]bool)
	for _, blk := range core.graph.Blocks {
		for _, ev := range core.events[blk] {
			if s.eventCrosses(ev) {
				blocksBarrier[blk] = true
				break
			}
		}
	}
	escapes := map[*cfg.Block]bool{core.graph.Exit: true}
	for changed := true; changed; {
		changed = false
		for _, blk := range core.graph.Blocks {
			if escapes[blk] || blocksBarrier[blk] {
				continue
			}
			for _, succ := range blk.Succs {
				if escapes[succ] {
					escapes[blk] = true
					changed = true
					break
				}
			}
		}
	}
	for _, blk := range core.graph.Blocks {
		evs := core.events[blk]
		suffixEscapes := false
		for _, succ := range blk.Succs {
			if escapes[succ] {
				suffixEscapes = true
				break
			}
		}
		if len(blk.Succs) == 0 && blk != core.graph.Exit {
			// Dead-end continuation: conservatively escaping.
			suffixEscapes = true
		}
		for i := len(evs) - 1; i >= 0; i-- {
			ev := evs[i]
			if s.eventCrosses(ev) {
				// The event itself guarantees a barrier for everything
				// before it; the event's own sealing is what follows it.
				sh.Sealed[ev.Call] = !suffixEscapes
				suffixEscapes = false
				continue
			}
			sh.Sealed[ev.Call] = !suffixEscapes
		}
	}
	s.shapes[body] = sh
	return sh
}

// eventDelta is the event's full-barrier count, and whether it is exact.
func (s *Set) eventDelta(ev Event) (int, bool) {
	if ev.IsOp {
		if ev.Op.Op == mixedapi.OpBarrier {
			return 1, true
		}
		return 0, true
	}
	if cs := s.calleeSummary(ev); cs != nil {
		return cs.Delta, cs.DeltaExact
	}
	return 0, true
}

// eventCrosses reports whether the event is guaranteed to cross a full
// barrier: the barrier op itself, or a callee every returning path of which
// crosses one. The ExitReached guard keeps functions that never return from
// vacuously claiming "always crosses" — their BarrierFree is false because
// no path reaches the exit at all, and treating them as sealing would be
// unsound.
func (s *Set) eventCrosses(ev Event) bool {
	if ev.IsOp {
		return ev.Op.Op == mixedapi.OpBarrier
	}
	if cs := s.calleeSummary(ev); cs != nil {
		return !cs.BarrierFree && cs.ExitReached
	}
	return false
}

// cycleBlocks marks blocks that lie on a control-flow cycle: b is on a
// cycle iff b is reachable from itself, checked by plain per-block DFS.
func cycleBlocks(g *cfg.Graph) map[*cfg.Block]bool {
	out := make(map[*cfg.Block]bool)
	for _, start := range g.Blocks {
		seen := make(map[*cfg.Block]bool)
		stack := append([]*cfg.Block(nil), start.Succs...)
		for len(stack) > 0 {
			b := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if b == start {
				out[start] = true
				break
			}
			if seen[b] {
				continue
			}
			seen[b] = true
			stack = append(stack, b.Succs...)
		}
	}
	return out
}
