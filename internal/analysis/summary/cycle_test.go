package summary

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"mixedmem/internal/analysis/cfg"
)

func TestCycleBlocksMatchesReachability(t *testing.T) {
	src := `package p
func f(c bool) {
	for i := 0; i < 10; i++ {
		if c {
			println("branch")
		} else {
			println("other")
		}
	}
}`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	body := f.Decls[0].(*ast.FuncDecl).Body
	g := cfg.New(body)

	// Ground truth: block b is on a cycle iff b is reachable from itself.
	onCycle := func(start *cfg.Block) bool {
		seen := make(map[*cfg.Block]bool)
		var stack []*cfg.Block
		stack = append(stack, start)
		for len(stack) > 0 {
			b := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, s := range b.Succs {
				if s == start {
					return true
				}
				if !seen[s] {
					seen[s] = true
					stack = append(stack, s)
				}
			}
		}
		return false
	}

	got := cycleBlocks(g)
	for i, blk := range g.Blocks {
		want := onCycle(blk)
		if got[blk] != want {
			t.Errorf("block %d: cycleBlocks=%v, ground truth=%v (stmts=%d succs=%d)",
				i, got[blk], want, len(blk.Stmts), len(blk.Succs))
		}
	}
}
