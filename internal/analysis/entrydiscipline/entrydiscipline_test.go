package entrydiscipline_test

import (
	"testing"

	"mixedmem/internal/analysis/analysistest"
	"mixedmem/internal/analysis/entrydiscipline"
)

func TestEntryDiscipline(t *testing.T) {
	res := analysistest.Run(t, entrydiscipline.Analyzer, "../testdata/src/entrydiscipline")
	facts, ok := res.(*entrydiscipline.Result)
	if !ok {
		t.Fatalf("result type = %T, want *entrydiscipline.Result", res)
	}
	if got := facts.LockOf["tab"]; got != "tab-lock" {
		t.Fatalf(`LockOf["tab"] = %q, want "tab-lock"`, got)
	}
	if got := facts.LockOf["shared"]; got != "m" {
		t.Fatalf(`LockOf["shared"] = %q, want "m"`, got)
	}
	if lock, ok := facts.LockOf["amb"]; ok {
		t.Fatalf(`ambiguous location "amb" associated with %q, want no association`, lock)
	}
	if lock, ok := facts.LockOf["solo"]; ok {
		t.Fatalf(`lock-free location "solo" associated with %q, want no association`, lock)
	}
}
