// Package entrydiscipline checks Corollary 3's program class: a location
// that the package elsewhere accesses under a lock is associated with that
// lock, and every ordinary write to an associated location must then happen
// inside a write-lock critical section of it — otherwise the program is not
// entry-consistent and the corollary's guarantee for PRAM reads of lock-
// protected data evaporates.
//
// Association is computed package-wide: any recognized access (read, await,
// or write) to constant location L at a point where constant lock K is held
// (in any mode) associates L with K. A write to an associated location at a
// point where its lock is not write-held is flagged. Locations associated
// with more than one lock are skipped — the discipline is ambiguous and the
// dynamic checker (check.EntryConsistent) is the arbiter there. Counter
// operations (Add/AddFloat) are exempt, as in the dynamic checker
// (Section 5.3).
package entrydiscipline

import (
	"sort"

	"mixedmem/internal/analysis/framework"
	"mixedmem/internal/analysis/lockdiscipline"
	"mixedmem/internal/analysis/mixedapi"
)

// Analyzer is the entrydiscipline pass.
var Analyzer = &framework.Analyzer{
	Name: "entrydiscipline",
	Doc:  "flag writes outside a write-lock critical section to locations elsewhere accessed under that lock (Corollary 3)",
	Run:  run,
}

// Result records the package's location→lock association for the static
// advice engine.
type Result struct {
	// LockOf maps each constant location to the single lock it is
	// associated with; locations seen under several locks are absent.
	LockOf map[string]string
}

// access is one recognized constant-location operation plus the lock state
// at its site.
type access struct {
	call  mixedapi.Call
	state lockdiscipline.State
}

func run(pass *framework.Pass) (any, error) {
	var accesses []access
	for _, unit := range mixedapi.Units(pass.Files) {
		flow := lockdiscipline.Analyze(pass, unit)
		for _, c := range mixedapi.CallsIn(pass.TypesInfo, unit.Body) {
			if !c.Const {
				continue
			}
			if c.Op != mixedapi.OpWrite && !c.Op.IsRead() {
				continue
			}
			accesses = append(accesses, access{call: c, state: flow.At(c.Expr)})
		}
	}

	// Pass 1: associate locations with the locks held at their accesses.
	locks := make(map[string]map[string]bool) // loc -> set of lock names
	for _, a := range accesses {
		for lock, mode := range a.state {
			if mode == lockdiscipline.ReadHeld || mode == lockdiscipline.WriteHeld {
				if locks[a.call.Name] == nil {
					locks[a.call.Name] = make(map[string]bool)
				}
				locks[a.call.Name][lock] = true
			}
		}
	}
	res := &Result{LockOf: make(map[string]string)}
	for loc, set := range locks {
		if len(set) == 1 {
			for lock := range set {
				res.LockOf[loc] = lock
			}
		}
	}

	// Pass 2: writes to an associated location need its write lock held.
	sort.Slice(accesses, func(i, j int) bool { return accesses[i].call.Pos < accesses[j].call.Pos })
	for _, a := range accesses {
		if a.call.Op != mixedapi.OpWrite {
			continue
		}
		lock, ok := res.LockOf[a.call.Name]
		if !ok {
			continue
		}
		switch a.state[lock] {
		case lockdiscipline.WriteHeld, lockdiscipline.Unknown:
			// Held, or paths disagree — stay quiet rather than guess.
		default:
			pass.Reportf(a.call.Pos,
				"write to %q outside the %q write-lock critical section: %q is elsewhere accessed under %q, so unprotected writes break entry consistency (Corollary 3)",
				a.call.Name, lock, a.call.Name, lock)
		}
	}
	return res, nil
}
