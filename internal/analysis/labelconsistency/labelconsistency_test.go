package labelconsistency_test

import (
	"testing"

	"mixedmem/internal/analysis/analysistest"
	"mixedmem/internal/analysis/labelconsistency"
)

func TestLabelConsistency(t *testing.T) {
	res := analysistest.Run(t, labelconsistency.Analyzer, "../testdata/src/labelconsistency")
	facts, ok := res.(*labelconsistency.Result)
	if !ok {
		t.Fatalf("result type = %T, want *labelconsistency.Result", res)
	}
	mixed := labelconsistency.Mixed(facts.Sites)
	if len(mixed) != 2 {
		t.Fatalf("mixed-label locations = %d, want 2 (cfg, gate)", len(mixed))
	}
	if mixed[0][0].Loc != "cfg" || mixed[1][0].Loc != "gate" {
		t.Fatalf("mixed locations = %q, %q, want cfg, gate", mixed[0][0].Loc, mixed[1][0].Loc)
	}
}
