// Package labelconsistency checks that each constant location is read with
// one consistency label. The model permits mixing labels per read, but a
// location read both PRAM and causal usually signals that one of the sites
// is relying on an ordering guarantee the other has decided is unnecessary —
// the paper's corollaries justify a label per location (its access
// discipline), not per read site. Both sites are named so either can be
// fixed. Dynamic-label reads (core.Process.Read) and dynamic location names
// are skipped.
package labelconsistency

import (
	"go/token"
	"sort"

	"mixedmem/internal/analysis/framework"
	"mixedmem/internal/analysis/mixedapi"
)

// Analyzer is the labelconsistency pass.
var Analyzer = &framework.Analyzer{
	Name: "labelconsistency",
	Doc:  "flag constant locations read with both the PRAM and causal labels",
	Run:  run,
}

// Site is one labeled read of a constant location.
type Site struct {
	Loc   string
	PRAM  bool // PRAM-labeled if true, causal-labeled if false
	Pos   token.Pos
	Descr string // the method or helper name, for diagnostics
}

// Result carries every labeled read site out of the package so the driver
// can repeat the check program-wide, across package boundaries.
type Result struct {
	Sites []Site
}

func run(pass *framework.Pass) (any, error) {
	res := &Result{Sites: Collect(pass)}
	for _, pair := range Mixed(res.Sites) {
		pass.Reportf(pair[0].Pos,
			"location %q is read with mixed labels: %s here is PRAM-labeled, but %s reads it causally — pick one label per location",
			pair[0].Loc, pair[0].Descr, pass.Fset.Position(pair[1].Pos))
		pass.Reportf(pair[1].Pos,
			"location %q is read with mixed labels: %s here is causal-labeled, but %s reads it PRAM (weaker ordering) — pick one label per location",
			pair[1].Loc, pair[1].Descr, pass.Fset.Position(pair[0].Pos))
	}
	return res, nil
}

// Collect gathers the labeled read sites of one package.
func Collect(pass *framework.Pass) []Site {
	var sites []Site
	for _, unit := range mixedapi.Units(pass.Files) {
		for _, c := range mixedapi.CallsIn(pass.TypesInfo, unit.Body) {
			if !c.Const {
				continue
			}
			var pram bool
			switch {
			case c.Op.IsPRAMLabeled():
				pram = true
			case c.Op.IsCausalLabeled():
				pram = false
			default:
				continue
			}
			sites = append(sites, Site{Loc: c.Name, PRAM: pram, Pos: c.Pos, Descr: opName(c.Op)})
		}
	}
	return sites
}

// Mixed returns, for each location read with both labels, one representative
// [PRAM site, causal site] pair (the earliest site of each label).
func Mixed(sites []Site) [][2]Site {
	first := make(map[string]map[bool]Site)
	for _, s := range sites {
		if first[s.Loc] == nil {
			first[s.Loc] = make(map[bool]Site)
		}
		if prev, ok := first[s.Loc][s.PRAM]; !ok || s.Pos < prev.Pos {
			first[s.Loc][s.PRAM] = s
		}
	}
	var locs []string
	for loc, byLabel := range first {
		if len(byLabel) == 2 {
			locs = append(locs, loc)
		}
	}
	sort.Strings(locs)
	var out [][2]Site
	for _, loc := range locs {
		out = append(out, [2]Site{first[loc][true], first[loc][false]})
	}
	return out
}

func opName(op mixedapi.Op) string {
	switch op {
	case mixedapi.OpReadPRAM:
		return "ReadPRAM"
	case mixedapi.OpReadCausal:
		return "ReadCausal"
	case mixedapi.OpAwaitCausal:
		return "Await"
	case mixedapi.OpAwaitPRAM:
		return "AwaitPRAM"
	}
	return "read"
}
