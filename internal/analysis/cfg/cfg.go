// Package cfg builds intraprocedural control-flow graphs over go/ast
// function bodies — the minimal subset of golang.org/x/tools/go/cfg the
// mixedvet analyzers need. Blocks hold statements in execution order;
// control statements (if/for/range/switch/select) contribute their
// initializers and condition expressions to the block that evaluates them
// and fan out through successor edges. Function literals nested in a body
// are opaque: their statements belong to their own graph, never the
// enclosing function's.
package cfg

import "go/ast"

// Block is one basic block: statements that execute sequentially, then a
// transfer of control to one of Succs.
type Block struct {
	// Stmts are the statements (and, for control headers, condition
	// expressions wrapped in ast.ExprStmt-free form via Nodes) executed in
	// order.
	Stmts []ast.Node
	Succs []*Block
	// Return is set when the block ends with a return statement; Exit edges
	// from returns join the function exit block.
	Return *ast.ReturnStmt
	index  int
}

// Graph is a function body's control-flow graph.
type Graph struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block
}

type builder struct {
	g *Graph
	// breakTo / continueTo are the current targets of unlabeled break and
	// continue.
	breakTo    *Block
	continueTo *Block
	// labels maps a label name to its loop/switch targets.
	labels map[string]*labelTargets
	// gotos are resolved after the walk: a goto jumps to its label's entry.
	gotos      []pendingGoto
	labelEntry map[string]*Block
}

type labelTargets struct {
	brk  *Block
	cont *Block
}

type pendingGoto struct {
	from  *Block
	label string
}

// New builds the graph of one function body.
func New(body *ast.BlockStmt) *Graph {
	g := &Graph{}
	b := &builder{
		g:          g,
		labels:     make(map[string]*labelTargets),
		labelEntry: make(map[string]*Block),
	}
	g.Entry = b.newBlock()
	g.Exit = b.newBlock()
	last := b.stmts(g.Entry, body.List)
	b.edge(last, g.Exit)
	for _, pg := range b.gotos {
		if target, ok := b.labelEntry[pg.label]; ok {
			b.edge(pg.from, target)
		} else {
			// Unresolvable goto (label outside the analyzed subset):
			// conservatively fall through to exit.
			b.edge(pg.from, g.Exit)
		}
	}
	return g
}

func (b *builder) newBlock() *Block {
	blk := &Block{index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// stmts threads the statement list through cur, returning the block control
// falls out of (nil when the list cannot complete normally).
func (b *builder) stmts(cur *Block, list []ast.Stmt) *Block {
	for _, s := range list {
		cur = b.stmt(cur, s)
		if cur == nil {
			// Unreachable continuation (after return/break/...): park the
			// remaining statements in a fresh block with no predecessors so
			// analyzers still see them.
			cur = b.newBlock()
		}
	}
	return cur
}

func (b *builder) stmt(cur *Block, s ast.Stmt) *Block {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return b.stmts(cur, s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			cur.Stmts = append(cur.Stmts, s.Init)
		}
		cur.Stmts = append(cur.Stmts, s.Cond)
		join := b.newBlock()
		then := b.newBlock()
		b.edge(cur, then)
		b.edge(b.stmt(then, s.Body), join)
		if s.Else != nil {
			els := b.newBlock()
			b.edge(cur, els)
			b.edge(b.stmt(els, s.Else), join)
		} else {
			b.edge(cur, join)
		}
		return join

	case *ast.ForStmt:
		if s.Init != nil {
			cur.Stmts = append(cur.Stmts, s.Init)
		}
		head := b.newBlock()
		b.edge(cur, head)
		if s.Cond != nil {
			head.Stmts = append(head.Stmts, s.Cond)
		}
		body := b.newBlock()
		after := b.newBlock()
		b.edge(head, body)
		if s.Cond != nil {
			b.edge(head, after)
		}
		post := head
		if s.Post != nil {
			post = b.newBlock()
			post.Stmts = append(post.Stmts, s.Post)
			b.edge(post, head)
		}
		end := b.loopBody(body, s.Body.List, after, post)
		b.edge(end, post)
		return after

	case *ast.RangeStmt:
		head := b.newBlock()
		// Only the range expression evaluates at the head; the body has its
		// own blocks.
		head.Stmts = append(head.Stmts, s.X)
		b.edge(cur, head)
		body := b.newBlock()
		after := b.newBlock()
		b.edge(head, body)
		b.edge(head, after)
		end := b.loopBody(body, s.Body.List, after, head)
		b.edge(end, head)
		return after

	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		var init ast.Stmt
		var tag ast.Node
		var clauses []ast.Stmt
		switch sw := s.(type) {
		case *ast.SwitchStmt:
			init, tag = sw.Init, sw.Tag
			clauses = sw.Body.List
		case *ast.TypeSwitchStmt:
			init, tag = sw.Init, sw.Assign
			clauses = sw.Body.List
		}
		if init != nil {
			cur.Stmts = append(cur.Stmts, init)
		}
		if tag != nil {
			cur.Stmts = append(cur.Stmts, tag)
		}
		join := b.newBlock()
		savedBreak := b.breakTo
		b.breakTo = join
		hasDefault := false
		var caseBlocks []*Block
		var caseBodies [][]ast.Stmt
		for _, c := range clauses {
			cc := c.(*ast.CaseClause)
			if cc.List == nil {
				hasDefault = true
			}
			blk := b.newBlock()
			for _, e := range cc.List {
				blk.Stmts = append(blk.Stmts, e)
			}
			b.edge(cur, blk)
			caseBlocks = append(caseBlocks, blk)
			caseBodies = append(caseBodies, cc.Body)
		}
		for i, blk := range caseBlocks {
			end := b.stmtsWithFallthrough(blk, caseBodies[i], caseBlocks, i)
			b.edge(end, join)
		}
		if !hasDefault {
			b.edge(cur, join)
		}
		b.breakTo = savedBreak
		return join

	case *ast.SelectStmt:
		join := b.newBlock()
		savedBreak := b.breakTo
		b.breakTo = join
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			blk := b.newBlock()
			if cc.Comm != nil {
				blk.Stmts = append(blk.Stmts, cc.Comm)
			}
			b.edge(cur, blk)
			b.edge(b.stmts(blk, cc.Body), join)
		}
		b.breakTo = savedBreak
		if len(s.Body.List) == 0 {
			return nil // empty select blocks forever
		}
		return join

	case *ast.LabeledStmt:
		head := b.newBlock()
		b.edge(cur, head)
		b.labelEntry[s.Label.Name] = head
		after := b.newBlock()
		b.labels[s.Label.Name] = &labelTargets{brk: after}
		end := b.labeledStmt(head, s.Label.Name, s.Stmt)
		b.edge(end, after)
		return after

	case *ast.BranchStmt:
		cur.Stmts = append(cur.Stmts, s)
		switch s.Tok.String() {
		case "break":
			if s.Label != nil {
				if t, ok := b.labels[s.Label.Name]; ok {
					b.edge(cur, t.brk)
				}
			} else {
				b.edge(cur, b.breakTo)
			}
			return nil
		case "continue":
			if s.Label != nil {
				if t, ok := b.labels[s.Label.Name]; ok && t.cont != nil {
					b.edge(cur, t.cont)
				}
			} else {
				b.edge(cur, b.continueTo)
			}
			return nil
		case "goto":
			b.gotos = append(b.gotos, pendingGoto{from: cur, label: s.Label.Name})
			return nil
		case "fallthrough":
			// Handled by stmtsWithFallthrough; standalone occurrence ends
			// the block.
			return nil
		}
		return cur

	case *ast.ReturnStmt:
		cur.Stmts = append(cur.Stmts, s)
		cur.Return = s
		b.edge(cur, b.g.Exit)
		return nil

	default:
		// Plain statements, including defer/go (whose call expressions are
		// part of this block's evaluation) and expression statements.
		cur.Stmts = append(cur.Stmts, s)
		return cur
	}
}

// loopBody runs a loop body with break/continue targets bound.
func (b *builder) loopBody(body *Block, list []ast.Stmt, brk, cont *Block) *Block {
	savedBreak, savedCont := b.breakTo, b.continueTo
	b.breakTo, b.continueTo = brk, cont
	end := b.stmts(body, list)
	b.breakTo, b.continueTo = savedBreak, savedCont
	return end
}

// labeledStmt runs the statement under a label, binding the label's continue
// target when the statement is a loop.
func (b *builder) labeledStmt(cur *Block, label string, s ast.Stmt) *Block {
	t := b.labels[label]
	switch s := s.(type) {
	case *ast.ForStmt:
		if s.Init != nil {
			cur.Stmts = append(cur.Stmts, s.Init)
		}
		head := b.newBlock()
		b.edge(cur, head)
		if s.Cond != nil {
			head.Stmts = append(head.Stmts, s.Cond)
		}
		body := b.newBlock()
		b.edge(head, body)
		if s.Cond != nil {
			b.edge(head, t.brk)
		}
		post := head
		if s.Post != nil {
			post = b.newBlock()
			post.Stmts = append(post.Stmts, s.Post)
			b.edge(post, head)
		}
		t.cont = post
		end := b.loopBody(body, s.Body.List, t.brk, post)
		b.edge(end, post)
		return nil // loop exit goes straight to t.brk (the after block)
	case *ast.RangeStmt:
		head := b.newBlock()
		head.Stmts = append(head.Stmts, s.X)
		b.edge(cur, head)
		body := b.newBlock()
		b.edge(head, body)
		b.edge(head, t.brk)
		t.cont = head
		end := b.loopBody(body, s.Body.List, t.brk, head)
		b.edge(end, head)
		return nil
	default:
		return b.stmt(cur, s)
	}
}

// stmtsWithFallthrough handles a switch case body whose final statement may
// be a fallthrough into the next case's body.
func (b *builder) stmtsWithFallthrough(cur *Block, list []ast.Stmt, cases []*Block, i int) *Block {
	if n := len(list); n > 0 {
		if br, ok := list[n-1].(*ast.BranchStmt); ok && br.Tok.String() == "fallthrough" && i+1 < len(cases) {
			end := b.stmts(cur, list[:n-1])
			b.edge(end, cases[i+1])
			return nil
		}
	}
	return b.stmts(cur, list)
}
