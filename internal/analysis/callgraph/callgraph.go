// Package callgraph builds the static call graph of a loaded program: one
// node per analysis unit (function declaration or function literal), edges
// for calls whose target resolves statically to a unit with a body in the
// program. The graph is what turns the mixedvet suite interprocedural — the
// summary package walks it bottom-up (callees before callers, via the SCC
// order) to compute effect summaries, and top-down to propagate call-site
// context (lock state, pending phase accesses, process roles) into helpers.
//
// Resolution is deliberately simple and sound-by-classification: a call
// resolves if its function expression names a declared function or method
// of a loaded package (plain identifier or selector), or is a directly
// invoked function literal. Everything else — function values, interface
// methods, standard-library calls — stays unresolved, and consumers treat
// the call as opaque. Calls spawned with `go` are recorded as spawn edges,
// not call edges: the callee runs concurrently, so its effects must not be
// applied at the call site; it is instead analyzed as a root of its own.
package callgraph

import (
	"go/ast"
	"go/types"

	"mixedmem/internal/analysis/framework"
	"mixedmem/internal/analysis/mixedapi"
)

// Node is one function unit in the graph.
type Node struct {
	Unit mixedapi.FuncUnit
	Pkg  *framework.Package
	// Fn is the declared function or method object; nil for literals.
	Fn *types.Func
	// Body is the unit's body, the node's identity across maps.
	Body *ast.BlockStmt

	// Callees are the distinct static call targets (spawns excluded).
	Callees []*Node
	// Callers are the distinct nodes with a call edge to this one.
	Callers []*Node
	// AddressTaken means the function is referenced outside call position
	// (stored, passed as a value): it can be invoked from contexts the
	// graph cannot see, so context propagation must not assume its call
	// sites are exhaustive.
	AddressTaken bool
	// Spawned means the unit is started with `go` (or is a function
	// literal handed to core.Forall): it runs on its own strand.
	Spawned bool
	// Recursive means the node sits on a call cycle (an SCC of size > 1,
	// or a direct self-call).
	Recursive bool

	index, lowlink int
	onStack        bool
}

// IsRoot reports whether the node must be analyzed from an empty context:
// nothing calls it statically, or it escapes as a value or goroutine, so
// its call sites are not exhaustive.
func (n *Node) IsRoot() bool {
	return len(n.Callers) == 0 || n.AddressTaken || n.Spawned
}

// Name describes the node for diagnostics.
func (n *Node) Name() string {
	if n.Fn != nil {
		return n.Fn.Name()
	}
	return n.Unit.Name
}

// Graph is the program's call graph.
type Graph struct {
	Nodes  []*Node
	ByFunc map[*types.Func]*Node
	ByBody map[*ast.BlockStmt]*Node
	// SCCs lists the strongly connected components in reverse topological
	// order: every callee SCC appears before any of its caller SCCs, which
	// is the order bottom-up summary computation wants.
	SCCs [][]*Node
}

const factKey = "mixedvet.callgraph"

// Of returns the program's call graph, building it on first use and
// memoizing it on the program.
func Of(prog *framework.Program) *Graph {
	return prog.Fact(factKey, func() any { return Build(prog) }).(*Graph)
}

// Build constructs the call graph over every package of the program.
func Build(prog *framework.Program) *Graph {
	g := &Graph{
		ByFunc: make(map[*types.Func]*Node),
		ByBody: make(map[*ast.BlockStmt]*Node),
	}
	// Nodes: every unit of every package, with its defining object.
	for _, pkg := range prog.Packages() {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncDecl:
					if n.Body == nil {
						return true
					}
					node := &Node{
						Unit: mixedapi.FuncUnit{Name: n.Name.Name, Body: n.Body, Pos: n.Pos()},
						Pkg:  pkg,
						Body: n.Body,
					}
					if fn, ok := pkg.Info.Defs[n.Name].(*types.Func); ok {
						node.Fn = fn
						g.ByFunc[fn] = node
					}
					g.Nodes = append(g.Nodes, node)
					g.ByBody[n.Body] = node
				case *ast.FuncLit:
					node := &Node{
						Unit: mixedapi.FuncUnit{Name: "func literal", Body: n.Body, Pos: n.Pos()},
						Pkg:  pkg,
						Body: n.Body,
					}
					g.Nodes = append(g.Nodes, node)
					g.ByBody[n.Body] = node
				}
				return true
			})
		}
	}
	// Edges and escapes.
	for _, pkg := range prog.Packages() {
		for _, f := range pkg.Files {
			g.scanFile(pkg, f)
		}
		for body := range mixedapi.ThreadBodies(pkg.Info, pkg.Files) {
			if n := g.ByBody[body]; n != nil {
				n.Spawned = true
			}
		}
	}
	g.computeSCCs()
	return g
}

// Callee resolves a call expression to its static target, or nil.
func (g *Graph) Callee(info *types.Info, call *ast.CallExpr) *Node {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		return g.ByBody[fun.Body]
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return g.ByFunc[fn]
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return g.ByFunc[fn]
		}
	}
	return nil
}

// scanFile walks one file attributing call edges and escape marks to the
// enclosing unit. Call expressions under `go` statements become spawn
// marks; function references outside call position become AddressTaken.
func (g *Graph) scanFile(pkg *framework.Package, f *ast.File) {
	info := pkg.Info
	// callFuns is the set of expressions used as the Fun of a call (after
	// unparenthesizing); references to graph functions outside this set
	// are address-taken.
	callFuns := make(map[ast.Node]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			callFuns[ast.Unparen(call.Fun)] = true
		}
		return true
	})
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			if callee := g.Callee(info, n.Call); callee != nil {
				callee.Spawned = true
			}
		case *ast.Ident:
			if callFuns[n] {
				return true
			}
			if fn, ok := info.Uses[n].(*types.Func); ok {
				if node := g.ByFunc[fn]; node != nil {
					node.AddressTaken = true
				}
			}
		case *ast.SelectorExpr:
			if callFuns[n] {
				// The selector is a call target; do not also visit its Sel
				// as a bare reference.
				ast.Inspect(n.X, func(c ast.Node) bool { return g.markRefs(info, callFuns, c) })
				return false
			}
			if fn, ok := info.Uses[n.Sel].(*types.Func); ok {
				if node := g.ByFunc[fn]; node != nil {
					node.AddressTaken = true
				}
			}
		case *ast.FuncLit:
			if !callFuns[n] {
				if node := g.ByBody[n.Body]; node != nil {
					node.AddressTaken = true
				}
			}
		}
		return true
	})
	// Call edges, attributed to the innermost enclosing unit.
	var attach func(owner *Node, n ast.Node)
	attach = func(owner *Node, n ast.Node) {
		ast.Inspect(n, func(c ast.Node) bool {
			switch c := c.(type) {
			case *ast.FuncLit:
				if inner := g.ByBody[c.Body]; inner != nil && c != n {
					attach(inner, c.Body)
					return false
				}
			case *ast.GoStmt:
				// The spawned call is not a call edge; but its arguments may
				// contain calls that do run synchronously.
				for _, arg := range c.Call.Args {
					attach(owner, arg)
				}
				attach(owner, c.Call.Fun)
				return false
			case *ast.CallExpr:
				if _, ok := mixedapi.Classify(info, c); ok {
					return true
				}
				if callee := g.Callee(info, c); callee != nil && owner != nil {
					addEdge(owner, callee)
				}
			}
			return true
		})
	}
	for _, decl := range f.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
			attach(g.ByBody[fd.Body], fd.Body)
		}
	}
}

func (g *Graph) markRefs(info *types.Info, callFuns map[ast.Node]bool, n ast.Node) bool {
	switch n := n.(type) {
	case *ast.Ident:
		if !callFuns[n] {
			if fn, ok := info.Uses[n].(*types.Func); ok {
				if node := g.ByFunc[fn]; node != nil {
					node.AddressTaken = true
				}
			}
		}
	}
	return true
}

func addEdge(from, to *Node) {
	for _, c := range from.Callees {
		if c == to {
			return
		}
	}
	from.Callees = append(from.Callees, to)
	to.Callers = append(to.Callers, from)
}

// computeSCCs runs Tarjan's algorithm (iteratively, to survive deep
// graphs). Tarjan emits sink components first, which for caller→callee
// edges means callees before callers — exactly the bottom-up order.
func (g *Graph) computeSCCs() {
	next := 1
	var stack []*Node
	type frame struct {
		n  *Node
		ci int
	}
	for _, start := range g.Nodes {
		if start.index != 0 {
			continue
		}
		work := []frame{{n: start}}
		for len(work) > 0 {
			fr := &work[len(work)-1]
			n := fr.n
			if fr.ci == 0 {
				n.index, n.lowlink = next, next
				next++
				stack = append(stack, n)
				n.onStack = true
			}
			advanced := false
			for fr.ci < len(n.Callees) {
				c := n.Callees[fr.ci]
				fr.ci++
				if c.index == 0 {
					work = append(work, frame{n: c})
					advanced = true
					break
				}
				if c.onStack && c.index < n.lowlink {
					n.lowlink = c.index
				}
			}
			if advanced {
				continue
			}
			if n.lowlink == n.index {
				var scc []*Node
				for {
					m := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					m.onStack = false
					scc = append(scc, m)
					if m == n {
						break
					}
				}
				if len(scc) > 1 {
					for _, m := range scc {
						m.Recursive = true
					}
				} else {
					for _, c := range scc[0].Callees {
						if c == scc[0] {
							scc[0].Recursive = true
						}
					}
				}
				g.SCCs = append(g.SCCs, scc)
			}
			work = work[:len(work)-1]
			if len(work) > 0 {
				parent := work[len(work)-1].n
				if n.lowlink < parent.lowlink {
					parent.lowlink = n.lowlink
				}
			}
		}
	}
}
