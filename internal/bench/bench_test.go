package bench

import (
	"testing"

	"mixedmem/internal/dsm"
	"mixedmem/internal/network"
	"mixedmem/internal/syncmgr"
)

// The bench runners are exercised here with the zero latency model so the
// whole suite stays fast; the shape assertions (who wins, what is zero) are
// the paper's claims and must hold at any latency scale.

func TestRunFigure1(t *testing.T) {
	r, err := RunFigure1()
	if err != nil {
		t.Fatalf("RunFigure1: %v", err)
	}
	if !r.PropertiesHold {
		t.Fatal("Section 3.1.1 lock-order properties do not hold")
	}
	if r.Ops != 15 {
		t.Errorf("ops = %d, want 15", r.Ops)
	}
	if r.LockOrderPairs == 0 || r.BarrierPairs == 0 || r.CausalityPairs == 0 {
		t.Errorf("degenerate orders: %+v", r)
	}
	if r.String() == "" {
		t.Error("empty String")
	}
}

func TestRunSolverComparison(t *testing.T) {
	r, err := RunSolverComparison(10, 3, network.LatencyModel{}, 1)
	if err != nil {
		t.Fatalf("RunSolverComparison: %v", err)
	}
	if r.BarrierResidual > 1e-7 || r.HandshakeResidual > 1e-7 {
		t.Fatalf("solvers did not converge: %+v", r)
	}
	if r.BarrierIters == 0 || r.HandshakeIters == 0 {
		t.Fatalf("no iterations recorded: %+v", r)
	}
	// The handshake protocol exchanges at least as many messages as the
	// barrier protocol on the same problem: four awaited writes per worker
	// per iteration versus one arrive/release pair per process.
	if r.HandshakeMsgs < r.BarrierMsgs/2 {
		t.Errorf("unexpected message balance: %+v", r)
	}
	if r.String() == "" {
		t.Error("empty String")
	}
}

func TestRunPRAMInsufficiency(t *testing.T) {
	r, err := RunPRAMInsufficiency()
	if err != nil {
		t.Fatalf("RunPRAMInsufficiency: %v", err)
	}
	if !r.Demonstrated {
		t.Fatalf("insufficiency not demonstrated: %+v", r)
	}
}

func TestRunEMField(t *testing.T) {
	r, err := RunEMField(32, 10, 4, network.LatencyModel{}, 2)
	if err != nil {
		t.Fatalf("RunEMField: %v", err)
	}
	if r.MaxError != 0 {
		t.Fatalf("parallel EM field differs from sequential: %+v", r)
	}
	if r.UpdateMsgs == 0 {
		t.Error("no boundary updates exchanged")
	}
}

func TestRunCholeskyComparison(t *testing.T) {
	r, err := RunCholeskyComparison(12, 3, 0.3, network.LatencyModel{}, 3)
	if err != nil {
		t.Fatalf("RunCholeskyComparison: %v", err)
	}
	if r.LockError > 1e-8 || r.CounterError > 1e-6 {
		t.Fatalf("factorization errors too large: %+v", r)
	}
	if r.LockAcquires == 0 {
		t.Error("lock variant acquired no locks")
	}
	// The counter variant eliminates all lock traffic, so it sends fewer
	// protocol messages overall on the same problem.
	if r.CounterMsgs >= r.LockMsgs {
		t.Errorf("counter variant did not reduce messages: %+v", r)
	}
}

func TestRunPropagationSweep(t *testing.T) {
	w := PropagationWorkload{Procs: 3, Handoffs: 5, WritesPerCS: 4, ReadBack: false}
	rs, err := RunPropagationSweep(w, network.LatencyModel{}, 4)
	if err != nil {
		t.Fatalf("RunPropagationSweep: %v", err)
	}
	if len(rs) != 3 {
		t.Fatalf("got %d modes", len(rs))
	}
	byMode := map[syncmgr.PropagationMode]PropagationResult{}
	for _, r := range rs {
		byMode[r.Mode] = r
	}
	// Eager is the only mode with flush traffic; lazy and demand-driven
	// send none.
	if byMode[syncmgr.Eager].FlushMsgs == 0 {
		t.Error("eager mode sent no flush messages")
	}
	if byMode[syncmgr.Lazy].FlushMsgs != 0 || byMode[syncmgr.DemandDriven].FlushMsgs != 0 {
		t.Error("non-eager modes sent flush messages")
	}
	// Eager therefore sends the most messages.
	if byMode[syncmgr.Eager].Msgs <= byMode[syncmgr.Lazy].Msgs {
		t.Errorf("eager should out-message lazy: %+v vs %+v",
			byMode[syncmgr.Eager], byMode[syncmgr.Lazy])
	}
}

// TestBatchingHalvesE6Messages is the acceptance gate for the update outbox:
// under the E6 lock-handoff workload, batching at the critical-section width
// must cut total fabric messages (and update frames by close to WritesPerCS)
// at least in half compared to the unbatched baseline, in every propagation
// mode.
func TestBatchingHalvesE6Messages(t *testing.T) {
	w := PropagationWorkload{Procs: 4, Handoffs: 10, WritesPerCS: 8, ReadBack: false}
	wb := w
	wb.Batch = dsm.BatchConfig{Enabled: true, MaxUpdates: 32}

	before, err := RunPropagationSweep(w, network.LatencyModel{}, 4)
	if err != nil {
		t.Fatalf("RunPropagationSweep (unbatched): %v", err)
	}
	after, err := RunPropagationSweep(wb, network.LatencyModel{}, 4)
	if err != nil {
		t.Fatalf("RunPropagationSweep (batched): %v", err)
	}
	byMode := map[syncmgr.PropagationMode]PropagationResult{}
	for _, r := range after {
		byMode[r.Mode] = r
	}
	for _, b := range before {
		a := byMode[b.Mode]
		if a.Msgs*2 > b.Msgs {
			t.Errorf("%v: batching reduced messages only %d -> %d, want >= 2x",
				b.Mode, b.Msgs, a.Msgs)
		}
		// With 8 writes per critical section and a 32-wide outbox, every
		// critical section's updates should leave as one frame per
		// destination: an ~8x collapse, so comfortably >= 4x.
		if a.UpdateFrames*4 > b.UpdateFrames {
			t.Errorf("%v: update frames reduced only %d -> %d, want >= 4x",
				b.Mode, b.UpdateFrames, a.UpdateFrames)
		}
	}
}

// TestBatchSweepMonotoneFrames checks the sweep helper: update frames shrink
// as the batch window widens, and size 0 reproduces the unbatched baseline.
func TestBatchSweepMonotoneFrames(t *testing.T) {
	w := PropagationWorkload{Procs: 3, Handoffs: 5, WritesPerCS: 4, ReadBack: false}
	rows, err := RunPropagationBatchSweep(
		syncmgr.Lazy, w, []int{0, 1, 4, 16}, network.LatencyModel{}, 4)
	if err != nil {
		t.Fatalf("RunPropagationBatchSweep: %v", err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[0].Batch != 0 || rows[1].Batch != 1 || rows[3].Batch != 16 {
		t.Fatalf("batch labels wrong: %+v", rows)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].UpdateFrames > rows[i-1].UpdateFrames {
			t.Errorf("update frames grew from batch=%d (%d) to batch=%d (%d)",
				rows[i-1].Batch, rows[i-1].UpdateFrames, rows[i].Batch, rows[i].UpdateFrames)
		}
	}
	// All workload writes still happen regardless of batch size: the update
	// frames with batch=1 equal the baseline (every batch is a singleton).
	if rows[1].UpdateFrames != rows[0].UpdateFrames {
		t.Errorf("batch=1 sent %d update frames, baseline %d — should match",
			rows[1].UpdateFrames, rows[0].UpdateFrames)
	}
}

func TestRunGaussSeidel(t *testing.T) {
	r, err := RunGaussSeidel(12, 3, 80, 5)
	if err != nil {
		t.Fatalf("RunGaussSeidel: %v", err)
	}
	if r.Error > 1e-6 {
		t.Fatalf("asynchronous relaxation did not converge: %+v", r)
	}
}

func TestRunGaussSeidelErrorShrinksWithRounds(t *testing.T) {
	short, err := RunGaussSeidel(12, 3, 4, 6)
	if err != nil {
		t.Fatalf("short: %v", err)
	}
	long, err := RunGaussSeidel(12, 3, 100, 6)
	if err != nil {
		t.Fatalf("long: %v", err)
	}
	if long.Error >= short.Error && short.Error > 1e-9 {
		t.Fatalf("error did not shrink: short=%v long=%v", short.Error, long.Error)
	}
}

func TestRunLatencyMicro(t *testing.T) {
	lat := network.LatencyModel{Fixed: 300 * 1000} // 300µs in ns
	r, err := RunLatencyMicro(20, lat)
	if err != nil {
		t.Fatalf("RunLatencyMicro: %v", err)
	}
	// The paper's motivation: weak operations are local, SC operations pay
	// a round trip. Require at least an order of magnitude separation.
	if r.SCRead < 10*r.PRAMRead || r.SCWrite < 10*r.Write {
		t.Fatalf("no latency separation: %+v", r)
	}
}

func TestRunCorollaries(t *testing.T) {
	if testing.Short() {
		t.Skip("property test")
	}
	r, err := RunCorollaries(5)
	if err != nil {
		t.Fatalf("RunCorollaries: %v", err)
	}
	if !r.Passed() {
		t.Fatalf("corollary property violated: %+v", r)
	}
}

func TestRunPipelineComparison(t *testing.T) {
	r, err := RunPipelineComparison(15, 3, network.LatencyModel{}, 1)
	if err != nil {
		t.Fatalf("RunPipelineComparison: %v", err)
	}
	if !r.OutputsMatch {
		t.Fatal("pipeline outputs do not match the reference")
	}
	// The lock-based variant pays manager round trips per item (polling
	// plus grant traffic); the await variant needs none.
	if r.LockMsgs <= r.AwaitMsgs {
		t.Fatalf("lock pipeline (%d msgs) should out-message await pipeline (%d msgs)",
			r.LockMsgs, r.AwaitMsgs)
	}
}

func TestRunEM2DField(t *testing.T) {
	r, err := RunEM2DField(16, 6, 3, network.LatencyModel{}, 2)
	if err != nil {
		t.Fatalf("RunEM2DField: %v", err)
	}
	if !r.Exact {
		t.Fatal("2-D parallel fields differ from sequential")
	}
	if r.UpdateMsgs == 0 {
		t.Error("no boundary rows exchanged")
	}
}

func TestRunRedBlack(t *testing.T) {
	r, err := RunRedBlack(14, 3, network.LatencyModel{}, 2)
	if err != nil {
		t.Fatalf("RunRedBlack: %v", err)
	}
	if !r.BothMatchDirect {
		t.Fatal("a solver diverged from the direct solution")
	}
	if r.RBSweeps > r.JacobiSweeps {
		t.Fatalf("red-black (%d sweeps) should not exceed Jacobi (%d)", r.RBSweeps, r.JacobiSweeps)
	}
}
