// Package bench implements the experiment harness: one runner per
// EXPERIMENTS.md entry (E1–E9), each reproducing a figure or claim of the
// paper and returning a structured result that cmd/mixedbench prints and
// bench_test.go asserts on.
//
// Runners take a network latency model so the relative costs the paper
// discusses (synchronization rounds, message counts, blocking time) are
// visible; tests use the zero model for speed and benchmarks use
// DefaultLatency.
package bench

import (
	"fmt"
	"time"

	"mixedmem/internal/apps"
	"mixedmem/internal/core"
	"mixedmem/internal/history"
	"mixedmem/internal/network"
)

// DefaultLatency models a 1994-class local-area network: a fixed per-message
// cost dominating a small per-byte cost. Relative protocol costs — the only
// thing the reproduction asserts — are insensitive to the absolute scale.
var DefaultLatency = network.LatencyModel{
	Fixed:   200 * time.Microsecond,
	PerByte: 10 * time.Nanosecond,
}

// Figure1Result summarizes experiment E1: the synchronization orders of the
// paper's Figure 1 example, derived by the formal checker.
type Figure1Result struct {
	Ops            int
	LockOrderPairs int
	BarrierPairs   int
	CausalityPairs int
	PropertiesHold bool
}

// String renders the result as a report line.
func (r Figure1Result) String() string {
	return fmt.Sprintf("ops=%d |->lock pairs=%d |->bar pairs=%d causality pairs=%d properties hold=%v",
		r.Ops, r.LockOrderPairs, r.BarrierPairs, r.CausalityPairs, r.PropertiesHold)
}

// RunFigure1 builds the Figure 1 history — two read holds, a write hold, and
// two more read holds on one lock, followed by a barrier into the next
// phase — and derives its synchronization orders, verifying the three
// |->lock properties of Section 3.1.1.
func RunFigure1() (Figure1Result, error) {
	b := history.NewBuilder(3)
	e0 := b.NextEpoch("l")
	b.RLockEpoch(0, "l", e0)
	b.RUnlockEpoch(0, "l", e0)
	b.RLockEpoch(1, "l", e0)
	b.RUnlockEpoch(1, "l", e0)
	eW := b.WLockEpoch(2, "l")
	wl := b.Len() - 1
	wu := b.WUnlockEpoch(2, "l", eW)
	e2 := b.NextEpoch("l")
	b.RLockEpoch(0, "l", e2)
	b.RUnlockEpoch(0, "l", e2)
	b.RLockEpoch(1, "l", e2)
	b.RUnlockEpoch(1, "l", e2)
	b.Barrier(0, 1)
	b.Barrier(1, 1)
	b.Barrier(2, 1)
	b.Write(0, "u", 1)
	b.Write(1, "v", 2)

	h := b.History()
	a, err := h.Analyze()
	if err != nil {
		return Figure1Result{}, fmt.Errorf("figure 1: %w", err)
	}

	// Verify the three properties of Section 3.1.1 on the derived order.
	props := true
	// 1: wl/wu ordered with respect to every rl/ru.
	for _, op := range h.Ops {
		if op.Kind != history.RLock && op.Kind != history.RUnlock {
			continue
		}
		if !a.LockOrder.Has(op.ID, wl) && !a.LockOrder.Has(wu, op.ID) {
			props = false
		}
	}
	// 2: nothing between wl and wu.
	for _, op := range h.Ops {
		if op.ID != wl && op.ID != wu &&
			a.LockOrder.Has(wl, op.ID) && a.LockOrder.Has(op.ID, wu) {
			props = false
		}
	}
	// 3: no wl between an rl and its matching ru (same epoch).
	for _, op := range h.Ops {
		if op.Kind != history.RLock {
			continue
		}
		if a.LockOrder.Has(op.ID, wl) && a.LockOrder.Has(wl, op.ID+1) {
			props = false
		}
	}
	return Figure1Result{
		Ops:            len(h.Ops),
		LockOrderPairs: a.LockOrder.Pairs(),
		BarrierPairs:   a.BarrierOrder.Pairs(),
		CausalityPairs: a.Causality.Pairs(),
		PropertiesHold: props,
	}, nil
}

// SolverComparison is experiment E2: Figure 2 (barriers + PRAM) versus
// Figure 3 (handshaking + causal) on the same system.
type SolverComparison struct {
	N, Procs          int
	BarrierTime       time.Duration
	BarrierIters      int
	BarrierMsgs       uint64
	BarrierResidual   float64
	HandshakeTime     time.Duration
	HandshakeIters    int
	HandshakeMsgs     uint64
	HandshakeResidual float64
}

// String renders the comparison in the shape of the paper's claim.
func (r SolverComparison) String() string {
	return fmt.Sprintf(
		"n=%d procs=%d | barrier: %v, %d iters, %d msgs, resid %.2e | handshake: %v, %d iters, %d msgs, resid %.2e | speedup %.2fx",
		r.N, r.Procs,
		r.BarrierTime.Round(time.Microsecond), r.BarrierIters, r.BarrierMsgs, r.BarrierResidual,
		r.HandshakeTime.Round(time.Microsecond), r.HandshakeIters, r.HandshakeMsgs, r.HandshakeResidual,
		float64(r.HandshakeTime)/float64(r.BarrierTime))
}

// RunSolverComparison solves one seeded diagonally dominant system with both
// Figure 2 and Figure 3 and reports time, iterations, and message counts.
func RunSolverComparison(n, procs int, latency network.LatencyModel, seed int64) (SolverComparison, error) {
	ls := apps.GenDiagDominant(n, seed)
	out := SolverComparison{N: n, Procs: procs}

	{
		sys, err := core.NewSystem(core.Config{Procs: procs, Latency: latency, Seed: seed})
		if err != nil {
			return out, fmt.Errorf("solver comparison: %w", err)
		}
		var res apps.SolveResult
		start := time.Now()
		sys.Run(func(p *core.Proc) {
			r := apps.SolveBarrier(p, ls, apps.SolveOptions{Tol: 1e-8})
			if p.ID() == 0 {
				res = r
			}
		})
		out.BarrierTime = time.Since(start)
		out.BarrierIters = res.Iters
		out.BarrierMsgs = sys.NetStats().MessagesSent
		out.BarrierResidual = ls.Residual(res.X)
		sys.Close()
	}
	{
		sys, err := core.NewSystem(core.Config{Procs: procs, Latency: latency, Seed: seed})
		if err != nil {
			return out, fmt.Errorf("solver comparison: %w", err)
		}
		var res apps.SolveResult
		start := time.Now()
		sys.Run(func(p *core.Proc) {
			r := apps.SolveHandshake(p, ls, apps.SolveOptions{Tol: 1e-8})
			if p.ID() == 0 {
				res = r
			}
		})
		out.HandshakeTime = time.Since(start)
		out.HandshakeIters = res.Iters
		out.HandshakeMsgs = sys.NetStats().MessagesSent
		out.HandshakeResidual = ls.Residual(res.X)
		sys.Close()
	}
	return out, nil
}

// InsufficiencyResult is experiment E3: the stale value a PRAM read returns
// after a transitive handshake versus the fresh value a causal read returns.
type InsufficiencyResult struct {
	PRAMValue   float64
	CausalValue float64
	// Demonstrated is true when the PRAM read was stale and the causal
	// read fresh.
	Demonstrated bool
}

// String renders the result.
func (r InsufficiencyResult) String() string {
	return fmt.Sprintf("PRAM read=%v causal read=%v demonstrated=%v",
		r.PRAMValue, r.CausalValue, r.Demonstrated)
}

// RunPRAMInsufficiency reproduces the Section 5.1 discussion: worker 1's
// estimate update reaches worker 2 only transitively through the
// coordinator. With the direct channel adversarially delayed (still FIFO),
// the PRAM read returns the stale initial value while the causal read waits
// for the dependency and returns the fresh one.
func RunPRAMInsufficiency() (InsufficiencyResult, error) {
	run := func(causal bool) (float64, error) {
		sys, err := core.NewSystem(core.Config{Procs: 3})
		if err != nil {
			return 0, err
		}
		defer sys.Close()
		if err := sys.Fabric().Hold(1, 2); err != nil {
			return 0, err
		}
		timer := time.AfterFunc(30*time.Millisecond, func() {
			_ = sys.Fabric().Release(1, 2)
		})
		defer timer.Stop()
		var got float64
		sys.Run(func(p *core.Proc) {
			switch p.ID() {
			case 1:
				core.WriteFloat(p, "est", 10)
				p.Write("computed", 1)
			case 0:
				p.Await("computed", 1)
				p.Write("go", 1)
			case 2:
				// This benchmark's whole point is reading the same locations
				// under both labels to compare their costs, so the
				// labelconsistency rule is suspended here on purpose.
				if causal {
					p.Await("go", 1)                     //mixedvet:ignore
					got = core.ReadCausalFloat(p, "est") //mixedvet:ignore
				} else {
					p.AwaitPRAM("go", 1)               //mixedvet:ignore
					got = core.ReadPRAMFloat(p, "est") //mixedvet:ignore
				}
			}
		})
		return got, nil
	}
	pram, err := run(false)
	if err != nil {
		return InsufficiencyResult{}, fmt.Errorf("pram insufficiency: %w", err)
	}
	causal, err := run(true)
	if err != nil {
		return InsufficiencyResult{}, fmt.Errorf("pram insufficiency: %w", err)
	}
	return InsufficiencyResult{
		PRAMValue:    pram,
		CausalValue:  causal,
		Demonstrated: pram == 0 && causal == 10,
	}, nil
}

// EMFieldResult is experiment E4.
type EMFieldResult struct {
	Size, Steps, Procs int
	Time               time.Duration
	Msgs               uint64
	UpdateMsgs         uint64
	MaxError           float64
}

// String renders the result.
func (r EMFieldResult) String() string {
	return fmt.Sprintf("grid=%d steps=%d procs=%d time=%v msgs=%d updates=%d max-error=%g",
		r.Size, r.Steps, r.Procs, r.Time.Round(time.Microsecond), r.Msgs, r.UpdateMsgs, r.MaxError)
}

// RunEMField runs the Figure 4 computation and compares against the
// sequential reference.
func RunEMField(size, steps, procs int, latency network.LatencyModel, seed int64) (EMFieldResult, error) {
	prob := apps.GenEMProblem(size, steps, seed)
	refE, refH := prob.SolveSequential()

	sys, err := core.NewSystem(core.Config{Procs: procs, Latency: latency, Seed: seed})
	if err != nil {
		return EMFieldResult{}, fmt.Errorf("em field: %w", err)
	}
	defer sys.Close()
	results := make([]apps.EMResult, procs)
	start := time.Now()
	sys.Run(func(p *core.Proc) {
		results[p.ID()] = apps.SolveEMField(p, prob, apps.SolveOptions{})
	})
	elapsed := time.Since(start)

	var worst float64
	for _, res := range results {
		for i := res.Lo; i < res.Hi; i++ {
			if d := absf(res.E[i-res.Lo] - refE[i]); d > worst {
				worst = d
			}
			if d := absf(res.H[i-res.Lo] - refH[i]); d > worst {
				worst = d
			}
		}
	}
	stats := sys.NetStats()
	return EMFieldResult{
		Size: size, Steps: steps, Procs: procs,
		Time: elapsed, Msgs: stats.MessagesSent,
		UpdateMsgs: stats.PerKind["update"],
		MaxError:   worst,
	}, nil
}

func absf(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// CholeskyComparison is experiment E5: the lock-based Figure 5 algorithm
// versus the counter-object variant.
type CholeskyComparison struct {
	N, Procs     int
	LockTime     time.Duration
	LockMsgs     uint64
	LockAcquires uint64
	LockError    float64
	CounterTime  time.Duration
	CounterMsgs  uint64
	CounterError float64
}

// String renders the comparison in the shape of the Section 7 claim.
func (r CholeskyComparison) String() string {
	return fmt.Sprintf(
		"n=%d procs=%d | locks: %v, %d msgs, %d acquires, err %.2e | counters: %v, %d msgs, err %.2e | speedup %.2fx",
		r.N, r.Procs,
		r.LockTime.Round(time.Microsecond), r.LockMsgs, r.LockAcquires, r.LockError,
		r.CounterTime.Round(time.Microsecond), r.CounterMsgs, r.CounterError,
		float64(r.LockTime)/float64(r.CounterTime))
}

// RunCholeskyComparison factorizes one seeded sparse SPD matrix with both
// variants and reports time, message, and lock counts, with factor errors
// against the sequential reference.
func RunCholeskyComparison(n, procs int, density float64, latency network.LatencyModel, seed int64) (CholeskyComparison, error) {
	m := apps.GenSparseSPD(n, density, seed)
	ref, err := m.CholeskySequential()
	if err != nil {
		return CholeskyComparison{}, fmt.Errorf("cholesky comparison: %w", err)
	}
	out := CholeskyComparison{N: n, Procs: procs}

	{
		sys, err := core.NewSystem(core.Config{Procs: procs, Latency: latency, Seed: seed})
		if err != nil {
			return out, fmt.Errorf("cholesky comparison: %w", err)
		}
		var res apps.CholeskyResult
		start := time.Now()
		sys.Run(func(p *core.Proc) {
			r := apps.CholeskyLocks(p, m, apps.SolveOptions{})
			if p.ID() == 0 {
				res = r
			}
		})
		out.LockTime = time.Since(start)
		out.LockMsgs = sys.NetStats().MessagesSent
		for i := 0; i < procs; i++ {
			out.LockAcquires += sys.Proc(i).LockStats().Acquires
		}
		out.LockError = m.FactorError(res.L, ref)
		sys.Close()
	}
	{
		sys, err := core.NewSystem(core.Config{Procs: procs, Latency: latency, Seed: seed})
		if err != nil {
			return out, fmt.Errorf("cholesky comparison: %w", err)
		}
		var res apps.CholeskyResult
		start := time.Now()
		sys.Run(func(p *core.Proc) {
			r := apps.CholeskyCounters(p, m, apps.SolveOptions{})
			if p.ID() == 0 {
				res = r
			}
		})
		out.CounterTime = time.Since(start)
		out.CounterMsgs = sys.NetStats().MessagesSent
		out.CounterError = m.FactorError(res.L, ref)
		sys.Close()
	}
	return out, nil
}

// PipelineComparison is experiment E10: the Section 2 remark that await
// statements "capture the producer/consumer paradigm in an efficient
// manner", measured against the lock-based polling alternative on the same
// dataflow.
type PipelineComparison struct {
	Items, Stages int
	AwaitTime     time.Duration
	AwaitMsgs     uint64
	LockTime      time.Duration
	LockMsgs      uint64
	OutputsMatch  bool
}

// String renders the comparison.
func (r PipelineComparison) String() string {
	return fmt.Sprintf(
		"items=%d stages=%d | await: %v, %d msgs | locks: %v, %d msgs | speedup %.2fx, outputs match=%v",
		r.Items, r.Stages,
		r.AwaitTime.Round(time.Microsecond), r.AwaitMsgs,
		r.LockTime.Round(time.Microsecond), r.LockMsgs,
		float64(r.LockTime)/float64(r.AwaitTime), r.OutputsMatch)
}

// RunPipelineComparison pushes one stream through both pipeline variants.
func RunPipelineComparison(items, procs int, latency network.LatencyModel, seed int64) (PipelineComparison, error) {
	cfg := apps.PipelineConfig{Items: items, Seed: seed}
	ref := apps.PipelineSequential(cfg, procs-1)
	out := PipelineComparison{Items: items, Stages: procs - 1}

	run := func(locks bool) (time.Duration, uint64, []int64, error) {
		sys, err := core.NewSystem(core.Config{Procs: procs, Latency: latency, Seed: seed})
		if err != nil {
			return 0, 0, nil, err
		}
		defer sys.Close()
		var result []int64
		start := time.Now()
		sys.Run(func(p *core.Proc) {
			var r []int64
			if locks {
				r = apps.PipelineLocks(p, cfg)
			} else {
				r = apps.PipelineAwait(p, cfg)
			}
			if r != nil {
				result = r
			}
		})
		return time.Since(start), sys.NetStats().MessagesSent, result, nil
	}

	awaitTime, awaitMsgs, awaitOut, err := run(false)
	if err != nil {
		return out, fmt.Errorf("pipeline comparison (await): %w", err)
	}
	lockTime, lockMsgs, lockOut, err := run(true)
	if err != nil {
		return out, fmt.Errorf("pipeline comparison (locks): %w", err)
	}
	out.AwaitTime, out.AwaitMsgs = awaitTime, awaitMsgs
	out.LockTime, out.LockMsgs = lockTime, lockMsgs
	out.OutputsMatch = equalInt64(awaitOut, ref) && equalInt64(lockOut, ref)
	return out, nil
}

func equalInt64(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// EM2DResultRow is the 2-D extension of experiment E4.
type EM2DResultRow struct {
	N, Steps, Procs int
	Time            time.Duration
	UpdateMsgs      uint64
	Exact           bool
}

// String renders the row.
func (r EM2DResultRow) String() string {
	return fmt.Sprintf("grid=%dx%d steps=%d procs=%d time=%v updates=%d exact=%v",
		r.N, r.N, r.Steps, r.Procs, r.Time.Round(time.Microsecond), r.UpdateMsgs, r.Exact)
}

// RunEM2DField runs the 2-D Figure 4 variant and compares against the
// sequential reference.
func RunEM2DField(n, steps, procs int, latency network.LatencyModel, seed int64) (EM2DResultRow, error) {
	prob := apps.GenEM2DProblem(n, steps, seed)
	refEz, refHx, refHy := prob.SolveSequential()

	sys, err := core.NewSystem(core.Config{Procs: procs, Latency: latency, Seed: seed})
	if err != nil {
		return EM2DResultRow{}, fmt.Errorf("em 2d: %w", err)
	}
	defer sys.Close()
	results := make([]apps.EM2DResult, procs)
	start := time.Now()
	sys.Run(func(p *core.Proc) {
		results[p.ID()] = apps.SolveEM2DField(p, prob, apps.SolveOptions{})
	})
	elapsed := time.Since(start)

	exact := true
	for _, r := range results {
		for row := r.RLo; row < r.RHi; row++ {
			for c := 0; c < n; c++ {
				l := (row-r.RLo)*n + c
				g := row*n + c
				if r.Ez[l] != refEz[g] || r.Hx[l] != refHx[g] || r.Hy[l] != refHy[g] {
					exact = false
				}
			}
		}
	}
	return EM2DResultRow{
		N: n, Steps: steps, Procs: procs,
		Time: elapsed, UpdateMsgs: sys.NetStats().PerKind["update"],
		Exact: exact,
	}, nil
}

// RedBlackRow compares Jacobi (Figure 2) and red-black Gauss-Seidel sweep
// counts on the same tridiagonal system — both PRAM-consistent programs, the
// second exploiting half-sweep freshness.
type RedBlackRow struct {
	N, Procs               int
	JacobiSweeps, RBSweeps int
	BothMatchDirect        bool
}

// String renders the row.
func (r RedBlackRow) String() string {
	return fmt.Sprintf("n=%d procs=%d | jacobi sweeps=%d, red-black sweeps=%d | both match direct=%v",
		r.N, r.Procs, r.JacobiSweeps, r.RBSweeps, r.BothMatchDirect)
}

// RunRedBlack runs both solvers on one seeded tridiagonal system.
func RunRedBlack(n, procs int, latency network.LatencyModel, seed int64) (RedBlackRow, error) {
	ls := apps.GenTridiagDominant(n, seed)
	direct, err := ls.SolveDirect()
	if err != nil {
		return RedBlackRow{}, fmt.Errorf("red-black: %w", err)
	}
	out := RedBlackRow{N: n, Procs: procs, BothMatchDirect: true}

	run := func(rb bool) (int, []float64, error) {
		sys, err := core.NewSystem(core.Config{Procs: procs, Latency: latency, Seed: seed})
		if err != nil {
			return 0, nil, err
		}
		defer sys.Close()
		var res apps.SolveResult
		sys.Run(func(p *core.Proc) {
			var r apps.SolveResult
			if rb {
				r = apps.SolveRedBlack(p, ls, apps.SolveOptions{Tol: 1e-9})
			} else {
				r = apps.SolveBarrier(p, ls, apps.SolveOptions{Tol: 1e-9})
			}
			if p.ID() == 0 {
				res = r
			}
		})
		return res.Iters, res.X, nil
	}

	ji, jx, err := run(false)
	if err != nil {
		return out, fmt.Errorf("red-black (jacobi): %w", err)
	}
	ri, rx, err := run(true)
	if err != nil {
		return out, fmt.Errorf("red-black (rb): %w", err)
	}
	out.JacobiSweeps, out.RBSweeps = ji, ri
	if apps.MaxAbsDiff(jx, direct) > 1e-7 || apps.MaxAbsDiff(rx, direct) > 1e-7 {
		out.BothMatchDirect = false
	}
	return out, nil
}
