package bench

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mixedmem/internal/dsm"
	"mixedmem/internal/network"
	"mixedmem/internal/transport"
	"mixedmem/internal/transport/tcp"
)

// Experiment PERF: the raw-speed trajectory. Every other experiment charges
// protocol costs through a latency model or a real network; this one measures
// the implementation itself — nanoseconds and heap allocations per operation
// on the write→outbox→codec→transport hot path, and aggregate throughput when
// many goroutines hit one replica on distinct locations. The grid is fixed
// (labels × batch configuration × scenario × substrate) so two runs are
// comparable row by row: mixedbench -exp perf emits the cells as JSON and
// cmd/benchdiff compares them against the previous run's committed baseline,
// failing CI on regressions. The paper's economics only mean something if
// each consistency label's implementation is near the hardware floor; this
// harness is what keeps it there.

// PerfCell is one grid point of the perf experiment.
type PerfCell struct {
	// Transport is the substrate: "sim" or "tcp" (loopback sockets).
	Transport string `json:"transport"`
	// Scenario is "write" (one writer, drain-to-peers throughput),
	// "contended" (many writer + reader goroutines on distinct locations of
	// one replica while a remote peer streams updates into it), or
	// "contended1" (the same goroutine mix all hammering one single
	// location — remote streamer included — so every operation contends on
	// one cell; the row the sharded apply path's lock-free reads answer to).
	Scenario string `json:"scenario"`
	// Label is the consistency configuration: "pram" (PRAMOnly), "causal"
	// (full broadcast with timestamps), or "scoped" (causal-scoped
	// point-to-point placement).
	Label string `json:"label"`
	// Batch is the outbox MaxUpdates threshold; 0 means the outbox is off.
	Batch int `json:"batch"`
	// Writers and Readers are the goroutine counts of the scenario.
	Writers int `json:"writers"`
	Readers int `json:"readers"`
	// Ops is the total number of measured operations (writes + reads).
	Ops int `json:"ops"`
	// NsPerOp, AllocsPerOp, and OpsPerSec are the measurements. Allocations
	// are process-wide mallocs per operation: they include the receive path
	// of every in-process replica, which is exactly the end-to-end path the
	// alloc-free work pins.
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	OpsPerSec   float64 `json:"ops_per_sec"`
}

// Key identifies the cell's grid point independent of measurements; benchdiff
// matches baseline and current rows on it.
func (c PerfCell) Key() string {
	return fmt.Sprintf("%s/%s/%s/b%d/w%d/r%d",
		c.Transport, c.Scenario, c.Label, c.Batch, c.Writers, c.Readers)
}

func (c PerfCell) String() string {
	return fmt.Sprintf("%-28s ops=%-7d %9.0f ns/op %7.2f allocs/op %12.0f ops/s",
		c.Key(), c.Ops, c.NsPerOp, c.AllocsPerOp, c.OpsPerSec)
}

// PerfResult is the full grid on one substrate.
type PerfResult struct {
	Transport string     `json:"transport"`
	Procs     int        `json:"procs"`
	Cells     []PerfCell `json:"cells"`
}

func (r PerfResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "perf (%s): procs=%d\n", r.Transport, r.Procs)
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "  %s\n", c)
	}
	return strings.TrimRight(b.String(), "\n")
}

// PerfOptions configures the perf grid.
type PerfOptions struct {
	// Procs is the replica count (default 4).
	Procs int
	// Ops is the measured write count per cell (default 20000 sim, a quarter
	// of that on tcp where the kernel round trips dominate).
	Ops int
	// Warmup is the unmeasured write count per cell (default Ops/10),
	// letting pools, maps, and outbox rings reach steady state before the
	// allocation window opens.
	Warmup int
}

func (o PerfOptions) withDefaults() PerfOptions {
	if o.Procs == 0 {
		o.Procs = 4
	}
	if o.Ops == 0 {
		o.Ops = 20000
	}
	if o.Warmup == 0 {
		o.Warmup = o.Ops / 10
	}
	return o
}

// perfGrid is the fixed cell grid per substrate. Keeping it a function of
// nothing (not flags, not hardware) is what makes BENCH_PERF.json files
// comparable across runs.
func perfGrid() []PerfCell {
	return []PerfCell{
		{Scenario: "write", Label: "pram", Batch: 0, Writers: 1},
		{Scenario: "write", Label: "pram", Batch: 64, Writers: 1},
		{Scenario: "write", Label: "causal", Batch: 0, Writers: 1},
		{Scenario: "write", Label: "causal", Batch: 64, Writers: 1},
		{Scenario: "write", Label: "scoped", Batch: 64, Writers: 1},
		{Scenario: "contended", Label: "pram", Batch: 0, Writers: 4, Readers: 4},
		{Scenario: "contended", Label: "causal", Batch: 64, Writers: 4, Readers: 4},
		{Scenario: "contended1", Label: "pram", Batch: 0, Writers: 4, Readers: 4},
		{Scenario: "contended1", Label: "causal", Batch: 64, Writers: 4, Readers: 4},
	}
}

// perfLocs are the writer locations: a small working set, round-robined, so
// coalescing and shard spread both behave as in real workloads.
const perfLocCount = 8

func perfLoc(writer, i int) string {
	return fmt.Sprintf("w%d_%d", writer, i%perfLocCount)
}

// remoteLoc is the location set the remote streamer writes in the contended
// scenario.
func remoteLoc(i int) string {
	return fmt.Sprintf("x%d", i%perfLocCount)
}

// perfScope builds the scoped-label placement: every writer location of node
// 0 is registered to the single causal reader 1, the point-to-point
// placement whose metadata (chain pointers + dependency matrices) exercises
// the scoped-causal fast path.
func perfScope(writers int) *dsm.ScopeMap {
	s := &dsm.ScopeMap{
		Readers:       map[string][]int{},
		CausalReaders: map[string][]int{},
	}
	for w := 0; w < writers; w++ {
		for i := 0; i < perfLocCount; i++ {
			loc := perfLoc(w, i)
			s.Readers[loc] = []int{1}
			s.CausalReaders[loc] = []int{1}
		}
	}
	return s
}

// RunPerf runs the grid on the simulated fabric with a zero latency model:
// the fabric then measures pure implementation cost (queues, locks, clocks,
// outbox), which is the quantity the optimization passes move.
func RunPerf(opt PerfOptions) (PerfResult, error) {
	o := opt.withDefaults()
	out := PerfResult{Transport: "sim", Procs: o.Procs}
	for _, cell := range perfGrid() {
		cell.Transport = "sim"
		measured, err := runPerfCellSim(o, cell)
		if err != nil {
			return out, fmt.Errorf("perf %s: %w", cell.Key(), err)
		}
		out.Cells = append(out.Cells, measured)
	}
	return out, nil
}

// RunPerfTCP runs a socket-path subset of the grid over loopback TCP: the
// cells that exercise the frame writer, the pooled codec buffers, and the
// read loop. The contended scenario is sim-only (its point is lock
// contention inside one replica, which sockets only blur).
func RunPerfTCP(opt PerfOptions) (PerfResult, error) {
	o := opt.withDefaults()
	if opt.Ops == 0 {
		o.Ops = o.Ops / 4
		o.Warmup = o.Ops / 10
	}
	out := PerfResult{Transport: "tcp", Procs: o.Procs}
	for _, cell := range perfGrid() {
		if cell.Scenario != "write" || cell.Label == "scoped" {
			continue
		}
		cell.Transport = "tcp"
		measured, err := runPerfCellTCP(o, cell)
		if err != nil {
			return out, fmt.Errorf("perf %s: %w", cell.Key(), err)
		}
		out.Cells = append(out.Cells, measured)
	}
	return out, nil
}

// buildPerfNode constructs one replica for a cell.
func buildPerfNode(id int, o PerfOptions, cell PerfCell, tr transport.Transport) (*dsm.Node, error) {
	cfg := dsm.Config{ID: id, N: o.Procs, Transport: tr}
	switch cell.Label {
	case "pram":
		cfg.PRAMOnly = true
	case "causal":
	case "scoped":
		cfg.Scope = perfScope(cell.Writers)
	default:
		return nil, fmt.Errorf("unknown label %q", cell.Label)
	}
	if cell.Batch > 0 {
		cfg.Batch = dsm.BatchConfig{Enabled: true, MaxUpdates: cell.Batch}
	}
	return dsm.NewNode(cfg)
}

// runPerfCellSim measures one cell on a shared zero-latency fabric.
func runPerfCellSim(o PerfOptions, cell PerfCell) (PerfCell, error) {
	f, err := network.New(network.Config{Nodes: o.Procs})
	if err != nil {
		return cell, err
	}
	nodes := make([]*dsm.Node, o.Procs)
	for i := range nodes {
		nodes[i], err = buildPerfNode(i, o, cell, f)
		if err != nil {
			f.Close()
			for _, nd := range nodes {
				if nd != nil {
					nd.Close()
				}
			}
			return cell, err
		}
	}
	defer func() {
		f.Close()
		for _, nd := range nodes {
			nd.Close()
		}
	}()
	return measurePerfCell(o, cell, nodes)
}

// runPerfCellTCP measures one cell over loopback TCP, one transport (and
// replica) per node, all in this process so drain waits stay observable.
func runPerfCellTCP(o PerfOptions, cell PerfCell) (PerfCell, error) {
	trs, err := tcp.NewLoopback(o.Procs, nil)
	if err != nil {
		return cell, err
	}
	nodes := make([]*dsm.Node, o.Procs)
	cleanup := func() {
		for _, tr := range trs {
			tr.Flush(2 * time.Second)
		}
		for i, nd := range nodes {
			trs[i].Close()
			if nd != nil {
				nd.Close()
			}
		}
	}
	for i := range nodes {
		nodes[i], err = buildPerfNode(i, o, cell, trs[i])
		if err != nil {
			cleanup()
			return cell, err
		}
	}
	defer cleanup()
	return measurePerfCell(o, cell, nodes)
}

// measurePerfCell runs the scenario: a warmup pass, then a measured pass
// bracketed by ReadMemStats, timing from first write to full drain at every
// receiving replica.
func measurePerfCell(o PerfOptions, cell PerfCell, nodes []*dsm.Node) (PerfCell, error) {
	writerOps := o.Ops / cell.Writers
	drain := func(sentPerWriterNode map[int]uint64) {
		// Every replica that receives the traffic must have applied it:
		// under broadcast labels that is every peer; under the scoped label
		// only replica 1 is registered.
		min := make([]uint64, len(nodes))
		for from, count := range sentPerWriterNode {
			min[from] = count
		}
		for j, nd := range nodes {
			if cell.Label == "scoped" && j != 1 {
				continue
			}
			nd.WaitReceived(min)
		}
	}

	// Precompute every location string: the harness must not charge its own
	// fmt.Sprintf allocations to the measured path.
	writerLocs := make([][]string, cell.Writers)
	for w := range writerLocs {
		writerLocs[w] = make([]string, perfLocCount)
		for i := range writerLocs[w] {
			writerLocs[w][i] = perfLoc(w, i)
		}
	}
	remoteLocs := make([]string, perfLocCount)
	for i := range remoteLocs {
		remoteLocs[i] = remoteLoc(i)
	}
	if cell.Scenario == "contended1" {
		// Single-location contention: every goroutine — local writers, local
		// readers, and the remote streamer — hits the same cell.
		for w := range writerLocs {
			for i := range writerLocs[w] {
				writerLocs[w][i] = "hot"
			}
		}
		for i := range remoteLocs {
			remoteLocs[i] = "hot"
		}
	}

	var seq uint64 // monotone values so awaited convergence is unambiguous
	runPass := func(ops int) int {
		var wg sync.WaitGroup
		var stop atomic.Bool
		var reads atomic.Int64
		total := 0
		// Readers (contended scenario): hammer the writers' locations until
		// the writers finish.
		for r := 0; r < cell.Readers; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				locs := writerLocs[r%cell.Writers]
				n := 0
				for !stop.Load() {
					nodes[0].ReadPRAM(locs[n%perfLocCount])
					n++
				}
				reads.Add(int64(n))
			}(r)
		}
		// Remote streamer (contended scenario): replica 1 writes its own
		// location set, feeding replica 0's receive loop concurrently.
		remoteOps := 0
		if strings.HasPrefix(cell.Scenario, "contended") {
			remoteOps = ops
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < remoteOps; i++ {
					nodes[1].Write(remoteLocs[i%perfLocCount], int64(atomic.AddUint64(&seq, 1)))
				}
				nodes[1].FlushUpdates()
			}()
		}
		var wwg sync.WaitGroup
		for w := 0; w < cell.Writers; w++ {
			wwg.Add(1)
			go func(w int) {
				defer wwg.Done()
				locs := writerLocs[w]
				for i := 0; i < ops; i++ {
					nodes[0].Write(locs[i%perfLocCount], int64(atomic.AddUint64(&seq, 1)))
				}
			}(w)
		}
		wwg.Wait()
		nodes[0].FlushUpdates()
		stop.Store(true)
		wg.Wait()
		sent := map[int]uint64{0: nodes[0].ReceivedCounts()[0]}
		if remoteOps > 0 {
			sent[1] = nodes[1].ReceivedCounts()[1]
		}
		drain(sent)
		total = ops*cell.Writers + remoteOps + int(reads.Load())
		return total
	}

	runPass(o.Warmup / cell.Writers)

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	total := runPass(writerOps)
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)

	cell.Ops = total
	cell.NsPerOp = float64(elapsed.Nanoseconds()) / float64(total)
	cell.AllocsPerOp = float64(after.Mallocs-before.Mallocs) / float64(total)
	cell.OpsPerSec = float64(total) / elapsed.Seconds()
	return cell, nil
}
