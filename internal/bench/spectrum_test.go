package bench

import (
	"testing"

	"mixedmem/internal/history"
	"mixedmem/internal/network"
)

// TestSpectrumMonotoneCostCurve pins experiment E8S's acceptance shape: the
// cost of consistency is monotone in label strength. Message counts are
// deterministic, so they are asserted exactly: flat across the weak labels,
// a jump at SC. Byte counts pin slow's timestamp elision. Latency is noisy,
// so only the structural separation — the SC round trip dominating every
// local weak operation — is asserted.
func TestSpectrumMonotoneCostCurve(t *testing.T) {
	r, err := RunLatencySpectrum(3, 400, network.LatencyModel{})
	if err != nil {
		t.Fatal(err)
	}
	want := history.LatticeLabels()
	for i, pt := range r.Points {
		if pt.Label != want[i] {
			t.Fatalf("point %d has label %v, want lattice order %v", i, pt.Label, want)
		}
	}
	for i := 1; i < len(r.Points); i++ {
		if r.Points[i].MsgsPerOp < r.Points[i-1].MsgsPerOp {
			t.Errorf("msgs/op not monotone: %v=%.2f < %v=%.2f",
				r.Points[i].Label, r.Points[i].MsgsPerOp,
				r.Points[i-1].Label, r.Points[i-1].MsgsPerOp)
		}
	}
	slow, pram, causal, sc := r.Points[0], r.Points[1], r.Points[2], r.Points[3]
	if slow.BytesPerOp >= pram.BytesPerOp {
		t.Errorf("slow writes should shed timestamp bytes: slow=%.1f bytes/op, pram=%.1f",
			slow.BytesPerOp, pram.BytesPerOp)
	}
	if pram.BytesPerOp != causal.BytesPerOp {
		t.Errorf("pram and causal share the broadcast write path: %.1f vs %.1f bytes/op",
			pram.BytesPerOp, causal.BytesPerOp)
	}
	if sc.MsgsPerOp <= causal.MsgsPerOp {
		t.Errorf("SC should pay a request/reply pair per access: sc=%.2f msgs/op, causal=%.2f",
			sc.MsgsPerOp, causal.MsgsPerOp)
	}
	for _, weak := range []SpectrumPoint{slow, pram, causal} {
		if weak.Write > sc.Write {
			t.Errorf("%v write %v exceeds the SC round trip %v", weak.Label, weak.Write, sc.Write)
		}
		if weak.Read > sc.Read {
			t.Errorf("%v read %v exceeds the SC round trip %v", weak.Label, weak.Read, sc.Read)
		}
	}
}

// TestSpectrumTCPSmoke reruns the curve over loopback TCP: verdict-level
// agreement with the sim — flat weak message counts, the SC jump, and the
// kernel round trip dominating local weak accesses.
func TestSpectrumTCPSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("loopback TCP spectrum in -short mode")
	}
	r, err := RunLatencySpectrumTCP(2, 60)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(r.Points); i++ {
		if r.Points[i].MsgsPerOp < r.Points[i-1].MsgsPerOp {
			t.Errorf("tcp msgs/op not monotone: %v=%.2f < %v=%.2f",
				r.Points[i].Label, r.Points[i].MsgsPerOp,
				r.Points[i-1].Label, r.Points[i-1].MsgsPerOp)
		}
	}
	sc := r.Points[3]
	for _, weak := range r.Points[:3] {
		if weak.Write > sc.Write {
			t.Errorf("tcp %v write %v exceeds the SC socket round trip %v", weak.Label, weak.Write, sc.Write)
		}
	}
}
