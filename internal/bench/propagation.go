package bench

import (
	"fmt"
	"strconv"
	"time"

	"mixedmem/internal/apps"
	"mixedmem/internal/core"
	"mixedmem/internal/dsm"
	"mixedmem/internal/network"
	"mixedmem/internal/seqmem"
	"mixedmem/internal/syncmgr"
)

// PropagationResult is one row of experiment E6: the cost profile of a
// propagation mode under a lock-handoff workload.
type PropagationResult struct {
	Mode syncmgr.PropagationMode
	// Batch is the outbox MaxUpdates threshold the row ran with; 0 means
	// batching off (one message per write per destination).
	Batch int
	// Time is wall clock for the whole workload.
	Time time.Duration
	// Msgs and Bytes are fabric totals.
	Msgs  uint64
	Bytes uint64
	// UpdateFrames counts update-carrying fabric messages (plain updates
	// plus batch frames) — the quantity batching exists to shrink.
	UpdateFrames uint64
	// FlushMsgs counts the eager flush round trips.
	FlushMsgs uint64
	// AcquireWait is summed lock-acquire blocking across processes.
	AcquireWait time.Duration
	// ReleaseWait is summed eager-flush blocking across processes.
	ReleaseWait time.Duration
}

// String renders one row.
func (r PropagationResult) String() string {
	batch := "off"
	if r.Batch > 0 {
		batch = strconv.Itoa(r.Batch)
	}
	return fmt.Sprintf("%-13s batch=%-4s time=%-10v msgs=%-6d upd-frames=%-6d bytes=%-8d flush=%-5d acquire-wait=%-10v release-wait=%v",
		r.Mode, batch, r.Time.Round(time.Microsecond), r.Msgs, r.UpdateFrames, r.Bytes, r.FlushMsgs,
		r.AcquireWait.Round(time.Microsecond), r.ReleaseWait.Round(time.Microsecond))
}

// PropagationWorkload shapes the E6 workload: each process repeatedly
// acquires a shared lock, writes WritesPerCS locations, and releases. With
// ReadBack false the acquirer never reads the protected data — the case
// where demand-driven propagation avoids all waiting.
type PropagationWorkload struct {
	Procs       int
	Handoffs    int
	WritesPerCS int
	ReadBack    bool
	// Batch configures the update outbox for the run; the zero value is
	// the unbatched baseline.
	Batch dsm.BatchConfig
}

// RunPropagation runs the workload under one propagation mode.
func RunPropagation(mode syncmgr.PropagationMode, w PropagationWorkload, latency network.LatencyModel, seed int64) (PropagationResult, error) {
	sys, err := core.NewSystem(core.Config{
		Procs:       w.Procs,
		Latency:     latency,
		Seed:        seed,
		Propagation: mode,
		Batch:       w.Batch,
	})
	if err != nil {
		return PropagationResult{}, fmt.Errorf("propagation %v: %w", mode, err)
	}
	defer sys.Close()

	start := time.Now()
	sys.Run(func(p *core.Proc) {
		for h := 0; h < w.Handoffs; h++ {
			p.WLock("shared")
			if w.ReadBack {
				for i := 0; i < w.WritesPerCS; i++ {
					p.ReadCausal("data" + strconv.Itoa(i))
				}
			}
			for i := 0; i < w.WritesPerCS; i++ {
				// Distinct values per write keep the workload realistic.
				p.Write("data"+strconv.Itoa(i), int64(p.ID()*1_000_000+h*1000+i))
			}
			p.WUnlock("shared")
		}
	})
	elapsed := time.Since(start)

	stats := sys.NetStats()
	batchSize := 0
	if w.Batch.Enabled {
		batchSize = w.Batch.WithDefaults().MaxUpdates
	}
	out := PropagationResult{
		Mode:         mode,
		Batch:        batchSize,
		Time:         elapsed,
		Msgs:         stats.MessagesSent,
		Bytes:        stats.BytesSent,
		UpdateFrames: stats.PerKind[dsm.KindUpdate] + stats.PerKind[dsm.KindUpdateBatch],
		FlushMsgs:    stats.PerKind[syncmgr.KindFlush] + stats.PerKind[syncmgr.KindFlushAck],
	}
	for i := 0; i < w.Procs; i++ {
		ls := sys.Proc(i).LockStats()
		out.AcquireWait += ls.AcquireWait
		out.ReleaseWait += ls.ReleaseWait
	}
	return out, nil
}

// RunPropagationSweep runs all three modes on the same workload.
func RunPropagationSweep(w PropagationWorkload, latency network.LatencyModel, seed int64) ([]PropagationResult, error) {
	modes := []syncmgr.PropagationMode{syncmgr.Eager, syncmgr.Lazy, syncmgr.DemandDriven}
	out := make([]PropagationResult, 0, len(modes))
	for _, mode := range modes {
		r, err := RunPropagation(mode, w, latency, seed)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// RunPropagationBatchSweep runs one mode across outbox batch sizes on the
// same workload: size 0 is the unbatched baseline, each positive size sets
// the outbox's MaxUpdates threshold. The rows quantify how many update
// frames the outbox saves as the batch window widens.
func RunPropagationBatchSweep(mode syncmgr.PropagationMode, w PropagationWorkload, sizes []int, latency network.LatencyModel, seed int64) ([]PropagationResult, error) {
	out := make([]PropagationResult, 0, len(sizes))
	for _, size := range sizes {
		ww := w
		ww.Batch = batchConfigForSize(size)
		r, err := RunPropagation(mode, ww, latency, seed)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// batchConfigForSize maps a sweep knob to an outbox config: 0 disables
// batching, a positive size becomes the MaxUpdates threshold.
func batchConfigForSize(size int) dsm.BatchConfig {
	if size <= 0 {
		return dsm.BatchConfig{}
	}
	return dsm.BatchConfig{Enabled: true, MaxUpdates: size}
}

// GaussSeidelResult is experiment E7: convergence of asynchronous relaxation
// under plain PRAM.
type GaussSeidelResult struct {
	N, Procs int
	Rounds   int
	Error    float64
	Time     time.Duration
}

// String renders one row.
func (r GaussSeidelResult) String() string {
	return fmt.Sprintf("n=%d procs=%d rounds=%-4d error=%-12.3e time=%v",
		r.N, r.Procs, r.Rounds, r.Error, r.Time.Round(time.Microsecond))
}

// RunGaussSeidel measures the distance to the direct solution after the
// given number of asynchronous PRAM sweeps.
func RunGaussSeidel(n, procs, rounds int, seed int64) (GaussSeidelResult, error) {
	ls := apps.GenDiagDominant(n, seed)
	direct, err := ls.SolveDirect()
	if err != nil {
		return GaussSeidelResult{}, fmt.Errorf("gauss-seidel: %w", err)
	}
	sys, err := core.NewSystem(core.Config{Procs: procs})
	if err != nil {
		return GaussSeidelResult{}, fmt.Errorf("gauss-seidel: %w", err)
	}
	defer sys.Close()
	var final []float64
	start := time.Now()
	sys.Run(func(p *core.Proc) {
		r := apps.SolveAsyncPRAM(p, ls, rounds)
		if p.ID() == 0 {
			final = r.X
		}
	})
	elapsed := time.Since(start)
	return GaussSeidelResult{
		N: n, Procs: procs, Rounds: rounds,
		Error: apps.MaxAbsDiff(final, direct),
		Time:  elapsed,
	}, nil
}

// RunGaussSeidelSlow is RunGaussSeidel at the bottom of the lattice: the
// estimate cells are labeled Slow and the sweeps use slow reads
// (apps.SolveAsyncSlow). The single-writer structure of the cells makes
// per-location FIFO sufficient for Chazan–Miranker convergence, so the
// result should match the PRAM run's quality while the writes travel
// timestamp-free.
func RunGaussSeidelSlow(n, procs, rounds int, seed int64) (GaussSeidelResult, error) {
	ls := apps.GenDiagDominant(n, seed)
	direct, err := ls.SolveDirect()
	if err != nil {
		return GaussSeidelResult{}, fmt.Errorf("gauss-seidel slow: %w", err)
	}
	sys, err := core.NewSystem(core.Config{Procs: procs, Labels: apps.SlowEstimateLabels(n)})
	if err != nil {
		return GaussSeidelResult{}, fmt.Errorf("gauss-seidel slow: %w", err)
	}
	defer sys.Close()
	var final []float64
	start := time.Now()
	sys.Run(func(p *core.Proc) {
		r := apps.SolveAsyncSlow(p, ls, rounds)
		if p.ID() == 0 {
			final = r.X
		}
	})
	elapsed := time.Since(start)
	return GaussSeidelResult{
		N: n, Procs: procs, Rounds: rounds,
		Error: apps.MaxAbsDiff(final, direct),
		Time:  elapsed,
	}, nil
}

// LatencyResult is experiment E8: mean per-operation latency on each memory.
type LatencyResult struct {
	// Write, PRAMRead, CausalRead are mixed-consistency op latencies.
	Write, PRAMRead, CausalRead time.Duration
	// SCWrite, SCRead are central-server sequentially consistent
	// latencies on a fabric with the same latency model.
	SCWrite, SCRead time.Duration
}

// String renders the latency spectrum.
func (r LatencyResult) String() string {
	return fmt.Sprintf("mixed: write=%v pram-read=%v causal-read=%v | SC: write=%v read=%v",
		r.Write, r.PRAMRead, r.CausalRead, r.SCWrite, r.SCRead)
}

// RunLatencyMicro measures mean operation latencies on the mixed memory and
// the sequentially consistent baseline under the same latency model: the
// paper's core motivation that weak consistency buys low access latency.
func RunLatencyMicro(ops int, latency network.LatencyModel) (LatencyResult, error) {
	var out LatencyResult
	{
		sys, err := core.NewSystem(core.Config{Procs: 2, Latency: latency})
		if err != nil {
			return out, fmt.Errorf("latency micro: %w", err)
		}
		p := sys.Proc(0)
		start := time.Now()
		for i := 0; i < ops; i++ {
			p.Write("w", int64(i+1))
		}
		out.Write = time.Since(start) / time.Duration(ops)
		start = time.Now()
		for i := 0; i < ops; i++ {
			p.ReadPRAM("w") //mixedvet:ignore — latency micro: mixed-label reads of one location are the measurement
		}
		out.PRAMRead = time.Since(start) / time.Duration(ops)
		start = time.Now()
		for i := 0; i < ops; i++ {
			p.ReadCausal("w") //mixedvet:ignore
		}
		out.CausalRead = time.Since(start) / time.Duration(ops)
		sys.Close()
	}
	{
		sys, err := seqmem.NewSystem(seqmem.Config{Procs: 2, Latency: latency})
		if err != nil {
			return out, fmt.Errorf("latency micro: %w", err)
		}
		p := sys.Proc(0)
		start := time.Now()
		for i := 0; i < ops; i++ {
			p.Write("w", int64(i+1))
		}
		out.SCWrite = time.Since(start) / time.Duration(ops)
		start = time.Now()
		for i := 0; i < ops; i++ {
			p.ReadPRAM("w")
		}
		out.SCRead = time.Since(start) / time.Duration(ops)
		sys.Close()
	}
	return out, nil
}
