package bench

import (
	"fmt"
	"strings"
	"time"

	"mixedmem/internal/core"
	"mixedmem/internal/dsm"
	"mixedmem/internal/history"
	"mixedmem/internal/network"
	"mixedmem/internal/transport/tcp"
)

// SpectrumPoint is one lattice point of experiment E8S: the measured cost of
// running a contended cell at that consistency label.
type SpectrumPoint struct {
	Label history.Label
	// Write and Read are mean per-operation latencies at this point.
	Write, Read time.Duration
	// MsgsPerOp and BytesPerOp are fabric traffic divided by the total
	// operation count (writes plus reads). Weak labels broadcast each
	// write and read locally; SC pays a request/reply pair per access.
	MsgsPerOp, BytesPerOp float64
}

// SpectrumResult is experiment E8S: the cost-of-consistency curve, one point
// per lattice label in lattice order Slow < PRAM < Causal < SC.
type SpectrumResult struct {
	Procs, Ops int
	Points     [4]SpectrumPoint
}

// String renders the curve one lattice point per line.
func (r SpectrumResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "spectrum (procs=%d ops=%d)", r.Procs, r.Ops)
	for _, pt := range r.Points {
		fmt.Fprintf(&b, "\n    %-6s write=%-10v read=%-10v msgs/op=%.2f bytes/op=%.1f",
			pt.Label, pt.Write, pt.Read, pt.MsgsPerOp, pt.BytesPerOp)
	}
	return b.String()
}

// spectrumLoc picks a location whose SC owner is not process 0, so the SC
// point of the curve pays the full round trip rather than the self-owner
// fast path — the cost the lattice top is defined by.
func spectrumLoc(procs int) string {
	for i := 0; ; i++ {
		loc := fmt.Sprintf("cell%d", i)
		if dsm.SCOwner(loc, procs) != 0 {
			return loc
		}
	}
}

// RunLatencySpectrum measures experiment E8S on the simulated fabric: one
// system per lattice label, all running the same single-writer workload on
// the same contended cell, differing only in the cell's label (which selects
// the write path) and the read label. The curve is the paper's bargain made
// quantitative: messages and latency are flat across the weak labels — slow
// merely sheds the timestamp bytes — and jump at SC, where every access
// becomes a blocking round trip to the owner.
func RunLatencySpectrum(procs, ops int, latency network.LatencyModel) (SpectrumResult, error) {
	out := SpectrumResult{Procs: procs, Ops: ops}
	loc := spectrumLoc(procs)
	for i, label := range history.LatticeLabels() {
		sys, err := core.NewSystem(core.Config{
			Procs:   procs,
			Latency: latency,
			Labels:  map[string]history.Label{loc: label},
		})
		if err != nil {
			return out, fmt.Errorf("spectrum %v: %w", label, err)
		}
		before := sys.Fabric().Stats()
		pt, err := spectrumPoint(sys.Proc(0), label, loc, ops)
		if err != nil {
			sys.Close()
			return out, err
		}
		after := sys.Fabric().Stats()
		total := float64(2 * ops)
		pt.MsgsPerOp = float64(after.MessagesSent-before.MessagesSent) / total
		pt.BytesPerOp = float64(after.BytesSent-before.BytesSent) / total
		out.Points[i] = pt
		sys.Close()
	}
	return out, nil
}

// RunLatencySpectrumTCP is RunLatencySpectrum over loopback TCP peers: the
// weak points stay local (their broadcasts cross the kernel asynchronously),
// and — unlike E8's sim-only SC baseline — the SC point's round trip crosses
// a real socket pair, so the lattice top's cost is a kernel round trip.
func RunLatencySpectrumTCP(procs, ops int) (SpectrumResult, error) {
	out := SpectrumResult{Procs: procs, Ops: ops}
	loc := spectrumLoc(procs)
	for i, label := range history.LatticeLabels() {
		pt, err := spectrumPointTCP(procs, ops, label, loc)
		if err != nil {
			return out, fmt.Errorf("spectrum tcp %v: %w", label, err)
		}
		out.Points[i] = pt
	}
	return out, nil
}

// spectrumPoint runs the measured loops for one lattice point: ops writes
// then ops reads of the cell, both from process 0.
func spectrumPoint(p *core.Proc, label history.Label, loc string, ops int) (SpectrumPoint, error) {
	pt := SpectrumPoint{Label: label}
	start := time.Now()
	for i := 0; i < ops; i++ {
		p.Write(loc, int64(i+1))
	}
	pt.Write = time.Since(start) / time.Duration(ops)
	start = time.Now()
	for i := 0; i < ops; i++ {
		p.Read(loc, label)
	}
	pt.Read = time.Since(start) / time.Duration(ops)
	return pt, nil
}

func spectrumPointTCP(procs, ops int, label history.Label, loc string) (SpectrumPoint, error) {
	var pt SpectrumPoint
	trs, err := tcp.NewLoopback(procs, nil)
	if err != nil {
		return pt, fmt.Errorf("loopback: %w", err)
	}
	peers := make([]*core.Peer, procs)
	defer func() {
		for _, p := range peers {
			if p != nil {
				p.Close()
			}
		}
	}()
	for i := range peers {
		peers[i], err = core.NewPeer(core.PeerConfig{
			ID: i, Transport: trs[i],
			Labels: map[string]history.Label{loc: label},
		})
		if err != nil {
			return pt, fmt.Errorf("peer %d: %w", i, err)
		}
	}
	pt, err = spectrumPoint(peers[0].Proc(), label, loc, ops)
	if err != nil {
		return pt, err
	}
	// Drain in-flight broadcasts before reading traffic counters, so the
	// per-op figures are totals rather than a race with delivery.
	var msgs, bytes uint64
	for _, tr := range trs {
		tr.Flush(2 * time.Second)
	}
	for _, tr := range trs {
		s := tr.Stats()
		msgs += s.MessagesSent
		bytes += s.BytesSent
	}
	total := float64(2 * ops)
	pt.MsgsPerOp = float64(msgs) / total
	pt.BytesPerOp = float64(bytes) / total
	return pt, nil
}
