package bench

import (
	"testing"
	"time"

	"mixedmem/internal/apps"
	"mixedmem/internal/network"
)

// servingTestOptions is a reduced S1 sweep: two load points (a paced one
// and closed-loop, the highest), broadcast versus causal-scoped. The
// modeled per-message latency is set well above what request issue costs
// even on a contended host running the race detector, so the per-pair pump
// — the queueing effect under test — stays the bottleneck in both modes
// and the tail ordering is not at the mercy of CPU scheduling noise.
func servingTestOptions() ServingOptions {
	return ServingOptions{
		Procs: 4, Workers: 2,
		Ops: 100, Warmup: 16,
		Rates:   []float64{2000, 0},
		Modes:   []apps.SessionMode{apps.SessionBroadcast, apps.SessionCausalScoped},
		Latency: network.LatencyModel{Fixed: time.Millisecond},
		Seed:    17,
	}
}

// TestServingScopedBeatsBroadcastTail is the S1 acceptance claim: at the
// highest offered-load point (closed-loop), the causal-scoped configuration
// must show lower p99 write-visibility latency than all-causal broadcast —
// scoped session updates queue behind one follower's traffic instead of a
// full copy of everything on every pair.
func TestServingScopedBeatsBroadcastTail(t *testing.T) {
	res, err := RunServing(servingTestOptions())
	if err != nil {
		t.Fatalf("RunServing: %v", err)
	}
	opts := servingTestOptions()
	if len(res.Cells) != len(opts.Rates)*len(opts.Modes) {
		t.Fatalf("got %d cells, want %d", len(res.Cells), len(opts.Rates)*len(opts.Modes))
	}
	// The last rate is the highest load point; find its two mode cells.
	var broadcast, scoped *ServingCell
	for i := range res.Cells {
		c := &res.Cells[i]
		if c.Rate != 0 {
			continue
		}
		switch c.Mode {
		case apps.SessionBroadcast.String():
			broadcast = c
		case apps.SessionCausalScoped.String():
			scoped = c
		}
	}
	if broadcast == nil || scoped == nil {
		t.Fatal("missing closed-loop cells")
	}
	for _, c := range []*ServingCell{broadcast, scoped} {
		if c.Read.Count == 0 || c.Write.Count == 0 || c.Vis.Count == 0 {
			t.Fatalf("cell %q has empty histograms: %+v", c.Mode, c)
		}
	}
	t.Logf("closed-loop p99 write-visibility: broadcast %v, causal-scoped %v",
		time.Duration(broadcast.Vis.P99), time.Duration(scoped.Vis.P99))
	if scoped.Vis.P99 >= broadcast.Vis.P99 {
		t.Errorf("closed-loop p99 write-visibility: causal-scoped %v >= broadcast %v",
			scoped.Vis.P99, broadcast.Vis.P99)
	}
	if scoped.UpdateMsgs >= broadcast.UpdateMsgs {
		t.Errorf("update messages: causal-scoped %d >= broadcast %d",
			scoped.UpdateMsgs, broadcast.UpdateMsgs)
	}
	// The workload is placement-invariant: same fingerprint in every cell
	// of a load point.
	if scoped.Fingerprint != broadcast.Fingerprint {
		t.Errorf("fingerprints differ across modes: %x vs %x",
			scoped.Fingerprint, broadcast.Fingerprint)
	}
}

// fastServingOptions is a minimal sweep on a near-zero-latency fabric, for
// the determinism checks.
func fastServingOptions() ServingOptions {
	return ServingOptions{
		Procs: 3, Workers: 2,
		Ops: 40, Warmup: 8,
		Rates:   []float64{0},
		Modes:   []apps.SessionMode{apps.SessionHybrid},
		Latency: network.LatencyModel{Fixed: 10 * time.Microsecond},
		Seed:    23,
	}
}

// TestServingDeterministicWorkload pins the fixed-seed guarantee: re-running
// a cell reproduces the workload fingerprint and the request counts exactly
// (latencies are wall-clock and may differ).
func TestServingDeterministicWorkload(t *testing.T) {
	a, err := RunServing(fastServingOptions())
	if err != nil {
		t.Fatalf("RunServing: %v", err)
	}
	b, err := RunServing(fastServingOptions())
	if err != nil {
		t.Fatalf("RunServing (rerun): %v", err)
	}
	for i := range a.Cells {
		ca, cb := a.Cells[i], b.Cells[i]
		if ca.Fingerprint != cb.Fingerprint {
			t.Errorf("cell %d fingerprint changed across runs: %x vs %x", i, ca.Fingerprint, cb.Fingerprint)
		}
		if ca.Read.Count != cb.Read.Count || ca.Write.Count != cb.Write.Count || ca.Vis.Count != cb.Vis.Count {
			t.Errorf("cell %d sample counts changed across runs: %+v vs %+v", i, ca, cb)
		}
	}
}

// TestServingTCPMatchesSimWorkload runs the minimal sweep over loopback TCP
// and asserts the workload fingerprints equal the simulated run's — the
// cross-substrate determinism the S1 rows advertise.
func TestServingTCPMatchesSimWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("loopback TCP serving in -short mode")
	}
	sim, err := RunServing(fastServingOptions())
	if err != nil {
		t.Fatalf("RunServing: %v", err)
	}
	tcp, err := RunServingTCP(fastServingOptions())
	if err != nil {
		t.Fatalf("RunServingTCP: %v", err)
	}
	if len(sim.Cells) != len(tcp.Cells) {
		t.Fatalf("cell count mismatch: sim %d, tcp %d", len(sim.Cells), len(tcp.Cells))
	}
	for i := range sim.Cells {
		if sim.Cells[i].Fingerprint != tcp.Cells[i].Fingerprint {
			t.Errorf("cell %d fingerprint differs across substrates: sim %x, tcp %x",
				i, sim.Cells[i].Fingerprint, tcp.Cells[i].Fingerprint)
		}
		if sim.Cells[i].Vis.Count != tcp.Cells[i].Vis.Count {
			t.Errorf("cell %d probe counts differ across substrates: sim %d, tcp %d",
				i, sim.Cells[i].Vis.Count, tcp.Cells[i].Vis.Count)
		}
	}
}
