package bench

import (
	"fmt"
	"strings"
	"time"

	"mixedmem/internal/apps"
	"mixedmem/internal/core"
	"mixedmem/internal/hist"
	"mixedmem/internal/network"
	"mixedmem/internal/obs"
)

// Experiment S1: the serving subsystem. The session/KV front-end runs under
// a seeded closed- or open-loop load at several offered-load points and
// under the three label/placement configurations, and each cell reports the
// per-label tail latencies (read, write-issue, and cross-process
// write-visibility p50/p99/p999). The claim under test is the serving-side
// restatement of the paper's economics: labeling the session data as causal
// scopes (partial replication with dependency matrices) must beat labeling
// everything causal-broadcast on tail write-visibility at high load, because
// the scoped configuration ships each session update to one follower
// instead of queueing a copy behind every pair's traffic.

// ServingCell is one (mode x offered-load) measurement of S1.
type ServingCell struct {
	// Mode is the label/placement configuration name.
	Mode string
	// Rate is the per-strand offered load in requests/second; 0 means
	// closed-loop (each strand issues as fast as completions allow), the
	// highest load point.
	Rate float64
	// Read, Write, and Vis are the fleet-merged measured-phase latency
	// summaries: read latency, write-issue latency, and cross-process
	// write-visibility latency.
	Read, Write, Vis hist.Summary
	// UpdateMsgs is the total update-message count across the fleet.
	UpdateMsgs uint64
	// Elapsed is the wall time of the whole cell (warmup included).
	Elapsed time.Duration
	// Fingerprint hashes the cell's full request workload; equal
	// fingerprints across runs or substrates prove identical workloads.
	Fingerprint uint64
}

// ServingResult is experiment S1 on one substrate.
type ServingResult struct {
	// Transport names the substrate: "sim" or "tcp".
	Transport string
	// Procs, Workers, Ops, Warmup, and Seed echo the configuration.
	Procs, Workers, Ops, Warmup int
	Seed                        int64
	// Cells holds one entry per (rate, mode), rates outer, modes inner.
	Cells []ServingCell
	// Traces holds one tracer snapshot per (cell, process) when the sweep
	// ran with ServingOptions.TraceCapacity set: every snapshot of a cell
	// shares a Tag of the form "<transport>/<mode>@<load>", which is how
	// the causal-path explainer groups a fleet's rings into one run.
	Traces []*obs.Snapshot
}

// String renders the result as a report table.
func (r ServingResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "serving (%s): procs=%d workers=%d ops=%d warmup=%d seed=%d\n",
		r.Transport, r.Procs, r.Workers, r.Ops, r.Warmup, r.Seed)
	for _, c := range r.Cells {
		load := "closed-loop"
		if c.Rate > 0 {
			load = fmt.Sprintf("%.0f req/s", c.Rate)
		}
		fmt.Fprintf(&b, "  %-14s %-12s msgs=%-6d read[%s] write[%s] vis[%s]\n",
			c.Mode, load, c.UpdateMsgs, c.Read, c.Write, c.Vis)
	}
	return strings.TrimRight(b.String(), "\n")
}

// ServingOptions configures the S1 sweep.
type ServingOptions struct {
	// Procs is the fleet size (>= 2 for visibility probes).
	Procs int
	// Workers is the number of request strands per process.
	Workers int
	// Ops and Warmup are the measured and unmeasured requests per strand.
	Ops, Warmup int
	// Rates is the offered-load sweep, requests/second per strand; 0 is
	// closed-loop and should come last as the highest load point.
	Rates []float64
	// Modes is the label-configuration sweep.
	Modes []apps.SessionMode
	// Latency is the simulated fabric's model (ignored by the TCP runner).
	Latency network.LatencyModel
	// Seed fixes the workload.
	Seed int64
	// TraceCapacity, when positive, runs every cell with per-node event
	// tracers of this ring size (core.Config.TraceCapacity) and collects
	// the per-process snapshots into ServingResult.Traces. Size the ring to
	// the cell (a slot per event; a traced write costs a handful) or the
	// oldest chain anchors wrap and the explainer reports incompletes.
	TraceCapacity int
}

func (o ServingOptions) withDefaults() ServingOptions {
	if o.Procs == 0 {
		o.Procs = 4
	}
	if o.Workers == 0 {
		o.Workers = 2
	}
	if o.Ops == 0 {
		o.Ops = 120
	}
	if o.Warmup == 0 {
		o.Warmup = 20
	}
	if len(o.Rates) == 0 {
		o.Rates = []float64{500, 2000, 0}
	}
	if len(o.Modes) == 0 {
		o.Modes = []apps.SessionMode{apps.SessionBroadcast, apps.SessionCausalScoped, apps.SessionHybrid}
	}
	if o.Latency == (network.LatencyModel{}) {
		o.Latency = DefaultLatency
	}
	return o
}

// sessionConfig builds the session workload for one cell. Aggregate bumps
// are kept sparse (every 8th request) so the broadcast-versus-scoped
// comparison measures session traffic, which is the placement under test,
// rather than counter traffic common to both.
func (o ServingOptions) sessionConfig(mode apps.SessionMode, rate float64) apps.SessionConfig {
	return apps.SessionConfig{
		Procs:   o.Procs,
		Workers: o.Workers,
		Ops:     o.Ops, Warmup: o.Warmup,
		Rate:     rate,
		AggEvery: 8, AggReadEvery: 16,
		Seed: o.Seed,
		Mode: mode,
	}
}

// servingTag names one cell's trace run: transport, mode, and load point.
func servingTag(transport string, cfg apps.SessionConfig) string {
	load := "closed"
	if cfg.Rate > 0 {
		load = fmt.Sprintf("%.0frps", cfg.Rate)
	}
	return fmt.Sprintf("%s/%s@%s", transport, cfg.Mode, load)
}

// mergeServingCell folds per-process results into one cell.
func mergeServingCell(cfg apps.SessionConfig, results []*apps.SessionProcResult) ServingCell {
	read, write, vis := hist.New(), hist.New(), hist.New()
	for _, r := range results {
		read.Merge(r.Read)
		write.Merge(r.Write)
		vis.Merge(r.Vis)
	}
	return ServingCell{
		Mode:        cfg.Mode.String(),
		Rate:        cfg.Rate,
		Read:        read.Summary(),
		Write:       write.Summary(),
		Vis:         vis.Summary(),
		Fingerprint: cfg.WorkloadFingerprint(),
	}
}

// RunServing is S1 on the simulated fabric: for every offered-load point
// and every label configuration, run the session front-end on a fresh
// system, verify the replay-predicted aggregate counters on every process,
// and report the fleet-merged latency summaries.
func RunServing(opt ServingOptions) (ServingResult, error) {
	o := opt.withDefaults()
	out := ServingResult{
		Transport: "sim",
		Procs:     o.Procs, Workers: o.Workers, Ops: o.Ops, Warmup: o.Warmup,
		Seed: o.Seed,
	}
	for _, rate := range o.Rates {
		for _, mode := range o.Modes {
			cfg := o.sessionConfig(mode, rate)
			sys, err := core.NewSystem(core.Config{
				Procs:         o.Procs,
				Latency:       o.Latency,
				Seed:          o.Seed,
				Placement:     apps.SessionScope(cfg),
				TraceCapacity: o.TraceCapacity,
			})
			if err != nil {
				return out, fmt.Errorf("serving (%v, rate %.0f): %w", mode, rate, err)
			}
			results := make([]*apps.SessionProcResult, o.Procs)
			verifyErrs := make([]error, o.Procs)
			start := time.Now()
			sys.Run(func(p *core.Proc) {
				results[p.ID()] = apps.ServeSessions(p, cfg)
				verifyErrs[p.ID()] = apps.VerifySessionCounters(p, cfg)
			})
			elapsed := time.Since(start)
			msgs := sys.NetStats().PerKind[dsmUpdateKind]
			if o.TraceCapacity > 0 {
				tag := servingTag("sim", cfg)
				for i := 0; i < o.Procs; i++ {
					s := sys.Proc(i).Tracer().Snapshot()
					s.Tag = tag
					out.Traces = append(out.Traces, s)
				}
			}
			sys.Close()
			for _, err := range verifyErrs {
				if err != nil {
					return out, fmt.Errorf("serving (%v, rate %.0f): %w", mode, rate, err)
				}
			}
			cell := mergeServingCell(cfg, results)
			cell.UpdateMsgs = msgs
			cell.Elapsed = elapsed
			out.Cells = append(out.Cells, cell)
		}
	}
	return out, nil
}
