package bench

import (
	"testing"
	"time"

	"mixedmem/internal/network"
	"mixedmem/internal/syncmgr"
)

func TestRunTimestampAblation(t *testing.T) {
	r, err := RunTimestampAblation(10, 3, network.LatencyModel{}, 1)
	if err != nil {
		t.Fatalf("RunTimestampAblation: %v", err)
	}
	if !r.ResidualsMatch {
		t.Fatal("elided run did not converge like the full run")
	}
	if r.ElidedBytes >= r.FullBytes {
		t.Fatalf("timestamp elision did not save bytes: %+v", r)
	}
	if r.String() == "" {
		t.Error("empty String")
	}
}

func TestRunPropagationCostSweep(t *testing.T) {
	// 10 buffered updates; the writer->acquirer channel is 100x slower
	// than the control channels. Each mode must pay at its characteristic
	// point, with a clear separation.
	lat := network.LatencyModel{Fixed: 100 * time.Microsecond}
	rows, err := RunPropagationCostSweep(10, 100, lat)
	if err != nil {
		t.Fatalf("RunPropagationCostSweep: %v", err)
	}
	byMode := map[syncmgr.PropagationMode]PropagationCost{}
	for _, r := range rows {
		byMode[r.Mode] = r
	}
	eager := byMode[syncmgr.Eager]
	lazy := byMode[syncmgr.Lazy]
	demand := byMode[syncmgr.DemandDriven]

	// Eager pays at release; the others release quickly.
	if eager.ReleaseWait < 3*lazy.ReleaseWait || eager.ReleaseWait < 3*demand.ReleaseWait {
		t.Errorf("eager should pay at release: eager=%v lazy=%v demand=%v",
			eager.ReleaseWait, lazy.ReleaseWait, demand.ReleaseWait)
	}
	// Lazy pays at acquire; eager and demand-driven acquire quickly.
	if lazy.AcquireWait < 3*eager.AcquireWait || lazy.AcquireWait < 3*demand.AcquireWait {
		t.Errorf("lazy should pay at acquire: eager=%v lazy=%v demand=%v",
			eager.AcquireWait, lazy.AcquireWait, demand.AcquireWait)
	}
	// Demand-driven pays at the first read; the others have already paid.
	if demand.ReadWait < 3*eager.ReadWait || demand.ReadWait < 3*lazy.ReadWait {
		t.Errorf("demand should pay at first read: eager=%v lazy=%v demand=%v",
			eager.ReadWait, lazy.ReadWait, demand.ReadWait)
	}
	for _, r := range rows {
		if r.String() == "" {
			t.Error("empty String")
		}
	}
}

func TestRunPlacementAblation(t *testing.T) {
	r, err := RunPlacementAblation(32, 8, 4, network.LatencyModel{}, 1)
	if err != nil {
		t.Fatalf("RunPlacementAblation: %v", err)
	}
	if !r.ResultsMatch {
		t.Fatal("scoped run diverged from the sequential reference")
	}
	// With 4 processes each boundary update goes to 1 reader instead of 3
	// peers: roughly a 3x message reduction.
	if r.ScopedMsgs*2 >= r.BroadcastMsgs {
		t.Fatalf("placement did not cut update messages: %+v", r)
	}
	// The causal-scoped row pays dependency matrices per message but sends to
	// the same single reader, so the count reduction must hold there too.
	if r.CausalScopedMsgs == 0 || r.CausalScopedMsgs*2 >= r.BroadcastMsgs {
		t.Fatalf("causal-scoped placement did not cut update messages: %+v", r)
	}
}

func TestRunPlacementAblationTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("loopback TCP ablation in -short mode")
	}
	r, err := RunPlacementAblationTCP(32, 8, 4, 1)
	if err != nil {
		t.Fatalf("RunPlacementAblationTCP: %v", err)
	}
	if !r.ResultsMatch {
		t.Fatal("TCP scoped run diverged from the sequential reference")
	}
	if r.ScopedMsgs == 0 || r.ScopedMsgs*2 >= r.BroadcastMsgs {
		t.Fatalf("TCP placement did not cut update messages: %+v", r)
	}
	if r.CausalScopedMsgs == 0 || r.CausalScopedMsgs*2 >= r.BroadcastMsgs {
		t.Fatalf("TCP causal-scoped placement did not cut update messages: %+v", r)
	}
}
