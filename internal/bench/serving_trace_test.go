package bench

import (
	"testing"
	"time"

	"mixedmem/internal/apps"
	"mixedmem/internal/network"
	"mixedmem/internal/obs"
)

// tracedServingOptions is the minimal sweep with tracing on: one
// closed-loop hybrid cell, rings sized so no chain anchor can wrap.
func tracedServingOptions() ServingOptions {
	return ServingOptions{
		Procs: 3, Workers: 2,
		Ops: 40, Warmup: 8,
		Rates:         []float64{0},
		Modes:         []apps.SessionMode{apps.SessionHybrid},
		Latency:       network.LatencyModel{Fixed: 10 * time.Microsecond},
		Seed:          23,
		TraceCapacity: 1 << 15,
	}
}

// checkAttribution is the ISSUE's acceptance gate on one substrate's
// traces: every sampled write-visibility interval must telescope into
// named segments covering at least 95% of it, with no incomplete chains.
func checkAttribution(t *testing.T, traces []*obs.Snapshot) {
	t.Helper()
	ex := obs.Explain(traces, apps.IsVisFlagLoc)
	if len(ex.Breakdowns) == 0 {
		t.Fatal("no trace breakdowns")
	}
	for _, b := range ex.Breakdowns {
		t.Logf("%s: %d samples, min attribution %.1f%%, total p99 %v",
			b.Tag, b.Samples, b.MinAttribution*100, b.TotalP99)
		if b.Samples == 0 {
			t.Errorf("%s: no write-visibility samples in trace", b.Tag)
		}
		if b.Incomplete != 0 {
			t.Errorf("%s: %d incomplete chains (ring wrapped?)", b.Tag, b.Incomplete)
		}
		if b.MinAttribution < 0.95 {
			t.Errorf("%s: attribution %.3f below the 0.95 gate", b.Tag, b.MinAttribution)
		}
	}
}

// TestServingTraceAttributionSim runs a traced S1 cell on the simulated
// fabric and requires the causal-path explainer to attribute ≥95% of every
// sampled write-visibility interval to named segments.
func TestServingTraceAttributionSim(t *testing.T) {
	res, err := RunServing(tracedServingOptions())
	if err != nil {
		t.Fatalf("RunServing: %v", err)
	}
	opts := tracedServingOptions()
	if want := opts.Procs * len(opts.Rates) * len(opts.Modes); len(res.Traces) != want {
		t.Fatalf("got %d trace snapshots, want %d", len(res.Traces), want)
	}
	for _, s := range res.Traces {
		if s.Dropped != 0 {
			t.Fatalf("node %d dropped %d events; grow the test ring", s.Node, s.Dropped)
		}
	}
	checkAttribution(t, res.Traces)

	// A traced run and an untraced run draw the same seeded workload.
	plain, err := RunServing(fastServingOptions())
	if err != nil {
		t.Fatalf("RunServing (untraced): %v", err)
	}
	if res.Cells[0].Fingerprint != plain.Cells[0].Fingerprint {
		t.Errorf("tracing changed the workload fingerprint: %x vs %x",
			res.Cells[0].Fingerprint, plain.Cells[0].Fingerprint)
	}
}

// TestServingTraceAttributionTCP is the same gate over loopback TCP — the
// chain events cross real sockets, so this also proves the codec-free
// in-process snapshot path works per peer and the tags line up per cell.
func TestServingTraceAttributionTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("loopback TCP serving in -short mode")
	}
	res, err := RunServingTCP(tracedServingOptions())
	if err != nil {
		t.Fatalf("RunServingTCP: %v", err)
	}
	checkAttribution(t, res.Traces)
}
