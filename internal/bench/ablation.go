package bench

import (
	"fmt"
	"strconv"
	"time"

	"mixedmem/internal/apps"
	"mixedmem/internal/core"
	"mixedmem/internal/history"
	"mixedmem/internal/network"
	"mixedmem/internal/syncmgr"
)

// TimestampAblation is ablation A1: the Section 6 remark that "the extra
// overhead of sending a timestamp in each message and performing the updates
// in the timestamp order can be avoided if ... all read operations of the
// program following a write operation are PRAM operations." The Figure 2
// solver is exactly such a program (PRAM-consistent), so running it with
// timestamps elided must produce the same answer with smaller updates.
type TimestampAblation struct {
	N, Procs int
	// Full is the run with vector timestamps on every update.
	FullTime  time.Duration
	FullBytes uint64
	// Elided is the PRAM-only run.
	ElidedTime  time.Duration
	ElidedBytes uint64
	// ResidualsMatch reports both runs converged below tolerance.
	ResidualsMatch bool
}

// String renders the ablation row.
func (r TimestampAblation) String() string {
	saved := 0.0
	if r.FullBytes > 0 {
		saved = 100 * (1 - float64(r.ElidedBytes)/float64(r.FullBytes))
	}
	return fmt.Sprintf(
		"n=%d procs=%d | with timestamps: %v, %d bytes | elided: %v, %d bytes | %.1f%% bytes saved, results match=%v",
		r.N, r.Procs,
		r.FullTime.Round(time.Microsecond), r.FullBytes,
		r.ElidedTime.Round(time.Microsecond), r.ElidedBytes,
		saved, r.ResidualsMatch)
}

// RunTimestampAblation runs the Figure 2 solver with and without vector
// timestamps on updates.
func RunTimestampAblation(n, procs int, latency network.LatencyModel, seed int64) (TimestampAblation, error) {
	ls := apps.GenDiagDominant(n, seed)
	out := TimestampAblation{N: n, Procs: procs}

	run := func(pramOnly bool) (time.Duration, uint64, float64, error) {
		sys, err := core.NewSystem(core.Config{
			Procs: procs, Latency: latency, Seed: seed, PRAMOnly: pramOnly,
		})
		if err != nil {
			return 0, 0, 0, err
		}
		defer sys.Close()
		var res apps.SolveResult
		start := time.Now()
		sys.Run(func(p *core.Proc) {
			r := apps.SolveBarrier(p, ls, apps.SolveOptions{Tol: 1e-8})
			if p.ID() == 0 {
				res = r
			}
		})
		return time.Since(start), sys.NetStats().BytesSent, ls.Residual(res.X), nil
	}

	fullTime, fullBytes, fullResid, err := run(false)
	if err != nil {
		return out, fmt.Errorf("timestamp ablation (full): %w", err)
	}
	elidedTime, elidedBytes, elidedResid, err := run(true)
	if err != nil {
		return out, fmt.Errorf("timestamp ablation (elided): %w", err)
	}
	out.FullTime, out.FullBytes = fullTime, fullBytes
	out.ElidedTime, out.ElidedBytes = elidedTime, elidedBytes
	out.ResidualsMatch = fullResid < 1e-7 && elidedResid < 1e-7
	return out, nil
}

// PropagationCost is one row of ablation A2: where a propagation mode pays
// for critical-section visibility on an asymmetric network. The scenario is
// a single lock handoff from a writer to an acquirer whose direct channel
// from the writer is many times slower than the control channels through the
// manager — a congested or remote data path. Each mode charges the cost of
// the writer's buffered updates at a different point:
//
//   - eager pays at release: the unlock blocks until every process (over
//     the slow link too) acknowledges the flush;
//   - lazy pays at acquire: the grant arrives fast, but the acquirer waits
//     for every update counted in the release vector;
//   - demand-driven pays at the first read of an invalidated location, and
//     nothing at all if the acquirer never reads the data — the Section 6
//     remark that eager and lazy "do not take into account whether data is
//     actually accessed subsequently."
type PropagationCost struct {
	Mode syncmgr.PropagationMode
	// ReleaseWait is how long the writer's WUnlock took.
	ReleaseWait time.Duration
	// AcquireWait is how long the acquirer's WLock took.
	AcquireWait time.Duration
	// ReadWait is how long the acquirer's first causal read of a written
	// location took after the acquire.
	ReadWait time.Duration
}

// String renders one row.
func (r PropagationCost) String() string {
	return fmt.Sprintf("%-13s release-wait=%-12v acquire-wait=%-12v first-read-wait=%v",
		r.Mode, r.ReleaseWait.Round(time.Microsecond),
		r.AcquireWait.Round(time.Microsecond), r.ReadWait.Round(time.Microsecond))
}

// RunPropagationCost runs the asymmetric handoff for one mode. noiseWrites
// is the number of updates the writer issues inside the critical section;
// slowFactor scales the writer->acquirer channel latency.
func RunPropagationCost(mode syncmgr.PropagationMode, noiseWrites int, slowFactor float64, latency network.LatencyModel) (PropagationCost, error) {
	// Process 0 hosts the managers and never works; 1 writes; 2 acquires.
	sys, err := core.NewSystem(core.Config{
		Procs: 3, Latency: latency, Propagation: mode,
	})
	if err != nil {
		return PropagationCost{}, fmt.Errorf("propagation cost %v: %w", mode, err)
	}
	defer sys.Close()
	if err := sys.Fabric().SetDelayFactor(1, 2, slowFactor); err != nil {
		return PropagationCost{}, err
	}

	writer, acq := sys.Proc(1), sys.Proc(2)
	out := PropagationCost{Mode: mode}

	writer.WLock("l")
	for i := 0; i < noiseWrites; i++ {
		writer.Write("noise"+strconv.Itoa(i), int64(i+1))
	}
	writer.Write("real", 42)
	start := time.Now()
	writer.WUnlock("l")
	out.ReleaseWait = time.Since(start)

	start = time.Now()
	acq.WLock("l")
	out.AcquireWait = time.Since(start)

	start = time.Now()
	if v := acq.ReadCausal("real"); v != 42 {
		return out, fmt.Errorf("propagation cost %v: read %d, want 42", mode, v)
	}
	out.ReadWait = time.Since(start)
	acq.WUnlock("l")
	return out, nil
}

// RunPropagationCostSweep runs the asymmetric handoff for all three modes.
func RunPropagationCostSweep(noiseWrites int, slowFactor float64, latency network.LatencyModel) ([]PropagationCost, error) {
	modes := []syncmgr.PropagationMode{syncmgr.Eager, syncmgr.Lazy, syncmgr.DemandDriven}
	out := make([]PropagationCost, 0, len(modes))
	for _, mode := range modes {
		r, err := RunPropagationCost(mode, noiseWrites, slowFactor, latency)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// PlacementAblation is ablation A3: Section 6's closing remark on memory
// operations — "the overhead of broadcasting messages for each update and of
// duplicating memory at each node may be avoided by making optimizations
// based on the patterns of accesses to shared variables." The EM-field
// program's boundary variables each have exactly one reader, so scoped
// placement sends each update to one process instead of all.
type PlacementAblation struct {
	Size, Steps, Procs int
	// Broadcast is the run with full update broadcast (PRAM reads).
	BroadcastMsgs uint64
	BroadcastTime time.Duration
	// Scoped is the run with per-location placement and PRAMOnly: every
	// update timestamp-elided and sent to its single registered reader.
	ScopedMsgs uint64
	ScopedTime time.Duration
	// CausalScoped is the run with causal boundary reads and every reader
	// causal-registered: each update ships dependency-stamped to its single
	// reader instead of broadcast — scoped placement with a live causal
	// view.
	CausalScopedMsgs uint64
	CausalScopedTime time.Duration
	// ResultsMatch reports all runs matched the sequential reference.
	ResultsMatch bool
}

// String renders the ablation row.
func (r PlacementAblation) String() string {
	saved := func(msgs uint64) float64 {
		if r.BroadcastMsgs == 0 {
			return 0
		}
		return 100 * (1 - float64(msgs)/float64(r.BroadcastMsgs))
	}
	return fmt.Sprintf(
		"grid=%d steps=%d procs=%d | broadcast: %d msgs, %v | scoped: %d msgs, %v (%.1f%% saved) | causal-scoped: %d msgs, %v (%.1f%% saved) | results match=%v",
		r.Size, r.Steps, r.Procs,
		r.BroadcastMsgs, r.BroadcastTime.Round(time.Microsecond),
		r.ScopedMsgs, r.ScopedTime.Round(time.Microsecond), saved(r.ScopedMsgs),
		r.CausalScopedMsgs, r.CausalScopedTime.Round(time.Microsecond), saved(r.CausalScopedMsgs),
		r.ResultsMatch)
}

// placementMode selects one A3 configuration.
type placementMode int

const (
	placementBroadcast placementMode = iota
	placementScopedPRAM
	placementScopedCausal
)

// runPlacementCase runs the EM-field computation on one system configuration
// and reports update-message count, wall time, and bit-exactness against the
// sequential reference.
func runPlacementCase(mode placementMode, prob *apps.EMProblem, refE []float64, procs int, latency network.LatencyModel, seed int64) (uint64, time.Duration, bool, error) {
	cfg := core.Config{Procs: procs, Latency: latency, Seed: seed}
	opts := apps.SolveOptions{}
	switch mode {
	case placementScopedPRAM:
		cfg.PRAMOnly = true
		cfg.Placement = apps.EMFieldScope(prob.Size, procs, false)
	case placementScopedCausal:
		cfg.Placement = apps.EMFieldScope(prob.Size, procs, true)
		opts.ReadLabel = history.LabelCausal
	}
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return 0, 0, false, err
	}
	defer sys.Close()
	results := make([]apps.EMResult, procs)
	start := time.Now()
	sys.Run(func(p *core.Proc) {
		results[p.ID()] = apps.SolveEMField(p, prob, opts)
	})
	elapsed := time.Since(start)
	exact := true
	for _, r := range results {
		for i := r.Lo; i < r.Hi; i++ {
			if r.E[i-r.Lo] != refE[i] {
				exact = false
			}
		}
	}
	return sys.NetStats().PerKind[dsmUpdateKind], elapsed, exact, nil
}

// RunPlacementAblation runs the EM-field computation without placement, with
// PRAM-only placement, and with causal-scoped placement.
func RunPlacementAblation(size, steps, procs int, latency network.LatencyModel, seed int64) (PlacementAblation, error) {
	prob := apps.GenEMProblem(size, steps, seed)
	refE, _ := prob.SolveSequential()
	out := PlacementAblation{Size: size, Steps: steps, Procs: procs}

	bMsgs, bTime, bOK, err := runPlacementCase(placementBroadcast, prob, refE, procs, latency, seed)
	if err != nil {
		return out, fmt.Errorf("placement ablation (broadcast): %w", err)
	}
	sMsgs, sTime, sOK, err := runPlacementCase(placementScopedPRAM, prob, refE, procs, latency, seed)
	if err != nil {
		return out, fmt.Errorf("placement ablation (scoped): %w", err)
	}
	cMsgs, cTime, cOK, err := runPlacementCase(placementScopedCausal, prob, refE, procs, latency, seed)
	if err != nil {
		return out, fmt.Errorf("placement ablation (causal-scoped): %w", err)
	}
	out.BroadcastMsgs, out.BroadcastTime = bMsgs, bTime
	out.ScopedMsgs, out.ScopedTime = sMsgs, sTime
	out.CausalScopedMsgs, out.CausalScopedTime = cMsgs, cTime
	out.ResultsMatch = bOK && sOK && cOK
	return out, nil
}

// dsmUpdateKind mirrors dsm.KindUpdate without importing the package here.
const dsmUpdateKind = "update"
