package bench

import (
	"fmt"
	"time"

	"mixedmem/internal/core"
	"mixedmem/internal/transport/tcp"
)

// RunLatencyMicroTCP is RunLatencyMicro on a real kernel network: two OS-style
// peers connected over loopback TCP instead of the simulated fabric. The
// mixed-consistency columns measure the same thing — weak writes and reads
// are local operations, so their latency must stay flat even when the
// broadcast behind them crosses real sockets. The SC columns are zero: the
// central-server sequentially consistent baseline is simulation-only (its
// round trip is the modeled latency, which a kernel loopback does not
// reproduce), so the TCP rerun reports only the mixed side of the spectrum.
func RunLatencyMicroTCP(ops int) (LatencyResult, error) {
	var out LatencyResult
	trs, err := tcp.NewLoopback(2, nil)
	if err != nil {
		return out, fmt.Errorf("latency micro tcp: %w", err)
	}
	peers := make([]*core.Peer, len(trs))
	defer func() {
		for _, tr := range trs {
			tr.Flush(2 * time.Second)
		}
		for _, p := range peers {
			if p != nil {
				p.Close()
			}
		}
	}()
	for i := range peers {
		p, err := core.NewPeer(core.PeerConfig{ID: i, Transport: trs[i]})
		if err != nil {
			return out, fmt.Errorf("latency micro tcp: peer %d: %w", i, err)
		}
		peers[i] = p
	}
	p := peers[0].Proc()
	start := time.Now()
	for i := 0; i < ops; i++ {
		p.Write("w", int64(i+1))
	}
	out.Write = time.Since(start) / time.Duration(ops)
	start = time.Now()
	for i := 0; i < ops; i++ {
		p.ReadPRAM("w")
	}
	out.PRAMRead = time.Since(start) / time.Duration(ops)
	start = time.Now()
	for i := 0; i < ops; i++ {
		p.ReadCausal("w")
	}
	out.CausalRead = time.Since(start) / time.Duration(ops)
	return out, nil
}
