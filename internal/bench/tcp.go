package bench

import (
	"fmt"
	"time"

	"mixedmem/internal/apps"
	"mixedmem/internal/core"
	"mixedmem/internal/history"
	"mixedmem/internal/obs"
	"mixedmem/internal/transport/tcp"
)

// RunLatencyMicroTCP is RunLatencyMicro on a real kernel network: two OS-style
// peers connected over loopback TCP instead of the simulated fabric. The
// mixed-consistency columns measure the same thing — weak writes and reads
// are local operations, so their latency must stay flat even when the
// broadcast behind them crosses real sockets. The SC columns are zero: the
// central-server sequentially consistent baseline is simulation-only (its
// round trip is the modeled latency, which a kernel loopback does not
// reproduce), so the TCP rerun reports only the mixed side of the spectrum.
func RunLatencyMicroTCP(ops int) (LatencyResult, error) {
	var out LatencyResult
	trs, err := tcp.NewLoopback(2, nil)
	if err != nil {
		return out, fmt.Errorf("latency micro tcp: %w", err)
	}
	peers := make([]*core.Peer, len(trs))
	defer func() {
		for _, tr := range trs {
			tr.Flush(2 * time.Second)
		}
		for _, p := range peers {
			if p != nil {
				p.Close()
			}
		}
	}()
	for i := range peers {
		p, err := core.NewPeer(core.PeerConfig{ID: i, Transport: trs[i]})
		if err != nil {
			return out, fmt.Errorf("latency micro tcp: peer %d: %w", i, err)
		}
		peers[i] = p
	}
	p := peers[0].Proc()
	start := time.Now()
	for i := 0; i < ops; i++ {
		p.Write("w", int64(i+1))
	}
	out.Write = time.Since(start) / time.Duration(ops)
	start = time.Now()
	for i := 0; i < ops; i++ {
		p.ReadPRAM("w") //mixedvet:ignore — latency micro: mixed-label reads of one location are the measurement
	}
	out.PRAMRead = time.Since(start) / time.Duration(ops)
	start = time.Now()
	for i := 0; i < ops; i++ {
		p.ReadCausal("w")
	}
	out.CausalRead = time.Since(start) / time.Duration(ops)
	return out, nil
}

// runPlacementCaseTCP runs one A3 configuration over loopback TCP peers and
// reports the summed update-message count across all peers' transports, wall
// time, and bit-exactness against the sequential reference.
func runPlacementCaseTCP(mode placementMode, prob *apps.EMProblem, refE []float64, procs int) (uint64, time.Duration, bool, error) {
	trs, err := tcp.NewLoopback(procs, nil)
	if err != nil {
		return 0, 0, false, fmt.Errorf("loopback: %w", err)
	}
	peers := make([]*core.Peer, procs)
	defer func() {
		for _, tr := range trs {
			tr.Flush(2 * time.Second)
		}
		for _, p := range peers {
			if p != nil {
				p.Close()
			}
		}
	}()
	opts := apps.SolveOptions{}
	if mode == placementScopedCausal {
		opts.ReadLabel = history.LabelCausal
	}
	for i := range peers {
		pcfg := core.PeerConfig{ID: i, Transport: trs[i]}
		switch mode {
		case placementScopedPRAM:
			pcfg.PRAMOnly = true
			pcfg.Scope = apps.EMFieldScope(prob.Size, procs, false)
		case placementScopedCausal:
			pcfg.Scope = apps.EMFieldScope(prob.Size, procs, true)
		}
		peers[i], err = core.NewPeer(pcfg)
		if err != nil {
			return 0, 0, false, fmt.Errorf("peer %d: %w", i, err)
		}
	}
	results := make([]apps.EMResult, procs)
	done := make(chan struct{})
	start := time.Now()
	for i, peer := range peers {
		go func(i int, p *core.Proc) {
			results[i] = apps.SolveEMField(p, prob, opts)
			done <- struct{}{}
		}(i, peer.Proc())
	}
	for range peers {
		<-done
	}
	elapsed := time.Since(start)
	exact := true
	for _, r := range results {
		for i := r.Lo; i < r.Hi; i++ {
			if r.E[i-r.Lo] != refE[i] {
				exact = false
			}
		}
	}
	var msgs uint64
	for _, tr := range trs {
		msgs += tr.Stats().PerKind[dsmUpdateKind]
	}
	return msgs, elapsed, exact, nil
}

// runServingCellTCP runs one S1 cell over loopback TCP peers. With a
// positive traceCap every peer carries an event tracer; the per-peer
// snapshots (untagged — the caller tags the run) come back alongside the
// cell.
func runServingCellTCP(cfg apps.SessionConfig, traceCap int) (ServingCell, uint64, time.Duration, []*obs.Snapshot, error) {
	trs, err := tcp.NewLoopback(cfg.Procs, nil)
	if err != nil {
		return ServingCell{}, 0, 0, nil, fmt.Errorf("loopback: %w", err)
	}
	peers := make([]*core.Peer, cfg.Procs)
	defer func() {
		for _, tr := range trs {
			tr.Flush(2 * time.Second)
		}
		for _, p := range peers {
			if p != nil {
				p.Close()
			}
		}
	}()
	scope := apps.SessionScope(cfg)
	for i := range peers {
		peers[i], err = core.NewPeer(core.PeerConfig{
			ID: i, Transport: trs[i], Scope: scope, TraceCapacity: traceCap,
		})
		if err != nil {
			return ServingCell{}, 0, 0, nil, fmt.Errorf("peer %d: %w", i, err)
		}
	}
	results := make([]*apps.SessionProcResult, cfg.Procs)
	verifyErrs := make([]error, cfg.Procs)
	done := make(chan struct{})
	start := time.Now()
	for i, peer := range peers {
		go func(i int, p *core.Proc) {
			results[i] = apps.ServeSessions(p, cfg)
			verifyErrs[i] = apps.VerifySessionCounters(p, cfg)
			done <- struct{}{}
		}(i, peer.Proc())
	}
	for range peers {
		<-done
	}
	elapsed := time.Since(start)
	for _, err := range verifyErrs {
		if err != nil {
			return ServingCell{}, 0, 0, nil, err
		}
	}
	var msgs uint64
	for _, tr := range trs {
		msgs += tr.Stats().PerKind[dsmUpdateKind]
	}
	var snaps []*obs.Snapshot
	if traceCap > 0 {
		for _, p := range peers {
			snaps = append(snaps, p.Tracer().Snapshot())
		}
	}
	return mergeServingCell(cfg, results), msgs, elapsed, snaps, nil
}

// RunServingTCP is S1 over real sockets: the same sweep as RunServing, but
// every process is its own peer on loopback TCP, so the visibility
// latencies include real kernel queueing and the update counts are actual
// frames. The Latency option is ignored; the seeded workload — and thus
// every cell's fingerprint — is identical to the simulated run's.
func RunServingTCP(opt ServingOptions) (ServingResult, error) {
	o := opt.withDefaults()
	out := ServingResult{
		Transport: "tcp",
		Procs:     o.Procs, Workers: o.Workers, Ops: o.Ops, Warmup: o.Warmup,
		Seed: o.Seed,
	}
	for _, rate := range o.Rates {
		for _, mode := range o.Modes {
			cfg := o.sessionConfig(mode, rate)
			cell, msgs, elapsed, snaps, err := runServingCellTCP(cfg, o.TraceCapacity)
			if err != nil {
				return out, fmt.Errorf("serving tcp (%v, rate %.0f): %w", mode, rate, err)
			}
			cell.UpdateMsgs = msgs
			cell.Elapsed = elapsed
			out.Cells = append(out.Cells, cell)
			tag := servingTag("tcp", cfg)
			for _, s := range snaps {
				s.Tag = tag
				out.Traces = append(out.Traces, s)
			}
		}
	}
	return out, nil
}

// RunPlacementAblationTCP is the A3 placement ablation over real sockets:
// every peer is its own node on loopback TCP, so the message counts are
// actual frames sent rather than simulated deliveries. Broadcast, scoped
// PRAM-only, and causal-scoped placement run the same EM-field program; the
// scoped rows must win by the same point-to-point-versus-broadcast margin as
// in the simulated fabric.
func RunPlacementAblationTCP(size, steps, procs int, seed int64) (PlacementAblation, error) {
	prob := apps.GenEMProblem(size, steps, seed)
	refE, _ := prob.SolveSequential()
	out := PlacementAblation{Size: size, Steps: steps, Procs: procs}

	bMsgs, bTime, bOK, err := runPlacementCaseTCP(placementBroadcast, prob, refE, procs)
	if err != nil {
		return out, fmt.Errorf("placement ablation tcp (broadcast): %w", err)
	}
	sMsgs, sTime, sOK, err := runPlacementCaseTCP(placementScopedPRAM, prob, refE, procs)
	if err != nil {
		return out, fmt.Errorf("placement ablation tcp (scoped): %w", err)
	}
	cMsgs, cTime, cOK, err := runPlacementCaseTCP(placementScopedCausal, prob, refE, procs)
	if err != nil {
		return out, fmt.Errorf("placement ablation tcp (causal-scoped): %w", err)
	}
	out.BroadcastMsgs, out.BroadcastTime = bMsgs, bTime
	out.ScopedMsgs, out.ScopedTime = sMsgs, sTime
	out.CausalScopedMsgs, out.CausalScopedTime = cMsgs, cTime
	out.ResultsMatch = bOK && sOK && cOK
	return out, nil
}
