package bench

import (
	"fmt"

	"mixedmem/internal/check"
	"mixedmem/internal/core"
)

// CorollaryResult is experiment E9: property-test outcomes for Theorem 1's
// corollaries on randomly generated programs executed on the real runtime.
type CorollaryResult struct {
	Seeds int
	// Entry counts entry-consistent runs (Corollary 1) whose recorded
	// histories were mixed consistent, entry consistent, and sequentially
	// consistent.
	EntryPassed int
	// Phased counts PRAM-consistent phased runs (Corollary 2) that passed
	// all three checks.
	PhasedPassed int
}

// String renders the result.
func (r CorollaryResult) String() string {
	return fmt.Sprintf("corollary 1: %d/%d SC, corollary 2: %d/%d SC",
		r.EntryPassed, r.Seeds, r.PhasedPassed, r.Seeds)
}

// Passed reports whether every run was sequentially consistent.
func (r CorollaryResult) Passed() bool {
	return r.EntryPassed == r.Seeds && r.PhasedPassed == r.Seeds
}

// RunCorollaries executes `seeds` random entry-consistent programs and
// `seeds` random PRAM-consistent phased programs on the recording runtime
// and replays each trace through the checker, verifying that the corollary's
// promise — sequential consistency — holds.
func RunCorollaries(seeds int) (CorollaryResult, error) {
	out := CorollaryResult{Seeds: seeds}
	for s := 0; s < seeds; s++ {
		h, locks, err := core.RunRandomEntryConsistent(core.RandomEntryConsistentConfig{Seed: int64(s)})
		if err != nil {
			return out, fmt.Errorf("corollary 1 seed %d: %w", s, err)
		}
		a, err := h.Analyze()
		if err != nil {
			return out, fmt.Errorf("corollary 1 seed %d: analyze: %w", s, err)
		}
		if len(check.Mixed(a)) == 0 && len(check.EntryConsistent(h, locks)) == 0 {
			if ok, _, err := check.SequentiallyConsistent(a); err == nil && ok {
				out.EntryPassed++
			}
		}
	}
	for s := 0; s < seeds; s++ {
		h, err := core.RunRandomPhased(core.RandomPhasedConfig{Seed: int64(s)})
		if err != nil {
			return out, fmt.Errorf("corollary 2 seed %d: %w", s, err)
		}
		a, err := h.Analyze()
		if err != nil {
			return out, fmt.Errorf("corollary 2 seed %d: analyze: %w", s, err)
		}
		if len(check.Mixed(a)) == 0 && len(check.PRAMConsistent(h)) == 0 {
			if ok, _, err := check.SequentiallyConsistent(a); err == nil && ok {
				out.PhasedPassed++
			}
		}
	}
	return out, nil
}
