package dsm

import (
	"testing"
	"time"

	"mixedmem/internal/history"
	"mixedmem/internal/network"
	"mixedmem/internal/transport"
	"mixedmem/internal/vclock"
)

// labeledCluster builds a fabric and n nodes sharing one Labels map.
func labeledCluster(t *testing.T, n int, labels map[string]history.Label, batch BatchConfig) []*Node {
	t.Helper()
	f, err := network.New(network.Config{Nodes: n})
	if err != nil {
		t.Fatalf("network.New: %v", err)
	}
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		nodes[i], err = NewNode(Config{ID: i, N: n, Transport: f, Labels: labels, Batch: batch})
		if err != nil {
			t.Fatalf("NewNode(%d): %v", i, err)
		}
	}
	t.Cleanup(func() {
		f.Close()
		for _, nd := range nodes {
			nd.Close()
		}
	})
	return nodes
}

func TestLabelsValidation(t *testing.T) {
	f, _ := network.New(network.Config{Nodes: 2})
	defer f.Close()
	if _, err := NewNode(Config{ID: 0, N: 2, Transport: f,
		Labels: map[string]history.Label{"x": history.LabelNone}}); err == nil {
		t.Error("LabelNone in Labels must error")
	}
	if _, err := NewNode(Config{ID: 0, N: 2, Transport: f,
		Labels: map[string]history.Label{"x": history.LabelSC},
		Scope:  &ScopeMap{Readers: map[string][]int{"x": {0, 1}}}}); err == nil {
		t.Error("SC location inside a scope must error")
	}
}

// TestSlowWritePropagatesAndElides: a slow write reaches every replica's
// slow read, carries no timestamp on the wire, and never anchors the
// observation fence (a later causal read does not wait on it).
func TestSlowWritePropagatesAndElides(t *testing.T) {
	labels := map[string]history.Label{"s": history.LabelSlow}
	nodes := labeledCluster(t, 3, labels, BatchConfig{})
	nodes[0].Write("s", 11)
	eventually(t, func() bool { return nodes[2].ReadSlow("s") == 11 },
		"slow read never observed the slow write")
	eventually(t, func() bool { return nodes[2].Read("s") == 11 },
		"label-dispatched read never observed the slow write")
	// The slow location's cell must carry no fence anchor on any replica.
	for i, nd := range nodes {
		if c := nd.shard("s").lookup("s"); c != nil && c.last.Load() != 0 {
			t.Errorf("node %d: slow location carries fence anchor %#x", i, c.last.Load())
		}
	}
	// A causal read elsewhere stays lock-free (fence empty): it must return
	// immediately even though the slow updates never enter a timestamped
	// delivery path.
	done := make(chan int64, 1)
	go func() { done <- nodes[2].ReadCausal("other") }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("causal read blocked after slow traffic")
	}
}

// TestSlowKeepsPerSenderFIFOWithCausalTraffic: a slow update enqueued after
// a causal update from the same sender must not overtake it into the causal
// view's clock (per-sender FIFO across label classes).
func TestSlowKeepsPerSenderFIFOWithCausalTraffic(t *testing.T) {
	labels := map[string]history.Label{"s": history.LabelSlow}
	nodes := labeledCluster(t, 2, labels, BatchConfig{})
	nodes[0].Write("c", 1) // causal, seq 1
	nodes[0].Write("s", 2) // slow, seq 2
	nodes[0].Write("c", 3) // causal, seq 3
	eventually(t, func() bool { return nodes[1].ReadCausal("c") == 3 },
		"causal view never applied the post-slow write")
	eventually(t, func() bool { return nodes[1].causalApplied.get(0) == 3 },
		"causal clock never advanced past the slow update")
	if got := nodes[1].ReadSlow("s"); got != 2 {
		t.Errorf("slow read = %d, want 2", got)
	}
}

// TestSlowBatchDelivery exercises the batched path: slow and causal writes
// interleaved through the outbox must flush into label-homogeneous batches
// and still apply in per-sender order.
func TestSlowBatchDelivery(t *testing.T) {
	labels := map[string]history.Label{"s": history.LabelSlow}
	nodes := labeledCluster(t, 2, labels, BatchConfig{Enabled: true, MaxUpdates: 1 << 20, Linger: time.Hour})
	for i := int64(1); i <= 3; i++ {
		nodes[0].Write("s", i)
	}
	nodes[0].Write("c", 10)
	for i := int64(4); i <= 6; i++ {
		nodes[0].Write("s", i)
	}
	nodes[0].FlushUpdates()
	eventually(t, func() bool { return nodes[1].ReadSlow("s") == 6 },
		"slow batch never applied")
	eventually(t, func() bool { return nodes[1].ReadCausal("c") == 10 },
		"causal write never applied around the slow batches")
	eventually(t, func() bool { return nodes[1].causalApplied.get(0) == 7 },
		"causal clock never covered the full mixed stream")
}

// TestSCOwnerRoundTrip: SC reads and writes serialize through the location's
// owner; a read issued after a write round trip completes must observe it
// from any node.
func TestSCOwnerRoundTrip(t *testing.T) {
	labels := map[string]history.Label{"z": history.LabelSC}
	nodes := labeledCluster(t, 3, labels, BatchConfig{})
	nodes[0].Write("z", 5) // blocking: visible everywhere once it returns
	for i, nd := range nodes {
		if got := nd.Read("z"); got != 5 {
			t.Errorf("node %d: SC read = %d, want 5", i, got)
		}
	}
	nodes[2].WriteSC("z", 9)
	if got := nodes[1].ReadSC("z"); got != 9 {
		t.Errorf("SC read after remote write = %d, want 9", got)
	}
	s := nodes[2].Stats()
	if s.SCWrites == 0 || nodes[1].Stats().SCReads == 0 {
		t.Errorf("SC stats not counted: %+v", s)
	}
}

// TestSCAddCommutes: counter ops on an SC location apply at the owner.
func TestSCAddCommutes(t *testing.T) {
	labels := map[string]history.Label{"ctr": history.LabelSC}
	nodes := labeledCluster(t, 2, labels, BatchConfig{})
	nodes[0].Add("ctr", 3)
	nodes[1].Add("ctr", 4)
	if got := nodes[0].ReadSC("ctr"); got != 7 {
		t.Errorf("SC counter = %d, want 7", got)
	}
}

// TestUpdateCodecCarriesLabel pins the label tag on the singleton and batch
// wire frames, and that encodedSize stays byte-exact with the codec.
func TestUpdateCodecCarriesLabel(t *testing.T) {
	u := Update{From: 1, Seq: 4, Op: OpSet, Label: history.LabelSlow, Loc: "s", Value: 8}
	enc, err := transport.EncodePayload(nil, KindUpdate, u)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	if len(enc) != u.encodedSize() {
		t.Errorf("encodedSize = %d, wire = %d", u.encodedSize(), len(enc))
	}
	dec, err := transport.DecodePayload(KindUpdate, enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got := dec.(Update); got.Label != history.LabelSlow {
		t.Errorf("decoded label = %v, want Slow", got.Label)
	}

	b := UpdateBatch{From: 1, FirstSeq: 4, Count: 2, Updates: []Update{
		{From: 1, Seq: 4, Op: OpSet, Label: history.LabelSlow, Loc: "s", Value: 8},
		{From: 1, Seq: 5, Op: OpSet, Label: history.LabelPRAM, Loc: "p", Value: 9, TS: vclock.VC{0, 5}},
	}}
	encB, err := transport.EncodePayload(nil, KindUpdateBatch, b)
	if err != nil {
		t.Fatalf("batch encode: %v", err)
	}
	if len(encB) != b.encodedSize() {
		t.Errorf("batch encodedSize = %d, wire = %d", b.encodedSize(), len(encB))
	}
	decB, err := transport.DecodePayload(KindUpdateBatch, encB)
	if err != nil {
		t.Fatalf("batch decode: %v", err)
	}
	got := decB.(UpdateBatch)
	if got.Updates[0].Label != history.LabelSlow || got.Updates[1].Label != history.LabelPRAM {
		t.Errorf("decoded entry labels = %v/%v, want Slow/PRAM",
			got.Updates[0].Label, got.Updates[1].Label)
	}
	putUpdateSlice(got.Updates)
}

// TestSlowWriteSteadyStateAllocFree pins the Slow lattice point's write cost:
// like the PRAMOnly floor, a steady-state batched slow write allocates
// nothing — no timestamp snapshot, warm cell, warm ring slot.
func TestSlowWriteSteadyStateAllocFree(t *testing.T) {
	labels := map[string]history.Label{"steady": history.LabelSlow}
	nodes := labeledCluster(t, 2, labels, BatchConfig{Enabled: true, MaxUpdates: 1 << 20, Linger: time.Hour})
	n := nodes[0]
	n.Write("steady", 1)
	var v int64
	allocs := testing.AllocsPerRun(500, func() {
		v++
		n.Write("steady", v)
	})
	if allocs > 0 {
		t.Errorf("steady-state batched slow Write: %.3f allocs/op, want 0", allocs)
	}
}

// TestReadSlowAllocFree pins the Slow lattice point's read cost: a slow read
// is one atomic map lookup and an atomic load, never an allocation.
func TestReadSlowAllocFree(t *testing.T) {
	labels := map[string]history.Label{"steady": history.LabelSlow}
	nodes := labeledCluster(t, 2, labels, BatchConfig{})
	n := nodes[0]
	n.Write("steady", 1)
	allocs := testing.AllocsPerRun(500, func() {
		_ = n.ReadSlow("steady")
	})
	if allocs > 0 {
		t.Errorf("ReadSlow: %.3f allocs/op, want 0", allocs)
	}
}

// TestSCRoundTripAllocPin bounds the SC access cost on the sim fabric: the
// request/reply boxings, the reply channel, and the waiting-map entry. The
// pin is a budget, not an exact count — it fails if the round trip starts
// allocating per-component state.
func TestSCRoundTripAllocPin(t *testing.T) {
	labels := map[string]history.Label{"z": history.LabelSC}
	nodes := labeledCluster(t, 2, labels, BatchConfig{})
	// Make node 1 a non-owner client (owner is deterministic; pick whichever
	// node does not own "z" to measure the messaging path).
	client := nodes[1]
	if scOwner("z", 2) == 1 {
		client = nodes[0]
	}
	client.WriteSC("z", 1) // warm the owner store and fabric path
	var v int64
	allocs := testing.AllocsPerRun(200, func() {
		v++
		client.WriteSC("z", v)
		_ = client.ReadSC("z")
	})
	const budget = 12.0 // two round trips: 2 payload boxings + channel + map entry each
	if allocs > budget {
		t.Errorf("SC write+read round trip: %.3f allocs/op, want <= %.1f", allocs, budget)
	}
}
