package dsm

import (
	"testing"
	"time"

	"mixedmem/internal/history"
	"mixedmem/internal/network"
	"mixedmem/internal/obs"
)

// obsCluster builds a two-node cluster with a tracer per node.
func obsCluster(t *testing.T, batch BatchConfig, labels map[string]history.Label) ([]*Node, []*obs.Tracer) {
	t.Helper()
	f, err := network.New(network.Config{Nodes: 2})
	if err != nil {
		t.Fatalf("network.New: %v", err)
	}
	nodes := make([]*Node, 2)
	tracers := make([]*obs.Tracer, 2)
	for i := range nodes {
		tracers[i] = obs.NewTracer(i, 4096)
		nodes[i], err = NewNode(Config{
			ID: i, N: 2, Transport: f, Batch: batch, Labels: labels, Tracer: tracers[i],
		})
		if err != nil {
			t.Fatalf("NewNode(%d): %v", i, err)
		}
	}
	t.Cleanup(func() {
		f.Close()
		for _, nd := range nodes {
			nd.Close()
		}
	})
	return nodes, tracers
}

// TestBlockedCausePartition is the regression contract for the Blocked
// split: after a workload that exercises every wait site — await, causal
// machinery (fence raise, count waits), an SC round trip, and an
// invalidation stall — the four per-cause durations sum to exactly the
// Blocked aggregate on every node. Every wait site adds the same measured
// interval to one cause and to the total, so the equality is exact, not
// approximate.
func TestBlockedCausePartition(t *testing.T) {
	// Pick an SC location owned by node 0, so node 1's access round-trips.
	scLoc := "sc-a"
	for i := 0; SCOwner(scLoc, 2) != 0; i++ {
		scLoc = "sc-" + string(rune('a'+i))
	}
	f, err := network.New(network.Config{Nodes: 2})
	if err != nil {
		t.Fatalf("network.New: %v", err)
	}
	labels := map[string]history.Label{scLoc: history.LabelSC}
	n0, err := NewNode(Config{ID: 0, N: 2, Transport: f, Labels: labels})
	if err != nil {
		t.Fatalf("NewNode(0): %v", err)
	}
	n1, err := NewNode(Config{ID: 1, N: 2, Transport: f, Labels: labels})
	if err != nil {
		t.Fatalf("NewNode(1): %v", err)
	}
	defer func() { f.Close(); n0.Close(); n1.Close() }()

	// Await (node 1 blocks until node 0's write arrives).
	done := make(chan struct{})
	go func() {
		n1.AwaitCausal("flag", 1)
		close(done)
	}()
	time.Sleep(5 * time.Millisecond)
	n0.Write("data", 7)
	n0.Write("flag", 1)
	<-done

	// Causal-wait: count waits and a fence raise after a PRAM await.
	n1.WaitReceived([]uint64{2, 0})
	n1.WaitCausalApplied([]uint64{2, 0})
	n1.AwaitPRAM("flag", 1) // raises the observation fence
	n1.ReadCausal("data")   // fence may already be covered; cheap either way

	// Invalidation stall: invalidate, then satisfy it.
	n1.Invalidate("inv", 0, 3)
	go n1.ReadCausal("inv")
	time.Sleep(2 * time.Millisecond)
	n0.Write("inv", 1)
	n0.Write("inv", 2)
	n0.Write("inv", 3)

	// SC round trip from the non-owner.
	n1.WriteSC(scLoc, 5)
	if got := n1.ReadSC(scLoc); got != 5 {
		t.Fatalf("SC read = %d, want 5", got)
	}

	for i, n := range []*Node{n0, n1} {
		s := n.Stats()
		sum := s.BlockedAwait + s.BlockedCausalWait + s.BlockedSC + s.BlockedInvalidation
		if sum != s.Blocked {
			t.Errorf("node %d: causes sum to %v, Blocked = %v (%+v)", i, sum, s.Blocked, s)
		}
	}
	// The workload demonstrably blocked on at least await and SC.
	s1 := n1.Stats()
	if s1.BlockedAwait == 0 {
		t.Errorf("node 1 never blocked in await: %+v", s1)
	}
	if s1.BlockedSC == 0 {
		t.Errorf("node 1 never blocked in an SC round trip: %+v", s1)
	}
}

// TestTracerEndToEndExplain runs one write-visibility handshake under the
// tracer in both send modes (direct broadcast and the batched outbox) and
// checks the recorded rings reconstruct a complete happens-before chain:
// the explainer must produce a fully attributed sample for each mode.
func TestTracerEndToEndExplain(t *testing.T) {
	var snaps []*obs.Snapshot
	for _, mode := range []struct {
		tag   string
		batch BatchConfig
	}{
		{"direct", BatchConfig{}},
		{"batched", BatchConfig{Enabled: true, MaxUpdates: 64, Linger: time.Millisecond}},
	} {
		nodes, tracers := obsCluster(t, mode.batch, nil)
		done := make(chan struct{})
		go func() {
			nodes[1].AwaitCausal("vis/flag", 1)
			close(done)
		}()
		time.Sleep(2 * time.Millisecond)
		nodes[0].Write("vis/data", 42)
		nodes[0].Write("vis/flag", 1)
		nodes[0].FlushUpdates()
		<-done
		for _, tr := range tracers {
			s := tr.Snapshot()
			s.Tag = mode.tag
			snaps = append(snaps, s)
		}
	}

	ex := obs.Explain(snaps, func(loc string) bool { return loc == "vis/flag" })
	if len(ex.Breakdowns) != 2 {
		t.Fatalf("got %d breakdowns, want 2 (direct, batched)", len(ex.Breakdowns))
	}
	for _, b := range ex.Breakdowns {
		if b.Samples == 0 {
			t.Fatalf("tag %q produced no samples", b.Tag)
		}
		if b.Incomplete != 0 {
			t.Errorf("tag %q: %d incomplete samples (chain events missing)", b.Tag, b.Incomplete)
		}
		if b.MinAttribution < 0.95 {
			t.Errorf("tag %q: min attribution %.3f, want >= 0.95", b.Tag, b.MinAttribution)
		}
	}
	// The awaited flag must chain from node 0's write issue.
	for _, s := range ex.SamplesOut {
		if s.Writer != 0 || s.Reader != 1 || s.Loc != "vis/flag" {
			t.Errorf("sample identity = %+v", s)
		}
	}
}

// TestTracerEventCoverage checks the hot-path event kinds all appear in a
// traced run: issue, enqueue, flush, recv, apply, group release, await end.
func TestTracerEventCoverage(t *testing.T) {
	nodes, tracers := obsCluster(t,
		BatchConfig{Enabled: true, MaxUpdates: 4, Linger: time.Millisecond}, nil)
	done := make(chan struct{})
	go func() {
		nodes[1].AwaitCausal("flag", 1)
		close(done)
	}()
	time.Sleep(2 * time.Millisecond)
	for i := int64(1); i <= 6; i++ {
		nodes[0].Write("data", i)
	}
	nodes[0].Write("flag", 1)
	nodes[0].FlushUpdates()
	<-done

	seen := map[obs.EventType]bool{}
	for _, tr := range tracers {
		for _, e := range tr.Snapshot().Events {
			seen[e.Type] = true
		}
	}
	for _, want := range []obs.EventType{
		obs.EvWriteIssue, obs.EvEnqueue, obs.EvFlush, obs.EvApply,
		obs.EvGroupRelease, obs.EvAwaitBegin, obs.EvAwaitEnd,
	} {
		if !seen[want] {
			t.Errorf("no %v event recorded", want)
		}
	}
	if !seen[obs.EvRecv] && !seen[obs.EvRecvBatch] {
		t.Errorf("no receive event recorded")
	}
}

// TestWriteTracedSteadyStateAllocFree pins the tracer-on hot-path floor:
// with tracing enabled, a steady-state batched PRAM write still allocates
// nothing — the ring record is a few atomic stores into preallocated slots
// and the interned-location lookup is a lock-free map hit.
func TestWriteTracedSteadyStateAllocFree(t *testing.T) {
	f, err := network.New(network.Config{Nodes: 2})
	if err != nil {
		t.Fatalf("network.New: %v", err)
	}
	nodes := make([]*Node, 2)
	for i := range nodes {
		nodes[i], err = NewNode(Config{
			ID: i, N: 2, Transport: f, PRAMOnly: true,
			Batch:  BatchConfig{Enabled: true, MaxUpdates: 1 << 20, Linger: time.Hour},
			Tracer: obs.NewTracer(i, 1024),
		})
		if err != nil {
			t.Fatalf("NewNode(%d): %v", i, err)
		}
	}
	defer func() {
		f.Close()
		for _, nd := range nodes {
			nd.Close()
		}
	}()
	n := nodes[0]
	n.Write("steady", 1) // warm the cell, ring slot, and intern table
	var v int64
	allocs := testing.AllocsPerRun(500, func() {
		v++
		n.Write("steady", v)
	})
	if allocs > 0 {
		t.Errorf("traced steady-state batched PRAM Write: %.3f allocs/op, want 0", allocs)
	}
}
