package dsm

import (
	"testing"
	"time"

	"mixedmem/internal/network"
	"mixedmem/internal/transport"
)

// Allocation pins for the write hot path. These use testing.AllocsPerRun,
// which counts process-wide mallocs — the idle recvLoop goroutines of the
// peer nodes run during the measurement — so the pins below hold only
// because those loops are genuinely quiet between flushes. The documented
// floors:
//
//   - steady-state PRAM Write with the outbox on: 0 allocs. The location's
//     cell, its outbox ring slot, and the coalescing index are all warm
//     after the first write; a repeat write updates them in place.
//   - steady-state full-broadcast causal Write: 1 alloc, the per-write
//     dependency-clock snapshot (Update.TS).
//   - outbox flush: one interface boxing per destination message (the
//     Update or UpdateBatch payload moving into network.Message.Payload);
//     entry slices cycle through the update-slice pool.
//   - batch encode into a reused buffer: 0 allocs.
//   - batch decode: the decoder state, one boxing of the returned
//     UpdateBatch, and one string copy per entry location (the decoder
//     must copy out of the wire buffer, which the transport reuses); the
//     entry slice comes from the update-slice pool and is free once warm.

// allocCluster builds a quiet two-node cluster for allocation measurements.
func allocCluster(t *testing.T, pramOnly bool, batch BatchConfig) []*Node {
	t.Helper()
	f, err := network.New(network.Config{Nodes: 2})
	if err != nil {
		t.Fatalf("network.New: %v", err)
	}
	nodes := make([]*Node, 2)
	for i := range nodes {
		nodes[i], err = NewNode(Config{ID: i, N: 2, Transport: f, PRAMOnly: pramOnly, Batch: batch})
		if err != nil {
			t.Fatalf("NewNode(%d): %v", i, err)
		}
	}
	t.Cleanup(func() {
		f.Close()
		for _, nd := range nodes {
			nd.Close()
		}
	})
	return nodes
}

func TestWriteSteadyStateAllocFree(t *testing.T) {
	// A long linger and a huge threshold keep the outbox from flushing
	// during the measurement: we are pinning the enqueue/coalesce path
	// itself, not the flush (measured separately below). PRAMOnly elides
	// per-update timestamps, so a repeat write touches only warm state.
	nodes := allocCluster(t, true, BatchConfig{Enabled: true, MaxUpdates: 1 << 20, Linger: time.Hour})
	n := nodes[0]
	n.Write("steady", 1) // warm the cell and the ring slot
	var v int64
	allocs := testing.AllocsPerRun(500, func() {
		v++
		n.Write("steady", v)
	})
	if allocs > 0 {
		t.Errorf("steady-state batched PRAM Write: %.3f allocs/op, want 0", allocs)
	}
}

func TestWriteCausalSteadyStateAllocFloor(t *testing.T) {
	// Full-broadcast causal writes carry a dependency-clock snapshot
	// (Update.TS), cloned per write under the clock lock — the coalesced
	// outbox entry may outlive later clock bumps, and an in-flight batch
	// shares the slice through the simulated fabric, so the clone cannot
	// be reused in place. That snapshot is the documented floor: exactly
	// one allocation per steady-state causal write.
	nodes := allocCluster(t, false, BatchConfig{Enabled: true, MaxUpdates: 1 << 20, Linger: time.Hour})
	n := nodes[0]
	n.Write("steady", 1)
	var v int64
	allocs := testing.AllocsPerRun(500, func() {
		v++
		n.Write("steady", v)
	})
	if allocs > 1 {
		t.Errorf("steady-state batched causal Write: %.3f allocs/op, want <= 1 (the TS clock snapshot)", allocs)
	}
}

func TestOutboxFlushAllocFloor(t *testing.T) {
	nodes := allocCluster(t, true, BatchConfig{Enabled: true, MaxUpdates: 1 << 20, Linger: time.Hour})
	n := nodes[0]
	// Warm everything: cells, ring slots, the pooled update slice, and the
	// receiver's apply path for both locations.
	n.Write("a", 1)
	n.Write("b", 1)
	n.FlushUpdates()
	// Wait for each flush to be applied before the next one: the pooled
	// entry slice is recycled by the receiver's applier, and the pin is
	// about the steady-state cycle, not a transient pool miss while a
	// batch is in flight.
	min := make([]uint64, 2)
	min[0] = n.SentCounts()[1]
	nodes[1].WaitReceived(min)
	var v int64
	allocs := testing.AllocsPerRun(200, func() {
		v++
		n.Write("a", v)
		n.Write("b", v)
		n.FlushUpdates()
		min[0] += 2
		nodes[1].WaitReceived(min)
	})
	// Floor: one UpdateBatch boxing for the single remote destination; the
	// entry slice cycles through the update-slice pool (the receiver's
	// applier recycles it). The applier runs concurrently and its
	// occasional amortized growth lands in the same process-wide counter,
	// so allow a fraction above the floor rather than pinning exactly.
	const floor = 1.0
	if allocs > floor+0.5 {
		t.Errorf("two-write flush: %.3f allocs/op, want <= %.1f (one payload boxing per destination message)", allocs, floor+0.5)
	}
}

func TestBatchEncodeAllocFree(t *testing.T) {
	b := UpdateBatch{From: 1, FirstSeq: 1, Count: 4, Updates: []Update{
		{From: 1, Seq: 1, Op: OpSet, Loc: "alpha", Value: 10},
		{From: 1, Seq: 2, Op: OpSet, Loc: "beta", Value: 20},
		{From: 1, Seq: 3, Op: OpAdd, Loc: "gamma", Value: 30},
		{From: 1, Seq: 4, Op: OpSet, Loc: "delta", Value: 40},
	}}
	var payload any = b // box once, outside the measured region
	buf := make([]byte, 0, 1024)
	allocs := testing.AllocsPerRun(500, func() {
		var err error
		buf, err = batchCodec{}.Encode(buf[:0], payload)
		if err != nil {
			t.Fatalf("Encode: %v", err)
		}
	})
	if allocs > 0 {
		t.Errorf("batch encode into reused buffer: %.3f allocs/op, want 0", allocs)
	}
}

func TestBatchDecodeAllocFloor(t *testing.T) {
	b := UpdateBatch{From: 1, FirstSeq: 1, Count: 4, Updates: []Update{
		{From: 1, Seq: 1, Op: OpSet, Loc: "alpha", Value: 10},
		{From: 1, Seq: 2, Op: OpSet, Loc: "beta", Value: 20},
		{From: 1, Seq: 3, Op: OpAdd, Loc: "gamma", Value: 30},
		{From: 1, Seq: 4, Op: OpSet, Loc: "delta", Value: 40},
	}}
	wire, err := batchCodec{}.Encode(nil, b)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	// Warm the update-slice pool.
	got, err := batchCodec{}.Decode(wire)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	putUpdateSlice(got.(UpdateBatch).Updates)
	allocs := testing.AllocsPerRun(500, func() {
		got, err := batchCodec{}.Decode(wire)
		if err != nil {
			t.Fatalf("Decode: %v", err)
		}
		putUpdateSlice(got.(UpdateBatch).Updates)
	})
	// Floor: the decoder state (one *Decoder), 1 boxing of the returned
	// UpdateBatch, and 4 location string copies (one per entry; the
	// decoder must copy out of the wire buffer, which the caller reuses).
	const floor = 6.0
	if allocs > floor {
		t.Errorf("4-entry batch decode: %.3f allocs/op, want <= %.1f (decoder + result boxing + one Loc copy per entry)", allocs, floor)
	}
}

// TestPooledEncodeBufferAllocFree pins the transport-level encode entry
// point the tcp sender uses: EncodePayload into a warm pooled buffer.
func TestPooledEncodeBufferAllocFree(t *testing.T) {
	u := Update{From: 0, Seq: 9, Op: OpSet, Loc: "loc", Value: 7}
	var payload any = u
	// Warm the pool with a buffer big enough for the frame.
	transport.PutBuf(make([]byte, 0, 1024))
	allocs := testing.AllocsPerRun(500, func() {
		buf, err := transport.EncodePayload(transport.GetBuf(), KindUpdate, payload)
		if err != nil {
			t.Fatalf("EncodePayload: %v", err)
		}
		transport.PutBuf(buf)
	})
	if allocs > 0 {
		t.Errorf("EncodePayload into pooled buffer: %.3f allocs/op, want 0", allocs)
	}
}
