package dsm

import (
	"testing"
	"time"

	"mixedmem/internal/network"
	"mixedmem/internal/transport"
	"mixedmem/internal/vclock"
)

// batchedCluster builds a fabric and n nodes with the given batch config.
func batchedCluster(t *testing.T, n int, batch BatchConfig) ([]*Node, *network.Fabric) {
	t.Helper()
	f, err := network.New(network.Config{Nodes: n})
	if err != nil {
		t.Fatalf("network.New: %v", err)
	}
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		nodes[i], err = NewNode(Config{ID: i, N: n, Transport: f, Batch: batch})
		if err != nil {
			t.Fatalf("NewNode(%d): %v", i, err)
		}
	}
	t.Cleanup(func() {
		f.Close()
		for _, nd := range nodes {
			nd.Close()
		}
	})
	return nodes, f
}

func TestBatchedPropagationLinger(t *testing.T) {
	// No explicit flush and thresholds far out of reach: only the linger
	// timer can move the updates.
	nodes, _ := batchedCluster(t, 3, BatchConfig{
		Enabled: true, MaxUpdates: 1 << 20, MaxBytes: 1 << 30,
		Linger: time.Millisecond,
	})
	nodes[0].Write("x", 42)
	eventually(t, func() bool { return nodes[2].ReadPRAM("x") == 42 },
		"linger flush never propagated the update")
	eventually(t, func() bool { return nodes[2].ReadCausal("x") == 42 },
		"causal view never applied the lingered update")
}

func TestBatchCoalescingLastWriterWins(t *testing.T) {
	nodes, f := batchedCluster(t, 2, BatchConfig{
		Enabled: true, MaxUpdates: 1 << 20, MaxBytes: 1 << 30,
		Linger: time.Hour, // flush only explicitly
	})
	const writes = 10
	for i := 1; i <= writes; i++ {
		nodes[0].Write("x", int64(i))
	}
	nodes[0].FlushUpdates()
	// Coalescing must not hide any update from the counting protocols.
	nodes[1].WaitReceived([]uint64{writes, 0})
	if got := nodes[1].ReadPRAM("x"); got != writes {
		t.Fatalf("PRAM x = %d, want %d", got, writes)
	}
	nodes[1].WaitCausalApplied([]uint64{writes, 0})
	if got := nodes[1].ReadCausal("x"); got != writes {
		t.Fatalf("causal x = %d, want %d", got, writes)
	}
	// Ten same-location sets coalesce into one single-entry batch frame.
	s := f.Stats()
	if s.PerKind[KindUpdateBatch] != 1 {
		t.Fatalf("batch frames = %d, want 1 (stats %v)", s.PerKind[KindUpdateBatch], s.PerKind)
	}
	if s.PerKind[KindUpdate] != 0 {
		t.Fatalf("plain update frames = %d, want 0", s.PerKind[KindUpdate])
	}
	if s.PerKindBytes[KindUpdateBatch] == 0 {
		t.Fatal("per-kind byte accounting missing for batches")
	}
}

func TestBatchAddsDoNotCoalesce(t *testing.T) {
	nodes, _ := batchedCluster(t, 2, BatchConfig{
		Enabled: true, MaxUpdates: 1 << 20, MaxBytes: 1 << 30, Linger: time.Hour,
	})
	// set, add, set, add on one location: the adds must keep their position
	// relative to the sets so the receiver's replay yields the same value.
	nodes[0].Write("c", 100)
	nodes[0].Add("c", 5)
	nodes[0].Write("c", 200)
	nodes[0].Add("c", 7)
	nodes[0].FlushUpdates()
	nodes[1].WaitReceived([]uint64{4, 0})
	if got := nodes[1].ReadPRAM("c"); got != 207 {
		t.Fatalf("c = %d, want 207", got)
	}
	if got := nodes[0].ReadPRAM("c"); got != 207 {
		t.Fatalf("writer's own c = %d, want 207", got)
	}
}

func TestBatchSingleUpdateUsesPlainFrame(t *testing.T) {
	nodes, f := batchedCluster(t, 2, BatchConfig{
		Enabled: true, MaxUpdates: 1 << 20, MaxBytes: 1 << 30, Linger: time.Hour,
	})
	nodes[0].Write("x", 1)
	nodes[0].FlushUpdates()
	nodes[1].WaitReceived([]uint64{1, 0})
	s := f.Stats()
	if s.PerKind[KindUpdate] != 1 || s.PerKind[KindUpdateBatch] != 0 {
		t.Fatalf("frames = update:%d batch:%d, want 1/0",
			s.PerKind[KindUpdate], s.PerKind[KindUpdateBatch])
	}
}

func TestBatchMaxUpdatesThresholdFlush(t *testing.T) {
	nodes, f := batchedCluster(t, 2, BatchConfig{
		Enabled: true, MaxUpdates: 4, MaxBytes: 1 << 30, Linger: time.Hour,
	})
	locs := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	for i, loc := range locs {
		nodes[0].Write(loc, int64(i+1))
	}
	// Eight distinct locations with MaxUpdates 4 flush twice on their own.
	nodes[1].WaitReceived([]uint64{8, 0})
	s := f.Stats()
	if s.PerKind[KindUpdateBatch] != 2 {
		t.Fatalf("batch frames = %d, want 2", s.PerKind[KindUpdateBatch])
	}
	for i, loc := range locs {
		if got := nodes[1].ReadPRAM(loc); got != int64(i+1) {
			t.Fatalf("%s = %d, want %d", loc, got, i+1)
		}
	}
}

func TestBatchAwaitFlushesHandshake(t *testing.T) {
	// Two processes hand values to each other and block in Await without
	// ever touching a lock or barrier: the await-registration flush (plus
	// the receiver side's apply) must complete the handshake even with the
	// linger timer effectively off.
	nodes, _ := batchedCluster(t, 2, BatchConfig{
		Enabled: true, MaxUpdates: 1 << 20, MaxBytes: 1 << 30, Linger: time.Hour,
	})
	done := make(chan struct{})
	go func() { // node 1: respond to the request, then finish the exchange
		nodes[1].AwaitPRAM("req", 1)
		nodes[1].Write("resp", 2)
		nodes[1].AwaitPRAM("ack", 3) // registering flushes "resp"
		nodes[1].Write("fin", 4)
		nodes[1].FlushUpdates() // the chain's last write has no await after it
	}()
	go func() { // node 0: initiate, each await flushing the prior write
		nodes[0].Write("req", 1)
		nodes[0].AwaitPRAM("resp", 2) // registering flushes "req"
		nodes[0].Write("ack", 3)
		nodes[0].AwaitPRAM("fin", 4) // registering flushes "ack"
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("handshake deadlocked: await registration did not flush the outbox")
	}
}

func TestBatchCausalGroupAtomicity(t *testing.T) {
	// Node 0 writes a batch; node 1 causally reads a late value and must
	// then see every earlier value of the same batch (they were applied
	// together), on both views.
	nodes, _ := batchedCluster(t, 3, BatchConfig{
		Enabled: true, MaxUpdates: 1 << 20, MaxBytes: 1 << 30, Linger: time.Hour,
	})
	nodes[0].Write("a", 1)
	nodes[0].Write("b", 2)
	nodes[0].Write("c", 3)
	nodes[0].FlushUpdates()
	nodes[1].WaitCausalApplied([]uint64{3, 0, 0})
	if got := nodes[1].ReadCausal("a"); got != 1 {
		t.Fatalf("a = %d, want 1", got)
	}
	if got := nodes[1].ReadCausal("c"); got != 3 {
		t.Fatalf("c = %d, want 3", got)
	}
}

func TestBatchCausalChainAcrossSenders(t *testing.T) {
	// A classic causal chain with batches: node 0 publishes a batch, node 1
	// observes it and publishes its own batch, node 2 must apply them in
	// causal order even if node 1's batch arrives first.
	f, err := network.New(network.Config{Nodes: 3})
	if err != nil {
		t.Fatalf("network.New: %v", err)
	}
	batch := BatchConfig{Enabled: true, MaxUpdates: 1 << 20, MaxBytes: 1 << 30, Linger: time.Hour}
	nodes := make([]*Node, 3)
	for i := range nodes {
		nodes[i], err = NewNode(Config{ID: i, N: 3, Transport: f, Batch: batch})
		if err != nil {
			t.Fatalf("NewNode(%d): %v", i, err)
		}
	}
	defer func() {
		f.Close()
		for _, nd := range nodes {
			nd.Close()
		}
	}()

	// Delay node 0's channel to node 2 so node 1's dependent batch gets
	// there first.
	if err := f.Hold(0, 2); err != nil {
		t.Fatal(err)
	}
	nodes[0].Write("x", 1)
	nodes[0].Write("y", 2)
	nodes[0].FlushUpdates()
	nodes[1].WaitCausalApplied([]uint64{2, 0, 0})
	nodes[1].Write("z", 3) // causally after node 0's batch
	nodes[1].FlushUpdates()
	// Node 2 has z pending but must not causally apply it before x,y.
	eventually(t, func() bool { return f.Pending(1, 2) == 0 },
		"node 1's batch never reached node 2")
	time.Sleep(10 * time.Millisecond)
	if got := nodes[2].causalSnapshotValue("z"); got != 0 {
		t.Fatalf("z causally applied before its dependencies: %d", got)
	}
	if err := f.Release(0, 2); err != nil {
		t.Fatal(err)
	}
	nodes[2].WaitCausalApplied([]uint64{2, 1, 0})
	if got := nodes[2].ReadCausal("z"); got != 3 {
		t.Fatalf("z = %d, want 3", got)
	}
	if got := nodes[2].ReadCausal("x"); got != 1 {
		t.Fatalf("x = %d, want 1", got)
	}
}

// causalSnapshotValue reads the causal view without blocking on fences or
// invalidations — a test probe for "has this been causally applied yet".
func (n *Node) causalSnapshotValue(loc string) int64 {
	if c := n.shard(loc).lookup(loc); c != nil {
		return c.causal.Load()
	}
	return 0
}

func TestBatchNoCoalesceKeepsEveryEntry(t *testing.T) {
	nodes, f := batchedCluster(t, 2, BatchConfig{
		Enabled: true, MaxUpdates: 1 << 20, MaxBytes: 1 << 30, Linger: time.Hour,
		NoCoalesce: true,
	})
	for i := 1; i <= 5; i++ {
		nodes[0].Write("x", int64(i))
	}
	nodes[0].FlushUpdates()
	nodes[1].WaitReceived([]uint64{5, 0})
	if got := nodes[1].ReadPRAM("x"); got != 5 {
		t.Fatalf("x = %d, want 5", got)
	}
	s := f.Stats()
	// One frame still, but it carries all five entries: bytes reflect that.
	if s.PerKind[KindUpdateBatch] != 1 {
		t.Fatalf("batch frames = %d, want 1", s.PerKind[KindUpdateBatch])
	}
	one := Update{From: 0, Seq: 1, Op: OpSet, Loc: "x", Value: 1, TS: vclock.New(2)}
	if s.BytesSent < uint64(4*one.encodedSize()) {
		t.Fatalf("bytes = %d, too small for 5 uncoalesced entries", s.BytesSent)
	}
}

func TestBatchScopedPlacement(t *testing.T) {
	// Batching composes with scoped placement: per-destination outboxes see
	// different update streams with per-sender sequence holes.
	f, err := network.New(network.Config{Nodes: 3})
	if err != nil {
		t.Fatalf("network.New: %v", err)
	}
	scope := &ScopeMap{Readers: map[string][]int{
		"pair": {1},
		"all":  {1, 2},
	}}
	batch := BatchConfig{Enabled: true, MaxUpdates: 1 << 20, MaxBytes: 1 << 30, Linger: time.Hour}
	nodes := make([]*Node, 3)
	for i := range nodes {
		nodes[i], err = NewNode(Config{
			ID: i, N: 3, Transport: f, PRAMOnly: true, Scope: scope, Batch: batch,
		})
		if err != nil {
			t.Fatalf("NewNode(%d): %v", i, err)
		}
	}
	defer func() {
		f.Close()
		for _, nd := range nodes {
			nd.Close()
		}
	}()
	nodes[0].Write("pair", 5) // seq 1 -> node 1 only
	nodes[0].Write("all", 7)  // seq 2 -> both
	nodes[0].Write("all", 8)  // seq 3 -> both, coalesces with seq 2
	nodes[0].FlushUpdates()
	nodes[1].WaitReceived([]uint64{3, 0, 0})
	nodes[2].WaitReceived([]uint64{2, 0, 0})
	if got := nodes[1].ReadPRAM("pair"); got != 5 {
		t.Fatalf("n1 pair = %d, want 5", got)
	}
	if got := nodes[2].ReadPRAM("all"); got != 8 {
		t.Fatalf("n2 all = %d, want 8", got)
	}
	if got := nodes[2].ReadPRAM("pair"); got != 0 {
		t.Fatalf("scoped update leaked to node 2: %d", got)
	}
}

func TestBatchScopedCausalDepsCapturedAtEnqueue(t *testing.T) {
	// Regression: a parked causal batch must ship the address-matrix
	// snapshot its writes were written under, never one absorbed later.
	// Node 0's write W to "a" reaches node 2 but stays parked for node 1;
	// node 2 (having causally applied W) writes Y to "b", which node 0
	// causally applies — merging a matrix that records W at node 1. If node
	// 0's next write X then ships in one batch with W under a flush-time
	// snapshot, that batch waits on Y at node 1 while Y waits on W inside
	// the batch: a permanent circular wait in the causal view.
	f, err := network.New(network.Config{Nodes: 3})
	if err != nil {
		t.Fatalf("network.New: %v", err)
	}
	scope := &ScopeMap{
		Readers: map[string][]int{
			"a": {1, 2}, "c": {1, 2}, "b": {0, 1},
		},
		CausalReaders: map[string][]int{
			"a": {1, 2}, "c": {1, 2}, "b": {0, 1},
		},
	}
	batch := BatchConfig{Enabled: true, MaxUpdates: 1 << 20, MaxBytes: 1 << 30, Linger: time.Hour}
	nodes := make([]*Node, 3)
	for i := range nodes {
		nodes[i], err = NewNode(Config{ID: i, N: 3, Transport: f, Scope: scope, Batch: batch})
		if err != nil {
			t.Fatalf("NewNode(%d): %v", i, err)
		}
	}
	defer func() {
		f.Close()
		for _, nd := range nodes {
			nd.Close()
		}
	}()

	nodes[0].Write("a", 1) // W: parked for both causal readers
	// Relay W to node 2 only; node 1's copy stays in the outbox.
	ob2 := nodes[0].outbox[2]
	nodes[0].outboxMu.Lock()
	nodes[0].flushDestLocked(2, ob2)
	nodes[0].outboxMu.Unlock()
	nodes[2].WaitCausalApplied([]uint64{1, 0, 0})
	nodes[2].Write("b", 2) // Y: causally after W
	nodes[2].FlushUpdates()
	// Wait for node 0 to causally apply Y (merging node 2's matrix) with a
	// probe, not WaitCausalApplied — the latter flushes the outbox and
	// would dissolve the parked batch this test is about.
	eventually(t, func() bool { return nodes[0].causalSnapshotValue("b") == 2 },
		"node 0 never causally applied Y")
	nodes[0].Write("c", 3) // X: must not share a batch (or snapshot) with W
	nodes[0].FlushUpdates()

	done := make(chan struct{})
	go func() {
		nodes[1].WaitCausalApplied([]uint64{2, 0, 1})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("causal view deadlocked: batch shipped a flush-time deps snapshot")
	}
	for loc, want := range map[string]int64{"a": 1, "b": 2, "c": 3} {
		if got := nodes[1].ReadCausal(loc); got != want {
			t.Fatalf("%s = %d, want %d", loc, got, want)
		}
	}
}

func TestScopedCausalMalformedDepsDoesNotStall(t *testing.T) {
	// A scoped-causal update (or batch) whose dependency matrix has the
	// wrong dimension must stay out of the causal view but still count as
	// causally settled, so barriers and WaitCausalApplied cannot hang on a
	// misconfigured peer — and the fault must be visible in Stats.
	f, err := network.New(network.Config{Nodes: 2})
	if err != nil {
		t.Fatalf("network.New: %v", err)
	}
	scope := &ScopeMap{
		Readers:       map[string][]int{"a": {0, 1}},
		CausalReaders: map[string][]int{"a": {0, 1}},
	}
	nodes := make([]*Node, 2)
	for i := range nodes {
		nodes[i], err = NewNode(Config{ID: i, N: 2, Transport: f, Scope: scope})
		if err != nil {
			t.Fatalf("NewNode(%d): %v", i, err)
		}
	}
	defer func() {
		f.Close()
		for _, nd := range nodes {
			nd.Close()
		}
	}()

	bad := Update{From: 0, Seq: 1, Op: OpSet, Loc: "a", Value: 7,
		Deps: vclock.NewMatrix(5)} // wrong dimension for a 2-node system
	if err := f.Send(network.Message{
		From: 0, To: 1, Kind: KindUpdate, Payload: bad, Size: bad.encodedSize(),
	}); err != nil {
		t.Fatal(err)
	}
	badBatch := UpdateBatch{
		From: 0, FirstSeq: 2, Count: 2, PrevSeq: 1, Deps: vclock.NewMatrix(5),
		Updates: []Update{
			{From: 0, Seq: 2, Op: OpSet, Loc: "a", Value: 8},
			{From: 0, Seq: 3, Op: OpSet, Loc: "a", Value: 9},
		},
	}
	if err := f.Send(network.Message{
		From: 0, To: 1, Kind: KindUpdateBatch, Payload: badBatch, Size: badBatch.encodedSize(),
	}); err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	go func() {
		nodes[1].WaitCausalApplied([]uint64{3, 0})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("WaitCausalApplied hung on malformed dependency matrices")
	}
	// The PRAM view applied the values in receive order; the causal view
	// never saw them, and no observation fence was raised that a causal
	// read could stall on.
	if got := nodes[1].ReadPRAM("a"); got != 9 {
		t.Fatalf("PRAM a = %d, want 9", got)
	}
	if got := nodes[1].causalSnapshotValue("a"); got != 0 {
		t.Fatalf("malformed update reached the causal view: a = %d", got)
	}
	if got := nodes[1].ReadCausal("a"); got != 0 {
		t.Fatalf("causal read stalled or saw a malformed update: a = %d", got)
	}
	if got := nodes[1].Stats().MalformedUpdates; got != 3 {
		t.Fatalf("MalformedUpdates = %d, want 3", got)
	}
}

func TestEncodedSizeMatchesCodec(t *testing.T) {
	// The latency model's wire-size accounting must track the real codecs
	// byte for byte, including the always-present depsN length prefix.
	deps := vclock.NewMatrix(3)
	deps.Set(1, 0, 4)
	ts := vclock.New(3)
	ts[0], ts[2] = 2, 5
	updates := []Update{
		{From: 1, Seq: 3, Op: OpSet, Loc: "x[2]", Value: -9},
		{From: 1, Seq: 3, Op: OpSet, Loc: "x[2]", Value: -9, TS: ts},
		{From: 1, Seq: 3, Op: OpAdd, Loc: "", Value: 1, PrevSeq: 2, Deps: deps},
	}
	for i, u := range updates {
		enc, err := transport.EncodePayload(nil, KindUpdate, u)
		if err != nil {
			t.Fatalf("update %d: encode: %v", i, err)
		}
		if got, want := u.encodedSize(), len(enc); got != want {
			t.Fatalf("update %d: encodedSize = %d, codec writes %d bytes", i, got, want)
		}
	}
	batches := []UpdateBatch{
		{From: 1, FirstSeq: 3, Count: 2, Updates: updates[:2]},
		{From: 1, FirstSeq: 3, Count: 2, PrevSeq: 2, Deps: deps,
			Updates: []Update{{From: 1, Seq: 3, Op: OpSet, Loc: "y", Value: 1}}},
	}
	for i, b := range batches {
		enc, err := transport.EncodePayload(nil, KindUpdateBatch, b)
		if err != nil {
			t.Fatalf("batch %d: encode: %v", i, err)
		}
		if got, want := b.encodedSize(), len(enc); got != want {
			t.Fatalf("batch %d: encodedSize = %d, codec writes %d bytes", i, got, want)
		}
	}
}

func TestBatchConfigValidation(t *testing.T) {
	c := BatchConfig{Enabled: true}.WithDefaults()
	if c.MaxUpdates <= 0 || c.MaxBytes <= 0 || c.Linger <= 0 {
		t.Fatalf("defaults not filled: %+v", c)
	}
}

// --- KindUpdateBatch codec ---

func TestBatchCodecRoundTrip(t *testing.T) {
	ts1 := vclock.New(3)
	ts1[0], ts1[2] = 4, 17
	ts2 := vclock.New(3)
	ts2[0], ts2[2] = 6, 17
	b := UpdateBatch{
		From: 2, FirstSeq: 4, Count: 3,
		Updates: []Update{
			{From: 2, Seq: 4, Op: OpSet, Loc: "x[3]", Value: -12345, TS: ts1},
			{From: 2, Seq: 6, Op: OpAdd, Loc: "", Value: 7, TS: ts2},
		},
	}
	enc, err := transport.EncodePayload(nil, KindUpdateBatch, b)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	dec, err := transport.DecodePayload(KindUpdateBatch, enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	got, ok := dec.(UpdateBatch)
	if !ok {
		t.Fatalf("decoded %T, want UpdateBatch", dec)
	}
	if got.From != 2 || got.FirstSeq != 4 || got.Count != 3 || len(got.Updates) != 2 {
		t.Fatalf("header changed: %+v", got)
	}
	for i, u := range got.Updates {
		want := b.Updates[i]
		if u.From != want.From || u.Seq != want.Seq || u.Op != want.Op ||
			u.Loc != want.Loc || u.Value != want.Value {
			t.Fatalf("entry %d changed: %+v -> %+v", i, want, u)
		}
	}
	if got.Updates[1].TS.Len() != 3 || got.Updates[1].TS[0] != 6 {
		t.Fatalf("entry timestamp changed: %v", got.Updates[1].TS)
	}
}

func TestBatchCodecEmptyAndNilTimestamps(t *testing.T) {
	b := UpdateBatch{From: 0, FirstSeq: 1, Count: 2, Updates: []Update{
		{From: 0, Seq: 2, Op: OpSet, Loc: "y", Value: 9},
	}}
	enc, err := transport.EncodePayload(nil, KindUpdateBatch, b)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	dec, err := transport.DecodePayload(KindUpdateBatch, enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	got := dec.(UpdateBatch)
	if got.Updates[0].TS != nil {
		t.Fatalf("nil timestamp round-tripped to %v", got.Updates[0].TS)
	}
}

func TestBatchCodecMalformed(t *testing.T) {
	if _, err := transport.EncodePayload(nil, KindUpdateBatch, "nope"); err == nil {
		t.Fatal("encoding a non-batch payload succeeded")
	}
	// Truncated header.
	if _, err := transport.DecodePayload(KindUpdateBatch, []byte{1, 2, 3}); err == nil {
		t.Fatal("decoding a truncated batch header succeeded")
	}
	// A huge claimed entry count must fail fast, not allocate.
	var huge []byte
	huge = transport.AppendUint32(huge, 0)          // From
	huge = transport.AppendUint64(huge, 1)          // FirstSeq
	huge = transport.AppendUint64(huge, 1<<40)      // Count
	huge = transport.AppendUint32(huge, 0)          // depsN
	huge = transport.AppendUint32(huge, 0xFFFFFFFF) // nEntries
	if _, err := transport.DecodePayload(KindUpdateBatch, huge); err == nil {
		t.Fatal("decoding a batch with absurd entry count succeeded")
	}
	// A huge claimed dependency-matrix dimension must fail fast too: the
	// quadratic allocation it implies is exactly what the bound prevents.
	var badDeps []byte
	badDeps = transport.AppendUint32(badDeps, 0)          // From
	badDeps = transport.AppendUint64(badDeps, 1)          // FirstSeq
	badDeps = transport.AppendUint64(badDeps, 1)          // Count
	badDeps = transport.AppendUint32(badDeps, 0xFFFFFFF0) // depsN
	if _, err := transport.DecodePayload(KindUpdateBatch, badDeps); err == nil {
		t.Fatal("decoding a batch with absurd dependency dimension succeeded")
	}
	// A plausible dimension with no matrix bytes behind it.
	badDeps = badDeps[:len(badDeps)-4]
	badDeps = transport.AppendUint32(badDeps, 3) // depsN, but no matrix follows
	if _, err := transport.DecodePayload(KindUpdateBatch, badDeps); err == nil {
		t.Fatal("decoding a truncated dependency matrix succeeded")
	}
	// A huge claimed timestamp length inside an entry must fail fast too.
	var badTS []byte
	badTS = transport.AppendUint32(badTS, 0) // From
	badTS = transport.AppendUint64(badTS, 1) // FirstSeq
	badTS = transport.AppendUint64(badTS, 1) // Count
	badTS = transport.AppendUint32(badTS, 0) // depsN
	badTS = transport.AppendUint32(badTS, 1) // nEntries
	badTS = transport.AppendUint64(badTS, 1) // Seq
	badTS = append(badTS, byte(OpSet))       // Op
	badTS = transport.AppendString(badTS, "x")
	badTS = transport.AppendUint64(badTS, 5)          // Value
	badTS = transport.AppendUint32(badTS, 0x7FFFFFFF) // tsLen
	if _, err := transport.DecodePayload(KindUpdateBatch, badTS); err == nil {
		t.Fatal("decoding a batch with absurd timestamp length succeeded")
	}
	// An entry truncated mid-way.
	var cut []byte
	cut = transport.AppendUint32(cut, 0)
	cut = transport.AppendUint64(cut, 1)
	cut = transport.AppendUint64(cut, 1)
	cut = transport.AppendUint32(cut, 0)
	cut = transport.AppendUint32(cut, 1)
	cut = transport.AppendUint64(cut, 1)
	cut = append(cut, byte(OpSet))
	if _, err := transport.DecodePayload(KindUpdateBatch, cut); err == nil {
		t.Fatal("decoding a mid-entry truncation succeeded")
	}
}

// --- scoped-write allocation satellite ---

// TestScopedWriteAllocs pins the allocation cost of the scoped-write fast
// path: destination lists are compiled once at construction, so a write must
// not allocate per-write routing state. The bound leaves room for the
// unavoidable per-op allocations (payload boxing, fabric queue node,
// write-log growth) that a per-write map or slice would push well past.
func TestScopedWriteAllocs(t *testing.T) {
	f, err := network.New(network.Config{Nodes: 4})
	if err != nil {
		t.Fatalf("network.New: %v", err)
	}
	scope := &ScopeMap{Readers: map[string][]int{"hot": {1, 2, 3}}}
	nodes := make([]*Node, 4)
	for i := range nodes {
		nodes[i], err = NewNode(Config{ID: i, N: 4, Transport: f, PRAMOnly: true, Scope: scope})
		if err != nil {
			t.Fatalf("NewNode(%d): %v", i, err)
		}
	}
	defer func() {
		f.Close()
		for _, nd := range nodes {
			nd.Close()
		}
	}()
	v := int64(0)
	allocs := testing.AllocsPerRun(200, func() {
		v++
		nodes[0].Write("hot", v)
	})
	// Three sends, each boxing the payload into a Message and pushing a
	// queue element, plus amortized write-log growth. A per-write routing
	// allocation would push past this — keep the bound tight enough to
	// catch its return.
	if allocs > 8 {
		t.Fatalf("scoped write allocates %.1f objects/op, want <= 8", allocs)
	}
}

func BenchmarkScopedCausalWrite(b *testing.B) {
	f, _ := network.New(network.Config{Nodes: 4})
	scope := &ScopeMap{
		Readers:       map[string][]int{"hot": {1, 2, 3}},
		CausalReaders: map[string][]int{"hot": {1, 2, 3}},
	}
	nodes := make([]*Node, 4)
	for i := range nodes {
		nodes[i], _ = NewNode(Config{ID: i, N: 4, Transport: f, Scope: scope})
	}
	defer func() {
		f.Close()
		for _, nd := range nodes {
			nd.Close()
		}
	}()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nodes[0].Write("hot", int64(i+1))
	}
}

func BenchmarkScopedWrite(b *testing.B) {
	f, _ := network.New(network.Config{Nodes: 4})
	scope := &ScopeMap{Readers: map[string][]int{"hot": {1, 2, 3}}}
	nodes := make([]*Node, 4)
	for i := range nodes {
		nodes[i], _ = NewNode(Config{ID: i, N: 4, Transport: f, PRAMOnly: true, Scope: scope})
	}
	defer func() {
		f.Close()
		for _, nd := range nodes {
			nd.Close()
		}
	}()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nodes[0].Write("hot", int64(i+1))
	}
}

func BenchmarkBatchedWrite(b *testing.B) {
	f, _ := network.New(network.Config{Nodes: 4})
	batch := BatchConfig{Enabled: true}
	nodes := make([]*Node, 4)
	for i := range nodes {
		nodes[i], _ = NewNode(Config{ID: i, N: 4, Transport: f, Batch: batch})
	}
	defer func() {
		f.Close()
		for _, nd := range nodes {
			nd.Close()
		}
	}()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nodes[0].Write("hot", int64(i+1))
	}
}
