package dsm

import (
	"testing"
	"time"

	"mixedmem/internal/network"
)

// newScopedTrio builds a 3-node system with the given scope, batching
// optional. Callers get the fabric for Hold/Release schedules.
func newScopedTrio(t *testing.T, scope *ScopeMap, batch BatchConfig) (*network.Fabric, []*Node, func()) {
	t.Helper()
	f, err := network.New(network.Config{Nodes: 3})
	if err != nil {
		t.Fatalf("network.New: %v", err)
	}
	nodes := make([]*Node, 3)
	for i := range nodes {
		nodes[i], err = NewNode(Config{ID: i, N: 3, Transport: f, Scope: scope, Batch: batch})
		if err != nil {
			t.Fatalf("NewNode(%d): %v", i, err)
		}
	}
	return f, nodes, func() {
		f.Close()
		for _, nd := range nodes {
			nd.Close()
		}
	}
}

// TestScopedCausalTransitiveDelivery is the partial-replication transitivity
// case that vector clocks get wrong: node 0 writes x (causal readers 1 and
// 2), node 1 causally observes x and writes y (causal reader 2 only). Node
// 2's copy of x is held back, so y arrives first — the causal view must not
// apply y until x lands, even though y's sender never wrote x.
func TestScopedCausalTransitiveDelivery(t *testing.T) {
	scope := &ScopeMap{
		Readers:       map[string][]int{"x": {1, 2}, "y": {2}},
		CausalReaders: map[string][]int{"x": {1, 2}, "y": {2}},
	}
	f, nodes, cleanup := newScopedTrio(t, scope, BatchConfig{})
	defer cleanup()

	if err := f.Hold(0, 2); err != nil {
		t.Fatalf("hold: %v", err)
	}
	nodes[0].Write("x", 1)
	nodes[1].AwaitCausal("x", 1)
	nodes[1].Write("y", 1)

	// y is in flight to node 2; x is held. The PRAM view applies y in
	// receive order, but the causal view must park it.
	eventually(t, func() bool { return nodes[2].ReadPRAM("y") == 1 }, "n2 never received y")
	if got := nodes[2].Snapshot(true)["x"]; got != 0 {
		t.Fatalf("x visible causally before release: %d", got)
	}
	if got := nodes[2].Snapshot(true)["y"]; got != 0 {
		t.Fatalf("y applied causally before its dependency x: %d", got)
	}

	if err := f.Release(0, 2); err != nil {
		t.Fatalf("release: %v", err)
	}
	nodes[2].AwaitCausal("y", 1)
	// AwaitCausal returning means every causal predecessor of y — including
	// x, known only transitively through node 1 — is applied.
	if got := nodes[2].Snapshot(true)["x"]; got != 1 {
		t.Fatalf("causal x = %d after awaiting y, want 1", got)
	}
}

// TestScopedCausalSequenceHoles drives per-sender sequence holes: node 0
// alternates writes to locations scoped to different single readers, so each
// destination sees a gappy subsequence of node 0's sequence numbers and must
// still apply every addressed update.
func TestScopedCausalSequenceHoles(t *testing.T) {
	scope := &ScopeMap{
		Readers:       map[string][]int{"a": {1}, "b": {2}},
		CausalReaders: map[string][]int{"a": {1}, "b": {2}},
	}
	_, nodes, cleanup := newScopedTrio(t, scope, BatchConfig{})
	defer cleanup()

	for v := int64(1); v <= 5; v++ {
		nodes[0].Write("a", v) // odd sequence numbers for node 1
		nodes[0].Write("b", v) // even sequence numbers for node 2
	}
	nodes[1].AwaitCausal("a", 5)
	nodes[2].AwaitCausal("b", 5)
	if got := nodes[2].ReadPRAM("a"); got != 0 {
		t.Fatalf("a leaked to node 2: %d", got)
	}
	// Each destination's causal obligation count is exactly its addressed
	// updates, not the sender's sequence ceiling.
	done := make(chan struct{})
	go func() {
		nodes[1].WaitCausalApplied([]uint64{5, 0, 0})
		nodes[2].WaitCausalApplied([]uint64{5, 0, 0})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("WaitCausalApplied hung on per-sender sequence holes")
	}
}

// TestScopedMixedElidedAndCausal mixes both registration kinds at one
// destination: node 1 is a causal reader of c and a plain (PRAM) reader of
// p. Elided updates must not disturb the causal chain that threads through
// them.
func TestScopedMixedElidedAndCausal(t *testing.T) {
	scope := &ScopeMap{
		Readers:       map[string][]int{"c": {1}, "p": {1}},
		CausalReaders: map[string][]int{"c": {1}},
	}
	_, nodes, cleanup := newScopedTrio(t, scope, BatchConfig{})
	defer cleanup()

	nodes[0].Write("c", 1) // causal, seq 1
	nodes[0].Write("p", 2) // elided, seq 2
	nodes[0].Write("c", 3) // causal, seq 3: chain must skip the elided seq 2
	nodes[1].AwaitCausal("c", 3)
	if got := nodes[1].ReadPRAM("p"); got != 2 {
		t.Fatalf("p = %d, want 2", got)
	}
	// All three updates count toward node 1's causal obligations: two
	// causal applies plus one elided (obligation-free) update.
	done := make(chan struct{})
	go func() {
		nodes[1].WaitCausalApplied([]uint64{3, 0, 0})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("WaitCausalApplied did not count the elided update")
	}
}

// TestScopedCausalBatched runs the transitive scenario with the outbox on:
// causal batches must carry batch-level dependency metadata and apply
// atomically, and kind changes must split batches so each stays homogeneous.
func TestScopedCausalBatched(t *testing.T) {
	scope := &ScopeMap{
		Readers:       map[string][]int{"x": {1, 2}, "y": {2}, "p": {2}},
		CausalReaders: map[string][]int{"x": {1, 2}, "y": {2}},
	}
	batch := BatchConfig{Enabled: true, MaxUpdates: 1 << 20, MaxBytes: 1 << 30, Linger: time.Hour}
	f, nodes, cleanup := newScopedTrio(t, scope, batch)
	defer cleanup()

	if err := f.Hold(0, 2); err != nil {
		t.Fatalf("hold: %v", err)
	}
	nodes[0].Write("x", 1)
	nodes[0].Write("x", 2)
	nodes[0].Write("p", 7) // elided kind: forces a homogeneous-batch split
	nodes[0].Write("x", 3)
	nodes[0].FlushUpdates()
	nodes[1].AwaitCausal("x", 3)
	nodes[1].Write("y", 1)
	nodes[1].FlushUpdates()

	eventually(t, func() bool { return nodes[2].ReadPRAM("y") == 1 }, "n2 never received y")
	if got := nodes[2].Snapshot(true)["y"]; got != 0 {
		t.Fatalf("y applied causally before x batch: %d", got)
	}
	if err := f.Release(0, 2); err != nil {
		t.Fatalf("release: %v", err)
	}
	nodes[2].AwaitCausal("y", 1)
	if got := nodes[2].Snapshot(true)["x"]; got != 3 {
		t.Fatalf("causal x = %d after awaiting y, want 3", got)
	}
	if got := nodes[2].ReadPRAM("p"); got != 7 {
		t.Fatalf("p = %d, want 7", got)
	}
}

// TestScopedCausalUnlistedLocationBroadcasts checks the fallback: a location
// absent from the scope map broadcasts with causal metadata, and stays
// causally ordered with scoped locations.
func TestScopedCausalUnlistedLocationBroadcasts(t *testing.T) {
	scope := &ScopeMap{
		Readers:       map[string][]int{"narrow": {1}},
		CausalReaders: map[string][]int{"narrow": {1}},
	}
	_, nodes, cleanup := newScopedTrio(t, scope, BatchConfig{})
	defer cleanup()

	nodes[0].Write("narrow", 1) // seq 1, node 1 only
	nodes[0].Write("wide", 2)   // seq 2, broadcast fallback
	nodes[1].AwaitCausal("wide", 2)
	if got := nodes[1].Snapshot(true)["narrow"]; got != 1 {
		t.Fatalf("narrow = %d in node 1's causal view, want 1", got)
	}
	nodes[2].AwaitCausal("wide", 2)
	if got := nodes[2].ReadPRAM("narrow"); got != 0 {
		t.Fatalf("narrow leaked to node 2: %d", got)
	}
}

// TestTrackAccessLearnsKinds checks the profiling mode records the
// per-location access kinds scope learning needs.
func TestTrackAccessLearnsKinds(t *testing.T) {
	f, err := network.New(network.Config{Nodes: 2})
	if err != nil {
		t.Fatalf("network.New: %v", err)
	}
	nodes := make([]*Node, 2)
	for i := range nodes {
		nodes[i], err = NewNode(Config{ID: i, N: 2, Transport: f, TrackAccess: true})
		if err != nil {
			t.Fatalf("NewNode(%d): %v", i, err)
		}
	}
	defer func() {
		f.Close()
		for _, nd := range nodes {
			nd.Close()
		}
	}()
	nodes[0].Write("both", 1)
	nodes[1].AwaitPRAM("both", 1)
	nodes[1].ReadCausal("both")
	nodes[1].ReadPRAM("pramish")
	nodes[1].AwaitCausal("both", 1)
	got := nodes[1].Accessed()
	if got["both"] != AccessPRAM|AccessCausal {
		t.Fatalf("both = %b, want PRAM|Causal", got["both"])
	}
	if got["pramish"] != AccessPRAM {
		t.Fatalf("pramish = %b, want PRAM", got["pramish"])
	}
	if len(nodes[0].Accessed()) != 0 {
		t.Fatalf("writer recorded accesses: %v", nodes[0].Accessed())
	}
}
