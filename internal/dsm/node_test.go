package dsm

import (
	"sync"
	"testing"
	"time"

	"mixedmem/internal/check"
	"mixedmem/internal/history"
	"mixedmem/internal/network"
)

// cluster builds a fabric and n nodes, wiring cleanup.
func cluster(t *testing.T, n int, trace *history.Builder) []*Node {
	t.Helper()
	f, err := network.New(network.Config{Nodes: n})
	if err != nil {
		t.Fatalf("network.New: %v", err)
	}
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		nodes[i], err = NewNode(Config{ID: i, N: n, Transport: f, Trace: trace})
		if err != nil {
			t.Fatalf("NewNode(%d): %v", i, err)
		}
	}
	t.Cleanup(func() {
		f.Close()
		for _, nd := range nodes {
			nd.Close()
		}
	})
	return nodes
}

// eventually polls cond until it holds or the deadline passes.
func eventually(t *testing.T, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal(msg)
}

func TestNewNodeValidation(t *testing.T) {
	if _, err := NewNode(Config{ID: 0, N: 1}); err == nil {
		t.Error("nil fabric must error")
	}
	f, _ := network.New(network.Config{Nodes: 2})
	defer f.Close()
	if _, err := NewNode(Config{ID: 5, N: 2, Transport: f}); err == nil {
		t.Error("out-of-range id must error")
	}
	if _, err := NewNode(Config{ID: 0, N: 3, Transport: f}); err == nil {
		t.Error("n mismatch must error")
	}
}

func TestLocalWriteReadBothViews(t *testing.T) {
	nodes := cluster(t, 2, nil)
	nodes[0].Write("x", 7)
	if got := nodes[0].ReadPRAM("x"); got != 7 {
		t.Errorf("own PRAM read = %d, want 7", got)
	}
	if got := nodes[0].ReadCausal("x"); got != 7 {
		t.Errorf("own causal read = %d, want 7", got)
	}
}

func TestPropagationToOtherReplicas(t *testing.T) {
	nodes := cluster(t, 3, nil)
	nodes[0].Write("x", 42)
	eventually(t, func() bool { return nodes[2].ReadPRAM("x") == 42 },
		"PRAM view never received the update")
	eventually(t, func() bool { return nodes[2].ReadCausal("x") == 42 },
		"causal view never applied the update")
}

func TestCausalViewGatesOnDependencies(t *testing.T) {
	// Node 0 writes x; node 1 reads it (after receipt) and writes y.
	// Node 2's channel from 0 is held, so y's dependency on x is unmet:
	// the causal view must not show y while the PRAM view does.
	f, err := network.New(network.Config{Nodes: 3})
	if err != nil {
		t.Fatalf("network.New: %v", err)
	}
	nodes := make([]*Node, 3)
	for i := range nodes {
		nodes[i], err = NewNode(Config{ID: i, N: 3, Transport: f})
		if err != nil {
			t.Fatalf("NewNode: %v", err)
		}
	}
	defer func() {
		f.Close()
		for _, nd := range nodes {
			nd.Close()
		}
	}()

	_ = f.Hold(0, 2)
	nodes[0].Write("x", 1)
	eventually(t, func() bool { return nodes[1].ReadCausal("x") == 1 },
		"node 1 never saw x")
	nodes[1].Write("y", 2)

	// Inspect the views through Snapshot: a ReadPRAM would raise the
	// observation fence and a subsequent ReadCausal would then (correctly)
	// block until the held dependency arrives.
	eventually(t, func() bool { return nodes[2].Snapshot(false)["y"] == 2 },
		"node 2 PRAM view never received y")
	if got := nodes[2].Snapshot(true)["y"]; got != 0 {
		t.Fatalf("causal view applied y before its dependency x: got %d", got)
	}
	if got := nodes[2].Snapshot(true)["x"]; got != 0 {
		t.Fatalf("x should still be held: got %d", got)
	}

	_ = f.Release(0, 2)
	eventually(t, func() bool { return nodes[2].ReadCausal("y") == 2 },
		"causal view never drained after release")
	if got := nodes[2].ReadCausal("x"); got != 1 {
		t.Fatalf("causal view missing x after drain: got %d", got)
	}
	// Now that the PRAM view has been observed, a causal read must not be
	// older than the observation (Definition 2's reads-from edge).
	if got := nodes[2].ReadPRAM("y"); got != 2 {
		t.Fatalf("pram y = %d", got)
	}
	if got := nodes[2].ReadCausal("y"); got != 2 {
		t.Fatalf("causal y after pram observation = %d, want 2", got)
	}
}

func TestPRAMViewAppliesHeldUpdatesIndependently(t *testing.T) {
	// The PRAM view shows y=2 even while x's update is held: exactly the
	// staleness PRAM permits and causal forbids.
	f, _ := network.New(network.Config{Nodes: 3})
	nodes := make([]*Node, 3)
	for i := range nodes {
		nodes[i], _ = NewNode(Config{ID: i, N: 3, Transport: f})
	}
	defer func() {
		f.Close()
		for _, nd := range nodes {
			nd.Close()
		}
	}()
	_ = f.Hold(0, 2)
	nodes[0].Write("x", 1)
	eventually(t, func() bool { return nodes[1].ReadPRAM("x") == 1 }, "n1 missed x")
	nodes[1].Write("y", 2)
	eventually(t, func() bool { return nodes[2].ReadPRAM("y") == 2 }, "n2 missed y")
	if got := nodes[2].ReadPRAM("x"); got != 0 {
		t.Fatalf("held update leaked: x=%d", got)
	}
	_ = f.Release(0, 2)
}

func TestObservationFenceBlocksCausalRead(t *testing.T) {
	// p0 writes x then y; node 2's channel from p0 is held after x... here:
	// p1 writes d (dep of p0? no). Direct scenario: p2 PRAM-reads a value
	// whose causal application is still gated; its next causal read must
	// block until the causal view catches up, not return older state.
	f, _ := network.New(network.Config{Nodes: 3})
	nodes := make([]*Node, 3)
	for i := range nodes {
		nodes[i], _ = NewNode(Config{ID: i, N: 3, Transport: f})
	}
	defer func() {
		f.Close()
		for _, nd := range nodes {
			nd.Close()
		}
	}()

	// y (from node 1) causally depends on x (from node 0); node 2 receives
	// y but not x.
	_ = f.Hold(0, 2)
	nodes[0].Write("x", 1)
	eventually(t, func() bool { return nodes[1].ReadCausal("x") == 1 }, "n1 missed x")
	nodes[1].Write("y", 2)
	eventually(t, func() bool { return nodes[2].Snapshot(false)["y"] == 2 }, "n2 missed y")

	// Observe y through the PRAM view: the fence now covers w1(y)2.
	if got := nodes[2].ReadPRAM("y"); got != 2 {
		t.Fatalf("pram y = %d", got)
	}
	// A causal read (of any location) must now wait for the causal view to
	// apply w1(y)2, which is gated on the held x.
	got := make(chan int64, 1)
	go func() { got <- nodes[2].ReadCausal("x") }()
	select {
	case v := <-got:
		t.Fatalf("causal read returned %d before the fence was satisfied", v)
	case <-time.After(30 * time.Millisecond):
	}
	_ = f.Release(0, 2)
	select {
	case v := <-got:
		if v != 1 {
			t.Fatalf("causal x after fence = %d, want 1", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("causal read never unblocked")
	}
}

func TestAwaitPRAMRaisesFence(t *testing.T) {
	// After AwaitPRAM fires, a causal read must observe the matched
	// write's causal context.
	f, _ := network.New(network.Config{Nodes: 3})
	nodes := make([]*Node, 3)
	for i := range nodes {
		nodes[i], _ = NewNode(Config{ID: i, N: 3, Transport: f})
	}
	defer func() {
		f.Close()
		for _, nd := range nodes {
			nd.Close()
		}
	}()
	_ = f.Hold(0, 2)
	nodes[0].Write("x", 1)
	eventually(t, func() bool { return nodes[1].ReadCausal("x") == 1 }, "n1 missed x")
	nodes[1].Write("go", 7)

	done := make(chan int64, 1)
	go func() {
		nodes[2].AwaitPRAM("go", 7)
		done <- nodes[2].ReadCausal("x")
	}()
	select {
	case v := <-done:
		t.Fatalf("causal read after AwaitPRAM returned %d early", v)
	case <-time.After(30 * time.Millisecond):
	}
	_ = f.Release(0, 2)
	select {
	case v := <-done:
		if v != 1 {
			t.Fatalf("causal x = %d, want 1", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("never unblocked")
	}
}

func TestFIFOApplyPerSender(t *testing.T) {
	nodes := cluster(t, 2, nil)
	const k = 100
	for i := 1; i <= k; i++ {
		nodes[0].Write("x", int64(i))
	}
	eventually(t, func() bool { return nodes[1].ReadPRAM("x") == k },
		"final value never arrived")
	if got := nodes[1].ReadCausal("x"); got != k {
		t.Errorf("causal final = %d, want %d", got, k)
	}
}

func TestAwait(t *testing.T) {
	nodes := cluster(t, 2, nil)
	done := make(chan int64, 1)
	go func() {
		nodes[1].AwaitPRAM("flag", 3)
		done <- nodes[1].ReadPRAM("data")
	}()
	nodes[0].Write("data", 99)
	nodes[0].Write("flag", 3)
	select {
	case got := <-done:
		if got != 99 {
			t.Errorf("data after await = %d, want 99", got)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("await never fired")
	}
}

func TestAwaitAlreadySatisfied(t *testing.T) {
	nodes := cluster(t, 1, nil)
	nodes[0].Write("flag", 1)
	nodes[0].AwaitPRAM("flag", 1) // must return immediately
}

func TestCounterAddCommutes(t *testing.T) {
	nodes := cluster(t, 3, nil)
	var wg sync.WaitGroup
	for _, nd := range nodes {
		nd := nd
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				nd.Add("count", -1)
			}
		}()
	}
	wg.Wait()
	for i, nd := range nodes {
		nd := nd
		eventually(t, func() bool { return nd.ReadPRAM("count") == -150 },
			"counter never converged on node "+string(rune('0'+i)))
		if got := nd.ReadCausal("count"); got != -150 {
			t.Errorf("node %d causal counter = %d, want -150", i, got)
		}
	}
}

func TestSentReceivedCounts(t *testing.T) {
	nodes := cluster(t, 3, nil)
	nodes[0].Write("a", 1)
	nodes[0].Write("b", 2)
	sent := nodes[0].SentCounts()
	if sent[1] != 2 || sent[2] != 2 || sent[0] != 0 {
		t.Errorf("sent = %v, want [0 2 2]", sent)
	}
	eventually(t, func() bool { return nodes[1].ReceivedCounts()[0] == 2 },
		"receive counts never advanced")
	rc := nodes[0].ReceivedCounts()
	if rc[0] != 2 {
		t.Errorf("own component = %d, want 2", rc[0])
	}
}

func TestWaitReceived(t *testing.T) {
	nodes := cluster(t, 2, nil)
	done := make(chan struct{})
	go func() {
		nodes[1].WaitReceived([]uint64{2, 0})
		close(done)
	}()
	nodes[0].Write("a", 1)
	select {
	case <-done:
		t.Fatal("WaitReceived returned before both updates")
	case <-time.After(20 * time.Millisecond):
	}
	nodes[0].Write("b", 2)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("WaitReceived never returned")
	}
}

func TestWaitCausalApplied(t *testing.T) {
	nodes := cluster(t, 2, nil)
	nodes[0].Write("a", 1)
	nodes[1].WaitCausalApplied([]uint64{1, 0})
	if got := nodes[1].ReadCausal("a"); got != 1 {
		t.Errorf("causal read after wait = %d, want 1", got)
	}
}

func TestInvalidateBlocksRead(t *testing.T) {
	f, _ := network.New(network.Config{Nodes: 2})
	n0, _ := NewNode(Config{ID: 0, N: 2, Transport: f})
	n1, _ := NewNode(Config{ID: 1, N: 2, Transport: f})
	defer func() { f.Close(); n0.Close(); n1.Close() }()

	_ = f.Hold(0, 1)
	n0.Write("x", 5) // update 1 from node 0, held
	n1.Invalidate("x", 0, 1)

	got := make(chan int64, 1)
	go func() { got <- n1.ReadPRAM("x") }()
	select {
	case v := <-got:
		t.Fatalf("read of invalidated location returned %d early", v)
	case <-time.After(20 * time.Millisecond):
	}
	_ = f.Release(0, 1)
	select {
	case v := <-got:
		if v != 5 {
			t.Errorf("read = %d, want 5", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("read never unblocked")
	}
}

func TestInvalidateCausalRead(t *testing.T) {
	nodes := cluster(t, 2, nil)
	nodes[0].Write("x", 9)
	nodes[1].Invalidate("x", 0, 1)
	if got := nodes[1].ReadCausal("x"); got != 9 {
		t.Errorf("causal read = %d, want 9", got)
	}
}

func TestStats(t *testing.T) {
	nodes := cluster(t, 2, nil)
	nodes[0].Write("x", 1)
	nodes[0].ReadPRAM("x")
	nodes[0].ReadCausal("x")
	nodes[0].AwaitPRAM("x", 1)
	s := nodes[0].Stats()
	if s.Writes != 1 || s.PRAMReads != 1 || s.CausalReads != 1 || s.Awaits != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestSnapshot(t *testing.T) {
	nodes := cluster(t, 1, nil)
	nodes[0].Write("x", 1)
	nodes[0].Write("y", 2)
	snap := nodes[0].Snapshot(false)
	if snap["x"] != 1 || snap["y"] != 2 {
		t.Errorf("snapshot = %v", snap)
	}
	snap["x"] = 99
	if nodes[0].ReadPRAM("x") != 1 {
		t.Error("snapshot aliases internal state")
	}
	csnap := nodes[0].Snapshot(true)
	if csnap["y"] != 2 {
		t.Errorf("causal snapshot = %v", csnap)
	}
}

func TestHandlerReceivesProtocolMessages(t *testing.T) {
	f, _ := network.New(network.Config{Nodes: 2})
	got := make(chan network.Message, 1)
	n0, _ := NewNode(Config{ID: 0, N: 2, Transport: f})
	n1, _ := NewNode(Config{ID: 1, N: 2, Transport: f, Handler: func(m network.Message) {
		got <- m
	}})
	defer func() { f.Close(); n0.Close(); n1.Close() }()
	_ = f.Send(network.Message{From: 0, To: 1, Kind: "lock-req", Payload: "l"})
	select {
	case m := <-got:
		if m.Kind != "lock-req" {
			t.Errorf("kind = %q", m.Kind)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("handler never invoked")
	}
}

func TestTraceRecordsMixedConsistentHistory(t *testing.T) {
	// Run a producer/consumer program on the runtime, record it, and
	// verify the checker accepts the trace.
	trace := history.NewBuilder(2)
	nodes := cluster(t, 2, trace)
	nodes[0].Write("data", 7)
	nodes[0].Write("flag", 1)
	nodes[1].AwaitCausal("flag", 1)
	v := nodes[1].ReadPRAM("data")
	if v != 7 {
		t.Fatalf("consumer read %d, want 7", v)
	}
	nodes[1].ReadCausal("data")

	a, err := trace.History().Analyze()
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if viol := check.Mixed(a); len(viol) != 0 {
		t.Fatalf("recorded history not mixed consistent: %v", viol)
	}
}

func TestConcurrentWritersConvergePRAM(t *testing.T) {
	// Concurrent writers to distinct locations: all replicas converge.
	nodes := cluster(t, 4, nil)
	var wg sync.WaitGroup
	for i, nd := range nodes {
		i, nd := i, nd
		wg.Add(1)
		go func() {
			defer wg.Done()
			loc := "w" + string(rune('0'+i))
			for v := 1; v <= 20; v++ {
				nd.Write(loc, int64(v))
			}
		}()
	}
	wg.Wait()
	for _, nd := range nodes {
		nd := nd
		eventually(t, func() bool {
			for i := 0; i < 4; i++ {
				if nd.ReadCausal("w"+string(rune('0'+i))) != 20 {
					return false
				}
			}
			return true
		}, "replicas never converged")
	}
}

func TestScopeValidation(t *testing.T) {
	cases := []struct {
		name     string
		scope    *ScopeMap
		pramOnly bool
		wantErr  bool
	}{
		{
			name:  "reader out of range",
			scope: &ScopeMap{Readers: map[string][]int{"x": {0, 2}}},

			wantErr: true,
		},
		{
			name:  "negative reader",
			scope: &ScopeMap{Readers: map[string][]int{"x": {-1}}},

			wantErr: true,
		},
		{
			name: "causal reader out of range",
			scope: &ScopeMap{
				Readers:       map[string][]int{"x": {0, 1}},
				CausalReaders: map[string][]int{"x": {5}},
			},
			wantErr: true,
		},
		{
			name: "causal reader missing from reader scope",
			scope: &ScopeMap{
				Readers:       map[string][]int{"x": {0}},
				CausalReaders: map[string][]int{"x": {1}},
			},
			wantErr: true,
		},
		{
			name: "causal readers on a PRAMOnly node",
			scope: &ScopeMap{
				Readers:       map[string][]int{"x": {1}},
				CausalReaders: map[string][]int{"x": {1}},
			},
			pramOnly: true,
			wantErr:  true,
		},
		{
			name: "valid causal scope",
			scope: &ScopeMap{
				Readers:       map[string][]int{"x": {0, 1}},
				CausalReaders: map[string][]int{"x": {1}},
			},
		},
		{
			name:     "valid PRAM scope",
			scope:    &ScopeMap{Readers: map[string][]int{"x": {1}}},
			pramOnly: true,
		},
		{
			name: "empty causal list is not an error",
			scope: &ScopeMap{
				Readers:       map[string][]int{"x": {1}},
				CausalReaders: map[string][]int{"x": {}},
			},
			pramOnly: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f, _ := network.New(network.Config{Nodes: 2})
			node, err := NewNode(Config{
				ID: 0, N: 2, Transport: f, PRAMOnly: tc.pramOnly, Scope: tc.scope,
			})
			f.Close()
			if tc.wantErr {
				if err == nil {
					node.Close()
					t.Fatal("invalid scope accepted")
				}
				return
			}
			if err != nil {
				t.Fatalf("valid scope rejected: %v", err)
			}
			node.Close()
		})
	}
}

func TestScopedMulticastDelivery(t *testing.T) {
	// Location "pair" goes only to node 1; "all" goes to both peers.
	f, _ := network.New(network.Config{Nodes: 3})
	scope := &ScopeMap{Readers: map[string][]int{
		"pair": {1},
		"all":  {1, 2},
	}}
	nodes := make([]*Node, 3)
	for i := range nodes {
		nodes[i], _ = NewNode(Config{ID: i, N: 3, Transport: f, PRAMOnly: true, Scope: scope})
	}
	defer func() {
		f.Close()
		for _, nd := range nodes {
			nd.Close()
		}
	}()

	nodes[0].Write("pair", 5)
	nodes[0].Write("all", 7)
	eventually(t, func() bool { return nodes[1].ReadPRAM("pair") == 5 }, "n1 missed pair")
	eventually(t, func() bool { return nodes[2].ReadPRAM("all") == 7 }, "n2 missed all")
	if got := nodes[2].ReadPRAM("pair"); got != 0 {
		t.Fatalf("scoped update leaked to node 2: %d", got)
	}
	// Sent counts are per destination.
	sent := nodes[0].SentCounts()
	if sent[1] != 2 || sent[2] != 1 {
		t.Fatalf("sent = %v, want [0 2 1]", sent)
	}
	// Received counts track deliveries, not sequence numbers: node 2 got
	// one update from node 0 even though its sequence number was 2.
	eventually(t, func() bool { return nodes[2].ReceivedCounts()[0] == 1 },
		"recvd count wrong under scope")
}

func TestScopedWaitReceived(t *testing.T) {
	f, _ := network.New(network.Config{Nodes: 3})
	scope := &ScopeMap{Readers: map[string][]int{
		"skip2": {1},
		"both":  {1, 2},
	}}
	nodes := make([]*Node, 3)
	for i := range nodes {
		nodes[i], _ = NewNode(Config{ID: i, N: 3, Transport: f, PRAMOnly: true, Scope: scope})
	}
	defer func() {
		f.Close()
		for _, nd := range nodes {
			nd.Close()
		}
	}()
	nodes[0].Write("skip2", 1) // seq 1, not sent to node 2
	nodes[0].Write("both", 2)  // seq 2, sent to node 2
	// Node 2 expects exactly 1 delivery from node 0 (per-destination sent
	// count); waiting on that must succeed despite the sequence hole.
	done := make(chan struct{})
	go func() {
		nodes[2].WaitReceived([]uint64{1, 0, 0})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("WaitReceived hung on a sequence hole")
	}
	if got := nodes[2].ReadPRAM("both"); got != 2 {
		t.Fatalf("both = %d", got)
	}
}

func BenchmarkLocalWrite(b *testing.B) {
	f, _ := network.New(network.Config{Nodes: 2})
	n0, _ := NewNode(Config{ID: 0, N: 2, Transport: f})
	n1, _ := NewNode(Config{ID: 1, N: 2, Transport: f})
	defer func() { f.Close(); n0.Close(); n1.Close() }()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n0.Write("bench", int64(i+1))
	}
}

func BenchmarkLocalPRAMRead(b *testing.B) {
	f, _ := network.New(network.Config{Nodes: 2})
	n0, _ := NewNode(Config{ID: 0, N: 2, Transport: f})
	n1, _ := NewNode(Config{ID: 1, N: 2, Transport: f})
	defer func() { f.Close(); n0.Close(); n1.Close() }()
	n0.Write("bench", 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n0.ReadPRAM("bench")
	}
}

func BenchmarkLocalCausalRead(b *testing.B) {
	f, _ := network.New(network.Config{Nodes: 2})
	n0, _ := NewNode(Config{ID: 0, N: 2, Transport: f})
	n1, _ := NewNode(Config{ID: 1, N: 2, Transport: f})
	defer func() { f.Close(); n0.Close(); n1.Close() }()
	n0.Write("bench", 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n0.ReadCausal("bench")
	}
}

func TestWriteLogTrim(t *testing.T) {
	nodes := cluster(t, 1, nil)
	n := nodes[0]
	m0 := n.WriteMark()
	n.Write("a", 1)
	n.Write("b", 2)
	m1 := n.WriteMark()
	n.Write("c", 3)

	// Trim below m1: the record for c survives, a and b are gone.
	n.TrimWriteLog(m1)
	if got := n.WritesSince(m0); len(got) != 1 || got[0].Loc != "c" {
		t.Fatalf("WritesSince after trim = %v, want [c]", got)
	}
	// Marks stay absolute: WritesSince(m1) is unchanged by the trim.
	if got := n.WritesSince(m1); len(got) != 1 || got[0].Loc != "c" {
		t.Fatalf("WritesSince(m1) = %v, want [c]", got)
	}
	// Trimming beyond the end clears everything; further writes append.
	n.TrimWriteLog(n.WriteMark())
	n.Write("d", 4)
	if got := n.WritesSince(m0); len(got) != 1 || got[0].Loc != "d" {
		t.Fatalf("after full trim = %v, want [d]", got)
	}
	// A stale (already-trimmed) trim point is a no-op.
	n.TrimWriteLog(m0)
}
