package dsm

import (
	"testing"

	"mixedmem/internal/transport"
	"mixedmem/internal/vclock"
)

func roundTripUpdate(t *testing.T, u Update) Update {
	t.Helper()
	enc, err := transport.EncodePayload(nil, KindUpdate, u)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	dec, err := transport.DecodePayload(KindUpdate, enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	got, ok := dec.(Update)
	if !ok {
		t.Fatalf("decoded %T, want Update", dec)
	}
	return got
}

func TestUpdateCodecRoundTrip(t *testing.T) {
	ts := vclock.New(3)
	ts[0], ts[1], ts[2] = 4, 0, 17
	u := Update{From: 2, Seq: 99, Op: OpSet, Loc: "x[3]", Value: -12345, TS: ts}
	got := roundTripUpdate(t, u)
	if got.From != u.From || got.Seq != u.Seq || got.Op != u.Op ||
		got.Loc != u.Loc || got.Value != u.Value {
		t.Fatalf("round trip changed fields: %+v -> %+v", u, got)
	}
	if got.TS.Len() != 3 || got.TS[0] != 4 || got.TS[1] != 0 || got.TS[2] != 17 {
		t.Fatalf("round trip changed timestamp: %v -> %v", u.TS, got.TS)
	}
}

func TestUpdateCodecPRAMOnlyNilTimestamp(t *testing.T) {
	u := Update{From: 0, Seq: 1, Op: OpSet, Loc: "y", Value: 7}
	got := roundTripUpdate(t, u)
	if got.TS != nil {
		t.Fatalf("nil timestamp round-tripped to %v", got.TS)
	}
	if got.Value != 7 || got.Loc != "y" {
		t.Fatalf("round trip changed fields: %+v", got)
	}
}

func TestUpdateCodecRejectsWrongType(t *testing.T) {
	if _, err := transport.EncodePayload(nil, KindUpdate, "not an update"); err == nil {
		t.Fatal("encoding a non-Update payload succeeded")
	}
	if _, err := transport.DecodePayload(KindUpdate, []byte{1, 2}); err == nil {
		t.Fatal("decoding a truncated update succeeded")
	}
}
