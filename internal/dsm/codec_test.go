package dsm

import (
	"testing"

	"mixedmem/internal/transport"
	"mixedmem/internal/vclock"
)

func roundTripUpdate(t *testing.T, u Update) Update {
	t.Helper()
	enc, err := transport.EncodePayload(nil, KindUpdate, u)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	dec, err := transport.DecodePayload(KindUpdate, enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	got, ok := dec.(Update)
	if !ok {
		t.Fatalf("decoded %T, want Update", dec)
	}
	return got
}

func TestUpdateCodecRoundTrip(t *testing.T) {
	ts := vclock.New(3)
	ts[0], ts[1], ts[2] = 4, 0, 17
	u := Update{From: 2, Seq: 99, Op: OpSet, Loc: "x[3]", Value: -12345, TS: ts}
	got := roundTripUpdate(t, u)
	if got.From != u.From || got.Seq != u.Seq || got.Op != u.Op ||
		got.Loc != u.Loc || got.Value != u.Value {
		t.Fatalf("round trip changed fields: %+v -> %+v", u, got)
	}
	if got.TS.Len() != 3 || got.TS[0] != 4 || got.TS[1] != 0 || got.TS[2] != 17 {
		t.Fatalf("round trip changed timestamp: %v -> %v", u.TS, got.TS)
	}
}

func TestUpdateCodecPRAMOnlyNilTimestamp(t *testing.T) {
	u := Update{From: 0, Seq: 1, Op: OpSet, Loc: "y", Value: 7}
	got := roundTripUpdate(t, u)
	if got.TS != nil {
		t.Fatalf("nil timestamp round-tripped to %v", got.TS)
	}
	if got.Value != 7 || got.Loc != "y" {
		t.Fatalf("round trip changed fields: %+v", got)
	}
}

func TestUpdateCodecScopedCausalRoundTrip(t *testing.T) {
	deps := vclock.NewMatrix(3)
	deps.Set(0, 1, 4)
	deps.Set(2, 0, 9)
	u := Update{From: 1, Seq: 9, Op: OpSet, Loc: "s", Value: 3, PrevSeq: 5, Deps: deps}
	got := roundTripUpdate(t, u)
	if got.PrevSeq != 5 || got.Deps.Len() != 3 {
		t.Fatalf("scoped metadata changed: prev=%d deps=%v", got.PrevSeq, got.Deps)
	}
	for p := 0; p < 3; p++ {
		for k := 0; k < 3; k++ {
			if got.Deps.Get(p, k) != deps.Get(p, k) {
				t.Fatalf("deps[%d][%d] = %d, want %d", p, k, got.Deps.Get(p, k), deps.Get(p, k))
			}
		}
	}
}

func TestBatchCodecScopedCausalRoundTrip(t *testing.T) {
	deps := vclock.NewMatrix(2)
	deps.Set(1, 0, 7)
	b := UpdateBatch{
		From: 0, FirstSeq: 3, Count: 5, PrevSeq: 2, Deps: deps,
		Updates: []Update{
			{From: 0, Seq: 3, Op: OpSet, Loc: "a", Value: 1},
			{From: 0, Seq: 7, Op: OpAdd, Loc: "b", Value: 2},
		},
	}
	enc, err := transport.EncodePayload(nil, KindUpdateBatch, b)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	dec, err := transport.DecodePayload(KindUpdateBatch, enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	got := dec.(UpdateBatch)
	if got.PrevSeq != 2 || got.Deps.Len() != 2 || got.Deps.Get(1, 0) != 7 {
		t.Fatalf("scoped batch metadata changed: %+v", got)
	}
	if len(got.Updates) != 2 || got.Updates[1].Seq != 7 || got.Updates[1].TS != nil {
		t.Fatalf("entries changed: %+v", got.Updates)
	}
}

func TestUpdateCodecRejectsWrongType(t *testing.T) {
	if _, err := transport.EncodePayload(nil, KindUpdate, "not an update"); err == nil {
		t.Fatal("encoding a non-Update payload succeeded")
	}
	if _, err := transport.DecodePayload(KindUpdate, []byte{1, 2}); err == nil {
		t.Fatal("decoding a truncated update succeeded")
	}
}

// TestUpdateCodecWireSizeIgnoresIdlePeers pins the point of the sparse deps
// encoding: a scoped-causal update whose dependencies involve three peers
// costs the same bytes in a 4-process cluster and a 256-process one.
func TestUpdateCodecWireSizeIgnoresIdlePeers(t *testing.T) {
	encodedLen := func(n int) int {
		deps := vclock.NewMatrix(n)
		deps.Set(0, 1, 4)
		deps.Set(1, 2, 9)
		u := Update{From: 1, Seq: 9, Op: OpSet, Loc: "s", Value: 3, PrevSeq: 5, Deps: deps}
		enc, err := transport.EncodePayload(nil, KindUpdate, u)
		if err != nil {
			t.Fatalf("encode (n=%d): %v", n, err)
		}
		if got := u.encodedSize(); got != len(enc) {
			t.Fatalf("n=%d: encodedSize = %d, codec writes %d bytes", n, got, len(enc))
		}
		got := roundTripUpdate(t, u)
		if got.Deps.Len() != n || got.Deps.Get(1, 2) != 9 || got.Deps.Get(0, 1) != 4 {
			t.Fatalf("n=%d: deps did not round-trip: %v", n, got.Deps)
		}
		return len(enc)
	}
	small, big := encodedLen(4), encodedLen(256)
	if small != big {
		t.Fatalf("wire size grew from %d to %d bytes with 252 idle peers", small, big)
	}
}

// TestDecodeDepsRejectsMalformedIndices checks the sparse section's
// validation: out-of-range, unsorted, or over-counted index lists fail
// cleanly instead of corrupting the matrix.
func TestDecodeDepsRejectsMalformedIndices(t *testing.T) {
	base := Update{From: 0, Seq: 1, Op: OpSet, Loc: "s", Value: 1, PrevSeq: 0,
		Deps: vclock.NewMatrix(3)}
	base.Deps.Set(0, 2, 1)
	enc, err := transport.EncodePayload(nil, KindUpdate, base)
	if err != nil {
		t.Fatal(err)
	}
	// The deps section trails the payload: depsN(4) | PrevSeq(8) | nAct(4) | ids | sub.
	sub := 2 * 2 * 8
	idsOff := len(enc) - sub - 2*4
	corrupt := func(mutate func([]byte)) error {
		bad := append([]byte(nil), enc...)
		mutate(bad)
		_, err := transport.DecodePayload(KindUpdate, bad)
		return err
	}
	if err := corrupt(func(b []byte) { b[idsOff+3] = 7 }); err == nil {
		t.Error("index beyond depsN decoded successfully")
	}
	if err := corrupt(func(b []byte) { b[idsOff+3], b[idsOff+7] = 2, 0 }); err == nil {
		t.Error("descending index list decoded successfully")
	}
	if err := corrupt(func(b []byte) { b[idsOff-1] = 200 }); err == nil {
		t.Error("nAct larger than depsN decoded successfully")
	}
}
