package dsm

import (
	"reflect"
	"testing"

	"mixedmem/internal/history"
	"mixedmem/internal/transport"
	"mixedmem/internal/vclock"
)

// FuzzBatchCodecRoundTrip drives the KindUpdateBatch wire codec with
// arbitrary bytes: decoding must never panic, and any batch that decodes must
// re-encode and re-decode to the same value (the decoder is the wire contract
// both the sim and TCP transports rely on).
func FuzzBatchCodecRoundTrip(f *testing.F) {
	seedBatches := []UpdateBatch{
		{From: 0, FirstSeq: 1, Count: 1, Updates: []Update{
			{From: 0, Seq: 1, Op: OpSet, Loc: "x", Value: 7},
		}},
		{From: 2, FirstSeq: 4, Count: 3, Updates: []Update{
			{From: 2, Seq: 4, Op: OpSet, Loc: "a", Value: -1, TS: vclock.VC{4, 0, 9}},
			{From: 2, Seq: 6, Op: OpAdd, Loc: "b", Value: 2, TS: vclock.VC{6, 0, 9}},
		}},
	}
	scoped := UpdateBatch{From: 1, FirstSeq: 2, Count: 2, PrevSeq: 1,
		Deps: vclock.NewMatrix(2),
		Updates: []Update{
			{From: 1, Seq: 2, Op: OpSet, Loc: "s", Value: 5},
			{From: 1, Seq: 3, Op: OpAddFloat, Loc: "t", Value: 1},
		}}
	scoped.Deps.Set(0, 1, 3)
	seedBatches = append(seedBatches, scoped,
		// A slow-labeled batch: label-homogeneous, timestamp-elided frames.
		UpdateBatch{From: 2, FirstSeq: 7, Count: 2, Updates: []Update{
			{From: 2, Seq: 7, Op: OpSet, Loc: "cell", Value: 1, Label: history.LabelSlow},
			{From: 2, Seq: 8, Op: OpSet, Loc: "cell", Value: 2, Label: history.LabelSlow},
		}})
	for _, b := range seedBatches {
		enc, err := transport.EncodePayload(nil, KindUpdateBatch, b)
		if err != nil {
			f.Fatalf("seed encode: %v", err)
		}
		f.Add(enc)
	}
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := transport.DecodePayload(KindUpdateBatch, data)
		if err != nil || dec == nil {
			return // rejected cleanly (or empty input): that is the contract
		}
		b, ok := dec.(UpdateBatch)
		if !ok {
			t.Fatalf("decoded %T, want UpdateBatch", dec)
		}
		enc, err := transport.EncodePayload(nil, KindUpdateBatch, b)
		if err != nil {
			t.Fatalf("re-encoding a decoded batch failed: %v", err)
		}
		dec2, err := transport.DecodePayload(KindUpdateBatch, enc)
		if err != nil {
			t.Fatalf("re-decoding a re-encoded batch failed: %v", err)
		}
		// Decode ignores trailing garbage, so compare value-to-value rather
		// than bytes-to-bytes.
		if !reflect.DeepEqual(dec, dec2) {
			t.Fatalf("round trip changed the batch:\n%+v\n%+v", dec, dec2)
		}
	})
}

// FuzzUpdateCodecRoundTrip is the singleton-update analogue: the KindUpdate
// decoder must never panic and must round-trip every accepted input.
func FuzzUpdateCodecRoundTrip(f *testing.F) {
	seeds := []Update{
		{From: 0, Seq: 1, Op: OpSet, Loc: "y", Value: 9},
		{From: 1, Seq: 3, Op: OpAdd, Loc: "ctr", Value: -4, TS: vclock.VC{1, 3}},
	}
	scoped := Update{From: 1, Seq: 5, Op: OpSet, Loc: "s", Value: 2, PrevSeq: 4,
		Deps: vclock.NewMatrix(2)}
	scoped.Deps.Set(1, 1, 5)
	seeds = append(seeds, scoped,
		// Label-tagged frames: a timestamp-elided slow update and a causal
		// one with a vector timestamp.
		Update{From: 2, Seq: 9, Op: OpSet, Loc: "slowcell", Value: 3, Label: history.LabelSlow},
		Update{From: 0, Seq: 2, Op: OpSet, Loc: "c", Value: 8, Label: history.LabelCausal, TS: vclock.VC{2, 0, 0}})
	for _, u := range seeds {
		enc, err := transport.EncodePayload(nil, KindUpdate, u)
		if err != nil {
			f.Fatalf("seed encode: %v", err)
		}
		f.Add(enc)
	}
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := transport.DecodePayload(KindUpdate, data)
		if err != nil || dec == nil {
			return
		}
		u, ok := dec.(Update)
		if !ok {
			t.Fatalf("decoded %T, want Update", dec)
		}
		enc, err := transport.EncodePayload(nil, KindUpdate, u)
		if err != nil {
			t.Fatalf("re-encoding a decoded update failed: %v", err)
		}
		dec2, err := transport.DecodePayload(KindUpdate, enc)
		if err != nil {
			t.Fatalf("re-decoding a re-encoded update failed: %v", err)
		}
		if !reflect.DeepEqual(dec, dec2) {
			t.Fatalf("round trip changed the update:\n%+v\n%+v", dec, dec2)
		}
	})
}

// FuzzSCRequestCodecRoundTrip drives the sc-req wire codec — the SC lattice
// point's owner-protocol request frame — with arbitrary bytes: never panic,
// and every accepted input must round-trip.
func FuzzSCRequestCodecRoundTrip(f *testing.F) {
	seeds := []SCRequest{
		{ReqID: 1, From: 0, Op: 0, Loc: "cell", Value: 0},     // a read
		{ReqID: 9, From: 2, Op: OpSet, Loc: "x", Value: -7},   // a write
		{ReqID: 3, From: 1, Op: OpAdd, Loc: "ctr", Value: 40}, // a counter op
	}
	for _, r := range seeds {
		enc, err := transport.EncodePayload(nil, KindSCRequest, r)
		if err != nil {
			f.Fatalf("seed encode: %v", err)
		}
		f.Add(enc)
	}
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := transport.DecodePayload(KindSCRequest, data)
		if err != nil || dec == nil {
			return
		}
		r, ok := dec.(SCRequest)
		if !ok {
			t.Fatalf("decoded %T, want SCRequest", dec)
		}
		enc, err := transport.EncodePayload(nil, KindSCRequest, r)
		if err != nil {
			t.Fatalf("re-encoding a decoded sc-req failed: %v", err)
		}
		dec2, err := transport.DecodePayload(KindSCRequest, enc)
		if err != nil {
			t.Fatalf("re-decoding a re-encoded sc-req failed: %v", err)
		}
		if !reflect.DeepEqual(dec, dec2) {
			t.Fatalf("round trip changed the request:\n%+v\n%+v", dec, dec2)
		}
	})
}

// FuzzSCReplyCodecRoundTrip is the sc-rep analogue.
func FuzzSCReplyCodecRoundTrip(f *testing.F) {
	for _, r := range []SCReply{{ReqID: 1, Value: 42}, {ReqID: 8, Value: -1}} {
		enc, err := transport.EncodePayload(nil, KindSCReply, r)
		if err != nil {
			f.Fatalf("seed encode: %v", err)
		}
		f.Add(enc)
	}
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := transport.DecodePayload(KindSCReply, data)
		if err != nil || dec == nil {
			return
		}
		r, ok := dec.(SCReply)
		if !ok {
			t.Fatalf("decoded %T, want SCReply", dec)
		}
		enc, err := transport.EncodePayload(nil, KindSCReply, r)
		if err != nil {
			t.Fatalf("re-encoding a decoded sc-rep failed: %v", err)
		}
		dec2, err := transport.DecodePayload(KindSCReply, enc)
		if err != nil {
			t.Fatalf("re-decoding a re-encoded sc-rep failed: %v", err)
		}
		if !reflect.DeepEqual(dec, dec2) {
			t.Fatalf("round trip changed the reply:\n%+v\n%+v", dec, dec2)
		}
	})
}
