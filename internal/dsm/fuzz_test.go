package dsm

import (
	"reflect"
	"testing"

	"mixedmem/internal/transport"
	"mixedmem/internal/vclock"
)

// FuzzBatchCodecRoundTrip drives the KindUpdateBatch wire codec with
// arbitrary bytes: decoding must never panic, and any batch that decodes must
// re-encode and re-decode to the same value (the decoder is the wire contract
// both the sim and TCP transports rely on).
func FuzzBatchCodecRoundTrip(f *testing.F) {
	seedBatches := []UpdateBatch{
		{From: 0, FirstSeq: 1, Count: 1, Updates: []Update{
			{From: 0, Seq: 1, Op: OpSet, Loc: "x", Value: 7},
		}},
		{From: 2, FirstSeq: 4, Count: 3, Updates: []Update{
			{From: 2, Seq: 4, Op: OpSet, Loc: "a", Value: -1, TS: vclock.VC{4, 0, 9}},
			{From: 2, Seq: 6, Op: OpAdd, Loc: "b", Value: 2, TS: vclock.VC{6, 0, 9}},
		}},
	}
	scoped := UpdateBatch{From: 1, FirstSeq: 2, Count: 2, PrevSeq: 1,
		Deps: vclock.NewMatrix(2),
		Updates: []Update{
			{From: 1, Seq: 2, Op: OpSet, Loc: "s", Value: 5},
			{From: 1, Seq: 3, Op: OpAddFloat, Loc: "t", Value: 1},
		}}
	scoped.Deps.Set(0, 1, 3)
	seedBatches = append(seedBatches, scoped)
	for _, b := range seedBatches {
		enc, err := transport.EncodePayload(nil, KindUpdateBatch, b)
		if err != nil {
			f.Fatalf("seed encode: %v", err)
		}
		f.Add(enc)
	}
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := transport.DecodePayload(KindUpdateBatch, data)
		if err != nil || dec == nil {
			return // rejected cleanly (or empty input): that is the contract
		}
		b, ok := dec.(UpdateBatch)
		if !ok {
			t.Fatalf("decoded %T, want UpdateBatch", dec)
		}
		enc, err := transport.EncodePayload(nil, KindUpdateBatch, b)
		if err != nil {
			t.Fatalf("re-encoding a decoded batch failed: %v", err)
		}
		dec2, err := transport.DecodePayload(KindUpdateBatch, enc)
		if err != nil {
			t.Fatalf("re-decoding a re-encoded batch failed: %v", err)
		}
		// Decode ignores trailing garbage, so compare value-to-value rather
		// than bytes-to-bytes.
		if !reflect.DeepEqual(dec, dec2) {
			t.Fatalf("round trip changed the batch:\n%+v\n%+v", dec, dec2)
		}
	})
}

// FuzzUpdateCodecRoundTrip is the singleton-update analogue: the KindUpdate
// decoder must never panic and must round-trip every accepted input.
func FuzzUpdateCodecRoundTrip(f *testing.F) {
	seeds := []Update{
		{From: 0, Seq: 1, Op: OpSet, Loc: "y", Value: 9},
		{From: 1, Seq: 3, Op: OpAdd, Loc: "ctr", Value: -4, TS: vclock.VC{1, 3}},
	}
	scoped := Update{From: 1, Seq: 5, Op: OpSet, Loc: "s", Value: 2, PrevSeq: 4,
		Deps: vclock.NewMatrix(2)}
	scoped.Deps.Set(1, 1, 5)
	seeds = append(seeds, scoped)
	for _, u := range seeds {
		enc, err := transport.EncodePayload(nil, KindUpdate, u)
		if err != nil {
			f.Fatalf("seed encode: %v", err)
		}
		f.Add(enc)
	}
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := transport.DecodePayload(KindUpdate, data)
		if err != nil || dec == nil {
			return
		}
		u, ok := dec.(Update)
		if !ok {
			t.Fatalf("decoded %T, want Update", dec)
		}
		enc, err := transport.EncodePayload(nil, KindUpdate, u)
		if err != nil {
			t.Fatalf("re-encoding a decoded update failed: %v", err)
		}
		dec2, err := transport.DecodePayload(KindUpdate, enc)
		if err != nil {
			t.Fatalf("re-decoding a re-encoded update failed: %v", err)
		}
		if !reflect.DeepEqual(dec, dec2) {
			t.Fatalf("round trip changed the update:\n%+v\n%+v", dec, dec2)
		}
	})
}
