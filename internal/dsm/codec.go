package dsm

import (
	"fmt"

	"mixedmem/internal/history"
	"mixedmem/internal/transport"
	"mixedmem/internal/vclock"
)

// updateCodec is the wire codec for KindUpdate payloads, registered so wire
// transports (internal/transport/tcp) can carry memory updates between OS
// processes. Layout, all big-endian:
//
//	u32 From | u64 Seq | u8 Op | u8 Label | str Loc | u64 Value | u32 tsLen | tsLen*u64 TS |
//	u32 depsN | [ u64 PrevSeq | u32 nAct | nAct*u32 ids | nAct*nAct*u64 sub ]
//
// Label is the location's lattice point (history.Label); LabelSlow marks a
// timestamp-elided update delivered on the sender's FIFO alone (see
// Update.Label). A PRAMOnly or timestamp-elided update has tsLen 0 and
// decodes with a nil timestamp, exactly like the in-process value it
// mirrors. depsN is 0 unless
// the update carries scoped-causal metadata, in which case the chain pointer
// and the dependency matrix follow. The matrix ships sparsely: only the
// submatrix over its active indices (rows or columns with a nonzero entry)
// is encoded, so an update's wire size grows with the processes that
// actually exchanged scoped updates, not with the cluster size — the wire
// form of garbage-collecting the columns idle peers would otherwise occupy.
type updateCodec struct{}

// maxDepsN bounds the decoded dependency-matrix dimension. Real systems are
// far smaller; the bound caps the n² allocation a hostile depsN prefix could
// otherwise demand (the sparse payload itself can be legitimately tiny, so
// remaining-bytes checks cannot bound the full dimension).
const maxDepsN = 1024

// appendDeps writes the depsN | [PrevSeq | sparse matrix] section shared by
// both codecs.
func appendDeps(dst []byte, prevSeq uint64, deps vclock.Matrix) []byte {
	dst = transport.AppendUint32(dst, uint32(deps.Len()))
	if deps != nil {
		dst = transport.AppendUint64(dst, prevSeq)
		dst = deps.EncodeActive(dst)
	}
	return dst
}

// decodeDeps parses the trailing depsN | [PrevSeq | sparse matrix] section
// shared by both codecs. It returns zeroes when the section is absent
// (depsN == 0).
func decodeDeps(d *transport.Decoder, what string) (uint64, vclock.Matrix, error) {
	depsN := int(d.Uint32())
	if d.Err() != nil || depsN == 0 {
		return 0, nil, nil
	}
	if depsN > maxDepsN {
		return 0, nil, fmt.Errorf("dsm: %s codec: %dx%d dependency matrix exceeds the %d dimension bound: %w",
			what, depsN, depsN, maxDepsN, transport.ErrTruncated)
	}
	prevSeq := d.Uint64()
	nAct := int(d.Uint32())
	if d.Err() == nil && (nAct > depsN || nAct > d.Remaining()/4) {
		return 0, nil, fmt.Errorf("dsm: %s codec: %d active dependency indices in %d bytes: %w",
			what, nAct, d.Remaining(), transport.ErrTruncated)
	}
	ids := make([]int, 0, nAct)
	prev := -1
	for i := 0; i < nAct && d.Err() == nil; i++ {
		id := int(d.Uint32())
		if id <= prev || id >= depsN {
			return 0, nil, fmt.Errorf("dsm: %s codec: active dependency index %d not ascending within [0,%d): %w",
				what, id, depsN, transport.ErrTruncated)
		}
		ids = append(ids, id)
		prev = id
	}
	if d.Err() == nil && nAct > 0 && nAct > d.Remaining()/8/nAct {
		return 0, nil, fmt.Errorf("dsm: %s codec: %dx%d dependency submatrix in %d bytes: %w",
			what, nAct, nAct, d.Remaining(), transport.ErrTruncated)
	}
	m := vclock.NewMatrix(depsN)
	for _, p := range ids {
		for _, k := range ids {
			m.Set(p, k, d.Uint64())
		}
	}
	if d.Err() != nil {
		return 0, nil, fmt.Errorf("dsm: %s codec: dependency matrix: %w", what, d.Err())
	}
	return prevSeq, m, nil
}

func init() {
	transport.RegisterPayload(KindUpdate, updateCodec{})
	transport.RegisterPayload(KindUpdateBatch, batchCodec{})
}

func (updateCodec) Encode(dst []byte, payload any) ([]byte, error) {
	u, ok := payload.(Update)
	if !ok {
		return dst, fmt.Errorf("dsm: update codec: payload is %T", payload)
	}
	dst = transport.AppendUint32(dst, uint32(u.From))
	dst = transport.AppendUint64(dst, u.Seq)
	dst = append(dst, byte(u.Op))
	dst = append(dst, byte(u.Label))
	dst = transport.AppendString(dst, u.Loc)
	dst = transport.AppendUint64(dst, uint64(u.Value))
	dst = transport.AppendUint32(dst, uint32(u.TS.Len()))
	dst = u.TS.Encode(dst)
	return appendDeps(dst, u.PrevSeq, u.Deps), nil
}

func (updateCodec) Decode(data []byte) (any, error) {
	d := transport.NewDecoder(data)
	u := Update{
		From:  int(d.Uint32()),
		Seq:   d.Uint64(),
		Op:    UpdateOp(d.Byte()),
		Label: history.Label(d.Byte()),
		Loc:   d.String(),
	}
	u.Value = int64(d.Uint64())
	if n := int(d.Uint32()); n > 0 && d.Err() == nil {
		if n > d.Remaining()/8 {
			return nil, fmt.Errorf("dsm: update codec: timestamp length %d in %d bytes: %w",
				n, d.Remaining(), transport.ErrTruncated)
		}
		ts := vclock.New(n)
		for i := range ts {
			ts[i] = d.Uint64()
		}
		u.TS = ts
	}
	if d.Err() == nil {
		prevSeq, deps, err := decodeDeps(d, "update")
		if err != nil {
			return nil, err
		}
		u.PrevSeq, u.Deps = prevSeq, deps
	}
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("dsm: update codec: %w", err)
	}
	return u, nil
}

// batchCodec is the wire codec for KindUpdateBatch payloads. Layout, all
// big-endian — the per-entry sender ID is hoisted into the header since every
// entry of a batch comes from the same process:
//
//	u32 From | u64 FirstSeq | u64 Count |
//	u32 depsN | [ u64 PrevSeq | u32 nAct | nAct*u32 ids | nAct*nAct*u64 sub ] |
//	u32 nEntries | nEntries * ( u64 Seq | u8 Op | u8 Label | str Loc | u64 Value | u32 tsLen | tsLen*u64 TS )
//
// A scoped causal batch hoists its dependency metadata into the header
// (depsN > 0), encoded sparsely over the matrix's active indices exactly as
// in updateCodec; its entries carry no per-entry timestamps. Decode bounds
// nEntries, tsLen, nAct, and depsN, so a malformed length prefix fails with
// ErrTruncated instead of attempting a huge allocation.
type batchCodec struct{}

func (batchCodec) Encode(dst []byte, payload any) ([]byte, error) {
	b, ok := payload.(UpdateBatch)
	if !ok {
		return dst, fmt.Errorf("dsm: batch codec: payload is %T", payload)
	}
	dst = transport.AppendUint32(dst, uint32(b.From))
	dst = transport.AppendUint64(dst, b.FirstSeq)
	dst = transport.AppendUint64(dst, b.Count)
	dst = appendDeps(dst, b.PrevSeq, b.Deps)
	dst = transport.AppendUint32(dst, uint32(len(b.Updates)))
	for _, u := range b.Updates {
		dst = transport.AppendUint64(dst, u.Seq)
		dst = append(dst, byte(u.Op))
		dst = append(dst, byte(u.Label))
		dst = transport.AppendString(dst, u.Loc)
		dst = transport.AppendUint64(dst, uint64(u.Value))
		dst = transport.AppendUint32(dst, uint32(u.TS.Len()))
		dst = u.TS.Encode(dst)
	}
	return dst, nil
}

// minBatchEntry is the smallest possible encoded entry: seq + op + label +
// empty location + value + zero-length timestamp.
const minBatchEntry = 8 + 1 + 1 + 4 + 8 + 4

func (batchCodec) Decode(data []byte) (any, error) {
	d := transport.NewDecoder(data)
	b := UpdateBatch{
		From:     int(d.Uint32()),
		FirstSeq: d.Uint64(),
		Count:    d.Uint64(),
	}
	if d.Err() == nil {
		prevSeq, deps, err := decodeDeps(d, "batch")
		if err != nil {
			return nil, err
		}
		b.PrevSeq, b.Deps = prevSeq, deps
	}
	nEntries := int(d.Uint32())
	if d.Err() == nil && nEntries > d.Remaining()/minBatchEntry {
		return nil, fmt.Errorf("dsm: batch codec: %d entries in %d bytes: %w",
			nEntries, d.Remaining(), transport.ErrTruncated)
	}
	if nEntries > 0 && d.Err() == nil {
		// Draw the entry slice from the batch pool: the receiving node's
		// apply path returns it once the batch has fully applied (see
		// updateSlicePool).
		b.Updates = getUpdateSlice(nEntries)
	}
	for i := 0; i < nEntries && d.Err() == nil; i++ {
		u := Update{
			From:  b.From,
			Seq:   d.Uint64(),
			Op:    UpdateOp(d.Byte()),
			Label: history.Label(d.Byte()),
			Loc:   d.String(),
		}
		u.Value = int64(d.Uint64())
		tsLen := int(d.Uint32())
		if d.Err() == nil && tsLen > d.Remaining()/8 {
			return nil, fmt.Errorf("dsm: batch codec: timestamp length %d in %d bytes: %w",
				tsLen, d.Remaining(), transport.ErrTruncated)
		}
		if tsLen > 0 && d.Err() == nil {
			ts := vclock.New(tsLen)
			for k := range ts {
				ts[k] = d.Uint64()
			}
			u.TS = ts
		}
		b.Updates = append(b.Updates, u)
	}
	if err := d.Err(); err != nil {
		putUpdateSlice(b.Updates)
		return nil, fmt.Errorf("dsm: batch codec: %w", err)
	}
	return b, nil
}
