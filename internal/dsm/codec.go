package dsm

import (
	"fmt"

	"mixedmem/internal/transport"
	"mixedmem/internal/vclock"
)

// updateCodec is the wire codec for KindUpdate payloads, registered so wire
// transports (internal/transport/tcp) can carry memory updates between OS
// processes. Layout, all big-endian:
//
//	u32 From | u64 Seq | u8 Op | str Loc | u64 Value | u32 tsLen | tsLen*u64 TS |
//	u32 depsN | [ u64 PrevSeq | depsN*depsN*u64 Deps ]
//
// A PRAMOnly or timestamp-elided update has tsLen 0 and decodes with a nil
// timestamp, exactly like the in-process value it mirrors. depsN is 0 unless
// the update carries scoped-causal metadata, in which case the chain pointer
// and the row-major address matrix follow.
type updateCodec struct{}

// maxDepsN bounds the decoded dependency-matrix dimension. Real systems are
// far smaller; the bound keeps a hostile length prefix from driving an n²
// allocation before the remaining-bytes check can catch it.
const maxDepsN = 4096

// decodeDeps parses the trailing depsN | [PrevSeq | matrix] section shared by
// both codecs. It returns zeroes when the section is absent (depsN == 0).
func decodeDeps(d *transport.Decoder, what string) (uint64, vclock.Matrix, error) {
	depsN := int(d.Uint32())
	if d.Err() != nil || depsN == 0 {
		return 0, nil, nil
	}
	if depsN > maxDepsN || depsN > d.Remaining()/8/depsN {
		return 0, nil, fmt.Errorf("dsm: %s codec: %dx%d dependency matrix in %d bytes: %w",
			what, depsN, depsN, d.Remaining(), transport.ErrTruncated)
	}
	prevSeq := d.Uint64()
	m := vclock.NewMatrix(depsN)
	for p := 0; p < depsN && d.Err() == nil; p++ {
		for k := 0; k < depsN; k++ {
			m.Set(p, k, d.Uint64())
		}
	}
	if d.Err() != nil {
		return 0, nil, fmt.Errorf("dsm: %s codec: dependency matrix: %w", what, d.Err())
	}
	return prevSeq, m, nil
}

func init() {
	transport.RegisterPayload(KindUpdate, updateCodec{})
	transport.RegisterPayload(KindUpdateBatch, batchCodec{})
}

func (updateCodec) Encode(dst []byte, payload any) ([]byte, error) {
	u, ok := payload.(Update)
	if !ok {
		return dst, fmt.Errorf("dsm: update codec: payload is %T", payload)
	}
	dst = transport.AppendUint32(dst, uint32(u.From))
	dst = transport.AppendUint64(dst, u.Seq)
	dst = append(dst, byte(u.Op))
	dst = transport.AppendString(dst, u.Loc)
	dst = transport.AppendUint64(dst, uint64(u.Value))
	dst = transport.AppendUint32(dst, uint32(u.TS.Len()))
	dst = u.TS.Encode(dst)
	dst = transport.AppendUint32(dst, uint32(u.Deps.Len()))
	if u.Deps != nil {
		dst = transport.AppendUint64(dst, u.PrevSeq)
		dst = u.Deps.Encode(dst)
	}
	return dst, nil
}

func (updateCodec) Decode(data []byte) (any, error) {
	d := transport.NewDecoder(data)
	u := Update{
		From: int(d.Uint32()),
		Seq:  d.Uint64(),
		Op:   UpdateOp(d.Byte()),
		Loc:  d.String(),
	}
	u.Value = int64(d.Uint64())
	if n := int(d.Uint32()); n > 0 && d.Err() == nil {
		if n > d.Remaining()/8 {
			return nil, fmt.Errorf("dsm: update codec: timestamp length %d in %d bytes: %w",
				n, d.Remaining(), transport.ErrTruncated)
		}
		ts := vclock.New(n)
		for i := range ts {
			ts[i] = d.Uint64()
		}
		u.TS = ts
	}
	if d.Err() == nil {
		prevSeq, deps, err := decodeDeps(d, "update")
		if err != nil {
			return nil, err
		}
		u.PrevSeq, u.Deps = prevSeq, deps
	}
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("dsm: update codec: %w", err)
	}
	return u, nil
}

// batchCodec is the wire codec for KindUpdateBatch payloads. Layout, all
// big-endian — the per-entry sender ID is hoisted into the header since every
// entry of a batch comes from the same process:
//
//	u32 From | u64 FirstSeq | u64 Count | u32 depsN | [ u64 PrevSeq | depsN*depsN*u64 Deps ] |
//	u32 nEntries | nEntries * ( u64 Seq | u8 Op | str Loc | u64 Value | u32 tsLen | tsLen*u64 TS )
//
// A scoped causal batch hoists its dependency metadata into the header
// (depsN > 0); its entries carry no per-entry timestamps. Decode bounds
// nEntries, tsLen, and depsN by the bytes actually remaining, so a malformed
// length prefix fails with ErrTruncated instead of attempting a huge
// allocation.
type batchCodec struct{}

func (batchCodec) Encode(dst []byte, payload any) ([]byte, error) {
	b, ok := payload.(UpdateBatch)
	if !ok {
		return dst, fmt.Errorf("dsm: batch codec: payload is %T", payload)
	}
	dst = transport.AppendUint32(dst, uint32(b.From))
	dst = transport.AppendUint64(dst, b.FirstSeq)
	dst = transport.AppendUint64(dst, b.Count)
	dst = transport.AppendUint32(dst, uint32(b.Deps.Len()))
	if b.Deps != nil {
		dst = transport.AppendUint64(dst, b.PrevSeq)
		dst = b.Deps.Encode(dst)
	}
	dst = transport.AppendUint32(dst, uint32(len(b.Updates)))
	for _, u := range b.Updates {
		dst = transport.AppendUint64(dst, u.Seq)
		dst = append(dst, byte(u.Op))
		dst = transport.AppendString(dst, u.Loc)
		dst = transport.AppendUint64(dst, uint64(u.Value))
		dst = transport.AppendUint32(dst, uint32(u.TS.Len()))
		dst = u.TS.Encode(dst)
	}
	return dst, nil
}

// minBatchEntry is the smallest possible encoded entry: seq + op + empty
// location + value + zero-length timestamp.
const minBatchEntry = 8 + 1 + 4 + 8 + 4

func (batchCodec) Decode(data []byte) (any, error) {
	d := transport.NewDecoder(data)
	b := UpdateBatch{
		From:     int(d.Uint32()),
		FirstSeq: d.Uint64(),
		Count:    d.Uint64(),
	}
	if d.Err() == nil {
		prevSeq, deps, err := decodeDeps(d, "batch")
		if err != nil {
			return nil, err
		}
		b.PrevSeq, b.Deps = prevSeq, deps
	}
	nEntries := int(d.Uint32())
	if d.Err() == nil && nEntries > d.Remaining()/minBatchEntry {
		return nil, fmt.Errorf("dsm: batch codec: %d entries in %d bytes: %w",
			nEntries, d.Remaining(), transport.ErrTruncated)
	}
	if nEntries > 0 && d.Err() == nil {
		b.Updates = make([]Update, 0, nEntries)
	}
	for i := 0; i < nEntries && d.Err() == nil; i++ {
		u := Update{
			From: b.From,
			Seq:  d.Uint64(),
			Op:   UpdateOp(d.Byte()),
			Loc:  d.String(),
		}
		u.Value = int64(d.Uint64())
		tsLen := int(d.Uint32())
		if d.Err() == nil && tsLen > d.Remaining()/8 {
			return nil, fmt.Errorf("dsm: batch codec: timestamp length %d in %d bytes: %w",
				tsLen, d.Remaining(), transport.ErrTruncated)
		}
		if tsLen > 0 && d.Err() == nil {
			ts := vclock.New(tsLen)
			for k := range ts {
				ts[k] = d.Uint64()
			}
			u.TS = ts
		}
		b.Updates = append(b.Updates, u)
	}
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("dsm: batch codec: %w", err)
	}
	return b, nil
}
