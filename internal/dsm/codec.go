package dsm

import (
	"fmt"

	"mixedmem/internal/transport"
	"mixedmem/internal/vclock"
)

// updateCodec is the wire codec for KindUpdate payloads, registered so wire
// transports (internal/transport/tcp) can carry memory updates between OS
// processes. Layout, all big-endian:
//
//	u32 From | u64 Seq | u8 Op | str Loc | u64 Value | u32 tsLen | tsLen*u64 TS
//
// A PRAMOnly update has tsLen 0 and decodes with a nil timestamp, exactly
// like the in-process value it mirrors.
type updateCodec struct{}

func init() {
	transport.RegisterPayload(KindUpdate, updateCodec{})
}

func (updateCodec) Encode(dst []byte, payload any) ([]byte, error) {
	u, ok := payload.(Update)
	if !ok {
		return dst, fmt.Errorf("dsm: update codec: payload is %T", payload)
	}
	dst = transport.AppendUint32(dst, uint32(u.From))
	dst = transport.AppendUint64(dst, u.Seq)
	dst = append(dst, byte(u.Op))
	dst = transport.AppendString(dst, u.Loc)
	dst = transport.AppendUint64(dst, uint64(u.Value))
	dst = transport.AppendUint32(dst, uint32(u.TS.Len()))
	dst = u.TS.Encode(dst)
	return dst, nil
}

func (updateCodec) Decode(data []byte) (any, error) {
	d := transport.NewDecoder(data)
	u := Update{
		From: int(d.Uint32()),
		Seq:  d.Uint64(),
		Op:   UpdateOp(d.Byte()),
		Loc:  d.String(),
	}
	u.Value = int64(d.Uint64())
	if n := int(d.Uint32()); n > 0 && d.Err() == nil {
		ts := vclock.New(n)
		for i := range ts {
			ts[i] = d.Uint64()
		}
		u.TS = ts
	}
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("dsm: update codec: %w", err)
	}
	return u, nil
}
