package dsm

import (
	"sync"
	"time"

	"mixedmem/internal/history"
	"mixedmem/internal/network"
	"mixedmem/internal/obs"
	"mixedmem/internal/transport"
	"mixedmem/internal/vclock"
)

// KindUpdateBatch is the fabric message kind that carries many updates from
// one sender in a single frame. Batching amortizes the per-message cost the
// E6/E8 experiments measure — fabric queue operations, TCP frames, receive
// dispatches, and node-lock acquisitions — without changing what any read can
// observe: mixed consistency (Definition 4) constrains order and visibility
// at reads, not message granularity.
const KindUpdateBatch = "update-batch"

// BatchConfig configures the per-destination update outbox. The zero value
// disables batching entirely: every write broadcasts immediately, exactly as
// before the outbox existed.
type BatchConfig struct {
	// Enabled turns the outbox on. Writes then enqueue into per-destination
	// batches that flush on the thresholds below and at every
	// synchronization boundary (lock release, barrier arrival, await
	// registration, explicit FlushUpdates).
	Enabled bool
	// MaxUpdates flushes a destination's batch once it holds this many
	// live entries (default 64).
	MaxUpdates int
	// MaxBytes flushes a destination's batch once its modeled wire size
	// reaches this many bytes (default 16384).
	MaxBytes int
	// Linger bounds how long an update may sit in the outbox with no
	// synchronization boundary to flush it (default 1ms). The linger
	// flusher guarantees progress for programs that poll with plain reads
	// instead of awaits.
	Linger time.Duration
	// NoCoalesce disables last-writer-wins coalescing of same-location
	// OpSet entries within a batch. Coalescing is on by default: a
	// superseded plain write is dropped from the batch (its sequence number
	// is still accounted through the batch's Count), so readers skip values
	// the sender overwrote before the flush — a skip the condition-variable
	// wakeup race already permits in unbatched executions.
	NoCoalesce bool
}

// WithDefaults returns the config with unset thresholds filled in, exactly
// as NewNode resolves them.
func (c BatchConfig) WithDefaults() BatchConfig {
	if c.MaxUpdates <= 0 {
		c.MaxUpdates = 64
	}
	if c.MaxBytes <= 0 {
		c.MaxBytes = 16 << 10
	}
	if c.Linger <= 0 {
		c.Linger = time.Millisecond
	}
	return c
}

// UpdateBatch is the payload of a KindUpdateBatch message: a contiguous run
// of one sender's updates for one destination, possibly with superseded
// same-location OpSet entries coalesced away.
//
// FirstSeq and Count describe the covered run of per-destination enqueued
// updates, including coalesced-away ones, so the receiver's counting
// primitives (barrier count vectors, lazy-lock waits) account every original
// update. Under full broadcast the covered per-sender sequence numbers are
// exactly [FirstSeq, FirstSeq+Count-1]; under scoped placement the run may
// have per-destination holes and only Count is meaningful. The surviving
// entries each carry their own Seq/TS, and the entry with the highest Seq is
// always the sender's latest covered write (the latest write is never
// coalesced away), which is what the receiver's PRAM clock advances to.
//
// A batch is kind-homogeneous: either every covered update is causal
// (dependency-stamped) or every one is timestamp-elided. A causal batch
// hoists its dependency metadata to the batch level — PrevSeq chains it after
// the sender's previous causal update addressed to this destination, and Deps
// is the address-matrix snapshot captured when the batch's latest covered
// write was enqueued, under the same lock hold as that write's matrix bumps.
// One matrix covers the whole run because a sender's matrix is monotone: the
// latest write's dependencies dominate every earlier covered entry's. The
// snapshot is never taken at flush time — between enqueue and flush the
// sender can absorb matrices from applied remote updates, and a flush-time
// snapshot could name an update Y that itself (transitively) waits on a write
// parked in this very batch, leaving the receiver's causal view in a
// permanent circular wait (batch waits on Y, Y waits on the batch). An
// elided batch leaves both zero.
type UpdateBatch struct {
	From     int
	FirstSeq uint64
	Count    uint64
	// PrevSeq is the sender's per-destination causal chain pointer (scoped
	// causal batches only): the Seq of the previous causal update the sender
	// addressed to this destination, 0 for the first.
	PrevSeq uint64
	// Deps is the sender's address matrix snapshot (scoped causal batches
	// only); see Update.Deps for the sharing contract.
	Deps    vclock.Matrix
	Updates []Update
}

// encodedSize models the wire size of the batch: header plus entries,
// mirroring batchCodec's layout. The per-entry sender ID and dependency
// section are hoisted into the header, which is the (small) wire win of
// batching on top of the per-frame overhead it removes.
func (b UpdateBatch) encodedSize() int {
	s := 28 // From + FirstSeq + Count + depsN prefix + nEntries
	if b.Deps != nil {
		s += 8 + b.Deps.ActiveEncodedSize() // PrevSeq + sparse matrix
	}
	for _, u := range b.Updates {
		s += u.encodedSize() - 8 // From and the depsN prefix live in the header
	}
	return s
}

// updateSlicePool recycles the []Update slices that carry batch payloads
// (DESIGN.md §12 pool lifecycle). A flush copies the destination's fixed
// ring into a pooled slice; ownership then travels with the message:
//
//   - sim fabric: the receiver's applyBatch/drainCausalLocked returns the
//     slice once the batch has fully applied (by-reference delivery — the
//     sender retains nothing after Send);
//   - tcp: the sending transport returns it after encoding the frame
//     (transport.RecyclePayload), and the receiving codec draws its decode
//     slice from this same pool, to be returned by its applyBatch.
//
// A put slice must not be referenced by anyone else; entries are cleared so
// pooled slices pin no update payloads. The pool is a plain mutex-guarded
// freelist rather than a sync.Pool so get/put are themselves alloc-free
// (sync.Pool's pointer boxing costs an allocation per put).
var updateSlicePool struct {
	mu   sync.Mutex
	free [][]Update
}

func getUpdateSlice(capHint int) []Update {
	p := &updateSlicePool
	p.mu.Lock()
	for i := len(p.free) - 1; i >= 0; i-- {
		s := p.free[i]
		if cap(s) >= capHint {
			p.free[i] = p.free[len(p.free)-1]
			p.free[len(p.free)-1] = nil
			p.free = p.free[:len(p.free)-1]
			p.mu.Unlock()
			return s[:0]
		}
	}
	p.mu.Unlock()
	return make([]Update, 0, capHint)
}

func putUpdateSlice(s []Update) {
	if cap(s) == 0 {
		return
	}
	s = s[:cap(s)]
	clear(s)
	p := &updateSlicePool
	p.mu.Lock()
	if len(p.free) < 64 {
		p.free = append(p.free, s[:0])
	}
	p.mu.Unlock()
}

func init() {
	// The tcp transport recycles a batch payload once the frame is encoded;
	// the sim fabric delivers by reference and the receiver recycles
	// instead (see updateSlicePool).
	transport.RegisterRecycler(KindUpdateBatch, func(payload any) {
		if b, ok := payload.(UpdateBatch); ok {
			putUpdateSlice(b.Updates)
		}
	})
}

// outboxDest buffers the pending batch for one destination. All destinations
// share the node-level outbox lock — the bottom of the documented lock order
// (clockMu -> shard.mu -> outboxMu): writers enqueue under the clock lock
// and are already serialized by it, so per-destination locks would buy no
// writer parallelism while costing one lock pair per destination per write;
// a single outbox lock keeps the linger flusher decoupled from the
// clock-guarded hot paths at one lock pair per write. entries is a reusable
// ring backing sized for MaxUpdates at construction: a flush copies the live
// prefix into a pooled slice and truncates, so steady-state flushing
// allocates nothing and the backing is never handed to a message.
type outboxDest struct {
	entries []Update
	// setIdx maps a location to the index in entries of its latest live
	// OpSet entry, the coalescing target. A non-OpSet write to the location
	// deletes the mapping so commutative adds keep their position relative
	// to the sets around them.
	setIdx   map[string]int
	firstSeq uint64
	// lastSeq is the highest covered sequence number (coalescing can park it
	// at any entry index, so it is tracked at enqueue time); the flush trace
	// event ships the inclusive [firstSeq, lastSeq] range.
	lastSeq uint64
	count   uint64
	bytes   int
	// causal marks the pending batch's kind under scoped placement (batches
	// are kind-homogeneous; outboxAdd flushes on a kind change), and
	// prevSeq is the causal chain pointer captured when the batch started.
	causal  bool
	prevSeq uint64
	// slow marks a slow-label batch (default mode): entries are
	// timestamp-elided and the receiver delivers the whole batch on the
	// sender's FIFO alone, so slow and stamped entries must never share a
	// batch — outboxAdd flushes on a label-class change.
	slow bool
	// deps is the address-matrix snapshot of the batch's latest covered
	// write, captured at enqueue time (shared with the write's other
	// destinations; receivers only merge from it). depsEpoch records
	// Node.addrEpoch at capture, so outboxAdd can detect that the node
	// absorbed a remote matrix merge after the snapshot and split the batch
	// instead of letting a newer snapshot cover older parked writes.
	deps      vclock.Matrix
	depsEpoch uint64
}

func newOutboxDest(maxUpdates int) *outboxDest {
	// Preallocate the backing up to a sane bound; configs with huge
	// MaxUpdates (tests disabling threshold flushes) grow on demand, and
	// the backing persists across flushes either way.
	capHint := maxUpdates
	if capHint > 256 {
		capHint = 256
	}
	return &outboxDest{
		entries: make([]Update, 0, capHint),
		setIdx:  make(map[string]int),
	}
}

// outboxAdd adds u to destination j's pending batch, coalescing into the
// location's live OpSet entry when allowed, and flushes inline when a
// threshold is crossed. The caller holds the clock lock (sequence numbers
// must hit the outbox in assignment order) and the outbox lock — one
// acquisition covers all destinations of a write. causal marks the entry's kind under scoped placement; a kind
// change flushes the pending batch first, so every batch stays homogeneous.
// Causal entries ride without per-entry dependency metadata — the
// batch-level Deps is deps, the caller's address-matrix snapshot taken under
// the same lock hold as this write's bumps, refreshed at every enqueue (the
// latest covered write's dependencies dominate the rest); the caller must
// have recorded the chain pointer in n.prevBuf[j] already. A pending causal
// batch whose snapshot predates a remote matrix merge (addrEpoch moved) is
// flushed before u starts a fresh batch: this write's snapshot may name a
// just-merged update that itself waits on a write parked in the old batch,
// and shipping them under one matrix would hand the receiver a circular
// wait.
func (n *Node) outboxAddLocked(j int, u Update, causal bool, deps vclock.Matrix) {
	ob := n.outbox[j]
	slow := !n.pramOnly && !n.scopedCausal && u.Label == history.LabelSlow
	if ob.count > 0 {
		switch {
		case ob.slow != slow:
			n.flushDestLocked(j, ob)
		case n.scopedCausal &&
			(ob.causal != causal || (ob.causal && ob.depsEpoch != n.addrEpoch)):
			n.flushDestLocked(j, ob)
		}
	}
	if ob.count == 0 {
		ob.firstSeq = u.Seq
		ob.causal = causal
		ob.slow = slow
		if causal && n.scopedCausal {
			ob.prevSeq = n.prevBuf[j]
		}
	}
	if causal && n.scopedCausal {
		ob.deps = deps
		ob.depsEpoch = n.addrEpoch
	}
	ob.count++
	ob.lastSeq = u.Seq
	coalesced := false
	if u.Op == OpSet && !n.batch.NoCoalesce {
		if i, ok := ob.setIdx[u.Loc]; ok {
			ob.bytes += u.encodedSize() - ob.entries[i].encodedSize()
			ob.entries[i] = u
			coalesced = true
		} else {
			ob.setIdx[u.Loc] = len(ob.entries)
		}
	} else {
		// An add (or coalescing off) bars later sets from jumping over it:
		// the location's next OpSet must append after this entry.
		delete(ob.setIdx, u.Loc)
	}
	if !coalesced {
		ob.entries = append(ob.entries, u)
		ob.bytes += u.encodedSize()
	}
	if n.obs != nil {
		n.obs.RecordLoc(obs.EvEnqueue, uint8(u.Label), uint16(j), u.Loc, u.Seq,
			uint64(len(ob.entries)), 0)
	}
	if len(ob.entries) >= n.batch.MaxUpdates || ob.bytes >= n.batch.MaxBytes {
		n.flushDestLocked(j, ob)
	}
}

// flushDestLocked sends destination j's pending batch, if any; the caller
// holds outboxMu. A batch that covers a single update goes out as a plain
// KindUpdate frame — the receive path and wire format are then identical to
// unbatched operation. Multi-entry batches copy the ring's live prefix into
// a pooled slice (see updateSlicePool for who returns it); the ring backing
// itself is reused forever.
func (n *Node) flushDestLocked(j int, ob *outboxDest) {
	if ob.count == 0 {
		return
	}
	scopedCausal := n.scopedCausal && ob.causal
	if ob.count == 1 && len(ob.entries) == 1 {
		u := ob.entries[0]
		if scopedCausal {
			// Ship the enqueue-time snapshot, never the current matrix: it
			// may have absorbed merges since that could close a dependency
			// cycle through this very write (see outboxAdd).
			u.PrevSeq = ob.prevSeq
			u.Deps = ob.deps
		}
		_ = n.fabric.Send(network.Message{
			From: n.id, To: j, Kind: KindUpdate,
			Payload: u, Size: u.encodedSize(),
		})
	} else {
		out := getUpdateSlice(len(ob.entries))
		out = append(out, ob.entries...)
		b := UpdateBatch{
			From:     n.id,
			FirstSeq: ob.firstSeq,
			Count:    ob.count,
			Updates:  out,
		}
		if scopedCausal {
			b.PrevSeq = ob.prevSeq
			b.Deps = ob.deps
		}
		_ = n.fabric.Send(network.Message{
			From: n.id, To: j, Kind: KindUpdateBatch,
			Payload: b, Size: b.encodedSize(),
		})
	}
	if n.obs != nil {
		n.obs.Record(obs.EvFlush, 0, uint16(j), obs.NoLoc, ob.firstSeq, ob.lastSeq, ob.count)
	}
	ob.entries = ob.entries[:0]
	clear(ob.setIdx)
	ob.count = 0
	ob.bytes = 0
	ob.deps = nil
}

// flushAllLocked flushes every destination's pending batch; the caller holds
// the clock lock (lock order: clockMu -> outboxMu). No-op when batching
// is disabled.
func (n *Node) flushAllLocked() {
	if n.outbox == nil {
		return
	}
	n.outboxMu.Lock()
	for j, ob := range n.outbox {
		if j == n.id || ob == nil {
			continue
		}
		n.flushDestLocked(j, ob)
	}
	n.outboxMu.Unlock()
}

// FlushUpdates sends every pending outbox batch immediately. It is the
// synchronization-boundary hook: the lock client calls it before every
// release, the barrier client before reporting its sent counts, and awaits
// call it on registration, so no update a peer must observe to make progress
// is ever parked in the outbox past a synchronization point. It is a no-op
// when batching is disabled. It takes only the outbox lock, so the linger
// flusher never contends with the clock-guarded hot paths.
func (n *Node) FlushUpdates() {
	if !n.batch.Enabled {
		return
	}
	n.outboxMu.Lock()
	for j, ob := range n.outbox {
		if j == n.id || ob == nil {
			continue
		}
		n.flushDestLocked(j, ob)
	}
	n.outboxMu.Unlock()
}

// lingerLoop is the outbox's progress guarantee: every Linger interval it
// flushes whatever the thresholds and synchronization boundaries have not,
// bounding the staleness a polling reader can observe.
func (n *Node) lingerLoop() {
	t := time.NewTicker(n.batch.Linger)
	defer t.Stop()
	for {
		select {
		case <-n.flushQuit:
			return
		case <-t.C:
			n.FlushUpdates()
		}
	}
}

// deliveryGroup is one causal-delivery unit in the pending buffer: a single
// update or a whole received batch. A batch is applied to the causal view
// atomically once its first covered sequence number is next from its sender
// and its latest entry's dependencies are satisfied — delivering a contiguous
// per-sender run at the point its last element is deliverable is a legal
// causal schedule (delivery may be delayed, never reordered), and it is what
// lets coalesced batches keep the standard vector-clock condition.
type deliveryGroup struct {
	from     int
	firstSeq uint64
	lastSeq  uint64
	// count is the number of covered updates, including coalesced-away
	// ones; it feeds causalRecvd when the group applies.
	count uint64
	// ts is the group's dependency clock under full broadcast: the
	// timestamp of the latest entry, which dominates every other entry's
	// timestamp (one sender's clocks are monotone). Nil in scoped-causal
	// mode, where deps carries the dependencies instead.
	ts vclock.VC
	// prevSeq and deps are the scoped-causal dependency metadata (deps
	// non-nil marks the mode): the sender's per-destination chain pointer
	// and address-matrix snapshot. deps is shared with the in-flight
	// message and other groups — merge from it, never mutate it.
	prevSeq uint64
	deps    vclock.Matrix
	// slow marks a slow-label group: timestamp-elided, deliverable on the
	// sender's FIFO alone (no cross-sender wait), never fence-anchored.
	slow bool
	// one holds the update when batch is nil (the common singleton case,
	// kept inline to avoid a per-update slice allocation).
	one   Update
	batch []Update
	// parkedAt is the UnixNano at which the tracer saw the group miss its
	// delivery condition (0 = never parked, or tracing off); it times the
	// dep-wait trace span and is unused otherwise.
	parkedAt int64
}

// groupDeliverableLocked is the causal-broadcast condition generalized to a
// contiguous per-sender run: the run starts right after what we applied from
// the sender, and every cross-sender dependency of its latest entry is
// already applied.
//
// Scoped-causal groups (deps != nil) use the address-matrix discipline
// instead: the group must be next in the sender's per-destination chain
// (causalApplied holds last-applied sequence numbers, not counts, in this
// mode; the transport's FIFO channels make the chain equality exact), and
// this node's row of the shipped matrix — which by construction names only
// updates addressed to this node — must be covered by what the causal view
// has applied from every other sender.
func (n *Node) groupDeliverableLocked(g deliveryGroup) bool {
	if g.slow {
		// Slow memory: per-sender, per-location FIFO only. The group is
		// deliverable as soon as it is next in the sender's stream; it never
		// waits on other senders (it carries no timestamp to wait with).
		return n.causalApplied.get(g.from)+1 == g.firstSeq
	}
	if g.deps != nil {
		if n.causalApplied.get(g.from) != g.prevSeq {
			return false
		}
		need := g.deps.Row(n.id)
		for k := 0; k < n.n && k < need.Len(); k++ {
			if k != g.from && n.causalApplied.get(k) < need.Get(k) {
				return false
			}
		}
		return true
	}
	if n.causalApplied.get(g.from)+1 != g.firstSeq {
		return false
	}
	if g.ts.Len() != len(n.causalApplied) {
		return false
	}
	for k := 0; k < len(n.causalApplied); k++ {
		if k != g.from && g.ts.Get(k) > n.causalApplied.get(k) {
			return false
		}
	}
	return true
}
