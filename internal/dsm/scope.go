package dsm

import (
	"fmt"
	"sort"
)

// ScopeMap is the per-location reader registration that drives scoped
// placement — Section 6's closing remark that "the overhead of broadcasting
// messages for each update ... may be avoided by making optimizations based
// on the patterns of accesses to shared variables."
//
// Readers[loc] lists every process that reads loc; updates to loc are sent
// only to those processes (plus the writer's own replica, which always
// applies locally). CausalReaders[loc] is the subset that performs causal
// reads of loc: their copies arrive with full causal-dependency metadata and
// enter the causal view, while the remaining (PRAM-registered) readers get
// the timestamp-elided fast path — a per-location analogue of the global
// PRAMOnly mode.
//
// A location absent from Readers falls back to a full broadcast with causal
// metadata (the safe default), so a scope map only needs to name the
// locations whose traffic it wants to cut.
//
// The registration is a soundness contract, not just routing: a process must
// not read a location it is not registered for (it would see the zero
// value), and a PRAM-registered reader's reads of that location must need
// only PRAM guarantees — no later causal read may depend on what those reads
// observed, exactly as the PRAMOnly program class promises globally
// (Corollary 2). Node.TrackAccess can learn the map from a profiling run.
type ScopeMap struct {
	// Readers maps a location to every process that reads it.
	Readers map[string][]int
	// CausalReaders maps a location to the subset of its readers that
	// perform causal reads of it. Every entry must also appear in
	// Readers[loc]; Validate rejects a causal reader missing from its
	// location's reader scope.
	CausalReaders map[string][]int
}

// Validate checks the map against a system of n processes. pramOnly is the
// node's global PRAMOnly flag: a PRAMOnly node maintains no causal view, so
// registering causal readers with it is a configuration error.
func (s *ScopeMap) Validate(n int, pramOnly bool) error {
	for loc, readers := range s.Readers {
		for _, p := range readers {
			if p < 0 || p >= n {
				return fmt.Errorf("dsm: scope: reader %d of %q out of range [0,%d)", p, loc, n)
			}
		}
	}
	for loc, causal := range s.CausalReaders {
		if len(causal) == 0 {
			continue
		}
		if pramOnly {
			return fmt.Errorf("dsm: scope: causal readers registered for %q but the node is PRAMOnly (no causal view to deliver to)", loc)
		}
		registered := make(map[int]bool, len(s.Readers[loc]))
		for _, p := range s.Readers[loc] {
			registered[p] = true
		}
		for _, p := range causal {
			if p < 0 || p >= n {
				return fmt.Errorf("dsm: scope: causal reader %d of %q out of range [0,%d)", p, loc, n)
			}
			if !registered[p] {
				return fmt.Errorf("dsm: scope: causal reader %d of %q is not in the location's reader scope", p, loc)
			}
		}
	}
	return nil
}

// scopeEntry is a location's compiled destination lists for one node: the
// causal-registered readers (who get dependency-stamped updates) and the
// PRAM-registered readers (who get the timestamp-elided fast path). Both
// exclude the node itself and are deduplicated and sorted.
type scopeEntry struct {
	causal []int
	elided []int
}

// compile turns the validated map into per-location destination lists for
// node id of n, plus the fallback entry used for unregistered locations
// (full broadcast: causal to everyone unless the node is PRAMOnly).
func (s *ScopeMap) compile(id, n int, pramOnly bool) (map[string]scopeEntry, scopeEntry) {
	targets := make(map[string]scopeEntry, len(s.Readers))
	for loc, readers := range s.Readers {
		inCausal := make(map[int]bool)
		for _, p := range s.CausalReaders[loc] {
			inCausal[p] = true
		}
		var ent scopeEntry
		seen := make(map[int]bool, len(readers))
		for _, p := range readers {
			if p == id || seen[p] {
				continue
			}
			seen[p] = true
			if inCausal[p] && !pramOnly {
				ent.causal = append(ent.causal, p)
			} else {
				ent.elided = append(ent.elided, p)
			}
		}
		sort.Ints(ent.causal)
		sort.Ints(ent.elided)
		targets[loc] = ent
	}
	var all scopeEntry
	everyone := make([]int, 0, n-1)
	for j := 0; j < n; j++ {
		if j != id {
			everyone = append(everyone, j)
		}
	}
	if pramOnly {
		all.elided = everyone
	} else {
		all.causal = everyone
	}
	return targets, all
}

// AccessKind records how a node read a location, for scope learning.
type AccessKind uint8

// Access kinds; a location's entry is the OR of every kind observed.
const (
	// AccessPRAM marks a PRAM-labeled read or await.
	AccessPRAM AccessKind = 1 << iota
	// AccessCausal marks a causal-labeled read or await.
	AccessCausal
)

// Accessed returns a copy of the node's access log: every location this node
// read, with the kinds of reads observed. Empty unless the node was built
// with Config.TrackAccess. Merging the logs of all nodes yields a ScopeMap
// for the workload — see core.System.LearnedScope.
func (n *Node) Accessed() map[string]AccessKind {
	n.trackMu.Lock()
	defer n.trackMu.Unlock()
	out := make(map[string]AccessKind, len(n.track))
	for loc, k := range n.track {
		out[loc] = k
	}
	return out
}
