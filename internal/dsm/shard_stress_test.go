package dsm

import (
	"strconv"
	"sync"
	"testing"

	"mixedmem/internal/check"
	"mixedmem/internal/history"
	"mixedmem/internal/network"
)

// TestShardedApplyManyGoroutines drives many goroutines per node at
// distinct locations — spread across every shard of the sharded value map —
// while remote applies race against local writes and lock-free reads. Run
// under the race detector this exercises the shard locking discipline
// (clockMu -> shard.mu -> outboxMu) and the copy-on-write value maps;
// the recorded history must satisfy Definition 4 exactly as it did with the
// single-mutex node: the sharding is a performance change, not a semantic
// one.
func TestShardedApplyManyGoroutines(t *testing.T) {
	for _, tc := range []struct {
		name  string
		batch BatchConfig
	}{
		{name: "unbatched"},
		{name: "batched", batch: BatchConfig{Enabled: true, MaxUpdates: 8}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const (
				procs        = 3
				threadsPer   = 8
				opsPerThread = 60
				locsPer      = 2 * shardCount / threadsPer
			)
			trace := history.NewBuilder(procs)
			f, err := network.New(network.Config{Nodes: procs})
			if err != nil {
				t.Fatalf("network.New: %v", err)
			}
			nodes := make([]*Node, procs)
			for i := range nodes {
				nodes[i], err = NewNode(Config{ID: i, N: procs, Transport: f, Trace: trace, Batch: tc.batch})
				if err != nil {
					t.Fatalf("NewNode(%d): %v", i, err)
				}
			}
			defer func() {
				f.Close()
				for _, nd := range nodes {
					nd.Close()
				}
			}()

			var wg sync.WaitGroup
			for _, nd := range nodes {
				nd := nd
				ids := make([]int, threadsPer)
				for th := 0; th < threadsPer; th++ {
					ids[th] = th + 1
				}
				trace.Fork(nd.ID(), 0, ids)
				for th := 0; th < threadsPer; th++ {
					h := nd.Thread(th + 1)
					wg.Add(1)
					go func() {
						defer wg.Done()
						// Each thread owns a distinct location set; sets of
						// different threads land on different shards, so the
						// apply path runs genuinely in parallel.
						locs := make([]string, locsPer)
						for k := range locs {
							locs[k] = "t" + strconv.Itoa(h.ThreadID()) + "_" + strconv.Itoa(k)
						}
						for i := 0; i < opsPerThread; i++ {
							loc := locs[i%len(locs)]
							switch i % 4 {
							case 0, 1:
								h.Write(loc, int64(h.ID()*1_000_000+h.ThreadID()*1_000+i))
							case 2:
								h.ReadPRAM(loc)
							default:
								h.ReadCausal(loc)
							}
						}
					}()
				}
			}
			wg.Wait()
			for _, nd := range nodes {
				nd.FlushUpdates()
			}
			// Let every replica apply everything so the final causal reads
			// below observe a converged store.
			for _, nd := range nodes {
				min := make([]uint64, procs)
				for _, src := range nodes {
					if src.ID() != nd.ID() {
						min[src.ID()] = src.SentCounts()[nd.ID()]
					}
				}
				nd.WaitReceived(min)
			}
			for _, nd := range nodes {
				trace.Join(nd.ID(), 0, func() []int {
					ids := make([]int, threadsPer)
					for th := range ids {
						ids[th] = th + 1
					}
					return ids
				}())
				nd.ReadCausal("t1_0")
			}

			a, err := trace.History().Analyze()
			if err != nil {
				t.Fatalf("Analyze: %v", err)
			}
			if v := check.Mixed(a); len(v) != 0 {
				t.Fatalf("sharded runtime violated mixed consistency: %v", v[0])
			}
		})
	}
}

// TestShardedApplySingleLocationContention is the adversarial counterpart:
// every goroutine on every node hammers ONE location, so all traffic funnels
// through a single shard and the packed last-writer word is contended from
// every side. Verdicts must still come back clean.
func TestShardedApplySingleLocationContention(t *testing.T) {
	const (
		procs        = 3
		threadsPer   = 6
		opsPerThread = 50
	)
	trace := history.NewBuilder(procs)
	f, err := network.New(network.Config{Nodes: procs})
	if err != nil {
		t.Fatalf("network.New: %v", err)
	}
	nodes := make([]*Node, procs)
	for i := range nodes {
		nodes[i], err = NewNode(Config{ID: i, N: procs, Transport: f, Trace: trace})
		if err != nil {
			t.Fatalf("NewNode(%d): %v", i, err)
		}
	}
	defer func() {
		f.Close()
		for _, nd := range nodes {
			nd.Close()
		}
	}()

	ids := make([]int, threadsPer)
	for th := range ids {
		ids[th] = th + 1
	}
	var wg sync.WaitGroup
	for _, nd := range nodes {
		nd := nd
		trace.Fork(nd.ID(), 0, ids)
		for th := 0; th < threadsPer; th++ {
			h := nd.Thread(th + 1)
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < opsPerThread; i++ {
					switch i % 3 {
					case 0:
						h.Write("hot", int64(h.ID()*1_000_000+h.ThreadID()*1_000+i))
					case 1:
						h.ReadPRAM("hot")
					default:
						h.ReadCausal("hot")
					}
				}
			}()
		}
	}
	wg.Wait()
	for _, nd := range nodes {
		trace.Join(nd.ID(), 0, ids)
	}

	a, err := trace.History().Analyze()
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if v := check.Mixed(a); len(v) != 0 {
		t.Fatalf("contended sharded runtime violated mixed consistency: %v", v[0])
	}
}
