// Package dsm implements the replicated distributed-shared-memory runtime of
// Section 6 of the paper. Every process keeps a full local copy of the
// memory; writes update the local copy and broadcast an update message; both
// kinds of reads are non-blocking and return local values.
//
// Each replica maintains two views of memory:
//
//   - the PRAM view applies updates in receive order. The fabric's channels
//     are FIFO, so per-sender order is preserved and a read of this view is
//     a PRAM read ("returns the most recent value", Section 6);
//   - the causal view applies an update only when every causally preceding
//     update (in vector-timestamp order) has been applied, so a read of this
//     view is a causal read ("can return a value only if all preceding
//     operations have been performed locally", Section 6).
//
// A write carries the writer's dependency clock: component j counts the
// updates from process j the writer had applied when it wrote. Because both
// PRAM and causal reads only ever return applied values, the clock bounds
// every reads-from dependency of the write, which is exactly the condition
// causal delivery needs.
//
// The node also exposes the counting primitives the synchronization layer
// builds on: cumulative per-destination sent counts (for the barrier
// message-count protocol), waits on received/causally-applied counts (for
// barrier and lazy lock propagation), and per-location invalidation (for
// demand-driven lock propagation). Counter objects with commutative add
// operations (the Cholesky optimization of Section 5.3) are updates of kind
// add.
//
// # Concurrency structure
//
// The replica's state is partitioned so the hot paths never share a lock
// (DESIGN.md §12):
//
//   - location values live in power-of-two-sharded copy-on-write maps of
//     *cell; a cell holds both views' values and the PRAM last-writer as
//     atomics. Reads are lock-free: an atomic map-pointer load, a map
//     lookup, and an atomic value load. Shard mutexes serialize only
//     structural inserts (copy-on-write), invalidation bookkeeping, and
//     await registration.
//   - protocol state — the matrix/vector clocks, sent/received counters,
//     pending causal delivery groups, and the write log — lives under the
//     clock lock (Node.clockMu). deps/causalApplied are mutated only under
//     it but stored as atomics so the read paths can consult them without
//     taking it.
//   - the outbox (all destinations) shares one lock (Node.outboxMu), so
//     the linger flusher never contends with the clock-guarded hot paths.
//   - the observation fence is a lock-free atomic vector raised by CAS-max.
//
// Lock order: clockMu -> shard.mu -> outboxMu (each level optional,
// never taken in reverse). The fence, stats, and closed flag are atomics
// with no lock. Fence soundness across the lock-free read path relies on
// store order: appliers store a cell's last-writer before its value, and
// readers load the value before the last-writer, so any value a read
// observes is covered by the fence entry the read raises.
package dsm

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"mixedmem/internal/history"
	"mixedmem/internal/network"
	"mixedmem/internal/obs"
	"mixedmem/internal/transport"
	"mixedmem/internal/vclock"
)

// KindUpdate is the fabric message kind used for memory updates.
const KindUpdate = "update"

// UpdateOp distinguishes plain writes from commutative counter operations.
type UpdateOp int

// Update operation kinds.
const (
	// OpSet is an ordinary write: the location takes the given value.
	OpSet UpdateOp = iota + 1
	// OpAdd is a commutative increment/decrement: the value is added to
	// the location's current contents. Adds from different processes
	// commute, which is what lets the counter-object Cholesky variant drop
	// its critical sections (Section 5.3).
	OpAdd
	// OpAddFloat adds float64 values through their bit patterns: the
	// location's contents and the update value are interpreted with
	// math.Float64frombits, summed, and stored back with Float64bits.
	// Floating-point addition commutes up to rounding, which is the
	// paper's counter-object view of the Cholesky column updates.
	OpAddFloat
)

// Update is the payload broadcast for every write or counter operation.
type Update struct {
	// From is the writing process.
	From int
	// Seq is the per-sender update sequence number, starting at 1.
	Seq uint64
	// Op selects set or add semantics.
	Op UpdateOp
	// Label tags the update with its location's lattice point
	// (Config.Labels). LabelSlow is semantic: it marks a timestamp-elided
	// update whose causal-view delivery waits only on the sender's own
	// per-location FIFO, never on cross-sender dependencies — the slow-memory
	// contract. Every other value (including LabelNone for unlabeled
	// locations) is informational: the receiver's handling is driven by the
	// causal metadata the update carries.
	Label history.Label
	// Loc is the memory location.
	Loc string
	// Value is the written value or the addend.
	Value int64
	// TS is the writer's dependency clock after this update: TS[j] is the
	// number of updates from process j the writer has applied, counting
	// this one for j == From. It is set only under full broadcast; scoped
	// causal updates carry PrevSeq and Deps instead, and timestamp-elided
	// updates (PRAMOnly mode, or PRAM-registered readers of a scoped
	// location) carry neither.
	TS vclock.VC
	// PrevSeq, on a causal-scoped update, is the sequence number of the
	// sender's previous causal update addressed to this destination (0 for
	// the first): the per-destination delivery chain that keeps one
	// sender's updates ordered even though the destination's view of the
	// sender's sequence numbers has holes.
	PrevSeq uint64
	// Deps, on a causal-scoped update, is the sender's address-matrix
	// snapshot: Deps[p][k] is the latest update from process k addressed
	// to process p that this update transitively depends on. The receiver
	// waits on its own row and merges the whole matrix; it never mutates
	// it (the snapshot is shared across the write's destinations).
	Deps vclock.Matrix
}

// encodedSize models the wire size of an update for the latency model,
// mirroring updateCodec's layout byte for byte: From, Seq, Op, the label
// tag, the length-prefixed location, Value, the length-prefixed timestamp,
// the u32 depsN prefix the codec always writes (even when zero), and — for
// scoped-causal updates — the chain pointer and the sparse matrix (whose
// size tracks the active peers, not the cluster dimension).
func (u Update) encodedSize() int {
	s := 4 + 8 + 1 + 1 + (4 + len(u.Loc)) + 8 + (4 + u.TS.EncodedSize()) + 4
	if u.Deps != nil {
		s += 8 + u.Deps.ActiveEncodedSize()
	}
	return s
}

// Handler receives non-update messages delivered to a node. Handlers run on
// the node's receive loop and must not block; hand work that can wait to a
// channel or goroutine.
type Handler func(network.Message)

// Config configures a Node.
type Config struct {
	// ID is this process's identity, 0..N-1.
	ID int
	// N is the number of processes.
	N int
	// Transport is the message-passing substrate: the shared simulated
	// fabric (all nodes in one process) or a per-process wire transport
	// such as internal/transport/tcp (one node per OS process).
	Transport transport.Transport
	// Trace, when non-nil, records memory operations for the checker.
	// Programs recorded for checking must write distinct values per
	// location (the paper's convention).
	Trace *history.Builder
	// Handler receives non-update messages (lock and barrier protocol
	// traffic). May be nil when the node runs no synchronization protocol.
	Handler Handler
	// PRAMOnly elides vector timestamps from updates and maintains only
	// the PRAM view — the Section 6 optimization: "the extra overhead of
	// sending a timestamp in each message and performing the updates in
	// the timestamp order can be avoided if ... all read operations of the
	// program following a write operation are PRAM operations." Causal
	// reads and causal awaits degrade to their PRAM counterparts, so the
	// mode is only sound for programs certified PRAM-consistent (see
	// check.PRAMConsistent).
	PRAMOnly bool
	// Scope, when non-nil, restricts each location's updates to its
	// registered readers instead of broadcasting — Section 6's closing
	// remark on memory operations: "the overhead of broadcasting messages
	// for each update ... may be avoided by making optimizations based on
	// the patterns of accesses to shared variables." Causal-registered
	// readers receive dependency-stamped updates delivered through the
	// causal view; PRAM-registered readers take the timestamp-elided fast
	// path end to end; unregistered locations broadcast with full causal
	// metadata. Lock-based propagation is unsupported under a scope; the
	// barrier count-vector protocol works unchanged because it counts
	// per-destination sends. See ScopeMap for the registration contract.
	Scope *ScopeMap
	// Labels maps locations to points of the consistency lattice
	// Slow < PRAM < Causal < SC, selecting both the propagation protocol of
	// the location's writes and the read each Node.Read of it performs:
	//
	//   - LabelSlow: writes are timestamp-elided and the location's
	//     causal-view delivery waits only on the sender's own FIFO — the
	//     slow-memory contract (per-location per-writer order, nothing
	//     across locations). Reads take the lock-free local path and never
	//     raise the observation fence. Like a PRAM-registered scoped
	//     location, a Slow location must feed no causal chain: no later
	//     causal read may depend on what its reads observed.
	//   - LabelPRAM: writes propagate with full causal metadata (so the
	//     observation fence stays sound); reads are PRAM reads.
	//   - LabelCausal: the default — identical to an unlabeled location.
	//   - LabelSC: the location lives at its owner replica (a deterministic
	//     hash of the location name) and every access is a blocking round
	//     trip there, the central-server protocol of sequential consistency.
	//     SC locations never broadcast; replicas other than the owner hold
	//     no copy, so only SC accesses may touch them.
	//
	// Every node of a system must be built with the same map. Locations
	// absent from the map default to Causal. A label must be one of the four
	// lattice points; SC locations must not appear in Scope.
	Labels map[string]history.Label
	// TrackAccess records every location this node reads and with which
	// labels, so a profiling run can learn a ScopeMap for the workload
	// (Accessed / core.System.LearnedScope).
	TrackAccess bool
	// Batch configures the per-destination update outbox. The zero value
	// keeps the original behavior: one message per write per destination.
	Batch BatchConfig
	// Tracer, when non-nil, records protocol events (write issue, outbox
	// enqueue/flush, receive, apply, delivery-group release, waits, SC round
	// trips) into the node's fixed-capacity ring for offline happens-before
	// reconstruction. Nil — the default — compiles every record site down to
	// a nil check; the hot paths stay allocation-free either way.
	Tracer *obs.Tracer
}

// Stats counts a node's memory activity.
type Stats struct {
	Writes      uint64
	PRAMReads   uint64
	CausalReads uint64
	SlowReads   uint64
	SCReads     uint64
	SCWrites    uint64
	Awaits      uint64
	// Blocked is the total time spent waiting in Await, WaitReceived,
	// WaitCausalApplied, SC round trips, and invalidation stalls. It is
	// split by cause into the four fields below, which sum to it exactly:
	// every wait site adds the same measured interval to its cause counter
	// and to the aggregate.
	Blocked time.Duration
	// BlockedAwait is the Await/AwaitAtLeast portion of Blocked.
	BlockedAwait time.Duration
	// BlockedCausalWait covers the causal-machinery waits: observation-fence
	// raises on causal reads, WaitReceived, and WaitCausalApplied.
	BlockedCausalWait time.Duration
	// BlockedSC is the time spent inside SC owner round trips.
	BlockedSC time.Duration
	// BlockedInvalidation is the time reads stalled on lock-protocol
	// invalidations awaiting their update.
	BlockedInvalidation time.Duration
	// MalformedUpdates counts received scoped-causal updates whose
	// dependency matrix did not match the system size — a misconfigured or
	// corrupt peer. Such updates reach the PRAM view only; they are counted
	// as causally settled so counting primitives cannot stall on them, and
	// this counter is the diagnostic that it happened.
	MalformedUpdates uint64
}

// Sharding constants: locations hash into a power-of-two number of shards,
// so distinct-location operations land on distinct shard state. The PRAM
// last-writer is packed into one atomic word as from<<seqBits | seq, which
// caps per-sender sequence numbers at 2^48 — unreachable in practice.
const (
	shardCount = 32
	shardMask  = shardCount - 1
	seqBits    = 48
	seqMask    = (1 << seqBits) - 1
)

// cell holds one location's state in both views. Values are atomics so the
// read paths never lock: appliers mutate them under the clock lock (or, for
// commutative adds, with atomic add/CAS), readers load them directly.
type cell struct {
	pram   atomic.Int64
	causal atomic.Int64
	// last packs the update most recently applied to the PRAM view
	// (from<<seqBits | seq; zero means never anchored). PRAM reads raise
	// the observation fence with it. Appliers store last before the value
	// and readers load the value before last, so the fence entry a read
	// raises always covers the value it observed.
	last atomic.Uint64
}

func packLast(from int, seq uint64) uint64 {
	return uint64(from)<<seqBits | seq&seqMask
}

// shard is one partition of the location space. The value map is
// copy-on-write: lookups load the pointer atomically; inserts (rare — once
// per new location) copy the map under the shard mutex. The mutex also
// guards the invalidation table and await registration; invalidLen mirrors
// len(invalid) so the read fast path can skip the table without locking.
type shard struct {
	mu      sync.Mutex
	cond    *sync.Cond
	waiters atomic.Int32
	vals    atomic.Pointer[map[string]*cell]

	invalid    map[string]invalidation
	invalidLen atomic.Int32

	pramReads   atomic.Uint64
	causalReads atomic.Uint64
	slowReads   atomic.Uint64
}

// lookup returns the location's cell, or nil if it was never written.
func (sh *shard) lookup(loc string) *cell {
	return (*sh.vals.Load())[loc]
}

// cellFor returns the location's cell, inserting one with a copy-on-write
// map swap if needed. Safe under any lock level at or above shard.mu in the
// documented order.
func (sh *shard) cellFor(loc string) *cell {
	if c := sh.lookup(loc); c != nil {
		return c
	}
	sh.mu.Lock()
	old := *sh.vals.Load()
	if c := old[loc]; c != nil {
		sh.mu.Unlock()
		return c
	}
	next := make(map[string]*cell, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	c := new(cell)
	next[loc] = c
	sh.vals.Store(&next)
	sh.mu.Unlock()
	return c
}

// wake broadcasts the shard condition if any await is registered. Appliers
// call it after storing a value; the registration protocol in awaitValue
// (waiters incremented before the value check, broadcast after the store)
// makes the missed-wakeup window empty.
func (sh *shard) wake() {
	if sh.waiters.Load() == 0 {
		return
	}
	sh.mu.Lock()
	sh.cond.Broadcast()
	sh.mu.Unlock()
}

// shardIndex is FNV-1a over the location, masked to the shard count.
func shardIndex(loc string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(loc); i++ {
		h ^= uint32(loc[i])
		h *= 16777619
	}
	return h & shardMask
}

// avc is a vector clock stored as atomics: mutated only under the clock
// lock, readable without it. raise is the exception — the observation fence
// is raised by reader threads with a CAS-max and never needs the lock.
type avc []atomic.Uint64

func newAVC(n int) avc { return make(avc, n) }

func (v avc) get(j int) uint64    { return v[j].Load() }
func (v avc) set(j int, x uint64) { v[j].Store(x) }
func (v avc) raise(j int, x uint64) {
	for {
		cur := v[j].Load()
		if cur >= x || v[j].CompareAndSwap(cur, x) {
			return
		}
	}
}

// clone materializes the vector as a plain VC (callers hold the clock lock
// when a consistent snapshot matters, e.g. timestamp stamping).
func (v avc) clone() vclock.VC {
	out := vclock.New(len(v))
	for j := range v {
		out[j] = v[j].Load()
	}
	return out
}

// merge raises each component to at least ts's (single mutator: the clock
// lock holder).
func (v avc) merge(ts vclock.VC) {
	for j := 0; j < len(v) && j < ts.Len(); j++ {
		if x := ts.Get(j); x > v[j].Load() {
			v[j].Store(x)
		}
	}
}

// Node is one process's replica of the shared memory.
type Node struct {
	id     int
	n      int
	fabric transport.Transport
	trace  *history.Builder
	handle Handler

	// shards partition the location space; see the package comment for the
	// locking structure.
	shards [shardCount]shard

	// clockMu guards the protocol state below it: the clocks and counters,
	// pending causal delivery groups, the write log, and the scoped-causal
	// address matrix. clockCond is broadcast on every apply and write, and
	// waited on by the counting primitives, fence waits, and invalidation
	// stalls.
	clockMu   sync.Mutex
	clockCond *sync.Cond

	// deps[j] counts updates from j applied to the PRAM view (deps[id]
	// counts own writes). Writes are stamped with a copy of deps. Under
	// scoped placement deps[j] holds the last *sequence number* applied
	// from j, which skips the holes left by updates addressed elsewhere —
	// the PRAM view applies in receive order either way. Mutated under
	// clockMu, loadable lock-free.
	deps avc
	// causalApplied[j] is the last update from j applied to the causal
	// view: a count under full broadcast (where counts and sequence
	// numbers coincide), the last applied sequence number under scoped
	// placement (where this node's addressed stream has holes). Mutated
	// under clockMu, loadable lock-free.
	causalApplied avc
	// fence[j] is the observation fence: the per-sender sequence numbers
	// this process has *observed* through PRAM reads and PRAM awaits. A
	// PRAM read creates a reads-from edge in the causality relation, so by
	// Definition 2 every later causal read of this process must reflect
	// the observed update's causal context; ReadCausal therefore waits
	// until the causal view has applied at least fence[j] updates from
	// every j. Raised lock-free by CAS-max.
	fence avc
	// causalRecvd[j] counts updates from j whose view obligations are
	// fully met locally: causal updates once applied to the causal view,
	// timestamp-elided updates at PRAM apply (their registration contract
	// voids any causal obligation), own writes immediately. It feeds the
	// count-based WaitCausalApplied, which must not compare counts against
	// causalApplied once scoped sequence numbers have holes.
	causalRecvd []uint64
	// pending buffers delivery groups (single updates or whole batches)
	// received but not yet causally applicable.
	pending []deliveryGroup
	// sent[j] counts updates sent to process j (cumulative), feeding the
	// barrier message-count protocol of Section 6.
	sent []uint64
	// recvd[j] counts updates from process j applied to the PRAM view. It
	// equals deps[j] under full broadcast but diverges under scoped
	// placement, where per-sender sequence numbers have holes; the
	// count-based waits (barriers, lazy locks) use recvd.
	recvd []uint64
	// writeLog records this node's own updates in order, so a lock client
	// can collect the write-set of a critical section for demand-driven
	// propagation. logBase is the absolute index of writeLog[0]: marks are
	// absolute positions, so the prefix no critical section still needs
	// can be trimmed without invalidating outstanding marks.
	//
	// Logging is lazy: logOn flips on at the first WriteMark call. A mark's
	// absolute position is the node's own-write count (deps[id]), so enabling
	// sets logBase to that count and positions stay continuous. Before the
	// first mark no WritesSince call can name an earlier position, and a node
	// that never uses locks never pays the log's append or memory cost —
	// unbounded growth on the write hot path, before this, dominated the
	// unbatched write profile via growslice.
	writeLog []WriteRecord
	logBase  int
	logOn    bool

	statWrites    atomic.Uint64
	statSCReads   atomic.Uint64
	statSCWrites  atomic.Uint64
	statAwaits    atomic.Uint64
	statMalformed atomic.Uint64
	statBlocked   atomic.Int64 // nanoseconds; equals the sum of the causes
	// Per-cause blocked time (nanoseconds). Every wait site adds the same
	// interval to exactly one cause and to statBlocked, so the causes
	// partition the aggregate.
	statBlockedAwait  atomic.Int64
	statBlockedCausal atomic.Int64
	statBlockedSC     atomic.Int64
	statBlockedInval  atomic.Int64

	// obs is the event tracer (Config.Tracer); nil means tracing is off and
	// every record site is a single predictable-branch nil check.
	obs *obs.Tracer

	pramOnly bool
	// scopeTargets holds the compiled per-location destination lists when
	// Config.Scope is set; scopeAll is the fallback for unregistered
	// locations (full broadcast). scopedCausal marks the scoped-causal
	// mode: a scope with a live causal view, where causal delivery runs on
	// the address matrix instead of vector timestamps.
	scopeTargets map[string]scopeEntry
	scopeAll     scopeEntry
	scopedCausal bool
	// addr is the address matrix (scoped-causal mode only): addr[p][k] is
	// the latest update from sender k addressed to process p that this
	// node transitively knows of. Own writes bump addr[dest][id] at send
	// time; causal applies merge the sender's shipped snapshot. Row p is
	// the wait condition shipped to destination p. Guarded by clockMu.
	addr vclock.Matrix
	// addrEpoch counts remote matrix merges absorbed into addr. The outbox
	// compares it against each pending causal batch's snapshot epoch: a
	// batch whose Deps predate a merge must flush before covering another
	// write, or the newer snapshot could name an update that itself waits
	// on a write parked in the batch (see outboxAdd). Guarded by clockMu.
	addrEpoch uint64
	// prevBuf is a per-write scratch buffer holding each causal
	// destination's chain predecessor (addr[j][id] before the bump), so a
	// write can bump the whole matrix before snapshotting it without
	// allocating. Guarded by clockMu.
	prevBuf []uint64

	// labels is the per-location lattice configuration (Config.Labels);
	// immutable after NewNode, nil when every location defaults to Causal.
	labels map[string]history.Label
	// SC central-owner protocol state: scWaiting holds the reply channels of
	// in-flight round trips keyed by request ID (guarded by scMu), scStore
	// holds the authoritative copies of the SC locations this node owns
	// (guarded by scMu; only the owner ever touches a location's entry), and
	// scSeq numbers outgoing requests.
	scMu      sync.Mutex
	scStore   map[string]int64
	scWaiting map[uint64]chan int64
	scSeq     atomic.Uint64

	// track is the access log when Config.TrackAccess is set; trackMu
	// guards it (the map reference itself is immutable after NewNode).
	trackMu sync.Mutex
	track   map[string]AccessKind

	// batch/outbox implement the per-destination update outbox; outboxMu
	// guards every destination's pending batch (one lock pair per write,
	// writers being clockMu-serialized anyway); flushQuit stops the linger
	// flusher.
	batch     BatchConfig
	outboxMu  sync.Mutex
	outbox    []*outboxDest
	flushQuit chan struct{}
	closed    atomic.Bool
	done      chan struct{}
}

type invalidation struct {
	from int
	seq  uint64
}

// NewNode creates the replica and starts its receive loop. Close the node
// before closing the fabric is not required: closing the fabric unblocks the
// loop, but Close must still be called to wait for it.
func NewNode(cfg Config) (*Node, error) {
	if cfg.Transport == nil {
		return nil, fmt.Errorf("dsm: nil transport")
	}
	if cfg.ID < 0 || cfg.ID >= cfg.N || cfg.N != cfg.Transport.Nodes() {
		return nil, fmt.Errorf("dsm: bad id/n %d/%d for %d-node transport",
			cfg.ID, cfg.N, cfg.Transport.Nodes())
	}
	if cfg.Scope != nil {
		if err := cfg.Scope.Validate(cfg.N, cfg.PRAMOnly); err != nil {
			return nil, err
		}
	}
	for loc, l := range cfg.Labels {
		switch l {
		case history.LabelSlow, history.LabelPRAM, history.LabelCausal, history.LabelSC:
		default:
			return nil, fmt.Errorf("dsm: location %q labeled %v: labels must name a lattice point", loc, l)
		}
		if l == history.LabelSC && cfg.Scope != nil {
			if _, scoped := cfg.Scope.Readers[loc]; scoped {
				return nil, fmt.Errorf("dsm: SC location %q cannot be scoped: it never broadcasts", loc)
			}
		}
	}
	node := &Node{
		id:            cfg.ID,
		pramOnly:      cfg.PRAMOnly,
		n:             cfg.N,
		fabric:        cfg.Transport,
		trace:         cfg.Trace,
		handle:        cfg.Handler,
		deps:          newAVC(cfg.N),
		causalApplied: newAVC(cfg.N),
		fence:         newAVC(cfg.N),
		causalRecvd:   make([]uint64, cfg.N),
		sent:          make([]uint64, cfg.N),
		recvd:         make([]uint64, cfg.N),
		obs:           cfg.Tracer,
		done:          make(chan struct{}),
	}
	for i := range node.shards {
		sh := &node.shards[i]
		sh.cond = sync.NewCond(&sh.mu)
		m := make(map[string]*cell)
		sh.vals.Store(&m)
	}
	node.clockCond = sync.NewCond(&node.clockMu)
	if cfg.Scope != nil {
		node.scopeTargets, node.scopeAll = cfg.Scope.compile(cfg.ID, cfg.N, cfg.PRAMOnly)
		node.scopedCausal = !cfg.PRAMOnly
		if node.scopedCausal {
			node.addr = vclock.NewMatrix(cfg.N)
			node.prevBuf = make([]uint64, cfg.N)
		}
	}
	if len(cfg.Labels) > 0 {
		node.labels = make(map[string]history.Label, len(cfg.Labels))
		for loc, l := range cfg.Labels {
			node.labels[loc] = l
		}
	}
	node.scWaiting = make(map[uint64]chan int64)
	if cfg.TrackAccess {
		node.track = make(map[string]AccessKind)
	}
	if cfg.Batch.Enabled {
		node.batch = cfg.Batch.WithDefaults()
		node.outbox = make([]*outboxDest, cfg.N)
		for j := range node.outbox {
			if j != node.id {
				node.outbox[j] = newOutboxDest(node.batch.MaxUpdates)
			}
		}
		node.flushQuit = make(chan struct{})
		go node.lingerLoop()
	}
	go node.recvLoop()
	return node, nil
}

// ID returns the node's process identity.
func (n *Node) ID() int { return n.id }

// N returns the number of processes.
func (n *Node) N() int { return n.n }

// Transport returns the underlying message substrate (for synchronization
// protocols).
func (n *Node) Transport() transport.Transport { return n.fabric }

// Tracer returns the node's event tracer (Config.Tracer), or nil when
// tracing is off. Synchronization clients and collectors share it so one
// ring per node carries the whole protocol timeline.
func (n *Node) Tracer() *obs.Tracer { return n.obs }

// Trace returns the history builder, or nil when not recording.
func (n *Node) Trace() *history.Builder { return n.trace }

func (n *Node) shard(loc string) *shard { return &n.shards[shardIndex(loc)] }

// labelOf returns the location's configured lattice point, LabelNone when the
// location is unlabeled (which every path treats as Causal, the default).
func (n *Node) labelOf(loc string) history.Label {
	if n.labels == nil {
		return history.LabelNone
	}
	return n.labels[loc]
}

func (n *Node) trackAccess(loc string, kind AccessKind) {
	n.trackMu.Lock()
	n.track[loc] |= kind
	n.trackMu.Unlock()
}

// recvLoop dispatches fabric messages: updates into the memory views,
// everything else to the protocol handler.
func (n *Node) recvLoop() {
	defer close(n.done)
	for {
		m, ok := n.fabric.Recv(n.id)
		if !ok {
			return
		}
		if m.Kind == KindUpdate {
			u, ok := m.Payload.(Update)
			if !ok {
				continue
			}
			n.applyRemote(u)
			continue
		}
		if m.Kind == KindUpdateBatch {
			b, ok := m.Payload.(UpdateBatch)
			if !ok {
				continue
			}
			n.applyBatch(b)
			continue
		}
		if m.Kind == KindSCRequest {
			if r, ok := m.Payload.(SCRequest); ok {
				n.handleSCRequest(r)
			}
			continue
		}
		if m.Kind == KindSCReply {
			if r, ok := m.Payload.(SCReply); ok {
				n.handleSCReply(r)
			}
			continue
		}
		if n.handle != nil {
			n.handle(m)
		}
	}
}

// applyCell applies one update operation to a view's atomic value. OpSet
// stores; the commutative ops use atomic add / CAS so concurrent appliers
// (a local writer and the receive loop) never lose an increment.
func applyCell(v *atomic.Int64, u Update) {
	switch u.Op {
	case OpAdd:
		v.Add(u.Value)
	case OpAddFloat:
		for {
			old := v.Load()
			sum := math.Float64frombits(uint64(old)) +
				math.Float64frombits(uint64(u.Value))
			if v.CompareAndSwap(old, int64(math.Float64bits(sum))) {
				return
			}
		}
	default:
		v.Store(u.Value)
	}
}

// applyRemote applies a received update: immediately to the PRAM view, and
// to the causal view once its dependencies are satisfied. Under scoped
// placement a timestamp-elided update (no Deps) is addressed to a
// PRAM-registered reader: it carries no causal obligations, so it never
// enters the causal view and never raises the observation fence.
func (n *Node) applyRemote(u Update) {
	if n.obs != nil {
		n.obs.RecordLoc(obs.EvRecv, uint8(u.Label), uint16(u.From), u.Loc, u.Seq, 0, 0)
	}
	n.clockMu.Lock()
	sh := n.shard(u.Loc)
	c := sh.cellFor(u.Loc)
	// PRAM view: apply in receive order. The last-writer anchor (for the
	// observation fence) is stored before the value; it is skipped in
	// PRAMOnly mode (no causal read ever waits on the fence there) and for
	// elided or malformed scoped updates (no fence may wait on them).
	switch {
	case n.pramOnly:
		applyCell(&c.pram, u)
	case n.scopedCausal:
		switch {
		case u.Deps == nil:
			// Elided fast path: PRAM view only; the registration contract
			// says no causal read of this process depends on it.
			applyCell(&c.pram, u)
			n.causalRecvd[u.From]++
		case u.Deps.Len() != n.n:
			// Malformed dependency matrix: a misconfigured or corrupt peer.
			// The update stays out of the causal view (and raises no fence
			// anchor), but it must not silently stall the counting
			// primitives — count it as causally settled, like the elided
			// path, and record the fault.
			applyCell(&c.pram, u)
			n.causalRecvd[u.From]++
			n.statMalformed.Add(1)
		default:
			c.last.Store(packLast(u.From, u.Seq))
			applyCell(&c.pram, u)
			n.pending = append(n.pending, deliveryGroup{
				from: u.From, firstSeq: u.Seq, lastSeq: u.Seq,
				prevSeq: u.PrevSeq, deps: u.Deps, count: 1, one: u,
			})
			n.drainCausalLocked()
		}
	case u.Label == history.LabelSlow:
		// Slow update: timestamp-elided, delivered to the causal view on the
		// sender's own FIFO alone (groupDeliverableLocked's slow case). No
		// fence anchor is stored — slow reads never raise the observation
		// fence, and the label contract says no causal read depends on what
		// a slow location's reads observed.
		applyCell(&c.pram, u)
		n.pending = append(n.pending, deliveryGroup{
			from: u.From, firstSeq: u.Seq, lastSeq: u.Seq,
			count: 1, one: u, slow: true,
		})
		n.drainCausalLocked()
	default:
		// Causal view: buffer as a singleton group, then drain everything
		// deliverable.
		c.last.Store(packLast(u.From, u.Seq))
		applyCell(&c.pram, u)
		n.pending = append(n.pending, deliveryGroup{
			from: u.From, firstSeq: u.Seq, lastSeq: u.Seq, ts: u.TS,
			count: 1, one: u,
		})
		n.drainCausalLocked()
	}
	if n.obs != nil {
		n.obs.RecordLoc(obs.EvApply, uint8(u.Label), uint16(u.From), u.Loc, u.Seq, 0, 0)
	}
	n.deps.set(u.From, u.Seq)
	n.recvd[u.From]++
	n.clockCond.Broadcast()
	n.clockMu.Unlock()
	sh.wake()
}

// applyBatch applies a received update batch under one clock-lock hold:
// every entry goes into the PRAM view in one critical section (receive-side
// amortization of lock traffic), the PRAM clock advances to the latest
// covered sequence number, and the received count advances by the batch's
// full Count — including coalesced-away updates — so the barrier and
// lazy-lock counting protocols account every original write. The causal view
// receives the batch as one delivery group. Batches that never enter the
// pending buffer return their entry slice to the batch pool here; buffered
// groups return it when the group applies (drainCausalLocked).
func (n *Node) applyBatch(b UpdateBatch) {
	if len(b.Updates) == 0 {
		return
	}
	if n.obs != nil {
		// The highest-seq entry can sit anywhere in the batch (coalescing
		// replaces in place), so the covered range's last seq is a scan.
		last := b.Updates[0].Seq
		for _, u := range b.Updates {
			if u.Seq > last {
				last = u.Seq
			}
		}
		n.obs.Record(obs.EvRecvBatch, uint8(b.Updates[0].Label), uint16(b.From),
			obs.NoLoc, b.FirstSeq, last, b.Count)
	}
	n.clockMu.Lock()
	// Scoped batches are kind-segregated at the sender: a batch with no
	// dependency matrix is entirely timestamp-elided and stays out of the
	// causal view, exactly like a singleton elided update. A batch whose
	// matrix has the wrong dimension (misconfigured or corrupt peer) is
	// handled like the elided case — PRAM view only, no fence anchor, but
	// counted as causally settled so no counting primitive stalls on it —
	// with the fault recorded in Stats.
	elided := n.pramOnly || (n.scopedCausal && b.Deps == nil)
	malformed := n.scopedCausal && b.Deps != nil && b.Deps.Len() != n.n
	// Slow batches are label-homogeneous at the sender (the outbox flushes
	// on a label-class change), timestamp-elided, and deliver to the causal
	// view on the sender's FIFO alone; like singleton slow updates they
	// never anchor the observation fence.
	slow := !n.pramOnly && !n.scopedCausal && b.Updates[0].Label == history.LabelSlow
	anchor := !elided && !malformed && !slow
	var maxSeq uint64
	var maxTS vclock.VC
	for _, u := range b.Updates {
		sh := n.shard(u.Loc)
		c := sh.cellFor(u.Loc)
		if anchor {
			c.last.Store(packLast(b.From, u.Seq))
		}
		applyCell(&c.pram, u)
		sh.wake()
		if n.obs != nil {
			n.obs.RecordLoc(obs.EvApply, uint8(u.Label), uint16(b.From), u.Loc, u.Seq, 0, 0)
		}
		if u.Seq > maxSeq {
			maxSeq = u.Seq
			maxTS = u.TS
		}
	}
	n.deps.set(b.From, maxSeq)
	n.recvd[b.From] += b.Count
	switch {
	case n.pramOnly:
		putUpdateSlice(b.Updates)
	case elided:
		n.causalRecvd[b.From] += b.Count
		putUpdateSlice(b.Updates)
	case malformed:
		n.causalRecvd[b.From] += b.Count
		n.statMalformed.Add(b.Count)
		putUpdateSlice(b.Updates)
	case slow:
		n.pending = append(n.pending, deliveryGroup{
			from:     b.From,
			firstSeq: b.FirstSeq,
			lastSeq:  maxSeq,
			count:    b.Count,
			batch:    b.Updates,
			slow:     true,
		})
		n.drainCausalLocked()
	case n.scopedCausal:
		n.pending = append(n.pending, deliveryGroup{
			from:     b.From,
			firstSeq: b.FirstSeq,
			lastSeq:  maxSeq,
			prevSeq:  b.PrevSeq,
			deps:     b.Deps,
			count:    b.Count,
			batch:    b.Updates,
		})
		n.drainCausalLocked()
	default:
		n.pending = append(n.pending, deliveryGroup{
			from:     b.From,
			firstSeq: b.FirstSeq,
			lastSeq:  maxSeq,
			ts:       maxTS,
			count:    b.Count,
			batch:    b.Updates,
		})
		n.drainCausalLocked()
	}
	n.clockCond.Broadcast()
	n.clockMu.Unlock()
}

// drainCausalLocked applies pending delivery groups to the causal view in
// causal order until no more are deliverable. A group (single update or whole
// batch) is applied atomically with respect to the clock: its causalApplied
// advance happens after all its values are stored, so a lock-free causal
// read that sees the advanced clock sees the values. Batch groups return
// their entry slice to the batch pool once applied.
func (n *Node) drainCausalLocked() {
	for {
		progressed := false
		kept := n.pending[:0]
		for _, g := range n.pending {
			if n.groupDeliverableLocked(g) {
				if g.batch == nil {
					n.applyCausal(g.one)
				} else {
					for _, u := range g.batch {
						n.applyCausal(u)
					}
				}
				switch {
				case g.slow:
					// Slow group: the sender's FIFO position advances; the
					// group carries no cross-sender knowledge to absorb.
					n.causalApplied.set(g.from, g.lastSeq)
				case g.deps != nil:
					// Scoped-causal: advance the sender's chain to the
					// group's last addressed sequence number and absorb the
					// shipped dependency knowledge. The epoch bump tells the
					// outbox that pending causal batches now predate part of
					// the matrix.
					n.causalApplied.set(g.from, g.lastSeq)
					n.addr.Merge(g.deps)
					n.addrEpoch++
				default:
					n.causalApplied.merge(g.ts)
				}
				n.causalRecvd[g.from] += g.count
				if g.batch != nil {
					putUpdateSlice(g.batch)
				}
				if n.obs != nil {
					if g.parkedAt != 0 {
						parked := time.Now().UnixNano() - g.parkedAt
						n.obs.Record(obs.EvDepWaitEnd, 0, uint16(g.from), obs.NoLoc,
							g.firstSeq, uint64(parked), 0)
					}
					n.obs.Record(obs.EvGroupRelease, 0, uint16(g.from), obs.NoLoc,
						g.firstSeq, g.lastSeq, g.count)
				}
				progressed = true
			} else {
				if n.obs != nil && g.parkedAt == 0 {
					g.parkedAt = time.Now().UnixNano()
					n.obs.Record(obs.EvDepWaitBegin, 0, uint16(g.from), obs.NoLoc,
						g.firstSeq, 0, 0)
				}
				kept = append(kept, g)
			}
		}
		n.pending = kept
		if !progressed {
			return
		}
	}
}

func (n *Node) applyCausal(u Update) {
	sh := n.shard(u.Loc)
	applyCell(&sh.cellFor(u.Loc).causal, u)
	sh.wake()
}

// Write stores value at loc. For broadcast labels (everything but SC) it is
// non-blocking: the response is local and the update propagates
// asynchronously, as the paper's interface permits (Section 3). A write to an
// SC-labeled location is a blocking round trip to the location's owner.
func (n *Node) Write(loc string, value int64) {
	if n.labelOf(loc) == history.LabelSC {
		n.scApply(OpSet, loc, value)
	} else {
		n.broadcastUpdate(OpSet, loc, value)
	}
	if n.trace != nil {
		n.trace.AppendOp(history.Op{
			Proc: n.id, Kind: history.Write, Loc: loc, Value: value,
		})
	}
}

// Add applies a commutative increment (negative for decrement) to a counter
// object (Section 5.3). Counter operations are not recorded in traces: they
// are operations of an abstract data type, not reads/writes.
func (n *Node) Add(loc string, delta int64) {
	if n.labelOf(loc) == history.LabelSC {
		n.scApply(OpAdd, loc, delta)
		return
	}
	n.broadcastUpdate(OpAdd, loc, delta)
}

// AddFloat applies a commutative float64 increment to a location holding a
// Float64bits-encoded value: the counter-object view of the Cholesky column
// updates (Section 5.3).
func (n *Node) AddFloat(loc string, delta float64) {
	if n.labelOf(loc) == history.LabelSC {
		n.scApply(OpAddFloat, loc, int64(math.Float64bits(delta)))
		return
	}
	n.broadcastUpdate(OpAddFloat, loc, int64(math.Float64bits(delta)))
}

func (n *Node) broadcastUpdate(op UpdateOp, loc string, value int64) {
	label := n.labelOf(loc)
	// A slow update is timestamp-elided and never fence-anchored: the label
	// contract (Config.Labels) drops every cross-location obligation.
	slow := label == history.LabelSlow && !n.pramOnly
	n.clockMu.Lock()
	seq := n.deps.get(n.id) + 1
	n.deps.set(n.id, seq)
	u := Update{
		From:  n.id,
		Seq:   seq,
		Op:    op,
		Label: label,
		Loc:   loc,
		Value: value,
	}
	sh := n.shard(loc)
	c := sh.cellFor(loc)
	if !n.pramOnly && !slow {
		c.last.Store(packLast(n.id, seq))
	}
	applyCell(&c.pram, u)
	n.recvd[n.id]++
	if !n.pramOnly {
		applyCell(&c.causal, u)
		n.causalApplied.set(n.id, seq)
		n.causalRecvd[n.id]++
	}
	if n.logOn {
		n.writeLog = append(n.writeLog, WriteRecord{Loc: loc, Seq: seq})
	}
	if n.obs != nil {
		n.obs.RecordLoc(obs.EvWriteIssue, uint8(label), 0, loc, seq, uint64(n.n-1), uint64(op))
	}
	// Send while holding the clock lock so per-sender sequence numbers hit
	// the fabric in order even under concurrent writers; fabric sends never
	// block. With the outbox enabled, "send" means enqueue into the
	// destination's pending batch, flushing any batch that crossed a
	// threshold.
	switch {
	case n.scopeTargets != nil:
		n.sendScopedLocked(u)
	case n.batch.Enabled:
		if !n.pramOnly && !slow {
			u.TS = n.deps.clone()
		}
		n.outboxMu.Lock()
		for j := 0; j < n.n; j++ {
			if j == n.id {
				continue
			}
			n.sent[j]++
			n.outboxAddLocked(j, u, false, nil)
		}
		n.outboxMu.Unlock()
	default:
		if !n.pramOnly && !slow {
			u.TS = n.deps.clone()
		}
		for j := 0; j < n.n; j++ {
			if j != n.id {
				n.sent[j]++
			}
		}
		_ = n.fabric.Broadcast(n.id, KindUpdate, u, u.encodedSize())
		if n.obs != nil {
			// Unbatched sends leave the node here: one flush per peer with a
			// single-seq range, so the chain works without an outbox.
			for j := 0; j < n.n; j++ {
				if j != n.id {
					n.obs.Record(obs.EvFlush, uint8(label), uint16(j), obs.NoLoc, seq, seq, 1)
				}
			}
		}
	}
	n.statWrites.Add(1)
	n.clockCond.Broadcast()
	n.clockMu.Unlock()
	sh.wake()
}

// sendScopedLocked routes one write under the scope map: timestamp-elided
// copies to the location's PRAM-registered readers, dependency-stamped
// copies to its causal-registered readers, and (for locations the map does
// not name) a copy to every peer. Causal copies carry the per-destination
// chain pointer and a snapshot of the address matrix taken after this
// write's bumps, so a destination that relays the value onward ships a
// matrix that already covers this update at every other destination. The
// snapshot is taken here, under the same clock-lock hold as the bumps, for
// both the immediate sends and the outbox path: a batch must ship
// dependencies its covered writes were written under, never ones absorbed
// later.
func (n *Node) sendScopedLocked(u Update) {
	ent, ok := n.scopeTargets[u.Loc]
	if !ok {
		ent = n.scopeAll
	}
	if n.batch.Enabled {
		n.outboxMu.Lock()
		for _, j := range ent.elided {
			n.sent[j]++
			n.outboxAddLocked(j, u, false, nil)
		}
		n.outboxMu.Unlock()
	} else {
		for _, j := range ent.elided {
			n.sent[j]++
			_ = n.fabric.Send(network.Message{
				From: n.id, To: j, Kind: KindUpdate,
				Payload: u, Size: u.encodedSize(),
			})
			if n.obs != nil {
				n.obs.Record(obs.EvFlush, uint8(u.Label), uint16(j), obs.NoLoc, u.Seq, u.Seq, 1)
			}
		}
	}
	if len(ent.causal) == 0 {
		return
	}
	// Bump the matrix for every causal destination before any copy (or
	// flushed batch) snapshots it: transitive soundness needs each shipped
	// matrix to record this update at all of its destinations.
	for _, j := range ent.causal {
		n.prevBuf[j] = n.addr.Get(j, n.id)
		n.addr.Set(j, n.id, u.Seq)
	}
	snap := n.addr.Clone() // shared across destinations; receivers only merge from it
	if n.batch.Enabled {
		n.outboxMu.Lock()
		for _, j := range ent.causal {
			n.sent[j]++
			n.outboxAddLocked(j, u, true, snap)
		}
		n.outboxMu.Unlock()
		return
	}
	for _, j := range ent.causal {
		n.sent[j]++
		cu := u
		cu.PrevSeq = n.prevBuf[j]
		cu.Deps = snap
		_ = n.fabric.Send(network.Message{
			From: n.id, To: j, Kind: KindUpdate,
			Payload: cu, Size: cu.encodedSize(),
		})
		if n.obs != nil {
			n.obs.Record(obs.EvFlush, uint8(u.Label), uint16(j), obs.NoLoc, u.Seq, u.Seq, 1)
		}
	}
}

// Read performs the read the location's configured lattice point calls for:
// a slow read for LabelSlow, a PRAM read for LabelPRAM, an owner round trip
// for LabelSC, and a causal read for LabelCausal and unlabeled locations.
// Programs written against Read move along the lattice by reconfiguring
// Config.Labels alone.
func (n *Node) Read(loc string) int64 {
	switch n.labelOf(loc) {
	case history.LabelSlow:
		return n.ReadSlow(loc)
	case history.LabelPRAM:
		return n.ReadPRAM(loc)
	case history.LabelSC:
		return n.ReadSC(loc)
	default:
		return n.ReadCausal(loc)
	}
}

// ReadSlow returns loc's most recent locally applied value without raising
// the observation fence: the slow-memory read (Hutto & Ahamad's slow memory,
// the bottom of the label lattice). It guarantees only that one writer's
// writes to this location are observed in order — the transport's FIFO
// channels and receive-order application give exactly that — and imposes no
// obligation on any later read of any other location.
func (n *Node) ReadSlow(loc string) int64 {
	v := n.readSlowValue(loc)
	if n.trace != nil {
		n.trace.AppendOp(history.Op{
			Proc: n.id, Kind: history.Read, Loc: loc, Value: v, Label: history.LabelSlow,
		})
	}
	return v
}

// readSlowValue is ReadSlow without trace recording: the lock-free local
// lookup alone. Unlike readPRAMValue it never loads the cell's last-writer
// anchor — a slow read creates no observation-fence entry, so it can never
// make a later causal read wait.
func (n *Node) readSlowValue(loc string) int64 {
	sh := n.shard(loc)
	if n.track != nil {
		n.trackAccess(loc, AccessPRAM)
	}
	if sh.invalidLen.Load() != 0 {
		n.waitValid(sh, loc, false)
	}
	var v int64
	if c := sh.lookup(loc); c != nil {
		v = c.pram.Load()
	}
	sh.slowReads.Add(1)
	return v
}

// ReadPRAM returns loc's value in the PRAM view: the most recent locally
// applied value (Definition 3 at the implementation level). It blocks only
// if the location is invalidated by demand-driven propagation.
func (n *Node) ReadPRAM(loc string) int64 {
	v := n.readPRAMValue(loc)
	if n.trace != nil {
		n.trace.AppendOp(history.Op{
			Proc: n.id, Kind: history.Read, Loc: loc, Value: v, Label: history.LabelPRAM,
		})
	}
	return v
}

// readPRAMValue is ReadPRAM without trace recording, shared with thread
// handles. The fast path is lock-free: one atomic map-pointer load, one map
// lookup, and atomic value/last-writer loads. The value is loaded before
// the last-writer anchor (appliers store them in the opposite order), so
// the fence entry raised always covers the observed value.
func (n *Node) readPRAMValue(loc string) int64 {
	sh := n.shard(loc)
	if n.track != nil {
		n.trackAccess(loc, AccessPRAM)
	}
	if sh.invalidLen.Load() != 0 {
		n.waitValid(sh, loc, false)
	}
	var v int64
	if c := sh.lookup(loc); c != nil {
		v = c.pram.Load()
		if !n.pramOnly {
			if packed := c.last.Load(); packed != 0 {
				n.fence.raise(int(packed>>seqBits), packed&seqMask)
			}
		}
	}
	sh.pramReads.Add(1)
	return v
}

// ReadCausal returns loc's value in the causal view: the most recent value
// all of whose causal predecessors have been applied locally (Definition 2
// at the implementation level). It blocks if the location is invalidated by
// demand-driven propagation, or until the causal view covers the process's
// observation fence — everything earlier PRAM reads and PRAM awaits of this
// process observed, whose reads-from edges Definition 2 counts as causal
// context.
func (n *Node) ReadCausal(loc string) int64 {
	v := n.readCausalValue(loc)
	if n.trace != nil {
		label := history.LabelCausal
		if n.pramOnly {
			label = history.LabelPRAM
		}
		n.trace.AppendOp(history.Op{
			Proc: n.id, Kind: history.Read, Loc: loc, Value: v, Label: label,
		})
	}
	return v
}

// readCausalValue is ReadCausal without trace recording, shared with thread
// handles. Lock-free when the fence is already covered: causalApplied only
// advances after a group's values are stored, so a fence check that passes
// on atomic loads guarantees the covered values are visible.
func (n *Node) readCausalValue(loc string) int64 {
	if n.pramOnly {
		// Degraded mode: only sound for PRAM-consistent programs.
		return n.readPRAMValue(loc)
	}
	sh := n.shard(loc)
	if n.track != nil {
		n.trackAccess(loc, AccessCausal)
	}
	if sh.invalidLen.Load() != 0 {
		n.waitValid(sh, loc, true)
	}
	if !n.fenceCovered() {
		n.waitFence(loc)
	}
	var v int64
	if c := sh.lookup(loc); c != nil {
		v = c.causal.Load()
	}
	sh.causalReads.Add(1)
	return v
}

// fenceCovered reports whether the causal view has applied every update the
// observation fence covers. Lock-free: both vectors are atomics, and both
// only grow, so a stale load can only send the caller to the locked slow
// path, never let it pass early.
func (n *Node) fenceCovered() bool {
	for j := 0; j < n.n; j++ {
		if n.causalApplied.get(j) < n.fence.get(j) {
			return false
		}
	}
	return true
}

// waitFence blocks until the causal view has applied every update the
// observation fence covers. loc is the causal read that tripped it, for
// the trace alone.
func (n *Node) waitFence(loc string) {
	start := time.Now()
	n.clockMu.Lock()
	for !n.closed.Load() && !n.fenceCovered() {
		n.clockCond.Wait()
	}
	n.clockMu.Unlock()
	d := int64(time.Since(start))
	n.statBlocked.Add(d)
	n.statBlockedCausal.Add(d)
	if n.obs != nil {
		n.obs.RecordLoc(obs.EvFenceWait, 0, 0, loc, 0, uint64(d), 0)
	}
}

// waitValid blocks while loc is invalidated and the required update has not
// yet reached the relevant view. The caller's shard fast path already saw a
// nonzero invalidation count; the wait itself runs on the clock condition,
// which every apply broadcasts.
func (n *Node) waitValid(sh *shard, loc string, causalView bool) {
	sh.mu.Lock()
	inv, ok := sh.invalid[loc]
	sh.mu.Unlock()
	if !ok {
		return
	}
	start := time.Now()
	n.clockMu.Lock()
	for !n.closed.Load() {
		var applied uint64
		if causalView {
			applied = n.causalApplied.get(inv.from)
		} else {
			applied = n.deps.get(inv.from)
		}
		if applied >= inv.seq {
			break
		}
		n.clockCond.Wait()
	}
	n.clockMu.Unlock()
	sh.mu.Lock()
	delete(sh.invalid, loc)
	sh.invalidLen.Store(int32(len(sh.invalid)))
	sh.mu.Unlock()
	d := int64(time.Since(start))
	n.statBlocked.Add(d)
	n.statBlockedInval.Add(d)
	if n.obs != nil {
		n.obs.RecordLoc(obs.EvInvalWait, 0, uint16(inv.from), loc, inv.seq, uint64(d), 0)
	}
}

// AwaitPRAM blocks until loc holds value in the PRAM view — the busy-wait
// loop of PRAM reads the paper describes (Section 6), realized with a
// condition variable instead of spinning. Reads that follow it see the
// matched write and its sender's FIFO prefix, but not transitive
// dependencies through third processes; programs that read with causal
// labels after an await should use AwaitCausal.
func (n *Node) AwaitPRAM(loc string, value int64) {
	n.await(loc, value, false)
}

// AwaitCausal blocks until loc holds value in the causal view — a busy-wait
// loop of causal reads. Because the causal view only applies an update after
// all its causal predecessors, every update the matched write depends on
// (transitively, through any chain of processes) is locally applied when
// AwaitCausal returns; causal reads that follow it satisfy Definition 2.
func (n *Node) AwaitCausal(loc string, value int64) {
	n.await(loc, value, true)
}

func (n *Node) await(loc string, value int64, causalView bool) {
	n.awaitValue(loc, value, causalView)
	if n.trace != nil {
		n.trace.AppendOp(history.Op{
			Proc: n.id, Kind: history.Await, Loc: loc, Value: value,
		})
	}
}

// awaitValue is the await wait loop without trace recording, shared with
// thread handles. The waiter registers on the location's shard (waiters
// incremented under the shard lock before the first value check); appliers
// store the value and then broadcast if any waiter is registered, so the
// waiter either sees the value or is woken.
func (n *Node) awaitValue(loc string, value int64, causalView bool) {
	wantCausal := causalView
	if n.pramOnly {
		causalView = false
	}
	if n.track != nil {
		if wantCausal {
			n.trackAccess(loc, AccessCausal)
		} else {
			n.trackAccess(loc, AccessPRAM)
		}
	}
	// Await registration is a synchronization boundary: a process about
	// to block on a peer's flag must not keep its own half of the
	// handshake parked in the outbox.
	n.FlushUpdates()
	sh := n.shard(loc)
	start := time.Now()
	if n.obs != nil {
		n.obs.RecordLoc(obs.EvAwaitBegin, 0, 0, loc, 0, uint64(value), 0)
	}
	sh.mu.Lock()
	sh.waiters.Add(1)
	for !n.closed.Load() {
		var v int64
		if c := sh.lookup(loc); c != nil {
			if causalView {
				v = c.causal.Load()
			} else {
				v = c.pram.Load()
			}
		}
		if v == value {
			break
		}
		sh.cond.Wait()
	}
	sh.waiters.Add(-1)
	sh.mu.Unlock()
	if !causalView && !n.pramOnly {
		// The matched write is a synchronization edge incident on this
		// process; later causal reads must observe its causal context.
		if c := sh.lookup(loc); c != nil {
			if packed := c.last.Load(); packed != 0 {
				n.fence.raise(int(packed>>seqBits), packed&seqMask)
			}
		}
	}
	n.statAwaits.Add(1)
	d := int64(time.Since(start))
	n.statBlocked.Add(d)
	n.statBlockedAwait.Add(d)
	if n.obs != nil {
		// Anchor the wakeup to the matched write (the PRAM last-writer): the
		// explainer chains from it back to the writer's issue event. Zero
		// means the location was never anchored (slow/elided writes); the
		// explainer skips those.
		var packed uint64
		if c := sh.lookup(loc); c != nil {
			packed = c.last.Load()
		}
		n.obs.RecordLoc(obs.EvAwaitEnd, uint8(n.labelOf(loc)), uint16(packed>>seqBits),
			loc, packed&seqMask, uint64(d), 0)
	}
}

// SentCounts returns a copy of the cumulative per-destination update counts,
// the vector each process reports to the barrier manager (Section 6). With
// the outbox enabled it first flushes every pending batch: the counts are a
// promise that peers can wait for that many updates, so nothing counted may
// remain parked locally.
func (n *Node) SentCounts() []uint64 {
	n.clockMu.Lock()
	defer n.clockMu.Unlock()
	n.flushAllLocked()
	out := make([]uint64, n.n)
	copy(out, n.sent)
	return out
}

// ReceivedCounts returns, per sender, the cumulative number of updates
// applied to the PRAM view (own writes for the node's own component).
func (n *Node) ReceivedCounts() []uint64 {
	n.clockMu.Lock()
	defer n.clockMu.Unlock()
	out := make([]uint64, n.n)
	copy(out, n.recvd)
	return out
}

// WaitReceived blocks until at least min[j] updates from each process j have
// been applied to the PRAM view. The barrier protocol uses it to ensure all
// prior-phase updates are in place before the phase's reads (Section 6).
func (n *Node) WaitReceived(min []uint64) {
	n.clockMu.Lock()
	defer n.clockMu.Unlock()
	n.flushAllLocked()
	start := time.Now()
	for !n.countsReachedLocked(min) && !n.closed.Load() {
		n.clockCond.Wait()
	}
	d := int64(time.Since(start))
	n.statBlocked.Add(d)
	n.statBlockedCausal.Add(d)
	if n.obs != nil {
		n.obs.Record(obs.EvWaitCounts, 0, 0, obs.NoLoc, 0, uint64(d), 0)
	}
}

func (n *Node) countsReachedLocked(min []uint64) bool {
	for j := 0; j < n.n && j < len(min); j++ {
		if n.recvd[j] < min[j] {
			return false
		}
	}
	return true
}

// WaitCausalApplied blocks until at least min[j] updates from each process j
// have met their causal-view obligations locally: applied to the causal view
// for dependency-stamped updates, applied to the PRAM view for
// timestamp-elided ones (their registration contract voids the causal
// obligation). Under full broadcast this is exactly "applied to the causal
// view"; under scoped placement the count-based phrasing stays sound where
// per-sender sequence numbers have holes.
func (n *Node) WaitCausalApplied(min []uint64) {
	if n.pramOnly {
		n.WaitReceived(min)
		return
	}
	n.clockMu.Lock()
	defer n.clockMu.Unlock()
	n.flushAllLocked()
	start := time.Now()
	for !n.causalCountsReachedLocked(min) && !n.closed.Load() {
		n.clockCond.Wait()
	}
	d := int64(time.Since(start))
	n.statBlocked.Add(d)
	n.statBlockedCausal.Add(d)
	if n.obs != nil {
		n.obs.Record(obs.EvWaitCounts, 0, 0, obs.NoLoc, 0, uint64(d), 1)
	}
}

func (n *Node) causalCountsReachedLocked(min []uint64) bool {
	for j := 0; j < n.n && j < len(min); j++ {
		if n.causalRecvd[j] < min[j] {
			return false
		}
	}
	return true
}

// WriteRecord identifies one of the node's own updates: the location and the
// per-sender sequence number it was broadcast with.
type WriteRecord struct {
	Loc string
	Seq uint64
}

// WriteMark returns a marker into the node's write log. Combined with
// WritesSince it delimits the write-set of a critical section. Marks are
// absolute positions and stay valid across TrimWriteLog. The first call
// turns logging on: positions are own-write counts, so enabling mid-life
// keeps every subsequent mark exactly where eager logging would have put it.
func (n *Node) WriteMark() int {
	n.clockMu.Lock()
	defer n.clockMu.Unlock()
	if !n.logOn {
		n.logOn = true
		n.logBase = int(n.deps.get(n.id))
	}
	return n.logBase + len(n.writeLog)
}

// WritesSince returns a copy of the node's own updates recorded at or after
// the given marker. Entries already trimmed are gone; callers trim only
// below their oldest outstanding mark.
func (n *Node) WritesSince(mark int) []WriteRecord {
	n.clockMu.Lock()
	defer n.clockMu.Unlock()
	idx := mark - n.logBase
	if idx < 0 {
		idx = 0
	}
	if idx > len(n.writeLog) {
		idx = len(n.writeLog)
	}
	out := make([]WriteRecord, len(n.writeLog)-idx)
	copy(out, n.writeLog[idx:])
	return out
}

// TrimWriteLog discards write-log entries before the given absolute mark,
// bounding the log's memory. The lock client calls it after each unlock with
// its oldest still-outstanding mark.
func (n *Node) TrimWriteLog(upTo int) {
	n.clockMu.Lock()
	defer n.clockMu.Unlock()
	idx := upTo - n.logBase
	if idx <= 0 {
		return
	}
	if idx > len(n.writeLog) {
		idx = len(n.writeLog)
	}
	kept := len(n.writeLog) - idx
	copy(n.writeLog, n.writeLog[idx:])
	n.writeLog = n.writeLog[:kept]
	n.logBase += idx
}

// Invalidate marks loc stale until the update (from, seq) has been applied:
// the demand-driven propagation mode of Section 6, where the write-set of a
// critical section travels with the unlock and only reads of invalidated
// locations block.
func (n *Node) Invalidate(loc string, from int, seq uint64) {
	sh := n.shard(loc)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if cur, ok := sh.invalid[loc]; ok && cur.seq >= seq && cur.from == from {
		return
	}
	if sh.invalid == nil {
		sh.invalid = make(map[string]invalidation)
	}
	sh.invalid[loc] = invalidation{from: from, seq: seq}
	sh.invalidLen.Store(int32(len(sh.invalid)))
}

// Stats returns a snapshot of the node's counters.
func (n *Node) Stats() Stats {
	s := Stats{
		Writes:              n.statWrites.Load(),
		SCReads:             n.statSCReads.Load(),
		SCWrites:            n.statSCWrites.Load(),
		Awaits:              n.statAwaits.Load(),
		Blocked:             time.Duration(n.statBlocked.Load()),
		BlockedAwait:        time.Duration(n.statBlockedAwait.Load()),
		BlockedCausalWait:   time.Duration(n.statBlockedCausal.Load()),
		BlockedSC:           time.Duration(n.statBlockedSC.Load()),
		BlockedInvalidation: time.Duration(n.statBlockedInval.Load()),
		MalformedUpdates:    n.statMalformed.Load(),
	}
	for i := range n.shards {
		s.PRAMReads += n.shards[i].pramReads.Load()
		s.CausalReads += n.shards[i].causalReads.Load()
		s.SlowReads += n.shards[i].slowReads.Load()
	}
	return s
}

// Snapshot returns a copy of the requested view's contents, for debugging
// and result extraction in examples. causalView selects the causal view.
// Cells exist only for locations some write or apply touched; a location the
// selected view never received reads as zero, matching the map semantics.
func (n *Node) Snapshot(causalView bool) map[string]int64 {
	out := make(map[string]int64)
	for i := range n.shards {
		m := *n.shards[i].vals.Load()
		for loc, c := range m {
			if causalView {
				out[loc] = c.causal.Load()
			} else {
				out[loc] = c.pram.Load()
			}
		}
	}
	return out
}

// Close unblocks all waiters and waits for the receive loop to exit. The
// fabric must be closed (or still delivering) for the loop to finish;
// closing the fabric first is the usual order. Pending outbox batches are
// flushed best-effort (a closed fabric drops them silently), and the linger
// flusher is stopped.
func (n *Node) Close() {
	n.clockMu.Lock()
	first := !n.closed.Load()
	if first && n.batch.Enabled {
		n.flushAllLocked()
	}
	n.closed.Store(true)
	n.clockCond.Broadcast()
	n.clockMu.Unlock()
	for i := range n.shards {
		sh := &n.shards[i]
		sh.mu.Lock()
		sh.cond.Broadcast()
		sh.mu.Unlock()
	}
	if first && n.flushQuit != nil {
		close(n.flushQuit)
	}
	<-n.done
}
