// Package dsm implements the replicated distributed-shared-memory runtime of
// Section 6 of the paper. Every process keeps a full local copy of the
// memory; writes update the local copy and broadcast an update message; both
// kinds of reads are non-blocking and return local values.
//
// Each replica maintains two views of memory:
//
//   - the PRAM view applies updates in receive order. The fabric's channels
//     are FIFO, so per-sender order is preserved and a read of this view is
//     a PRAM read ("returns the most recent value", Section 6);
//   - the causal view applies an update only when every causally preceding
//     update (in vector-timestamp order) has been applied, so a read of this
//     view is a causal read ("can return a value only if all preceding
//     operations have been performed locally", Section 6).
//
// A write carries the writer's dependency clock: component j counts the
// updates from process j the writer had applied when it wrote. Because both
// PRAM and causal reads only ever return applied values, the clock bounds
// every reads-from dependency of the write, which is exactly the condition
// causal delivery needs.
//
// The node also exposes the counting primitives the synchronization layer
// builds on: cumulative per-destination sent counts (for the barrier
// message-count protocol), waits on received/causally-applied counts (for
// barrier and lazy lock propagation), and per-location invalidation (for
// demand-driven lock propagation). Counter objects with commutative add
// operations (the Cholesky optimization of Section 5.3) are updates of kind
// add.
package dsm

import (
	"fmt"
	"math"
	"sync"
	"time"

	"mixedmem/internal/history"
	"mixedmem/internal/network"
	"mixedmem/internal/transport"
	"mixedmem/internal/vclock"
)

// KindUpdate is the fabric message kind used for memory updates.
const KindUpdate = "update"

// UpdateOp distinguishes plain writes from commutative counter operations.
type UpdateOp int

// Update operation kinds.
const (
	// OpSet is an ordinary write: the location takes the given value.
	OpSet UpdateOp = iota + 1
	// OpAdd is a commutative increment/decrement: the value is added to
	// the location's current contents. Adds from different processes
	// commute, which is what lets the counter-object Cholesky variant drop
	// its critical sections (Section 5.3).
	OpAdd
	// OpAddFloat adds float64 values through their bit patterns: the
	// location's contents and the update value are interpreted with
	// math.Float64frombits, summed, and stored back with Float64bits.
	// Floating-point addition commutes up to rounding, which is the
	// paper's counter-object view of the Cholesky column updates.
	OpAddFloat
)

// Update is the payload broadcast for every write or counter operation.
type Update struct {
	// From is the writing process.
	From int
	// Seq is the per-sender update sequence number, starting at 1.
	Seq uint64
	// Op selects set or add semantics.
	Op UpdateOp
	// Loc is the memory location.
	Loc string
	// Value is the written value or the addend.
	Value int64
	// TS is the writer's dependency clock after this update: TS[j] is the
	// number of updates from process j the writer has applied, counting
	// this one for j == From. It is set only under full broadcast; scoped
	// causal updates carry PrevSeq and Deps instead, and timestamp-elided
	// updates (PRAMOnly mode, or PRAM-registered readers of a scoped
	// location) carry neither.
	TS vclock.VC
	// PrevSeq, on a causal-scoped update, is the sequence number of the
	// sender's previous causal update addressed to this destination (0 for
	// the first): the per-destination delivery chain that keeps one
	// sender's updates ordered even though the destination's view of the
	// sender's sequence numbers has holes.
	PrevSeq uint64
	// Deps, on a causal-scoped update, is the sender's address-matrix
	// snapshot: Deps[p][k] is the latest update from process k addressed
	// to process p that this update transitively depends on. The receiver
	// waits on its own row and merges the whole matrix; it never mutates
	// it (the snapshot is shared across the write's destinations).
	Deps vclock.Matrix
}

// encodedSize models the wire size of an update for the latency model,
// mirroring updateCodec's layout byte for byte: From, Seq, Op, the
// length-prefixed location, Value, the length-prefixed timestamp, the u32
// depsN prefix the codec always writes (even when zero), and — for
// scoped-causal updates — the chain pointer and the sparse matrix (whose
// size tracks the active peers, not the cluster dimension).
func (u Update) encodedSize() int {
	s := 4 + 8 + 1 + (4 + len(u.Loc)) + 8 + (4 + u.TS.EncodedSize()) + 4
	if u.Deps != nil {
		s += 8 + u.Deps.ActiveEncodedSize()
	}
	return s
}

// Handler receives non-update messages delivered to a node. Handlers run on
// the node's receive loop and must not block; hand work that can wait to a
// channel or goroutine.
type Handler func(network.Message)

// Config configures a Node.
type Config struct {
	// ID is this process's identity, 0..N-1.
	ID int
	// N is the number of processes.
	N int
	// Transport is the message-passing substrate: the shared simulated
	// fabric (all nodes in one process) or a per-process wire transport
	// such as internal/transport/tcp (one node per OS process).
	Transport transport.Transport
	// Trace, when non-nil, records memory operations for the checker.
	// Programs recorded for checking must write distinct values per
	// location (the paper's convention).
	Trace *history.Builder
	// Handler receives non-update messages (lock and barrier protocol
	// traffic). May be nil when the node runs no synchronization protocol.
	Handler Handler
	// PRAMOnly elides vector timestamps from updates and maintains only
	// the PRAM view — the Section 6 optimization: "the extra overhead of
	// sending a timestamp in each message and performing the updates in
	// the timestamp order can be avoided if ... all read operations of the
	// program following a write operation are PRAM operations." Causal
	// reads and causal awaits degrade to their PRAM counterparts, so the
	// mode is only sound for programs certified PRAM-consistent (see
	// check.PRAMConsistent).
	PRAMOnly bool
	// Scope, when non-nil, restricts each location's updates to its
	// registered readers instead of broadcasting — Section 6's closing
	// remark on memory operations: "the overhead of broadcasting messages
	// for each update ... may be avoided by making optimizations based on
	// the patterns of accesses to shared variables." Causal-registered
	// readers receive dependency-stamped updates delivered through the
	// causal view; PRAM-registered readers take the timestamp-elided fast
	// path end to end; unregistered locations broadcast with full causal
	// metadata. Lock-based propagation is unsupported under a scope; the
	// barrier count-vector protocol works unchanged because it counts
	// per-destination sends. See ScopeMap for the registration contract.
	Scope *ScopeMap
	// TrackAccess records every location this node reads and with which
	// labels, so a profiling run can learn a ScopeMap for the workload
	// (Accessed / core.System.LearnedScope).
	TrackAccess bool
	// Batch configures the per-destination update outbox. The zero value
	// keeps the original behavior: one message per write per destination.
	Batch BatchConfig
}

// Stats counts a node's memory activity.
type Stats struct {
	Writes      uint64
	PRAMReads   uint64
	CausalReads uint64
	Awaits      uint64
	// Blocked is the total time spent waiting in Await, WaitReceived,
	// WaitCausalApplied, and invalidation stalls.
	Blocked time.Duration
	// MalformedUpdates counts received scoped-causal updates whose
	// dependency matrix did not match the system size — a misconfigured or
	// corrupt peer. Such updates reach the PRAM view only; they are counted
	// as causally settled so counting primitives cannot stall on them, and
	// this counter is the diagnostic that it happened.
	MalformedUpdates uint64
}

// Node is one process's replica of the shared memory.
type Node struct {
	id     int
	n      int
	fabric transport.Transport
	trace  *history.Builder
	handle Handler

	mu   sync.Mutex
	cond *sync.Cond

	pram   map[string]int64
	causal map[string]int64

	// deps[j] counts updates from j applied to the PRAM view (deps[id]
	// counts own writes). Writes are stamped with a copy of deps. Under
	// scoped placement deps[j] holds the last *sequence number* applied
	// from j, which skips the holes left by updates addressed elsewhere —
	// the PRAM view applies in receive order either way.
	deps vclock.VC
	// causalApplied[j] is the last update from j applied to the causal
	// view: a count under full broadcast (where counts and sequence
	// numbers coincide), the last applied sequence number under scoped
	// placement (where this node's addressed stream has holes).
	causalApplied vclock.VC
	// causalRecvd[j] counts updates from j whose view obligations are
	// fully met locally: causal updates once applied to the causal view,
	// timestamp-elided updates at PRAM apply (their registration contract
	// voids any causal obligation), own writes immediately. It feeds the
	// count-based WaitCausalApplied, which must not compare counts against
	// causalApplied once scoped sequence numbers have holes.
	causalRecvd []uint64
	// pending buffers delivery groups (single updates or whole batches)
	// received but not yet causally applicable.
	pending []deliveryGroup
	// sent[j] counts updates sent to process j (cumulative), feeding the
	// barrier message-count protocol of Section 6.
	sent []uint64
	// recvd[j] counts updates from process j applied to the PRAM view. It
	// equals deps[j] under full broadcast but diverges under scoped
	// placement, where per-sender sequence numbers have holes; the
	// count-based waits (barriers, lazy locks) use recvd.
	recvd []uint64
	// invalid maps a location to the update that must be applied before
	// reads of it may proceed (demand-driven lock propagation).
	invalid map[string]invalidation
	// writeLog records this node's own updates in order, so a lock client
	// can collect the write-set of a critical section for demand-driven
	// propagation. logBase is the absolute index of writeLog[0]: marks are
	// absolute positions, so the prefix no critical section still needs
	// can be trimmed without invalidating outstanding marks.
	writeLog []WriteRecord
	logBase  int
	// pramLast tracks, per location, the update most recently applied to
	// the PRAM view. PRAM reads raise the observation fence with it.
	pramLast map[string]invalidation
	// fence[j] is the observation fence: the per-sender sequence numbers
	// this process has *observed* through PRAM reads and PRAM awaits. A
	// PRAM read creates a reads-from edge in the causality relation, so by
	// Definition 2 every later causal read of this process must reflect
	// the observed update's causal context; ReadCausal therefore waits
	// until the causal view has applied at least fence[j] updates from
	// every j.
	fence vclock.VC

	stats    Stats
	pramOnly bool
	// scopeTargets holds the compiled per-location destination lists when
	// Config.Scope is set; scopeAll is the fallback for unregistered
	// locations (full broadcast). scopedCausal marks the scoped-causal
	// mode: a scope with a live causal view, where causal delivery runs on
	// the address matrix instead of vector timestamps.
	scopeTargets map[string]scopeEntry
	scopeAll     scopeEntry
	scopedCausal bool
	// addr is the address matrix (scoped-causal mode only): addr[p][k] is
	// the latest update from sender k addressed to process p that this
	// node transitively knows of. Own writes bump addr[dest][id] at send
	// time; causal applies merge the sender's shipped snapshot. Row p is
	// the wait condition shipped to destination p.
	addr vclock.Matrix
	// addrEpoch counts remote matrix merges absorbed into addr. The outbox
	// compares it against each pending causal batch's snapshot epoch: a
	// batch whose Deps predate a merge must flush before covering another
	// write, or the newer snapshot could name an update that itself waits
	// on a write parked in the batch (see enqueueLocked).
	addrEpoch uint64
	// prevBuf is a per-write scratch buffer holding each causal
	// destination's chain predecessor (addr[j][id] before the bump), so a
	// write can bump the whole matrix before snapshotting it without
	// allocating.
	prevBuf []uint64
	// track is the access log when Config.TrackAccess is set.
	track map[string]AccessKind
	// batch/outbox implement the per-destination update outbox; flushQuit
	// stops the linger flusher.
	batch     BatchConfig
	outbox    []*outboxDest
	flushQuit chan struct{}
	closed    bool
	done      chan struct{}
}

type invalidation struct {
	from int
	seq  uint64
}

// NewNode creates the replica and starts its receive loop. Close the node
// before closing the fabric is not required: closing the fabric unblocks the
// loop, but Close must still be called to wait for it.
func NewNode(cfg Config) (*Node, error) {
	if cfg.Transport == nil {
		return nil, fmt.Errorf("dsm: nil transport")
	}
	if cfg.ID < 0 || cfg.ID >= cfg.N || cfg.N != cfg.Transport.Nodes() {
		return nil, fmt.Errorf("dsm: bad id/n %d/%d for %d-node transport",
			cfg.ID, cfg.N, cfg.Transport.Nodes())
	}
	if cfg.Scope != nil {
		if err := cfg.Scope.Validate(cfg.N, cfg.PRAMOnly); err != nil {
			return nil, err
		}
	}
	node := &Node{
		id:            cfg.ID,
		pramOnly:      cfg.PRAMOnly,
		n:             cfg.N,
		fabric:        cfg.Transport,
		trace:         cfg.Trace,
		handle:        cfg.Handler,
		pram:          make(map[string]int64),
		causal:        make(map[string]int64),
		deps:          vclock.New(cfg.N),
		causalApplied: vclock.New(cfg.N),
		causalRecvd:   make([]uint64, cfg.N),
		sent:          make([]uint64, cfg.N),
		recvd:         make([]uint64, cfg.N),
		invalid:       make(map[string]invalidation),
		pramLast:      make(map[string]invalidation),
		fence:         vclock.New(cfg.N),
		done:          make(chan struct{}),
	}
	if cfg.Scope != nil {
		node.scopeTargets, node.scopeAll = cfg.Scope.compile(cfg.ID, cfg.N, cfg.PRAMOnly)
		node.scopedCausal = !cfg.PRAMOnly
		if node.scopedCausal {
			node.addr = vclock.NewMatrix(cfg.N)
			node.prevBuf = make([]uint64, cfg.N)
		}
	}
	if cfg.TrackAccess {
		node.track = make(map[string]AccessKind)
	}
	if cfg.Batch.Enabled {
		node.batch = cfg.Batch.WithDefaults()
		node.outbox = make([]*outboxDest, cfg.N)
		for j := range node.outbox {
			if j != node.id {
				node.outbox[j] = newOutboxDest()
			}
		}
		node.flushQuit = make(chan struct{})
		go node.lingerLoop()
	}
	node.cond = sync.NewCond(&node.mu)
	go node.recvLoop()
	return node, nil
}

// ID returns the node's process identity.
func (n *Node) ID() int { return n.id }

// N returns the number of processes.
func (n *Node) N() int { return n.n }

// Transport returns the underlying message substrate (for synchronization
// protocols).
func (n *Node) Transport() transport.Transport { return n.fabric }

// Trace returns the history builder, or nil when not recording.
func (n *Node) Trace() *history.Builder { return n.trace }

// recvLoop dispatches fabric messages: updates into the memory views,
// everything else to the protocol handler.
func (n *Node) recvLoop() {
	defer close(n.done)
	for {
		m, ok := n.fabric.Recv(n.id)
		if !ok {
			return
		}
		if m.Kind == KindUpdate {
			u, ok := m.Payload.(Update)
			if !ok {
				continue
			}
			n.applyRemote(u)
			continue
		}
		if m.Kind == KindUpdateBatch {
			b, ok := m.Payload.(UpdateBatch)
			if !ok {
				continue
			}
			n.applyBatch(b)
			continue
		}
		if n.handle != nil {
			n.handle(m)
		}
	}
}

// applyRemote applies a received update: immediately to the PRAM view, and
// to the causal view once its dependencies are satisfied. Under scoped
// placement a timestamp-elided update (no Deps) is addressed to a
// PRAM-registered reader: it carries no causal obligations, so it never
// enters the causal view and never raises the observation fence.
func (n *Node) applyRemote(u Update) {
	n.mu.Lock()
	defer n.mu.Unlock()
	// PRAM view: apply in receive order.
	n.applyTo(n.pram, u)
	n.deps.Set(u.From, u.Seq)
	n.recvd[u.From]++
	switch {
	case n.pramOnly:
		n.pramLast[u.Loc] = invalidation{from: u.From, seq: u.Seq}
	case n.scopedCausal:
		if u.Deps == nil {
			// Elided fast path: PRAM view only; the registration contract
			// says no causal read of this process depends on it.
			n.causalRecvd[u.From]++
			break
		}
		if u.Deps.Len() != n.n {
			// Malformed dependency matrix: a misconfigured or corrupt peer.
			// The update stays out of the causal view (and out of pramLast,
			// so no observation fence can wait on it), but it must not
			// silently stall the counting primitives — count it as causally
			// settled, like the elided path, and record the fault.
			n.causalRecvd[u.From]++
			n.stats.MalformedUpdates++
			break
		}
		n.pramLast[u.Loc] = invalidation{from: u.From, seq: u.Seq}
		n.pending = append(n.pending, deliveryGroup{
			from: u.From, firstSeq: u.Seq, lastSeq: u.Seq,
			prevSeq: u.PrevSeq, deps: u.Deps, count: 1, one: u,
		})
		n.drainCausalLocked()
	default:
		// Causal view: buffer as a singleton group, then drain everything
		// deliverable.
		n.pramLast[u.Loc] = invalidation{from: u.From, seq: u.Seq}
		n.pending = append(n.pending, deliveryGroup{
			from: u.From, firstSeq: u.Seq, lastSeq: u.Seq, ts: u.TS,
			count: 1, one: u,
		})
		n.drainCausalLocked()
	}
	n.cond.Broadcast()
}

// applyBatch applies a received update batch atomically under the node lock:
// every entry goes into the PRAM view in one critical section (receive-side
// amortization of lock traffic), the PRAM clock advances to the latest
// covered sequence number, and the received count advances by the batch's
// full Count — including coalesced-away updates — so the barrier and
// lazy-lock counting protocols account every original write. The causal view
// receives the batch as one delivery group.
func (n *Node) applyBatch(b UpdateBatch) {
	if len(b.Updates) == 0 {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	// Scoped batches are kind-segregated at the sender: a batch with no
	// dependency matrix is entirely timestamp-elided and stays out of the
	// causal view, exactly like a singleton elided update. A batch whose
	// matrix has the wrong dimension (misconfigured or corrupt peer) is
	// handled like the elided case — PRAM view only, no fence anchor, but
	// counted as causally settled so no counting primitive stalls on it —
	// with the fault recorded in Stats.
	elided := n.pramOnly || (n.scopedCausal && b.Deps == nil)
	malformed := n.scopedCausal && b.Deps != nil && b.Deps.Len() != n.n
	var maxSeq uint64
	var maxTS vclock.VC
	for _, u := range b.Updates {
		n.applyTo(n.pram, u)
		if n.pramOnly || (!elided && !malformed) {
			n.pramLast[u.Loc] = invalidation{from: b.From, seq: u.Seq}
		}
		if u.Seq > maxSeq {
			maxSeq = u.Seq
			maxTS = u.TS
		}
	}
	n.deps.Set(b.From, maxSeq)
	n.recvd[b.From] += b.Count
	switch {
	case n.pramOnly:
	case elided:
		n.causalRecvd[b.From] += b.Count
	case malformed:
		n.causalRecvd[b.From] += b.Count
		n.stats.MalformedUpdates += b.Count
	case n.scopedCausal:
		n.pending = append(n.pending, deliveryGroup{
			from:     b.From,
			firstSeq: b.FirstSeq,
			lastSeq:  maxSeq,
			prevSeq:  b.PrevSeq,
			deps:     b.Deps,
			count:    b.Count,
			batch:    b.Updates,
		})
		n.drainCausalLocked()
	default:
		n.pending = append(n.pending, deliveryGroup{
			from:     b.From,
			firstSeq: b.FirstSeq,
			lastSeq:  maxSeq,
			ts:       maxTS,
			count:    b.Count,
			batch:    b.Updates,
		})
		n.drainCausalLocked()
	}
	n.cond.Broadcast()
}

// drainCausalLocked applies pending delivery groups to the causal view in
// causal order until no more are deliverable. A group (single update or whole
// batch) is applied atomically: its entries all land before any reader can
// run, which is a legal causal schedule because delivery may be delayed but
// never reordered, and the group covers a contiguous per-sender run.
func (n *Node) drainCausalLocked() {
	for {
		progressed := false
		kept := n.pending[:0]
		for _, g := range n.pending {
			if n.groupDeliverableLocked(g) {
				if g.batch == nil {
					n.applyTo(n.causal, g.one)
				} else {
					for _, u := range g.batch {
						n.applyTo(n.causal, u)
					}
				}
				if g.deps != nil {
					// Scoped-causal: advance the sender's chain to the
					// group's last addressed sequence number and absorb the
					// shipped dependency knowledge. The epoch bump tells the
					// outbox that pending causal batches now predate part of
					// the matrix.
					n.causalApplied.Set(g.from, g.lastSeq)
					n.addr.Merge(g.deps)
					n.addrEpoch++
				} else {
					n.causalApplied.Merge(g.ts)
				}
				n.causalRecvd[g.from] += g.count
				progressed = true
			} else {
				kept = append(kept, g)
			}
		}
		n.pending = kept
		if !progressed {
			return
		}
	}
}

func (n *Node) applyTo(view map[string]int64, u Update) {
	switch u.Op {
	case OpAdd:
		view[u.Loc] += u.Value
	case OpAddFloat:
		sum := math.Float64frombits(uint64(view[u.Loc])) +
			math.Float64frombits(uint64(u.Value))
		view[u.Loc] = int64(math.Float64bits(sum))
	default:
		view[u.Loc] = u.Value
	}
}

// Write stores value at loc in both local views and broadcasts the update.
// It is non-blocking: the response is local and the update propagates
// asynchronously, as the paper's interface permits (Section 3).
func (n *Node) Write(loc string, value int64) {
	n.broadcastUpdate(OpSet, loc, value)
	if n.trace != nil {
		n.trace.AppendOp(history.Op{
			Proc: n.id, Kind: history.Write, Loc: loc, Value: value,
		})
	}
}

// Add applies a commutative increment (negative for decrement) to a counter
// object (Section 5.3). Counter operations are not recorded in traces: they
// are operations of an abstract data type, not reads/writes.
func (n *Node) Add(loc string, delta int64) {
	n.broadcastUpdate(OpAdd, loc, delta)
}

// AddFloat applies a commutative float64 increment to a location holding a
// Float64bits-encoded value: the counter-object view of the Cholesky column
// updates (Section 5.3).
func (n *Node) AddFloat(loc string, delta float64) {
	n.broadcastUpdate(OpAddFloat, loc, int64(math.Float64bits(delta)))
}

func (n *Node) broadcastUpdate(op UpdateOp, loc string, value int64) {
	n.mu.Lock()
	n.deps.Tick(n.id)
	u := Update{
		From:  n.id,
		Seq:   n.deps.Get(n.id),
		Op:    op,
		Loc:   loc,
		Value: value,
	}
	n.applyTo(n.pram, u)
	n.pramLast[u.Loc] = invalidation{from: n.id, seq: u.Seq}
	n.recvd[n.id]++
	if !n.pramOnly {
		n.applyTo(n.causal, u)
		n.causalApplied.Set(n.id, u.Seq)
		n.causalRecvd[n.id]++
	}
	n.writeLog = append(n.writeLog, WriteRecord{Loc: loc, Seq: u.Seq})
	// Send while holding the lock so per-sender sequence numbers hit the
	// fabric in order even under concurrent writers; fabric sends never
	// block. With the outbox enabled, "send" means enqueue into the
	// destination's pending batch, flushing any batch that crossed a
	// threshold.
	switch {
	case n.scopeTargets != nil:
		n.sendScopedLocked(u)
	case n.batch.Enabled:
		if !n.pramOnly {
			u.TS = n.deps.Clone()
		}
		for j := 0; j < n.n; j++ {
			if j == n.id {
				continue
			}
			n.sent[j]++
			if n.enqueueLocked(j, u, false, nil) {
				n.flushDestLocked(j)
			}
		}
	default:
		if !n.pramOnly {
			u.TS = n.deps.Clone()
		}
		for j := 0; j < n.n; j++ {
			if j != n.id {
				n.sent[j]++
			}
		}
		_ = n.fabric.Broadcast(n.id, KindUpdate, u, u.encodedSize())
	}
	n.stats.Writes++
	n.cond.Broadcast()
	n.mu.Unlock()
}

// sendScopedLocked routes one write under the scope map: timestamp-elided
// copies to the location's PRAM-registered readers, dependency-stamped
// copies to its causal-registered readers, and (for locations the map does
// not name) a copy to every peer. Causal copies carry the per-destination
// chain pointer and a snapshot of the address matrix taken after this
// write's bumps, so a destination that relays the value onward ships a
// matrix that already covers this update at every other destination. The
// snapshot is taken here, under the same lock hold as the bumps, for both
// the immediate sends and the outbox path: a batch must ship dependencies
// its covered writes were written under, never ones absorbed later.
func (n *Node) sendScopedLocked(u Update) {
	ent, ok := n.scopeTargets[u.Loc]
	if !ok {
		ent = n.scopeAll
	}
	for _, j := range ent.elided {
		n.sent[j]++
		if n.batch.Enabled {
			if n.enqueueLocked(j, u, false, nil) {
				n.flushDestLocked(j)
			}
			continue
		}
		_ = n.fabric.Send(network.Message{
			From: n.id, To: j, Kind: KindUpdate,
			Payload: u, Size: u.encodedSize(),
		})
	}
	if len(ent.causal) == 0 {
		return
	}
	// Bump the matrix for every causal destination before any copy (or
	// flushed batch) snapshots it: transitive soundness needs each shipped
	// matrix to record this update at all of its destinations.
	for _, j := range ent.causal {
		n.prevBuf[j] = n.addr.Get(j, n.id)
		n.addr.Set(j, n.id, u.Seq)
	}
	snap := n.addr.Clone() // shared across destinations; receivers only merge from it
	if n.batch.Enabled {
		for _, j := range ent.causal {
			n.sent[j]++
			if n.enqueueLocked(j, u, true, snap) {
				n.flushDestLocked(j)
			}
		}
		return
	}
	for _, j := range ent.causal {
		n.sent[j]++
		cu := u
		cu.PrevSeq = n.prevBuf[j]
		cu.Deps = snap
		_ = n.fabric.Send(network.Message{
			From: n.id, To: j, Kind: KindUpdate,
			Payload: cu, Size: cu.encodedSize(),
		})
	}
}

// ReadPRAM returns loc's value in the PRAM view: the most recent locally
// applied value (Definition 3 at the implementation level). It blocks only
// if the location is invalidated by demand-driven propagation.
func (n *Node) ReadPRAM(loc string) int64 {
	v := n.readPRAMValue(loc)
	if n.trace != nil {
		n.trace.AppendOp(history.Op{
			Proc: n.id, Kind: history.Read, Loc: loc, Value: v, Label: history.LabelPRAM,
		})
	}
	return v
}

// readPRAMValue is ReadPRAM without trace recording, shared with thread
// handles.
func (n *Node) readPRAMValue(loc string) int64 {
	n.mu.Lock()
	if n.track != nil {
		n.track[loc] |= AccessPRAM
	}
	n.waitValidLocked(loc, false)
	v := n.pram[loc]
	n.raiseFenceLocked(loc)
	n.stats.PRAMReads++
	n.mu.Unlock()
	return v
}

// ReadCausal returns loc's value in the causal view: the most recent value
// all of whose causal predecessors have been applied locally (Definition 2
// at the implementation level). It blocks if the location is invalidated by
// demand-driven propagation, or until the causal view covers the process's
// observation fence — everything earlier PRAM reads and PRAM awaits of this
// process observed, whose reads-from edges Definition 2 counts as causal
// context.
func (n *Node) ReadCausal(loc string) int64 {
	v := n.readCausalValue(loc)
	if n.trace != nil {
		label := history.LabelCausal
		if n.pramOnly {
			label = history.LabelPRAM
		}
		n.trace.AppendOp(history.Op{
			Proc: n.id, Kind: history.Read, Loc: loc, Value: v, Label: label,
		})
	}
	return v
}

// readCausalValue is ReadCausal without trace recording, shared with thread
// handles.
func (n *Node) readCausalValue(loc string) int64 {
	if n.pramOnly {
		// Degraded mode: only sound for PRAM-consistent programs.
		return n.readPRAMValue(loc)
	}
	n.mu.Lock()
	if n.track != nil {
		n.track[loc] |= AccessCausal
	}
	n.waitValidLocked(loc, true)
	n.waitFenceLocked()
	v := n.causal[loc]
	n.stats.CausalReads++
	n.mu.Unlock()
	return v
}

// raiseFenceLocked records that this process observed, through the PRAM
// view, the update last applied to loc. Later causal reads wait for the
// causal view to catch up to the fence (Definition 2: the observation is a
// reads-from edge in the causality relation).
func (n *Node) raiseFenceLocked(loc string) {
	lw, ok := n.pramLast[loc]
	if !ok {
		return
	}
	if lw.seq > n.fence.Get(lw.from) {
		n.fence.Set(lw.from, lw.seq)
	}
}

// waitFenceLocked blocks until the causal view has applied every update the
// observation fence covers.
func (n *Node) waitFenceLocked() {
	start := time.Now()
	waited := false
	for !n.closed {
		ok := true
		for j := 0; j < n.n; j++ {
			if n.causalApplied.Get(j) < n.fence.Get(j) {
				ok = false
				break
			}
		}
		if ok {
			break
		}
		waited = true
		n.cond.Wait()
	}
	if waited {
		n.stats.Blocked += time.Since(start)
	}
}

// waitValidLocked blocks while loc is invalidated and the required update
// has not yet reached the relevant view.
func (n *Node) waitValidLocked(loc string, causalView bool) {
	inv, ok := n.invalid[loc]
	if !ok {
		return
	}
	start := time.Now()
	for {
		var applied uint64
		if causalView {
			applied = n.causalApplied.Get(inv.from)
		} else {
			applied = n.deps.Get(inv.from)
		}
		if applied >= inv.seq || n.closed {
			break
		}
		n.cond.Wait()
	}
	delete(n.invalid, loc)
	n.stats.Blocked += time.Since(start)
}

// AwaitPRAM blocks until loc holds value in the PRAM view — the busy-wait
// loop of PRAM reads the paper describes (Section 6), realized with a
// condition variable instead of spinning. Reads that follow it see the
// matched write and its sender's FIFO prefix, but not transitive
// dependencies through third processes; programs that read with causal
// labels after an await should use AwaitCausal.
func (n *Node) AwaitPRAM(loc string, value int64) {
	n.await(loc, value, false)
}

// AwaitCausal blocks until loc holds value in the causal view — a busy-wait
// loop of causal reads. Because the causal view only applies an update after
// all its causal predecessors, every update the matched write depends on
// (transitively, through any chain of processes) is locally applied when
// AwaitCausal returns; causal reads that follow it satisfy Definition 2.
func (n *Node) AwaitCausal(loc string, value int64) {
	n.await(loc, value, true)
}

func (n *Node) await(loc string, value int64, causalView bool) {
	n.awaitValue(loc, value, causalView)
	if n.trace != nil {
		n.trace.AppendOp(history.Op{
			Proc: n.id, Kind: history.Await, Loc: loc, Value: value,
		})
	}
}

// awaitValue is the await wait loop without trace recording, shared with
// thread handles.
func (n *Node) awaitValue(loc string, value int64, causalView bool) {
	wantCausal := causalView
	if n.pramOnly {
		causalView = false
	}
	view := n.pram
	if causalView {
		view = n.causal
	}
	n.mu.Lock()
	if n.track != nil {
		if wantCausal {
			n.track[loc] |= AccessCausal
		} else {
			n.track[loc] |= AccessPRAM
		}
	}
	if n.batch.Enabled {
		// Await registration is a synchronization boundary: a process about
		// to block on a peer's flag must not keep its own half of the
		// handshake parked in the outbox.
		n.flushAllLocked()
	}
	start := time.Now()
	for view[loc] != value && !n.closed {
		n.cond.Wait()
	}
	if !causalView {
		// The matched write is a synchronization edge incident on this
		// process; later causal reads must observe its causal context.
		n.raiseFenceLocked(loc)
	}
	n.stats.Awaits++
	n.stats.Blocked += time.Since(start)
	n.mu.Unlock()
}

// SentCounts returns a copy of the cumulative per-destination update counts,
// the vector each process reports to the barrier manager (Section 6). With
// the outbox enabled it first flushes every pending batch: the counts are a
// promise that peers can wait for that many updates, so nothing counted may
// remain parked locally.
func (n *Node) SentCounts() []uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.batch.Enabled {
		n.flushAllLocked()
	}
	out := make([]uint64, n.n)
	copy(out, n.sent)
	return out
}

// ReceivedCounts returns, per sender, the cumulative number of updates
// applied to the PRAM view (own writes for the node's own component).
func (n *Node) ReceivedCounts() []uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]uint64, n.n)
	copy(out, n.recvd)
	return out
}

// WaitReceived blocks until at least min[j] updates from each process j have
// been applied to the PRAM view. The barrier protocol uses it to ensure all
// prior-phase updates are in place before the phase's reads (Section 6).
func (n *Node) WaitReceived(min []uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.batch.Enabled {
		n.flushAllLocked()
	}
	start := time.Now()
	for !n.countsReachedLocked(min) && !n.closed {
		n.cond.Wait()
	}
	n.stats.Blocked += time.Since(start)
}

func (n *Node) countsReachedLocked(min []uint64) bool {
	for j := 0; j < n.n && j < len(min); j++ {
		if n.recvd[j] < min[j] {
			return false
		}
	}
	return true
}

// WaitCausalApplied blocks until at least min[j] updates from each process j
// have met their causal-view obligations locally: applied to the causal view
// for dependency-stamped updates, applied to the PRAM view for
// timestamp-elided ones (their registration contract voids the causal
// obligation). Under full broadcast this is exactly "applied to the causal
// view"; under scoped placement the count-based phrasing stays sound where
// per-sender sequence numbers have holes.
func (n *Node) WaitCausalApplied(min []uint64) {
	if n.pramOnly {
		n.WaitReceived(min)
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.batch.Enabled {
		n.flushAllLocked()
	}
	start := time.Now()
	for !n.causalCountsReachedLocked(min) && !n.closed {
		n.cond.Wait()
	}
	n.stats.Blocked += time.Since(start)
}

func (n *Node) causalCountsReachedLocked(min []uint64) bool {
	for j := 0; j < n.n && j < len(min); j++ {
		if n.causalRecvd[j] < min[j] {
			return false
		}
	}
	return true
}

// WriteRecord identifies one of the node's own updates: the location and the
// per-sender sequence number it was broadcast with.
type WriteRecord struct {
	Loc string
	Seq uint64
}

// WriteMark returns a marker into the node's write log. Combined with
// WritesSince it delimits the write-set of a critical section. Marks are
// absolute positions and stay valid across TrimWriteLog.
func (n *Node) WriteMark() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.logBase + len(n.writeLog)
}

// WritesSince returns a copy of the node's own updates recorded at or after
// the given marker. Entries already trimmed are gone; callers trim only
// below their oldest outstanding mark.
func (n *Node) WritesSince(mark int) []WriteRecord {
	n.mu.Lock()
	defer n.mu.Unlock()
	idx := mark - n.logBase
	if idx < 0 {
		idx = 0
	}
	if idx > len(n.writeLog) {
		idx = len(n.writeLog)
	}
	out := make([]WriteRecord, len(n.writeLog)-idx)
	copy(out, n.writeLog[idx:])
	return out
}

// TrimWriteLog discards write-log entries before the given absolute mark,
// bounding the log's memory. The lock client calls it after each unlock with
// its oldest still-outstanding mark.
func (n *Node) TrimWriteLog(upTo int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	idx := upTo - n.logBase
	if idx <= 0 {
		return
	}
	if idx > len(n.writeLog) {
		idx = len(n.writeLog)
	}
	kept := len(n.writeLog) - idx
	copy(n.writeLog, n.writeLog[idx:])
	n.writeLog = n.writeLog[:kept]
	n.logBase += idx
}

// Invalidate marks loc stale until the update (from, seq) has been applied:
// the demand-driven propagation mode of Section 6, where the write-set of a
// critical section travels with the unlock and only reads of invalidated
// locations block.
func (n *Node) Invalidate(loc string, from int, seq uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if cur, ok := n.invalid[loc]; ok && cur.seq >= seq && cur.from == from {
		return
	}
	n.invalid[loc] = invalidation{from: from, seq: seq}
}

// Stats returns a snapshot of the node's counters.
func (n *Node) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// Snapshot returns a copy of the requested view's contents, for debugging
// and result extraction in examples. causalView selects the causal view.
func (n *Node) Snapshot(causalView bool) map[string]int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	src := n.pram
	if causalView {
		src = n.causal
	}
	out := make(map[string]int64, len(src))
	for k, v := range src {
		out[k] = v
	}
	return out
}

// Close unblocks all waiters and waits for the receive loop to exit. The
// fabric must be closed (or still delivering) for the loop to finish;
// closing the fabric first is the usual order. Pending outbox batches are
// flushed best-effort (a closed fabric drops them silently), and the linger
// flusher is stopped.
func (n *Node) Close() {
	n.mu.Lock()
	first := !n.closed
	if first && n.batch.Enabled {
		n.flushAllLocked()
	}
	n.closed = true
	n.cond.Broadcast()
	n.mu.Unlock()
	if first && n.flushQuit != nil {
		close(n.flushQuit)
	}
	<-n.done
}
