package dsm

import "mixedmem/internal/history"

// ThreadHandle issues memory operations on behalf of one thread of a
// multithreaded process. The paper models local computations as partial
// orders (Section 3): operations of different threads of one process are
// unordered by program order unless fork/join edges relate them. Operations
// through a handle are recorded with the handle's thread ID; the runtime
// semantics are identical to the node's own methods (one replica per
// process, shared by its threads).
//
// Synchronization operations (locks, barriers) stay on the main thread:
// well-formedness requires each barrier to be totally ordered with all
// operations of its process (Section 3's fourth condition).
type ThreadHandle struct {
	n *Node
	t int
}

// Thread returns a handle issuing operations as thread t of this process.
// Thread 0 is the main thread (the node's own methods).
func (n *Node) Thread(t int) ThreadHandle {
	return ThreadHandle{n: n, t: t}
}

// ID returns the process identity.
func (h ThreadHandle) ID() int { return h.n.id }

// ThreadID returns the handle's thread number.
func (h ThreadHandle) ThreadID() int { return h.t }

// Write stores value at loc, recorded on this thread.
func (h ThreadHandle) Write(loc string, value int64) {
	h.n.broadcastUpdate(OpSet, loc, value)
	h.record(history.Op{Kind: history.Write, Loc: loc, Value: value})
}

// ReadPRAM performs a PRAM read, recorded on this thread.
func (h ThreadHandle) ReadPRAM(loc string) int64 {
	v := h.n.readPRAMValue(loc)
	h.record(history.Op{Kind: history.Read, Loc: loc, Value: v, Label: history.LabelPRAM})
	return v
}

// ReadCausal performs a causal read, recorded on this thread.
func (h ThreadHandle) ReadCausal(loc string) int64 {
	v := h.n.readCausalValue(loc)
	h.record(history.Op{Kind: history.Read, Loc: loc, Value: v, Label: history.LabelCausal})
	return v
}

// ReadSlow performs a slow read, recorded on this thread.
func (h ThreadHandle) ReadSlow(loc string) int64 {
	v := h.n.readSlowValue(loc)
	h.record(history.Op{Kind: history.Read, Loc: loc, Value: v, Label: history.LabelSlow})
	return v
}

// ReadSC performs a sequentially consistent read through the location's
// owner, recorded on this thread.
func (h ThreadHandle) ReadSC(loc string) int64 {
	v := h.n.scRoundTrip(0, loc, 0)
	h.n.statSCReads.Add(1)
	h.record(history.Op{Kind: history.Read, Loc: loc, Value: v, Label: history.LabelSC})
	return v
}

// AwaitPRAM blocks until loc holds value in the PRAM view.
func (h ThreadHandle) AwaitPRAM(loc string, value int64) {
	h.n.awaitValue(loc, value, false)
	h.record(history.Op{Kind: history.Await, Loc: loc, Value: value})
}

// AwaitCausal blocks until loc holds value in the causal view.
func (h ThreadHandle) AwaitCausal(loc string, value int64) {
	h.n.awaitValue(loc, value, true)
	h.record(history.Op{Kind: history.Await, Loc: loc, Value: value})
}

// Add applies a commutative increment (not recorded; counter objects are
// abstract-data-type operations).
func (h ThreadHandle) Add(loc string, delta int64) { h.n.Add(loc, delta) }

// AddFloat applies a commutative float64 increment.
func (h ThreadHandle) AddFloat(loc string, delta float64) { h.n.AddFloat(loc, delta) }

func (h ThreadHandle) record(op history.Op) {
	if h.n.trace == nil {
		return
	}
	op.Proc = h.n.id
	op.Thread = h.t
	h.n.trace.AppendOp(op)
}
