package dsm

import (
	"fmt"
	"math"
	"time"

	"mixedmem/internal/history"
	"mixedmem/internal/network"
	"mixedmem/internal/obs"
	"mixedmem/internal/transport"
)

// This file implements the SC point of the label lattice: the central-server
// realization of sequential consistency. An SC-labeled location lives at one
// owner replica — a deterministic hash of the location name, so every process
// agrees with no coordination — and every access, read or write, is a
// blocking round trip to that owner. The owner serializes requests (its
// receive loop handles them one at a time, and the self-owner fast path
// serializes through the same lock), and each access completes before its
// issuer continues, so every execution is equivalent to the interleaving the
// owner observed: the accesses are linearizable, hence sequentially
// consistent. This is the same protocol internal/seqmem runs for a whole
// memory, reduced to the locations that need it, which is exactly the
// mixed-consistency bargain: pay the round trip only where the program's
// structure cannot justify a weaker label.

// Message kinds of the SC owner protocol. They are protocol traffic, not
// updates: they never count toward the barrier protocol's sent/received
// vectors, exactly like lock and barrier messages.
const (
	// KindSCRequest carries an SCRequest from a client to a location's owner.
	KindSCRequest = "sc-req"
	// KindSCReply carries an SCReply from the owner back to the client.
	KindSCReply = "sc-rep"
)

// SCRequest is one blocking access to an SC-labeled location. Op zero is a
// read; OpSet, OpAdd, and OpAddFloat are the write kinds, with the same
// semantics as broadcast updates.
type SCRequest struct {
	// ReqID matches the reply to the waiting client; unique per client, which
	// suffices because the owner replies only to the requester.
	ReqID uint64
	// From is the requesting process.
	From int
	// Op is zero for a read, or the write kind to apply.
	Op UpdateOp
	// Loc is the SC location.
	Loc string
	// Value is the written value or addend (reads ignore it).
	Value int64
}

func (r SCRequest) encodedSize() int {
	return 8 + 4 + 1 + (4 + len(r.Loc)) + 8
}

// SCReply answers one SCRequest: the location's value after applying the
// request (for a read, its current value).
type SCReply struct {
	ReqID uint64
	Value int64
}

func (r SCReply) encodedSize() int { return 8 + 8 }

// SCOwner reports which process owns an SC-labeled location in a system of
// n processes. Exported so placement-aware callers (benchmarks, deployment
// tooling) can co-locate an SC location with its hottest writer — the
// self-owner fast path — or deliberately force the round trip.
func SCOwner(loc string, n int) int { return scOwner(loc, n) }

// scOwner maps a location to its owner process: FNV-1a over the location
// name, reduced modulo the system size. Every node computes the same owner
// with no coordination.
func scOwner(loc string, n int) int {
	h := uint32(2166136261)
	for i := 0; i < len(loc); i++ {
		h ^= uint32(loc[i])
		h *= 16777619
	}
	return int(h % uint32(n))
}

// ReadSC reads an SC-labeled location through its owner: a blocking round
// trip (or a locked local lookup when this node is the owner). The returned
// value is the one the owner's serialization holds at the moment the request
// is served.
func (n *Node) ReadSC(loc string) int64 {
	v := n.scRoundTrip(0, loc, 0)
	n.statSCReads.Add(1)
	if n.trace != nil {
		n.trace.AppendOp(history.Op{
			Proc: n.id, Kind: history.Read, Loc: loc, Value: v, Label: history.LabelSC,
		})
	}
	return v
}

// WriteSC writes an SC-labeled location through its owner, returning only
// once the owner has applied and acknowledged the write — the blocking store
// of the central-server protocol.
func (n *Node) WriteSC(loc string, value int64) {
	n.scApply(OpSet, loc, value)
	if n.trace != nil {
		n.trace.AppendOp(history.Op{
			Proc: n.id, Kind: history.Write, Loc: loc, Value: value,
		})
	}
}

// scApply performs a write-kind round trip without trace recording (Write,
// Add, AddFloat, and WriteSC record their own trace ops).
func (n *Node) scApply(op UpdateOp, loc string, value int64) {
	n.scRoundTrip(op, loc, value)
	n.statSCWrites.Add(1)
}

// scRoundTrip issues one SC access and blocks for the owner's reply. The
// self-owner fast path takes no messages: the scMu hold is the serialization
// point the round trip would otherwise buy.
func (n *Node) scRoundTrip(op UpdateOp, loc string, value int64) int64 {
	owner := scOwner(loc, n.n)
	if owner == n.id {
		n.scMu.Lock()
		v := n.scApplyLocked(op, loc, value)
		n.scMu.Unlock()
		return v
	}
	// An SC access is a synchronization point in program order: anything
	// parked in the outbox must not linger behind the round trip.
	n.FlushUpdates()
	req := SCRequest{
		ReqID: n.scSeq.Add(1),
		From:  n.id,
		Op:    op,
		Loc:   loc,
		Value: value,
	}
	ch := make(chan int64, 1)
	n.scMu.Lock()
	n.scWaiting[req.ReqID] = ch
	n.scMu.Unlock()
	start := time.Now()
	if n.obs != nil {
		n.obs.RecordLoc(obs.EvSCRequest, uint8(history.LabelSC), uint16(owner), loc, req.ReqID, 0, 0)
	}
	_ = n.fabric.Send(network.Message{
		From: n.id, To: owner, Kind: KindSCRequest,
		Payload: req, Size: req.encodedSize(),
	})
	select {
	case v := <-ch:
		n.scBlocked(owner, loc, req.ReqID, time.Since(start))
		return v
	case <-n.done:
		// The node is shutting down; the reply will never arrive.
		n.scBlocked(owner, loc, req.ReqID, time.Since(start))
		return 0
	}
}

// scBlocked accounts one SC round trip's blocked interval to the aggregate
// and per-cause counters and records the reply event.
func (n *Node) scBlocked(owner int, loc string, reqID uint64, d time.Duration) {
	n.statBlocked.Add(int64(d))
	n.statBlockedSC.Add(int64(d))
	if n.obs != nil {
		n.obs.RecordLoc(obs.EvSCReply, uint8(history.LabelSC), uint16(owner), loc, reqID, uint64(d), 0)
	}
}

// scApplyLocked applies one access to the owner's authoritative store; the
// caller holds scMu. It returns the location's value after the access.
func (n *Node) scApplyLocked(op UpdateOp, loc string, value int64) int64 {
	if n.scStore == nil {
		n.scStore = make(map[string]int64)
	}
	cur := n.scStore[loc]
	switch op {
	case OpSet:
		cur = value
	case OpAdd:
		cur += value
	case OpAddFloat:
		cur = int64(math.Float64bits(
			math.Float64frombits(uint64(cur)) + math.Float64frombits(uint64(value))))
	default:
		return cur // a read
	}
	n.scStore[loc] = cur
	return cur
}

// handleSCRequest serves one owner-side access on the receive loop: apply,
// then reply to the requester. Fabric sends never block, so serving inline
// keeps the owner's serialization exactly the receive order.
func (n *Node) handleSCRequest(r SCRequest) {
	n.scMu.Lock()
	v := n.scApplyLocked(r.Op, r.Loc, r.Value)
	n.scMu.Unlock()
	rep := SCReply{ReqID: r.ReqID, Value: v}
	_ = n.fabric.Send(network.Message{
		From: n.id, To: r.From, Kind: KindSCReply,
		Payload: rep, Size: rep.encodedSize(),
	})
}

// handleSCReply routes an owner's reply to the round trip waiting on it.
func (n *Node) handleSCReply(r SCReply) {
	n.scMu.Lock()
	ch := n.scWaiting[r.ReqID]
	delete(n.scWaiting, r.ReqID)
	n.scMu.Unlock()
	if ch != nil {
		ch <- r.Value // buffered; never blocks the receive loop
	}
}

// Wire codecs, so SC traffic crosses the tcp transport exactly like updates.

type scRequestCodec struct{}

func (scRequestCodec) Encode(dst []byte, payload any) ([]byte, error) {
	r, ok := payload.(SCRequest)
	if !ok {
		return dst, fmt.Errorf("dsm: sc-req codec: payload is %T", payload)
	}
	dst = transport.AppendUint64(dst, r.ReqID)
	dst = transport.AppendUint32(dst, uint32(r.From))
	dst = append(dst, byte(r.Op))
	dst = transport.AppendString(dst, r.Loc)
	dst = transport.AppendUint64(dst, uint64(r.Value))
	return dst, nil
}

func (scRequestCodec) Decode(data []byte) (any, error) {
	d := transport.NewDecoder(data)
	r := SCRequest{
		ReqID: d.Uint64(),
		From:  int(d.Uint32()),
		Op:    UpdateOp(d.Byte()),
		Loc:   d.String(),
	}
	r.Value = int64(d.Uint64())
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("dsm: sc-req codec: %w", err)
	}
	return r, nil
}

type scReplyCodec struct{}

func (scReplyCodec) Encode(dst []byte, payload any) ([]byte, error) {
	r, ok := payload.(SCReply)
	if !ok {
		return dst, fmt.Errorf("dsm: sc-rep codec: payload is %T", payload)
	}
	dst = transport.AppendUint64(dst, r.ReqID)
	dst = transport.AppendUint64(dst, uint64(r.Value))
	return dst, nil
}

func (scReplyCodec) Decode(data []byte) (any, error) {
	d := transport.NewDecoder(data)
	r := SCReply{ReqID: d.Uint64()}
	r.Value = int64(d.Uint64())
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("dsm: sc-rep codec: %w", err)
	}
	return r, nil
}

func init() {
	transport.RegisterPayload(KindSCRequest, scRequestCodec{})
	transport.RegisterPayload(KindSCReply, scReplyCodec{})
}
