package apps

import (
	"testing"

	"mixedmem/internal/core"
)

// TestGaussSeidelPRAM is experiment E7: asynchronous relaxation converges
// under plain PRAM with no synchronization during the sweeps (Section 7's
// closing observation).
func TestGaussSeidelPRAM(t *testing.T) {
	ls := GenDiagDominant(16, 19)
	direct, err := ls.SolveDirect()
	if err != nil {
		t.Fatalf("SolveDirect: %v", err)
	}
	var res SolveResult
	runMixed(t, 4, func(p *core.Proc) {
		r := SolveAsyncPRAM(p, ls, 120)
		if p.ID() == 0 {
			res = r
		}
	})
	if d := MaxAbsDiff(res.X, direct); d > 1e-6 {
		t.Fatalf("asynchronous PRAM relaxation off by %v", d)
	}
}

func TestGaussSeidelPRAMUsesNoSyncDuringSweeps(t *testing.T) {
	ls := GenDiagDominant(8, 29)
	sys := runMixed(t, 2, func(p *core.Proc) {
		SolveAsyncPRAM(p, ls, 30)
	})
	for i := 0; i < 2; i++ {
		p := sys.Proc(i)
		if s := p.LockStats(); s.Acquires != 0 {
			t.Fatalf("proc %d acquired locks", i)
		}
		if s := p.BarrierStats(); s.Barriers != 1 {
			t.Fatalf("proc %d crossed %d barriers, want only the final one",
				i, s.Barriers)
		}
		if s := p.MemStats(); s.CausalReads != 0 {
			t.Fatalf("proc %d used causal reads", i)
		}
	}
}

func TestGaussSeidelSingleProcEqualsGaussSeidel(t *testing.T) {
	ls := GenDiagDominant(10, 37)
	direct, _ := ls.SolveDirect()
	var res SolveResult
	runMixed(t, 1, func(p *core.Proc) {
		res = SolveAsyncPRAM(p, ls, 100)
	})
	if d := MaxAbsDiff(res.X, direct); d > 1e-8 {
		t.Fatalf("single-proc relaxation off by %v", d)
	}
}

func TestGaussSeidelMoreRoundsCloser(t *testing.T) {
	ls := GenDiagDominant(12, 41)
	direct, _ := ls.SolveDirect()
	residualAfter := func(rounds int) float64 {
		var res SolveResult
		runMixed(t, 3, func(p *core.Proc) {
			r := SolveAsyncPRAM(p, ls, rounds)
			if p.ID() == 0 {
				res = r
			}
		})
		return MaxAbsDiff(res.X, direct)
	}
	short := residualAfter(5)
	long := residualAfter(80)
	if long > 1e-6 {
		t.Fatalf("long run did not converge: %v", long)
	}
	if long >= short && short > 1e-9 {
		t.Fatalf("more rounds did not improve: short=%v long=%v", short, long)
	}
}
