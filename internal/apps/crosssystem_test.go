package apps

import (
	"testing"

	"mixedmem/internal/seqmem"
)

// The applications are written against core.Process, so they must run
// unchanged on the sequentially consistent baseline and produce the same
// answers. These tests are both a portability check on the apps and an
// integration workout for seqmem's locks, barriers, and awaits.

func runSC(t *testing.T, procs int, body func(p *seqmem.Proc)) *seqmem.System {
	t.Helper()
	sys, err := seqmem.NewSystem(seqmem.Config{Procs: procs})
	if err != nil {
		t.Fatalf("seqmem.NewSystem: %v", err)
	}
	t.Cleanup(sys.Close)
	sys.Run(body)
	return sys
}

func TestSolveBarrierOnSequentialMemory(t *testing.T) {
	ls := GenDiagDominant(10, 31)
	direct, err := ls.SolveDirect()
	if err != nil {
		t.Fatalf("SolveDirect: %v", err)
	}
	var res SolveResult
	runSC(t, 3, func(p *seqmem.Proc) {
		r := SolveBarrier(p, ls, SolveOptions{Tol: 1e-9})
		if p.ID() == 0 {
			res = r
		}
	})
	if !res.Converged {
		t.Fatal("did not converge on SC memory")
	}
	if d := MaxAbsDiff(res.X, direct); d > 1e-7 {
		t.Fatalf("SC run off by %v", d)
	}
}

func TestSolveHandshakeOnSequentialMemory(t *testing.T) {
	ls := GenDiagDominant(8, 33)
	direct, _ := ls.SolveDirect()
	var res SolveResult
	runSC(t, 3, func(p *seqmem.Proc) {
		r := SolveHandshake(p, ls, SolveOptions{Tol: 1e-9})
		if p.ID() == 0 {
			res = r
		}
	})
	if d := MaxAbsDiff(res.X, direct); d > 1e-7 {
		t.Fatalf("SC handshake off by %v", d)
	}
}

func TestCholeskyLocksOnSequentialMemory(t *testing.T) {
	m := GenSparseSPD(10, 0.3, 35)
	ref, err := m.CholeskySequential()
	if err != nil {
		t.Fatalf("CholeskySequential: %v", err)
	}
	var res CholeskyResult
	runSC(t, 3, func(p *seqmem.Proc) {
		r := CholeskyLocks(p, m, SolveOptions{})
		if p.ID() == 0 {
			res = r
		}
	})
	if d := m.FactorError(res.L, ref); d > 1e-9 {
		t.Fatalf("SC factor off by %v", d)
	}
}

func TestCholeskyCountersOnSequentialMemory(t *testing.T) {
	m := GenSparseSPD(10, 0.3, 37)
	ref, _ := m.CholeskySequential()
	var res CholeskyResult
	runSC(t, 3, func(p *seqmem.Proc) {
		r := CholeskyCounters(p, m, SolveOptions{})
		if p.ID() == 0 {
			res = r
		}
	})
	if d := m.FactorError(res.L, ref); d > 1e-6 {
		t.Fatalf("SC counter factor off by %v", d)
	}
}

func TestEMFieldOnSequentialMemory(t *testing.T) {
	prob := GenEMProblem(24, 8, 39)
	refE, _ := prob.SolveSequential()
	results := make([]EMResult, 3)
	runSC(t, 3, func(p *seqmem.Proc) {
		results[p.ID()] = SolveEMField(p, prob, SolveOptions{})
	})
	for _, r := range results {
		for i := r.Lo; i < r.Hi; i++ {
			if r.E[i-r.Lo] != refE[i] {
				t.Fatalf("SC EM field differs at cell %d", i)
			}
		}
	}
}

func TestPipelineAwaitOnSequentialMemory(t *testing.T) {
	cfg := PipelineConfig{Items: 10, Seed: 41}
	ref := PipelineSequential(cfg, 2)
	var got []int64
	runSC(t, 3, func(p *seqmem.Proc) {
		if out := PipelineAwait(p, cfg); out != nil {
			got = out
		}
	})
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("SC pipeline item %d = %d, want %d", i, got[i], ref[i])
		}
	}
}
