package apps

import (
	"testing"
	"time"

	"mixedmem/internal/core"
	"mixedmem/internal/history"
)

func runMixed(t *testing.T, procs int, body func(p *core.Proc)) *core.System {
	t.Helper()
	sys, err := core.NewSystem(core.Config{Procs: procs})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	t.Cleanup(sys.Close)
	sys.Run(body)
	return sys
}

func TestGenDiagDominantIsDominant(t *testing.T) {
	ls := GenDiagDominant(16, 1)
	for i := 0; i < ls.N; i++ {
		var off float64
		for j := 0; j < ls.N; j++ {
			if i != j {
				if ls.A[i][j] < -1 || ls.A[i][j] > 1 {
					t.Fatalf("off-diagonal out of range: %v", ls.A[i][j])
				}
				off += abs(ls.A[i][j])
			}
		}
		if ls.A[i][i] <= off {
			t.Fatalf("row %d not strictly dominant: %v <= %v", i, ls.A[i][i], off)
		}
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func TestGenDiagDominantDeterministic(t *testing.T) {
	a := GenDiagDominant(8, 42)
	b := GenDiagDominant(8, 42)
	for i := range a.A {
		for j := range a.A[i] {
			if a.A[i][j] != b.A[i][j] {
				t.Fatal("generator not deterministic")
			}
		}
	}
	c := GenDiagDominant(8, 43)
	if a.A[0][1] == c.A[0][1] {
		t.Error("different seeds produced identical entries")
	}
}

func TestSolveDirect(t *testing.T) {
	ls := GenDiagDominant(12, 7)
	x, err := ls.SolveDirect()
	if err != nil {
		t.Fatalf("SolveDirect: %v", err)
	}
	if r := ls.Residual(x); r > 1e-9 {
		t.Fatalf("direct residual = %v", r)
	}
}

func TestSolveJacobiSequentialConverges(t *testing.T) {
	ls := GenDiagDominant(12, 7)
	x, iters := ls.SolveJacobiSequential(1e-9, 500)
	if iters >= 500 {
		t.Fatalf("Jacobi did not converge in %d iters", iters)
	}
	direct, _ := ls.SolveDirect()
	if d := MaxAbsDiff(x, direct); d > 1e-7 {
		t.Fatalf("Jacobi differs from direct by %v", d)
	}
}

func TestRowRangeCoversAllRows(t *testing.T) {
	for _, tc := range []struct{ n, workers int }{
		{10, 3}, {7, 7}, {5, 2}, {16, 4}, {3, 5},
	} {
		covered := make([]int, tc.n)
		for w := 1; w <= tc.workers; w++ {
			lo, hi := rowRange(tc.n, tc.workers, w)
			for i := lo; i < hi; i++ {
				covered[i]++
			}
		}
		for i, c := range covered {
			if c != 1 {
				t.Fatalf("n=%d workers=%d: row %d covered %d times",
					tc.n, tc.workers, i, c)
			}
		}
	}
}

func TestSolveBarrierMatchesDirect(t *testing.T) {
	ls := GenDiagDominant(12, 3)
	direct, _ := ls.SolveDirect()
	results := make([]SolveResult, 4)
	runMixed(t, 4, func(p *core.Proc) {
		results[p.ID()] = SolveBarrier(p, ls, SolveOptions{Tol: 1e-9})
	})
	for id, res := range results {
		if !res.Converged {
			t.Fatalf("proc %d did not converge (%d iters)", id, res.Iters)
		}
		if d := MaxAbsDiff(res.X, direct); d > 1e-7 {
			t.Fatalf("proc %d off by %v", id, d)
		}
	}
	// All processes agree on the iteration count.
	for id := 1; id < 4; id++ {
		if results[id].Iters != results[0].Iters {
			t.Fatalf("iteration counts disagree: %d vs %d",
				results[id].Iters, results[0].Iters)
		}
	}
}

func TestSolveBarrierSingleWorker(t *testing.T) {
	ls := GenDiagDominant(6, 9)
	direct, _ := ls.SolveDirect()
	var res SolveResult
	runMixed(t, 2, func(p *core.Proc) {
		r := SolveBarrier(p, ls, SolveOptions{Tol: 1e-9})
		if p.ID() == 1 {
			res = r
		}
	})
	if !res.Converged {
		t.Fatal("did not converge")
	}
	if d := MaxAbsDiff(res.X, direct); d > 1e-7 {
		t.Fatalf("off by %v", d)
	}
}

func TestSolveBarrierIsPRAMConsistentProgram(t *testing.T) {
	// Record a small barrier-solver run on an integer-friendly scale is
	// not possible (floats violate the unique-value convention), but the
	// phase discipline can still be checked structurally: run the solver
	// and assert it used only PRAM reads.
	ls := GenDiagDominant(6, 5)
	sys := runMixed(t, 3, func(p *core.Proc) {
		SolveBarrier(p, ls, SolveOptions{Tol: 1e-8})
	})
	for i := 0; i < 3; i++ {
		if s := sys.Proc(i).MemStats(); s.CausalReads != 0 {
			t.Fatalf("proc %d used %d causal reads; Figure 2 needs none", i, s.CausalReads)
		}
	}
}

func TestSolveHandshakeCausalMatchesDirect(t *testing.T) {
	ls := GenDiagDominant(10, 11)
	direct, _ := ls.SolveDirect()
	results := make([]SolveResult, 3)
	runMixed(t, 3, func(p *core.Proc) {
		results[p.ID()] = SolveHandshake(p, ls, SolveOptions{
			Tol: 1e-9, ReadLabel: history.LabelCausal,
		})
	})
	for id, res := range results {
		if !res.Converged {
			t.Fatalf("proc %d did not converge (%d iters)", id, res.Iters)
		}
		if d := MaxAbsDiff(res.X, direct); d > 1e-7 {
			t.Fatalf("proc %d off by %v", id, d)
		}
	}
}

func TestSolveHandshakeMatchesBarrierIterations(t *testing.T) {
	// Both solvers implement the same Jacobi iteration, so with the same
	// tolerance they converge in the same number of iterations — the
	// difference the paper measures is synchronization cost, not numerics.
	ls := GenDiagDominant(8, 2)
	var barrierIters, handshakeIters int
	runMixed(t, 3, func(p *core.Proc) {
		r := SolveBarrier(p, ls, SolveOptions{Tol: 1e-9})
		if p.ID() == 0 {
			barrierIters = r.Iters
		}
	})
	runMixed(t, 3, func(p *core.Proc) {
		r := SolveHandshake(p, ls, SolveOptions{Tol: 1e-9})
		if p.ID() == 0 {
			handshakeIters = r.Iters
		}
	})
	// The barrier solver needs one extra iteration to observe convergence
	// (done is decided at the top of the next round); allow a difference
	// of at most one.
	if d := barrierIters - handshakeIters; d < -1 || d > 1 {
		t.Fatalf("iteration counts diverge: barrier=%d handshake=%d",
			barrierIters, handshakeIters)
	}
}

// TestHandshakePRAMInsufficient is experiment E3: the paper's claim that
// PRAM reads are insufficient for the handshake program (Section 5.1). The
// estimate updates of worker 1 reach worker 2 only transitively through the
// coordinator, so with an adversarially delayed (but FIFO-legal) channel
// from worker 1 to worker 2, a PRAM read at worker 2 returns a stale
// estimate after the handshake has already fired. A causal read cannot: the
// causal await refuses to fire until the transitive dependencies arrive.
func TestHandshakePRAMInsufficient(t *testing.T) {
	run := func(label history.Label) float64 {
		sys, err := core.NewSystem(core.Config{Procs: 3})
		if err != nil {
			t.Fatalf("NewSystem: %v", err)
		}
		defer sys.Close()
		// Hold the direct channel worker1 -> worker2; the handshake still
		// flows worker1 -> coordinator -> worker2.
		if err := sys.Fabric().Hold(1, 2); err != nil {
			t.Fatalf("Hold: %v", err)
		}
		// Release the channel shortly after, so causal awaits unblock.
		release := time.AfterFunc(50*time.Millisecond, func() {
			_ = sys.Fabric().Release(1, 2)
		})
		defer release.Stop()

		var got float64
		sys.Run(func(p *core.Proc) {
			switch p.ID() {
			case 1: // producing worker
				core.WriteFloat(p, "est", 10)
				p.Write("computed", 1)
			case 0: // coordinator
				p.Await("computed", 1)
				p.Write("go", 1)
			case 2: // consuming worker
				if label == history.LabelPRAM {
					p.AwaitPRAM("go", 1)
					got = core.ReadPRAMFloat(p, "est")
				} else {
					p.Await("go", 1)
					got = core.ReadCausalFloat(p, "est")
				}
			}
		})
		return got
	}

	if got := run(history.LabelPRAM); got != 0 {
		t.Fatalf("PRAM read returned %v; expected the stale initial 0", got)
	}
	if got := run(history.LabelCausal); got != 10 {
		t.Fatalf("causal read returned %v; expected the fresh 10", got)
	}
}

func TestSolveHandshakePRAMStillTerminates(t *testing.T) {
	// Without an adversarial network the PRAM-labeled handshake solver
	// usually computes the right answer (the race rarely fires on a fast
	// fabric); the paper's point is that it is not *guaranteed*. Check it
	// at least terminates and reports an iteration count.
	ls := GenDiagDominant(6, 4)
	runMixed(t, 3, func(p *core.Proc) {
		res := SolveHandshake(p, ls, SolveOptions{
			Tol: 1e-8, MaxIters: 200, ReadLabel: history.LabelPRAM,
		})
		if res.Iters == 0 {
			t.Error("no iterations executed")
		}
	})
}
