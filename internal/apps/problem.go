// Package apps implements the paper's Section 5 applications on top of the
// mixed-consistency programming model:
//
//   - the iterative linear-equation solver, in its barrier form (Figure 2,
//     PRAM reads) and its handshake form (Figure 3, causal reads);
//   - the electromagnetic-field computation (Figure 4, PRAM reads with
//     barriers);
//   - sparse Cholesky factorization (Figure 5, causal reads with write
//     locks) and its counter-object variant (Section 5.3);
//   - asynchronous Gauss–Seidel relaxation, the Section 7 observation that
//     some relaxation algorithms converge even under plain PRAM.
//
// Every application is written against core.Process, so it runs unchanged on
// the mixed-consistency system and on the sequentially consistent baseline,
// and every application ships with a sequential reference implementation the
// parallel results are validated against.
//
// Workload generators are deterministic in their seeds: the paper's original
// inputs (1994 scientific datasets) are replaced by synthetic systems with
// the same computational structure, as recorded in DESIGN.md.
package apps

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
)

// LinearSystem is a dense system A x = b.
type LinearSystem struct {
	N int
	A [][]float64
	B []float64
}

// GenDiagDominant generates a strictly diagonally dominant n-by-n system,
// for which both Jacobi and Gauss–Seidel iteration converge. All entries are
// drawn from a seeded source, so the workload is reproducible.
func GenDiagDominant(n int, seed int64) *LinearSystem {
	r := rand.New(rand.NewSource(seed))
	ls := &LinearSystem{
		N: n,
		A: make([][]float64, n),
		B: make([]float64, n),
	}
	for i := 0; i < n; i++ {
		ls.A[i] = make([]float64, n)
		var offDiag float64
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			v := r.Float64()*2 - 1
			ls.A[i][j] = v
			offDiag += math.Abs(v)
		}
		// Strict dominance with margin keeps the Jacobi spectral radius
		// comfortably below 1.
		ls.A[i][i] = offDiag + 1 + r.Float64()
		ls.B[i] = r.Float64()*10 - 5
	}
	return ls
}

// SolveDirect solves the system by Gaussian elimination with partial
// pivoting — the sequential reference the iterative solvers are validated
// against.
func (ls *LinearSystem) SolveDirect() ([]float64, error) {
	n := ls.N
	// Work on copies.
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, n)
		copy(a[i], ls.A[i])
	}
	b := make([]float64, n)
	copy(b, ls.B)

	for col := 0; col < n; col++ {
		pivot := col
		for row := col + 1; row < n; row++ {
			if math.Abs(a[row][col]) > math.Abs(a[pivot][col]) {
				pivot = row
			}
		}
		if math.Abs(a[pivot][col]) < 1e-12 {
			return nil, fmt.Errorf("apps: singular system at column %d", col)
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		for row := col + 1; row < n; row++ {
			f := a[row][col] / a[col][col]
			for k := col; k < n; k++ {
				a[row][k] -= f * a[col][k]
			}
			b[row] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := b[i]
		for j := i + 1; j < n; j++ {
			sum -= a[i][j] * x[j]
		}
		x[i] = sum / a[i][i]
	}
	return x, nil
}

// Residual returns the infinity norm of A x - b.
func (ls *LinearSystem) Residual(x []float64) float64 {
	var worst float64
	for i := 0; i < ls.N; i++ {
		var sum float64
		for j := 0; j < ls.N; j++ {
			sum += ls.A[i][j] * x[j]
		}
		if d := math.Abs(sum - ls.B[i]); d > worst {
			worst = d
		}
	}
	return worst
}

// jacobiRow computes the Figure 2 row update:
// x[i] + (b[i] - sum_j A[i][j] x[j]) / A[i][i].
func (ls *LinearSystem) jacobiRow(i int, x []float64) float64 {
	sum := ls.B[i]
	for j := 0; j < ls.N; j++ {
		sum -= ls.A[i][j] * x[j]
	}
	return x[i] + sum/ls.A[i][i]
}

// SolveJacobiSequential runs plain sequential Jacobi iteration until the
// residual drops below tol or maxIters passes, returning the estimate and
// the number of iterations. It is the reference for iteration counts.
func (ls *LinearSystem) SolveJacobiSequential(tol float64, maxIters int) ([]float64, int) {
	x := make([]float64, ls.N)
	next := make([]float64, ls.N)
	for iter := 1; iter <= maxIters; iter++ {
		for i := 0; i < ls.N; i++ {
			next[i] = ls.jacobiRow(i, x)
		}
		copy(x, next)
		if ls.Residual(x) < tol {
			return x, iter
		}
	}
	return x, maxIters
}

// xVar names the shared variable holding estimate i.
func xVar(i int) string { return "x" + strconv.Itoa(i) }

// MaxAbsDiff returns the infinity-norm distance between two vectors.
func MaxAbsDiff(a, b []float64) float64 {
	var worst float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > worst {
			worst = d
		}
	}
	return worst
}

// rowRange splits rows 0..n-1 among workers 1..workers and returns the
// half-open range owned by worker w (1-based). The coordinator owns none.
func rowRange(n, workers, w int) (int, int) {
	per := n / workers
	extra := n % workers
	idx := w - 1
	lo := idx*per + min(idx, extra)
	size := per
	if idx < extra {
		size++
	}
	return lo, lo + size
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
