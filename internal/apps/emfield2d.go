package apps

import (
	"math"
	"strconv"

	"mixedmem/internal/core"
)

// EM2DProblem is the two-dimensional variant of the Figure 4 computation: a
// TE-mode FDTD grid with one electric component (Ez) and two magnetic
// components (Hx, Hy) on a staggered N-by-N grid. The computation alternates
// phases in which adjoining H values update E values and adjoining E values
// update H values, exactly the structure the paper describes; the extra
// dimension makes the boundary exchange a row of samples instead of a single
// one.
type EM2DProblem struct {
	// N is the grid edge length.
	N int
	// Steps is the number of full E+H update steps.
	Steps int
	// C is the update coefficient.
	C float64
	// Ez0 is the initial electric field, N*N row-major.
	Ez0 []float64
}

// GenEM2DProblem builds an N-by-N grid with a seeded Gaussian excitation.
func GenEM2DProblem(n, steps int, seed int64) *EM2DProblem {
	p := &EM2DProblem{
		N:     n,
		Steps: steps,
		C:     0.3,
		Ez0:   make([]float64, n*n),
	}
	cx, cy := float64(n)/2, float64(n)/3
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			dr := (float64(r) - cy) / (float64(n) / 6)
			dc := (float64(c) - cx) / (float64(n) / 6)
			p.Ez0[r*n+c] = gauss2(dr, dc) * (1 + 0.05*float64(seed%7))
		}
	}
	return p
}

func gauss2(a, b float64) float64 {
	return math.Exp(-(a*a + b*b))
}

// step2E updates ez on rows [rlo, rhi) of an n-wide grid:
// ez[r][c] += C*((hy[r][c]-hy[r][c-1]) - (hx[r][c]-hx[r-1][c])),
// for interior cells (r >= 1, c >= 1).
func step2E(ez, hx, hy []float64, cfl float64, n, rlo, rhi int) {
	for r := rlo; r < rhi; r++ {
		if r == 0 {
			continue
		}
		for c := 1; c < n; c++ {
			ez[r*n+c] += cfl * ((hy[r*n+c] - hy[r*n+c-1]) - (hx[r*n+c] - hx[(r-1)*n+c]))
		}
	}
}

// step2H updates hx and hy on rows [rlo, rhi):
// hx[r][c] -= C*(ez[r+1][c]-ez[r][c]) for r < n-1;
// hy[r][c] += C*(ez[r][c+1]-ez[r][c]) for c < n-1.
func step2H(ez, hx, hy []float64, cfl float64, n, rlo, rhi int) {
	for r := rlo; r < rhi; r++ {
		for c := 0; c < n; c++ {
			if r < n-1 {
				hx[r*n+c] -= cfl * (ez[(r+1)*n+c] - ez[r*n+c])
			}
			if c < n-1 {
				hy[r*n+c] += cfl * (ez[r*n+c+1] - ez[r*n+c])
			}
		}
	}
}

// SolveSequential runs the 2-D reference simulation.
func (p *EM2DProblem) SolveSequential() (ez, hx, hy []float64) {
	n := p.N
	ez = make([]float64, n*n)
	hx = make([]float64, n*n)
	hy = make([]float64, n*n)
	copy(ez, p.Ez0)
	for s := 0; s < p.Steps; s++ {
		step2E(ez, hx, hy, p.C, n, 0, n)
		step2H(ez, hx, hy, p.C, n, 0, n)
	}
	return ez, hx, hy
}

func ezRowVar(r, c int) string { return "ez" + strconv.Itoa(r) + "_" + strconv.Itoa(c) }
func hxRowVar(r, c int) string { return "hx" + strconv.Itoa(r) + "_" + strconv.Itoa(c) }

// EM2DResult reports a process's block of the final fields.
type EM2DResult struct {
	Ez, Hx, Hy []float64 // rows [RLo, RHi), row-major, width N
	RLo, RHi   int
}

// SolveEM2DField runs the 2-D computation with row-block partitioning:
// process p owns rows [rlo, rhi). Per step it reads the upper neighbor's
// published bottom Hx row (for its first Ez row), updates Ez, publishes its
// top Ez row, crosses a barrier, reads the lower neighbor's published top Ez
// row (for its last Hx row), updates H, publishes its bottom Hx row, and
// crosses a second barrier. Only two boundary rows per process per step
// touch shared memory; PRAM reads suffice (the program is PRAM-consistent).
func SolveEM2DField(p core.Process, prob *EM2DProblem, _ SolveOptions) EM2DResult {
	n := prob.N
	procs := p.N()
	per := n / procs
	extra := n % procs
	rlo := p.ID()*per + min(p.ID(), extra)
	rows := per
	if p.ID() < extra {
		rows++
	}
	rhi := rlo + rows

	ez := make([]float64, n*n)
	hx := make([]float64, n*n)
	hy := make([]float64, n*n)
	copy(ez, prob.Ez0)

	up := p.ID() > 0
	down := p.ID() < procs-1

	publishEzTop := func() {
		if up {
			for c := 0; c < n; c++ {
				core.WriteFloat(p, ezRowVar(rlo, c), ez[rlo*n+c])
			}
		}
	}
	publishHxBottom := func() {
		if down {
			for c := 0; c < n; c++ {
				core.WriteFloat(p, hxRowVar(rhi-1, c), hx[(rhi-1)*n+c])
			}
		}
	}

	// Initial publishes mirror the 1-D variant: neighbors need the starting
	// boundary rows for step 0.
	publishHxBottom()
	publishEzTop()
	p.Barrier()

	for s := 0; s < prob.Steps; s++ {
		// E phase: row rlo needs hx[rlo-1][*] from the upper neighbor.
		if up {
			for c := 0; c < n; c++ {
				hx[(rlo-1)*n+c] = core.ReadPRAMFloat(p, hxRowVar(rlo-1, c))
			}
		}
		step2E(ez, hx, hy, prob.C, n, rlo, rhi)
		publishEzTop()
		p.Barrier()

		// H phase: row rhi-1 needs ez[rhi][*] from the lower neighbor.
		if down {
			for c := 0; c < n; c++ {
				ez[rhi*n+c] = core.ReadPRAMFloat(p, ezRowVar(rhi, c))
			}
		}
		step2H(ez, hx, hy, prob.C, n, rlo, rhi)
		publishHxBottom()
		p.Barrier()
	}

	return EM2DResult{
		Ez: ez[rlo*n : rhi*n], Hx: hx[rlo*n : rhi*n], Hy: hy[rlo*n : rhi*n],
		RLo: rlo, RHi: rhi,
	}
}
