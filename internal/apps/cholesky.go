package apps

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"

	"mixedmem/internal/core"
)

// SparseSPD is a sparse symmetric positive definite matrix stored densely
// (lower triangle) with an explicit nonzero pattern, plus the symbolic
// factorization the paper's Cholesky application performs first: the fill
// pattern of the factor L and the per-column dependency counts.
type SparseSPD struct {
	N int
	// A holds the lower triangle (A[i][j] for i >= j).
	A [][]float64
	// Fill[i][j] reports whether L[i][j] is structurally nonzero after
	// symbolic factorization (i >= j).
	Fill [][]bool
	// Count[k] is the number of columns j < k that update column k
	// (Fill[k][j] != 0) — the dependency counts of Figure 5.
	Count []int
}

// GenSparseSPD generates an n-by-n sparse SPD matrix by drawing a sparse
// lower-triangular G with positive diagonal and forming A = G Gᵀ. density
// is the probability of an off-diagonal structural nonzero in G.
func GenSparseSPD(n int, density float64, seed int64) *SparseSPD {
	r := rand.New(rand.NewSource(seed))
	g := make([][]float64, n)
	for i := 0; i < n; i++ {
		g[i] = make([]float64, i+1)
		for j := 0; j < i; j++ {
			if r.Float64() < density {
				g[i][j] = r.Float64()*2 - 1
			}
		}
		g[i][i] = 1 + r.Float64()
	}
	a := make([][]float64, n)
	for i := 0; i < n; i++ {
		a[i] = make([]float64, i+1)
		for j := 0; j <= i; j++ {
			var sum float64
			for k := 0; k <= j; k++ {
				sum += g[i][k] * g[j][k]
			}
			a[i][j] = sum
		}
	}
	m := &SparseSPD{N: n, A: a}
	m.symbolicFactor()
	return m
}

// symbolicFactor computes the fill pattern of L by boolean elimination (the
// paper's symbolic factorization step [27]) and the per-column dependency
// counts.
func (m *SparseSPD) symbolicFactor() {
	n := m.N
	fill := make([][]bool, n)
	for i := 0; i < n; i++ {
		fill[i] = make([]bool, i+1)
		for j := 0; j <= i; j++ {
			fill[i][j] = m.A[i][j] != 0
		}
		fill[i][i] = true
	}
	for j := 0; j < n; j++ {
		for k := j + 1; k < n; k++ {
			if !fill[k][j] {
				continue
			}
			// Column j updates column k: L[i][k] -= L[i][j]*L[k][j] for
			// i >= k with L[i][j] nonzero.
			for i := k; i < n; i++ {
				if fill[i][j] {
					fill[i][k] = true
				}
			}
		}
	}
	count := make([]int, n)
	for k := 0; k < n; k++ {
		for j := 0; j < k; j++ {
			if fill[k][j] {
				count[k]++
			}
		}
	}
	m.Fill = fill
	m.Count = count
}

// CholeskySequential factorizes A = L Lᵀ sequentially (right-looking) and
// returns the lower-triangular factor. It is the reference the parallel
// variants are validated against.
func (m *SparseSPD) CholeskySequential() ([][]float64, error) {
	n := m.N
	l := make([][]float64, n)
	for i := 0; i < n; i++ {
		l[i] = make([]float64, i+1)
		copy(l[i], m.A[i])
	}
	for j := 0; j < n; j++ {
		if l[j][j] <= 0 {
			return nil, fmt.Errorf("apps: matrix not positive definite at column %d", j)
		}
		l[j][j] = math.Sqrt(l[j][j])
		for i := j + 1; i < n; i++ {
			l[i][j] /= l[j][j]
		}
		for k := j + 1; k < n; k++ {
			if !m.Fill[k][j] {
				continue
			}
			for i := k; i < n; i++ {
				if m.Fill[i][j] {
					l[i][k] -= l[i][j] * l[k][j]
				}
			}
		}
	}
	return l, nil
}

// FactorError returns the maximum absolute difference between two factors on
// the structural nonzeros.
func (m *SparseSPD) FactorError(a, b [][]float64) float64 {
	var worst float64
	for i := 0; i < m.N; i++ {
		for j := 0; j <= i; j++ {
			if !m.Fill[i][j] {
				continue
			}
			if d := math.Abs(a[i][j] - b[i][j]); d > worst {
				worst = d
			}
		}
	}
	return worst
}

func lVar(i, j int) string      { return "L" + strconv.Itoa(i) + "_" + strconv.Itoa(j) }
func countVar(k int) string     { return "count" + strconv.Itoa(k) }
func colLock(k int) string      { return "l" + strconv.Itoa(k) }
func colOwner(k, procs int) int { return k % procs }

// CholeskyResult reports a parallel factorization.
type CholeskyResult struct {
	// L is the full factor, read back from shared memory after a final
	// barrier; identical on every process.
	L [][]float64
}

// CholeskyLocks is the Figure 5 algorithm: columns are assigned to processes
// round-robin; the process of column j awaits count[j] = 0, finalizes its
// column locally, and then updates every dependent column k inside a
// critical section guarded by the write lock l[k], decrementing count[k]
// there as well. All shared reads are causal, as Theorem 1 requires; the
// awaits are causal too, so by the time count[j] reaches zero every prior
// critical section's updates are locally applied.
//
// Every process must call CholeskyLocks.
func CholeskyLocks(p core.Process, m *SparseSPD, _ SolveOptions) CholeskyResult {
	initColumns(p, m)
	n := m.N
	for j := 0; j < n; j++ {
		if colOwner(j, p.N()) != p.ID() {
			continue
		}
		p.Await(countVar(j), 0)
		// Finalize column j: sqrt the diagonal, scale the subdiagonal.
		col := readColumnCausal(p, m, j)
		col[j] = math.Sqrt(col[j])
		for i := j + 1; i < n; i++ {
			if m.Fill[i][j] {
				col[i] /= col[j]
			}
		}
		for i := j; i < n; i++ {
			if m.Fill[i][j] {
				core.WriteFloat(p, lVar(i, j), col[i])
			}
		}
		// Update dependent columns inside critical sections (Figure 5,
		// lines 4-8).
		for k := j + 1; k < n; k++ {
			if !m.Fill[k][j] {
				continue
			}
			p.WLock(colLock(k))
			for i := k; i < n; i++ {
				if !m.Fill[i][j] {
					continue
				}
				cur := core.ReadCausalFloat(p, lVar(i, k))
				core.WriteFloat(p, lVar(i, k), cur-col[i]*col[k])
			}
			cnt := p.ReadCausal(countVar(k))
			p.Write(countVar(k), cnt-1)
			p.WUnlock(colLock(k))
		}
	}
	return gatherFactor(p, m)
}

// CholeskyCounters is the Section 5.3 optimization: matrix entries and
// dependency counts become abstract counter objects supporting commutative
// decrements, so the critical sections disappear entirely. Each column
// update is a batch of AddFloat operations followed by an integer decrement
// of count[k]; the causal await of count[k] = 0 fires only after every
// decrement — and hence every preceding column update — has been applied
// locally.
//
// Every process must call CholeskyCounters.
func CholeskyCounters(p core.Process, m *SparseSPD, _ SolveOptions) CholeskyResult {
	initColumns(p, m)
	n := m.N
	for j := 0; j < n; j++ {
		if colOwner(j, p.N()) != p.ID() {
			continue
		}
		p.Await(countVar(j), 0)
		col := readColumnCausal(p, m, j)
		col[j] = math.Sqrt(col[j])
		for i := j + 1; i < n; i++ {
			if m.Fill[i][j] {
				col[i] /= col[j]
			}
		}
		for i := j; i < n; i++ {
			if m.Fill[i][j] {
				core.WriteFloat(p, lVar(i, j), col[i])
			}
		}
		for k := j + 1; k < n; k++ {
			if !m.Fill[k][j] {
				continue
			}
			for i := k; i < n; i++ {
				if m.Fill[i][j] {
					p.AddFloat(lVar(i, k), -col[i]*col[k])
				}
			}
			p.Add(countVar(k), -1)
		}
	}
	return gatherFactor(p, m)
}

// initColumns writes the initial matrix entries and dependency counts for
// the columns this process owns, then crosses a barrier so every process
// starts factorization with the inputs causally in place.
func initColumns(p core.Process, m *SparseSPD) {
	for j := 0; j < m.N; j++ {
		if colOwner(j, p.N()) != p.ID() {
			continue
		}
		for i := j; i < m.N; i++ {
			if m.Fill[i][j] {
				v := 0.0
				if j < len(m.A[i]) && j <= i {
					v = m.A[i][j]
				}
				core.WriteFloat(p, lVar(i, j), v)
			}
		}
		p.Write(countVar(j), int64(m.Count[j]))
	}
	p.Barrier()
}

// readColumnCausal reads the current (fully updated) entries of column j.
func readColumnCausal(p core.Process, m *SparseSPD, j int) []float64 {
	col := make([]float64, m.N)
	for i := j; i < m.N; i++ {
		if m.Fill[i][j] {
			col[i] = core.ReadCausalFloat(p, lVar(i, j))
		}
	}
	return col
}

// gatherFactor waits for all processes to finish and reads the whole factor
// back from shared memory.
func gatherFactor(p core.Process, m *SparseSPD) CholeskyResult {
	p.Barrier()
	l := make([][]float64, m.N)
	for i := 0; i < m.N; i++ {
		l[i] = make([]float64, i+1)
		for j := 0; j <= i; j++ {
			if m.Fill[i][j] {
				l[i][j] = core.ReadCausalFloat(p, lVar(i, j))
			}
		}
	}
	return CholeskyResult{L: l}
}

// GenGridSPD builds the 5-point Laplacian of a k-by-k grid: the canonical
// sparse SPD test matrix of George & Liu's book, which the paper cites for
// its Cholesky application [12]. The matrix is (k*k) x (k*k) with 4 on the
// diagonal and -1 for each grid neighbor; it is irreducibly sparse and its
// factor fills in along the elimination ordering, giving the column
// dependency DAG a realistic shape.
func GenGridSPD(k int) *SparseSPD {
	n := k * k
	a := make([][]float64, n)
	idx := func(r, c int) int { return r*k + c }
	for i := 0; i < n; i++ {
		a[i] = make([]float64, i+1)
	}
	for r := 0; r < k; r++ {
		for c := 0; c < k; c++ {
			i := idx(r, c)
			a[i][i] = 4
			if r > 0 {
				j := idx(r-1, c)
				a[i][j] = -1
			}
			if c > 0 {
				j := idx(r, c-1)
				a[i][j] = -1
			}
		}
	}
	m := &SparseSPD{N: n, A: a}
	m.symbolicFactor()
	return m
}
