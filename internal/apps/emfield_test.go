package apps

import (
	"testing"

	"mixedmem/internal/core"
)

func TestEMSequentialEnergyStaysFinite(t *testing.T) {
	prob := GenEMProblem(64, 50, 1)
	e, h := prob.SolveSequential()
	for i := range e {
		if e[i] != e[i] || h[i] != h[i] { // NaN check
			t.Fatalf("field diverged at cell %d", i)
		}
	}
}

func TestEMSequentialDeterministic(t *testing.T) {
	a, _ := GenEMProblem(32, 10, 7).SolveSequential()
	b, _ := GenEMProblem(32, 10, 7).SolveSequential()
	if MaxAbsDiff(a, b) != 0 {
		t.Fatal("sequential EM not deterministic")
	}
}

func TestEMFieldParallelMatchesSequential(t *testing.T) {
	prob := GenEMProblem(48, 20, 3)
	refE, refH := prob.SolveSequential()
	results := make([]EMResult, 4)
	runMixed(t, 4, func(p *core.Proc) {
		results[p.ID()] = SolveEMField(p, prob, SolveOptions{})
	})
	gotE := make([]float64, prob.Size)
	gotH := make([]float64, prob.Size)
	covered := 0
	for _, r := range results {
		copy(gotE[r.Lo:r.Hi], r.E)
		copy(gotH[r.Lo:r.Hi], r.H)
		covered += r.Hi - r.Lo
	}
	if covered != prob.Size {
		t.Fatalf("blocks cover %d of %d cells", covered, prob.Size)
	}
	// The parallel computation performs identical floating-point
	// operations cell by cell, so the match is exact.
	if d := MaxAbsDiff(gotE, refE); d != 0 {
		t.Fatalf("E field differs by %v", d)
	}
	if d := MaxAbsDiff(gotH, refH); d != 0 {
		t.Fatalf("H field differs by %v", d)
	}
}

func TestEMFieldSingleProc(t *testing.T) {
	prob := GenEMProblem(16, 8, 9)
	refE, _ := prob.SolveSequential()
	var res EMResult
	runMixed(t, 1, func(p *core.Proc) {
		res = SolveEMField(p, prob, SolveOptions{})
	})
	if d := MaxAbsDiff(res.E, refE); d != 0 {
		t.Fatalf("E field differs by %v", d)
	}
}

func TestEMFieldUnevenPartition(t *testing.T) {
	// Size not divisible by proc count exercises the remainder blocks.
	prob := GenEMProblem(19, 6, 11)
	refE, refH := prob.SolveSequential()
	results := make([]EMResult, 3)
	runMixed(t, 3, func(p *core.Proc) {
		results[p.ID()] = SolveEMField(p, prob, SolveOptions{})
	})
	for _, r := range results {
		for i := r.Lo; i < r.Hi; i++ {
			if r.E[i-r.Lo] != refE[i] || r.H[i-r.Lo] != refH[i] {
				t.Fatalf("cell %d differs", i)
			}
		}
	}
}

func TestEMFieldUsesOnlyPRAMReads(t *testing.T) {
	prob := GenEMProblem(24, 6, 13)
	sys := runMixed(t, 3, func(p *core.Proc) {
		SolveEMField(p, prob, SolveOptions{})
	})
	for i := 0; i < 3; i++ {
		if s := sys.Proc(i).MemStats(); s.CausalReads != 0 {
			t.Fatalf("proc %d used causal reads; Figure 4 needs only PRAM", i)
		}
	}
}

func TestEMFieldSharesOnlyBoundaries(t *testing.T) {
	// The point of the ghost-copy discussion: interior cells never touch
	// shared memory. With 2 procs and 3 barriers-per-step bookkeeping, the
	// number of update messages is proportional to steps, not to grid
	// size.
	prob := GenEMProblem(40, 5, 17)
	sys := runMixed(t, 2, func(p *core.Proc) {
		SolveEMField(p, prob, SolveOptions{})
	})
	stats := sys.NetStats()
	updates := stats.PerKind["update"]
	// Per step: at most 2 boundary publishes, each broadcast to 1 other
	// node, plus 2 initial publishes. Far below grid size * steps.
	maxExpected := uint64(2*(prob.Steps+1) + 4)
	if updates > maxExpected {
		t.Fatalf("sent %d updates, want <= %d (boundary-only sharing)",
			updates, maxExpected)
	}
}
