package apps

import (
	"testing"

	"mixedmem/internal/core"
)

func TestEM2DSequentialStable(t *testing.T) {
	prob := GenEM2DProblem(16, 20, 1)
	ez, hx, hy := prob.SolveSequential()
	for i := range ez {
		if ez[i] != ez[i] || hx[i] != hx[i] || hy[i] != hy[i] {
			t.Fatalf("field diverged (NaN) at cell %d", i)
		}
	}
}

func TestEM2DParallelMatchesSequential(t *testing.T) {
	prob := GenEM2DProblem(20, 10, 3)
	refEz, refHx, refHy := prob.SolveSequential()
	const procs = 4
	results := make([]EM2DResult, procs)
	runMixed(t, procs, func(p *core.Proc) {
		results[p.ID()] = SolveEM2DField(p, prob, SolveOptions{})
	})
	n := prob.N
	covered := 0
	for _, r := range results {
		for row := r.RLo; row < r.RHi; row++ {
			for c := 0; c < n; c++ {
				local := (row-r.RLo)*n + c
				global := row*n + c
				if r.Ez[local] != refEz[global] {
					t.Fatalf("Ez differs at (%d,%d)", row, c)
				}
				if r.Hx[local] != refHx[global] {
					t.Fatalf("Hx differs at (%d,%d)", row, c)
				}
				if r.Hy[local] != refHy[global] {
					t.Fatalf("Hy differs at (%d,%d)", row, c)
				}
			}
		}
		covered += r.RHi - r.RLo
	}
	if covered != n {
		t.Fatalf("row blocks cover %d of %d rows", covered, n)
	}
}

func TestEM2DUnevenRows(t *testing.T) {
	prob := GenEM2DProblem(13, 6, 5)
	refEz, _, _ := prob.SolveSequential()
	results := make([]EM2DResult, 3)
	runMixed(t, 3, func(p *core.Proc) {
		results[p.ID()] = SolveEM2DField(p, prob, SolveOptions{})
	})
	for _, r := range results {
		for row := r.RLo; row < r.RHi; row++ {
			for c := 0; c < prob.N; c++ {
				if r.Ez[(row-r.RLo)*prob.N+c] != refEz[row*prob.N+c] {
					t.Fatalf("Ez differs at (%d,%d)", row, c)
				}
			}
		}
	}
}

func TestEM2DSingleProc(t *testing.T) {
	prob := GenEM2DProblem(10, 5, 7)
	refEz, _, _ := prob.SolveSequential()
	var res EM2DResult
	runMixed(t, 1, func(p *core.Proc) {
		res = SolveEM2DField(p, prob, SolveOptions{})
	})
	if d := MaxAbsDiff(res.Ez, refEz); d != 0 {
		t.Fatalf("single-proc Ez off by %v", d)
	}
}

func TestEM2DSharesOnlyBoundaryRows(t *testing.T) {
	prob := GenEM2DProblem(24, 5, 9)
	sys := runMixed(t, 3, func(p *core.Proc) {
		SolveEM2DField(p, prob, SolveOptions{})
	})
	updates := sys.NetStats().PerKind["update"]
	// Two boundary rows of N samples per interior process per step (plus
	// initial publishes), each broadcast to 2 peers — far less than the
	// 3*N*N*steps a full-grid share would cost.
	maxExpected := uint64(2 * 2 * prob.N * (prob.Steps + 1) * 2)
	if updates > maxExpected {
		t.Fatalf("sent %d updates, want <= %d (boundary rows only)", updates, maxExpected)
	}
	if updates == 0 {
		t.Fatal("no boundary exchange happened")
	}
}

func TestEM2DUsesOnlyPRAMReads(t *testing.T) {
	prob := GenEM2DProblem(12, 4, 11)
	sys := runMixed(t, 2, func(p *core.Proc) {
		SolveEM2DField(p, prob, SolveOptions{})
	})
	for i := 0; i < 2; i++ {
		if s := sys.Proc(i).MemStats(); s.CausalReads != 0 {
			t.Fatalf("proc %d used causal reads", i)
		}
	}
}
