package apps

import (
	"strconv"

	"mixedmem/internal/core"
)

// This file implements the producer/consumer paradigm the paper singles out
// for await statements (Section 2: "await statements that can be used to
// capture the producer/consumer paradigm in an efficient manner"), in two
// forms:
//
//   - PipelineAwait: a bounded ring buffer where the producer writes items
//     and bumps a head counter; each consumer stage awaits the counter with
//     a PRAM await and reads the item with a PRAM read. Handoff needs no
//     round trips: one broadcast per item and per counter bump.
//   - PipelineLocks: the same dataflow with the buffer protected by a write
//     lock and the consumer polling under read locks — the style the
//     lock-only consistency models force, paying manager round trips per
//     poll.
//
// Both compute the same result (a per-stage transformation of every item),
// validated against a sequential reference.

// PipelineConfig shapes a pipeline run.
type PipelineConfig struct {
	// Items is the number of values pushed through the pipeline.
	Items int
	// Seed generates the input items.
	Seed int64
}

// PipelineSequential computes the reference output: each stage s of n-1
// stages applies x -> 2x + s+1 in order.
func PipelineSequential(cfg PipelineConfig, stages int) []int64 {
	out := make([]int64, cfg.Items)
	for i := range out {
		v := pipelineItem(cfg.Seed, i)
		for s := 0; s < stages; s++ {
			v = 2*v + int64(s) + 1
		}
		out[i] = v
	}
	return out
}

// pipelineItem generates input item i deterministically.
func pipelineItem(seed int64, i int) int64 {
	return seed*1_000_003 + int64(i)*97 + 1
}

func itemVar(stage, i int) string {
	return "s" + strconv.Itoa(stage) + "_i" + strconv.Itoa(i)
}

func headVar(stage int) string { return "head" + strconv.Itoa(stage) }
func tailVar(stage int) string { return "tail" + strconv.Itoa(stage) }

// PipelineAwait runs the dataflow with awaits: process 0 produces, process
// p consumes stage p-1's stream and produces stage p's. The handoff is
// credit-based, because the paper's await(x = v) matches an exact value: the
// producer writes the item and bumps head, then awaits the consumer's tail
// acknowledgement before producing the next item, so neither counter ever
// races past the value its peer awaits — the same discipline as the
// Figure 3 handshake. Every process must call PipelineAwait; the last stage
// returns the outputs (others return nil).
func PipelineAwait(p core.Process, cfg PipelineConfig) []int64 {
	stage := p.ID()
	produces := stage < p.N()-1
	consumes := stage > 0
	var out []int64
	if consumes {
		out = make([]int64, cfg.Items)
	}
	for i := 0; i < cfg.Items; i++ {
		var v int64
		if consumes {
			// The head counter is written after the item by the same
			// producer, so a PRAM await plus a PRAM read suffices (FIFO
			// pipelining).
			p.AwaitPRAM(headVar(stage-1), int64(i+1))
			v = p.ReadPRAM(itemVar(stage-1, i))
			p.Write(tailVar(stage-1), int64(i+1))
			v = 2*v + int64(stage)
			out[i] = v
		} else {
			v = pipelineItem(cfg.Seed, i)
		}
		if produces {
			p.Write(itemVar(stage, i), v)
			p.Write(headVar(stage), int64(i+1))
			p.AwaitPRAM(tailVar(stage), int64(i+1))
		}
	}
	if stage == p.N()-1 {
		return out
	}
	return nil
}

// PipelineLocks runs the same dataflow with lock-protected handoff: the
// producer appends under a write lock; consumers poll the shared head under
// read locks until a new item appears, then read it under the same lock.
// Every process must call it; the last stage returns the outputs.
func PipelineLocks(p core.Process, cfg PipelineConfig) []int64 {
	stage := p.ID()
	lock := func(s int) string { return "plock" + strconv.Itoa(s) }
	if stage == 0 {
		for i := 0; i < cfg.Items; i++ {
			p.WLock(lock(0))
			p.Write(itemVar(0, i), pipelineItem(cfg.Seed, i))
			p.Write(headVar(0), int64(i+1))
			p.WUnlock(lock(0))
		}
		return nil
	}
	out := make([]int64, cfg.Items)
	for i := 0; i < cfg.Items; i++ {
		// Poll under read locks until the producer's head passes i.
		for {
			p.RLock(lock(stage - 1))
			head := p.ReadCausal(headVar(stage - 1))
			if head >= int64(i+1) {
				break
			}
			p.RUnlock(lock(stage - 1))
		}
		v := p.ReadCausal(itemVar(stage-1, i))
		p.RUnlock(lock(stage - 1))
		v = 2*v + int64(stage)
		p.WLock(lock(stage))
		p.Write(itemVar(stage, i), v)
		p.Write(headVar(stage), int64(i+1))
		p.WUnlock(lock(stage))
		out[i] = v
	}
	if stage == p.N()-1 {
		return out
	}
	return nil
}
