package apps

import (
	"testing"
	"time"

	"mixedmem/internal/check"
	"mixedmem/internal/core"
	"mixedmem/internal/network"
)

// sessionTestConfig is the small session workload the unit tests run: big
// enough that every code path fires (flags, probers, aggregates, warmup
// boundary), small enough for -short CI.
func sessionTestConfig(mode SessionMode) SessionConfig {
	return SessionConfig{
		Procs:    3,
		Workers:  2,
		Sessions: 2, SessionKeys: 4,
		Ops: 60, Warmup: 10,
		ReadFraction: 0.5, ZipfS: 0.9,
		AggGroups: 4, AggEvery: 4, AggReadEvery: 8,
		VisEvery: 4,
		Seed:     11,
		Mode:     mode,
	}
}

// fastLatency keeps the simulated fabric quick for unit tests.
var fastLatency = network.LatencyModel{Fixed: 20 * time.Microsecond}

// runSessionSystem executes the session workload on a simulated system and
// returns the per-process results, verifying the aggregate counters on
// every process before tearing down.
func runSessionSystem(t *testing.T, cfg SessionConfig, record bool, verify bool) (*core.System, []*SessionProcResult) {
	t.Helper()
	sys, err := core.NewSystem(core.Config{
		Procs:     cfg.Procs,
		Latency:   fastLatency,
		Seed:      cfg.Seed,
		Record:    record,
		Placement: SessionScope(cfg),
	})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	results := make([]*SessionProcResult, cfg.Procs)
	sys.Run(func(p *core.Proc) {
		results[p.ID()] = ServeSessions(p, cfg)
		if verify {
			if err := VerifySessionCounters(p, cfg); err != nil {
				t.Errorf("VerifySessionCounters: %v", err)
			}
		}
	})
	return sys, results
}

// TestServeSessionsAllModes runs the session front-end under all three
// placement configurations and checks the workload's invariants: the
// replay-predicted counter totals converge on every process, every
// predicted visibility flag is raised and probed, and the operation counts
// — a pure function of the seeded traces — agree across modes.
func TestServeSessionsAllModes(t *testing.T) {
	var opCounts [3][3]int64 // mode -> (reads, writes, adds), summed over procs
	for _, mode := range []SessionMode{SessionBroadcast, SessionCausalScoped, SessionHybrid} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			cfg := sessionTestConfig(mode)
			sys, results := runSessionSystem(t, cfg, false, true)
			defer sys.Close()

			c := cfg.WithDefaults()
			for id, res := range results {
				wantFlags := 0
				for w := 0; w < c.Workers; w++ {
					wantFlags += c.FlagCount(id, w)
				}
				if res.Flags != wantFlags {
					t.Errorf("proc %d raised %d flags, replay predicts %d", id, res.Flags, wantFlags)
				}
				if wantFlags == 0 {
					t.Errorf("proc %d: config produced no visibility flags; test is vacuous", id)
				}
				// Each proc probes exactly the flags addressed to it.
				wantProbes := int64(0)
				for p := 0; p < c.Procs; p++ {
					if p == id {
						continue
					}
					for w := 0; w < c.Workers; w++ {
						for _, probe := range c.FlagPlan(p, w) {
							if probe.Follower == id {
								wantProbes++
							}
						}
					}
				}
				if res.Vis.Count() != wantProbes {
					t.Errorf("proc %d probed %d flags, want %d", id, res.Vis.Count(), wantProbes)
				}
				if wantProbes == 0 {
					t.Errorf("proc %d has no flags addressed to it; test is vacuous", id)
				}
				if res.Read.Count() == 0 || res.Write.Count() == 0 {
					t.Errorf("proc %d: empty measurement histograms (reads %d, writes %d)",
						id, res.Read.Count(), res.Write.Count())
				}
				opCounts[mode][0] += res.Reads
				opCounts[mode][1] += res.Writes
				opCounts[mode][2] += res.Adds
			}
		})
	}
	for _, mode := range []SessionMode{SessionCausalScoped, SessionHybrid} {
		if opCounts[mode] != opCounts[SessionBroadcast] {
			t.Errorf("mode %v op counts %v differ from broadcast's %v — workload is not placement-invariant",
				mode, opCounts[mode], opCounts[SessionBroadcast])
		}
	}
}

// TestSessionWorkloadDeterminism pins the seeded-workload guarantees the S1
// experiment's cross-substrate assertions rest on: fingerprints, flag
// counts, and expected hits are stable across recomputation and sensitive
// to the seed.
func TestSessionWorkloadDeterminism(t *testing.T) {
	cfg := sessionTestConfig(SessionCausalScoped)
	if cfg.WorkloadFingerprint() != cfg.WorkloadFingerprint() {
		t.Fatal("workload fingerprint not stable")
	}
	other := cfg
	other.Seed++
	if cfg.WorkloadFingerprint() == other.WorkloadFingerprint() {
		t.Fatal("different seeds share a workload fingerprint")
	}
	a, b := cfg.ExpectedHits(), cfg.ExpectedHits()
	var total int64
	for g := range a {
		if a[g] != b[g] {
			t.Fatalf("ExpectedHits not stable: %v vs %v", a, b)
		}
		total += a[g]
	}
	c := cfg.WithDefaults()
	want := int64(c.Procs * c.Workers * ((c.Warmup + c.Ops + c.AggEvery - 1) / c.AggEvery))
	if total != want {
		t.Fatalf("ExpectedHits total %d, want %d", total, want)
	}
	if c.FlagCount(0, 0) != c.FlagCount(0, 0) {
		t.Fatal("FlagCount not stable")
	}
}

// TestSessionScopeShape spot-checks the placement builder: broadcast mode
// is nil; scoped mode registers each session for its owner and follower
// (causally) and leaves aggregates unregistered; hybrid registers the
// aggregates PRAM-elided (readers everywhere, causal readers nowhere).
func TestSessionScopeShape(t *testing.T) {
	cfg := sessionTestConfig(SessionBroadcast)
	if SessionScope(cfg) != nil {
		t.Fatal("broadcast mode built a scope")
	}

	cfg.Mode = SessionCausalScoped
	scope := SessionScope(cfg)
	c := cfg.WithDefaults()
	for s := 0; s < c.Sessions; s++ {
		loc := sessionLoc(s, 0) // owned by proc 0
		want := []int{0, c.follower(0, s)}
		got := scope.Readers[loc]
		if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
			t.Fatalf("session %d readers %v, want %v", s, got, want)
		}
		if len(scope.CausalReaders[loc]) != 2 {
			t.Fatalf("session %d causal readers %v, want owner+follower", s, scope.CausalReaders[loc])
		}
	}
	if _, ok := scope.Readers[aggHitsLoc(0)]; ok {
		t.Fatal("causal-scoped mode registered an aggregate")
	}
	plan := c.FlagPlan(0, 0)
	if len(plan) == 0 {
		t.Fatal("no flags planned for strand (0,0)")
	}
	flag := visFlagLoc(0, 0, 0)
	if got := scope.Readers[flag]; len(got) != 1 || got[0] != plan[0].Follower {
		t.Fatalf("vis flag readers %v, want the planned follower %d", got, plan[0].Follower)
	}

	cfg.Mode = SessionHybrid
	scope = SessionScope(cfg)
	if got := scope.Readers[aggHitsLoc(0)]; len(got) != cfg.Procs {
		t.Fatalf("hybrid aggregate readers %v, want all %d procs", got, cfg.Procs)
	}
	if _, ok := scope.CausalReaders[aggHitsLoc(0)]; ok {
		t.Fatal("hybrid aggregate has causal readers; wanted the PRAM-elided fast path")
	}
}

// TestSessionRecordedConformance is the litmus guard: the session app's
// access pattern, recorded and replayed through the checker, must be mixed
// consistent under scoped placement exactly as under broadcast — scoping
// may change costs, never verdicts. Aggregate reads are disabled because
// counter increments are abstract-data-type operations the trace does not
// record, so their reads are unaccountable to the checker.
func TestSessionRecordedConformance(t *testing.T) {
	violations := map[SessionMode]int{}
	for _, mode := range []SessionMode{SessionBroadcast, SessionCausalScoped, SessionHybrid} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			cfg := sessionTestConfig(mode)
			cfg.Procs = 2
			cfg.Ops, cfg.Warmup = 30, 5
			cfg.AggReadEvery = -1 // counter reads are unverifiable in a trace
			sys, _ := runSessionSystem(t, cfg, true, false)
			defer sys.Close()

			h := sys.History()
			if h == nil {
				t.Fatal("recording system produced no history")
			}
			a, err := h.Analyze()
			if err != nil {
				t.Fatalf("Analyze: %v", err)
			}
			vs := check.Mixed(a)
			violations[mode] = len(vs)
			if len(vs) != 0 {
				t.Fatalf("session app violated mixed consistency under %v: %v", mode, vs[0])
			}
		})
	}
	for mode, n := range violations {
		if n != violations[SessionBroadcast] {
			t.Fatalf("mode %v verdict (%d violations) differs from broadcast (%d)",
				mode, n, violations[SessionBroadcast])
		}
	}
}

// TestSessionLearnedScopeWithinPlacement runs the causal-scoped session
// workload with access tracking on and checks the analytic placement
// against the observed one: every reader the profile records for a
// registered location must be a process `SessionScope` replicates that
// location to. A learned reader outside the registered set would mean the
// placement under-replicates — precisely the bug scoped delivery turns
// into silent zero reads.
func TestSessionLearnedScopeWithinPlacement(t *testing.T) {
	cfg := sessionTestConfig(SessionCausalScoped)
	scope := SessionScope(cfg)
	sys, err := core.NewSystem(core.Config{
		Procs:       cfg.Procs,
		Latency:     fastLatency,
		Seed:        cfg.Seed,
		Placement:   scope,
		TrackAccess: true,
	})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	defer sys.Close()
	sys.Run(func(p *core.Proc) {
		ServeSessions(p, cfg)
		if err := VerifySessionCounters(p, cfg); err != nil {
			t.Errorf("VerifySessionCounters: %v", err)
		}
	})
	learned := sys.LearnedScope()
	if learned == nil {
		t.Fatal("LearnedScope returned nil despite tracking")
	}
	registered := func(set map[string][]int, loc string, id int) bool {
		for _, r := range set[loc] {
			if r == id {
				return true
			}
		}
		return false
	}
	var sessionLocs int
	for loc, readers := range learned.Readers {
		if _, ok := scope.Readers[loc]; !ok {
			continue // unregistered (aggregate) locations broadcast-fallback
		}
		sessionLocs++
		for _, id := range readers {
			if !registered(scope.Readers, loc, id) {
				t.Errorf("location %q: observed reader %d not in registered scope %v",
					loc, id, scope.Readers[loc])
			}
		}
		for _, id := range learned.CausalReaders[loc] {
			if !registered(scope.CausalReaders, loc, id) {
				t.Errorf("location %q: observed causal reader %d not in registered causal scope %v",
					loc, id, scope.CausalReaders[loc])
			}
		}
	}
	if sessionLocs == 0 {
		t.Fatal("no registered location was ever read; test is vacuous")
	}
}
