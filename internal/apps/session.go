package apps

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"mixedmem/internal/core"
	"mixedmem/internal/dsm"
	"mixedmem/internal/hist"
	"mixedmem/internal/loadgen"
)

// The session/KV front-end is the serving-shaped workload of the S1
// experiment: each process owns a shard of user sessions, worker strands
// drive seeded request streams against their own sessions, and a small set
// of global aggregates (hit counters per key group, an active-strand gauge)
// is maintained by every strand.
//
// The label assignment mirrors the paper's prescription. Session state is
// read-your-session data: a session's locations form a causal scope — its
// owner and one follower process read them causally, so a follower that
// observes a session write also observes everything that write depended on.
// Followers are assigned per session (session s of process p is followed by
// a peer picked round-robin from the other processes), so under scoped
// placement each session update travels to exactly one peer, while the
// broadcast baseline ships every update to everyone. The aggregates are
// pure commutative counters: order among increments is immaterial, so PRAM
// guarantees (plus a barrier before the final read) are enough, and under
// scoped placement their updates can skip causal metadata entirely.
//
// Three placement configurations bracket the design space:
//
//   - SessionBroadcast: no placement; every update is broadcast with full
//     vector-clock dependencies and all reads are causal. The baseline.
//   - SessionCausalScoped: sessions and visibility probes are registered
//     causal scopes (owner + follower), so their updates travel point to
//     point with dependency matrices; aggregates stay unregistered and
//     fall back to causal broadcast.
//   - SessionHybrid: as scoped, plus the aggregates are registered with
//     PRAM-elided placement (readers everywhere, causal readers nowhere),
//     so counter traffic drops dependency metadata and aggregate reads use
//     the PRAM fast path.
//
// Write visibility is measured end to end through the memory itself: every
// VisEvery-th measured write on a worker strand publishes a wall-clock
// timestamp and then a one-shot flag at a fresh location; a prober strand
// on the flagged session's follower awaits the flag causally, causally
// reads the timestamp, and charges now-minus-timestamp to the visibility
// histogram. Every process can replay every strand's trace, so a prober
// knows exactly which flags are addressed to it without any coordination.
// Awaiting a fresh location per flag (rather than a counter) matters:
// Await blocks on equality, so a monotone flag could skip past a lagging
// prober, while a one-shot flag is matched exactly once.

// SessionMode selects the label/placement configuration.
type SessionMode int

// Session placement configurations.
const (
	// SessionBroadcast runs with no placement: all updates broadcast with
	// full causal metadata, all reads causal.
	SessionBroadcast SessionMode = iota
	// SessionCausalScoped registers sessions and visibility probes as
	// causal scopes; aggregates stay unregistered (causal broadcast).
	SessionCausalScoped
	// SessionHybrid additionally registers the aggregates as PRAM-elided
	// counters read with PRAM labels.
	SessionHybrid
)

// String names the mode the way the S1 rows do.
func (m SessionMode) String() string {
	switch m {
	case SessionBroadcast:
		return "broadcast"
	case SessionCausalScoped:
		return "causal-scoped"
	case SessionHybrid:
		return "hybrid"
	}
	return "mode" + strconv.Itoa(int(m))
}

// ParseSessionMode maps a mode name (as printed by String) back to the
// mode.
func ParseSessionMode(s string) (SessionMode, error) {
	switch s {
	case "broadcast":
		return SessionBroadcast, nil
	case "causal-scoped", "scoped":
		return SessionCausalScoped, nil
	case "hybrid":
		return SessionHybrid, nil
	}
	return 0, fmt.Errorf("unknown session mode %q (want broadcast, causal-scoped, or hybrid)", s)
}

// SessionConfig parameterizes the session front-end. The workload — every
// strand's full request trace — is a pure function of the config, so any
// process can replay any strand (the probers and the counter verification
// both do).
type SessionConfig struct {
	// Procs is the number of processes. Required.
	Procs int
	// Workers is the number of worker strands per process.
	Workers int
	// Sessions is the number of sessions owned by each process.
	Sessions int
	// SessionKeys is the number of locations per session.
	SessionKeys int
	// Ops is the number of measured requests per worker strand.
	Ops int
	// Warmup is the number of unmeasured leading requests per strand.
	Warmup int
	// ReadFraction is the probability a request is a read.
	ReadFraction float64
	// ZipfS is the key-popularity skew within a process's shard.
	ZipfS float64
	// Rate, when positive, paces each strand open-loop at this many
	// requests per second; zero runs closed-loop.
	Rate float64
	// AggGroups is the number of global hit-counter groups.
	AggGroups int
	// AggEvery bumps a hit counter on every AggEvery-th request. Zero
	// takes the default; negative disables.
	AggEvery int
	// AggReadEvery reads an aggregate on every AggReadEvery-th request.
	// Zero takes the default; negative disables.
	AggReadEvery int
	// VisEvery flags every VisEvery-th measured write for a visibility
	// probe. Zero takes the default; negative disables (probes also need
	// Procs >= 2).
	VisEvery int
	// Seed is the workload seed.
	Seed int64
	// Mode is the placement configuration.
	Mode SessionMode
}

// WithDefaults fills zero fields with the standard small configuration.
func (c SessionConfig) WithDefaults() SessionConfig {
	if c.Workers == 0 {
		c.Workers = 4
	}
	if c.Sessions == 0 {
		c.Sessions = 4
	}
	if c.SessionKeys == 0 {
		c.SessionKeys = 8
	}
	if c.Ops == 0 {
		c.Ops = 200
	}
	if c.Warmup == 0 {
		c.Warmup = 40
	}
	if c.ReadFraction == 0 {
		c.ReadFraction = 0.5
	}
	if c.ZipfS == 0 {
		c.ZipfS = 0.9
	}
	if c.AggGroups == 0 {
		c.AggGroups = 8
	}
	if c.AggEvery == 0 {
		c.AggEvery = 4
	}
	if c.AggReadEvery == 0 {
		c.AggReadEvery = 8
	}
	if c.VisEvery == 0 {
		c.VisEvery = 4
	}
	return c
}

// Location layout. Session keys are owned by one process; vis locations are
// one-shot (written once); aggregates are counter objects.
func sessionLoc(sid, key int) string {
	return "sess/" + strconv.Itoa(sid) + "/k" + strconv.Itoa(key)
}

// VisLocPrefix is the namespace of the write-visibility probe locations:
// "vis/<proc>/<worker>/t<k>" carries the publish timestamp and
// "vis/<proc>/<worker>/f<k>" the awaited one-shot flag.
const VisLocPrefix = "vis/"

// IsVisFlagLoc reports whether loc is a visibility-probe flag location —
// the locations probers Await. The causal-path explainer (internal/obs)
// uses this predicate to select exactly the write-visibility probes out of
// a trace, so latency attribution skips session and aggregate awaits.
func IsVisFlagLoc(loc string) bool {
	if !strings.HasPrefix(loc, VisLocPrefix) {
		return false
	}
	i := strings.LastIndexByte(loc, '/')
	return i >= 0 && i+1 < len(loc) && loc[i+1] == 'f'
}

// IsVisTimeLoc reports whether loc is a visibility-probe timestamp
// location, the companion of IsVisFlagLoc.
func IsVisTimeLoc(loc string) bool {
	if !strings.HasPrefix(loc, VisLocPrefix) {
		return false
	}
	i := strings.LastIndexByte(loc, '/')
	return i >= 0 && i+1 < len(loc) && loc[i+1] == 't'
}

func visTimeLoc(proc, worker, flag int) string {
	return "vis/" + strconv.Itoa(proc) + "/" + strconv.Itoa(worker) + "/t" + strconv.Itoa(flag)
}

func visFlagLoc(proc, worker, flag int) string {
	return "vis/" + strconv.Itoa(proc) + "/" + strconv.Itoa(worker) + "/f" + strconv.Itoa(flag)
}

func aggHitsLoc(group int) string { return "agg/hits/" + strconv.Itoa(group) }

const aggActiveLoc = "agg/active"

// genConfig is the single point deciding strand (proc, worker)'s request
// stream; everyone who replays a trace goes through it.
func (c SessionConfig) genConfig(proc, worker int) loadgen.Config {
	return loadgen.Config{
		Keys:         c.Sessions * c.SessionKeys,
		ZipfS:        c.ZipfS,
		ReadFraction: c.ReadFraction,
		Seed:         c.Seed,
		Worker:       proc*c.Workers + worker,
		Rate:         c.Rate,
	}
}

// visEnabled reports whether visibility probing is on: it needs a probe
// period and a distinct follower process to probe from.
func (c SessionConfig) visEnabled() bool { return c.VisEvery > 0 && c.Procs > 1 }

// follower returns the process that causally reads session s of proc (s is
// the owner-local session index) and probes the visibility of its writes.
// Sessions rotate round-robin over the other processes, so each scoped
// session update travels to exactly one peer while the broadcast baseline
// ships it to all of them.
func (c SessionConfig) follower(proc, s int) int {
	return (proc + 1 + s%(c.Procs-1)) % c.Procs
}

// aggGroup maps a request on proc's shard to its global hit-counter group.
func (c SessionConfig) aggGroup(proc, key int) int {
	return (proc*c.Sessions*c.SessionKeys + key) % c.AggGroups
}

// visProbe describes one visibility flag a strand will raise: which
// session write it marks and which process is responsible for probing it.
type visProbe struct {
	// Session is the owner-local session index of the flagged write, and
	// Key the location index within it.
	Session, Key int
	// Follower is the process the flag is addressed to.
	Follower int
}

// FlagPlan replays strand (proc, worker)'s trace and returns, in flag
// order, the visibility flags it will raise — the probers' worklist and the
// scope builder's registration bound. Flag k of the strand marks a write to
// session plan[k].Session and is probed by plan[k].Follower.
func (c SessionConfig) FlagPlan(proc, worker int) []visProbe {
	if !c.visEnabled() {
		return nil
	}
	g := loadgen.New(c.genConfig(proc, worker))
	var plan []visProbe
	writes := 0
	for i := 0; i < c.Warmup+c.Ops; i++ {
		req := g.Next()
		if req.Op != loadgen.OpWrite || i < c.Warmup {
			continue
		}
		if writes%c.VisEvery == 0 {
			s := req.Key / c.SessionKeys
			plan = append(plan, visProbe{
				Session:  s,
				Key:      req.Key % c.SessionKeys,
				Follower: c.follower(proc, s),
			})
		}
		writes++
	}
	return plan
}

// FlagCount is the number of visibility flags strand (proc, worker) raises.
func (c SessionConfig) FlagCount(proc, worker int) int {
	return len(c.FlagPlan(proc, worker))
}

// ExpectedHits replays every strand's trace and returns the final value
// each global hit counter must converge to — computable on any process,
// which is how a distributed run verifies its counters without a central
// referee.
func (c SessionConfig) ExpectedHits() []int64 {
	c = c.WithDefaults()
	hits := make([]int64, c.AggGroups)
	if c.AggEvery <= 0 {
		return hits
	}
	for p := 0; p < c.Procs; p++ {
		for w := 0; w < c.Workers; w++ {
			g := loadgen.New(c.genConfig(p, w))
			for i := 0; i < c.Warmup+c.Ops; i++ {
				req := g.Next()
				if i%c.AggEvery == 0 {
					hits[c.aggGroup(p, req.Key)]++
				}
			}
		}
	}
	return hits
}

// WorkloadFingerprint hashes every strand's trace into one value — a pure
// function of the config, so two runs (or two substrates) asserting equal
// fingerprints have provably generated the identical workload.
func (c SessionConfig) WorkloadFingerprint() uint64 {
	c = c.WithDefaults()
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for p := 0; p < c.Procs; p++ {
		for w := 0; w < c.Workers; w++ {
			h = (h ^ loadgen.Fingerprint(c.genConfig(p, w), c.Warmup+c.Ops)) * prime
		}
	}
	return h
}

// SessionScope builds the placement for the configuration, or nil for the
// broadcast baseline. Registration is the soundness contract: every read
// below appears here with at least the label it uses.
func SessionScope(c SessionConfig) *dsm.ScopeMap {
	c = c.WithDefaults()
	if c.Mode == SessionBroadcast {
		return nil
	}
	scope := &dsm.ScopeMap{
		Readers:       make(map[string][]int),
		CausalReaders: make(map[string][]int),
	}
	for p := 0; p < c.Procs; p++ {
		for s := 0; s < c.Sessions; s++ {
			sid := p*c.Sessions + s
			readers := []int{p}
			if c.Procs > 1 {
				readers = append(readers, c.follower(p, s))
			}
			for k := 0; k < c.SessionKeys; k++ {
				loc := sessionLoc(sid, k)
				scope.Readers[loc] = readers
				scope.CausalReaders[loc] = readers
			}
		}
		for w := 0; w < c.Workers; w++ {
			for f, probe := range c.FlagPlan(p, w) {
				prober := []int{probe.Follower}
				scope.Readers[visTimeLoc(p, w, f)] = prober
				scope.CausalReaders[visTimeLoc(p, w, f)] = prober
				scope.Readers[visFlagLoc(p, w, f)] = prober
				scope.CausalReaders[visFlagLoc(p, w, f)] = prober
			}
		}
	}
	if c.Mode == SessionHybrid {
		all := make([]int, c.Procs)
		for i := range all {
			all[i] = i
		}
		for g := 0; g < c.AggGroups; g++ {
			scope.Readers[aggHitsLoc(g)] = all
		}
		scope.Readers[aggActiveLoc] = all
	}
	return scope
}

// SessionProcResult reports one process's share of a session run.
type SessionProcResult struct {
	// Read, Write, and Vis are the measured-phase latency histograms:
	// read latency, write-issue latency, and cross-process write-visibility
	// latency (probed on this process, for the watched process's writes).
	Read, Write, Vis *hist.Histogram
	// Reads, Writes, and Adds count the process's memory operations issued
	// by the workload (warmup included) — deterministic per config.
	Reads, Writes, Adds int64
	// Flags is the number of visibility flags this process's workers
	// raised.
	Flags int
}

// strandRec is one strand's private measurement state; strands never share
// histograms, so the hot path takes no locks.
type strandRec struct {
	read, write, vis    *hist.Histogram
	reads, writes, adds int64
	flags               int
}

// ServeSessions runs the session front-end on process p: Workers request
// strands over the process's own session shard plus, when visibility
// probing is enabled, one prober strand per other process's worker strand,
// each replaying that strand's trace and chasing the flags addressed here.
// Every process of the run must call it with the same config. It ends with
// a barrier, so when it returns, every process's updates are applied
// everywhere and the counters may be verified.
func ServeSessions(p core.Process, cfg SessionConfig) *SessionProcResult {
	c := cfg.WithDefaults()
	c.Procs = p.N()
	me := p.ID()

	nWorkers := c.Workers
	nProbers := 0
	if c.visEnabled() {
		nProbers = (c.Procs - 1) * c.Workers
	}
	recs := make([]strandRec, nWorkers+nProbers)
	for i := range recs {
		recs[i] = strandRec{read: hist.New(), write: hist.New(), vis: hist.New()}
	}

	p.Forall(nWorkers+nProbers, func(i int, t core.ThreadOps) {
		if i < nWorkers {
			runSessionWorker(t, c, me, i, &recs[i])
		} else {
			// Prober j chases worker j%Workers of the (j/Workers+1)-th
			// process after this one.
			j := i - nWorkers
			watched := (me + 1 + j/c.Workers) % c.Procs
			runVisProber(t, c, me, watched, j%c.Workers, &recs[i])
		}
	})

	res := &SessionProcResult{Read: hist.New(), Write: hist.New(), Vis: hist.New()}
	for i := range recs {
		res.Read.Merge(recs[i].read)
		res.Write.Merge(recs[i].write)
		res.Vis.Merge(recs[i].vis)
		res.Reads += recs[i].reads
		res.Writes += recs[i].writes
		res.Adds += recs[i].adds
		res.Flags += recs[i].flags
	}

	// All processes arrive and all pre-arrival updates are applied: the
	// aggregates are final and safe to verify with PRAM reads.
	p.Barrier()
	return res
}

// runSessionWorker drives strand (me, w)'s request trace against the
// process's session shard.
func runSessionWorker(t core.ThreadOps, c SessionConfig, me, w int, rec *strandRec) {
	g := loadgen.New(c.genConfig(me, w))
	strand := int64(me*c.Workers + w)

	t.Add(aggActiveLoc, 1)
	rec.adds++

	base := time.Now()
	writes := 0
	for i := 0; i < c.Warmup+c.Ops; i++ {
		req := g.Next()
		if c.Rate > 0 {
			if d := req.Arrival - time.Since(base); d > 0 {
				time.Sleep(d)
			}
		}
		measured := i >= c.Warmup
		sid := me*c.Sessions + req.Key/c.SessionKeys
		loc := sessionLoc(sid, req.Key%c.SessionKeys)

		switch req.Op {
		case loadgen.OpRead:
			start := time.Now()
			t.ReadCausal(loc)
			if measured {
				rec.read.RecordDuration(time.Since(start))
			}
			rec.reads++
		case loadgen.OpWrite:
			// Distinct per location across the owner's strands: the strand
			// id in the high bits, the request index in the low.
			v := (strand+1)<<32 | int64(i+1)
			start := time.Now()
			t.Write(loc, v)
			if measured {
				rec.write.RecordDuration(time.Since(start))
			}
			rec.writes++
			if measured && c.visEnabled() {
				if writes%c.VisEvery == 0 {
					t.Write(visTimeLoc(me, w, rec.flags), time.Now().UnixNano())
					t.Write(visFlagLoc(me, w, rec.flags), int64(rec.flags+1))
					rec.flags++
					rec.writes += 2
				}
				writes++
			}
		}

		if c.AggEvery > 0 && i%c.AggEvery == 0 {
			t.Add(aggHitsLoc(c.aggGroup(me, req.Key)), 1)
			rec.adds++
		}
		if c.AggReadEvery > 0 && i%c.AggReadEvery == 0 {
			group := aggHitsLoc(i / c.AggReadEvery % c.AggGroups)
			start := time.Now()
			if c.Mode == SessionHybrid {
				t.ReadPRAM(group)
			} else {
				t.ReadCausal(group)
			}
			if measured {
				rec.read.RecordDuration(time.Since(start))
			}
			rec.reads++
		}
	}

	t.Add(aggActiveLoc, -1)
	rec.adds++
}

// runVisProber chases the flagged writes of the watched process's worker w
// that are addressed to this process: await the one-shot flag causally,
// causally read the published timestamp, and charge the difference to the
// visibility histogram. It then causally reads the flagged session key —
// the causal-scope payoff the session design exists for: the flag's causal
// dependencies guarantee the session state the flagged write was built on
// is visible here.
func runVisProber(t core.ThreadOps, c SessionConfig, me, watched, w int, rec *strandRec) {
	for k, probe := range c.FlagPlan(watched, w) {
		if probe.Follower != me {
			continue
		}
		t.Await(visFlagLoc(watched, w, k), int64(k+1))
		sent := t.ReadCausal(visTimeLoc(watched, w, k))
		rec.vis.Record(time.Now().UnixNano() - sent)
		rec.reads++

		sid := watched*c.Sessions + probe.Session
		start := time.Now()
		t.ReadCausal(sessionLoc(sid, probe.Key))
		rec.read.RecordDuration(time.Since(start))
		rec.reads++
	}
}

// VerifySessionCounters checks, after ServeSessions has returned on every
// process, that the global aggregates converged to the replay-predicted
// values: each hit counter equals its ExpectedHits entry and the active
// gauge drained to zero. PRAM reads suffice on every mode — the barrier
// closing ServeSessions guarantees all increments are applied.
func VerifySessionCounters(p core.Process, cfg SessionConfig) error {
	c := cfg.WithDefaults()
	c.Procs = p.N()
	want := c.ExpectedHits()
	for g := range want {
		if got := p.ReadPRAM(aggHitsLoc(g)); got != want[g] {
			return fmt.Errorf("proc %d: hit counter %d = %d, want %d", p.ID(), g, got, want[g])
		}
	}
	if got := p.ReadPRAM(aggActiveLoc); got != 0 {
		return fmt.Errorf("proc %d: active gauge = %d after all strands exited, want 0", p.ID(), got)
	}
	return nil
}
