package apps

import (
	"testing"

	"mixedmem/internal/core"
)

func TestGenSparseSPDStructure(t *testing.T) {
	m := GenSparseSPD(16, 0.2, 1)
	if m.N != 16 || len(m.A) != 16 || len(m.Fill) != 16 || len(m.Count) != 16 {
		t.Fatal("malformed matrix")
	}
	for i := 0; i < m.N; i++ {
		if m.A[i][i] <= 0 {
			t.Fatalf("diagonal %d not positive: %v", i, m.A[i][i])
		}
		if !m.Fill[i][i] {
			t.Fatalf("diagonal %d not in fill pattern", i)
		}
	}
	if m.Count[0] != 0 {
		t.Fatalf("column 0 has count %d, want 0", m.Count[0])
	}
}

func TestGenSparseSPDDeterministic(t *testing.T) {
	a := GenSparseSPD(10, 0.3, 5)
	b := GenSparseSPD(10, 0.3, 5)
	for i := range a.A {
		for j := range a.A[i] {
			if a.A[i][j] != b.A[i][j] {
				t.Fatal("generator not deterministic")
			}
		}
	}
}

func TestSymbolicFillCoversNumericFill(t *testing.T) {
	// Every numerically nonzero entry of the sequential factor must be a
	// structural nonzero of the symbolic pattern.
	m := GenSparseSPD(20, 0.15, 3)
	l, err := m.CholeskySequential()
	if err != nil {
		t.Fatalf("CholeskySequential: %v", err)
	}
	for i := 0; i < m.N; i++ {
		for j := 0; j <= i; j++ {
			if l[i][j] != 0 && !m.Fill[i][j] {
				t.Fatalf("numeric nonzero (%d,%d) missing from symbolic fill", i, j)
			}
		}
	}
}

func TestCholeskySequentialFactorizes(t *testing.T) {
	m := GenSparseSPD(15, 0.25, 7)
	l, err := m.CholeskySequential()
	if err != nil {
		t.Fatalf("CholeskySequential: %v", err)
	}
	// Verify L Lᵀ = A on the lower triangle.
	for i := 0; i < m.N; i++ {
		for j := 0; j <= i; j++ {
			var sum float64
			for k := 0; k <= j; k++ {
				sum += l[i][k] * l[j][k]
			}
			if d := abs(sum - m.A[i][j]); d > 1e-9 {
				t.Fatalf("LLᵀ differs from A at (%d,%d) by %v", i, j, d)
			}
		}
	}
}

func TestCholeskyCountMatchesDependencies(t *testing.T) {
	m := GenSparseSPD(12, 0.3, 9)
	for k := 0; k < m.N; k++ {
		want := 0
		for j := 0; j < k; j++ {
			if m.Fill[k][j] {
				want++
			}
		}
		if m.Count[k] != want {
			t.Fatalf("count[%d] = %d, want %d", k, m.Count[k], want)
		}
	}
}

func TestCholeskyLocksMatchesSequential(t *testing.T) {
	m := GenSparseSPD(14, 0.25, 21)
	ref, err := m.CholeskySequential()
	if err != nil {
		t.Fatalf("CholeskySequential: %v", err)
	}
	results := make([]CholeskyResult, 3)
	runMixed(t, 3, func(p *core.Proc) {
		results[p.ID()] = CholeskyLocks(p, m, SolveOptions{})
	})
	for id, res := range results {
		if d := m.FactorError(res.L, ref); d > 1e-9 {
			t.Fatalf("proc %d factor differs from sequential by %v", id, d)
		}
	}
}

func TestCholeskyCountersMatchesSequential(t *testing.T) {
	m := GenSparseSPD(14, 0.25, 22)
	ref, err := m.CholeskySequential()
	if err != nil {
		t.Fatalf("CholeskySequential: %v", err)
	}
	results := make([]CholeskyResult, 3)
	runMixed(t, 3, func(p *core.Proc) {
		results[p.ID()] = CholeskyCounters(p, m, SolveOptions{})
	})
	// Floating-point adds commute only up to rounding, so allow a small
	// tolerance rather than exact equality.
	for id, res := range results {
		if d := m.FactorError(res.L, ref); d > 1e-6 {
			t.Fatalf("proc %d factor differs from sequential by %v", id, d)
		}
	}
}

func TestCholeskyVariantsAgree(t *testing.T) {
	m := GenSparseSPD(12, 0.3, 23)
	var lockL, cntL [][]float64
	runMixed(t, 4, func(p *core.Proc) {
		r := CholeskyLocks(p, m, SolveOptions{})
		if p.ID() == 0 {
			lockL = r.L
		}
	})
	runMixed(t, 4, func(p *core.Proc) {
		r := CholeskyCounters(p, m, SolveOptions{})
		if p.ID() == 0 {
			cntL = r.L
		}
	})
	if d := m.FactorError(lockL, cntL); d > 1e-6 {
		t.Fatalf("variants differ by %v", d)
	}
}

func TestCholeskySingleProc(t *testing.T) {
	m := GenSparseSPD(10, 0.3, 31)
	ref, _ := m.CholeskySequential()
	var res CholeskyResult
	runMixed(t, 1, func(p *core.Proc) {
		res = CholeskyLocks(p, m, SolveOptions{})
	})
	if d := m.FactorError(res.L, ref); d > 1e-9 {
		t.Fatalf("single-proc factor off by %v", d)
	}
}

func TestCholeskyDenseMatrix(t *testing.T) {
	// density 1.0 produces a fully dense SPD matrix: the worst case for
	// lock contention, still correct.
	m := GenSparseSPD(10, 1.0, 13)
	ref, err := m.CholeskySequential()
	if err != nil {
		t.Fatalf("CholeskySequential: %v", err)
	}
	var res CholeskyResult
	runMixed(t, 3, func(p *core.Proc) {
		r := CholeskyLocks(p, m, SolveOptions{})
		if p.ID() == 1 {
			res = r
		}
	})
	if d := m.FactorError(res.L, ref); d > 1e-8 {
		t.Fatalf("dense factor off by %v", d)
	}
}

func TestCholeskyCountersUseNoLocks(t *testing.T) {
	m := GenSparseSPD(10, 0.3, 17)
	sys := runMixed(t, 3, func(p *core.Proc) {
		CholeskyCounters(p, m, SolveOptions{})
	})
	for i := 0; i < 3; i++ {
		if s := sys.Proc(i).LockStats(); s.Acquires != 0 {
			t.Fatalf("counter variant acquired %d locks", s.Acquires)
		}
	}
	stats := sys.NetStats()
	if stats.PerKind["lock-req"] != 0 {
		t.Fatalf("counter variant sent %d lock requests", stats.PerKind["lock-req"])
	}
}

func TestGenGridSPDStructure(t *testing.T) {
	m := GenGridSPD(4)
	if m.N != 16 {
		t.Fatalf("N = %d, want 16", m.N)
	}
	// Diagonal 4, neighbor couplings -1.
	for i := 0; i < m.N; i++ {
		if m.A[i][i] != 4 {
			t.Fatalf("diag %d = %v", i, m.A[i][i])
		}
	}
	if m.A[1][0] != -1 || m.A[4][0] != -1 {
		t.Fatalf("neighbor couplings wrong: %v %v", m.A[1][0], m.A[4][0])
	}
	// Non-neighbors are zero in A.
	if m.A[5][0] != 0 {
		t.Fatalf("diagonal-adjacent cells must not couple: %v", m.A[5][0])
	}
}

func TestGridSPDCholeskyFactorizes(t *testing.T) {
	m := GenGridSPD(5)
	l, err := m.CholeskySequential()
	if err != nil {
		t.Fatalf("CholeskySequential: %v", err)
	}
	// L Lᵀ must reconstruct A on the lower triangle.
	for i := 0; i < m.N; i++ {
		for j := 0; j <= i; j++ {
			var sum float64
			for k := 0; k <= j; k++ {
				sum += l[i][k] * l[j][k]
			}
			if d := abs(sum - m.A[i][j]); d > 1e-9 {
				t.Fatalf("LLᵀ != A at (%d,%d): %v", i, j, d)
			}
		}
	}
}

func TestGridSPDParallelVariantsMatch(t *testing.T) {
	m := GenGridSPD(4)
	ref, err := m.CholeskySequential()
	if err != nil {
		t.Fatalf("CholeskySequential: %v", err)
	}
	for _, counters := range []bool{false, true} {
		var res CholeskyResult
		runMixed(t, 4, func(p *core.Proc) {
			var r CholeskyResult
			if counters {
				r = CholeskyCounters(p, m, SolveOptions{})
			} else {
				r = CholeskyLocks(p, m, SolveOptions{})
			}
			if p.ID() == 0 {
				res = r
			}
		})
		if d := m.FactorError(res.L, ref); d > 1e-6 {
			t.Fatalf("counters=%v: grid factor off by %v", counters, d)
		}
	}
}

func TestGridSPDFillIn(t *testing.T) {
	// The Laplacian's factor fills in: symbolic nonzeros strictly exceed
	// the original nonzeros for k >= 3.
	m := GenGridSPD(4)
	orig, fill := 0, 0
	for i := 0; i < m.N; i++ {
		for j := 0; j <= i; j++ {
			if m.A[i][j] != 0 {
				orig++
			}
			if m.Fill[i][j] {
				fill++
			}
		}
	}
	if fill <= orig {
		t.Fatalf("no fill-in: orig=%d fill=%d", orig, fill)
	}
}
