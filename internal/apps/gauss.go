package apps

import (
	"time"

	"mixedmem/internal/core"
)

// SolveAsyncPRAM is the Section 7 observation turned into a program:
// asynchronous relaxation (chaotic Gauss–Seidel/Jacobi) converges for
// diagonally dominant systems even under plain PRAM, with no barriers, no
// locks, and no awaits during the sweep. Each process repeatedly recomputes
// its own rows from whatever estimates its PRAM view currently holds —
// stale, reordered across writers, anything PRAM allows — and the iteration
// still contracts (Chazan–Miranker style asynchronous convergence).
//
// rounds fixes the number of local sweeps. Convergence of chaotic iteration
// requires that communication keeps pace with computation (Chazan–Miranker's
// bounded-staleness condition); a spin of pure memory operations on the
// simulated fabric would outrun delivery entirely, so each sweep charges a
// small fixed compute time during which updates flow. A single barrier at
// the end collects the final estimate. Every process must call
// SolveAsyncPRAM.
func SolveAsyncPRAM(p core.Process, ls *LinearSystem, rounds int) SolveResult {
	const computeTimePerSweep = 50 * time.Microsecond
	n := p.N()
	per := ls.N / n
	extra := ls.N % n
	lo := p.ID()*per + min(p.ID(), extra)
	size := per
	if p.ID() < extra {
		size++
	}
	hi := lo + size

	x := make([]float64, ls.N)
	for r := 0; r < rounds; r++ {
		// Read the whole estimate with PRAM reads — no synchronization at
		// all, so values may be arbitrarily stale or mutually inconsistent.
		for j := 0; j < ls.N; j++ {
			x[j] = core.ReadPRAMFloat(p, xVar(j))
		}
		for i := lo; i < hi; i++ {
			// Gauss–Seidel flavor: use own freshly computed values within
			// the sweep.
			x[i] = ls.jacobiRow(i, x)
			core.WriteFloat(p, xVar(i), x[i])
		}
		time.Sleep(computeTimePerSweep)
	}
	p.Barrier()
	for j := 0; j < ls.N; j++ {
		x[j] = core.ReadPRAMFloat(p, xVar(j))
	}
	return SolveResult{X: x, Iters: rounds, Converged: true}
}
