package apps

import (
	"time"

	"mixedmem/internal/core"
	"mixedmem/internal/history"
)

// SolveAsyncPRAM is the Section 7 observation turned into a program:
// asynchronous relaxation (chaotic Gauss–Seidel/Jacobi) converges for
// diagonally dominant systems even under plain PRAM, with no barriers, no
// locks, and no awaits during the sweep. Each process repeatedly recomputes
// its own rows from whatever estimates its PRAM view currently holds —
// stale, reordered across writers, anything PRAM allows — and the iteration
// still contracts (Chazan–Miranker style asynchronous convergence).
//
// rounds fixes the number of local sweeps. Convergence of chaotic iteration
// requires that communication keeps pace with computation (Chazan–Miranker's
// bounded-staleness condition); a spin of pure memory operations on the
// simulated fabric would outrun delivery entirely, so each sweep charges a
// small fixed compute time during which updates flow. A single barrier at
// the end collects the final estimate. Every process must call
// SolveAsyncPRAM.
func SolveAsyncPRAM(p core.Process, ls *LinearSystem, rounds int) SolveResult {
	const computeTimePerSweep = 50 * time.Microsecond
	n := p.N()
	per := ls.N / n
	extra := ls.N % n
	lo := p.ID()*per + min(p.ID(), extra)
	size := per
	if p.ID() < extra {
		size++
	}
	hi := lo + size

	x := make([]float64, ls.N)
	for r := 0; r < rounds; r++ {
		// Read the whole estimate with PRAM reads — no synchronization at
		// all, so values may be arbitrarily stale or mutually inconsistent.
		for j := 0; j < ls.N; j++ {
			x[j] = core.ReadPRAMFloat(p, xVar(j))
		}
		for i := lo; i < hi; i++ {
			// Gauss–Seidel flavor: use own freshly computed values within
			// the sweep.
			x[i] = ls.jacobiRow(i, x)
			core.WriteFloat(p, xVar(i), x[i])
		}
		time.Sleep(computeTimePerSweep)
	}
	p.Barrier()
	for j := 0; j < ls.N; j++ {
		x[j] = core.ReadPRAMFloat(p, xVar(j))
	}
	return SolveResult{X: x, Iters: rounds, Converged: true}
}

// SlowEstimateLabels labels every estimate cell of an n-variable system Slow,
// for configuring a system that runs SolveAsyncSlow. Each cell has exactly
// one writer (the process that owns its row), so per-location FIFO already
// delivers each reader a monotone sequence of refinements — the full
// per-sender ordering that PRAM adds buys nothing here.
func SlowEstimateLabels(n int) map[string]history.Label {
	labels := make(map[string]history.Label, n)
	for i := 0; i < n; i++ {
		labels[xVar(i)] = history.LabelSlow
	}
	return labels
}

// SolveAsyncSlow is SolveAsyncPRAM pushed to the bottom of the lattice:
// the same chaotic relaxation, but the estimate cells are labeled Slow (see
// SlowEstimateLabels) and every read during the sweep is a slow read.
// Convergence survives because the Chazan–Miranker condition only needs each
// reader's view of each cell to advance through that cell's write sequence —
// a per-location, per-writer guarantee, which is exactly what slow memory
// keeps. The writes also shed their vector timestamps on the wire, so this
// is the cheapest point of the spectrum that still solves the system. A
// single barrier collects the final estimate; the collection reads stay slow
// because the barrier itself guarantees all prior-phase updates are applied.
// Every process must call SolveAsyncSlow, on a system whose Labels include
// SlowEstimateLabels(ls.N).
func SolveAsyncSlow(p core.Process, ls *LinearSystem, rounds int) SolveResult {
	const computeTimePerSweep = 50 * time.Microsecond
	n := p.N()
	per := ls.N / n
	extra := ls.N % n
	lo := p.ID()*per + min(p.ID(), extra)
	size := per
	if p.ID() < extra {
		size++
	}
	hi := lo + size

	x := make([]float64, ls.N)
	for r := 0; r < rounds; r++ {
		for j := 0; j < ls.N; j++ {
			x[j] = core.ReadSlowFloat(p, xVar(j))
		}
		for i := lo; i < hi; i++ {
			x[i] = ls.jacobiRow(i, x)
			core.WriteFloat(p, xVar(i), x[i])
		}
		time.Sleep(computeTimePerSweep)
	}
	p.Barrier()
	for j := 0; j < ls.N; j++ {
		x[j] = core.ReadSlowFloat(p, xVar(j))
	}
	return SolveResult{X: x, Iters: rounds, Converged: true}
}
