package apps

import (
	"testing"

	"mixedmem/internal/core"
)

func TestPipelineSequentialDeterministic(t *testing.T) {
	a := PipelineSequential(PipelineConfig{Items: 8, Seed: 3}, 2)
	b := PipelineSequential(PipelineConfig{Items: 8, Seed: 3}, 2)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("reference not deterministic")
		}
	}
	c := PipelineSequential(PipelineConfig{Items: 8, Seed: 4}, 2)
	if a[0] == c[0] {
		t.Error("different seeds gave identical items")
	}
}

func TestPipelineAwaitMatchesReference(t *testing.T) {
	cfg := PipelineConfig{Items: 20, Seed: 5}
	const procs = 4
	ref := PipelineSequential(cfg, procs-1)
	var got []int64
	runMixed(t, procs, func(p *core.Proc) {
		if out := PipelineAwait(p, cfg); out != nil {
			got = out
		}
	})
	if len(got) != cfg.Items {
		t.Fatalf("got %d outputs, want %d", len(got), cfg.Items)
	}
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("item %d = %d, want %d", i, got[i], ref[i])
		}
	}
}

func TestPipelineLocksMatchesReference(t *testing.T) {
	cfg := PipelineConfig{Items: 12, Seed: 7}
	const procs = 3
	ref := PipelineSequential(cfg, procs-1)
	var got []int64
	runMixed(t, procs, func(p *core.Proc) {
		if out := PipelineLocks(p, cfg); out != nil {
			got = out
		}
	})
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("item %d = %d, want %d", i, got[i], ref[i])
		}
	}
}

func TestPipelineVariantsAgree(t *testing.T) {
	cfg := PipelineConfig{Items: 10, Seed: 11}
	var await, locks []int64
	runMixed(t, 3, func(p *core.Proc) {
		if out := PipelineAwait(p, cfg); out != nil {
			await = out
		}
	})
	runMixed(t, 3, func(p *core.Proc) {
		if out := PipelineLocks(p, cfg); out != nil {
			locks = out
		}
	})
	for i := range await {
		if await[i] != locks[i] {
			t.Fatalf("item %d differs: await=%d locks=%d", i, await[i], locks[i])
		}
	}
}

func TestPipelineAwaitUsesNoLocks(t *testing.T) {
	cfg := PipelineConfig{Items: 8, Seed: 13}
	sys := runMixed(t, 3, func(p *core.Proc) {
		PipelineAwait(p, cfg)
	})
	for i := 0; i < 3; i++ {
		if s := sys.Proc(i).LockStats(); s.Acquires != 0 {
			t.Fatalf("await pipeline acquired %d locks", s.Acquires)
		}
	}
	if sys.NetStats().PerKind["lock-req"] != 0 {
		t.Fatal("await pipeline sent lock traffic")
	}
}

func TestPipelineLockVariantSendsMoreMessages(t *testing.T) {
	cfg := PipelineConfig{Items: 10, Seed: 17}
	awaitSys := runMixed(t, 3, func(p *core.Proc) { PipelineAwait(p, cfg) })
	lockSys := runMixed(t, 3, func(p *core.Proc) { PipelineLocks(p, cfg) })
	am := awaitSys.NetStats().MessagesSent
	lm := lockSys.NetStats().MessagesSent
	if lm <= am {
		t.Fatalf("lock pipeline (%d msgs) should out-message await pipeline (%d msgs)", lm, am)
	}
}

func TestPipelineSingleConsumer(t *testing.T) {
	cfg := PipelineConfig{Items: 5, Seed: 19}
	ref := PipelineSequential(cfg, 1)
	var got []int64
	runMixed(t, 2, func(p *core.Proc) {
		if out := PipelineAwait(p, cfg); out != nil {
			got = out
		}
	})
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("item %d = %d, want %d", i, got[i], ref[i])
		}
	}
}
