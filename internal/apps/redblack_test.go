package apps

import (
	"testing"

	"mixedmem/internal/core"
)

func TestGenTridiagDominantShape(t *testing.T) {
	ls := GenTridiagDominant(10, 1)
	for i := 0; i < ls.N; i++ {
		for j := 0; j < ls.N; j++ {
			if j < i-1 || j > i+1 {
				if ls.A[i][j] != 0 {
					t.Fatalf("A[%d][%d] = %v, want 0 (tridiagonal)", i, j, ls.A[i][j])
				}
			}
		}
		var off float64
		if i > 0 {
			off += abs64(ls.A[i][i-1])
		}
		if i < ls.N-1 {
			off += abs64(ls.A[i][i+1])
		}
		if ls.A[i][i] <= off {
			t.Fatalf("row %d not strictly dominant", i)
		}
	}
}

func TestSolveRedBlackMatchesDirect(t *testing.T) {
	ls := GenTridiagDominant(15, 3)
	direct, err := ls.SolveDirect()
	if err != nil {
		t.Fatalf("SolveDirect: %v", err)
	}
	results := make([]SolveResult, 3)
	runMixed(t, 3, func(p *core.Proc) {
		results[p.ID()] = SolveRedBlack(p, ls, SolveOptions{Tol: 1e-9})
	})
	for id, res := range results {
		if !res.Converged {
			t.Fatalf("proc %d did not converge (%d iters)", id, res.Iters)
		}
		if d := MaxAbsDiff(res.X, direct); d > 1e-7 {
			t.Fatalf("proc %d off by %v", id, d)
		}
	}
}

func TestSolveRedBlackFasterThanJacobi(t *testing.T) {
	// Red-black Gauss–Seidel consumes half-sweep-fresh values, so it needs
	// no more sweeps than Jacobi on the same system (strictly fewer on
	// anything nontrivial).
	ls := GenTridiagDominant(16, 7)
	var jacobiIters, rbIters int
	runMixed(t, 3, func(p *core.Proc) {
		r := SolveBarrier(p, ls, SolveOptions{Tol: 1e-9})
		if p.ID() == 0 {
			jacobiIters = r.Iters
		}
	})
	runMixed(t, 3, func(p *core.Proc) {
		r := SolveRedBlack(p, ls, SolveOptions{Tol: 1e-9})
		if p.ID() == 0 {
			rbIters = r.Iters
		}
	})
	if rbIters > jacobiIters {
		t.Fatalf("red-black took %d sweeps, Jacobi %d", rbIters, jacobiIters)
	}
	if rbIters == 0 || jacobiIters == 0 {
		t.Fatal("missing iteration counts")
	}
	t.Logf("sweeps: jacobi=%d red-black=%d", jacobiIters, rbIters)
}

func TestSolveRedBlackUsesOnlyPRAMReads(t *testing.T) {
	ls := GenTridiagDominant(10, 9)
	sys := runMixed(t, 2, func(p *core.Proc) {
		SolveRedBlack(p, ls, SolveOptions{Tol: 1e-8})
	})
	for i := 0; i < 2; i++ {
		if s := sys.Proc(i).MemStats(); s.CausalReads != 0 {
			t.Fatalf("proc %d used causal reads; red-black is a Corollary 2 program", i)
		}
	}
}

func TestSolveRedBlackSingleProc(t *testing.T) {
	ls := GenTridiagDominant(9, 11)
	direct, _ := ls.SolveDirect()
	var res SolveResult
	runMixed(t, 1, func(p *core.Proc) {
		res = SolveRedBlack(p, ls, SolveOptions{Tol: 1e-9})
	})
	if d := MaxAbsDiff(res.X, direct); d > 1e-7 {
		t.Fatalf("off by %v", d)
	}
}
