package apps

import (
	"math"
	"strconv"

	"mixedmem/internal/core"
	"mixedmem/internal/dsm"
	"mixedmem/internal/history"
)

// EMProblem is a one-dimensional staggered-grid electromagnetic-field
// computation in the spirit of Figure 4: E-field samples live between
// H-field samples, and the simulation alternates phases in which adjoining
// H values update E values and adjoining E values update H values.
type EMProblem struct {
	// Size is the number of grid cells.
	Size int
	// Steps is the number of full E+H update steps.
	Steps int
	// C is the update (Courant) coefficient.
	C float64
	// E0 and H0 are the initial fields, length Size.
	E0, H0 []float64
}

// GenEMProblem builds a grid of the given size with a smooth seeded initial
// excitation.
func GenEMProblem(size, steps int, seed int64) *EMProblem {
	p := &EMProblem{
		Size:  size,
		Steps: steps,
		C:     0.4,
		E0:    make([]float64, size),
		H0:    make([]float64, size),
	}
	for i := 0; i < size; i++ {
		// A Gaussian pulse plus a seed-dependent ripple.
		center := float64(size) / 2
		d := (float64(i) - center) / (float64(size) / 8)
		p.E0[i] = math.Exp(-d*d) * (1 + 0.1*math.Sin(float64(seed)+float64(i)))
	}
	return p
}

// SolveSequential runs the reference simulation and returns the final E and
// H fields.
func (p *EMProblem) SolveSequential() ([]float64, []float64) {
	e := make([]float64, p.Size)
	h := make([]float64, p.Size)
	copy(e, p.E0)
	copy(h, p.H0)
	for s := 0; s < p.Steps; s++ {
		stepE(e, h, p.C, 1, p.Size)
		stepH(h, e, p.C, 0, p.Size-1)
	}
	return e, h
}

// stepE updates e[lo:hi) from adjoining h values: e[i] += c*(h[i]-h[i-1]).
func stepE(e, h []float64, c float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		e[i] += c * (h[i] - h[i-1])
	}
}

// stepH updates h[lo:hi) from adjoining e values: h[i] += c*(e[i+1]-e[i]).
func stepH(h, e []float64, c float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		h[i] += c * (e[i+1] - e[i])
	}
}

func eBoundaryVar(i int) string { return "E" + strconv.Itoa(i) }
func hBoundaryVar(i int) string { return "H" + strconv.Itoa(i) }

// EMResult reports a parallel field computation.
type EMResult struct {
	// E and H are the process's owned slices of the final fields, at
	// indices [Lo, Hi).
	E, H   []float64
	Lo, Hi int
}

// SolveEMField runs the Figure 4 computation on the mixed-consistency
// memory: the grid is block-partitioned, interior values stay in process
// memory, and each process publishes only its boundary samples to the
// shared memory — the "ghost copies" the paper notes move from the
// programmer's responsibility to the memory system's. Each phase writes a
// boundary variable exactly once and reads only variables written in prior
// phases, so the program is PRAM-consistent and PRAM reads suffice
// (Corollary 2).
//
// Every process must call SolveEMField; each returns its own block. By
// default the boundary reads are PRAM; opts.ReadLabel == LabelCausal selects
// causal reads instead — the same dataflow with Definition 2 guarantees, the
// workload the causal-scoped placement rows of the A3 ablation measure.
func SolveEMField(p core.Process, prob *EMProblem, opts SolveOptions) EMResult {
	read := core.ReadPRAMFloat
	if opts.ReadLabel == history.LabelCausal {
		read = core.ReadCausalFloat
	}
	n := p.N()
	per := prob.Size / n
	extra := prob.Size % n
	lo := p.ID()*per + min(p.ID(), extra)
	size := per
	if p.ID() < extra {
		size++
	}
	hi := lo + size

	// Local field blocks with one ghost cell on each side.
	e := make([]float64, prob.Size)
	h := make([]float64, prob.Size)
	copy(e, prob.E0)
	copy(h, prob.H0)

	leftNeighbor := p.ID() > 0
	rightNeighbor := p.ID() < n-1

	// Publish initial boundary samples needed by neighbors in step 1:
	// the left neighbor's H (for E updates) and the right neighbor's E
	// (for H updates).
	if rightNeighbor {
		core.WriteFloat(p, hBoundaryVar(hi-1), h[hi-1])
	}
	if leftNeighbor {
		core.WriteFloat(p, eBoundaryVar(lo), e[lo])
	}
	p.Barrier()

	for s := 0; s < prob.Steps; s++ {
		// E phase: e[i] += C*(h[i]-h[i-1]); i == lo needs h[lo-1] from the
		// left neighbor's last publish.
		if leftNeighbor {
			h[lo-1] = read(p, hBoundaryVar(lo-1))
		}
		elo := lo
		if elo == 0 {
			elo = 1 // global boundary is fixed
		}
		stepE(e, h, prob.C, elo, hi)
		if leftNeighbor {
			core.WriteFloat(p, eBoundaryVar(lo), e[lo])
		}
		p.Barrier()

		// H phase: h[i] += C*(e[i+1]-e[i]); i == hi-1 needs e[hi] from the
		// right neighbor's publish.
		if rightNeighbor {
			e[hi] = read(p, eBoundaryVar(hi))
		}
		hhi := hi
		if hhi == prob.Size {
			hhi = prob.Size - 1 // global boundary is fixed
		}
		stepH(h, e, prob.C, lo, hhi)
		if rightNeighbor {
			core.WriteFloat(p, hBoundaryVar(hi-1), h[hi-1])
		}
		p.Barrier()
	}

	return EMResult{E: e[lo:hi], H: h[lo:hi], Lo: lo, Hi: hi}
}

// EMFieldScope returns the access-pattern placement for SolveEMField's
// shared variables (Section 6's closing optimization): a published E
// boundary at index i is read only by the owner of cell i-1, and a published
// H boundary at index i only by the owner of cell i+1, so each update can be
// sent to exactly one process instead of broadcast. Use it as
// core.Config.Placement — with PRAMOnly for the PRAM-read variant of the
// program (it is PRAM-consistent, so both optimizations apply), or with
// causal set, which also registers every reader as a causal reader, for the
// ReadLabel == LabelCausal variant: boundary updates then ship
// dependency-stamped to their single reader instead of broadcast.
func EMFieldScope(size, procs int, causal bool) *dsm.ScopeMap {
	owner := func(cell int) int {
		if cell < 0 {
			return 0
		}
		if cell >= size {
			return procs - 1
		}
		per := size / procs
		extra := size % procs
		// Invert the block partition of SolveEMField.
		for p := 0; p < procs; p++ {
			lo := p*per + min(p, extra)
			sz := per
			if p < extra {
				sz++
			}
			if cell >= lo && cell < lo+sz {
				return p
			}
		}
		return procs - 1
	}
	scope := &dsm.ScopeMap{Readers: make(map[string][]int)}
	if causal {
		scope.CausalReaders = make(map[string][]int)
	}
	register := func(loc string, reader int) {
		scope.Readers[loc] = []int{reader}
		if causal {
			scope.CausalReaders[loc] = []int{reader}
		}
	}
	for i := 0; i < size; i++ {
		register(eBoundaryVar(i), owner(i-1))
		register(hBoundaryVar(i), owner(i+1))
	}
	return scope
}
