package apps

import (
	"strconv"

	"mixedmem/internal/core"
	"mixedmem/internal/history"
)

// SolveOptions configures the iterative solvers.
type SolveOptions struct {
	// Tol is the residual tolerance for convergence.
	Tol float64
	// MaxIters bounds the number of iterations.
	MaxIters int
	// ReadLabel selects the consistency of the matrix reads in the
	// handshake solver: LabelCausal is the paper's correct choice
	// (Figure 3); LabelPRAM reproduces the insufficiency discussed in
	// Section 5.1. The barrier solver always uses PRAM reads (Figure 2).
	ReadLabel history.Label
}

func (o *SolveOptions) fill() {
	if o.Tol == 0 {
		o.Tol = 1e-8
	}
	if o.MaxIters == 0 {
		o.MaxIters = 500
	}
	if o.ReadLabel == history.LabelNone {
		o.ReadLabel = history.LabelCausal
	}
}

// SolveResult reports a solver run.
type SolveResult struct {
	// X is the final estimate, read back by this process.
	X []float64
	// Iters is the number of iterations executed.
	Iters int
	// Converged tells whether the tolerance was met within MaxIters.
	Converged bool
}

// SolveBarrier is the synchronous iterative equation solver with barriers of
// Figure 2: process 0 is the coordinator checking convergence, processes
// 1..N-1 are workers each owning a block of rows. In each iteration the
// workers read the whole estimate with PRAM reads and compute new values
// into local temporaries (first subphase), cross a barrier, install the new
// estimates (second subphase), and cross a second barrier. Since no shared
// variable is both read and written in the same subphase, the program is
// PRAM-consistent and, by Corollary 2, PRAM reads make it behave
// sequentially consistently.
//
// Every process must call SolveBarrier; it returns the same result on all of
// them. The system must have at least 2 processes.
func SolveBarrier(p core.Process, ls *LinearSystem, opts SolveOptions) SolveResult {
	opts.fill()
	coordinator := p.ID() == 0
	workers := p.N() - 1
	var lo, hi int
	if !coordinator {
		lo, hi = rowRange(ls.N, workers, p.ID())
	}
	temp := make([]float64, ls.N)
	x := make([]float64, ls.N)

	readX := func() {
		for j := 0; j < ls.N; j++ {
			x[j] = core.ReadPRAMFloat(p, xVar(j))
		}
	}

	iters := 0
	converged := false
	for iter := 1; iter <= opts.MaxIters; iter++ {
		iters = iter
		// Subphase A: everyone reads the estimate; the coordinator decides
		// convergence and writes done; workers compute local temporaries.
		readX()
		if coordinator {
			if ls.Residual(x) < opts.Tol {
				p.Write("done", 1)
			}
		} else {
			for i := lo; i < hi; i++ {
				temp[i] = ls.jacobiRow(i, x)
			}
		}
		p.Barrier()
		// Subphase B: done (written in A) is read; workers install the new
		// estimates unless the run is over.
		d := p.ReadPRAM("done")
		if d == 0 && !coordinator {
			for i := lo; i < hi; i++ {
				core.WriteFloat(p, xVar(i), temp[i])
			}
		}
		p.Barrier()
		if d == 1 {
			converged = true
			break
		}
	}
	readX()
	return SolveResult{X: x, Iters: iters, Converged: converged}
}

// handshake variable names of Figure 3.
func computedVar(i int) string { return "computed" + strconv.Itoa(i) }
func updatedVar(i int) string  { return "updated" + strconv.Itoa(i) }

// SolveHandshake is the iterative equation solver with handshaking of
// Figure 3: no barriers are available, so the coordinator synchronizes the
// workers through computed[i]/updated[i] handshake variables and await
// statements. The paper shows PRAM reads are insufficient here — the
// estimate updates of worker j reach worker i only transitively through the
// coordinator — and uses causal reads (Theorem 1: all operations unrelated
// by causality commute).
//
// Every process must call SolveHandshake. opts.ReadLabel selects the matrix
// read consistency; LabelCausal is the correct configuration.
func SolveHandshake(p core.Process, ls *LinearSystem, opts SolveOptions) SolveResult {
	opts.fill()
	coordinator := p.ID() == 0
	workers := p.N() - 1

	read := func(loc string) int64 {
		if opts.ReadLabel == history.LabelPRAM {
			return p.ReadPRAM(loc)
		}
		return p.ReadCausal(loc)
	}
	readFloat := func(loc string) float64 {
		if opts.ReadLabel == history.LabelPRAM {
			return core.ReadPRAMFloat(p, loc)
		}
		return core.ReadCausalFloat(p, loc)
	}
	await := func(loc string, v int64) {
		if opts.ReadLabel == history.LabelPRAM {
			p.AwaitPRAM(loc, v)
		} else {
			p.Await(loc, v)
		}
	}

	x := make([]float64, ls.N)
	readX := func() {
		for j := 0; j < ls.N; j++ {
			x[j] = readFloat(xVar(j))
		}
	}

	phase := int64(0)
	iters := 0
	converged := false

	// awaitAll is the coordinator's "forall i do await(...)" of Figure 3:
	// one concurrent strand per worker, joined before proceeding.
	awaitAll := func(varOf func(int) string, v int64) {
		p.Forall(workers, func(i int, th core.ThreadOps) {
			if opts.ReadLabel == history.LabelPRAM {
				th.AwaitPRAM(varOf(i+1), v)
			} else {
				th.Await(varOf(i+1), v)
			}
		})
	}

	if coordinator {
		for read("done") == 0 && iters < opts.MaxIters {
			iters++
			phase++
			awaitAll(computedVar, phase)
			for i := 1; i <= workers; i++ {
				p.Write(computedVar(i), -phase)
			}
			awaitAll(updatedVar, phase)
			readX()
			if ls.Residual(x) < opts.Tol {
				p.Write("done", 1)
				converged = true
			}
			for i := 1; i <= workers; i++ {
				p.Write(updatedVar(i), -phase)
			}
		}
		// Workers re-check done right after their final await fires; the
		// done write precedes the updated[i] writes in the coordinator's
		// program order, so both causal and PRAM reads observe it there.
	} else {
		me := p.ID()
		temp := make([]float64, ls.N)
		lo, hi := rowRange(ls.N, workers, me)
		for read("done") == 0 && iters < opts.MaxIters {
			iters++
			phase++
			readX()
			for i := lo; i < hi; i++ {
				temp[i] = ls.jacobiRow(i, x)
			}
			p.Write(computedVar(me), phase)
			await(computedVar(me), -phase)
			for i := lo; i < hi; i++ {
				core.WriteFloat(p, xVar(i), temp[i])
			}
			p.Write(updatedVar(me), phase)
			await(updatedVar(me), -phase)
		}
		converged = read("done") == 1
	}
	readX()
	return SolveResult{X: x, Iters: iters, Converged: converged}
}
