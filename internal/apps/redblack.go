package apps

import (
	"math/rand"

	"mixedmem/internal/core"
)

// GenTridiagDominant generates a strictly diagonally dominant tridiagonal
// system (a 1-D Poisson-like chain): row i couples only to rows i-1 and
// i+1. Nearest-neighbor coupling is what makes red-black ordering
// phase-separable — every even unknown depends only on odd unknowns and
// vice versa.
func GenTridiagDominant(n int, seed int64) *LinearSystem {
	r := rand.New(rand.NewSource(seed))
	ls := &LinearSystem{
		N: n,
		A: make([][]float64, n),
		B: make([]float64, n),
	}
	for i := 0; i < n; i++ {
		ls.A[i] = make([]float64, n)
		var off float64
		if i > 0 {
			v := r.Float64()*2 - 1
			ls.A[i][i-1] = v
			off += abs64(v)
		}
		if i < n-1 {
			v := r.Float64()*2 - 1
			ls.A[i][i+1] = v
			off += abs64(v)
		}
		ls.A[i][i] = off + 1 + r.Float64()
		ls.B[i] = r.Float64()*10 - 5
	}
	return ls
}

func abs64(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// SolveRedBlack is a second phase-structured relaxation in the Figure 2
// mold: red-black Gauss–Seidel on a tridiagonal system. Unknowns split by
// index parity; each sweep updates all red (even) unknowns from the black
// values, crosses a barrier, then updates all black (odd) unknowns from the
// fresh red values. Within a phase every shared read targets the opposite
// color, so no variable is both read and written in one phase and the
// program is PRAM-consistent (Corollary 2) — but unlike Jacobi it consumes
// half-sweep-fresh values and converges in fewer sweeps.
//
// All processes are workers; process 0 checks convergence in a third phase
// per sweep and publishes the verdict for the next one. Every process must
// call SolveRedBlack.
func SolveRedBlack(p core.Process, ls *LinearSystem, opts SolveOptions) SolveResult {
	opts.fill()
	procs := p.N()
	ownsRow := func(i int) bool { return i%procs == p.ID() }

	// neighborUpdate recomputes unknown i from its (opposite-color)
	// neighbors read out of shared memory.
	neighborUpdate := func(i int) float64 {
		sum := ls.B[i]
		if i > 0 {
			sum -= ls.A[i][i-1] * core.ReadPRAMFloat(p, xVar(i-1))
		}
		if i < ls.N-1 {
			sum -= ls.A[i][i+1] * core.ReadPRAMFloat(p, xVar(i+1))
		}
		return sum / ls.A[i][i]
	}

	x := make([]float64, ls.N)
	readX := func() {
		for j := 0; j < ls.N; j++ {
			x[j] = core.ReadPRAMFloat(p, xVar(j))
		}
	}

	iters := 0
	converged := false
	for iter := 1; iter <= opts.MaxIters; iter++ {
		iters = iter
		// Red phase: even unknowns from black neighbors.
		for i := 0; i < ls.N; i += 2 {
			if ownsRow(i) {
				core.WriteFloat(p, xVar(i), neighborUpdate(i))
			}
		}
		p.Barrier()
		// Black phase: odd unknowns from fresh red neighbors.
		for i := 1; i < ls.N; i += 2 {
			if ownsRow(i) {
				core.WriteFloat(p, xVar(i), neighborUpdate(i))
			}
		}
		p.Barrier()
		// Convergence phase: process 0 reads the full estimate and
		// publishes the verdict; everyone reads it next phase.
		if p.ID() == 0 {
			readX()
			if ls.Residual(x) < opts.Tol {
				p.Write("rbdone", int64(iter))
			}
		}
		p.Barrier()
		if p.ReadPRAM("rbdone") != 0 {
			converged = true
			break
		}
	}
	readX()
	return SolveResult{X: x, Iters: iters, Converged: converged}
}
