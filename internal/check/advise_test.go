package check

import (
	"testing"

	"mixedmem/internal/history"
)

func TestAdviseSlowForBarrierOnlyPhasedProgram(t *testing.T) {
	b := history.NewBuilder(2)
	b.Write(0, "a", 1)
	b.Write(1, "b", 2)
	b.Barrier(0, 1)
	b.Barrier(1, 1)
	b.Read(0, "b", 2, history.LabelPRAM)
	b.Read(1, "a", 1, history.LabelPRAM)
	adv := Advise(b.History(), nil)
	if adv.Label != history.LabelSlow {
		t.Fatalf("label = %v, want Slow (%s)", adv.Label, adv.Rationale)
	}
	// The paper's own choice (Corollary 2 -> PRAM) must remain justified:
	// the lattice only extends downward.
	if viol := PRAMConsistent(b.History()); len(viol) != 0 {
		t.Fatalf("phase discipline unexpectedly violated: %v", viol)
	}
}

func TestAdvisePRAMWhenAwaitsParticipate(t *testing.T) {
	// Same phased shape plus a cross-phase await on a shared flag: the
	// phase discipline still holds, but the await relies on per-sender
	// FIFO, so the advisor must stop at PRAM instead of descending to
	// Slow.
	b := history.NewBuilder(2)
	b.Write(0, "a", 1)
	b.Write(1, "b", 2)
	b.Barrier(0, 1)
	b.Barrier(1, 1)
	b.Await(1, "a", 1)
	b.Read(0, "b", 2, history.LabelPRAM)
	b.Read(1, "a", 1, history.LabelPRAM)
	adv := Advise(b.History(), nil)
	if adv.Label != history.LabelPRAM {
		t.Fatalf("label = %v, want PRAM (%s)", adv.Label, adv.Rationale)
	}
	if len(adv.SlowViolations) == 0 {
		t.Error("expected recorded slow-consistency violations (await present)")
	}
}

func TestAdviseCausalForEntryConsistentProgram(t *testing.T) {
	b := history.NewBuilder(2)
	e0 := b.WLockEpoch(0, "lx")
	b.Read(0, "x", 0, history.LabelCausal)
	b.Write(0, "x", 1)
	b.WUnlockEpoch(0, "lx", e0)
	e1 := b.WLockEpoch(1, "lx")
	b.Read(1, "x", 1, history.LabelCausal)
	b.Write(1, "x", 2)
	b.WUnlockEpoch(1, "lx", e1)
	adv := Advise(b.History(), map[string]string{"x": "lx"})
	if adv.Label != history.LabelCausal {
		t.Fatalf("label = %v, want Causal (%s)", adv.Label, adv.Rationale)
	}
	if len(adv.PRAMViolations) == 0 {
		t.Error("expected recorded PRAM-consistency violations (read+write in one phase)")
	}
}

func TestAdviseSCForUnsynchronizedRaces(t *testing.T) {
	b := history.NewBuilder(2)
	b.Write(0, "x", 1)
	b.Read(1, "x", 1, history.LabelPRAM)
	b.Write(1, "x", 2)
	adv := Advise(b.History(), nil)
	if adv.Label != history.LabelSC {
		t.Fatalf("label = %v, want SC (%s)", adv.Label, adv.Rationale)
	}
	if len(adv.EntryViolations) == 0 {
		t.Error("expected entry-consistency violations for unlocked shared access")
	}
}

func TestAdviseMatchesPaperExamples(t *testing.T) {
	// Figure 2's structure is barrier-only, so the lattice advisor descends
	// one step below the paper's PRAM choice to Slow; Figure 5's lock
	// structure gets causal, exactly the paper's label.
	fig2 := history.NewBuilder(2)
	for p := 0; p < 2; p++ {
		fig2.Read(p, "x0", 0, history.LabelPRAM)
		fig2.Write(p, "t"+string(rune('0'+p)), int64(p+1))
		fig2.Barrier(p, 1)
		fig2.Read(p, "t"+string(rune('0'+p)), int64(p+1), history.LabelPRAM)
		fig2.Write(p, "x"+string(rune('0'+p)), int64(10+p))
		fig2.Barrier(p, 2)
	}
	if adv := Advise(fig2.History(), nil); adv.Label != history.LabelSlow {
		t.Fatalf("figure 2 shape: label = %v, want Slow", adv.Label)
	}

	fig5 := history.NewBuilder(2)
	e0 := fig5.WLockEpoch(0, "l1")
	fig5.Read(0, "L1", 0, history.LabelCausal)
	fig5.Write(0, "L1", 5)
	fig5.WUnlockEpoch(0, "l1", e0)
	e1 := fig5.WLockEpoch(1, "l1")
	fig5.Read(1, "L1", 5, history.LabelCausal)
	fig5.Write(1, "L1", 7)
	fig5.WUnlockEpoch(1, "l1", e1)
	adv := Advise(fig5.History(), map[string]string{"L1": "l1"})
	if adv.Label != history.LabelCausal {
		t.Fatalf("figure 5 shape: label = %v, want Causal", adv.Label)
	}
}

func TestAdviseOnRuntimeRecordedPrograms(t *testing.T) {
	// The advisor must recommend Slow for the recorded barrier-only phased
	// programs — the end-to-end version of the compiler check, one lattice
	// point below the paper's PRAM choice.
	t.Run("phased", func(t *testing.T) {
		h := runPhasedForAdvice(t)
		if adv := Advise(h, nil); adv.Label != history.LabelSlow {
			t.Fatalf("label = %v, want Slow (%s)", adv.Label, adv.Rationale)
		}
	})
}

// runPhasedForAdvice builds a small phased history the way the runtime
// records it (via the builder to keep this package free of core imports).
func runPhasedForAdvice(t *testing.T) *history.History {
	t.Helper()
	b := history.NewBuilder(3)
	for ph := 1; ph <= 2; ph++ {
		for p := 0; p < 3; p++ {
			b.Write(p, "v"+string(rune('0'+p)), int64(ph*100+p+1))
		}
		for p := 0; p < 3; p++ {
			b.Barrier(p, 2*ph-1)
		}
		for p := 0; p < 3; p++ {
			b.Read(p, "v"+string(rune('0'+(p+1)%3)), int64(ph*100+(p+1)%3+1), history.LabelPRAM)
		}
		for p := 0; p < 3; p++ {
			b.Barrier(p, 2*ph)
		}
	}
	return b.History()
}
