package check

import (
	"strings"
	"testing"

	"mixedmem/internal/history"
)

func TestEntryConsistentPass(t *testing.T) {
	b := history.NewBuilder(2)
	e0 := b.WLockEpoch(0, "lx")
	b.Write(0, "x", 1)
	b.WUnlockEpoch(0, "lx", e0)
	e1 := b.NextEpoch("lx")
	b.RLockEpoch(1, "lx", e1)
	b.Read(1, "x", 1, history.LabelCausal)
	b.RUnlockEpoch(1, "lx", e1)
	locks := map[string]string{"x": "lx"}
	if v := EntryConsistent(b.History(), locks); len(v) != 0 {
		t.Errorf("unexpected violations: %v", v)
	}
}

func TestEntryConsistentReadUnderWriteLock(t *testing.T) {
	// Reads under a write lock of the right lock are allowed (condition 3).
	b := history.NewBuilder(1)
	e0 := b.WLockEpoch(0, "lx")
	b.Read(0, "x", 0, history.LabelCausal)
	b.Write(0, "x", 1)
	b.WUnlockEpoch(0, "lx", e0)
	if v := EntryConsistent(b.History(), map[string]string{"x": "lx"}); len(v) != 0 {
		t.Errorf("unexpected violations: %v", v)
	}
}

func TestEntryConsistentUnlockedRead(t *testing.T) {
	b := history.NewBuilder(2)
	b.Write(1, "x", 5) // also unlocked, also a violation
	r := b.Read(0, "x", 5, history.LabelCausal)
	v := EntryConsistent(b.History(), map[string]string{"x": "lx"})
	foundRead, foundWrite := false, false
	for _, viol := range v {
		if viol.Op == r {
			foundRead = true
		}
		if strings.Contains(viol.Reason, "write lock") {
			foundWrite = true
		}
	}
	if !foundRead || !foundWrite {
		t.Fatalf("violations = %v, want unlocked read and write flagged", v)
	}
}

func TestEntryConsistentWriteUnderReadLockFails(t *testing.T) {
	b := history.NewBuilder(1)
	e := b.NextEpoch("lx")
	b.RLockEpoch(0, "lx", e)
	w := b.Write(0, "x", 1)
	b.RUnlockEpoch(0, "lx", e)
	v := EntryConsistent(b.History(), map[string]string{"x": "lx"})
	if len(v) != 1 || v[0].Op != w {
		t.Fatalf("violations = %v, want one on op %d", v, w)
	}
}

func TestEntryConsistentWrongLock(t *testing.T) {
	b := history.NewBuilder(1)
	e := b.WLockEpoch(0, "ly")
	b.Write(0, "x", 1)
	b.WUnlockEpoch(0, "ly", e)
	v := EntryConsistent(b.History(), map[string]string{"x": "lx"})
	if len(v) != 1 {
		t.Fatalf("violations = %v, want wrong-lock write flagged", v)
	}
}

func TestEntryConsistentUnmappedSharedLocation(t *testing.T) {
	b := history.NewBuilder(2)
	b.Write(0, "x", 1)
	b.Read(1, "x", 1, history.LabelCausal)
	v := EntryConsistent(b.History(), map[string]string{})
	found := false
	for _, viol := range v {
		if strings.Contains(viol.Reason, "no lock assignment") {
			found = true
		}
	}
	if !found {
		t.Fatalf("violations = %v, want unmapped shared location", v)
	}
}

func TestEntryConsistentPrivateLocationUnchecked(t *testing.T) {
	b := history.NewBuilder(2)
	b.Write(0, "priv0", 1)
	b.Read(0, "priv0", 1, history.LabelCausal)
	if v := EntryConsistent(b.History(), map[string]string{}); len(v) != 0 {
		t.Errorf("private location flagged: %v", v)
	}
}

func TestPRAMConsistentFigure2Shape(t *testing.T) {
	// The Figure 2 structure: phase 0 reads x[*] and writes temp[i];
	// barrier; phase 1 writes x[i] from temp[i]; barrier. No location is
	// both read and written in one phase.
	b := history.NewBuilder(2)
	for p := 0; p < 2; p++ {
		b.Read(p, "x0", 0, history.LabelPRAM)
		b.Read(p, "x1", 0, history.LabelPRAM)
		b.Write(p, "temp"+string(rune('0'+p)), int64(p+1))
		b.Barrier(p, 1)
		b.Read(p, "temp"+string(rune('0'+p)), int64(p+1), history.LabelPRAM)
		b.Write(p, "x"+string(rune('0'+p)), int64(10+p))
		b.Barrier(p, 2)
	}
	if v := PRAMConsistent(b.History()); len(v) != 0 {
		t.Errorf("unexpected violations: %v", v)
	}
}

func TestPRAMConsistentReadWriteSamePhase(t *testing.T) {
	b := history.NewBuilder(2)
	b.Write(0, "x", 1)
	b.Read(1, "x", 1, history.LabelPRAM)
	b.Barrier(0, 1)
	b.Barrier(1, 1)
	v := PRAMConsistent(b.History())
	if len(v) != 1 || !strings.Contains(v[0].Reason, "both read and written") {
		t.Fatalf("violations = %v, want read+write same phase", v)
	}
}

func TestPRAMConsistentDoubleWrite(t *testing.T) {
	b := history.NewBuilder(2)
	b.Write(0, "x", 1)
	b.Write(1, "x", 2)
	b.Barrier(0, 1)
	b.Barrier(1, 1)
	v := PRAMConsistent(b.History())
	if len(v) != 1 || !strings.Contains(v[0].Reason, "written 2 times") {
		t.Fatalf("violations = %v, want double write", v)
	}
}

func TestPRAMConsistentBarrierMismatch(t *testing.T) {
	b := history.NewBuilder(2)
	b.Barrier(0, 1)
	b.Barrier(0, 2)
	b.Barrier(1, 1)
	v := PRAMConsistent(b.History())
	found := false
	for _, viol := range v {
		if strings.Contains(viol.Reason, "different numbers of barriers") {
			found = true
		}
	}
	if !found {
		t.Fatalf("violations = %v, want barrier-count mismatch", v)
	}
}

func TestCorollary2OnHandBuiltHistory(t *testing.T) {
	// A PRAM-consistent program's history with PRAM reads is SC
	// (Corollary 2). Build the Figure 2 shape with actual data flow and
	// verify all three checkers agree.
	b := history.NewBuilder(2)
	// Phase 0: both read initial x's, write temps.
	b.Read(0, "x0", 0, history.LabelPRAM)
	b.Read(0, "x1", 0, history.LabelPRAM)
	b.Write(0, "t0", 5)
	b.Read(1, "x0", 0, history.LabelPRAM)
	b.Read(1, "x1", 0, history.LabelPRAM)
	b.Write(1, "t1", 6)
	b.Barrier(0, 1)
	b.Barrier(1, 1)
	// Phase 1: install new estimates.
	b.Read(0, "t0", 5, history.LabelPRAM)
	b.Write(0, "x0", 50)
	b.Read(1, "t1", 6, history.LabelPRAM)
	b.Write(1, "x1", 60)
	b.Barrier(0, 2)
	b.Barrier(1, 2)
	// Phase 2: read each other's new values.
	b.Read(0, "x1", 60, history.LabelPRAM)
	b.Read(1, "x0", 50, history.LabelPRAM)

	h := b.History()
	if v := PRAMConsistent(h); len(v) != 0 {
		t.Fatalf("program not PRAM-consistent: %v", v)
	}
	a := analyze(t, b)
	if v := Mixed(a); len(v) != 0 {
		t.Fatalf("history not mixed consistent: %v", v)
	}
	ok, _, err := SequentiallyConsistent(a)
	if err != nil || !ok {
		t.Fatalf("Corollary 2 guarantees SC; got ok=%v err=%v", ok, err)
	}
}

func TestCorollary1OnHandBuiltHistory(t *testing.T) {
	// An entry-consistent program's history with causal reads is SC
	// (Corollary 1).
	b := history.NewBuilder(2)
	e0 := b.WLockEpoch(0, "lx")
	b.Read(0, "x", 0, history.LabelCausal)
	b.Write(0, "x", 10)
	b.WUnlockEpoch(0, "lx", e0)
	e1 := b.WLockEpoch(1, "lx")
	b.Read(1, "x", 10, history.LabelCausal)
	b.Write(1, "x", 20)
	b.WUnlockEpoch(1, "lx", e1)

	h := b.History()
	if v := EntryConsistent(h, map[string]string{"x": "lx"}); len(v) != 0 {
		t.Fatalf("program not entry-consistent: %v", v)
	}
	a := analyze(t, b)
	if v := CausalReads(a); len(v) != 0 {
		t.Fatalf("reads not causal: %v", v)
	}
	ok, _, err := SequentiallyConsistent(a)
	if err != nil || !ok {
		t.Fatalf("Corollary 1 guarantees SC; got ok=%v err=%v", ok, err)
	}
}
