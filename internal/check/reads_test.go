package check

import (
	"strings"
	"testing"

	"mixedmem/internal/history"
)

func analyze(t *testing.T, b *history.Builder) *history.Analysis {
	t.Helper()
	a, err := b.History().Analyze()
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	return a
}

func TestCausalReadSimplePass(t *testing.T) {
	b := history.NewBuilder(2)
	b.Write(0, "x", 1)
	b.Read(1, "x", 1, history.LabelCausal)
	if v := CausalReads(analyze(t, b)); len(v) != 0 {
		t.Errorf("unexpected violations: %v", v)
	}
}

func TestCausalReadOwnWrite(t *testing.T) {
	b := history.NewBuilder(1)
	b.Write(0, "x", 1)
	b.Read(0, "x", 1, history.LabelCausal)
	if v := CausalReads(analyze(t, b)); len(v) != 0 {
		t.Errorf("unexpected violations: %v", v)
	}
}

func TestCausalReadStaleAfterNewer(t *testing.T) {
	// p0 writes x=1 then x=2; p1 reads 2 then 1. The second read violates
	// Definition 2: w(x)1 ~> w(x)2 ~> r(x)1 in p1's view.
	b := history.NewBuilder(2)
	b.Write(0, "x", 1)
	b.Write(0, "x", 2)
	b.Read(1, "x", 2, history.LabelCausal)
	r := b.Read(1, "x", 1, history.LabelCausal)
	v := CausalReads(analyze(t, b))
	if len(v) != 1 || v[0].Op != r {
		t.Fatalf("violations = %v, want one on op %d", v, r)
	}
}

func TestCausalReadTransitiveViolation(t *testing.T) {
	// The canonical chain: p0 writes x, p1 reads it and writes y, p2 reads
	// y and then reads x's initial value. Causal memory forbids it; PRAM
	// allows it.
	b := history.NewBuilder(3)
	b.Write(0, "x", 1)
	b.Read(1, "x", 1, history.LabelCausal)
	b.Write(1, "y", 2)
	b.Read(2, "y", 2, history.LabelCausal)
	rStale := b.Read(2, "x", 0, history.LabelCausal)
	v := CausalReads(analyze(t, b))
	if len(v) != 1 || v[0].Op != rStale {
		t.Fatalf("violations = %v, want one on op %d", v, rStale)
	}
}

func TestPRAMAllowsTransitiveStaleness(t *testing.T) {
	// Same history as above, labeled PRAM: no violation, because the
	// dependence passes through p1's read, which is excluded from ~>2,P.
	b := history.NewBuilder(3)
	b.Write(0, "x", 1)
	b.Read(1, "x", 1, history.LabelPRAM)
	b.Write(1, "y", 2)
	b.Read(2, "y", 2, history.LabelPRAM)
	b.Read(2, "x", 0, history.LabelPRAM)
	if v := PRAMReads(analyze(t, b)); len(v) != 0 {
		t.Errorf("unexpected PRAM violations: %v", v)
	}
}

func TestPRAMRejectsFIFOViolation(t *testing.T) {
	// Two writes by one process observed out of order by another violate
	// PRAM (pipelined delivery is FIFO).
	b := history.NewBuilder(2)
	b.Write(0, "x", 1)
	b.Write(0, "x", 2)
	b.Read(1, "x", 2, history.LabelPRAM)
	r := b.Read(1, "x", 1, history.LabelPRAM)
	v := PRAMReads(analyze(t, b))
	if len(v) != 1 || v[0].Op != r {
		t.Fatalf("violations = %v, want one on op %d", v, r)
	}
}

func TestPRAMAllowsCrossWriterReordering(t *testing.T) {
	// Concurrent writes by different processes may be observed in different
	// orders by different readers under PRAM (Section 2).
	b := history.NewBuilder(4)
	b.Write(0, "x", 1)
	b.Write(1, "x", 2)
	b.Read(2, "x", 1, history.LabelPRAM)
	b.Read(2, "x", 2, history.LabelPRAM)
	b.Read(3, "x", 2, history.LabelPRAM)
	b.Read(3, "x", 1, history.LabelPRAM)
	if v := PRAMReads(analyze(t, b)); len(v) != 0 {
		t.Errorf("unexpected violations: %v", v)
	}
}

func TestCausalAllowsConcurrentWriteReordering(t *testing.T) {
	// Causal memory also permits different observation orders for causally
	// concurrent writes.
	b := history.NewBuilder(4)
	b.Write(0, "x", 1)
	b.Write(1, "x", 2)
	b.Read(2, "x", 1, history.LabelCausal)
	b.Read(2, "x", 2, history.LabelCausal)
	b.Read(3, "x", 2, history.LabelCausal)
	b.Read(3, "x", 1, history.LabelCausal)
	if v := CausalReads(analyze(t, b)); len(v) != 0 {
		t.Errorf("unexpected violations: %v", v)
	}
}

func TestReadOfUnwrittenValue(t *testing.T) {
	b := history.NewBuilder(1)
	b.Read(0, "x", 42, history.LabelCausal)
	v := CausalReads(analyze(t, b))
	if len(v) != 1 || !strings.Contains(v[0].Reason, "never written") {
		t.Fatalf("violations = %v, want never-written", v)
	}
}

func TestInitialReadBeforeAnyWrite(t *testing.T) {
	b := history.NewBuilder(2)
	b.Read(0, "x", 0, history.LabelCausal)
	b.Write(1, "x", 1)
	if v := CausalReads(analyze(t, b)); len(v) != 0 {
		t.Errorf("concurrent initial read flagged: %v", v)
	}
}

func TestInitialReadAfterVisibleWrite(t *testing.T) {
	// p0 writes x then signals p1 through an await; p1's subsequent read of
	// the initial value violates causality.
	b := history.NewBuilder(2)
	b.Write(0, "x", 1)
	b.Write(0, "flag", 1)
	b.Await(1, "flag", 1)
	r := b.Read(1, "x", 0, history.LabelCausal)
	v := CausalReads(analyze(t, b))
	if len(v) != 1 || v[0].Op != r {
		t.Fatalf("violations = %v, want one on op %d", v, r)
	}
}

func TestAwaitCreatesVisibility(t *testing.T) {
	// The producer/consumer idiom: write data, write flag, consumer awaits
	// flag then reads data. PRAM reads suffice because the await edge is
	// incident on the consumer.
	b := history.NewBuilder(2)
	b.Write(0, "data", 7)
	b.Write(0, "flag", 1)
	b.Await(1, "flag", 1)
	b.Read(1, "data", 7, history.LabelPRAM)
	a := analyze(t, b)
	if v := Mixed(a); len(v) != 0 {
		t.Errorf("unexpected violations: %v", v)
	}
	// And reading stale data after the await is a PRAM violation.
	b2 := history.NewBuilder(2)
	b2.Write(0, "data", 7)
	b2.Write(0, "flag", 1)
	b2.Await(1, "flag", 1)
	r := b2.Read(1, "data", 0, history.LabelPRAM)
	v := PRAMReads(analyze(t, b2))
	if len(v) != 1 || v[0].Op != r {
		t.Fatalf("violations = %v, want one on op %d", v, r)
	}
}

func TestBarrierCreatesVisibilityForPRAM(t *testing.T) {
	// Figure 2's structure: writes in phase 1 are visible to PRAM reads in
	// phase 2 across processes.
	b := history.NewBuilder(2)
	b.Write(0, "x0", 1)
	b.Write(1, "x1", 2)
	b.Barrier(0, 1)
	b.Barrier(1, 1)
	b.Read(0, "x1", 2, history.LabelPRAM)
	b.Read(1, "x0", 1, history.LabelPRAM)
	if v := Mixed(analyze(t, b)); len(v) != 0 {
		t.Errorf("unexpected violations: %v", v)
	}
	// Reading the pre-barrier initial value after the barrier violates PRAM.
	b2 := history.NewBuilder(2)
	b2.Write(0, "x0", 1)
	b2.Barrier(0, 1)
	b2.Barrier(1, 1)
	r := b2.Read(1, "x0", 0, history.LabelPRAM)
	v := PRAMReads(analyze(t, b2))
	if len(v) != 1 || v[0].Op != r {
		t.Fatalf("violations = %v, want one on op %d", v, r)
	}
}

func TestLockOrderCreatesVisibility(t *testing.T) {
	// Critical-section handoff: p0 writes x under a write lock; p1 later
	// acquires the lock and must observe the write under causal reads.
	b := history.NewBuilder(2)
	e0 := b.WLockEpoch(0, "l")
	b.Write(0, "x", 1)
	b.WUnlockEpoch(0, "l", e0)
	e1 := b.WLockEpoch(1, "l")
	r := b.Read(1, "x", 0, history.LabelCausal)
	b.WUnlockEpoch(1, "l", e1)
	v := CausalReads(analyze(t, b))
	if len(v) != 1 || v[0].Op != r {
		t.Fatalf("violations = %v, want one on op %d", v, r)
	}
	// The consistent run has no violations.
	b2 := history.NewBuilder(2)
	e0 = b2.WLockEpoch(0, "l")
	b2.Write(0, "x", 1)
	b2.WUnlockEpoch(0, "l", e0)
	e1 = b2.WLockEpoch(1, "l")
	b2.Read(1, "x", 1, history.LabelCausal)
	b2.WUnlockEpoch(1, "l", e1)
	if v := CausalReads(analyze(t, b2)); len(v) != 0 {
		t.Errorf("unexpected violations: %v", v)
	}
}

func TestMixedLabelsIndependent(t *testing.T) {
	// One history where the causal-labeled read is fine and a PRAM-labeled
	// read elsewhere is fine, despite a pattern that would violate causal.
	b := history.NewBuilder(3)
	b.Write(0, "x", 1)
	b.Read(1, "x", 1, history.LabelCausal)
	b.Write(1, "y", 2)
	b.Read(2, "y", 2, history.LabelCausal)
	b.Read(2, "x", 0, history.LabelPRAM) // fine as PRAM, would fail as causal
	if v := Mixed(analyze(t, b)); len(v) != 0 {
		t.Errorf("unexpected violations: %v", v)
	}
}

func TestAwaitOfUnwrittenValue(t *testing.T) {
	b := history.NewBuilder(1)
	b.Await(0, "x", 3)
	v := Mixed(analyze(t, b))
	if len(v) != 1 || !strings.Contains(v[0].Reason, "never written") {
		t.Fatalf("violations = %v, want await-never-written", v)
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Op: 3, Reason: "boom", Related: []int{1, 2}}
	if got := v.String(); !strings.Contains(got, "boom") || !strings.Contains(got, "3") {
		t.Errorf("String = %q", got)
	}
}
