package check

import (
	"testing"

	"mixedmem/internal/history"
)

// These tests pin the two new lattice points in isolation (the litmus
// package pins the full verdict matrix): Slow drops remote cross-location
// program order but keeps per-location FIFO and barrier fences; SC demands a
// single serialization for the SC-labeled reads.

func analyzeLattice(t *testing.T, b *history.Builder) *history.Analysis {
	t.Helper()
	a, err := b.History().Analyze()
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	return a
}

// TestSlowAllowsMessagePassingWeakOutcome is the PRAM/Slow separation
// witness: reading the flag fresh but the data stale is a PRAM violation but
// a legal slow-memory outcome, because the writer's data->flag program order
// is cross-location.
func TestSlowAllowsMessagePassingWeakOutcome(t *testing.T) {
	build := func(l history.Label) *history.Analysis {
		b := history.NewBuilder(2)
		b.Write(0, "data", 42)
		b.Write(0, "flag", 1)
		b.Read(1, "flag", 1, l)
		b.Read(1, "data", 0, l)
		return analyzeLattice(t, b)
	}
	if v := SlowReads(build(history.LabelSlow)); len(v) != 0 {
		t.Fatalf("slow reads must allow the stale-data MP outcome: %v", v)
	}
	if v := PRAMReads(build(history.LabelPRAM)); len(v) == 0 {
		t.Fatal("PRAM reads must forbid the stale-data MP outcome")
	}
}

// TestSlowKeepsPerLocationFIFO: a single writer's two writes to one location
// must still be observed in order even by slow reads.
func TestSlowKeepsPerLocationFIFO(t *testing.T) {
	b := history.NewBuilder(2)
	b.Write(0, "x", 1)
	b.Write(0, "x", 2)
	b.Read(1, "x", 2, history.LabelSlow)
	b.Read(1, "x", 1, history.LabelSlow)
	if v := SlowReads(analyzeLattice(t, b)); len(v) == 0 {
		t.Fatal("slow reads must preserve one writer's per-location FIFO")
	}
}

// TestSlowAllowsCrossWriterReordering: writes to one location by different
// writers have no slow-memory order, so observing them "backwards" is legal.
func TestSlowAllowsCrossWriterReordering(t *testing.T) {
	b := history.NewBuilder(3)
	b.Write(0, "x", 1)
	b.Write(1, "x", 2)
	b.Read(2, "x", 2, history.LabelSlow)
	b.Read(2, "x", 1, history.LabelSlow)
	if v := SlowReads(analyzeLattice(t, b)); len(v) != 0 {
		t.Fatalf("slow reads must allow cross-writer reordering: %v", v)
	}
}

// TestSlowKeepsBarrierFence: the slow relation retains barrier edges, so a
// read after the barrier must see the pre-barrier write — this is what makes
// the phase discipline sound all the way down the lattice (SlowConsistent).
func TestSlowKeepsBarrierFence(t *testing.T) {
	b := history.NewBuilder(2)
	b.Write(0, "x", 1)
	b.Barrier(0, 1)
	b.Barrier(1, 1)
	b.Read(1, "x", 0, history.LabelSlow)
	if v := SlowReads(analyzeLattice(t, b)); len(v) == 0 {
		t.Fatal("slow reads must not see stale values across a barrier")
	}
}

// TestSlowOrderSubsetOfPRAMOrder pins the lattice inclusion the hierarchy
// rests on: ~>i,S is a subrelation of ~>i,P on a history exercising all the
// edge sources (program order, reads-from, locks, barriers, awaits).
func TestSlowOrderSubsetOfPRAMOrder(t *testing.T) {
	b := history.NewBuilder(3)
	b.Write(0, "data", 41)
	b.Write(0, "data", 42)
	b.Write(0, "flag", 1)
	b.Await(1, "flag", 1)
	e := b.WLockEpoch(1, "l")
	b.Write(1, "y", 7)
	b.WUnlockEpoch(1, "l", e)
	b.Read(1, "data", 42, history.LabelSlow)
	b.Barrier(0, 1)
	b.Barrier(1, 1)
	b.Barrier(2, 1)
	b.Read(2, "y", 7, history.LabelSlow)
	a := analyzeLattice(t, b)
	n := len(a.H.Ops)
	for proc := 0; proc < 3; proc++ {
		slow, pram := a.SlowOrder(proc), a.PRAMOrder(proc)
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if slow.Has(u, v) && !pram.Has(u, v) {
					t.Fatalf("proc %d: edge %d->%d in SlowOrder but not PRAMOrder", proc, u, v)
				}
			}
		}
	}
}

// TestSCReadsForbidStoreBuffering: the SB weak outcome passes every local
// label but must fail once the reads are labeled SC.
func TestSCReadsForbidStoreBuffering(t *testing.T) {
	build := func(l history.Label) *history.Analysis {
		b := history.NewBuilder(2)
		b.Write(0, "x", 1)
		b.Read(0, "y", 0, l)
		b.Write(1, "y", 1)
		b.Read(1, "x", 0, l)
		return analyzeLattice(t, b)
	}
	v, err := SCReads(build(history.LabelSC))
	if err != nil {
		t.Fatalf("SCReads: %v", err)
	}
	if len(v) == 0 {
		t.Fatal("SC reads must forbid the SB weak outcome")
	}
	if v := Mixed(build(history.LabelSC)); len(v) == 0 {
		t.Fatal("Mixed must surface the SC violation")
	}
	for _, l := range []history.Label{history.LabelSlow, history.LabelPRAM, history.LabelCausal} {
		if v := Mixed(build(l)); len(v) != 0 {
			t.Fatalf("SB weak outcome must pass label %v: %v", l, v)
		}
	}
}

// TestSCReadsAcceptInterleavableHistory: a fresh-values MP run is SC, so
// SC-labeled reads pass.
func TestSCReadsAcceptInterleavableHistory(t *testing.T) {
	b := history.NewBuilder(2)
	b.Write(0, "data", 42)
	b.Write(0, "flag", 1)
	b.Read(1, "flag", 1, history.LabelSC)
	b.Read(1, "data", 42, history.LabelSC)
	v, err := SCReads(analyzeLattice(t, b))
	if err != nil {
		t.Fatalf("SCReads: %v", err)
	}
	if len(v) != 0 {
		t.Fatalf("fresh MP outcome must serialize: %v", v)
	}
}

// TestSCReadsIgnoreWeakerLabels: the same weak SB values carried by PRAM
// reads do not constrain the SC serialization — only SC-labeled reads do.
func TestSCReadsIgnoreWeakerLabels(t *testing.T) {
	b := history.NewBuilder(2)
	b.Write(0, "x", 1)
	b.Read(0, "y", 0, history.LabelPRAM)
	b.Write(1, "y", 1)
	b.Read(1, "x", 0, history.LabelPRAM)
	v, err := SCReads(analyzeLattice(t, b))
	if err != nil {
		t.Fatalf("SCReads: %v", err)
	}
	if len(v) != 0 {
		t.Fatalf("history without SC reads must pass SCReads: %v", v)
	}
}

// TestMixedAcrossAllFourLabels runs one history carrying all four labels at
// once — the mixed checker must check each read against exactly its own
// lattice point.
func TestMixedAcrossAllFourLabels(t *testing.T) {
	b := history.NewBuilder(2)
	b.Write(0, "a", 1)
	b.Write(0, "b", 2)
	b.Write(0, "flag", 1)
	// A stale read of a is fine under Slow even after seeing the flag...
	b.Read(1, "flag", 1, history.LabelSlow)
	b.Read(1, "a", 0, history.LabelSlow)
	// ...while the fresher labels observe the final values of b and flag.
	b.Read(1, "b", 2, history.LabelPRAM)
	b.Read(1, "flag", 1, history.LabelCausal)
	b.Read(1, "b", 2, history.LabelSC)
	if v := Mixed(analyzeLattice(t, b)); len(v) != 0 {
		t.Fatalf("mixed four-label history flagged: %v", v)
	}

	// Relabel the stale read as PRAM: now it must be flagged.
	b2 := history.NewBuilder(2)
	b2.Write(0, "a", 1)
	b2.Write(0, "b", 2)
	b2.Write(0, "flag", 1)
	b2.Read(1, "flag", 1, history.LabelPRAM)
	b2.Read(1, "a", 0, history.LabelPRAM)
	if v := Mixed(analyzeLattice(t, b2)); len(v) == 0 {
		t.Fatal("stale PRAM read after observing the flag must be flagged")
	}
}

// TestSlowConsistentClass pins the program class driving the Slow advice:
// barrier-only phased programs are in, await- or lock-using ones are out.
func TestSlowConsistentClass(t *testing.T) {
	phased := history.NewBuilder(2)
	phased.Write(0, "a", 1)
	phased.Barrier(0, 1)
	phased.Barrier(1, 1)
	phased.Read(1, "a", 1, history.LabelSlow)
	if v := SlowConsistent(phased.History()); len(v) != 0 {
		t.Fatalf("barrier-only phased program rejected: %v", v)
	}

	awaiting := history.NewBuilder(2)
	awaiting.Write(0, "a", 1)
	awaiting.Barrier(0, 1)
	awaiting.Barrier(1, 1)
	awaiting.Await(1, "a", 1)
	if v := SlowConsistent(awaiting.History()); len(v) == 0 {
		t.Fatal("await-using program accepted for Slow")
	}

	locking := history.NewBuilder(2)
	e := locking.WLockEpoch(0, "l")
	locking.Write(0, "a", 1)
	locking.WUnlockEpoch(0, "l", e)
	locking.Barrier(0, 1)
	locking.Barrier(1, 1)
	if v := SlowConsistent(locking.History()); len(v) == 0 {
		t.Fatal("lock-using program accepted for Slow")
	}
}
