// Package check implements the consistency checkers of the paper:
//
//   - causal reads (Definition 2) and PRAM reads (Definition 3);
//   - mixed consistency (Definition 4);
//   - sequential consistency (Definition 1, by serialization search);
//   - commutativity (Definition 5) and the Theorem 1 sufficient condition;
//   - the entry-consistent (Corollary 1) and PRAM-consistent (Corollary 2)
//     program analyses that a compiler could run.
//
// The checkers operate on histories from internal/history and serve as the
// ground truth for the runtime: executions recorded from internal/core are
// replayed through this package in tests.
package check

import (
	"fmt"

	"mixedmem/internal/history"
)

// InitialValue is the value every memory location holds before any write.
// The paper assumes distinct write values; reads of a never-written location
// are modeled as reading this initial value.
const InitialValue int64 = 0

// Violation describes one operation that breaks a consistency condition.
type Violation struct {
	// Op is the offending operation's ID.
	Op int
	// Reason explains the failure.
	Reason string
	// Related lists operation IDs that witness the violation (for example
	// the interposed write of Definition 2's second condition).
	Related []int
}

// String renders the violation with the operations spelled out.
func (v Violation) String() string {
	return fmt.Sprintf("op %d: %s (related %v)", v.Op, v.Reason, v.Related)
}

// CausalReads checks that every read labeled Causal is a causal read per
// Definition 2, and returns the violations found. Reads with other labels
// are ignored; awaits are checked to have a matching write.
func CausalReads(a *history.Analysis) []Violation {
	var out []Violation
	for _, op := range a.H.Ops {
		if op.Kind != history.Read || op.Label != history.LabelCausal {
			continue
		}
		if v, ok := checkRead(a, op, a.CausalView(op.Proc)); !ok {
			out = append(out, v)
		}
	}
	return out
}

// PRAMReads checks that every read labeled PRAM is a PRAM read per
// Definition 3, and returns the violations found.
func PRAMReads(a *history.Analysis) []Violation {
	var out []Violation
	for _, op := range a.H.Ops {
		if op.Kind != history.Read || op.Label != history.LabelPRAM {
			continue
		}
		if v, ok := checkRead(a, op, a.PRAMOrder(op.Proc)); !ok {
			out = append(out, v)
		}
	}
	return out
}

// SlowReads checks that every read labeled Slow satisfies the slow-memory
// condition — the common read condition of Definitions 2 and 3 applied to
// ~>i,S, the relation that keeps only each remote writer's per-location FIFO
// (history.SlowOrder). SlowOrder(i) is a subset of PRAMOrder(i), so every
// PRAM read is also a valid slow read; the converse fails on message-passing
// shapes, which is the separation the litmus matrix pins.
func SlowReads(a *history.Analysis) []Violation {
	var out []Violation
	for _, op := range a.H.Ops {
		if op.Kind != history.Read || op.Label != history.LabelSlow {
			continue
		}
		if v, ok := checkRead(a, op, a.SlowOrder(op.Proc)); !ok {
			out = append(out, v)
		}
	}
	return out
}

// Mixed checks mixed consistency per Definition 4, generalized to the label
// lattice: Slow-labeled reads are slow reads, PRAM-labeled reads are PRAM
// reads, Causal-labeled reads are causal reads, and the SC-labeled reads
// jointly admit a single total order consistent with causality in which each
// returns its location's latest write (SCReads). Awaits must match a write.
// The returned slice is empty iff the history is mixed consistent. A history
// too large for the SC serialization search is reported as a violation on the
// SC reads rather than silently passed.
func Mixed(a *history.Analysis) []Violation {
	out := CausalReads(a)
	out = append(out, PRAMReads(a)...)
	out = append(out, SlowReads(a)...)
	sc, err := SCReads(a)
	if err != nil {
		out = append(out, Violation{
			Op:     -1,
			Reason: fmt.Sprintf("SC serialization search failed: %v", err),
		})
	} else {
		out = append(out, sc...)
	}
	out = append(out, awaitsMatched(a)...)
	return out
}

// awaitsMatched verifies that each await observed a written value, which is
// what the synchronization order |->await requires (Section 3.1.3).
func awaitsMatched(a *history.Analysis) []Violation {
	var out []Violation
	for _, op := range a.H.Ops {
		if op.Kind != history.Await {
			continue
		}
		matched := false
		for w := range a.H.Ops {
			if a.RF.Has(w, op.ID) {
				matched = true
				break
			}
		}
		if !matched && op.Value != InitialValue {
			out = append(out, Violation{
				Op:     op.ID,
				Reason: fmt.Sprintf("%s awaited a value never written", op),
			})
		}
	}
	return out
}

// GroupCausalRead checks one read against the generalized group-causal
// condition of the paper's Section 3.2 remark ("the definition can be easily
// generalized to maintain causality across an arbitrary group of
// processes"): the read must be consistent with ~>i,G, the per-process
// relation that keeps only dependencies routed through group members. With
// group = {reader} this is exactly the PRAM condition; with group = all
// processes it is the causal condition — the two endpoints of the spectrum.
func GroupCausalRead(a *history.Analysis, readID int, group []int) (Violation, bool) {
	op := a.H.Ops[readID]
	if op.Kind != history.Read {
		return Violation{Op: readID, Reason: "not a read"}, false
	}
	return checkRead(a, op, a.GroupOrder(op.Proc, group))
}

// checkRead applies the common read condition of Definitions 2 and 3 with
// the supplied per-process relation (~>i,C, ~>i,P, or ~>i,S):
//
//   - there must exist a write w(x)v related to the read (automatic via the
//     reads-from edge when the value was written; reads of InitialValue with
//     no write are accepted when nothing intervenes);
//   - there must be no read/write operation o(x)u, u != v, with
//     w ~> o ~> r in the relation.
func checkRead(a *history.Analysis, r history.Op, rel *history.Relation) (Violation, bool) {
	w := -1
	for id := range a.H.Ops {
		if a.RF.Has(id, r.ID) {
			w = id
			break
		}
	}
	if w < 0 {
		if r.Value != InitialValue {
			return Violation{
				Op:     r.ID,
				Reason: fmt.Sprintf("%s read a value never written", r),
			}, false
		}
		// Initial-value read: no write to the location may precede it in
		// the relation.
		for _, o := range a.H.Ops {
			if o.Kind == history.Write && o.Loc == r.Loc && rel.Has(o.ID, r.ID) {
				return Violation{
					Op:      r.ID,
					Reason:  fmt.Sprintf("%s read the initial value after %s", r, o),
					Related: []int{o.ID},
				}, false
			}
		}
		return Violation{}, true
	}
	if !rel.Has(w, r.ID) {
		return Violation{
			Op:      r.ID,
			Reason:  fmt.Sprintf("%s not related to its write %s", r, a.H.Ops[w]),
			Related: []int{w},
		}, false
	}
	// Interference: a read/write o(x)u with u != v strictly between w and r.
	// Reads of other processes are already excluded from the relation's
	// domain by construction, matching the remark after Definition 2.
	for _, o := range a.H.Ops {
		if o.ID == w || o.ID == r.ID || o.Loc != r.Loc {
			continue
		}
		if o.Kind != history.Read && o.Kind != history.Write {
			continue
		}
		if o.Value == r.Value {
			continue
		}
		if rel.Has(w, o.ID) && rel.Has(o.ID, r.ID) {
			return Violation{
				Op: r.ID,
				Reason: fmt.Sprintf("%s overwritten by %s before %s",
					a.H.Ops[w], o, r),
				Related: []int{w, o.ID},
			}, false
		}
	}
	return Violation{}, true
}
