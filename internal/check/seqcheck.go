package check

import (
	"errors"
	"sort"
	"strconv"
	"strings"

	"mixedmem/internal/history"
)

// ErrSearchLimit is returned when the serialization search exceeds its state
// budget without a verdict.
var ErrSearchLimit = errors.New("check: serialization search exceeded state limit")

// DefaultStateLimit bounds the number of distinct search states explored by
// SequentiallyConsistent before giving up.
const DefaultStateLimit = 2_000_000

// SequentiallyConsistent reports whether the history has a serialization
// that is a sequential history (Definition 1): a total order respecting the
// causality relation in which every read and await returns the value of the
// most recent write to its location (or InitialValue). On success it returns
// a witness serialization as a sequence of operation IDs.
//
// The search walks per-strand frontiers with memoization on the pair
// (frontier, memory contents); it is exhaustive, so a false result is a
// proof that no serialization exists. Histories large enough to exhaust the
// state budget yield ErrSearchLimit.
func SequentiallyConsistent(a *history.Analysis) (bool, []int, error) {
	return sequentiallyConsistentLimit(a, DefaultStateLimit)
}

// SCReads checks the SC point of the label lattice on a mixed history: the
// SC-labeled reads must jointly admit a single total order of all operations,
// consistent with the causality relation, in which every SC-labeled read and
// every await returns its location's most recent write. Reads carrying weaker
// labels participate in the order but do not constrain memory values there —
// they are checked against their own label's relation by SlowReads,
// PRAMReads, and CausalReads. On a history whose reads are all SC-labeled
// this coincides with SequentiallyConsistent. A failed search returns one
// violation naming the SC reads; an exhausted state budget returns
// ErrSearchLimit.
func SCReads(a *history.Analysis) ([]Violation, error) {
	var scIDs []int
	for _, op := range a.H.Ops {
		if op.Kind == history.Read && op.Label == history.LabelSC {
			scIDs = append(scIDs, op.ID)
		}
	}
	if len(scIDs) == 0 {
		return nil, nil
	}
	constrains := func(op history.Op) bool {
		return op.Kind == history.Await ||
			(op.Kind == history.Read && op.Label == history.LabelSC)
	}
	ok, _, err := serializationSearch(a, constrains, DefaultStateLimit)
	if err != nil {
		return nil, err
	}
	if ok {
		return nil, nil
	}
	return []Violation{{
		Op:      scIDs[0],
		Reason:  "no total order consistent with causality serializes the SC-labeled reads",
		Related: scIDs,
	}}, nil
}

func sequentiallyConsistentLimit(a *history.Analysis, limit int) (bool, []int, error) {
	all := func(op history.Op) bool {
		return op.Kind == history.Read || op.Kind == history.Await
	}
	return serializationSearch(a, all, limit)
}

// serializationSearch looks for a total order of the history's operations
// respecting the causality relation in which every operation selected by
// constrains returns the most recent write to its location (or InitialValue).
// Unselected reads are scheduled freely: they occupy their program-order slot
// but accept any memory contents.
func serializationSearch(a *history.Analysis, constrains func(history.Op) bool, limit int) (bool, []int, error) {
	n := len(a.H.Ops)
	if n == 0 {
		return true, nil, nil
	}

	// Group operations into strands (proc, thread), ordered by Seq.
	type strandKey struct{ proc, thread int }
	strandIdx := make(map[strandKey]int)
	var strands [][]int
	for id, op := range a.H.Ops {
		k := strandKey{op.Proc, op.Thread}
		si, ok := strandIdx[k]
		if !ok {
			si = len(strands)
			strandIdx[k] = si
			strands = append(strands, nil)
		}
		strands[si] = append(strands[si], id)
	}
	for _, s := range strands {
		ids := s
		sort.Slice(ids, func(x, y int) bool {
			return a.H.Ops[ids[x]].Seq < a.H.Ops[ids[y]].Seq
		})
	}

	// preds[o] lists the causality predecessors that gate scheduling o.
	preds := make([][]int, n)
	for o := 0; o < n; o++ {
		for p := 0; p < n; p++ {
			if p != o && a.Causality.Has(p, o) {
				preds[o] = append(preds[o], p)
			}
		}
	}

	frontier := make([]int, len(strands))
	scheduled := make([]bool, n)
	mem := make(map[string]int64)
	witness := make([]int, 0, n)
	visited := make(map[string]struct{})
	states := 0

	key := func() string {
		var b strings.Builder
		for _, f := range frontier {
			b.WriteString(strconv.Itoa(f))
			b.WriteByte(',')
		}
		locs := make([]string, 0, len(mem))
		for l := range mem {
			locs = append(locs, l)
		}
		sort.Strings(locs)
		for _, l := range locs {
			b.WriteString(l)
			b.WriteByte('=')
			b.WriteString(strconv.FormatInt(mem[l], 10))
			b.WriteByte(';')
		}
		return b.String()
	}

	memValue := func(loc string) int64 {
		if v, ok := mem[loc]; ok {
			return v
		}
		return InitialValue
	}

	var search func(done int) (bool, error)
	search = func(done int) (bool, error) {
		if done == n {
			return true, nil
		}
		k := key()
		if _, seen := visited[k]; seen {
			return false, nil
		}
		visited[k] = struct{}{}
		states++
		if states > limit {
			return false, ErrSearchLimit
		}
		for si, f := range frontier {
			if f >= len(strands[si]) {
				continue
			}
			id := strands[si][f]
			op := a.H.Ops[id]
			ready := true
			for _, p := range preds[id] {
				if !scheduled[p] {
					ready = false
					break
				}
			}
			if !ready {
				continue
			}
			if constrains(op) {
				if memValue(op.Loc) != op.Value {
					continue
				}
			}
			// Schedule op.
			frontier[si]++
			scheduled[id] = true
			witness = append(witness, id)
			var prev int64
			var hadPrev bool
			if op.Kind == history.Write {
				prev, hadPrev = mem[op.Loc]
				mem[op.Loc] = op.Value
			}
			ok, err := search(done + 1)
			if err != nil {
				return false, err
			}
			if ok {
				return true, nil
			}
			// Undo.
			if op.Kind == history.Write {
				if hadPrev {
					mem[op.Loc] = prev
				} else {
					delete(mem, op.Loc)
				}
			}
			witness = witness[:len(witness)-1]
			scheduled[id] = false
			frontier[si]--
		}
		return false, nil
	}

	ok, err := search(0)
	if err != nil {
		return false, nil, err
	}
	if !ok {
		return false, nil, nil
	}
	out := make([]int, len(witness))
	copy(out, witness)
	return true, out, nil
}
