package check

import (
	"mixedmem/internal/history"
)

// Advice is the outcome of the paper's compiler check (Section 4: "The
// definitions of entry-consistency and PRAM-consistency can be easily
// checked by a compiler. Consequently, the above corollaries can be used to
// speed up computations without the programmer being made aware of the
// existence of the weaker memories."), generalized to the four-point label
// lattice Slow < PRAM < Causal < SC.
type Advice struct {
	// Label is the weakest read label the corollaries justify:
	// LabelSlow when the program is phase-disciplined with barrier-only
	// synchronization (Corollary 2's condition extends down the lattice),
	// LabelPRAM when the program is PRAM-consistent (Corollary 2),
	// LabelCausal when it is entry-consistent (Corollary 1), and
	// LabelSC when no corollary applies — sequentially consistent reads
	// are the one point of the lattice that needs no program condition.
	Label history.Label
	// Rationale names the corollary applied (or why none was).
	Rationale string
	// SlowViolations, PRAMViolations, and EntryViolations record why the
	// weaker recommendations were rejected, for diagnostics.
	SlowViolations  []Violation
	PRAMViolations  []Violation
	EntryViolations []Violation
}

// Advise inspects a program's recorded structure and recommends the weakest
// read label that still yields sequentially consistent behavior, walking the
// lattice bottom-up: Slow (SlowConsistent), PRAM (Corollary 2), Causal
// (Corollary 1), then SC as the unconditional top. locks maps each shared
// location to its lock for the entry-consistency check; pass nil when the
// program uses no locks (the entry-consistency condition then fails for any
// shared location).
//
// The check is syntactic, exactly as the paper intends for a compiler: it
// examines the access structure (phases, synchronization kinds, lock
// coverage), not the read values, so it can run on a profiling execution
// before choosing labels for production runs.
func Advise(h *history.History, locks map[string]string) Advice {
	slowViol := SlowConsistent(h)
	if len(slowViol) == 0 {
		return Advice{
			Label:     history.LabelSlow,
			Rationale: "program is phase-disciplined with barrier-only synchronization: Corollary 2 extends to slow reads",
		}
	}
	pramViol := PRAMConsistent(h)
	if len(pramViol) == 0 {
		return Advice{
			Label:          history.LabelPRAM,
			Rationale:      "program is PRAM-consistent: Corollary 2 permits PRAM reads",
			SlowViolations: slowViol,
		}
	}
	if locks == nil {
		locks = map[string]string{}
	}
	entryViol := EntryConsistent(h, locks)
	if len(entryViol) == 0 {
		return Advice{
			Label:          history.LabelCausal,
			Rationale:      "program is entry-consistent: Corollary 1 permits causal reads",
			SlowViolations: slowViol,
			PRAMViolations: pramViol,
		}
	}
	return Advice{
		Label:           history.LabelSC,
		Rationale:       "neither corollary applies: only sequentially consistent reads guarantee sequentially consistent behavior",
		SlowViolations:  slowViol,
		PRAMViolations:  pramViol,
		EntryViolations: entryViol,
	}
}
