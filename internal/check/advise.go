package check

import (
	"mixedmem/internal/history"
)

// Advice is the outcome of the paper's compiler check (Section 4: "The
// definitions of entry-consistency and PRAM-consistency can be easily
// checked by a compiler. Consequently, the above corollaries can be used to
// speed up computations without the programmer being made aware of the
// existence of the weaker memories.").
type Advice struct {
	// Label is the weakest read label the corollaries justify:
	// LabelPRAM when the program is PRAM-consistent (Corollary 2),
	// LabelCausal when it is entry-consistent (Corollary 1), and
	// LabelNone when neither applies and no label alone guarantees
	// sequentially consistent behavior.
	Label history.Label
	// Rationale names the corollary applied (or why none was).
	Rationale string
	// PRAMViolations and EntryViolations record why the stronger
	// recommendations were rejected, for diagnostics.
	PRAMViolations  []Violation
	EntryViolations []Violation
}

// Advise inspects a program's recorded structure and recommends the weakest
// read label that still yields sequentially consistent behavior, per
// Corollaries 1 and 2. locks maps each shared location to its lock for the
// entry-consistency check; pass nil when the program uses no locks (the
// entry-consistency condition then fails for any shared location).
//
// The check is syntactic, exactly as the paper intends for a compiler: it
// examines the access structure (phases, lock coverage), not the read
// values, so it can run on a profiling execution before choosing labels for
// production runs.
func Advise(h *history.History, locks map[string]string) Advice {
	pramViol := PRAMConsistent(h)
	if len(pramViol) == 0 {
		return Advice{
			Label:     history.LabelPRAM,
			Rationale: "program is PRAM-consistent: Corollary 2 permits PRAM reads",
		}
	}
	if locks == nil {
		locks = map[string]string{}
	}
	entryViol := EntryConsistent(h, locks)
	if len(entryViol) == 0 {
		return Advice{
			Label:          history.LabelCausal,
			Rationale:      "program is entry-consistent: Corollary 1 permits causal reads",
			PRAMViolations: pramViol,
		}
	}
	return Advice{
		Label:           history.LabelNone,
		Rationale:       "neither corollary applies: no read label alone guarantees sequentially consistent behavior",
		PRAMViolations:  pramViol,
		EntryViolations: entryViol,
	}
}
