package check

import (
	"fmt"
	"sort"

	"mixedmem/internal/history"
)

// EntryConsistent checks the four conditions of the paper's entry-consistent
// program class (Section 4, before Corollary 1) on a recorded history:
//
//  1. the shared variables are partitioned into disjoint sets — expressed by
//     the locks map, which assigns each shared location its lock;
//  2. a unique lock is associated with each set — implied by the map shape;
//  3. every read of a shared variable occurs while the issuing strand holds
//     a read or write lock on the corresponding lock;
//  4. every write of a shared variable occurs while the issuing strand holds
//     a write lock on the corresponding lock.
//
// Locations absent from the map are treated as private and unchecked, but a
// location accessed by more than one process must be mapped. By Corollary 1,
// a history of an entry-consistent program whose reads are causal is
// sequentially consistent.
func EntryConsistent(h *history.History, locks map[string]string) []Violation {
	var out []Violation

	// A location touched by two or more processes is shared and must have a
	// lock assignment.
	procsPerLoc := make(map[string]map[int]struct{})
	for _, op := range h.Ops {
		if op.Loc == "" {
			continue
		}
		if procsPerLoc[op.Loc] == nil {
			procsPerLoc[op.Loc] = make(map[int]struct{})
		}
		procsPerLoc[op.Loc][op.Proc] = struct{}{}
	}
	for loc, procs := range procsPerLoc {
		if len(procs) > 1 {
			if _, ok := locks[loc]; !ok {
				out = append(out, Violation{
					Op:     -1,
					Reason: fmt.Sprintf("shared location %q has no lock assignment", loc),
				})
			}
		}
	}

	// Walk each strand in program order tracking held locks.
	type strandKey struct{ proc, thread int }
	strands := make(map[strandKey][]history.Op)
	for _, op := range h.Ops {
		k := strandKey{op.Proc, op.Thread}
		strands[k] = append(strands[k], op)
	}
	keys := make([]strandKey, 0, len(strands))
	for k := range strands {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].proc != keys[j].proc {
			return keys[i].proc < keys[j].proc
		}
		return keys[i].thread < keys[j].thread
	})
	for _, k := range keys {
		ops := strands[k]
		sort.Slice(ops, func(i, j int) bool { return ops[i].Seq < ops[j].Seq })
		held := make(map[string]history.OpKind)
		for _, op := range ops {
			switch op.Kind {
			case history.RLock, history.WLock:
				held[op.Lock] = op.Kind
			case history.RUnlock, history.WUnlock:
				delete(held, op.Lock)
			case history.Read, history.Await:
				lock, shared := locks[op.Loc]
				if !shared {
					continue
				}
				if _, ok := held[lock]; !ok {
					out = append(out, Violation{
						Op:     op.ID,
						Reason: fmt.Sprintf("%s reads %q without holding lock %q", op, op.Loc, lock),
					})
				}
			case history.Write:
				lock, shared := locks[op.Loc]
				if !shared {
					continue
				}
				if held[lock] != history.WLock {
					out = append(out, Violation{
						Op:     op.ID,
						Reason: fmt.Sprintf("%s writes %q without holding write lock %q", op, op.Loc, lock),
					})
				}
			}
		}
	}
	return out
}

// SlowConsistent checks the sufficient syntactic condition this repo adds
// below Corollary 2 for the Slow point of the label lattice: the program must
// be PRAM-consistent (the phase discipline of PRAMConsistent) and barriers
// must be its only synchronization — no awaits and no lock operations.
//
// Under the phase discipline every inter-process reads-from edge crosses a
// barrier, and barrier edges are retained by the slow-memory relation ~>i,S
// (history.SlowOrder keeps synchronization edges touching the reader), so
// the proof of Corollary 2 goes through with slow reads in place of PRAM
// reads: all writes to a location sit in distinct phases, the reader's own
// barrier chain totally orders them before any later-phase read, and within
// a phase no location is both read and written. Awaits and locks are
// excluded conservatively: an await under PRAM additionally delivers the
// writer's prior writes (per-sender FIFO), a guarantee slow memory drops, so
// their presence keeps the advice at PRAM or above.
func SlowConsistent(h *history.History) []Violation {
	out := PRAMConsistent(h)
	for _, op := range h.Ops {
		switch op.Kind {
		case history.Await:
			out = append(out, Violation{
				Op:     op.ID,
				Reason: fmt.Sprintf("%s: awaits rely on per-sender FIFO that slow memory drops", op),
			})
		case history.RLock, history.WLock:
			out = append(out, Violation{
				Op:     op.ID,
				Reason: fmt.Sprintf("%s: lock-based programs need causal reads, not slow reads", op),
			})
		}
	}
	return out
}

// PRAMConsistent checks the sufficient syntactic condition the paper uses
// for Corollary 2 (illustrated on Figure 2: "since no variable is both read
// and written in the same phase, the program is PRAM-consistent"): with the
// computation split into phases by barriers,
//
//   - each location is written at most once per phase across all processes,
//     and
//   - no location is both read and written in the same phase.
//
// By Corollary 2, a history of such a program whose reads are PRAM reads is
// sequentially consistent. Histories with per-process barrier counts that
// disagree are reported as violations because the phase structure is then
// undefined.
func PRAMConsistent(h *history.History) []Violation {
	var out []Violation

	// Phase of an op = number of its process's barrier ops before it in
	// program order. With one strand per process this is the count of
	// earlier barrier ops in the strand.
	type strandKey struct{ proc, thread int }
	strands := make(map[strandKey][]history.Op)
	for _, op := range h.Ops {
		k := strandKey{op.Proc, op.Thread}
		strands[k] = append(strands[k], op)
	}

	type phaseLoc struct {
		phase int
		loc   string
	}
	writes := make(map[phaseLoc][]int)
	reads := make(map[phaseLoc][]int)
	barrierCount := make(map[int]int)

	for k, ops := range strands {
		sort.Slice(ops, func(i, j int) bool { return ops[i].Seq < ops[j].Seq })
		phase := 0
		for _, op := range ops {
			switch op.Kind {
			case history.Barrier:
				phase++
				if phase > barrierCount[k.proc] {
					barrierCount[k.proc] = phase
				}
			case history.Write:
				pl := phaseLoc{phase, op.Loc}
				writes[pl] = append(writes[pl], op.ID)
			case history.Read, history.Await:
				pl := phaseLoc{phase, op.Loc}
				reads[pl] = append(reads[pl], op.ID)
			}
		}
	}

	// All processes must pass the same number of barriers.
	want := -1
	for _, c := range barrierCount {
		if want == -1 {
			want = c
		} else if c != want {
			out = append(out, Violation{
				Op:     -1,
				Reason: "processes pass different numbers of barriers",
			})
			break
		}
	}

	for pl, ws := range writes {
		if len(ws) > 1 {
			out = append(out, Violation{
				Op: ws[1],
				Reason: fmt.Sprintf("location %q written %d times in phase %d",
					pl.loc, len(ws), pl.phase),
				Related: ws,
			})
		}
		if rs, ok := reads[pl]; ok {
			out = append(out, Violation{
				Op: rs[0],
				Reason: fmt.Sprintf("location %q both read and written in phase %d",
					pl.loc, pl.phase),
				Related: ws,
			})
		}
	}
	return out
}
