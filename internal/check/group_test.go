package check

import (
	"testing"

	"mixedmem/internal/history"
)

// buildChain constructs the k-hop relay: p0 writes x, each middle process
// reads the previous token and writes the next, and the last process reads
// the final token and then reads x's initial value (stale). Returns the
// history and the stale read's ID.
func buildChain(procs int) (*history.Builder, int) {
	b := history.NewBuilder(procs)
	b.Write(0, "x", 1)
	b.Write(0, "t0", 10)
	for p := 1; p < procs-1; p++ {
		b.Read(p, "t"+string(rune('0'+p-1)), int64(p*10), history.LabelPRAM)
		b.Write(p, "t"+string(rune('0'+p)), int64((p+1)*10))
	}
	last := procs - 1
	b.Read(last, "t"+string(rune('0'+last-1)), int64(last*10), history.LabelPRAM)
	stale := b.Read(last, "x", 0, history.LabelPRAM)
	return b, stale
}

func TestGroupCausalSpectrumEndpoints(t *testing.T) {
	// The WRC shape: with group = {reader} the stale read is legal (PRAM
	// endpoint); with group = all processes it is illegal (causal
	// endpoint).
	b, stale := buildChain(3)
	a := analyze(t, b)

	if _, ok := GroupCausalRead(a, stale, []int{2}); !ok {
		t.Error("group {reader} must behave like PRAM and allow the stale read")
	}
	if _, ok := GroupCausalRead(a, stale, []int{0, 1, 2}); ok {
		t.Error("group {all} must behave like causal and forbid the stale read")
	}
}

func TestGroupCausalIntermediatePoints(t *testing.T) {
	// A 4-process relay: the dependency chain is
	// w0(x) -> r1 -> w1 -> r2 -> w2 -> r3. A group covering any
	// consecutive link of the chain closes it; a group leaving a gap does
	// not.
	b, stale := buildChain(4)
	a := analyze(t, b)

	// An edge survives when either endpoint's process is in the group, so
	// the chain w0 -> r1 -> w1 -> r2 -> w2 -> r3 stays connected iff every
	// reads-from link touches a group member: link 0->1 touches {0,1},
	// link 1->2 touches {1,2}, link 2->3 touches {2,3}. Process 1 touches
	// the first two links, so {3,1} closes the chain while {3,2} and
	// {3,0} each leave a link uncovered.
	tests := []struct {
		name  string
		group []int
		legal bool
	}{
		{"reader only (PRAM)", []int{3}, true},
		{"reader + p2: first link uncovered", []int{3, 2}, true},
		{"reader + p0: middle link uncovered", []int{3, 0}, true},
		{"reader + p1: chain closed", []int{3, 1}, false},
		{"full group (causal)", []int{0, 1, 2, 3}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, ok := GroupCausalRead(a, stale, tt.group)
			if ok != tt.legal {
				t.Errorf("group %v: legal=%v, want %v", tt.group, ok, tt.legal)
			}
		})
	}
}

func TestGroupOrderMatchesPRAMOrder(t *testing.T) {
	// GroupOrder(p, {p}) must coincide with PRAMOrder(p) exactly.
	b, _ := buildChain(4)
	a := analyze(t, b)
	n := len(b.History().Ops)
	for p := 0; p < 4; p++ {
		g := a.GroupOrder(p, []int{p})
		pr := a.PRAMOrder(p)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if g.Has(i, j) != pr.Has(i, j) {
					t.Fatalf("proc %d: GroupOrder({p}) and PRAMOrder differ at (%d,%d)", p, i, j)
				}
			}
		}
	}
}

func TestGroupOrderFullGroupMatchesCausalOnCheckedPairs(t *testing.T) {
	// With the full group, GroupOrder agrees with the causal view on every
	// pair the read checker queries (pairs whose endpoints are not reads
	// of other processes).
	b, _ := buildChain(4)
	a := analyze(t, b)
	h := b.History()
	all := []int{0, 1, 2, 3}
	for p := 0; p < 4; p++ {
		g := a.GroupOrder(p, all)
		cv := a.CausalView(p)
		for i := 0; i < len(h.Ops); i++ {
			for j := 0; j < len(h.Ops); j++ {
				iForeignRead := h.Ops[i].Kind == history.Read && h.Ops[i].Proc != p
				jForeignRead := h.Ops[j].Kind == history.Read && h.Ops[j].Proc != p
				if iForeignRead || jForeignRead {
					continue
				}
				if g.Has(i, j) != cv.Has(i, j) {
					t.Fatalf("proc %d: full-group and causal view differ at (%s, %s)",
						p, h.Ops[i], h.Ops[j])
				}
			}
		}
	}
}

func TestGroupCausalReadRejectsNonRead(t *testing.T) {
	b := history.NewBuilder(1)
	w := b.Write(0, "x", 1)
	a := analyze(t, b)
	if _, ok := GroupCausalRead(a, w, []int{0}); ok {
		t.Error("non-read op must be rejected")
	}
}
