package check

import (
	"testing"

	"mixedmem/internal/history"
)

func mustSC(t *testing.T, b *history.Builder) (bool, []int) {
	t.Helper()
	ok, witness, err := SequentiallyConsistent(analyze(t, b))
	if err != nil {
		t.Fatalf("SequentiallyConsistent: %v", err)
	}
	return ok, witness
}

func TestSCEmptyHistory(t *testing.T) {
	b := history.NewBuilder(1)
	if ok, _ := mustSC(t, b); !ok {
		t.Fatal("empty history must be SC")
	}
}

func TestSCSimplePass(t *testing.T) {
	b := history.NewBuilder(2)
	b.Write(0, "x", 1)
	b.Read(1, "x", 1, history.LabelCausal)
	ok, witness := mustSC(t, b)
	if !ok {
		t.Fatal("history should be SC")
	}
	if len(witness) != 2 || witness[0] != 0 {
		t.Errorf("witness = %v, want write first", witness)
	}
}

func TestSCStoreBufferLitmusFails(t *testing.T) {
	// The classic SB litmus: both processes write then read the other's
	// location as 0. No interleaving allows it.
	b := history.NewBuilder(2)
	b.Write(0, "x", 1)
	b.Read(0, "y", 0, history.LabelCausal)
	b.Write(1, "y", 2)
	b.Read(1, "x", 0, history.LabelCausal)
	if ok, _ := mustSC(t, b); ok {
		t.Fatal("store-buffer litmus must not be SC")
	}
}

func TestSCStoreBufferOneZeroPasses(t *testing.T) {
	// If only one process reads 0, an interleaving exists.
	b := history.NewBuilder(2)
	b.Write(0, "x", 1)
	b.Read(0, "y", 0, history.LabelCausal)
	b.Write(1, "y", 2)
	b.Read(1, "x", 1, history.LabelCausal)
	if ok, _ := mustSC(t, b); !ok {
		t.Fatal("expected SC")
	}
}

func TestSCRespectsCausality(t *testing.T) {
	// A history whose reads are individually explainable but whose
	// causality forces an order contradicting a read. p0 writes x=1 then
	// x=2; p1 reads x=2; p1 writes y=3; p0 awaited nothing so only the
	// read value ordering matters.
	b := history.NewBuilder(2)
	b.Write(0, "x", 1)
	b.Write(0, "x", 2)
	b.Read(1, "x", 2, history.LabelCausal)
	b.Read(1, "x", 1, history.LabelCausal) // stale after newer: impossible
	if ok, _ := mustSC(t, b); ok {
		t.Fatal("stale re-read must not be SC")
	}
}

func TestSCWitnessIsValid(t *testing.T) {
	b := history.NewBuilder(3)
	b.Write(0, "a", 1)
	b.Write(1, "b", 2)
	b.Read(2, "a", 1, history.LabelCausal)
	b.Read(2, "b", 2, history.LabelCausal)
	b.Write(2, "c", 3)
	b.Read(0, "c", 3, history.LabelCausal)
	ok, witness := mustSC(t, b)
	if !ok {
		t.Fatal("expected SC")
	}
	// Replay the witness and check every read sees the latest write.
	h := b.History()
	mem := make(map[string]int64)
	for _, id := range witness {
		op := h.Ops[id]
		switch op.Kind {
		case history.Write:
			mem[op.Loc] = op.Value
		case history.Read, history.Await:
			if mem[op.Loc] != op.Value {
				t.Fatalf("witness invalid at %s: mem=%d", op, mem[op.Loc])
			}
		}
	}
	if len(witness) != len(h.Ops) {
		t.Fatalf("witness covers %d of %d ops", len(witness), len(h.Ops))
	}
}

func TestSCWithBarriers(t *testing.T) {
	// Phase-structured exchange through a barrier is SC.
	b := history.NewBuilder(2)
	b.Write(0, "x0", 1)
	b.Write(1, "x1", 2)
	b.Barrier(0, 1)
	b.Barrier(1, 1)
	b.Read(0, "x1", 2, history.LabelPRAM)
	b.Read(1, "x0", 1, history.LabelPRAM)
	if ok, _ := mustSC(t, b); !ok {
		t.Fatal("expected SC")
	}
	// Reading a stale value across the barrier is not SC.
	b2 := history.NewBuilder(2)
	b2.Write(0, "x0", 1)
	b2.Barrier(0, 1)
	b2.Barrier(1, 1)
	b2.Read(1, "x0", 0, history.LabelPRAM)
	if ok, _ := mustSC(t, b2); ok {
		t.Fatal("stale post-barrier read must not be SC")
	}
}

func TestSCWithLocks(t *testing.T) {
	// Lock handoff forces the critical sections into epoch order, so a
	// stale read in the second section is not SC.
	b := history.NewBuilder(2)
	e0 := b.WLockEpoch(0, "l")
	b.Write(0, "x", 1)
	b.WUnlockEpoch(0, "l", e0)
	e1 := b.WLockEpoch(1, "l")
	b.Read(1, "x", 0, history.LabelCausal)
	b.WUnlockEpoch(1, "l", e1)
	if ok, _ := mustSC(t, b); ok {
		t.Fatal("stale read in later critical section must not be SC")
	}
}

func TestSCAwaitValue(t *testing.T) {
	// An await that never observes its value makes the history non-SC.
	b := history.NewBuilder(2)
	b.Write(0, "flag", 1)
	b.Await(1, "flag", 1)
	b.Read(1, "flag", 0, history.LabelPRAM) // flag can never return to 0
	if ok, _ := mustSC(t, b); ok {
		t.Fatal("expected non-SC")
	}
}

func TestSCSearchLimit(t *testing.T) {
	b := history.NewBuilder(4)
	for p := 0; p < 4; p++ {
		for i := 0; i < 6; i++ {
			b.Write(p, "x", int64(p*100+i+1))
		}
	}
	// A tiny limit must trip the error path.
	_, _, err := sequentiallyConsistentLimit(analyze(t, b), 3)
	if err == nil {
		t.Fatal("expected ErrSearchLimit")
	}
}

func TestSCThreeProcessCoherence(t *testing.T) {
	// Writes to one location observed in contradictory orders by two
	// readers is not SC (it is fine under PRAM, tested elsewhere).
	b := history.NewBuilder(4)
	b.Write(0, "x", 1)
	b.Write(1, "x", 2)
	b.Read(2, "x", 1, history.LabelCausal)
	b.Read(2, "x", 2, history.LabelCausal)
	b.Read(3, "x", 2, history.LabelCausal)
	b.Read(3, "x", 1, history.LabelCausal)
	if ok, _ := mustSC(t, b); ok {
		t.Fatal("contradictory observation orders must not be SC")
	}
}
