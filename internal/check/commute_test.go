package check

import (
	"testing"

	"mixedmem/internal/history"
)

func TestCommutesTable(t *testing.T) {
	w := func(loc string, v int64) history.Op {
		return history.Op{Kind: history.Write, Loc: loc, Value: v}
	}
	r := func(loc string, v int64) history.Op {
		return history.Op{Kind: history.Read, Loc: loc, Value: v}
	}
	aw := func(loc string, v int64) history.Op {
		return history.Op{Kind: history.Await, Loc: loc, Value: v}
	}
	lk := func(k history.OpKind, lock string) history.Op {
		return history.Op{Kind: k, Lock: lock}
	}
	bar := func(k int) history.Op {
		return history.Op{Kind: history.Barrier, BarrierID: k}
	}

	tests := []struct {
		name string
		a, b history.Op
		want bool
	}{
		{"different locations", w("x", 1), w("y", 2), true},
		{"read read same loc", r("x", 1), r("x", 2), true},
		{"read await same loc", r("x", 1), aw("x", 2), true},
		{"write write same loc", w("x", 1), w("x", 2), false},
		{"write read same loc diff value", w("x", 1), r("x", 2), false},
		{"write read same loc same value", w("x", 1), r("x", 1), true},
		{"write await same loc diff value", w("x", 1), aw("x", 2), false},
		{"wl wl same lock", lk(history.WLock, "l"), lk(history.WLock, "l"), false},
		{"wl rl same lock", lk(history.WLock, "l"), lk(history.RLock, "l"), false},
		{"rl wl same lock", lk(history.RLock, "l"), lk(history.WLock, "l"), false},
		{"rl rl same lock", lk(history.RLock, "l"), lk(history.RLock, "l"), true},
		{"rl ru same lock", lk(history.RLock, "l"), lk(history.RUnlock, "l"), true},
		{"wl wu same lock", lk(history.WLock, "l"), lk(history.WUnlock, "l"), true},
		{"wu wu same lock", lk(history.WUnlock, "l"), lk(history.WUnlock, "l"), true},
		{"locks on different objects", lk(history.WLock, "l1"), lk(history.WLock, "l2"), true},
		{"lock vs memory op", lk(history.WLock, "x"), w("x", 1), true},
		{"same barrier", bar(1), bar(1), true},
		{"different barrier", bar(1), bar(2), true},
		{"barrier vs write", bar(1), w("x", 1), true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Commutes(tt.a, tt.b); got != tt.want {
				t.Errorf("Commutes = %v, want %v", got, tt.want)
			}
			if got := Commutes(tt.b, tt.a); got != tt.want {
				t.Errorf("Commutes (swapped) = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestTheorem1Holds(t *testing.T) {
	// Disjoint working sets with a barrier: all unrelated pairs commute and
	// reads are causal, so Theorem 1 applies and SC must hold.
	b := history.NewBuilder(2)
	b.Write(0, "x0", 1)
	b.Write(1, "x1", 2)
	b.Barrier(0, 1)
	b.Barrier(1, 1)
	b.Read(0, "x1", 2, history.LabelCausal)
	b.Read(1, "x0", 1, history.LabelCausal)
	a := analyze(t, b)
	if v := Theorem1(a); len(v) != 0 {
		t.Fatalf("Theorem 1 violations: %v", v)
	}
	ok, _, err := SequentiallyConsistent(a)
	if err != nil || !ok {
		t.Fatalf("theorem guarantees SC; got ok=%v err=%v", ok, err)
	}
}

func TestTheorem1ConcurrentWritesFail(t *testing.T) {
	// Concurrent writes to one location do not commute.
	b := history.NewBuilder(2)
	b.Write(0, "x", 1)
	b.Write(1, "x", 2)
	a := analyze(t, b)
	if v := Theorem1(a); len(v) == 0 {
		t.Fatal("expected commutativity violation")
	}
}

func TestTheorem1RequiresCausalReads(t *testing.T) {
	// A history whose unrelated pairs commute but whose read is not causal.
	b := history.NewBuilder(3)
	b.Write(0, "x", 1)
	b.Read(1, "x", 1, history.LabelPRAM)
	b.Write(1, "y", 2)
	b.Read(2, "y", 2, history.LabelPRAM)
	b.Read(2, "x", 0, history.LabelPRAM)
	a := analyze(t, b)
	v := Theorem1(a)
	found := false
	for _, viol := range v {
		if viol.Op == 4 {
			found = true
		}
	}
	if !found {
		t.Fatalf("Theorem1 must flag the non-causal read; got %v", v)
	}
}

func TestTheorem1OrderedWritesOK(t *testing.T) {
	// Writes to the same location that are causally ordered (through an
	// await) need not commute; Theorem 1 still holds.
	b := history.NewBuilder(2)
	b.Write(0, "x", 1)
	b.Write(0, "flag", 1)
	b.Await(1, "flag", 1)
	b.Write(1, "x", 2)
	a := analyze(t, b)
	if v := Theorem1(a); len(v) != 0 {
		t.Fatalf("unexpected violations: %v", v)
	}
}
