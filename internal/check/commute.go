package check

import (
	"fmt"

	"mixedmem/internal/history"
)

// Commutes reports whether two operations commute per Definition 5: for any
// sequential history h in which both are enabled, h;o;o' and h;o';o are
// equivalent sequential histories. The analysis assumes the paper's
// unique-write-values convention.
//
// The cases, derived in the paper's discussion after Definition 5:
//
//   - operations on different objects always commute;
//   - reads (including awaits, which observe a location) commute with reads;
//   - a write and a read of the same location commute only when they carry
//     the same value (otherwise one order is not a sequential history);
//   - two writes to the same location never commute (distinct values yield
//     different final states);
//   - lock operations on one lock commute except for wl/wl and wl/rl, the
//     pairs that can be simultaneously enabled and conflict;
//   - barrier operations of one barrier commute.
func Commutes(o1, o2 history.Op) bool {
	if !o1.SameObject(o2) {
		return true
	}
	k1, k2 := o1.Kind, o2.Kind
	switch {
	case k1 == history.Barrier: // same barrier index
		return true
	case k1.IsLock():
		// Same lock object. Conflicting simultaneously-enabled pairs.
		if k1 == history.WLock && k2 == history.WLock {
			return false
		}
		if (k1 == history.WLock && k2 == history.RLock) ||
			(k1 == history.RLock && k2 == history.WLock) {
			return false
		}
		return true
	default:
		// Memory operations on the same location.
		r1 := k1 == history.Read || k1 == history.Await
		r2 := k2 == history.Read || k2 == history.Await
		switch {
		case r1 && r2:
			return true
		case k1 == history.Write && k2 == history.Write:
			return o1.Value == o2.Value
		default:
			// One write, one read/await: commute iff same value.
			return o1.Value == o2.Value
		}
	}
}

// Theorem1 checks the sufficient condition of Theorem 1 on a history: every
// pair of operations unrelated by the causality relation commutes, and every
// read is a causal read. When it returns no violations, the history is
// sequentially consistent regardless of read labels.
//
// Reads are checked as causal reads whatever their label (the theorem's
// hypothesis), so a PRAM-labeled history may satisfy mixed consistency yet
// fail Theorem1; that is expected and mirrors the paper's discussion of the
// handshake equation solver (Section 5.1).
func Theorem1(a *history.Analysis) []Violation {
	var out []Violation
	ops := a.H.Ops
	for i := 0; i < len(ops); i++ {
		for j := i + 1; j < len(ops); j++ {
			if a.Causality.Has(ops[i].ID, ops[j].ID) || a.Causality.Has(ops[j].ID, ops[i].ID) {
				continue
			}
			if !Commutes(ops[i], ops[j]) {
				out = append(out, Violation{
					Op: ops[i].ID,
					Reason: fmt.Sprintf("concurrent operations %s and %s do not commute",
						ops[i], ops[j]),
					Related: []int{ops[j].ID},
				})
			}
		}
	}
	// Every read must be a causal read.
	for _, op := range ops {
		if op.Kind != history.Read {
			continue
		}
		if v, ok := checkRead(a, op, a.CausalView(op.Proc)); !ok {
			v.Reason = "theorem 1 requires causal reads: " + v.Reason
			out = append(out, v)
		}
	}
	return out
}
