package loadgen

import (
	"testing"
	"time"
)

// TestDeterministicTrace is the loadgen determinism guarantee: the same
// config yields the identical request sequence, and fingerprints agree;
// different seeds or worker ids diverge.
func TestDeterministicTrace(t *testing.T) {
	cfg := Config{Keys: 256, ZipfS: 1.1, ReadFraction: 0.7, Seed: 42, Worker: 3}
	a, b := New(cfg), New(cfg)
	for i := 0; i < 10000; i++ {
		ra, rb := a.Next(), b.Next()
		if ra != rb {
			t.Fatalf("request %d diverged: %+v vs %+v", i, ra, rb)
		}
	}
	if Fingerprint(cfg, 5000) != Fingerprint(cfg, 5000) {
		t.Fatal("fingerprints of identical configs differ")
	}
	other := cfg
	other.Worker = 4
	if Fingerprint(cfg, 5000) == Fingerprint(other, 5000) {
		t.Fatal("different workers produced the same fingerprint")
	}
	other = cfg
	other.Seed = 43
	if Fingerprint(cfg, 5000) == Fingerprint(other, 5000) {
		t.Fatal("different seeds produced the same fingerprint")
	}
}

func TestReadWriteMixAndKeyRange(t *testing.T) {
	cfg := Config{Keys: 64, ZipfS: 0.99, ReadFraction: 0.9, Seed: 7}
	g := New(cfg)
	reads := 0
	const n = 20000
	for i := 0; i < n; i++ {
		req := g.Next()
		if req.Key < 0 || req.Key >= cfg.Keys {
			t.Fatalf("key %d out of range [0,%d)", req.Key, cfg.Keys)
		}
		if req.Arrival != 0 {
			t.Fatalf("closed-loop request carries arrival %v", req.Arrival)
		}
		if req.Op == OpRead {
			reads++
		}
	}
	frac := float64(reads) / n
	if frac < 0.88 || frac > 0.92 {
		t.Fatalf("read fraction %.3f, want ≈0.9", frac)
	}
}

// TestZipfSkew checks the sampler is actually zipfian: with s=1 over a
// small key space, the hottest key's share must be close to its analytic
// probability and far above uniform.
func TestZipfSkew(t *testing.T) {
	const keys, n = 16, 50000
	g := New(Config{Keys: keys, ZipfS: 1, Seed: 5})
	counts := make([]int, keys)
	for i := 0; i < n; i++ {
		counts[g.Next().Key]++
	}
	// Analytic: P(0) = 1/H_16 ≈ 0.296.
	share := float64(counts[0]) / n
	if share < 0.27 || share > 0.32 {
		t.Fatalf("hottest key share %.3f, want ≈0.296", share)
	}
	if counts[0] <= counts[keys-1] {
		t.Fatal("head key not hotter than tail key")
	}
	// Uniform control.
	g = New(Config{Keys: keys, ZipfS: 0, Seed: 5})
	counts = make([]int, keys)
	for i := 0; i < n; i++ {
		counts[g.Next().Key]++
	}
	share = float64(counts[0]) / n
	if share < 0.05 || share > 0.08 {
		t.Fatalf("uniform key share %.3f, want ≈0.0625", share)
	}
}

// TestOpenLoopArrivals checks the open-loop schedule: arrivals are
// strictly increasing, deterministic, and the mean interarrival matches
// 1/rate.
func TestOpenLoopArrivals(t *testing.T) {
	cfg := Config{Keys: 8, Seed: 9, Rate: 1000} // 1k req/s -> 1ms mean gap
	a, b := New(cfg), New(cfg)
	var prev time.Duration
	const n = 20000
	var last time.Duration
	for i := 0; i < n; i++ {
		ra, rb := a.Next(), b.Next()
		if ra.Arrival != rb.Arrival {
			t.Fatalf("arrival %d diverged across identical generators", i)
		}
		if ra.Arrival <= prev {
			t.Fatalf("arrival %d not increasing: %v after %v", i, ra.Arrival, prev)
		}
		prev = ra.Arrival
		last = ra.Arrival
	}
	mean := last / n
	if mean < 900*time.Microsecond || mean > 1100*time.Microsecond {
		t.Fatalf("mean interarrival %v, want ≈1ms", mean)
	}
}
