// Package loadgen generates the seeded, deterministic request streams the
// serving experiments (S1) drive the session/KV front-end with.
//
// Each worker strand owns one Gen: a self-contained splitmix64 RNG (no
// math/rand global state, no locking) feeding a zipfian key sampler and a
// read/write coin. The stream is a pure function of Config, so every
// process of a distributed run can replay any strand's trace — the
// visibility probers and the counter-verification pass both rely on
// replaying a peer's exact trace — and a fixed seed reproduces the same
// workload on the simulated fabric, loopback TCP, and multi-process runs.
//
// Two arrival disciplines are supported: closed-loop (the default;
// Request.Arrival is zero and the caller issues the next request when the
// previous completes) and open-loop (Config.Rate > 0: Arrival carries a
// seeded exponential arrival schedule the caller paces against,
// independent of completion times).
package loadgen

import (
	"math"
	"sort"
	"time"
)

// OpKind is the request type.
type OpKind uint8

// Request operation kinds.
const (
	// OpRead is a key lookup.
	OpRead OpKind = iota
	// OpWrite is a key store.
	OpWrite
)

// Request is one generated operation.
type Request struct {
	// Op is the operation kind, drawn from Config.ReadFraction.
	Op OpKind
	// Key is the key index in [0, Config.Keys), drawn zipfian.
	Key int
	// Arrival is this request's offset from the start of the stream under
	// the open-loop discipline (Config.Rate > 0); zero in closed-loop mode.
	Arrival time.Duration
}

// Config parameterizes one worker's request stream.
type Config struct {
	// Keys is the key-space size. Required, >= 1.
	Keys int
	// ZipfS is the zipfian skew exponent: key i is drawn with probability
	// proportional to 1/(i+1)^s. Zero means uniform.
	ZipfS float64
	// ReadFraction is the probability a request is a read (the rest are
	// writes).
	ReadFraction float64
	// Seed is the workload seed shared by the whole experiment.
	Seed int64
	// Worker distinguishes this strand's stream from its siblings'; it is
	// folded into the RNG state, so (Seed, Worker) determines the trace.
	Worker int
	// Rate, when positive, selects open-loop arrivals at this many
	// requests per second: Arrival offsets follow a seeded exponential
	// (Poisson) schedule. Zero selects closed-loop mode.
	Rate float64
}

// Gen produces one worker's deterministic request stream.
type Gen struct {
	rng   rng
	zipf  *Zipf
	cfg   Config
	clock time.Duration
}

// New builds a generator. Keys must be at least 1.
func New(cfg Config) *Gen {
	if cfg.Keys < 1 {
		cfg.Keys = 1
	}
	return &Gen{
		rng:  newRNG(uint64(cfg.Seed)*0x9e3779b97f4a7c15 + uint64(cfg.Worker)*0xbf58476d1ce4e5b9 + 1),
		zipf: NewZipf(cfg.Keys, cfg.ZipfS),
		cfg:  cfg,
	}
}

// Next returns the stream's next request.
func (g *Gen) Next() Request {
	req := Request{
		Op:  OpWrite,
		Key: g.zipf.Sample(g.rng.float64()),
	}
	if g.rng.float64() < g.cfg.ReadFraction {
		req.Op = OpRead
	}
	if g.cfg.Rate > 0 {
		// Exponential interarrival by inverse transform; 1-u avoids ln(0).
		dt := -math.Log(1-g.rng.float64()) / g.cfg.Rate
		g.clock += time.Duration(dt * float64(time.Second))
		req.Arrival = g.clock
	}
	return req
}

// Fingerprint hashes the first n requests of a fresh stream for cfg
// (FNV-1a over op, key, and arrival), so experiment rows can prove two
// runs — or two substrates — generated identical workloads.
func Fingerprint(cfg Config, n int) uint64 {
	g := New(cfg)
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= prime
		}
	}
	for i := 0; i < n; i++ {
		req := g.Next()
		mix(uint64(req.Op))
		mix(uint64(req.Key))
		mix(uint64(req.Arrival))
	}
	return h
}

// Zipf samples indexes in [0, n) with probability proportional to
// 1/(i+1)^s via the inverted CDF: exact for any s >= 0 and any n, with no
// rejection loop and no shared state. Construction is O(n) and sampling is
// O(log n), which fits the serving key-space sizes (thousands of keys).
type Zipf struct {
	cdf []float64
}

// NewZipf builds the sampler. n must be >= 1; s < 0 is treated as 0
// (uniform).
func NewZipf(n int, s float64) *Zipf {
	if n < 1 {
		n = 1
	}
	if s < 0 {
		s = 0
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += math.Pow(float64(i+1), -s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	cdf[n-1] = 1 // exact top end despite rounding
	return &Zipf{cdf: cdf}
}

// Sample maps a uniform u in [0, 1) to a key index.
func (z *Zipf) Sample(u float64) int {
	return sort.SearchFloat64s(z.cdf, u)
}

// rng is splitmix64: tiny, fast, and self-contained, so every strand owns
// its stream without touching math/rand's global state.
type rng struct {
	s uint64
}

func newRNG(seed uint64) rng { return rng{s: seed} }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float64 returns a uniform sample in [0, 1) with 53 significant bits.
func (r *rng) float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}
