package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// PayloadCodec serializes one message kind's payload for wire backends. The
// in-process fabric passes payloads by reference and never consults codecs;
// wire transports (internal/transport/tcp) look the codec up by the
// message's Kind.
//
// Encode appends the payload's binary form to dst and returns the extended
// slice. Decode parses the payload back; it must return the same concrete
// type senders pass in Message.Payload, because receivers type-assert on it.
type PayloadCodec interface {
	Encode(dst []byte, payload any) ([]byte, error)
	Decode(data []byte) (any, error)
}

var (
	codecMu sync.RWMutex
	codecs  = make(map[string]PayloadCodec)
)

// ErrNoCodec is returned when a non-nil payload has no registered codec for
// its kind.
var ErrNoCodec = errors.New("transport: no payload codec registered")

// RegisterPayload installs the codec for a message kind. Protocol packages
// call it from init; later registrations replace earlier ones.
func RegisterPayload(kind string, c PayloadCodec) {
	codecMu.Lock()
	defer codecMu.Unlock()
	codecs[kind] = c
}

// EncodePayload serializes payload for the given kind. A nil payload
// encodes to an empty slice regardless of registration (several protocol
// messages, like flush probes, are pure signals).
func EncodePayload(dst []byte, kind string, payload any) ([]byte, error) {
	if payload == nil {
		return dst, nil
	}
	codecMu.RLock()
	c := codecs[kind]
	codecMu.RUnlock()
	if c == nil {
		return dst, fmt.Errorf("%w: kind %q", ErrNoCodec, kind)
	}
	return c.Encode(dst, payload)
}

// DecodePayload parses a payload of the given kind. Empty data decodes to
// nil.
func DecodePayload(kind string, data []byte) (any, error) {
	if len(data) == 0 {
		return nil, nil
	}
	codecMu.RLock()
	c := codecs[kind]
	codecMu.RUnlock()
	if c == nil {
		return nil, fmt.Errorf("%w: kind %q", ErrNoCodec, kind)
	}
	return c.Decode(data)
}

// Wire-format helpers shared by the payload codecs and the TCP framing. All
// integers are big-endian and fixed-width (encoding/binary); strings and
// slices carry a uint32 count prefix.

// AppendUint64 appends v big-endian.
func AppendUint64(dst []byte, v uint64) []byte {
	return binary.BigEndian.AppendUint64(dst, v)
}

// AppendUint32 appends v big-endian.
func AppendUint32(dst []byte, v uint32) []byte {
	return binary.BigEndian.AppendUint32(dst, v)
}

// AppendString appends a uint32 length prefix and the bytes of s.
func AppendString(dst []byte, s string) []byte {
	dst = AppendUint32(dst, uint32(len(s)))
	return append(dst, s...)
}

// AppendUint64s appends a uint32 count prefix and the values big-endian.
func AppendUint64s(dst []byte, vs []uint64) []byte {
	dst = AppendUint32(dst, uint32(len(vs)))
	for _, v := range vs {
		dst = AppendUint64(dst, v)
	}
	return dst
}

// ErrTruncated is recorded by a Decoder that runs out of bytes.
var ErrTruncated = errors.New("transport: truncated payload")

// Decoder is a cursor over an encoded payload. Reads past the end set a
// sticky error and return zero values, so codecs can decode a full struct
// and check Err once.
type Decoder struct {
	data []byte
	off  int
	err  error
}

// NewDecoder returns a Decoder over data.
func NewDecoder(data []byte) *Decoder { return &Decoder{data: data} }

// Err returns the sticky decode error, if any.
func (d *Decoder) Err() error { return d.err }

// Remaining reports the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.data) - d.off }

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.data) {
		d.err = fmt.Errorf("%w: need %d bytes at offset %d of %d",
			ErrTruncated, n, d.off, len(d.data))
		return nil
	}
	out := d.data[d.off : d.off+n]
	d.off += n
	return out
}

// Uint64 reads one big-endian uint64.
func (d *Decoder) Uint64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// Uint32 reads one big-endian uint32.
func (d *Decoder) Uint32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

// Byte reads one byte.
func (d *Decoder) Byte() byte {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// String reads a uint32-prefixed string.
func (d *Decoder) String() string {
	n := int(d.Uint32())
	if d.err != nil || n > d.Remaining() {
		if d.err == nil {
			d.err = fmt.Errorf("%w: string of %d bytes with %d remaining",
				ErrTruncated, n, d.Remaining())
		}
		return ""
	}
	return string(d.take(n))
}

// Uint64s reads a uint32-prefixed slice of big-endian uint64s. A zero count
// decodes to nil.
func (d *Decoder) Uint64s() []uint64 {
	n := int(d.Uint32())
	if n == 0 || d.err != nil {
		return nil
	}
	if n*8 > d.Remaining() {
		d.err = fmt.Errorf("%w: %d uint64s with %d bytes remaining",
			ErrTruncated, n, d.Remaining())
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = d.Uint64()
	}
	return out
}
