// Package transport abstracts the message-passing substrate the
// mixed-consistency runtime runs on.
//
// The paper's implementation sketch (Section 6) assumes only reliable FIFO
// channels between every ordered pair of processes. Anything providing that
// guarantee can carry the runtime: the in-process simulated fabric
// (internal/network), or real per-pair TCP connections between OS processes
// (internal/transport/tcp). The Transport interface is the exact method set
// the replicated-memory nodes (internal/dsm) and the synchronization
// managers (internal/syncmgr) use, extracted from the concrete
// *network.Fabric API, so the whole runtime is backend-agnostic: the same
// application code runs on either substrate with only the Transport value in
// the configuration changed.
//
// The package also hosts the payload codec registry the wire backends use to
// serialize protocol payloads. Protocol packages (dsm, syncmgr) register a
// binary codec for each message kind they define; in-process backends ignore
// the registry and pass payloads by reference.
package transport

import (
	"mixedmem/internal/network"
)

// Message is the unit of communication between two nodes. It is an alias of
// the simulated fabric's message type so the two substrates share one
// vocabulary and the fabric keeps satisfying Transport unchanged.
type Message = network.Message

// Stats is a snapshot of a transport's accounting, aliased from the fabric
// for the same reason. Every backend maintains the same message/byte/
// per-kind counters so experiment rows stay comparable across backends.
type Stats = network.Stats

// Transport is a reliable-FIFO message substrate connecting n nodes,
// 0..n-1. Implementations must preserve per-ordered-pair send order
// (deliveries from different senders may interleave arbitrarily), must never
// block in Send or Broadcast (the mixed-consistency model requires
// non-blocking writes, Section 3), and must keep message/byte/per-kind
// accounting.
type Transport interface {
	// Nodes returns the number of nodes the transport connects.
	Nodes() int
	// Send enqueues m for FIFO delivery on the (m.From, m.To) channel
	// without blocking. It returns an error for invalid node IDs or
	// unencodable payloads; delivery itself is asynchronous.
	Send(m Message) error
	// Broadcast sends to every node except the sender, preserving the
	// sender's FIFO order on each channel.
	Broadcast(from int, kind string, payload any, size int) error
	// Recv blocks until a message for node is delivered. The second result
	// is false once the transport is closed and drained. Distributed
	// backends serve only their local node; Recv for a remote node returns
	// false immediately.
	Recv(node int) (Message, bool)
	// Pending reports the number of undelivered messages queued from -> to,
	// as far as this transport instance can see. It is a test aid.
	Pending(from, to int) int
	// Stats returns a snapshot of the accounting counters.
	Stats() Stats
	// Close shuts the transport down, unblocking receivers. Implementations
	// must be idempotent.
	Close()
}

// Faults is the fault-injection surface of backends that support building
// adversarial delivery schedules (the simulated fabric). Tests that need it
// type-assert a Transport to Faults; wire backends need not implement it.
type Faults interface {
	Hold(from, to int) error
	Release(from, to int) error
	Isolate(node int) error
	Rejoin(node int) error
	SetDelayFactor(from, to int, factor float64) error
}

// Compile-time check: the simulated fabric is a Transport and supports
// fault injection.
var (
	_ Transport = (*network.Fabric)(nil)
	_ Faults    = (*network.Fabric)(nil)
)

// Sim wraps the simulated in-process fabric as a Transport. The fabric
// already provides the full method set; Sim exists so call sites read as an
// explicit backend choice.
func Sim(f *network.Fabric) Transport { return f }
