package tcp_test

import (
	"strconv"
	"sync"
	"testing"
	"time"

	"mixedmem/internal/core"
	"mixedmem/internal/dsm"
	"mixedmem/internal/transport/tcp"
)

// TestBatchedReplayOverTCP proves the tentpole claim end to end: with the
// update outbox enabled, connections killed mid-stream must stay invisible —
// the sequence/ack layer replays unacked batch frames, the receiver's dedup
// drops the duplicates, and delivery stays exactly-once and FIFO.
//
// Exactly-once is checked semantically: every round bumps a counter with Add
// (commutative increments do not coalesce, so each one rides the wire); a
// lost batch deflates the final sum, a double-applied replay inflates it.
// FIFO/atomicity is checked by awaiting the final round marker causally and
// then reading every data location: the marker is written after the data in
// the writer's program order, so the causal view must already hold the final
// round's values.
func TestBatchedReplayOverTCP(t *testing.T) {
	const (
		rounds       = 50
		writesPerRnd = 8
		outboxWidth  = 8
	)
	trs, err := tcp.NewLoopback(2, nil)
	if err != nil {
		t.Fatalf("NewLoopback: %v", err)
	}
	peers := make([]*core.Peer, 2)
	for i := range peers {
		p, err := core.NewPeer(core.PeerConfig{
			ID: i, Transport: trs[i],
			Batch: dsm.BatchConfig{Enabled: true, MaxUpdates: outboxWidth},
		})
		if err != nil {
			t.Fatalf("NewPeer(%d): %v", i, err)
		}
		peers[i] = p
	}
	t.Cleanup(func() {
		for _, tr := range trs {
			tr.Flush(5 * time.Second)
		}
		for _, p := range peers {
			p.Close()
		}
	})
	writer, reader := peers[0].Proc(), peers[1].Proc()

	// Chaos: alternate killing the live connection in each direction while
	// the stream is in flight.
	stop := make(chan struct{})
	var chaos sync.WaitGroup
	chaos.Add(1)
	go func() {
		defer chaos.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			case <-time.After(time.Millisecond):
			}
			trs[i%2].DropConn((i + 1) % 2)
		}
	}()

	done := make(chan struct{})
	go func() {
		defer close(done)
		for r := 1; r <= rounds; r++ {
			for i := 0; i < writesPerRnd; i++ {
				writer.Write("d"+strconv.Itoa(i), int64(r*100+i))
				writer.Add("sum", 1)
			}
			writer.Write("round", int64(r))
			// Pace the stream so drops land between flushes as well as
			// mid-batch.
			time.Sleep(500 * time.Microsecond)
		}
		writer.FlushUpdates()
	}()

	reader.Await("round", rounds)
	<-done
	close(stop)
	chaos.Wait()

	if got := reader.ReadCausal("sum"); got != rounds*writesPerRnd {
		t.Fatalf("sum = %d, want %d — batched adds lost or double-applied across reconnects",
			got, rounds*writesPerRnd)
	}
	for i := 0; i < writesPerRnd; i++ {
		if got := reader.ReadCausal("d" + strconv.Itoa(i)); got != int64(rounds*100+i) {
			t.Fatalf("d%d = %d, want %d — final round not fully applied", i, got, rounds*100+i)
		}
	}
	// The stream really used batch frames, and the chaos really forced
	// replay.
	if n := trs[0].Stats().PerKind[dsm.KindUpdateBatch]; n == 0 {
		t.Fatal("writer sent no update-batch frames; outbox was not exercised")
	}
	var replayed uint64
	for _, tr := range trs {
		replayed += tr.Diag().Replayed
	}
	if replayed == 0 {
		t.Fatal("no frames replayed; chaos did not interrupt the stream")
	}
}
