package tcp

import (
	"sync"
	"testing"

	"mixedmem/internal/transport"
)

// TestStatsSnapshotConcurrentWithTraffic is the wire transport's half of
// the Stats copy-on-read race proof (run with -race): Stats and Diag
// snapshots taken while senders stream frames are freely mutable and never
// share state with the live counters.
func TestStatsSnapshotConcurrentWithTraffic(t *testing.T) {
	trs := newLoopbackT(t, 2)
	go func() {
		for {
			if _, ok := trs[1].Recv(1); !ok {
				return
			}
		}
	}()

	var senders sync.WaitGroup
	senders.Add(1)
	go func() {
		defer senders.Done()
		for k := 0; k < 1500; k++ {
			_ = trs[0].Send(transport.Message{
				From: 0, To: 1, Kind: "tcptest", Payload: uint64(k), Size: 8,
			})
		}
	}()
	stop := make(chan struct{})
	snapDone := make(chan struct{})
	go func() {
		defer close(snapDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := trs[0].Stats()
			s.PerKind["injected"] = 1
			if len(s.PerNodeSent) > 0 {
				s.PerNodeSent[0]++
			}
			c := s.Clone()
			if c.PerKind["injected"] != 1 {
				t.Error("clone lost a key")
				return
			}
			_ = trs[0].Diag() // value snapshot; nothing to alias
		}
	}()
	senders.Wait()
	close(stop)
	<-snapDone

	s := trs[0].Stats()
	if s.PerKind["injected"] != 0 {
		t.Fatalf("snapshot mutation leaked into the transport: %+v", s)
	}
	if s.MessagesSent == 0 || s.PerKind["tcptest"] == 0 {
		t.Fatalf("no traffic accounted: %+v", s)
	}
}
