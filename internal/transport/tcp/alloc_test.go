package tcp

import (
	"testing"

	"mixedmem/internal/transport"
)

// TestAppendMsgFrameAllocFree pins the frame writer at zero allocations:
// push encodes every outgoing message into a pooled buffer with
// appendMsgFrame, and the writer goroutine ships those buffers through
// net.Buffers without copying, so a single stray allocation here would be
// paid once per message on every connection.
func TestAppendMsgFrameAllocFree(t *testing.T) {
	m := transport.Message{From: 0, To: 1, Kind: "dsm.update", Size: 64}
	payload := make([]byte, 64)
	buf := make([]byte, 0, 256) // warm buffer, as GetBuf returns once the pool cycles
	allocs := testing.AllocsPerRun(500, func() {
		frame := appendMsgFrame(buf[:0], 0, m, payload)
		patchMsgFrameSeq(frame, 42)
	})
	if allocs > 0 {
		t.Errorf("appendMsgFrame into warm buffer: %.3f allocs/op, want 0", allocs)
	}
}

// TestFramePoolRoundTrip pins the pooled-buffer cycle the sender runs per
// message: GetBuf, encode a frame, PutBuf. Warm, the freelist serves every
// request and the cycle is allocation-free.
func TestFramePoolRoundTrip(t *testing.T) {
	m := transport.Message{From: 1, To: 0, Kind: "dsm.update", Size: 32}
	payload := make([]byte, 32)
	transport.PutBuf(make([]byte, 0, 512))
	allocs := testing.AllocsPerRun(500, func() {
		frame := appendMsgFrame(transport.GetBuf(), 7, m, payload)
		transport.PutBuf(frame)
	})
	if allocs > 0 {
		t.Errorf("pooled frame cycle: %.3f allocs/op, want 0", allocs)
	}
}
