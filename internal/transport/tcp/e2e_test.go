package tcp_test

import (
	"sync"
	"testing"
	"time"

	"mixedmem/internal/apps"
	"mixedmem/internal/core"
	"mixedmem/internal/transport/tcp"
)

// newPeersT builds an n-process distributed deployment over loopback TCP:
// one core.Peer per node, each backed by its own *Transport, exactly as n
// separate OS processes would be wired (cmd/mixednode does the same, minus
// the shared address space).
func newPeersT(t *testing.T, n int) ([]*core.Peer, []*tcp.Transport) {
	t.Helper()
	trs, err := tcp.NewLoopback(n, nil)
	if err != nil {
		t.Fatalf("NewLoopback(%d): %v", n, err)
	}
	peers := make([]*core.Peer, n)
	for i := range peers {
		p, err := core.NewPeer(core.PeerConfig{ID: i, Transport: trs[i]})
		if err != nil {
			t.Fatalf("NewPeer(%d): %v", i, err)
		}
		peers[i] = p
	}
	t.Cleanup(func() {
		// Drain outbound channels before closing so no peer is stranded
		// waiting for a final release message.
		for _, tr := range trs {
			tr.Flush(5 * time.Second)
		}
		for _, p := range peers {
			p.Close()
		}
	})
	return peers, trs
}

// TestSolveBarrierOverTCP runs the Figure 2 barrier solver (experiment E2)
// with each process on its own TCP transport. The application code is
// identical to the in-process tests; only the Transport wiring differs.
func TestSolveBarrierOverTCP(t *testing.T) {
	ls := apps.GenDiagDominant(20, 7)
	direct, err := ls.SolveDirect()
	if err != nil {
		t.Fatalf("SolveDirect: %v", err)
	}
	peers, _ := newPeersT(t, 3)
	results := make([]apps.SolveResult, len(peers))
	var wg sync.WaitGroup
	for i, p := range peers {
		wg.Add(1)
		go func(i int, p *core.Peer) {
			defer wg.Done()
			results[i] = apps.SolveBarrier(p.Proc(), ls, apps.SolveOptions{Tol: 1e-9})
		}(i, p)
	}
	wg.Wait()
	for id, res := range results {
		if !res.Converged {
			t.Fatalf("proc %d did not converge in %d iters", id, res.Iters)
		}
		if d := apps.MaxAbsDiff(res.X, direct); d > 1e-7 {
			t.Fatalf("proc %d solution differs from direct by %v", id, d)
		}
	}
	// The answer really crossed the kernel's network stack: every process
	// sent wire messages.
	for i, p := range peers {
		if s := p.NetStats(); s.MessagesSent == 0 {
			t.Fatalf("proc %d sent no messages over TCP", i)
		}
	}
}

// TestCholeskyLocksOverTCP runs the Figure 5 lock-based sparse Cholesky
// factorization (experiment E5) across TCP processes, with connections
// killed mid-factorization to exercise replay under a real workload.
func TestCholeskyLocksOverTCP(t *testing.T) {
	m := apps.GenSparseSPD(14, 0.25, 21)
	ref, err := m.CholeskySequential()
	if err != nil {
		t.Fatalf("CholeskySequential: %v", err)
	}
	peers, trs := newPeersT(t, 3)
	results := make([]apps.CholeskyResult, len(peers))
	var wg sync.WaitGroup
	for i, p := range peers {
		wg.Add(1)
		go func(i int, p *core.Peer) {
			defer wg.Done()
			results[i] = apps.CholeskyLocks(p.Proc(), m, apps.SolveOptions{})
		}(i, p)
	}
	// Chaos: tear down live connections while the factorization runs; the
	// sequence/ack layer must make the drops invisible to the algorithm.
	stop := make(chan struct{})
	var chaos sync.WaitGroup
	chaos.Add(1)
	go func() {
		defer chaos.Done()
		for round := 0; ; round++ {
			select {
			case <-stop:
				return
			case <-time.After(5 * time.Millisecond):
			}
			from := round % len(trs)
			trs[from].DropConn((from + 1) % len(trs))
		}
	}()
	wg.Wait()
	close(stop)
	chaos.Wait()
	for id, res := range results {
		if d := m.FactorError(res.L, ref); d > 1e-9 {
			t.Fatalf("proc %d factor differs from sequential by %v", id, d)
		}
	}
	var redials uint64
	for _, tr := range trs {
		redials += tr.Diag().Dials
	}
	if redials < uint64(len(trs)*(len(trs)-1)) {
		t.Fatalf("total dials %d below connection count; chaos did not run?", redials)
	}
}
